package cava_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"cava/internal/dash"
	"cava/internal/edge"
	"cava/internal/video"
)

// benchEdgeReport is the BENCH_edge.json schema: the edge tier's cache and
// origin-spread numbers for a fixed seeded multi-video workload.
type benchEdgeReport struct {
	Origins         int      `json:"origins"`
	Videos          []string `json:"videos"`
	Requests        int      `json:"requests"`
	Workers         int      `json:"workers"`
	CacheHitRatio   float64  `json:"cache_hit_ratio"`
	Hits            uint64   `json:"hits"`
	Misses          uint64   `json:"misses"`
	Coalesced       uint64   `json:"coalesced"`
	Evictions       uint64   `json:"evictions"`
	ServedBytes     uint64   `json:"served_bytes"`
	FetchedByOrigin []uint64 `json:"fetched_bytes_per_origin"`
	WallSec         float64  `json:"wall_sec"`
}

// TestEdgeBench is the edge tier's benchmark and its sharding gate in one:
// a fixed seeded workload of segment requests across three videos is pushed
// through an edge fronting three full-catalog origins. The gate asserts the
// cache absorbs the workload's re-requests (hit ratio above the structural
// floor) and that the consistent-hash ring spreads origin fetches by
// content. With BENCH_EDGE_OUT set, the numbers are written there as
// BENCH_edge.json.
func TestEdgeBench(t *testing.T) {
	const (
		origins  = 3
		requests = 2400
		workers  = 8
		seed     = 7
	)

	// Every origin carries the full three-video catalog (the replication
	// consistent-hash failover relies on); the edge shards videos across
	// origins by /v/<id>/ path.
	titles := video.OpenTitles[:3]
	videos := make([]*video.Video, len(titles))
	ids := make([]string, len(titles))
	for i, title := range titles {
		videos[i] = video.FFmpegVideo(title, video.H264)
		ids[i] = videos[i].ID()
	}
	originURLs := make([]string, origins)
	for i := 0; i < origins; i++ {
		servers := make([]*dash.Server, len(videos))
		for j, v := range videos {
			servers[j] = dash.NewServer(v)
		}
		mux, err := dash.NewVideoMux(servers...)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(mux.Handler())
		defer srv.Close()
		originURLs[i] = srv.URL
	}

	e, err := edge.New(edge.Config{
		Origins:    originURLs,
		VideoID:    ids[0],
		CacheBytes: 64 << 20,
		JitterSeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// The seeded workload: a zipf-ish mix where a third of the requests
	// re-ask for one hot segment per video and the rest sweep segments and
	// tracks, so hits, coalescing, and multi-origin fetches all occur.
	rng := rand.New(rand.NewSource(seed))
	paths := make([]string, requests)
	for i := range paths {
		vid := ids[rng.Intn(len(ids))]
		track := rng.Intn(3)
		idx := rng.Intn(8)
		if rng.Intn(3) == 0 {
			track, idx = 0, 0 // the hot segment
		}
		paths[i] = fmt.Sprintf("/v/%s%s", vid, dash.SegmentURL(track, idx))
	}

	handler := e.Handler()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < requests; i += workers {
				req := httptest.NewRequest(http.MethodGet, paths[i], nil)
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	wallSec := time.Since(start).Seconds()

	for w, n := range errs {
		if n > 0 {
			t.Errorf("worker %d saw %d non-200 responses", w, n)
		}
	}
	s := e.Stats()
	if got := s.Hits + s.Misses + s.Coalesced; got != requests {
		t.Errorf("dispositions sum to %d, want %d", got, requests)
	}
	// At most 3 videos × 3 tracks × 8 segments = 72 distinct paths can
	// miss; everything else must hit or coalesce.
	if s.HitRatio() < 0.9 {
		t.Errorf("hit ratio %.2f; 2400 requests over ≤72 distinct segments should mostly hit", s.HitRatio())
	}
	if s.Failovers != 0 || s.Shed != 0 {
		t.Errorf("healthy bench recorded %d failovers, %d sheds", s.Failovers, s.Shed)
	}
	// The ring spreads the three videos' fetches across origins: with each
	// video owning a primary, no single origin serves everything.
	fetched := make([]uint64, len(s.Origins))
	var busiest int
	for i, os := range s.Origins {
		fetched[i] = os.FetchedBytes
		if os.FetchedBytes > fetched[busiest] {
			busiest = i
		}
	}
	primaries := map[int]bool{}
	for _, id := range ids {
		primaries[e.OriginOrder(id)[0]] = true
	}
	if len(primaries) > 1 && fetched[busiest] == s.Origins[0].FetchedBytes+
		s.Origins[1].FetchedBytes+s.Origins[2].FetchedBytes {
		t.Errorf("one origin served all bytes despite %d distinct primaries: %v", len(primaries), fetched)
	}

	if out := os.Getenv("BENCH_EDGE_OUT"); out != "" {
		rep := benchEdgeReport{
			Origins: origins, Videos: ids, Requests: requests, Workers: workers,
			CacheHitRatio: s.HitRatio(), Hits: s.Hits, Misses: s.Misses,
			Coalesced: s.Coalesced, Evictions: s.Evictions,
			ServedBytes: s.ServedBytes, FetchedByOrigin: fetched,
			WallSec: wallSec,
		}
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%d requests in %.2fs, hit ratio %.2f, report written to %s",
			requests, wallSec, s.HitRatio(), out)
	}
}
