package cava_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"cava/internal/cache"
	"cava/internal/experiments"
)

// sweepSuite is the experiment set timed by TestSweepColdWarm: the Fig. 8/9
// pair (which share one sweep) plus the Fig. 10 ablation (two sweeps of its
// own), so the benchmark exercises both intra-pass reuse and the warm path.
var sweepSuite = []string{"fig8", "fig9", "fig10"}

// benchSweepReport is the BENCH_sweep.json schema.
type benchSweepReport struct {
	Suite      []string `json:"suite"`
	Traces     int      `json:"traces"`
	ColdSec    float64  `json:"cold_sec"`
	WarmSec    float64  `json:"warm_sec"`
	Speedup    float64  `json:"speedup"`
	SimMisses  uint64   `json:"sim_misses"`
	SimHits    uint64   `json:"sim_hits"`
	DiskMisses uint64   `json:"disk_pass_misses"`
	DiskHits   uint64   `json:"disk_pass_hits"`
}

// TestSweepColdWarm is the memoization benchmark and its correctness gate in
// one: a cold pass over sweepSuite populates a fresh cache, a warm pass must
// replay entirely from it (zero new sim misses, byte-identical output), and a
// third pass through a fresh Cache over the same -cache-dir style directory
// must reload from disk without executing a session. With BENCH_SWEEP_OUT
// set, the cold-vs-warm timings are written there as BENCH_sweep.json.
func TestSweepColdWarm(t *testing.T) {
	traces := 6
	if testing.Short() {
		traces = 2
	}
	dir := t.TempDir()

	runAll := func(c *cache.Cache) map[string]string {
		t.Helper()
		out := make(map[string]string, len(sweepSuite))
		for _, id := range sweepSuite {
			res, err := experiments.Run(id, experiments.Options{Traces: traces, Cache: c})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out[id] = res.Text
		}
		return out
	}

	c := cache.New(cache.WithDir(dir))
	t0 := time.Now()
	cold := runAll(c)
	coldSec := time.Since(t0).Seconds()
	cs := c.Stats(cache.KindSim)
	if cs.Misses == 0 {
		t.Fatal("cold pass executed no sweeps")
	}
	// fig9 reuses fig8's sweep within the cold pass already.
	if cs.Hits == 0 {
		t.Fatalf("cold stats = %+v: fig9 did not reuse fig8's sweep", cs)
	}

	t1 := time.Now()
	warm := runAll(c)
	warmSec := time.Since(t1).Seconds()
	ws := c.Stats(cache.KindSim)
	if ws.Misses != cs.Misses {
		t.Fatalf("warm pass executed %d new sweeps (stats %+v)", ws.Misses-cs.Misses, ws)
	}
	if ws.Hits <= cs.Hits {
		t.Fatalf("warm pass recorded no cache hits (stats %+v)", ws)
	}
	for id, text := range cold {
		if warm[id] != text {
			t.Errorf("%s: warm output differs from cold output", id)
		}
	}

	// A fresh Cache over the same directory models a later process with
	// -cache-dir: everything replays from the JSON layer.
	c2 := cache.New(cache.WithDir(dir))
	disk := runAll(c2)
	ds := c2.Stats(cache.KindSim)
	if ds.Misses != 0 {
		t.Fatalf("disk pass executed %d sweeps (stats %+v)", ds.Misses, ds)
	}
	for id, text := range cold {
		if disk[id] != text {
			t.Errorf("%s: disk-loaded output differs from cold output", id)
		}
	}

	if out := os.Getenv("BENCH_SWEEP_OUT"); out != "" {
		rep := benchSweepReport{
			Suite: sweepSuite, Traces: traces,
			ColdSec: coldSec, WarmSec: warmSec,
			SimMisses: ws.Misses, SimHits: ws.Hits,
			DiskMisses: ds.Misses, DiskHits: ds.Hits,
		}
		if warmSec > 0 {
			rep.Speedup = coldSec / warmSec
		}
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("cold %.2fs, warm %.3fs (%.0fx), report written to %s",
			coldSec, warmSec, rep.Speedup, out)
	}
}
