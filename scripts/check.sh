#!/bin/sh
# Tier-1 gate: vet, build, race-enabled tests, and the telemetry benchmark
# smoke (which also runs the zero-alloc guards: the AllocsPerRun assertions
# in internal/telemetry and internal/player). Equivalent to `make check` for
# environments without make.
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
go test -bench=Telemetry -benchtime=100x -run='TestZeroAllocUpdates|TestTelemetryDisabledAllocBound' \
	./internal/telemetry ./internal/player
echo "check: OK"
