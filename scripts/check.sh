#!/bin/sh
# Tier-1 gate: vet, build, race-enabled tests, and the telemetry benchmark
# smoke (which also runs the zero-alloc guards: the AllocsPerRun assertions
# in internal/telemetry and internal/player). Equivalent to `make check` for
# environments without make.
set -eu
cd "$(dirname "$0")/.."
# Static analysis first: formatting, go vet, then abrlint (the project
# analyzer suite — determinism, units, nopanic, floateq, errdrop, hotalloc,
# locks, goroleak, atomicmix, metricname). -counts prints the per-analyzer
# tally so a regression is attributable to the analyzer that caught it.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go vet ./...
go run ./cmd/abrlint -counts ./...
go build ./...
go test -race ./...
# Hammer the concurrency-heavy packages a second time under the race
# detector: the cache's singleflight path, the sim worker pool, the
# telemetry registry, and the fleet engine's multi-worker shard pass
# (TestFleetShardEquivalence runs 2/7/GOMAXPROCS-shard fleets) are where a
# data race would land.
go test -race -count=2 ./internal/sim ./internal/cache ./internal/telemetry ./internal/fleet
go test -bench=Telemetry -benchtime=100x -run='TestZeroAllocUpdates|TestTelemetryDisabledAllocBound' \
	./internal/telemetry ./internal/player
# Sweep-memoization gate: warm replay must do zero sim work and reproduce
# the cold output byte-for-byte (short mode; `make bench-sweep` for timings).
go test -short -run='TestSweepColdWarm$' -count=1 .
# Fleet-engine gates: the zero-alloc-per-event guard and the shard
# equivalence test run with the race tests above; here the reduced
# multi-worker scaling point enforces the per-worker sessions/sec floor,
# and the race-enabled fleet chaos smoke checks the discrete-event
# engine's livelock and starvation invariants over 2000 virtual sessions
# sharded across 4 workers.
go test -short -run='TestFleetBench$' -count=1 .
go test -race -run='TestFleetChaosSmoke$' -count=1 ./internal/chaos
# Chaos soak: 32 concurrent sessions vs the lossy fault profile behind
# admission control, race-enabled. Asserts no livelock, bounded honest
# shedding (503 + Retry-After), and goroutines back to baseline.
go test -race -run='TestChaosSoak$' -count=1 ./internal/chaos
# Edge-tier chaos soak: 24 staggered sessions through the edge (consistent-
# hash origins, segment cache, SWR manifests) while the primary origin is
# killed and restarted mid-run, race-enabled. Asserts ≥ 99% completion via
# failover + stale serving, cache-hit recovery, and no goroutine leak.
go test -race -run='TestEdgeChaosSoak$' -count=1 ./internal/chaos
# Crash-tolerance soak: seeded panics inside session steps, a mid-run
# interrupt with checkpoint, and a resume that must be bit-identical to
# the uninterrupted baseline, plus disk-cache corruption detection and
# recompute. Asserts exact quarantine/event accounting and no leak.
go test -race -run='TestCrashSoak$' -count=1 ./internal/chaos
echo "check: OK"
