// Quickstart: stream one VBR video over one LTE trace with CAVA and print
// the QoE summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/trace"
	"cava/internal/video"
)

func main() {
	// 1. A video: Elephant Dream as YouTube would encode it — six H.264
	//    tracks (144p..1080p), ~5-second chunks, capped VBR.
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})

	// 2. A network: one synthetic LTE drive-test trace.
	tr := trace.GenLTE(0)

	// 3. An ABR algorithm: CAVA with the paper's defaults.
	algo := core.New(v)

	// 4. Stream it: 10 s startup latency, 100 s client buffer.
	res, err := player.Simulate(v, tr, algo, player.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 5. Score the session with the VMAF phone model and the chunk-size
	//    quartile classification (Q4 = the most complex scenes).
	qt := quality.NewTable(v, quality.VMAFPhone)
	cats := scene.ClassifyDefault(v)
	s := metrics.Summarize(res, qt, cats)

	fmt.Printf("streamed %s over %s (mean %.1f Mbps)\n", v.ID(), tr.ID, tr.Mean()/1e6)
	fmt.Printf("  startup delay:        %.1f s\n", s.StartupDelaySec)
	fmt.Printf("  Q4 (complex) quality: %.1f VMAF\n", s.Q4Quality)
	fmt.Printf("  Q1-Q3 quality:        %.1f VMAF\n", s.Q13Quality)
	fmt.Printf("  low-quality chunks:   %.1f%%\n", s.LowQualityPct)
	fmt.Printf("  rebuffering:          %.1f s\n", s.RebufferSec)
	fmt.Printf("  quality change:       %.2f VMAF/chunk\n", s.QualityChange)
	fmt.Printf("  data usage:           %.1f MB\n", s.DataMB)
}
