// parameter-sweep: explore CAVA's two window parameters (the §6.2 study at
// example scale): the inner controller window W and the outer controller
// window W'.
//
//	go run ./examples/parameter-sweep [-traces 30]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/quality"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func sweep(name string, traces int, values []float64, set func(*core.Params, float64)) {
	v := video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
	fmt.Printf("%s sweep (%s, %d LTE traces):\n", name, v.ID(), traces)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\tQ4 quality\trebuffer (s)\tqual change\tdata (MB)\n", name)
	for _, val := range values {
		p := core.DefaultParams()
		set(&p, val)
		res, err := sim.Run(sim.Request{
			Videos: []*video.Video{v},
			Traces: trace.GenLTESet(traces),
			Schemes: []abr.Scheme{{Name: "CAVA", New: func(v *video.Video) abr.Algorithm {
				return core.NewWith(v, p, core.AllPrinciples, "CAVA")
			}}},
			Metric: quality.VMAFPhone,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ss := res.Summaries("CAVA", v.ID())
		fmt.Fprintf(w, "%.0f\t%.1f\t%.1f\t%.2f\t%.1f\n", val,
			sim.MeanOf(ss, metrics.FieldQ4Quality),
			sim.MeanOf(ss, metrics.FieldRebuffer),
			sim.MeanOf(ss, metrics.FieldQualityChange),
			sim.MeanOf(ss, metrics.FieldDataMB))
	}
	w.Flush()
	fmt.Println()
}

func main() {
	traces := flag.Int("traces", 30, "number of LTE traces per point")
	flag.Parse()

	sweep("W (s)", *traces, []float64{2, 10, 20, 40, 80, 160},
		func(p *core.Params, v float64) { p.InnerWindowSec = v })
	sweep("W' (s)", *traces, []float64{20, 60, 200, 400},
		func(p *core.Params, v float64) { p.OuterWindowSec = v })
	fmt.Println("paper defaults: W = 40s, W' = 200s")
}
