// lte-compare: run CAVA against the state-of-the-art baselines over a set
// of LTE traces (the paper's §6.3 setting, at example scale) and print the
// five-metric comparison.
//
//	go run ./examples/lte-compare [-traces 40]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/quality"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func main() {
	traces := flag.Int("traces", 40, "number of LTE traces")
	flag.Parse()

	v := video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
	schemes := []abr.Scheme{
		{Name: "CAVA", New: core.Factory()},
		{Name: "MPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, false) }},
		{Name: "RobustMPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, true) }},
		{Name: "PANDA/CQ max-min", New: func(v *video.Video) abr.Algorithm {
			return abr.NewPANDACQ(v, quality.NewTable(v, quality.PSNR), abr.MaxMin)
		}},
		{Name: "BOLA-E (seg)", New: func(v *video.Video) abr.Algorithm {
			return abr.NewBOLAE(v, abr.BOLASeg, true)
		}},
		{Name: "BBA-1", New: func(v *video.Video) abr.Algorithm { return abr.NewBBA1(v, 0, 0) }},
		{Name: "RBA", New: func(v *video.Video) abr.Algorithm { return abr.NewRBA(v, 4) }},
		{Name: "PIA", New: func(v *video.Video) abr.Algorithm { return abr.NewPIA(v) }},
		{Name: "FESTIVE", New: func(v *video.Video) abr.Algorithm { return abr.NewFESTIVE(v) }},
	}

	fmt.Printf("video %s over %d LTE traces (VMAF phone model)\n\n", v.ID(), *traces)
	res, err := sim.Run(sim.Request{
		Videos:  []*video.Video{v},
		Traces:  trace.GenLTESet(*traces),
		Schemes: schemes,
		Metric:  quality.VMAFPhone,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tQ4 quality\tlow-qual %\trebuffer (s)\tqual change\tdata (MB)")
	for _, sc := range schemes {
		ss := res.Summaries(sc.Name, v.ID())
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.2f\t%.1f\n",
			sc.Name,
			sim.MeanOf(ss, metrics.FieldQ4Quality),
			sim.MeanOf(ss, metrics.FieldLowQualityPct),
			sim.MeanOf(ss, metrics.FieldRebuffer),
			sim.MeanOf(ss, metrics.FieldQualityChange),
			sim.MeanOf(ss, metrics.FieldDataMB))
	}
	w.Flush()
}
