// fairness: three identical clients compete on one trace-driven bottleneck
// (split TCP-fairly among active downloads) with staggered joins. Reports
// Jain's fairness index over delivered bytes plus per-client QoE — the
// multi-client coupling study.
//
//	go run ./examples/fairness [-traces 10]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/trace"
	"cava/internal/video"
)

func main() {
	traces := flag.Int("traces", 10, "number of LTE traces")
	flag.Parse()

	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	qt := quality.NewTable(v, quality.VMAFPhone)
	cats := scene.ClassifyDefault(v)

	schemes := []abr.Scheme{
		{Name: "CAVA", New: core.Factory()},
		{Name: "RobustMPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, true) }},
		{Name: "FESTIVE", New: func(v *video.Video) abr.Algorithm { return abr.NewFESTIVE(v) }},
	}

	fmt.Printf("3 competing %s clients, joins 41s apart, link = LTE x3\n\n", v.Name)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tJain(bytes)\tQ4 quality\trebuffer (s)\tquality change")
	for _, sc := range schemes {
		var jain, q4, reb, chg []float64
		for ti := 0; ti < *traces; ti++ {
			tr := trace.GenLTE(ti).Scale(3)
			clients := make([]player.SharedClient, 3)
			for c := range clients {
				clients[c] = player.SharedClient{Video: v, Algo: sc.New(v), JoinDelaySec: float64(c) * 41}
			}
			results, err := player.SimulateShared(tr, clients)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			var bytes []float64
			for _, res := range results {
				bytes = append(bytes, res.TotalBits)
				s := metrics.Summarize(res, qt, cats)
				q4 = append(q4, s.Q4Quality)
				reb = append(reb, s.RebufferSec)
				chg = append(chg, s.QualityChange)
			}
			jain = append(jain, player.JainIndex(bytes))
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.1f\t%.1f\t%.2f\n", sc.Name,
			metrics.Mean(jain), metrics.Mean(q4), metrics.Mean(reb), metrics.Mean(chg))
	}
	w.Flush()
}
