// live-streaming: the §8 future-work setting — an encoder produces chunks
// in real time, the client can never buffer past the live edge, and every
// stall permanently raises end-to-end latency. Compares CAVA with bounded
// lookahead against RobustMPC under identical live constraints.
//
//	go run ./examples/live-streaming [-traces 15]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/trace"
	"cava/internal/video"
)

func main() {
	traces := flag.Int("traces", 15, "number of LTE traces")
	flag.Parse()

	v := video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
	qt := quality.NewTable(v, quality.VMAFPhone)
	cats := scene.ClassifyDefault(v)
	cfg := player.DefaultConfig()
	lcfg := player.LiveConfig{EncoderDelaySec: -1} // one chunk of encode delay

	liveCAVA := func(lookahead int) func() abr.Algorithm {
		return func() abr.Algorithm {
			p := core.DefaultParams()
			p.Lookahead = lookahead
			p.BaseTargetBuffer = cfg.StartupSec
			p.TargetMax = cfg.StartupSec + 2*v.ChunkDurSec
			return core.NewWith(v, p, core.AllPrinciples, fmt.Sprintf("CAVA-live%d", lookahead))
		}
	}
	schemes := []struct {
		name string
		make func() abr.Algorithm
	}{
		{"CAVA-live2", liveCAVA(2)},
		{"CAVA-live5", liveCAVA(5)},
		{"RobustMPC", func() abr.Algorithm { return abr.NewMPC(v, true) }},
	}

	fmt.Printf("live streaming %s over %d LTE traces (10s startup, 1-chunk encode delay)\n\n", v.ID(), *traces)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tQ4 quality\trebuffer (s)\tavg latency (s)\tmax latency (s)\tedge waits (s)")
	for _, sc := range schemes {
		var q4, reb, lat, latMax, wait []float64
		for i := 0; i < *traces; i++ {
			res, err := player.SimulateLive(v, trace.GenLTE(i), sc.make(), cfg, lcfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simulate live:", err)
				os.Exit(1)
			}
			s := metrics.Summarize(&res.Result, qt, cats)
			q4 = append(q4, s.Q4Quality)
			reb = append(reb, s.RebufferSec)
			lat = append(lat, res.AvgLatencySec)
			latMax = append(latMax, res.MaxLatencySec)
			wait = append(wait, res.AvailabilityWaitSec)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n", sc.name,
			metrics.Mean(q4), metrics.Mean(reb), metrics.Mean(lat),
			metrics.Mean(latMax), metrics.Mean(wait))
	}
	w.Flush()
	fmt.Println("\nlatency = live edge minus playhead; it only grows when playback stalls")
}
