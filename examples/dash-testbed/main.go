// dash-testbed: the §6.8 experiment end to end in one process — a DASH
// segment server behind a trace-shaped TCP link, streamed by CAVA and
// BOLA-E (seg) over real HTTP, with time compressed so a 10-minute session
// takes a few wall seconds.
//
//	go run ./examples/dash-testbed [-scale 120] [-chunks 80]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/dash"
	"cava/internal/metrics"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/trace"
	"cava/internal/video"
)

func main() {
	scale := flag.Float64("scale", 120, "time compression factor")
	chunks := flag.Int("chunks", 80, "chunks to stream per session")
	flag.Parse()

	v := video.YouTubeVideo(video.Title{Name: "BBB", Genre: video.Animation})
	tr := trace.GenLTE(3)
	qt := quality.NewTable(v, quality.VMAFPhone)
	cats := scene.ClassifyDefault(v)

	schemes := []struct {
		name    string
		factory abr.Factory
	}{
		{"CAVA", core.Factory()},
		{"BOLA-E (seg)", func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLASeg, true) }},
	}

	fmt.Printf("streaming %s over %s (mean %.1f Mbps), %gx time scale, %d chunks\n\n",
		v.ID(), tr.ID, tr.Mean()/1e6, *scale, *chunks)

	for _, sc := range schemes {
		// A fresh server + shaped link per session so both schemes see the
		// trace from t=0.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		shaped := dash.NewShapedListener(ln, dash.NewShaper(tr, *scale))
		srv := dash.NewHTTPServer(dash.NewServer(v).Handler())
		go srv.Serve(shaped)

		client, err := dash.NewClient(dash.ClientConfig{
			BaseURL:      "http://" + ln.Addr().String(),
			NewAlgorithm: sc.factory,
			TimeScale:    *scale,
			MaxChunks:    *chunks,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := client.Run(context.Background())
		srv.Close()
		if err != nil {
			log.Fatal(err)
		}
		s := metrics.Summarize(res, qt, cats)
		fmt.Printf("%-14s wall %4.1fs | Q4 %.1f | low %.1f%% | rebuf %.1fs | chg %.2f | %.1f MB\n",
			sc.name, time.Since(start).Seconds(), s.Q4Quality, s.LowQualityPct,
			s.RebufferSec, s.QualityChange, s.DataMB)
	}
}
