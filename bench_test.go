// Package cava_test benchmarks the paper-artifact regenerators (one bench
// per table/figure; see DESIGN.md's experiment index) plus the hot paths of
// the library: per-decision cost of each ABR scheme, full sessions, dataset
// generation and classification.
//
// The experiment benches run at reduced trace counts so `go test -bench=.`
// completes in minutes; use cmd/abreval for paper-scale runs.
package cava_test

import (
	"testing"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/experiments"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/trace"
	"cava/internal/video"
)

// benchExperiment runs one experiment per iteration at small scale.
func benchExperiment(b *testing.B, id string, traces int) {
	b.Helper()
	opt := experiments.Options{Traces: traces}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1", 2) }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2", 2) }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3", 2) }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4", 2) }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7", 2) }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b", 2) }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8", 2) }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9", 2) }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10", 2) }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11", 2) }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", 1) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", 2) }
func BenchmarkCodec(b *testing.B)  { benchExperiment(b, "codec", 1) }
func BenchmarkCap4x(b *testing.B)  { benchExperiment(b, "cap4x", 2) }
func BenchmarkPredErr(b *testing.B) {
	benchExperiment(b, "prederr", 2)
}

// Ablation and extension benches (DESIGN.md's "alpha" and "liveext").

func BenchmarkAblationAlpha(b *testing.B) { benchExperiment(b, "alpha", 2) }
func BenchmarkExtensionLive(b *testing.B) { benchExperiment(b, "liveext", 2) }
func BenchmarkCBRvsVBR(b *testing.B)      { benchExperiment(b, "cbrvbr", 2) }
func BenchmarkStartupSweep(b *testing.B)  { benchExperiment(b, "startup", 2) }
func BenchmarkChunkDuration(b *testing.B) { benchExperiment(b, "chunkdur", 2) }
func BenchmarkAllBaselines(b *testing.B)  { benchExperiment(b, "baselines", 2) }

// BenchmarkLiveTestbed streams 30 chunks over a real shaped HTTP link.
func BenchmarkLiveTestbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("live", experiments.Options{Traces: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Scheme decision micro-benchmarks: cost of one Select call mid-session.

func benchDecision(b *testing.B, algo abr.Algorithm) {
	b.Helper()
	st := abr.State{ChunkIndex: 40, Now: 200, Buffer: 55, Playing: true,
		PrevLevel: 3, Est: 2.4e6, LastThroughputBps: 2.1e6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Select(st)
	}
}

func benchVideo() *video.Video {
	return video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
}

func BenchmarkDecisionCAVA(b *testing.B) { benchDecision(b, core.New(benchVideo())) }

func BenchmarkDecisionMPC(b *testing.B) { benchDecision(b, abr.NewMPC(benchVideo(), false)) }

func BenchmarkDecisionRobustMPC(b *testing.B) { benchDecision(b, abr.NewMPC(benchVideo(), true)) }

func BenchmarkDecisionPANDA(b *testing.B) {
	v := benchVideo()
	benchDecision(b, abr.NewPANDACQ(v, quality.NewTable(v, quality.PSNR), abr.MaxMin))
}

func BenchmarkDecisionBOLAE(b *testing.B) {
	benchDecision(b, abr.NewBOLAE(benchVideo(), abr.BOLASeg, true))
}

func BenchmarkDecisionBBA1(b *testing.B) { benchDecision(b, abr.NewBBA1(benchVideo(), 0, 0)) }

func BenchmarkDecisionRBA(b *testing.B) { benchDecision(b, abr.NewRBA(benchVideo(), 4)) }

// Full-session benchmarks: one 10-minute session over one LTE trace.

func benchSession(b *testing.B, factory abr.Factory) {
	b.Helper()
	v := benchVideo()
	tr := trace.GenLTE(0)
	cfg := player.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := player.Simulate(v, tr, factory(v), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionCAVA(b *testing.B) { benchSession(b, core.Factory()) }

func BenchmarkSessionRobustMPC(b *testing.B) {
	benchSession(b, func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, true) })
}

// Substrate benchmarks.

func BenchmarkGenerateVideo(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	}
}

func BenchmarkGenerateLTETrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace.GenLTE(i % 200)
	}
}

func BenchmarkQualityTable(b *testing.B) {
	v := benchVideo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quality.NewTable(v, quality.VMAFPhone)
	}
}

func BenchmarkClassify(b *testing.B) {
	v := benchVideo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scene.ClassifyDefault(v)
	}
}

func BenchmarkDownloadTime(b *testing.B) {
	tr := trace.GenLTE(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DownloadTime(float64(i%600), 4e6)
	}
}

func BenchmarkSummarize(b *testing.B) {
	v := benchVideo()
	tr := trace.GenLTE(0)
	res := mustSimulate(b, v, tr, core.New(v), player.DefaultConfig())
	qt := quality.NewTable(v, quality.VMAFPhone)
	cats := scene.ClassifyDefault(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Summarize(res, qt, cats)
	}
}
