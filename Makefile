GO ?= go

.PHONY: check lint lint-fixtures build vet test race bench bench-telemetry bench-sweep bench-sweep-short soak soak-edge soak-fleet soak-crash bench-edge bench-fleet bench-fleet-short

# check is the one-command tier-1 gate every PR must pass.
check: lint build race bench-telemetry bench-sweep-short bench-fleet-short soak soak-edge soak-fleet soak-crash

# lint is the static-analysis gate: formatting, go vet, and abrlint (the
# project analyzer suite in internal/lint — determinism, units, nopanic,
# floateq, errdrop, hotalloc, locks, goroleak, atomicmix, metricname; see
# DESIGN.md "Static analysis").
lint: vet
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./cmd/abrlint ./...

# lint-fixtures runs only the golden fixture corpus — the fast inner loop
# for analyzer development (no repo-wide load, no vet).
lint-fixtures:
	$(GO) test ./internal/lint -run 'TestAnalyzersAgainstFixtures|TestSuppression|TestStacked|TestUnknownAnalyzer' -count=1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Telemetry smoke: the instrumentation benchmarks plus the zero-alloc guards
# (counter path and the player's disabled-recorder step path).
bench-telemetry:
	$(GO) test -bench=Telemetry -benchtime=100x \
		-run='TestZeroAllocUpdates|TestTelemetryDisabledAllocBound' \
		./internal/telemetry ./internal/player

# Sweep-memoization benchmark: cold pass, warm replay, disk replay over the
# fig8/fig9/fig10 suite; writes cold-vs-warm timings to BENCH_sweep.json.
bench-sweep:
	BENCH_SWEEP_OUT=BENCH_sweep.json $(GO) test -run='TestSweepColdWarm$$' -count=1 -v .

# Short-mode variant wired into `check`: same correctness gates (warm pass
# does zero sim work, outputs byte-identical) at reduced trace count, no
# artifact written.
bench-sweep-short:
	$(GO) test -short -run='TestSweepColdWarm$$' -count=1 .

# Chaos soak: 32 concurrent resilient sessions against a fault-injected,
# overload-protected server under the race detector. Deterministic fault
# schedule (seeded); asserts no livelock, bounded honest shedding, and
# goroutine count back to baseline.
soak:
	$(GO) test -race -run='TestChaosSoak$$' -count=1 -v ./internal/chaos

# Edge-tier chaos soak: 24 staggered sessions stream through the edge
# (consistent-hash origins, segment cache, SWR manifests) while the primary
# origin of 3 is killed and restarted mid-run, race-enabled. Asserts ≥ 99%
# session completion via failover + stale serving, cache-hit recovery after
# the restart, and goroutines back to baseline. Seeded fault schedule.
soak-edge:
	$(GO) test -race -run='TestEdgeChaosSoak$$' -count=1 -v ./internal/chaos

# Edge-tier benchmark: a fixed seeded multi-video workload through the edge;
# writes cache-hit ratio and bytes-served-per-origin to BENCH_edge.json.
bench-edge:
	BENCH_EDGE_OUT=BENCH_edge.json $(GO) test -run='TestEdgeBench$$' -count=1 -v .

# Fleet-engine chaos smoke: 2000 discrete-event sessions with Poisson
# arrivals and random trace offsets, sharded across 4 workers and run under
# the race detector (the multi-worker cell); asserts the engine's livelock
# and starvation invariants (exact event accounting, every session finishes
# within the virtual-time deadline).
soak-fleet:
	$(GO) test -race -run='TestFleetChaosSmoke$$' -count=1 -v ./internal/chaos

# Crash-tolerance soak: the fleet engine under seeded in-step panics, a
# mid-run interrupt that forces a checkpoint, and a resume that must be
# bit-identical to the uninterrupted baseline — race-enabled — plus a
# disk-cache corruption pass (flipped byte, torn tail, mangled header)
# proving checksum detection, quarantine and recompute. Asserts exact
# quarantine accounting, closed event accounting and goroutines back to
# baseline. Seeded fault schedule.
soak-crash:
	$(GO) test -race -run='TestCrashSoak$$' -count=1 -v ./internal/chaos

# Fleet scaling benchmark over the full 200-trace corpus (lte:100,fcc:100):
# a 1-worker 100k baseline and the headline multi-core 1M-session point
# (every session live at virtual time 0); writes sessions/sec, events/sec,
# peak RSS and the measured speedup-per-worker to BENCH_fleet.json.
bench-fleet:
	BENCH_FLEET_OUT=BENCH_fleet.json $(GO) test -timeout 30m -run='TestFleetBench$$' -count=1 -v .

# Short-mode variant wired into `check`: one reduced multi-worker point
# under the same per-worker sessions/sec floor, no artifact written.
bench-fleet-short:
	$(GO) test -short -run='TestFleetBench$$' -count=1 .
