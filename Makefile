GO ?= go

.PHONY: check build vet test race bench

# check is the one-command tier-1 gate every PR must pass.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
