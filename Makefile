GO ?= go

.PHONY: check build vet test race bench bench-telemetry

# check is the one-command tier-1 gate every PR must pass.
check: vet build race bench-telemetry

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Telemetry smoke: the instrumentation benchmarks plus the zero-alloc guards
# (counter path and the player's disabled-recorder step path).
bench-telemetry:
	$(GO) test -bench=Telemetry -benchtime=100x \
		-run='TestZeroAllocUpdates|TestTelemetryDisabledAllocBound' \
		./internal/telemetry ./internal/player
