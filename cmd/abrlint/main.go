// Command abrlint runs the repository's project-specific static-analysis
// suite (internal/lint): determinism, units, nopanic, floateq and errdrop
// over every package under ./internal/... and ./cmd/....
//
// Usage:
//
//	abrlint [./...]
//
// Findings print as `file:line: [analyzer] message`; the exit status is
// non-zero when any finding survives suppression. The suite is part of the
// tier-1 gate (`make check`), next to go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cava/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: abrlint [-root dir] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "abrlint: only the ./... pattern is supported (got %q)\n", arg)
			os.Exit(2)
		}
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "abrlint: %v\n", err)
			os.Exit(2)
		}
	}
	findings, err := lint.Run(dir, lint.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "abrlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		rel, err := filepath.Rel(dir, f.Pos.Filename)
		if err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "abrlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
