// Command abrlint runs the repository's project-specific static-analysis
// suite (internal/lint): determinism, units, nopanic, floateq, errdrop,
// hotalloc, locks, goroleak, atomicmix and metricname over every package
// under ./internal/... and ./cmd/....
//
// Usage:
//
//	abrlint [-root dir] [-json] [-counts] [./...]
//
// Findings print as `file:line: [analyzer] message`; with -json, as one
// JSON object per line (file, line, col, analyzer, message, suppressed),
// including suppressed findings so tooling can audit the active waiver
// set. -counts prints a per-analyzer finding tally to stderr so a
// regression is attributable to the analyzer that caught it. The exit
// status is non-zero when any finding survives suppression. The suite is
// part of the tier-1 gate (`make check`), next to go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cava/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	jsonOut := flag.Bool("json", false, "print findings as JSON Lines (including suppressed ones, marked)")
	counts := flag.Bool("counts", false, "print a per-analyzer finding tally to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: abrlint [-root dir] [-json] [-counts] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "abrlint: only the ./... pattern is supported (got %q)\n", arg)
			os.Exit(2)
		}
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "abrlint: %v\n", err)
			os.Exit(2)
		}
	}
	all, err := lint.RunAll(dir, lint.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "abrlint: %v\n", err)
		os.Exit(2)
	}
	for i := range all {
		if rel, err := filepath.Rel(dir, all[i].Pos.Filename); err == nil {
			all[i].Pos.Filename = rel
		}
	}

	// The exit status rests only on findings that survive suppression.
	var active []lint.Finding
	for _, f := range all {
		if !f.Suppressed {
			active = append(active, f)
		}
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, all); err != nil {
			fmt.Fprintf(os.Stderr, "abrlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range active {
			fmt.Println(f)
		}
	}
	if *counts {
		printCounts(active)
	}
	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "abrlint: %d finding(s)\n", len(active))
		os.Exit(1)
	}
}

// printCounts writes the per-analyzer tally of active findings to stderr,
// with every analyzer listed (zeroes included) so a clean run still shows
// which checks ran.
func printCounts(active []lint.Finding) {
	tally := map[string]int{}
	for _, name := range lint.AnalyzerNames() {
		tally[name] = 0
	}
	for _, f := range active {
		tally[f.Analyzer]++
	}
	names := make([]string, 0, len(tally))
	for name := range tally {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "abrlint: %-12s %d\n", name, tally[name])
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
