// Command abrexport runs a scheme × video × trace sweep and writes the
// per-session metrics as CSV or JSON for external analysis/plotting.
//
// Usage:
//
//	abrexport -videos ED-youtube-h264,BBB-youtube-h264 -set lte -traces 50 -out results.csv
//	abrexport -videos ED-ffmpeg-h264 -set fcc -traces 200 -format json -out results.json
//	abrexport -schemes cava,robustmpc -videos ED-ffmpeg-h264 -out -   # stdout
//
// The trace subcommand renders one session's ABR decision trace instead,
// either by simulating a session or from a JSONL dump (-trace-out of
// dashserve, or a previous "abrexport trace -format jsonl"):
//
//	abrexport trace -video ED-ffmpeg-h264 -trace lte:0 -scheme cava
//	abrexport trace -in session.jsonl
//	abrexport trace -video ED-ffmpeg-h264 -trace lte:3 -scheme cava -format jsonl -out session.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"cava/internal/abr"
	"cava/internal/cache"
	"cava/internal/cliutil"
	"cava/internal/core"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/report"
	"cava/internal/sim"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

func schemeByName(name string) (abr.Scheme, error) {
	switch name {
	case "cava":
		return abr.Scheme{Name: "CAVA", New: core.Factory()}, nil
	case "cava-p1", "cava-p12", "cava-p123":
		return abr.Scheme{Name: "CAVA-" + name[5:], New: core.Variant(name[5:])}, nil
	case "mpc":
		return abr.Scheme{Name: "MPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, false) }}, nil
	case "robustmpc":
		return abr.Scheme{Name: "RobustMPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, true) }}, nil
	case "panda-max-sum":
		return abr.Scheme{Name: "PANDA/CQ max-sum", New: func(v *video.Video) abr.Algorithm {
			return abr.NewPANDACQ(v, cache.Shared.QualityTable(v, quality.PSNR), abr.MaxSum)
		}}, nil
	case "panda-max-min":
		return abr.Scheme{Name: "PANDA/CQ max-min", New: func(v *video.Video) abr.Algorithm {
			return abr.NewPANDACQ(v, cache.Shared.QualityTable(v, quality.PSNR), abr.MaxMin)
		}}, nil
	case "bolae-peak", "bolae-avg", "bolae-seg":
		variant := map[string]abr.BOLAVariant{
			"bolae-peak": abr.BOLAPeak, "bolae-avg": abr.BOLAAvg, "bolae-seg": abr.BOLASeg,
		}[name]
		probe := abr.NewBOLAE(cache.Shared.Generate(video.DatasetConfigs()[0]), variant, true)
		return abr.Scheme{Name: probe.Name(), New: func(v *video.Video) abr.Algorithm {
			return abr.NewBOLAE(v, variant, true)
		}}, nil
	case "bba1":
		return abr.Scheme{Name: "BBA-1", New: func(v *video.Video) abr.Algorithm { return abr.NewBBA1(v, 0, 0) }}, nil
	case "rba":
		return abr.Scheme{Name: "RBA", New: func(v *video.Video) abr.Algorithm { return abr.NewRBA(v, 4) }}, nil
	case "pia":
		return abr.Scheme{Name: "PIA", New: func(v *video.Video) abr.Algorithm { return abr.NewPIA(v) }}, nil
	case "festive":
		return abr.Scheme{Name: "FESTIVE", New: func(v *video.Video) abr.Algorithm { return abr.NewFESTIVE(v) }}, nil
	default:
		return abr.Scheme{}, fmt.Errorf("unknown scheme %q", name)
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := runTrace(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "abrexport trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	runSweep()
}

func runSweep() {
	var (
		videosFlag  = flag.String("videos", "ED-ffmpeg-h264", "comma-separated video ids")
		schemesFlag = flag.String("schemes", "cava,mpc,robustmpc,panda-max-sum,panda-max-min", "comma-separated schemes")
		set         = flag.String("set", "lte", "trace family: lte or fcc")
		traces      = flag.Int("traces", 50, "traces per set")
		format      = flag.String("format", "csv", "output format: csv or json")
		out         = flag.String("out", "-", "output path ('-' = stdout)")
		cacheDir    = flag.String("cache-dir", "", "persist sweep results as JSON under this directory; a repeated identical invocation loads them instead of re-running")
	)
	flag.Parse()

	c := cache.Shared
	if *cacheDir != "" {
		c = cache.New(cache.WithDir(*cacheDir))
	}

	var videos []*video.Video
	for _, id := range strings.Split(*videosFlag, ",") {
		v, err := c.VideoByIDErr(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "abrexport: %v\n", err)
			os.Exit(2)
		}
		videos = append(videos, v)
	}
	var schemes []abr.Scheme
	for _, name := range strings.Split(*schemesFlag, ",") {
		sc, err := schemeByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "abrexport: %v\n", err)
			os.Exit(2)
		}
		schemes = append(schemes, sc)
	}

	var trs []*trace.Trace
	var metric quality.Metric
	switch *set {
	case "lte":
		trs = trace.GenLTESet(*traces)
		metric = quality.VMAFPhone
	case "fcc":
		trs = trace.GenFCCSet(*traces)
		metric = quality.VMAFTV
	default:
		fmt.Fprintf(os.Stderr, "abrexport: unknown trace set %q\n", *set)
		os.Exit(2)
	}

	res, err := sim.Run(sim.Request{
		Videos:  videos,
		Traces:  trs,
		Schemes: schemes,
		Config:  player.DefaultConfig(),
		Metric:  metric,
		Cache:   c,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "abrexport: %v\n", err)
		os.Exit(1)
	}
	rows := report.Flatten(res)

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abrexport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		err = report.WriteCSV(w, rows)
	case "json":
		err = report.WriteJSON(w, rows)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "abrexport: %v\n", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Printf("wrote %d session rows to %s\n", len(rows), *out)
	}
}

// runTrace implements the "trace" subcommand: obtain one session's decision
// trace (from a JSONL dump or by simulating the session) and render it.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("abrexport trace", flag.ExitOnError)
	var (
		in        = fs.String("in", "", "read events from a JSONL dump instead of simulating")
		videoID   = fs.String("video", "ED-ffmpeg-h264", "video id to simulate")
		traceSpec = fs.String("trace", "lte:0", "trace spec (lte:<i>, fcc:<i>, const:<mbps>, mahimahi:<path>)")
		scheme    = fs.String("scheme", "cava", "scheme name (see cliutil registry)")
		format    = fs.String("format", "table", "output format: table or jsonl")
		out       = fs.String("out", "-", "output path ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var events []telemetry.Event
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		events, err = telemetry.ReadJSONL(f)
		if err != nil {
			return err
		}
	} else {
		v := video.ByID(*videoID)
		if v == nil {
			return fmt.Errorf("unknown video %q", *videoID)
		}
		tr, err := cliutil.ParseTrace(*traceSpec)
		if err != nil {
			return err
		}
		factory, err := cliutil.SchemeByName(*scheme)
		if err != nil {
			return err
		}
		ring := telemetry.NewRing(telemetry.DefaultRingCapacity)
		cfg := player.DefaultConfig()
		cfg.Recorder = ring
		if _, err := player.Simulate(v, tr, factory(v), cfg); err != nil {
			return err
		}
		events = ring.Events()
	}
	if len(events) == 0 {
		return fmt.Errorf("no events to render")
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "jsonl":
		return telemetry.WriteJSONL(w, events)
	case "table":
		return renderTrace(w, events)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// renderTrace prints one line per event, in time order, with the fields that
// matter for each kind.
func renderTrace(w io.Writer, events []telemetry.Event) error {
	if _, err := fmt.Fprintf(w, "session %s: %d events\n", events[0].Session, len(events)); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "seq\tt(s)\tkind\tchunk\tlevel\tbuf(s)\test(Mbps)\tdetail")
	for _, ev := range events {
		detail := ev.Detail
		switch ev.Kind {
		case telemetry.KindDecide:
			detail = fmt.Sprintf("target=%.1fs u=%.3f α=%.2f", ev.TargetSec, ev.U, ev.Alpha)
			if ev.Detail != "" {
				detail += " (" + ev.Detail + ")"
			}
		case telemetry.KindDownload:
			detail = fmt.Sprintf("%.2f Mb in %.2fs @ %.1f Mbps",
				ev.SizeBits/1e6, ev.DownloadSec, ev.ThroughputBps/1e6)
			if ev.RebufferSec > 0 {
				detail += fmt.Sprintf(" (stall %.2fs)", ev.RebufferSec)
			}
		case telemetry.KindWait:
			detail = fmt.Sprintf("idle %.2fs", ev.WaitSec)
		case telemetry.KindRetry, telemetry.KindSkip, telemetry.KindFault:
			detail = fmt.Sprintf("attempt %d: %s", ev.Attempt, ev.Detail)
		case telemetry.KindAbandon:
			detail = fmt.Sprintf("from L%d: %s", ev.PrevLevel, ev.Detail)
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%s\t%d\t%d\t%.2f\t%.2f\t%s\n",
			ev.Seq, ev.TimeSec, ev.Kind, ev.Chunk, ev.Level, ev.BufferSec, ev.EstBps/1e6, detail)
	}
	return tw.Flush()
}
