// Command abrexport runs a scheme × video × trace sweep and writes the
// per-session metrics as CSV or JSON for external analysis/plotting.
//
// Usage:
//
//	abrexport -videos ED-youtube-h264,BBB-youtube-h264 -set lte -traces 50 -out results.csv
//	abrexport -videos ED-ffmpeg-h264 -set fcc -traces 200 -format json -out results.json
//	abrexport -schemes cava,robustmpc -videos ED-ffmpeg-h264 -out -   # stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/report"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func schemeByName(name string) (abr.Scheme, error) {
	switch name {
	case "cava":
		return abr.Scheme{Name: "CAVA", New: core.Factory()}, nil
	case "cava-p1", "cava-p12", "cava-p123":
		return abr.Scheme{Name: "CAVA-" + name[5:], New: core.Variant(name[5:])}, nil
	case "mpc":
		return abr.Scheme{Name: "MPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, false) }}, nil
	case "robustmpc":
		return abr.Scheme{Name: "RobustMPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, true) }}, nil
	case "panda-max-sum":
		return abr.Scheme{Name: "PANDA/CQ max-sum", New: func(v *video.Video) abr.Algorithm {
			return abr.NewPANDACQ(v, quality.NewTable(v, quality.PSNR), abr.MaxSum)
		}}, nil
	case "panda-max-min":
		return abr.Scheme{Name: "PANDA/CQ max-min", New: func(v *video.Video) abr.Algorithm {
			return abr.NewPANDACQ(v, quality.NewTable(v, quality.PSNR), abr.MaxMin)
		}}, nil
	case "bolae-peak", "bolae-avg", "bolae-seg":
		variant := map[string]abr.BOLAVariant{
			"bolae-peak": abr.BOLAPeak, "bolae-avg": abr.BOLAAvg, "bolae-seg": abr.BOLASeg,
		}[name]
		probe := abr.NewBOLAE(video.Dataset()[0], variant, true)
		return abr.Scheme{Name: probe.Name(), New: func(v *video.Video) abr.Algorithm {
			return abr.NewBOLAE(v, variant, true)
		}}, nil
	case "bba1":
		return abr.Scheme{Name: "BBA-1", New: func(v *video.Video) abr.Algorithm { return abr.NewBBA1(v, 0, 0) }}, nil
	case "rba":
		return abr.Scheme{Name: "RBA", New: func(v *video.Video) abr.Algorithm { return abr.NewRBA(v, 4) }}, nil
	case "pia":
		return abr.Scheme{Name: "PIA", New: func(v *video.Video) abr.Algorithm { return abr.NewPIA(v) }}, nil
	case "festive":
		return abr.Scheme{Name: "FESTIVE", New: func(v *video.Video) abr.Algorithm { return abr.NewFESTIVE(v) }}, nil
	default:
		return abr.Scheme{}, fmt.Errorf("unknown scheme %q", name)
	}
}

func main() {
	var (
		videosFlag  = flag.String("videos", "ED-ffmpeg-h264", "comma-separated video ids")
		schemesFlag = flag.String("schemes", "cava,mpc,robustmpc,panda-max-sum,panda-max-min", "comma-separated schemes")
		set         = flag.String("set", "lte", "trace family: lte or fcc")
		traces      = flag.Int("traces", 50, "traces per set")
		format      = flag.String("format", "csv", "output format: csv or json")
		out         = flag.String("out", "-", "output path ('-' = stdout)")
	)
	flag.Parse()

	var videos []*video.Video
	for _, id := range strings.Split(*videosFlag, ",") {
		v := video.ByID(strings.TrimSpace(id))
		if v == nil {
			fmt.Fprintf(os.Stderr, "abrexport: unknown video %q\n", id)
			os.Exit(2)
		}
		videos = append(videos, v)
	}
	var schemes []abr.Scheme
	for _, name := range strings.Split(*schemesFlag, ",") {
		sc, err := schemeByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "abrexport: %v\n", err)
			os.Exit(2)
		}
		schemes = append(schemes, sc)
	}

	var trs []*trace.Trace
	var metric quality.Metric
	switch *set {
	case "lte":
		trs = trace.GenLTESet(*traces)
		metric = quality.VMAFPhone
	case "fcc":
		trs = trace.GenFCCSet(*traces)
		metric = quality.VMAFTV
	default:
		fmt.Fprintf(os.Stderr, "abrexport: unknown trace set %q\n", *set)
		os.Exit(2)
	}

	res := sim.Run(sim.Request{
		Videos:  videos,
		Traces:  trs,
		Schemes: schemes,
		Config:  player.DefaultConfig(),
		Metric:  metric,
	})
	rows := report.Flatten(res)

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abrexport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = report.WriteCSV(w, rows)
	case "json":
		err = report.WriteJSON(w, rows)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "abrexport: %v\n", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Printf("wrote %d session rows to %s\n", len(rows), *out)
	}
}
