// Command cava-sim runs a single ABR streaming session (or a small sweep)
// and prints per-chunk decisions and the QoE summary.
//
// Usage:
//
//	cava-sim -video ED-youtube-h264 -trace lte:0 -scheme cava [-v]
//	cava-sim -video BBB-ffmpeg-h264 -trace fcc:12 -scheme robustmpc
//	cava-sim -list-videos
//	cava-sim -list-schemes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cava/internal/cliutil"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/video"
)

func main() {
	var (
		videoID     = flag.String("video", "ED-youtube-h264", "video id from the dataset")
		traceSpec   = flag.String("trace", "lte:0", "trace spec: lte:<idx>, fcc:<idx>, const:<mbps>")
		schemeName  = flag.String("scheme", "cava", "adaptation scheme")
		verbose     = flag.Bool("v", false, "print per-chunk decisions")
		listVideos  = flag.Bool("list-videos", false, "list dataset video ids")
		listSchemes = flag.Bool("list-schemes", false, "list scheme names")
	)
	flag.Parse()

	if *listVideos {
		for _, v := range video.Dataset() {
			fmt.Printf("%-22s %d tracks, %d chunks of %.0fs, cap %.0fx\n",
				v.ID(), v.NumTracks(), v.NumChunks(), v.ChunkDurSec, v.Cap)
		}
		fmt.Println("ED-ffmpeg-h264-4x      (4x-capped variant via cap4x experiment)")
		return
	}
	if *listSchemes {
		for _, name := range cliutil.SchemeNames() {
			fmt.Println(name)
		}
		return
	}

	v := video.ByID(*videoID)
	if v == nil {
		fmt.Fprintf(os.Stderr, "cava-sim: unknown video %q (try -list-videos)\n", *videoID)
		os.Exit(2)
	}
	factory, err := cliutil.SchemeByName(*schemeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cava-sim: %v\n", err)
		os.Exit(2)
	}
	tr, err := cliutil.ParseTrace(*traceSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cava-sim: %v\n", err)
		os.Exit(2)
	}

	res, err := player.Simulate(v, tr, factory(v), player.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cava-sim: %v\n", err)
		os.Exit(1)
	}
	cellular := strings.HasPrefix(tr.ID, "lte")
	qt := quality.NewTable(v, quality.DefaultMetricFor(cellular))
	cats := scene.ClassifyDefault(v)
	s := metrics.Summarize(res, qt, cats)

	if *verbose {
		fmt.Println("chunk  cat  level  size(Mb)  dl(s)  tput(Mbps)  buf(s)  stall(s)  vmaf")
		for _, c := range res.Chunks {
			fmt.Printf("%5d  Q%d   %5d  %8.2f  %5.1f  %10.2f  %6.1f  %8.1f  %4.0f\n",
				c.Index, cats[c.Index], c.Level, c.SizeBits/1e6, c.DownloadSec,
				c.ThroughputBps/1e6, c.BufferAfter, c.RebufferSec, qt.At(c.Level, c.Index))
		}
		fmt.Println()
	}
	fmt.Printf("video %s | trace %s (mean %.2f Mbps) | scheme %s\n", v.ID(), tr.ID, tr.Mean()/1e6, res.Scheme)
	fmt.Printf("  startup delay       %.1f s\n", s.StartupDelaySec)
	fmt.Printf("  Q4 chunk quality    %.1f (median %.1f)\n", s.Q4Quality, s.Q4MedianQuality)
	fmt.Printf("  Q1-Q3 chunk quality %.1f\n", s.Q13Quality)
	fmt.Printf("  low-quality chunks  %.1f%%\n", s.LowQualityPct)
	fmt.Printf("  rebuffering         %.1f s\n", s.RebufferSec)
	fmt.Printf("  quality change      %.2f /chunk\n", s.QualityChange)
	fmt.Printf("  data usage          %.1f MB\n", s.DataMB)
}
