// Command dashserve runs the DASH testbed: an HTTP segment server behind a
// trace-shaped link, optionally driving a client session against it.
//
// Serve only (then point any client at it):
//
//	dashserve -video BBB-youtube-h264 -addr 127.0.0.1:8080 -trace lte:0
//
// Serve and stream one session (the §6.8 experiment in one process):
//
//	dashserve -video BBB-youtube-h264 -trace lte:0 -scheme cava -run -scale 60
//
// Serve through a seeded fault profile and stream resiliently through it:
//
//	dashserve -video BBB-youtube-h264 -trace lte:0 -faults lossy -fault-seed 7 -run
//
// Observability: -debug-addr mounts Prometheus metrics (/metrics) and pprof
// (/debug/pprof/) on a side listener; -trace-out dumps the session's ABR
// decision trace as JSONL (render it with "abrexport trace -in <file>").
// In serve-only mode SIGINT/SIGTERM trigger a graceful drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cava/internal/cliutil"
	"cava/internal/dash"
	"cava/internal/edge"
	"cava/internal/metrics"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/telemetry"
	"cava/internal/video"
)

// drainTimeout bounds the serve-only graceful shutdown: in-flight segment
// downloads past this deadline are cut.
const drainTimeout = 5 * time.Second

func main() {
	var (
		videoID   = flag.String("video", "BBB-youtube-h264", "video id from the dataset")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		traceSpec = flag.String("trace", "lte:0", "shaping trace: lte:<i>, fcc:<i>, const:<mbps>, none")
		scale     = flag.Float64("scale", 60, "time compression factor")
		run       = flag.Bool("run", false, "also run a client session and print its metrics")
		scheme    = flag.String("scheme", "cava", "client scheme: cava, bolae-peak, bolae-avg, bolae-seg")
		chunksN   = flag.Int("chunks", 0, "client: stop after N chunks (0 = all)")
		faults    = flag.String("faults", "none", "fault profile: none, transient, lossy, outage")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		resilient = flag.Bool("resilient", true, "client: retry/abandon/skip through faults instead of aborting")
		debugAddr = flag.String("debug-addr", "", "listen address for /metrics and /debug/pprof (empty = off)")
		traceOut  = flag.String("trace-out", "", "write the session's decision trace as JSONL ('-' = stdout)")
		maxSess   = flag.Int("max-sessions", 0, "admit at most N concurrent client sessions (0 = unbounded)")
		shed      = flag.Bool("shed", false, "shed excess sessions immediately (503 + Retry-After) instead of queueing")
		breaker   = flag.Bool("breaker", false, "wrap the serving path in a circuit breaker")
		edgeMode  = flag.Bool("edge", false, "serve through the edge tier: consistent-hash origins, segment cache, failover")
		originsN  = flag.Int("origins", 3, "edge: number of origin replicas")
		edgeCache = flag.Int64("edge-cache-bytes", 64<<20, "edge: segment cache byte budget")
	)
	flag.Parse()

	v := video.ByID(*videoID)
	if v == nil {
		fmt.Fprintf(os.Stderr, "dashserve: unknown video %q\n", *videoID)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	var ring *telemetry.Ring
	if *traceOut != "" {
		ring = telemetry.NewRing(telemetry.DefaultRingCapacity)
	}
	session := telemetry.SessionID(v.ID(), *traceSpec, *scheme)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
		os.Exit(1)
	}
	var listener net.Listener = ln
	if *traceSpec != "none" {
		tr, err := cliutil.ParseTrace(*traceSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
			os.Exit(2)
		}
		shaper := dash.NewShaper(tr, *scale)
		shaper.SetMetrics(reg)
		listener = dash.NewShapedListener(ln, shaper)
		fmt.Printf("shaping with %s at %gx time scale\n", tr.ID, *scale)
	}
	faultCfg, err := dash.FaultProfile(*faults, *faultSeed, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
		os.Exit(2)
	}
	// The serving path is either one fault-injected origin, or the edge
	// tier fanned out over N such origins (each with its own listener and
	// seeded fault schedule).
	var inner http.Handler
	var injector *dash.FaultInjector
	var eg *edge.Edge
	if *edgeMode {
		originURLs := make([]string, *originsN)
		for i := 0; i < *originsN; i++ {
			ocfg, err := dash.FaultProfile(*faults, *faultSeed+int64(i)*101, *scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
				os.Exit(2)
			}
			osrv := dash.NewServer(v)
			osrv.SetMetrics(reg)
			oinj := dash.NewFaultInjector(ocfg, osrv.Handler())
			oln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "dashserve: origin listener: %v\n", err)
				os.Exit(1)
			}
			ohsrv := dash.NewHTTPServer(oinj)
			go func() { _ = ohsrv.Serve(oln) }()
			defer ohsrv.Close()
			originURLs[i] = "http://" + oln.Addr().String()
		}
		var err error
		eg, err = edge.New(edge.Config{
			Origins:    originURLs,
			VideoID:    v.ID(),
			CacheBytes: *edgeCache,
			JitterSeed: *faultSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
			os.Exit(1)
		}
		defer eg.Close()
		eg.SetMetrics(reg)
		inner = eg.Handler()
		fmt.Printf("edge tier: %d origins, %d MiB segment cache\n", *originsN, *edgeCache>>20)
		if faultCfg.Active() {
			fmt.Printf("injecting faults at every origin: profile %s, base seed %d\n", *faults, *faultSeed)
		}
	} else {
		server := dash.NewServer(v)
		server.SetMetrics(reg)
		injector = dash.NewFaultInjector(faultCfg, server.Handler())
		injector.SetMetrics(reg)
		if ring != nil {
			injector.SetRecorder(ring, session)
		}
		if faultCfg.Active() {
			fmt.Printf("injecting faults: profile %s, seed %d\n", *faults, *faultSeed)
		}
		inner = injector
	}
	// Overload protection wraps the whole serving path (health endpoints,
	// session admission, optional breaker) even when unconfigured, so
	// /healthz and /readyz are always available on the main listener.
	pcfg := dash.ProtectionConfig{MaxSessions: *maxSess, ShedImmediately: *shed}
	if *breaker {
		b := dash.DefaultBreakerConfig()
		pcfg.Breaker = &b
	}
	protection := dash.Protect(pcfg, inner)
	protection.SetMetrics(reg)
	// On every exit path, drain any request still queued for admission
	// after the listener stops accepting.
	defer protection.Close()
	if *maxSess > 0 || *breaker {
		fmt.Printf("overload protection: max-sessions %d, shed-immediately %v, breaker %v\n",
			*maxSess, *shed, *breaker)
	}
	srv := dash.NewHTTPServer(protection.Handler())
	fmt.Printf("serving %s on http://%s\n", v.ID(), ln.Addr())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dashserve: debug listener: %v\n", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg := dash.NewHTTPServer(mux)
		go dbg.Serve(dln)
		defer dbg.Close()
		fmt.Printf("debug endpoints on http://%s/metrics and /debug/pprof/\n", dln.Addr())
	}

	if !*run {
		// Serve until interrupted, then drain in-flight requests.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(listener) }()
		select {
		case err := <-errc:
			if err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
				os.Exit(1)
			}
		case <-ctx.Done():
			stop()
			fmt.Println("\nshutting down, draining in-flight requests...")
			sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintf(os.Stderr, "dashserve: shutdown: %v\n", err)
			}
		}
		dumpTrace(*traceOut, ring)
		return
	}

	go srv.Serve(listener)
	defer srv.Close()

	factory, err := cliutil.SchemeByName(*scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
		os.Exit(2)
	}
	var rcfg *dash.ResilienceConfig
	if *resilient {
		rcfg = dash.DefaultResilience()
		rcfg.JitterSeed = *faultSeed
	}
	client, err := dash.NewClient(dash.ClientConfig{
		BaseURL:      "http://" + ln.Addr().String(),
		NewAlgorithm: factory,
		TimeScale:    *scale,
		MaxChunks:    *chunksN,
		Resilience:   rcfg,
		Recorder:     ringOrNil(ring),
		SessionID:    session,
		Metrics:      reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	res, err := client.Run(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: session: %v\n", err)
		os.Exit(1)
	}
	qt := quality.NewTable(v, quality.VMAFPhone)
	s := metrics.Summarize(res, qt, scene.ClassifyDefault(v))
	fmt.Printf("session complete: scheme %s, %d chunks, wall %.1fs (virtual %.1fs)\n",
		res.Scheme, len(res.Chunks), time.Since(start).Seconds(), res.SessionSec)
	fmt.Printf("  Q4 quality %.1f | low-quality %.1f%% | rebuffer %.1fs | quality change %.2f | data %.1f MB\n",
		s.Q4Quality, s.LowQualityPct, s.RebufferSec, s.QualityChange, s.DataMB)
	if faultCfg.Active() && injector != nil {
		fs := injector.Stats()
		fmt.Printf("  faults injected: %d errors, %d resets, %d truncations, %d outage rejections (of %d requests)\n",
			fs.Errors, fs.Resets, fs.Truncations, fs.OutageRejections, fs.Requests)
	}
	if faultCfg.Active() {
		fmt.Printf("  client resilience: %d retries, %d truncations detected, %d abandonments, %d skipped chunks, %.2f MB wasted\n",
			res.TotalRetries, res.TotalTruncations, res.TotalAbandonments, res.SkippedChunks, res.WastedBits/8/1e6)
	}
	if eg != nil {
		es := eg.Stats()
		fmt.Printf("  edge: %.0f%% cache hit ratio (%d hits, %d misses, %d coalesced), %d failovers, %d stale served, %d shed\n",
			100*es.HitRatio(), es.Hits, es.Misses, es.Coalesced, es.Failovers, es.StaleServed, es.Shed)
	}
	dumpTrace(*traceOut, ring)
}

// ringOrNil converts a possibly-nil *Ring to the Recorder interface without
// producing a non-nil interface around a nil pointer.
func ringOrNil(r *telemetry.Ring) telemetry.Recorder {
	if r == nil {
		return nil
	}
	return r
}

// dumpTrace writes the collected decision trace to path as JSONL.
func dumpTrace(path string, ring *telemetry.Ring) {
	if path == "" || ring == nil {
		return
	}
	var w *os.File
	if path == "-" {
		w = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dashserve: trace-out: %v\n", err)
			return
		}
		defer f.Close()
		w = f
	}
	if err := ring.WriteJSONL(w); err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: trace-out: %v\n", err)
		return
	}
	if path != "-" {
		fmt.Printf("wrote %d trace events to %s (%d evicted)\n", ring.Len(), path, ring.Dropped())
	}
}
