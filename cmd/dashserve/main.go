// Command dashserve runs the DASH testbed: an HTTP segment server behind a
// trace-shaped link, optionally driving a client session against it.
//
// Serve only (then point any client at it):
//
//	dashserve -video BBB-youtube-h264 -addr 127.0.0.1:8080 -trace lte:0
//
// Serve and stream one session (the §6.8 experiment in one process):
//
//	dashserve -video BBB-youtube-h264 -trace lte:0 -scheme cava -run -scale 60
//
// Serve through a seeded fault profile and stream resiliently through it:
//
//	dashserve -video BBB-youtube-h264 -trace lte:0 -faults lossy -fault-seed 7 -run
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"cava/internal/cliutil"
	"cava/internal/dash"
	"cava/internal/metrics"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/video"
)

func main() {
	var (
		videoID   = flag.String("video", "BBB-youtube-h264", "video id from the dataset")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		traceSpec = flag.String("trace", "lte:0", "shaping trace: lte:<i>, fcc:<i>, const:<mbps>, none")
		scale     = flag.Float64("scale", 60, "time compression factor")
		run       = flag.Bool("run", false, "also run a client session and print its metrics")
		scheme    = flag.String("scheme", "cava", "client scheme: cava, bolae-peak, bolae-avg, bolae-seg")
		chunksN   = flag.Int("chunks", 0, "client: stop after N chunks (0 = all)")
		faults    = flag.String("faults", "none", "fault profile: none, transient, lossy, outage")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		resilient = flag.Bool("resilient", true, "client: retry/abandon/skip through faults instead of aborting")
	)
	flag.Parse()

	v := video.ByID(*videoID)
	if v == nil {
		fmt.Fprintf(os.Stderr, "dashserve: unknown video %q\n", *videoID)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
		os.Exit(1)
	}
	var listener net.Listener = ln
	if *traceSpec != "none" {
		tr, err := cliutil.ParseTrace(*traceSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
			os.Exit(2)
		}
		listener = dash.NewShapedListener(ln, dash.NewShaper(tr, *scale))
		fmt.Printf("shaping with %s at %gx time scale\n", tr.ID, *scale)
	}
	faultCfg, err := dash.FaultProfile(*faults, *faultSeed, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
		os.Exit(2)
	}
	injector := dash.NewFaultInjector(faultCfg, dash.NewServer(v).Handler())
	if faultCfg.Active() {
		fmt.Printf("injecting faults: profile %s, seed %d\n", *faults, *faultSeed)
	}
	srv := &http.Server{Handler: injector}
	fmt.Printf("serving %s on http://%s\n", v.ID(), ln.Addr())

	if !*run {
		if err := srv.Serve(listener); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	go srv.Serve(listener)
	defer srv.Close()

	factory, err := cliutil.SchemeByName(*scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
		os.Exit(2)
	}
	var rcfg *dash.ResilienceConfig
	if *resilient {
		rcfg = dash.DefaultResilience()
		rcfg.JitterSeed = *faultSeed
	}
	client, err := dash.NewClient(dash.ClientConfig{
		BaseURL:      "http://" + ln.Addr().String(),
		NewAlgorithm: factory,
		TimeScale:    *scale,
		MaxChunks:    *chunksN,
		Resilience:   rcfg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	res, err := client.Run(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashserve: session: %v\n", err)
		os.Exit(1)
	}
	qt := quality.NewTable(v, quality.VMAFPhone)
	s := metrics.Summarize(res, qt, scene.ClassifyDefault(v))
	fmt.Printf("session complete: scheme %s, %d chunks, wall %.1fs (virtual %.1fs)\n",
		res.Scheme, len(res.Chunks), time.Since(start).Seconds(), res.SessionSec)
	fmt.Printf("  Q4 quality %.1f | low-quality %.1f%% | rebuffer %.1fs | quality change %.2f | data %.1f MB\n",
		s.Q4Quality, s.LowQualityPct, s.RebufferSec, s.QualityChange, s.DataMB)
	if faultCfg.Active() {
		fs := injector.Stats()
		fmt.Printf("  faults injected: %d errors, %d resets, %d truncations, %d outage rejections (of %d requests)\n",
			fs.Errors, fs.Resets, fs.Truncations, fs.OutageRejections, fs.Requests)
		fmt.Printf("  client resilience: %d retries, %d truncations detected, %d abandonments, %d skipped chunks, %.2f MB wasted\n",
			res.TotalRetries, res.TotalTruncations, res.TotalAbandonments, res.SkippedChunks, res.WastedBits/8/1e6)
	}
}
