// Command videogen generates the 16-video synthetic VBR dataset and either
// prints per-track statistics or writes DASH manifests (JSON) to a
// directory.
//
// Usage:
//
//	videogen -stats
//	videogen -out manifests/
//	videogen -video ED-youtube-h264 -chunks
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cava/internal/dash"
	"cava/internal/scene"
	"cava/internal/video"
)

// writeManifest renders one video's manifest in the chosen format.
func writeManifest(dir, format, id string, m *dash.Manifest) error {
	create := func(name string) (*os.File, error) {
		return os.Create(filepath.Join(dir, name))
	}
	switch format {
	case "json":
		f, err := create(id + ".json")
		if err != nil {
			return err
		}
		defer f.Close()
		return m.EncodeTo(f)
	case "mpd":
		f, err := create(id + ".mpd")
		if err != nil {
			return err
		}
		defer f.Close()
		return dash.WriteMPD(f, m)
	case "hls":
		f, err := create(id + ".m3u8")
		if err != nil {
			return err
		}
		if err := dash.WriteHLSMaster(f, m); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		for ti := range m.Tracks {
			mf, err := create(fmt.Sprintf("%s_track_%d.m3u8", id, ti))
			if err != nil {
				return err
			}
			if err := dash.WriteHLSMedia(mf, m, ti); err != nil {
				_ = mf.Close()
				return err
			}
			if err := mf.Close(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (want json, mpd, or hls)", format)
	}
}

func main() {
	var (
		stats   = flag.Bool("stats", false, "print per-track statistics for the whole dataset")
		out     = flag.String("out", "", "write manifests to this directory")
		format  = flag.String("format", "json", "manifest format: json, mpd, or hls")
		videoID = flag.String("video", "", "with -chunks: which video to dump")
		chunks  = flag.Bool("chunks", false, "dump per-chunk sizes and categories for -video")
	)
	flag.Parse()

	switch {
	case *stats:
		for _, v := range video.Dataset() {
			fmt.Printf("%s (%s, %.0fs chunks, cap %.0fx, %d chunks)\n",
				v.ID(), v.Genre, v.ChunkDurSec, v.Cap, v.NumChunks())
			for _, t := range v.Tracks {
				fmt.Printf("  %-6s avg %6.2f Mbps  peak/avg %.2f  CoV %.2f\n",
					t.Res.Name, t.AvgBitrateBps/1e6, t.PeakToAvg(), t.CoV())
			}
		}
	case *chunks:
		v := video.ByID(*videoID)
		if v == nil {
			fmt.Fprintf(os.Stderr, "videogen: unknown video %q\n", *videoID)
			os.Exit(2)
		}
		cats := scene.ClassifyDefault(v)
		fmt.Println("chunk  category  complexity  sizes per track (Mb)")
		for i := 0; i < v.NumChunks(); i++ {
			fmt.Printf("%5d  Q%d        %.2f      ", i, cats[i], v.Complexity[i])
			for l := 0; l < v.NumTracks(); l++ {
				fmt.Printf(" %6.2f", v.ChunkSize(l, i)/1e6)
			}
			fmt.Println()
		}
	case *out != "":
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "videogen: %v\n", err)
			os.Exit(1)
		}
		files := 0
		for _, v := range video.Dataset() {
			m := dash.BuildManifest(v)
			if err := writeManifest(*out, *format, v.ID(), m); err != nil {
				fmt.Fprintf(os.Stderr, "videogen: %v\n", err)
				os.Exit(1)
			}
			files++
		}
		fmt.Printf("wrote %d %s manifests to %s\n", files, *format, *out)
	default:
		fmt.Fprintln(os.Stderr, "videogen: need -stats, -out <dir>, or -video <id> -chunks")
		os.Exit(2)
	}
}
