// Command tracegen generates the LTE and FCC network trace sets and writes
// them as CSV files (one file per trace) or prints summary statistics.
//
// Usage:
//
//	tracegen -set lte -n 200 -out traces/lte
//	tracegen -set fcc -n 200 -out traces/fcc
//	tracegen -set lte -n 50 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cava/internal/metrics"
	"cava/internal/trace"
)

func main() {
	var (
		set   = flag.String("set", "lte", "trace family: lte or fcc")
		n     = flag.Int("n", trace.DefaultSetSize, "number of traces")
		out   = flag.String("out", "", "output directory (omit with -stats)")
		stats = flag.Bool("stats", false, "print summary statistics instead of writing files")
	)
	flag.Parse()

	var traces []*trace.Trace
	switch *set {
	case "lte":
		traces = trace.GenLTESet(*n)
	case "fcc":
		traces = trace.GenFCCSet(*n)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown set %q (want lte or fcc)\n", *set)
		os.Exit(2)
	}

	if *stats {
		var means, covs, mins []float64
		for _, t := range traces {
			means = append(means, t.Mean()/1e6)
			covs = append(covs, t.CoV())
			mins = append(mins, t.Min()/1e6)
		}
		fmt.Printf("%s set: %d traces, interval %gs, >= %g s each\n",
			*set, len(traces), traces[0].IntervalSec, traces[0].Duration())
		sm, sc := metrics.NewSorted(means), metrics.NewSorted(covs)
		fmt.Printf("per-trace mean (Mbps): median %.2f, p10 %.2f, p90 %.2f\n",
			sm.Median(), sm.Percentile(10), sm.Percentile(90))
		fmt.Printf("per-trace CoV:         median %.2f, p10 %.2f, p90 %.2f\n",
			sc.Median(), sc.Percentile(10), sc.Percentile(90))
		fmt.Printf("per-trace min (Mbps):  median %.2f\n", metrics.Median(mins))
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: need -out <dir> or -stats")
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	for _, t := range traces {
		path := filepath.Join(*out, t.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		if err := trace.WriteCSV(f, t); err != nil {
			_ = f.Close()
			fmt.Fprintf(os.Stderr, "tracegen: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: closing %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d traces to %s\n", len(traces), *out)
}
