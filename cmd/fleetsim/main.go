// Command fleetsim runs the discrete-event fleet simulator: N concurrent
// ABR sessions in one process over a shared trace corpus, reporting
// fleet-level QoE distributions and engine throughput.
//
// Long runs are crash-tolerant: -checkpoint-dir snapshots the engine
// periodically and on SIGINT/SIGTERM, and -resume restores a run whose
// final output is bit-identical to the uninterrupted one. Even without a
// checkpoint dir, an interrupt drains cleanly and reports the partial
// population to stderr instead of losing all output.
//
// Usage:
//
//	fleetsim -sessions 1000000 -workers 0 -trace-corpus lte:100,fcc:100 -scheme cava
//	fleetsim -sessions 2000 -scheme robustmpc -videos ED-youtube-h264
//	fleetsim -sessions 1000000 -checkpoint-dir /tmp/fleet -checkpoint-every 60
//	fleetsim -sessions 1000000 -checkpoint-dir /tmp/fleet -resume
//	fleetsim -smoke                              (chaos invariants mode)
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cava/internal/abr"
	"cava/internal/chaos"
	"cava/internal/cliutil"
	"cava/internal/fleet"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/trace"
	"cava/internal/video"
)

func main() {
	var (
		sessions   = flag.Int("sessions", 10000, "fleet size (concurrent sessions)")
		arrival    = flag.Float64("arrival", 50, "session arrival rate per virtual second (0: all at once)")
		corpusSpec = flag.String("trace-corpus", "lte:40,fcc:20", "trace corpus: lte:<n>,fcc:<n>,const:<mbps>,mahimahi:<path>")
		schemeName = flag.String("scheme", "cava", "adaptation scheme (see cava-sim -list-schemes)")
		videoIDs   = flag.String("videos", "ED-youtube-h264,BBB-youtube-h264", "comma-separated dataset video ids")
		workers    = flag.Int("workers", 0, "event-loop shards/worker goroutines (0: all cores); results are identical for every value")
		seed       = flag.Int64("seed", 1, "seed for corpus assignment, offsets and arrivals")
		maxChunks  = flag.Int("max-chunks", 0, "truncate each session after this many chunks (0: full video)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for engine checkpoints: written periodically and on SIGINT/SIGTERM, read by -resume")
		ckptEvery  = flag.Float64("checkpoint-every", 60, "seconds between periodic checkpoints (with -checkpoint-dir; 0: only on interrupt)")
		resumeRun  = flag.Bool("resume", false, "restore the run from -checkpoint-dir instead of starting fresh (same flags, any -workers)")
		watchdog   = flag.Float64("watchdog", 0, "fail the run when any shard makes no event progress for this many wall seconds (0: disabled)")
		smoke      = flag.Bool("smoke", false, "chaos smoke mode: run the fleet invariant checks and exit non-zero on violation")
	)
	flag.Parse()

	videos, err := resolveVideos(*videoIDs)
	if err != nil {
		fail(err)
	}
	traces, err := cliutil.ParseCorpus(*corpusSpec)
	if err != nil {
		fail(err)
	}
	factory, err := cliutil.SchemeByName(*schemeName)
	if err != nil {
		fail(err)
	}
	scheme := abr.Scheme{Name: *schemeName, New: factory}

	if *smoke {
		runSmoke(videos, traces, scheme, *sessions, *arrival, *workers, *seed, *maxChunks)
		return
	}

	cfg := fleet.Config{
		Videos:             videos,
		Traces:             traces,
		Scheme:             scheme,
		Player:             player.DefaultConfig(),
		Sessions:           *sessions,
		Workers:            *workers,
		ArrivalRatePerSec:  *arrival,
		RandomTraceOffsets: true,
		Seed:               *seed,
		MaxChunks:          *maxChunks,
	}
	var e *fleet.Engine
	if *resumeRun {
		if *ckptDir == "" {
			fail(errors.New("-resume requires -checkpoint-dir"))
		}
		if e, err = fleet.Resume(cfg, *ckptDir); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fleetsim: resumed from %s\n", fleet.CheckpointPath(*ckptDir))
	} else if e, err = fleet.New(cfg); err != nil {
		fail(err)
	}

	// SIGINT/SIGTERM cancel the run's context: the engine quiesces at a
	// batch boundary, checkpoints when a dir is configured, and returns
	// the partial population — a kill no longer loses all output.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, runErr := e.RunContext(ctx, fleet.RunOptions{
		CheckpointDir:      *ckptDir,
		CheckpointEverySec: *ckptEvery,
		WatchdogSec:        *watchdog,
	})
	wallSec := time.Since(start).Seconds()
	if runErr != nil && !errors.Is(runErr, fleet.ErrInterrupted) {
		fail(runErr)
	}

	if errors.Is(runErr, fleet.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", runErr)
		fmt.Fprintf(os.Stderr, "fleetsim: partial population: %d of %d sessions completed at interrupt\n",
			res.Completed, res.Sessions)
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "fleetsim: checkpoint at %s — continue with -resume -checkpoint-dir %s\n",
				fleet.CheckpointPath(*ckptDir), *ckptDir)
		}
		_ = summarize(os.Stderr, res, *schemeName, len(videos), len(traces), *arrival, *seed, *workers, wallSec)
		reportQuarantines(res)
		os.Exit(1)
	}

	if err := summarize(os.Stdout, res, *schemeName, len(videos), len(traces), *arrival, *seed, *workers, wallSec); err != nil {
		fail(err)
	}
	reportQuarantines(res)
}

// summarize prints the run header, engine throughput and the per-session
// QoE distribution table. It serves both the stdout happy path and the
// stderr partial-population path, where the distributions cover only the
// sessions that finished before the interrupt. Write errors latch in the
// buffered writer and surface from the final Flush.
func summarize(out io.Writer, res *fleet.Result, schemeName string, nVideos, nTraces int,
	arrival float64, seed int64, workers int, wallSec float64) error {
	shards := workers
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	w := bufio.NewWriter(out)
	fmt.Fprintf(w, "fleet: %d sessions (%s), %d videos × %d traces, arrival %g/s, seed %d\n",
		res.Sessions, schemeName, nVideos, nTraces, arrival, seed)
	fmt.Fprintf(w, "engine: %d events in %.2f s wall — %.0f events/s, %.0f sessions/s (%d workers, GOMAXPROCS %d)\n",
		res.Events, wallSec, float64(res.Events)/wallSec, float64(res.Sessions)/wallSec, shards, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "virtual horizon: %.0f s (last completion)\n\n", res.VirtualSec)

	fmt.Fprintf(w, "%-16s %10s %10s %10s %10s\n", "per-session", "p10", "p50", "p90", "p99")
	row := func(name string, s metrics.Sorted) {
		fmt.Fprintf(w, "%-16s %10.2f %10.2f %10.2f %10.2f\n",
			name, s.Percentile(10), s.Percentile(50), s.Percentile(90), s.Percentile(99))
	}
	row("rebuffer (s)", res.RebufferSec)
	row("startup (s)", res.StartupDelaySec)
	row("avg quality", res.AvgQuality)
	row("qual change", res.QualityChange)
	row("avg level", res.AvgLevel)
	row("switches", res.Switches)
	row("data (MB)", res.DataMB)
	row("session (s)", res.SessionLenSec)
	return w.Flush()
}

// reportQuarantines surfaces panic-isolated sessions on stderr: the run
// completed around them, but their absence from the distributions should
// never be silent.
func reportQuarantines(res *fleet.Result) {
	if len(res.Quarantined) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "fleetsim: %d session(s) quarantined by panic isolation (excluded from distributions):\n",
		len(res.Quarantined))
	for _, q := range res.Quarantined {
		fmt.Fprintf(os.Stderr, "  session %d at chunk %d: %s\n", q.SessionID, q.Chunk, q.Reason)
	}
}

// runSmoke executes the chaos -fleet mode: invariant checks against the
// discrete-event engine, exiting 1 when any invariant is violated.
func runSmoke(videos []*video.Video, traces []*trace.Trace, scheme abr.Scheme,
	sessions int, arrival float64, workers int, seed int64, maxChunks int) {
	rep, err := chaos.RunFleet(chaos.FleetConfig{
		Videos: videos, Traces: traces, Scheme: scheme,
		Sessions: sessions, ArrivalRatePerSec: arrival, Workers: workers,
		Seed: seed, MaxChunks: maxChunks,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("fleet smoke: %d sessions, %d/%d events, horizon %.0f virtual s, slowest session %.0f s (deadline %.0f), %.2f wall s\n",
		rep.Sessions, rep.Events, rep.ExpectedEvents, rep.VirtualSec,
		rep.MaxSessionLenSec, rep.DeadlineVirtualSec, rep.WallSec)
	if errs := rep.Invariants(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "fleetsim: invariant violated: %v\n", e)
		}
		os.Exit(1)
	}
	fmt.Println("invariants: OK")
}

// resolveVideos maps comma-separated dataset ids to videos.
func resolveVideos(spec string) ([]*video.Video, error) {
	var out []*video.Video
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		v := video.ByID(id)
		if v == nil {
			return nil, fmt.Errorf("unknown video %q (try cava-sim -list-videos)", id)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no videos in %q", spec)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
	os.Exit(2)
}
