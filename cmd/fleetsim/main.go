// Command fleetsim runs the discrete-event fleet simulator: N concurrent
// ABR sessions in one process over a shared trace corpus, reporting
// fleet-level QoE distributions and engine throughput.
//
// Usage:
//
//	fleetsim -sessions 1000000 -workers 0 -trace-corpus lte:100,fcc:100 -scheme cava
//	fleetsim -sessions 2000 -scheme robustmpc -videos ED-youtube-h264
//	fleetsim -smoke                              (chaos invariants mode)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cava/internal/abr"
	"cava/internal/chaos"
	"cava/internal/cliutil"
	"cava/internal/fleet"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/trace"
	"cava/internal/video"
)

func main() {
	var (
		sessions   = flag.Int("sessions", 10000, "fleet size (concurrent sessions)")
		arrival    = flag.Float64("arrival", 50, "session arrival rate per virtual second (0: all at once)")
		corpusSpec = flag.String("trace-corpus", "lte:40,fcc:20", "trace corpus: lte:<n>,fcc:<n>,const:<mbps>,mahimahi:<path>")
		schemeName = flag.String("scheme", "cava", "adaptation scheme (see cava-sim -list-schemes)")
		videoIDs   = flag.String("videos", "ED-youtube-h264,BBB-youtube-h264", "comma-separated dataset video ids")
		workers    = flag.Int("workers", 0, "event-loop shards/worker goroutines (0: all cores); results are identical for every value")
		seed       = flag.Int64("seed", 1, "seed for corpus assignment, offsets and arrivals")
		maxChunks  = flag.Int("max-chunks", 0, "truncate each session after this many chunks (0: full video)")
		smoke      = flag.Bool("smoke", false, "chaos smoke mode: run the fleet invariant checks and exit non-zero on violation")
	)
	flag.Parse()

	videos, err := resolveVideos(*videoIDs)
	if err != nil {
		fail(err)
	}
	traces, err := cliutil.ParseCorpus(*corpusSpec)
	if err != nil {
		fail(err)
	}
	factory, err := cliutil.SchemeByName(*schemeName)
	if err != nil {
		fail(err)
	}
	scheme := abr.Scheme{Name: *schemeName, New: factory}

	if *smoke {
		runSmoke(videos, traces, scheme, *sessions, *arrival, *workers, *seed, *maxChunks)
		return
	}

	start := time.Now()
	res, err := fleet.Run(fleet.Config{
		Videos:             videos,
		Traces:             traces,
		Scheme:             scheme,
		Player:             player.DefaultConfig(),
		Sessions:           *sessions,
		Workers:            *workers,
		ArrivalRatePerSec:  *arrival,
		RandomTraceOffsets: true,
		Seed:               *seed,
		MaxChunks:          *maxChunks,
	})
	if err != nil {
		fail(err)
	}
	wall := time.Since(start).Seconds()

	shards := *workers
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("fleet: %d sessions (%s), %d videos × %d traces, arrival %g/s, seed %d\n",
		res.Sessions, *schemeName, len(videos), len(traces), *arrival, *seed)
	fmt.Printf("engine: %d events in %.2f s wall — %.0f events/s, %.0f sessions/s (%d workers, GOMAXPROCS %d)\n",
		res.Events, wall, float64(res.Events)/wall, float64(res.Sessions)/wall, shards, runtime.GOMAXPROCS(0))
	fmt.Printf("virtual horizon: %.0f s (last completion)\n\n", res.VirtualSec)

	fmt.Printf("%-16s %10s %10s %10s %10s\n", "per-session", "p10", "p50", "p90", "p99")
	row := func(name string, s metrics.Sorted) {
		fmt.Printf("%-16s %10.2f %10.2f %10.2f %10.2f\n",
			name, s.Percentile(10), s.Percentile(50), s.Percentile(90), s.Percentile(99))
	}
	row("rebuffer (s)", res.RebufferSec)
	row("startup (s)", res.StartupDelaySec)
	row("avg quality", res.AvgQuality)
	row("qual change", res.QualityChange)
	row("avg level", res.AvgLevel)
	row("switches", res.Switches)
	row("data (MB)", res.DataMB)
	row("session (s)", res.SessionLenSec)
}

// runSmoke executes the chaos -fleet mode: invariant checks against the
// discrete-event engine, exiting 1 when any invariant is violated.
func runSmoke(videos []*video.Video, traces []*trace.Trace, scheme abr.Scheme,
	sessions int, arrival float64, workers int, seed int64, maxChunks int) {
	rep, err := chaos.RunFleet(chaos.FleetConfig{
		Videos: videos, Traces: traces, Scheme: scheme,
		Sessions: sessions, ArrivalRatePerSec: arrival, Workers: workers,
		Seed: seed, MaxChunks: maxChunks,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("fleet smoke: %d sessions, %d/%d events, horizon %.0f virtual s, slowest session %.0f s (deadline %.0f), %.2f wall s\n",
		rep.Sessions, rep.Events, rep.ExpectedEvents, rep.VirtualSec,
		rep.MaxSessionLenSec, rep.DeadlineVirtualSec, rep.WallSec)
	if errs := rep.Invariants(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "fleetsim: invariant violated: %v\n", e)
		}
		os.Exit(1)
	}
	fmt.Println("invariants: OK")
}

// resolveVideos maps comma-separated dataset ids to videos.
func resolveVideos(spec string) ([]*video.Video, error) {
	var out []*video.Video
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		v := video.ByID(id)
		if v == nil {
			return nil, fmt.Errorf("unknown video %q (try cava-sim -list-videos)", id)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no videos in %q", spec)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
	os.Exit(2)
}
