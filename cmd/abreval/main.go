// Command abreval regenerates the paper's tables and figures.
//
// Usage:
//
//	abreval -list
//	abreval -exp fig8 [-traces 200] [-workers 8]
//	abreval -all [-traces 50]
//
// Each experiment prints the rows/series of the corresponding paper
// artifact; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cava/internal/cache"
	"cava/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig1..fig11, table1, table2, codec, cap4x, prederr, live)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		traces   = flag.Int("traces", 0, "traces per set (default 200)")
		workers  = flag.Int("workers", 0, "parallel workers (default GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persist sweep results as JSON under this directory; repeated invocations skip completed sweeps")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	opt := experiments.Options{Traces: *traces, Workers: *workers}
	if *cacheDir != "" {
		opt.Cache = cache.New(cache.WithDir(*cacheDir))
	}
	ids := []string{*exp}
	if *all {
		ids = experiments.IDs()
	} else if *exp == "" {
		fmt.Fprintln(os.Stderr, "abreval: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abreval: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("===== %s — %s (%.1fs)\n%s\n", res.ID, res.Title, time.Since(start).Seconds(), res.Text)
	}
}
