package cava_test

import (
	"encoding/json"
	"os"
	"runtime"
	"syscall"
	"testing"
	"time"

	"cava/internal/abr"
	"cava/internal/cliutil"
	"cava/internal/fleet"
	"cava/internal/player"
	"cava/internal/trace"
	"cava/internal/video"
)

// benchFleetPoint is one scaling point of the fleet benchmark.
type benchFleetPoint struct {
	Scheme         string  `json:"scheme"`
	Sessions       int     `json:"sessions"`
	MaxChunks      int     `json:"max_chunks"` // 0 = full-length sessions
	Workers        int     `json:"workers"`
	Events         int64   `json:"events"`
	VirtualSec     float64 `json:"virtual_sec"`
	WallSec        float64 `json:"wall_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	PeakRSSMB      float64 `json:"peak_rss_mb"`
}

// benchFleetReport is the BENCH_fleet.json schema. The speedup fields
// compare the headline multi-worker 1M-session point against the 1-worker
// 100k baseline: SpeedupVsOneWorker is the events/sec ratio, and
// SpeedupPerWorker divides that by the worker count — near 1.0 means the
// shards scale linearly in cores.
type benchFleetReport struct {
	GoMaxProcs           int               `json:"go_max_procs"`
	Points               []benchFleetPoint `json:"points"`
	BaselineEventsPerSec float64           `json:"baseline_events_per_sec"`
	HeadlineEventsPerSec float64           `json:"headline_events_per_sec"`
	SpeedupVsOneWorker   float64           `json:"speedup_vs_one_worker"`
	SpeedupPerWorker     float64           `json:"speedup_per_worker"`
	ScalingNote          string            `json:"scaling_note"`
}

// scalingNote documents the measured 1M-session point.
const scalingNote = "Sharded engine: sessions partition by id into Config.Workers shards (one " +
	"event heap per shard, results bit-identical for every worker count), so events/sec scales " +
	"with cores while staying near-flat in fleet size per worker (residual drop is cache " +
	"pressure on the larger working set). Peak RSS grows linearly in concurrent sessions " +
	"(~2.4 KB/session); the 1M point below is measured, not extrapolated. All sessions arrive " +
	"at virtual time 0 (worst case: the entire fleet is concurrently live)."

// peakRSSMB reads the process's peak resident set in MB (ru_maxrss is KB on
// Linux).
func peakRSSMB(t *testing.T) float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	return float64(ru.Maxrss) / 1024
}

// TestFleetBench is the fleet engine's scaling benchmark and its throughput
// gate in one. Full mode runs full-length sessions over the full 200-trace
// corpus (lte:100,fcc:100): a 1-worker 100k baseline and the headline
// multi-core 1M-session point, writing BENCH_fleet.json (with the measured
// speedup over the baseline) when BENCH_FLEET_OUT is set. Short mode (wired
// into `make check`) runs a reduced multi-worker point under the same
// per-worker sessions/sec floor. Every session arrives at virtual time 0,
// so the fleet size IS the concurrency — there is no arrival-process
// discounting in the claimed numbers.
func TestFleetBench(t *testing.T) {
	cavaFactory, err := cliutil.SchemeByName("cava")
	if err != nil {
		t.Fatal(err)
	}
	bbaFactory, err := cliutil.SchemeByName("bba1")
	if err != nil {
		t.Fatal(err)
	}
	videos := []*video.Video{
		video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi}),
		video.YouTubeVideo(video.Title{Name: "BBB", Genre: video.Animation}),
	}
	// The full 200-trace corpus the paper-scale experiments use, not the
	// reduced 60-trace mix earlier revisions benchmarked.
	traces := make([]*trace.Trace, 0, 200)
	traces = append(traces, trace.GenLTESet(100)...)
	traces = append(traces, trace.GenFCCSet(100)...)

	run := func(name string, factory abr.Factory, sessions, maxChunks, workers int) benchFleetPoint {
		start := time.Now()
		res, err := fleet.Run(fleet.Config{
			Videos:             videos,
			Traces:             traces,
			Scheme:             abr.Scheme{Name: name, New: factory},
			Player:             player.DefaultConfig(),
			Sessions:           sessions,
			Workers:            workers,
			RandomTraceOffsets: true,
			Seed:               1,
			MaxChunks:          maxChunks,
		})
		if err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start).Seconds()
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		p := benchFleetPoint{
			Scheme: name, Sessions: sessions, MaxChunks: maxChunks, Workers: workers,
			Events: res.Events, VirtualSec: res.VirtualSec, WallSec: wall,
			EventsPerSec:   float64(res.Events) / wall,
			SessionsPerSec: float64(sessions) / wall,
			PeakRSSMB:      peakRSSMB(t),
		}
		t.Logf("%s × %d sessions, %d workers: %d events, %.2f s wall, %.0f events/s, %.0f sessions/s, peak RSS %.0f MB",
			p.Scheme, p.Sessions, p.Workers, p.Events, p.WallSec, p.EventsPerSec, p.SessionsPerSec, p.PeakRSSMB)
		return p
	}

	// The floor is deliberately conservative (CAVA decisions, full session
	// semantics): a regression that serializes allocation or re-derives
	// per-chunk state would land far below it. It is per worker, so the
	// gate is meaningful on any core count.
	const sessionsPerSecPerWorkerFloor = 200.0

	if testing.Short() {
		p := run("cava", cavaFactory, 5000, 60, 0)
		// Short-mode sessions run 60 chunks vs ~120 full-length, so the
		// per-worker floor doubles.
		if perWorker := p.SessionsPerSec / float64(p.Workers); perWorker < 2*sessionsPerSecPerWorkerFloor {
			t.Errorf("fleet throughput %.0f sessions/s/worker below the %.0f floor",
				perWorker, 2*sessionsPerSecPerWorkerFloor)
		}
		return
	}

	// The 1M headline runs only for the artifact-writing `make bench-fleet`
	// invocation (BENCH_FLEET_OUT set): it is a multi-minute measurement,
	// and plain `go test ./...` must stay a fast tier-1 gate. The default
	// full mode still exercises the identical code path — baseline and a
	// multi-worker point — at 100k sessions.
	out := os.Getenv("BENCH_FLEET_OUT")
	headlineSessions := 100_000
	if out != "" {
		headlineSessions = 1_000_000
	}
	var points []benchFleetPoint
	points = append(points, run("bba1", bbaFactory, 10_000, 0, 1))
	baseline := run("cava", cavaFactory, 100_000, 0, 1)
	points = append(points, baseline)
	headline := run("cava", cavaFactory, headlineSessions, 0, 0)
	points = append(points, headline)

	if perWorker := headline.SessionsPerSec / float64(headline.Workers); perWorker < sessionsPerSecPerWorkerFloor {
		t.Errorf("fleet throughput %.0f sessions/s/worker below the %.0f floor",
			perWorker, sessionsPerSecPerWorkerFloor)
	}
	speedup := headline.EventsPerSec / baseline.EventsPerSec
	perWorkerSpeedup := speedup / float64(headline.Workers)
	t.Logf("%dk @ %d workers vs 100k @ 1 worker: %.2fx events/s (%.2fx per worker)",
		headlineSessions/1000, headline.Workers, speedup, perWorkerSpeedup)
	// Near-linear gate with slack for the larger working set's cache
	// pressure at the 1M point.
	if perWorkerSpeedup < 0.5 {
		t.Errorf("per-worker speedup %.2fx at the headline point is below 0.5x the 1-worker 100k baseline — sharding is not scaling", perWorkerSpeedup)
	}

	if out != "" {
		rep := benchFleetReport{
			GoMaxProcs:           runtime.GOMAXPROCS(0),
			Points:               points,
			BaselineEventsPerSec: baseline.EventsPerSec,
			HeadlineEventsPerSec: headline.EventsPerSec,
			SpeedupVsOneWorker:   speedup,
			SpeedupPerWorker:     perWorkerSpeedup,
			ScalingNote:          scalingNote,
		}
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("report written to %s", out)
	}
}
