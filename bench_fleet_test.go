package cava_test

import (
	"encoding/json"
	"os"
	"runtime"
	"syscall"
	"testing"
	"time"

	"cava/internal/abr"
	"cava/internal/cliutil"
	"cava/internal/fleet"
	"cava/internal/player"
	"cava/internal/trace"
	"cava/internal/video"
)

// benchFleetPoint is one scaling point of the fleet benchmark.
type benchFleetPoint struct {
	Scheme         string  `json:"scheme"`
	Sessions       int     `json:"sessions"`
	MaxChunks      int     `json:"max_chunks"` // 0 = full-length sessions
	Events         int64   `json:"events"`
	VirtualSec     float64 `json:"virtual_sec"`
	WallSec        float64 `json:"wall_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	PeakRSSMB      float64 `json:"peak_rss_mb"`
}

// benchFleetReport is the BENCH_fleet.json schema.
type benchFleetReport struct {
	GoMaxProcs  int               `json:"go_max_procs"`
	Points      []benchFleetPoint `json:"points"`
	ScalingNote string            `json:"scaling_note"`
}

// scalingNote documents the measured path to a million sessions.
const scalingNote = "Single-goroutine engine; events/sec is near-flat in fleet size (within " +
	"~20% from 10k to 100k sessions, the drop being cache pressure on the larger working set) " +
	"and peak RSS grows linearly in concurrent sessions (~2.4 KB/session at 100k), so 1M " +
	"sessions is ~2.5 GB RSS and ~10x the 100k point's wall time on one core. All sessions " +
	"arrive at virtual time 0 (worst case: the entire fleet is concurrently live)."

// peakRSSMB reads the process's peak resident set in MB (ru_maxrss is KB on
// Linux).
func peakRSSMB(t *testing.T) float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	return float64(ru.Maxrss) / 1024
}

// TestFleetBench is the fleet engine's scaling benchmark and its throughput
// gate in one. Full mode runs full-length sessions at 10k and the headline
// 100k-concurrent point and writes BENCH_fleet.json when BENCH_FLEET_OUT is
// set; short mode (wired into `make check`) runs a reduced point with the
// same sessions/sec floor. Every session arrives at virtual time 0, so the
// fleet size IS the concurrency — there is no arrival-process discounting
// in the claimed numbers.
func TestFleetBench(t *testing.T) {
	cavaFactory, err := cliutil.SchemeByName("cava")
	if err != nil {
		t.Fatal(err)
	}
	bbaFactory, err := cliutil.SchemeByName("bba1")
	if err != nil {
		t.Fatal(err)
	}
	videos := []*video.Video{
		video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi}),
		video.YouTubeVideo(video.Title{Name: "BBB", Genre: video.Animation}),
	}
	traces := make([]*trace.Trace, 0, 60)
	traces = append(traces, trace.GenLTESet(40)...)
	traces = append(traces, trace.GenFCCSet(20)...)

	run := func(name string, factory abr.Factory, sessions, maxChunks int) benchFleetPoint {
		start := time.Now()
		res, err := fleet.Run(fleet.Config{
			Videos:             videos,
			Traces:             traces,
			Scheme:             abr.Scheme{Name: name, New: factory},
			Player:             player.DefaultConfig(),
			Sessions:           sessions,
			RandomTraceOffsets: true,
			Seed:               1,
			MaxChunks:          maxChunks,
		})
		if err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start).Seconds()
		p := benchFleetPoint{
			Scheme: name, Sessions: sessions, MaxChunks: maxChunks,
			Events: res.Events, VirtualSec: res.VirtualSec, WallSec: wall,
			EventsPerSec:   float64(res.Events) / wall,
			SessionsPerSec: float64(sessions) / wall,
			PeakRSSMB:      peakRSSMB(t),
		}
		t.Logf("%s × %d sessions: %d events, %.2f s wall, %.0f events/s, %.0f sessions/s, peak RSS %.0f MB",
			p.Scheme, p.Sessions, p.Events, p.WallSec, p.EventsPerSec, p.SessionsPerSec, p.PeakRSSMB)
		return p
	}

	// The floor is deliberately conservative (one core, CAVA decisions,
	// full session semantics): a regression that serializes allocation or
	// re-derives per-chunk state would land far below it.
	const sessionsPerSecFloor = 200.0

	var points []benchFleetPoint
	if testing.Short() {
		points = append(points, run("cava", cavaFactory, 5000, 60))
	} else {
		points = append(points, run("bba1", bbaFactory, 10_000, 0))
		points = append(points, run("cava", cavaFactory, 10_000, 0))
		points = append(points, run("cava", cavaFactory, 100_000, 0))
	}
	headline := points[len(points)-1]
	// Scaled floor: full-length sessions run ~120 chunks, short-mode ones 60.
	floor := sessionsPerSecFloor
	if testing.Short() {
		floor *= 2
	}
	if headline.SessionsPerSec < floor {
		t.Errorf("fleet throughput %.0f sessions/s below the %.0f floor", headline.SessionsPerSec, floor)
	}

	if out := os.Getenv("BENCH_FLEET_OUT"); out != "" {
		rep := benchFleetReport{
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Points:      points,
			ScalingNote: scalingNote,
		}
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("report written to %s", out)
	}
}
