module cava

go 1.22
