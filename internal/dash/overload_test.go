package dash

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cava/internal/telemetry"
)

// Admission-control tests pin every behaviour on a FakeClock: queue
// timeouts, idle-session expiry and token-bucket refill all resolve in
// virtual time, so the tests are exact and sleep-free.

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
}

// reqAs issues a request carrying the given session identity.
func reqAs(t *testing.T, h http.Handler, session, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, path, nil)
	if session != "" {
		r.Header.Set(SessionIDHeader, session)
	}
	h.ServeHTTP(w, r)
	return w
}

func TestAdmissionSessionLimitQueueTimeout(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	p := Protect(ProtectionConfig{
		MaxSessions:     1,
		QueueTimeoutSec: 0.05,
		SessionIdleSec:  100,
		RetryAfterSec:   2,
	}, okHandler()).WithClock(fc)
	h := p.Handler()

	if w := reqAs(t, h, "alice", "/manifest.json"); w.Code != http.StatusOK {
		t.Fatalf("first session got %d, want 200", w.Code)
	}
	// A second session queues, the clock advances through the polls, the
	// queue times out, and the request is shed with the Retry-After hint.
	w := reqAs(t, h, "bob", "/manifest.json")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("second session got %d, want 503", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q", ra, "2")
	}
	st := p.AdmissionStats()
	if st.Admitted != 1 || st.ShedQueueTimeout != 1 || st.ShedTotal() != 1 {
		t.Fatalf("stats = %+v, want 1 admitted and 1 queue-timeout shed", st)
	}
	// The established session keeps streaming while the other is shed.
	if w := reqAs(t, h, "alice", "/seg/0/0"); w.Code != http.StatusOK {
		t.Fatalf("established session got %d after shed, want 200", w.Code)
	}
}

func TestAdmissionSlotFreesAfterIdleExpiry(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	p := Protect(ProtectionConfig{
		MaxSessions:     1,
		ShedImmediately: true,
		SessionIdleSec:  10,
	}, okHandler()).WithClock(fc)
	h := p.Handler()

	reqAs(t, h, "alice", "/manifest.json")
	if w := reqAs(t, h, "bob", "/manifest.json"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("second session got %d while saturated, want 503", w.Code)
	}
	if got := p.ActiveSessions(); got != 1 {
		t.Fatalf("active sessions = %d, want 1", got)
	}
	// After the idle window the dead session's slot is reclaimed.
	fc.Advance(11 * time.Second)
	if w := reqAs(t, h, "bob", "/manifest.json"); w.Code != http.StatusOK {
		t.Fatalf("session after expiry got %d, want 200", w.Code)
	}
	st := p.AdmissionStats()
	if st.ShedQueueFull != 1 || st.Admitted != 2 || st.PeakSessions != 1 {
		t.Fatalf("stats = %+v, want 1 queue-full shed, 2 admitted, peak 1", st)
	}
}

func TestAdmissionRateLimitTokenBucket(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	p := Protect(ProtectionConfig{
		RatePerSessionPerSec: 1,
		SessionBurst:         2,
	}, okHandler()).WithClock(fc)
	h := p.Handler()

	for i := 0; i < 2; i++ {
		if w := reqAs(t, h, "alice", "/seg/0/0"); w.Code != http.StatusOK {
			t.Fatalf("burst request %d got %d, want 200", i, w.Code)
		}
	}
	w := reqAs(t, h, "alice", "/seg/0/1")
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("over-rate request = %d (Retry-After %q), want 503 with Retry-After",
			w.Code, w.Header().Get("Retry-After"))
	}
	// Another session has its own bucket.
	if w := reqAs(t, h, "bob", "/seg/0/0"); w.Code != http.StatusOK {
		t.Fatalf("other session got %d, want 200", w.Code)
	}
	// One virtual second refills one token.
	fc.Advance(time.Second)
	if w := reqAs(t, h, "alice", "/seg/0/2"); w.Code != http.StatusOK {
		t.Fatalf("request after refill got %d, want 200", w.Code)
	}
	if st := p.AdmissionStats(); st.ShedRateLimited != 1 {
		t.Fatalf("stats = %+v, want 1 rate-limited shed", st)
	}
}

func TestAdmissionQueueDepthBound(t *testing.T) {
	// Two sessions contend for a saturated server whose queue admits one
	// waiter: one waits out the (real-clock) timeout, the other is bounced
	// for queue depth. Both are shed; the split depends on scheduling.
	p := Protect(ProtectionConfig{
		MaxSessions:     1,
		QueueDepth:      1,
		QueueTimeoutSec: 0.02,
		SessionIdleSec:  100,
	}, okHandler())
	h := p.Handler()
	reqAs(t, h, "alice", "/manifest.json")

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i, s := range []string{"bob", "carol"} {
		wg.Add(1)
		go func(i int, s string) {
			defer wg.Done()
			codes[i] = reqAs(t, h, s, "/manifest.json").Code
		}(i, s)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusServiceUnavailable {
			t.Fatalf("contender %d got %d, want 503", i, c)
		}
	}
	if st := p.AdmissionStats(); st.ShedTotal() != 2 {
		t.Fatalf("stats = %+v, want both contenders shed", st)
	}
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	bcfg := BreakerConfig{ConsecutiveFailures: 1, OpenSec: 5}
	p := Protect(ProtectionConfig{
		MaxSessions:     1,
		ShedImmediately: true,
		SessionIdleSec:  100,
		Breaker:         &bcfg,
	}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "sad", http.StatusServiceUnavailable)
	})).WithClock(fc)
	h := p.Handler()

	if w := reqAs(t, h, "", "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", w.Code)
	}
	if w := reqAs(t, h, "", "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("/readyz before load = %d, want 200", w.Code)
	}
	// One failing request both fills the session table and opens the
	// breaker; readiness must drop on either count.
	reqAs(t, h, "alice", "/seg/0/0")
	if w := reqAs(t, h, "", "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while saturated = %d, want 503", w.Code)
	}
	if !p.Saturated() {
		t.Fatal("Saturated() = false with a full table and an open breaker")
	}
	// Health stays green regardless: the process is alive.
	if w := reqAs(t, h, "", "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz under load = %d, want 200", w.Code)
	}
}

func TestClientKeyFallsBackToRemoteAddr(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/manifest.json", nil)
	r.RemoteAddr = "10.1.2.3:4567"
	if got := clientKey(r); got != "10.1.2.3:4567" {
		t.Fatalf("clientKey = %q, want remote addr", got)
	}
	r.Header.Set(SessionIDHeader, "sess-7")
	if got := clientKey(r); got != "sess-7" {
		t.Fatalf("clientKey = %q, want header value", got)
	}
}

func TestProtectionMetricsExposition(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	reg := telemetry.NewRegistry()
	p := Protect(ProtectionConfig{MaxSessions: 1, ShedImmediately: true, SessionIdleSec: 100},
		okHandler()).WithClock(fc)
	p.SetMetrics(reg)
	h := p.Handler()
	reqAs(t, h, "alice", "/manifest.json")
	reqAs(t, h, "bob", "/manifest.json")

	w := httptest.NewRecorder()
	reg.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := w.Body.String()
	for _, want := range []string{
		"dash_admission_active_sessions 1",
		`dash_admission_shed_total{reason="queue_full"} 1`,
		"dash_admission_admitted_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}
