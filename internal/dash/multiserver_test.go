package dash

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"cava/internal/video"
)

// TestVideoMuxRoutes checks the multi-video origin namespace: /v/<id>/
// routes to that video's server, bare paths serve the default video, and
// unknown ids 404.
func TestVideoMuxRoutes(t *testing.T) {
	v1 := testVideo()
	v2 := video.FFmpegVideo(video.Title{Name: "BBB", Genre: video.Animation}, video.H264)
	mux, err := NewVideoMux(NewServer(v1), NewServer(v2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mux.Handler())
	defer srv.Close()

	fetch := func(path string) (int, *Manifest) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return resp.StatusCode, nil
		}
		m, err := DecodeManifest(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, m
	}

	if _, m := fetch("/manifest.json"); m == nil || m.VideoID != v1.ID() {
		t.Errorf("default manifest = %+v, want video %s", m, v1.ID())
	}
	if _, m := fetch("/v/" + v2.ID() + "/manifest.json"); m == nil || m.VideoID != v2.ID() {
		t.Errorf("prefixed manifest = %+v, want video %s", m, v2.ID())
	}
	if code, _ := fetch("/v/nope/manifest.json"); code != http.StatusNotFound {
		t.Errorf("unknown video id = %d, want 404", code)
	}

	// Segments resolve under the prefix too.
	resp, err := http.Get(srv.URL + "/v/" + v2.ID() + SegmentURL(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("prefixed segment = %d, want 200", resp.StatusCode)
	}

	if got := mux.VideoIDs(); len(got) != 2 {
		t.Errorf("VideoIDs = %v", got)
	}
	if mux.Server(v2.ID()) == nil || mux.Server("nope") != nil {
		t.Error("Server lookup misrouted")
	}
	if _, err := NewVideoMux(); err == nil {
		t.Error("empty VideoMux accepted")
	}
	if _, err := NewVideoMux(NewServer(v1), NewServer(v1)); err == nil {
		t.Error("duplicate video accepted")
	}
}
