package dash

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cava/internal/telemetry"
)

// Breaker tests drive every state transition on a FakeClock, so the
// open → half-open cool-down is pinned in virtual time with no sleeps.

// failNTimes returns a handler answering 503 for the first n requests and
// 200 afterwards.
func failNTimes(n int64) http.Handler {
	var served int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&served, 1) <= n {
			http.Error(w, "backend sad", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	})
}

func doReq(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 3, OpenSec: 5}, failNTimes(1<<30)).WithClock(fc)

	for i := 0; i < 3; i++ {
		w := doReq(t, b, "/seg/0/0")
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: code %d, want 503 from inner", i, w.Code)
		}
		if w.Header().Get("Retry-After") != "" {
			t.Fatalf("request %d passed through but carries Retry-After", i)
		}
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", st)
	}
	w := doReq(t, b, "/seg/0/1")
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("short-circuit response = %d (Retry-After %q), want 503 with Retry-After",
			w.Code, w.Header().Get("Retry-After"))
	}
	st := b.Stats()
	if st.Opens != 1 || st.ShortCircuits != 1 || st.Failures != 3 {
		t.Fatalf("stats = %+v, want 1 open, 1 short-circuit, 3 failures", st)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	// Fail exactly enough to open, then recover.
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 2, OpenSec: 5}, failNTimes(2)).WithClock(fc)

	doReq(t, b, "/a")
	doReq(t, b, "/a")
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	// Still inside the cool-down: short-circuited.
	fc.Advance(4 * time.Second)
	if w := doReq(t, b, "/a"); w.Header().Get("Retry-After") == "" {
		t.Fatal("request inside cool-down was not short-circuited")
	}
	// Past the cool-down: the next request is a probe and succeeds.
	fc.Advance(2 * time.Second)
	if w := doReq(t, b, "/a"); w.Code != http.StatusOK {
		t.Fatalf("probe got %d, want 200", w.Code)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	st := b.Stats()
	if st.HalfOpens != 1 || st.Closes != 1 {
		t.Fatalf("stats = %+v, want 1 half-open and 1 close", st)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 2, OpenSec: 3}, failNTimes(1<<30)).WithClock(fc)

	doReq(t, b, "/a")
	doReq(t, b, "/a")
	fc.Advance(3 * time.Second)
	if w := doReq(t, b, "/a"); w.Header().Get("Retry-After") != "" {
		t.Fatal("probe was short-circuited instead of reaching the inner handler")
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open again", st)
	}
	if st := b.Stats(); st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
}

func TestBreakerAbortedHandlerCountsAsFailure(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	aborter := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 2, OpenSec: 5}, aborter).WithClock(fc)

	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("abort panic swallowed; net/http relies on it propagating")
				}
			}()
			doReq(t, b, "/a")
		}()
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after aborted handlers = %v, want open", st)
	}
}

func TestBreakerMetricsExposition(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	reg := telemetry.NewRegistry()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 1, OpenSec: 5}, failNTimes(1<<30)).WithClock(fc)
	b.SetMetrics(reg)
	doReq(t, b, "/a") // opens
	doReq(t, b, "/a") // short-circuits

	w := httptest.NewRecorder()
	reg.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := w.Body.String()
	for _, want := range []string{
		`dash_breaker_transitions_total{to="open"} 1`,
		"dash_breaker_short_circuit_total 1",
		"dash_breaker_state 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}
