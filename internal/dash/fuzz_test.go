package dash

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the manifest parsers (JSON, MPD XML, HLS playlists):
// arbitrary input must never panic, and accepted input must validate.

func FuzzDecodeManifest(f *testing.F) {
	var seed bytes.Buffer
	BuildManifest(testVideo()).EncodeTo(&seed)
	f.Add(seed.String())
	f.Add(`{"video_id":"x","chunk_dur":2,"tracks":[]}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, in string) {
		m, err := DecodeManifest(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded manifest fails validation: %v", err)
		}
	})
}

func FuzzReadMPD(f *testing.F) {
	var seed bytes.Buffer
	WriteMPD(&seed, BuildManifest(testVideo()))
	f.Add(seed.String())
	f.Add(`<?xml version="1.0"?><MPD></MPD>`)
	f.Add(`<MPD><Period><AdaptationSet contentType="video"></AdaptationSet></Period></MPD>`)
	f.Add(`not xml at all`)
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMPD(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parsed MPD fails validation: %v", err)
		}
	})
}

func FuzzReadHLSMedia(f *testing.F) {
	var seed bytes.Buffer
	WriteHLSMedia(&seed, BuildManifest(testVideo()), 2)
	f.Add(seed.String())
	f.Add("#EXTM3U\n#EXTINF:2,\nseg/0/0\n")
	f.Add("#EXTM3U\n#EXT-X-BITRATE:x\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadHLSMedia(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(tr.URIs) == 0 {
			t.Fatal("accepted playlist with no segments")
		}
		if len(tr.URIs) != len(tr.SegmentDur) || len(tr.URIs) != len(tr.SegmentBits) {
			t.Fatal("parallel slices diverged")
		}
	})
}

func FuzzReadHLSMaster(f *testing.F) {
	var seed bytes.Buffer
	WriteHLSMaster(&seed, BuildManifest(testVideo()))
	f.Add(seed.String())
	f.Add("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1\nv.m3u8\n")
	f.Add("#EXTM3U\n")
	f.Fuzz(func(t *testing.T, in string) {
		vs, err := ReadHLSMaster(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(vs) == 0 {
			t.Fatal("accepted master with no variants")
		}
		for _, v := range vs {
			if v.URI == "" {
				t.Fatal("variant without URI")
			}
		}
	})
}

func FuzzParseISODuration(f *testing.F) {
	f.Add("PT600S")
	f.Add("PT1H2M3S")
	f.Add("P1D")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		v, err := parseISODuration(in)
		if err == nil && (v < 0 || v != v) {
			t.Fatalf("accepted duration %q parsed to %v", in, v)
		}
	})
}
