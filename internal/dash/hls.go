package dash

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// HLS interop. HLS is the other dominant ABR protocol; per the paper's
// §3.2 footnote, HLS recently added per-segment size information
// (EXT-X-BITRATE), which is what makes VBR-aware adaptation possible there.
// WriteHLSMaster/WriteHLSMedia render a Manifest as a master playlist plus
// one media playlist per track; ReadHLSMedia parses a media playlist back
// into one track's segment series.

// WriteHLSMaster renders the master playlist. Media playlists are
// addressed as "track_<id>.m3u8".
func WriteHLSMaster(w io.Writer, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	fmt.Fprintln(bw, "#EXT-X-VERSION:7")
	fmt.Fprintf(bw, "## video %s\n", m.VideoID)
	for _, t := range m.Tracks {
		fmt.Fprintf(bw, "#EXT-X-STREAM-INF:BANDWIDTH=%d,AVERAGE-BANDWIDTH=%d,RESOLUTION=%dx%d,FRAME-RATE=%.3f\n",
			int64(math.Round(t.PeakBitrateBps)), int64(math.Round(t.DeclaredBitrateBps)),
			t.Width, t.Height, m.FPS)
		fmt.Fprintf(bw, "track_%d.m3u8\n", t.ID)
	}
	return bw.Flush()
}

// WriteHLSMedia renders one track's media playlist with per-segment
// EXT-X-BITRATE tags (kbps, as the HLS spec defines).
func WriteHLSMedia(w io.Writer, m *Manifest, trackID int) error {
	if trackID < 0 || trackID >= len(m.Tracks) {
		return fmt.Errorf("dash: no track %d", trackID)
	}
	t := m.Tracks[trackID]
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	fmt.Fprintln(bw, "#EXT-X-VERSION:7")
	fmt.Fprintf(bw, "#EXT-X-TARGETDURATION:%d\n", int(math.Ceil(m.ChunkDurSec)))
	fmt.Fprintln(bw, "#EXT-X-MEDIA-SEQUENCE:0")
	fmt.Fprintln(bw, "#EXT-X-PLAYLIST-TYPE:VOD")
	for i, bits := range t.SegmentBits {
		kbps := bits / m.ChunkDurSec / 1000
		fmt.Fprintf(bw, "#EXT-X-BITRATE:%d\n", int64(math.Round(kbps)))
		fmt.Fprintf(bw, "#EXTINF:%.3f,\n", m.ChunkDurSec)
		fmt.Fprintf(bw, "seg/%d/%d\n", trackID, i)
	}
	fmt.Fprintln(bw, "#EXT-X-ENDLIST")
	return bw.Flush()
}

// HLSMediaTrack is the result of parsing one media playlist.
type HLSMediaTrack struct {
	// TargetDuration is the declared maximum segment duration (seconds).
	TargetDuration float64
	// SegmentDur holds each segment's EXTINF duration.
	SegmentDur []float64
	// SegmentBits holds each segment's size in bits, reconstructed from
	// EXT-X-BITRATE × duration (0 when the tag is absent).
	SegmentBits []float64
	// URIs holds the segment addresses.
	URIs []string
}

// ReadHLSMedia parses a media playlist.
func ReadHLSMedia(r io.Reader) (*HLSMediaTrack, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "#EXTM3U" {
		return nil, fmt.Errorf("dash: not an m3u8 playlist")
	}
	out := &HLSMediaTrack{}
	var pendingBitrateKbps float64
	var pendingDur float64
	haveDur := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "#EXT-X-ENDLIST":
			continue
		case strings.HasPrefix(line, "#EXT-X-TARGETDURATION:"):
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, "#EXT-X-TARGETDURATION:"), 64)
			if err != nil {
				return nil, fmt.Errorf("dash: bad target duration in %q", line)
			}
			out.TargetDuration = v
		case strings.HasPrefix(line, "#EXT-X-BITRATE:"):
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, "#EXT-X-BITRATE:"), 64)
			if err != nil {
				return nil, fmt.Errorf("dash: bad bitrate in %q", line)
			}
			pendingBitrateKbps = v
		case strings.HasPrefix(line, "#EXTINF:"):
			val := strings.TrimPrefix(line, "#EXTINF:")
			if i := strings.Index(val, ","); i >= 0 {
				val = val[:i]
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("dash: bad EXTINF in %q", line)
			}
			pendingDur = v
			haveDur = true
		case strings.HasPrefix(line, "#"):
			continue // unknown tag
		default:
			if !haveDur {
				return nil, fmt.Errorf("dash: segment %q without EXTINF", line)
			}
			out.URIs = append(out.URIs, line)
			out.SegmentDur = append(out.SegmentDur, pendingDur)
			out.SegmentBits = append(out.SegmentBits, pendingBitrateKbps*1000*pendingDur)
			pendingBitrateKbps = 0
			haveDur = false
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.URIs) == 0 {
		return nil, fmt.Errorf("dash: playlist has no segments")
	}
	return out, nil
}

// HLSMasterVariant is one entry of a parsed master playlist.
type HLSMasterVariant struct {
	Bandwidth        float64 // peak, bits/sec
	AverageBandwidth float64
	Width, Height    int
	URI              string
}

// ReadHLSMaster parses a master playlist's variant list.
func ReadHLSMaster(r io.Reader) ([]HLSMasterVariant, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "#EXTM3U" {
		return nil, fmt.Errorf("dash: not an m3u8 playlist")
	}
	var out []HLSMasterVariant
	var pending *HLSMasterVariant
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "#EXT-X-STREAM-INF:"):
			v := HLSMasterVariant{}
			for _, attr := range splitHLSAttrs(strings.TrimPrefix(line, "#EXT-X-STREAM-INF:")) {
				kv := strings.SplitN(attr, "=", 2)
				if len(kv) != 2 {
					continue
				}
				switch kv[0] {
				case "BANDWIDTH":
					v.Bandwidth, _ = strconv.ParseFloat(kv[1], 64)
				case "AVERAGE-BANDWIDTH":
					v.AverageBandwidth, _ = strconv.ParseFloat(kv[1], 64)
				case "RESOLUTION":
					if i := strings.Index(kv[1], "x"); i > 0 {
						v.Width, _ = strconv.Atoi(kv[1][:i])
						v.Height, _ = strconv.Atoi(kv[1][i+1:])
					}
				}
			}
			pending = &v
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		default:
			if pending != nil {
				pending.URI = line
				out = append(out, *pending)
				pending = nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dash: master playlist has no variants")
	}
	return out, nil
}

// splitHLSAttrs splits an attribute list on commas outside quoted strings.
func splitHLSAttrs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
