package dash

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"cava/internal/telemetry"
	"cava/internal/video"
)

// Server serves a video's manifest and segments over HTTP:
//
//	GET /manifest.json        -> JSON manifest (native format)
//	GET /manifest.mpd         -> DASH MPD (XML)
//	GET /master.m3u8          -> HLS master playlist
//	GET /track_{id}.m3u8      -> HLS media playlist for one track
//	GET /seg/{track}/{index}  -> segment payload (application/octet-stream)
//
// Segment payloads are synthetic bytes of exactly the encoded size (rounded
// up to whole bytes); the client measures throughput from their transfer,
// which is all ABR logic observes from real segments too.
type Server struct {
	v   *video.Video
	m   *Manifest
	pad []byte // shared payload source, served in slices

	// Telemetry handles; nil (the default) disables instrumentation at
	// zero cost — see telemetry.Registry's nil-safety contract.
	reqs     *telemetry.Counter
	segReqs  *telemetry.Counter
	segBytes *telemetry.Counter
	notFound *telemetry.Counter
	badReq   *telemetry.Counter
}

// NewServer builds a server for one video.
func NewServer(v *video.Video) *Server {
	// A modest shared buffer; segment writes loop over it. Non-zero
	// content defeats any accidental compression in the path.
	pad := make([]byte, 64<<10)
	for i := range pad {
		pad[i] = byte(i*131 + 17)
	}
	return &Server{v: v, m: BuildManifest(v), pad: pad}
}

// Manifest exposes the server's manifest (for tests and tools).
func (s *Server) Manifest() *Manifest { return s.m }

// SetMetrics registers the server's counters on reg (nil disables). Call
// before serving; handles are swapped, not synchronized.
func (s *Server) SetMetrics(reg *telemetry.Registry) {
	s.reqs = reg.Counter("dash_server_requests_total", "HTTP requests served (all endpoints)")
	s.segReqs = reg.Counter("dash_server_segment_requests_total", "segment requests served")
	s.segBytes = reg.Counter("dash_server_segment_bytes_total", "segment payload bytes written")
	s.notFound = reg.Counter("dash_server_not_found_total", "requests answered 404")
	s.badReq = reg.Counter("dash_server_bad_request_total", "requests answered 400")
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest.json", s.handleManifest)
	mux.HandleFunc("/manifest.mpd", s.handleMPD)
	mux.HandleFunc("/master.m3u8", s.handleHLSMaster)
	mux.HandleFunc("/seg/", s.handleSegment)
	// Media playlists have per-track names (/track_<id>.m3u8), which a
	// ServeMux exact pattern cannot express; route them from the root.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/track_") && strings.HasSuffix(r.URL.Path, ".m3u8") {
			s.handleHLSMedia(w, r)
			return
		}
		s.notFound.Inc()
		http.NotFound(w, r)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Inc()
		mux.ServeHTTP(w, r)
	})
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.m.EncodeTo(w); err != nil {
		// Connection-level failure; nothing more to do.
		return
	}
}

func (s *Server) handleMPD(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/dash+xml")
	_ = WriteMPD(w, s.m)
}

func (s *Server) handleHLSMaster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
	_ = WriteHLSMaster(w, s.m)
}

func (s *Server) handleHLSMedia(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/track_")
	name = strings.TrimSuffix(name, ".m3u8")
	id, err := strconv.Atoi(name)
	if err != nil || id < 0 || id >= len(s.m.Tracks) {
		s.notFound.Inc()
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
	_ = WriteHLSMedia(w, s.m, id)
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	track, index, err := parseSegmentPath(r.URL.Path)
	if err != nil {
		s.badReq.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if track < 0 || track >= s.v.NumTracks() || index < 0 || index >= s.v.NumChunks() {
		s.notFound.Inc()
		http.NotFound(w, r)
		return
	}
	s.segReqs.Inc()
	bytes := int(s.v.ChunkSize(track, index)+7) / 8
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(bytes))
	for bytes > 0 {
		n := bytes
		if n > len(s.pad) {
			n = len(s.pad)
		}
		written, err := w.Write(s.pad[:n])
		s.segBytes.Add(uint64(written))
		if err != nil {
			return // client went away
		}
		bytes -= n
	}
}

// parseSegmentPath extracts track and index from "/seg/{track}/{index}".
func parseSegmentPath(path string) (track, index int, err error) {
	rest := strings.TrimPrefix(path, "/seg/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("dash: bad segment path %q", path)
	}
	track, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("dash: bad track in %q", path)
	}
	index, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("dash: bad index in %q", path)
	}
	return track, index, nil
}

// SegmentURL renders the request path for a segment.
func SegmentURL(track, index int) string {
	return fmt.Sprintf("/seg/%d/%d", track, index)
}
