package dash

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// DASH MPD interop: the JSON Manifest is this repository's native format,
// but real deployments speak MPEG-DASH Media Presentation Descriptions.
// WriteMPD/ReadMPD convert a Manifest to and from a static on-demand MPD
// with one video AdaptationSet and SegmentTemplate addressing that matches
// this package's segment URLs.
//
// Standard MPDs do not carry exact per-segment sizes (players learn them
// from segment indexes); since per-chunk sizes are exactly the information
// VBR-aware adaptation needs (§3.2), the writer embeds them in a
// SupplementalProperty descriptor (scheme "urn:cava:segment-sizes:2018",
// value = comma-separated sizes in bits), mirroring how HLS added
// EXT-X-BITRATE. Readers that do not know the scheme ignore it, as the
// DASH spec requires.

const segmentSizesScheme = "urn:cava:segment-sizes:2018"

// mpdXML mirrors the subset of the MPD schema we emit.
type mpdXML struct {
	XMLName                   xml.Name `xml:"MPD"`
	Xmlns                     string   `xml:"xmlns,attr"`
	Type                      string   `xml:"type,attr"`
	Profiles                  string   `xml:"profiles,attr"`
	MediaPresentationDuration string   `xml:"mediaPresentationDuration,attr"`
	MinBufferTime             string   `xml:"minBufferTime,attr"`
	ProgramInformation        *struct {
		Title string `xml:"Title"`
	} `xml:"ProgramInformation,omitempty"`
	Period periodXML `xml:"Period"`
}

type periodXML struct {
	ID             string          `xml:"id,attr"`
	Duration       string          `xml:"duration,attr"`
	AdaptationSets []adaptationXML `xml:"AdaptationSet"`
}

type adaptationXML struct {
	ContentType      string              `xml:"contentType,attr"`
	SegmentAlignment bool                `xml:"segmentAlignment,attr"`
	FrameRate        string              `xml:"frameRate,attr,omitempty"`
	Representations  []representationXML `xml:"Representation"`
}

type representationXML struct {
	ID              string            `xml:"id,attr"`
	Width           int               `xml:"width,attr"`
	Height          int               `xml:"height,attr"`
	Bandwidth       int64             `xml:"bandwidth,attr"`
	Codecs          string            `xml:"codecs,attr,omitempty"`
	SegmentTemplate segmentTplXML     `xml:"SegmentTemplate"`
	Supplemental    []supplementalXML `xml:"SupplementalProperty"`
}

type segmentTplXML struct {
	Media       string `xml:"media,attr"`
	Timescale   int    `xml:"timescale,attr"`
	Duration    int    `xml:"duration,attr"`
	StartNumber int    `xml:"startNumber,attr"`
}

type supplementalXML struct {
	SchemeIDURI string `xml:"schemeIdUri,attr"`
	Value       string `xml:"value,attr"`
}

// isoDuration renders seconds as an ISO-8601 duration (PTxxS form).
func isoDuration(sec float64) string {
	return fmt.Sprintf("PT%gS", sec)
}

// parseISODuration accepts the PT…S / PT…M…S / PT…H…M…S forms.
func parseISODuration(s string) (float64, error) {
	orig := s
	if !strings.HasPrefix(s, "PT") {
		return 0, fmt.Errorf("dash: bad ISO duration %q", orig)
	}
	s = s[2:]
	total := 0.0
	for _, unit := range []struct {
		suffix string
		mult   float64
	}{{"H", 3600}, {"M", 60}, {"S", 1}} {
		if i := strings.Index(s, unit.suffix); i >= 0 {
			v, err := strconv.ParseFloat(s[:i], 64)
			if err != nil {
				return 0, fmt.Errorf("dash: bad ISO duration %q", orig)
			}
			total += v * unit.mult
			s = s[i+1:]
		}
	}
	if s != "" {
		return 0, fmt.Errorf("dash: bad ISO duration %q", orig)
	}
	return total, nil
}

// WriteMPD renders the manifest as a static on-demand DASH MPD.
func WriteMPD(w io.Writer, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	duration := float64(m.NumSegments()) * m.ChunkDurSec
	doc := mpdXML{
		Xmlns:                     "urn:mpeg:dash:schema:mpd:2011",
		Type:                      "static",
		Profiles:                  "urn:mpeg:dash:profile:isoff-on-demand:2011",
		MediaPresentationDuration: isoDuration(duration),
		MinBufferTime:             isoDuration(m.ChunkDurSec * 2),
		Period: periodXML{
			ID:       "0",
			Duration: isoDuration(duration),
		},
	}
	doc.ProgramInformation = &struct {
		Title string `xml:"Title"`
	}{Title: m.VideoID}

	aset := adaptationXML{
		ContentType:      "video",
		SegmentAlignment: true,
		FrameRate:        strconv.Itoa(int(math.Round(m.FPS))),
	}
	for _, t := range m.Tracks {
		sizes := make([]string, len(t.SegmentBits))
		for i, s := range t.SegmentBits {
			sizes[i] = strconv.FormatInt(int64(math.Round(s)), 10)
		}
		aset.Representations = append(aset.Representations, representationXML{
			ID:        strconv.Itoa(t.ID),
			Width:     t.Width,
			Height:    t.Height,
			Bandwidth: int64(math.Round(t.DeclaredBitrateBps)),
			Codecs:    "avc1.640028",
			SegmentTemplate: segmentTplXML{
				Media:       "seg/$RepresentationID$/$Number$",
				Timescale:   1,
				Duration:    int(math.Round(m.ChunkDurSec)),
				StartNumber: 0,
			},
			Supplemental: []supplementalXML{
				{SchemeIDURI: segmentSizesScheme, Value: strings.Join(sizes, ",")},
				{SchemeIDURI: "urn:cava:peak-bitrate:2018",
					Value: strconv.FormatInt(int64(math.Round(t.PeakBitrateBps)), 10)},
			},
		})
	}
	doc.Period.AdaptationSets = []adaptationXML{aset}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("dash: encoding MPD: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadMPD parses an MPD written by WriteMPD (or any single-period,
// single-video-AdaptationSet MPD carrying the segment-sizes descriptor)
// back into a Manifest.
func ReadMPD(r io.Reader) (*Manifest, error) {
	var doc mpdXML
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dash: parsing MPD: %w", err)
	}
	if len(doc.Period.AdaptationSets) == 0 {
		return nil, fmt.Errorf("dash: MPD has no AdaptationSet")
	}
	var aset *adaptationXML
	for i := range doc.Period.AdaptationSets {
		a := &doc.Period.AdaptationSets[i]
		if a.ContentType == "video" || a.ContentType == "" {
			aset = a
			break
		}
	}
	if aset == nil {
		return nil, fmt.Errorf("dash: MPD has no video AdaptationSet")
	}

	m := &Manifest{VideoID: "mpd"}
	if doc.ProgramInformation != nil && doc.ProgramInformation.Title != "" {
		m.VideoID = doc.ProgramInformation.Title
	}
	if fr, err := strconv.ParseFloat(aset.FrameRate, 64); err == nil {
		m.FPS = fr
	}
	for _, rep := range aset.Representations {
		if m.ChunkDurSec == 0 && rep.SegmentTemplate.Duration > 0 {
			ts := rep.SegmentTemplate.Timescale
			if ts <= 0 {
				ts = 1
			}
			m.ChunkDurSec = float64(rep.SegmentTemplate.Duration) / float64(ts)
		}
		id, err := strconv.Atoi(rep.ID)
		if err != nil {
			return nil, fmt.Errorf("dash: bad representation id %q", rep.ID)
		}
		mt := ManifestTrack{
			ID:                 id,
			Resolution:         fmt.Sprintf("%dp", rep.Height),
			Width:              rep.Width,
			Height:             rep.Height,
			DeclaredBitrateBps: float64(rep.Bandwidth),
		}
		for _, sp := range rep.Supplemental {
			switch sp.SchemeIDURI {
			case segmentSizesScheme:
				for _, f := range strings.Split(sp.Value, ",") {
					v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
					if err != nil {
						return nil, fmt.Errorf("dash: bad segment size %q", f)
					}
					mt.SegmentBits = append(mt.SegmentBits, v)
				}
			case "urn:cava:peak-bitrate:2018":
				if v, err := strconv.ParseFloat(sp.Value, 64); err == nil {
					mt.PeakBitrateBps = v
				}
			}
		}
		if mt.PeakBitrateBps == 0 {
			mt.PeakBitrateBps = mt.DeclaredBitrateBps
		}
		m.Tracks = append(m.Tracks, mt)
	}
	// Verify the declared presentation duration is consistent when present.
	if doc.MediaPresentationDuration != "" && m.ChunkDurSec > 0 {
		if d, err := parseISODuration(doc.MediaPresentationDuration); err == nil {
			want := float64(m.NumSegments()) * m.ChunkDurSec
			if math.Abs(d-want) > m.ChunkDurSec {
				return nil, fmt.Errorf("dash: MPD duration %gs inconsistent with %d segments of %gs",
					d, m.NumSegments(), m.ChunkDurSec)
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
