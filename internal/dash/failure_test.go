package dash

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cava/internal/abr"
	"cava/internal/chaos/leakcheck"
	"cava/internal/core"
	"cava/internal/player"
	"cava/internal/trace"
)

// Failure-injection tests: the client must fail loudly and promptly, never
// hang or return a half-session as success.

func TestClientManifestServerDown(t *testing.T) {
	// Reserve a port, then close it so nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c, err := NewClient(ClientConfig{BaseURL: "http://" + addr, NewAlgorithm: core.Factory()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Run(ctx); err == nil {
		t.Fatal("Run succeeded against a dead server")
	}
}

func TestClientBadManifest(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"video_id":"x","chunk_dur":0,"tracks":[]}`))
	}))
	defer srv.Close()
	c, _ := NewClient(ClientConfig{BaseURL: srv.URL, NewAlgorithm: core.Factory()})
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("Run accepted an invalid manifest")
	}
}

func TestClientManifestHTTPError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, _ := NewClient(ClientConfig{BaseURL: srv.URL, NewAlgorithm: core.Factory()})
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("Run accepted a 500 manifest response")
	}
}

func TestClientSegment404(t *testing.T) {
	v := testVideo()
	m := BuildManifest(v)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/manifest.json" {
			m.EncodeTo(w)
			return
		}
		http.NotFound(w, r) // every segment missing
	}))
	defer srv.Close()
	c, _ := NewClient(ClientConfig{BaseURL: srv.URL, NewAlgorithm: core.Factory(), MaxChunks: 3})
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("Run survived missing segments")
	}
}

func TestClientContextCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	v := testVideo()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A glacial link so the session cannot finish quickly.
	shaped := NewShapedListener(ln, NewShaper(trace.Constant("slow", 5e4, 1200, 1), 1))
	srv := NewHTTPServer(NewServer(v).Handler())
	go srv.Serve(shaped)
	defer srv.Close()

	c, _ := NewClient(ClientConfig{
		BaseURL:      "http://" + ln.Addr().String(),
		NewAlgorithm: core.Factory(),
		TimeScale:    1,
		MaxChunks:    5,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Run(ctx)
	if err == nil {
		t.Fatal("Run completed over a 50 kbps unscaled link in 300ms")
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("cancellation took %v; client not honoring context", time.Since(start))
	}
}

func TestShaperZeroScaleCoerced(t *testing.T) {
	s := NewShaper(trace.Constant("c", 1e6, 10, 1), 0)
	if s.TimeScale() != 1 {
		t.Errorf("scale = %v, want coerced 1", s.TimeScale())
	}
}

func TestVirtualNowAdvances(t *testing.T) {
	s := NewShaper(trace.Constant("c", 80e6, 10, 1), 50)
	if s.VirtualNow() != 0 {
		t.Error("virtual clock should be 0 before first Wait")
	}
	s.Wait(1000)
	time.Sleep(20 * time.Millisecond)
	if v := s.VirtualNow(); v <= 0 {
		t.Errorf("virtual clock did not advance: %v", v)
	}
}

func TestClientMPDFallback(t *testing.T) {
	v := testVideo()
	m := BuildManifest(v)
	full := NewServer(v)
	// A server that only speaks MPD (and segments): the JSON endpoint 404s.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/manifest.mpd":
			WriteMPD(w, m)
		case r.URL.Path == "/manifest.json":
			http.NotFound(w, r)
		default:
			full.Handler().ServeHTTP(w, r)
		}
	}))
	defer srv.Close()
	c, _ := NewClient(ClientConfig{BaseURL: srv.URL, NewAlgorithm: core.Factory(), MaxChunks: 3})
	got, err := c.FetchManifest(context.Background())
	if err != nil {
		t.Fatalf("MPD fallback failed: %v", err)
	}
	if got.NumSegments() != v.NumChunks() {
		t.Error("fallback manifest lost segments")
	}
	// And a short session must stream through it.
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 3 {
		t.Errorf("streamed %d chunks via MPD manifest", len(res.Chunks))
	}
}

// --- Resilient fetch pipeline ------------------------------------------------

// flakyOnce wraps a handler so the FIRST attempt at each segment path fails
// in a caller-chosen way; retries pass through.
type flakyOnce struct {
	inner http.Handler
	fail  func(w http.ResponseWriter, r *http.Request)

	mu   sync.Mutex
	seen map[string]int
}

func (f *flakyOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/seg/") {
		f.inner.ServeHTTP(w, r)
		return
	}
	f.mu.Lock()
	if f.seen == nil {
		f.seen = make(map[string]int)
	}
	attempt := f.seen[r.URL.Path]
	f.seen[r.URL.Path] = attempt + 1
	f.mu.Unlock()
	if attempt == 0 {
		f.fail(w, r)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// testResilience disables timing-sensitive features so only the behaviour
// under test is active.
func testResilience() *ResilienceConfig {
	rc := DefaultResilience()
	rc.BaseBackoffSec = 0.05
	rc.MaxBackoffSec = 0.2
	rc.DeadlineFactor = 0 // no per-attempt deadlines
	rc.AbandonEnabled = false
	return rc
}

// TestClientRetryThenSucceed: every segment's first attempt 503s. The
// legacy client aborts; the resilient client completes the session and
// records the retries.
func TestClientRetryThenSucceed(t *testing.T) {
	defer leakcheck.Check(t)()
	v := testVideo()
	fail503 := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "injected", http.StatusServiceUnavailable)
	}
	// Each client gets a fresh server: the first-attempt failure state is
	// per server, and the legacy run must not consume the resilient run's.
	srvA := httptest.NewServer(&flakyOnce{inner: NewServer(v).Handler(), fail: fail503})
	defer srvA.Close()
	legacy, _ := NewClient(ClientConfig{BaseURL: srvA.URL, NewAlgorithm: core.Factory(), MaxChunks: 4})
	defer legacy.Close()
	if _, err := legacy.Run(context.Background()); err == nil {
		t.Fatal("legacy client survived a 503 first attempt; want abort")
	}

	srvB := httptest.NewServer(&flakyOnce{inner: NewServer(v).Handler(), fail: fail503})
	defer srvB.Close()
	c, _ := NewClient(ClientConfig{
		BaseURL: srvB.URL, NewAlgorithm: core.Factory(), MaxChunks: 4,
		TimeScale: 20, Resilience: testResilience(),
	})
	defer c.Close()
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("resilient client aborted: %v", err)
	}
	if len(res.Chunks) != 4 {
		t.Fatalf("delivered %d chunks, want 4", len(res.Chunks))
	}
	if res.TotalRetries < 4 {
		t.Errorf("TotalRetries = %d, want ≥ 4 (one per segment)", res.TotalRetries)
	}
	if res.SkippedChunks != 0 {
		t.Errorf("SkippedChunks = %d, want 0", res.SkippedChunks)
	}
	for _, rec := range res.Chunks {
		if rec.Retries < 1 {
			t.Errorf("chunk %d recorded %d retries, want ≥ 1", rec.Index, rec.Retries)
		}
	}
}

// TestClientTruncationDetected: first attempt of each segment declares the
// full Content-Length but sends half. Both clients must refuse to count it
// as a success; the resilient one retries to completion.
func TestClientTruncationDetected(t *testing.T) {
	v := testVideo()
	truncate := func(w http.ResponseWriter, r *http.Request) {
		track, index, err := parseSegmentPath(r.URL.Path)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		full := int(v.ChunkSize(track, index)+7) / 8
		w.Header().Set("Content-Length", strconv.Itoa(full))
		pad := make([]byte, full/2)
		w.Write(pad) // short body; server closes the connection early
	}
	srvA := httptest.NewServer(&flakyOnce{inner: NewServer(v).Handler(), fail: truncate})
	defer srvA.Close()
	legacy, _ := NewClient(ClientConfig{BaseURL: srvA.URL, NewAlgorithm: core.Factory(), MaxChunks: 2})
	if _, err := legacy.Run(context.Background()); err == nil {
		t.Fatal("legacy client accepted a truncated body as success")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("legacy error does not identify truncation: %v", err)
	}

	srvB := httptest.NewServer(&flakyOnce{inner: NewServer(v).Handler(), fail: truncate})
	defer srvB.Close()
	c, _ := NewClient(ClientConfig{
		BaseURL: srvB.URL, NewAlgorithm: core.Factory(), MaxChunks: 3,
		TimeScale: 20, Resilience: testResilience(),
	})
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("resilient client aborted: %v", err)
	}
	if res.TotalTruncations < 3 {
		t.Errorf("TotalTruncations = %d, want ≥ 3", res.TotalTruncations)
	}
	if res.SkippedChunks != 0 {
		t.Errorf("SkippedChunks = %d, want 0", res.SkippedChunks)
	}
	// The delivered sizes must be the full declared sizes, not the
	// truncated halves.
	for _, rec := range res.Chunks {
		want := float64(int(v.ChunkSize(rec.Level, rec.Index)+7)/8) * 8
		if rec.SizeBits != want {
			t.Errorf("chunk %d delivered %v bits, want %v", rec.Index, rec.SizeBits, want)
		}
	}
}

// TestClientOutageDegradation: an outage window at session start exhausts
// retries for the first segments; the client skips them (accounting the
// gap as stall) and recovers when the window lifts.
func TestClientOutageDegradation(t *testing.T) {
	defer leakcheck.Check(t)()
	const scale = 50
	v := testVideo()
	inj := NewFaultInjector(FaultConfig{
		Outages:      []OutageWindow{{StartSec: 0, EndSec: 3}},
		TimeScale:    scale,
		SegmentsOnly: true,
	}, NewServer(v).Handler())
	srv := httptest.NewServer(inj)
	defer srv.Close()

	rc := testResilience()
	rc.MaxRetries = 2
	c, _ := NewClient(ClientConfig{
		BaseURL: srv.URL, NewAlgorithm: core.Factory(), MaxChunks: 10,
		TimeScale: scale, Resilience: rc,
	})
	defer c.Close()
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("session aborted under outage: %v", err)
	}
	if res.SkippedChunks == 0 {
		t.Fatal("no chunks skipped across a 3-virtual-second outage")
	}
	if res.SkippedChunks == len(res.Chunks) {
		t.Fatal("every chunk skipped; client never recovered after the outage")
	}
	if len(res.Chunks) != 10 {
		t.Fatalf("session recorded %d chunks, want 10 (skips included)", len(res.Chunks))
	}
	// Each skip accounts one segment duration of stall.
	m := BuildManifest(v)
	minStall := float64(res.SkippedChunks) * m.ChunkDurSec
	if res.TotalRebufferSec < minStall-1e-9 {
		t.Errorf("TotalRebufferSec = %v, want ≥ %v (skip gaps)", res.TotalRebufferSec, minStall)
	}
	skipped := 0
	for _, rec := range res.Chunks {
		if rec.Skipped {
			skipped++
			if rec.SizeBits != 0 || rec.ThroughputBps != 0 {
				t.Errorf("skipped chunk %d carries download stats", rec.Index)
			}
		}
	}
	if skipped != res.SkippedChunks {
		t.Errorf("per-chunk skips %d != SkippedChunks %d", skipped, res.SkippedChunks)
	}
}

// TestClientAbandonmentDownshift: a track that dribbles bytes too slowly to
// finish before the buffer drains is abandoned mid-download and refetched
// one level lower.
func TestClientAbandonmentDownshift(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const scale = 60
	v := testVideo()
	top := v.NumTracks() - 1
	inner := NewServer(v).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		track, index, err := parseSegmentPath(r.URL.Path)
		if err != nil || track != top || index == 0 {
			inner.ServeHTTP(w, r)
			return
		}
		// Top track past startup: send a taste fast, then dribble.
		full := int(v.ChunkSize(track, index)+7) / 8
		w.Header().Set("Content-Length", strconv.Itoa(full))
		head := 20 << 10
		if head > full {
			head = full
		}
		w.Write(make([]byte, head))
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		for sent := head; sent < full; sent += 1 << 10 {
			time.Sleep(100 * time.Millisecond)
			if _, err := w.Write(make([]byte, 1<<10)); err != nil {
				return
			}
		}
	}))
	defer srv.Close()

	rc := testResilience()
	rc.AbandonEnabled = true
	rc.AbandonCheckBytes = 8 << 10
	c, _ := NewClient(ClientConfig{
		BaseURL: srv.URL, NewAlgorithm: abr.Fixed(top), MaxChunks: 2,
		TimeScale: scale, StartupSec: 1, Resilience: rc,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("session aborted: %v", err)
	}
	if res.TotalAbandonments == 0 {
		t.Fatal("slow top-track segment was never abandoned")
	}
	rec := res.Chunks[1]
	if rec.Abandonments == 0 || rec.Level >= top {
		t.Errorf("chunk 1: abandonments %d, level %d; want a downshift below %d",
			rec.Abandonments, rec.Level, top)
	}
	if res.WastedBits <= 0 {
		t.Error("abandoned partial download recorded no wasted bits")
	}
}

// TestClientFaultDeterminism: identical fault seeds yield identical
// resilience counters across independent runs — the acceptance criterion
// that makes failure testing reproducible. The level is pinned (fixed
// algorithm, no deadlines, no abandonment) so the request sequence is
// timing-independent; the guarantee is that for a given request sequence
// the injected faults are a pure function of the seed.
func TestClientFaultDeterminism(t *testing.T) {
	run := func() *player.Result {
		v := testVideo()
		inj := NewFaultInjector(FaultConfig{
			Seed:         42,
			ErrorProb:    0.25,
			TruncateProb: 0.15,
			SegmentsOnly: true,
		}, NewServer(v).Handler())
		srv := httptest.NewServer(inj)
		defer srv.Close()

		c, _ := NewClient(ClientConfig{
			BaseURL: srv.URL, NewAlgorithm: abr.Fixed(1), MaxChunks: 15,
			TimeScale: 20, Resilience: testResilience(),
		})
		res, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("seeded-fault session aborted: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalRetries == 0 && a.TotalTruncations == 0 {
		t.Fatal("fault profile injected nothing; determinism test is vacuous")
	}
	if a.TotalRetries != b.TotalRetries ||
		a.TotalTruncations != b.TotalTruncations ||
		a.TotalAbandonments != b.TotalAbandonments ||
		a.SkippedChunks != b.SkippedChunks {
		t.Errorf("identical seeds diverged: run1 {retries %d, trunc %d, abandon %d, skip %d} vs run2 {retries %d, trunc %d, abandon %d, skip %d}",
			a.TotalRetries, a.TotalTruncations, a.TotalAbandonments, a.SkippedChunks,
			b.TotalRetries, b.TotalTruncations, b.TotalAbandonments, b.SkippedChunks)
	}
	if len(a.Chunks) != len(b.Chunks) {
		t.Errorf("chunk counts diverged: %d vs %d", len(a.Chunks), len(b.Chunks))
	}
}

// TestShaperConcurrentWait: many goroutines share one shaper (one
// bottleneck link); all must make progress and the token accounting must be
// race-free (run under -race).
func TestShaperConcurrentWait(t *testing.T) {
	s := NewShaper(trace.Constant("c", 8e6, 60, 1), 100)
	const workers = 8
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Wait(1 << 10)
				_ = s.VirtualNow()
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Wait deadlocked or starved")
	}
	if s.VirtualNow() <= 0 {
		t.Error("virtual clock did not advance under concurrent use")
	}
}
