package dash

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cava/internal/core"
	"cava/internal/trace"
)

// Failure-injection tests: the client must fail loudly and promptly, never
// hang or return a half-session as success.

func TestClientManifestServerDown(t *testing.T) {
	// Reserve a port, then close it so nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c, err := NewClient(ClientConfig{BaseURL: "http://" + addr, NewAlgorithm: core.Factory()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Run(ctx); err == nil {
		t.Fatal("Run succeeded against a dead server")
	}
}

func TestClientBadManifest(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"video_id":"x","chunk_dur":0,"tracks":[]}`))
	}))
	defer srv.Close()
	c, _ := NewClient(ClientConfig{BaseURL: srv.URL, NewAlgorithm: core.Factory()})
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("Run accepted an invalid manifest")
	}
}

func TestClientManifestHTTPError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, _ := NewClient(ClientConfig{BaseURL: srv.URL, NewAlgorithm: core.Factory()})
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("Run accepted a 500 manifest response")
	}
}

func TestClientSegment404(t *testing.T) {
	v := testVideo()
	m := BuildManifest(v)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/manifest.json" {
			m.EncodeTo(w)
			return
		}
		http.NotFound(w, r) // every segment missing
	}))
	defer srv.Close()
	c, _ := NewClient(ClientConfig{BaseURL: srv.URL, NewAlgorithm: core.Factory(), MaxChunks: 3})
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("Run survived missing segments")
	}
}

func TestClientContextCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	v := testVideo()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A glacial link so the session cannot finish quickly.
	shaped := NewShapedListener(ln, NewShaper(trace.Constant("slow", 5e4, 1200, 1), 1))
	srv := &http.Server{Handler: NewServer(v).Handler()}
	go srv.Serve(shaped)
	defer srv.Close()

	c, _ := NewClient(ClientConfig{
		BaseURL:      "http://" + ln.Addr().String(),
		NewAlgorithm: core.Factory(),
		TimeScale:    1,
		MaxChunks:    5,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Run(ctx)
	if err == nil {
		t.Fatal("Run completed over a 50 kbps unscaled link in 300ms")
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("cancellation took %v; client not honoring context", time.Since(start))
	}
}

func TestShaperZeroScaleCoerced(t *testing.T) {
	s := NewShaper(trace.Constant("c", 1e6, 10, 1), 0)
	if s.TimeScale() != 1 {
		t.Errorf("scale = %v, want coerced 1", s.TimeScale())
	}
}

func TestVirtualNowAdvances(t *testing.T) {
	s := NewShaper(trace.Constant("c", 80e6, 10, 1), 50)
	if s.VirtualNow() != 0 {
		t.Error("virtual clock should be 0 before first Wait")
	}
	s.Wait(1000)
	time.Sleep(20 * time.Millisecond)
	if v := s.VirtualNow(); v <= 0 {
		t.Errorf("virtual clock did not advance: %v", v)
	}
}

func TestClientMPDFallback(t *testing.T) {
	v := testVideo()
	m := BuildManifest(v)
	full := NewServer(v)
	// A server that only speaks MPD (and segments): the JSON endpoint 404s.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/manifest.mpd":
			WriteMPD(w, m)
		case r.URL.Path == "/manifest.json":
			http.NotFound(w, r)
		default:
			full.Handler().ServeHTTP(w, r)
		}
	}))
	defer srv.Close()
	c, _ := NewClient(ClientConfig{BaseURL: srv.URL, NewAlgorithm: core.Factory(), MaxChunks: 3})
	got, err := c.FetchManifest(context.Background())
	if err != nil {
		t.Fatalf("MPD fallback failed: %v", err)
	}
	if got.NumSegments() != v.NumChunks() {
		t.Error("fallback manifest lost segments")
	}
	// And a short session must stream through it.
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 3 {
		t.Errorf("streamed %d chunks via MPD manifest", len(res.Chunks))
	}
}
