package dash

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"cava/internal/telemetry"
)

// VideoMux serves several videos from one origin, the namespace the edge
// tier shards over:
//
//	GET /v/<video-id>/<path>  -> that video's Server (manifest, playlists,
//	                             segments — the full single-video routes)
//	GET /<path>               -> the first (default) video, so a VideoMux
//	                             origin is a drop-in replacement for a
//	                             single-video Server
//
// Each origin in a sharded deployment carries the full catalog (the
// replication that makes consistent-hash failover possible); the edge's
// hash ring decides which origin is primary for which video.
type VideoMux struct {
	def     *Server
	servers map[string]*Server
}

// NewVideoMux builds an origin serving every given video, the first one
// doubling as the default for un-prefixed paths.
func NewVideoMux(videos ...*Server) (*VideoMux, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("dash: VideoMux needs at least one server")
	}
	m := &VideoMux{def: videos[0], servers: make(map[string]*Server, len(videos))}
	for _, s := range videos {
		id := s.Manifest().VideoID
		if _, dup := m.servers[id]; dup {
			return nil, fmt.Errorf("dash: VideoMux got video %q twice", id)
		}
		m.servers[id] = s
	}
	return m, nil
}

// VideoIDs returns the served video ids in sorted order.
func (m *VideoMux) VideoIDs() []string {
	var out []string
	for id := range m.servers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Server returns the server for one video id (nil when absent).
func (m *VideoMux) Server(id string) *Server { return m.servers[id] }

// SetMetrics registers every underlying server's counters on reg (they
// share handles: the registry hands out one counter per name).
func (m *VideoMux) SetMetrics(reg *telemetry.Registry) {
	for _, id := range m.VideoIDs() {
		m.servers[id].SetMetrics(reg)
	}
}

// Handler returns the origin handler routing /v/<id>/... per video.
func (m *VideoMux) Handler() http.Handler {
	handlers := make(map[string]http.Handler, len(m.servers))
	for id, s := range m.servers {
		handlers[id] = s.Handler()
	}
	def := m.def.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id, rest, ok := splitVideoPath(r.URL.Path); ok {
			h := handlers[id]
			if h == nil {
				http.NotFound(w, r)
				return
			}
			r2 := r.Clone(r.Context())
			r2.URL.Path = rest
			h.ServeHTTP(w, r2)
			return
		}
		def.ServeHTTP(w, r)
	})
}

// splitVideoPath decomposes "/v/<id>/<rest>" (ok=false for other shapes).
func splitVideoPath(p string) (id, rest string, ok bool) {
	tail, found := strings.CutPrefix(p, "/v/")
	if !found {
		return "", "", false
	}
	i := strings.IndexByte(tail, '/')
	if i <= 0 {
		return "", "", false
	}
	return tail[:i], tail[i:], true
}
