package dash

import (
	"net"
	"net/http"
	"sync"
	"time"

	"cava/internal/telemetry"
)

// Overload protection for the testbed server. The paper's testbed serves
// one dash.js client; the ROADMAP's production server serves heavy traffic
// from many, and an HTTP server with no admission control fails the way
// PANDA's shared-bottleneck study predicts: every marginal session slows
// every established one until nobody completes. The Protection middleware
// bounds the damage with three mechanisms, outermost first:
//
//  1. Session admission: at most MaxSessions distinct client sessions are
//     active at once. A new session beyond the bound waits in a bounded
//     queue for a slot (sessions expire after SessionIdleSec without a
//     request); when the queue is full, the wait times out, or shedding is
//     immediate, the request is answered 503 + Retry-After — cheap, fast
//     and honest, so well-behaved clients back off instead of piling on.
//  2. Per-session rate limiting: a token bucket per session ID caps the
//     request rate any single client can impose, so one aggressive
//     retry loop cannot starve the others.
//  3. A circuit breaker (breaker.go) between admission and the
//     shaper/fault path, so a failing backend is fast-failed instead of
//     holding shaped-link slots.
//
// /healthz (liveness) and /readyz (readiness: not saturated, breaker not
// open) are answered before admission so orchestration probes are never
// shed. All time flows through the injected Clock; every behaviour is
// unit-testable on a FakeClock.

// SessionIDHeader carries the client's session identity; the resilient
// client stamps it on every request so server-side admission and rate
// limiting key on sessions, not connections.
const SessionIDHeader = "X-Session-Id"

// admissionPollInterval is the queue's slot-recheck period. Wall-clock
// milliseconds in production; a FakeClock turns each poll into a virtual
// advance, so queue timeouts resolve deterministically in tests.
const admissionPollInterval = time.Millisecond

// ProtectionConfig tunes the overload-protection middleware. The zero
// value protects nothing (unbounded sessions, no rate limit, no breaker);
// DefaultProtection returns the standard testbed policy.
type ProtectionConfig struct {
	// MaxSessions bounds concurrently active client sessions (0 = unbounded).
	MaxSessions int
	// QueueDepth bounds how many new sessions may wait for a slot at once;
	// arrivals beyond it are shed immediately (default 16).
	QueueDepth int
	// QueueTimeoutSec is how long a queued session waits for a slot before
	// being shed, in wall seconds (default 2).
	QueueTimeoutSec float64
	// SessionIdleSec is the inactivity window after which a session's slot
	// is reclaimed, in wall seconds (default 30).
	SessionIdleSec float64
	// ShedImmediately disables queueing: a new session that finds the
	// server saturated is shed at once (the dashserve -shed flag).
	ShedImmediately bool
	// RatePerSessionPerSec is each session's token-bucket refill rate in
	// requests per wall second (0 = no rate limit).
	RatePerSessionPerSec float64
	// SessionBurst is each session's bucket capacity in requests
	// (default 8 when rate limiting is on).
	SessionBurst float64
	// RetryAfterSec is the Retry-After hint on shed responses, in seconds
	// (default 1).
	RetryAfterSec float64
	// Breaker, when non-nil, wraps the inner handler in a circuit breaker
	// with the given policy.
	Breaker *BreakerConfig
}

// DefaultProtection returns the standard testbed protection policy for the
// given session bound.
func DefaultProtection(maxSessions int) ProtectionConfig {
	b := DefaultBreakerConfig()
	return ProtectionConfig{
		MaxSessions:          maxSessions,
		QueueDepth:           16,
		QueueTimeoutSec:      2,
		SessionIdleSec:       30,
		RatePerSessionPerSec: 50,
		SessionBurst:         25,
		RetryAfterSec:        1,
		Breaker:              &b,
	}
}

// withDefaults fills zero fields with the standard policy values.
func (c ProtectionConfig) withDefaults() ProtectionConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.QueueTimeoutSec <= 0 {
		c.QueueTimeoutSec = 2
	}
	if c.SessionIdleSec <= 0 {
		c.SessionIdleSec = 30
	}
	if c.RatePerSessionPerSec > 0 && c.SessionBurst <= 0 {
		c.SessionBurst = 8
	}
	if c.RetryAfterSec <= 0 {
		c.RetryAfterSec = 1
	}
	return c
}

// AdmissionStats is a snapshot of the admission layer's counters.
type AdmissionStats struct {
	// Requests counts everything the admission layer saw (health probes
	// excluded).
	Requests int
	// Admitted counts requests passed to the inner handler.
	Admitted int
	// ShedQueueFull counts new sessions shed because the wait queue was at
	// capacity (or shedding is immediate).
	ShedQueueFull int
	// ShedQueueTimeout counts queued sessions shed after waiting
	// QueueTimeoutSec without a slot freeing.
	ShedQueueTimeout int
	// ShedRateLimited counts requests shed by a session's token bucket.
	ShedRateLimited int
	// PeakSessions is the high-water mark of concurrently active sessions.
	PeakSessions int
}

// ShedTotal sums every shed reason.
func (s AdmissionStats) ShedTotal() int {
	return s.ShedQueueFull + s.ShedQueueTimeout + s.ShedRateLimited
}

// session is one tracked client session's admission state.
type session struct {
	lastSeen time.Time
	tokens   float64
	refilled time.Time
}

// Protection is the composed overload-protection middleware. Build with
// Protect, then serve Handler().
type Protection struct {
	cfg     ProtectionConfig
	inner   http.Handler // breaker-wrapped when configured
	breaker *Breaker     // nil when disabled
	clock   Clock

	mu       sync.Mutex
	sessions map[string]*session
	waiting  int
	closed   bool
	stats    AdmissionStats
	// drain tracks the goroutines parked in waitForSlot's poll loop, so
	// Close can prove the admission queue is empty before returning.
	drain sync.WaitGroup

	// Telemetry handles (nil-safe).
	activeGauge  *telemetry.Gauge
	waitingGauge *telemetry.Gauge
	inflight     *telemetry.Gauge
	admitted     *telemetry.Counter
	shed         map[string]*telemetry.Counter
}

// Protect wraps inner with the overload-protection policy.
func Protect(cfg ProtectionConfig, inner http.Handler) *Protection {
	p := &Protection{
		cfg:      cfg.withDefaults(),
		inner:    inner,
		clock:    RealClock(),
		sessions: make(map[string]*session),
	}
	if cfg.Breaker != nil {
		p.breaker = NewBreaker(*cfg.Breaker, inner)
		p.inner = p.breaker
	}
	return p
}

// WithClock substitutes the protection layer's (and its breaker's) clock.
// Call before serving.
func (p *Protection) WithClock(c Clock) *Protection {
	p.clock = realClockOr(c)
	if p.breaker != nil {
		p.breaker.WithClock(c)
	}
	return p
}

// SetMetrics registers the protection layer's gauges and counters on reg
// (nil disables). Call before serving.
func (p *Protection) SetMetrics(reg *telemetry.Registry) {
	p.activeGauge = reg.Gauge("dash_admission_active_sessions", "client sessions currently holding a slot")
	p.waitingGauge = reg.Gauge("dash_admission_waiting_sessions", "new sessions queued for a slot")
	p.inflight = reg.Gauge("dash_admission_inflight_requests", "admitted requests currently being served")
	p.admitted = reg.Counter("dash_admission_admitted_total", "requests admitted to the inner handler")
	p.shed = make(map[string]*telemetry.Counter)
	for _, reason := range []string{"queue_full", "queue_timeout", "rate_limited"} {
		p.shed[reason] = reg.Counter("dash_admission_shed_total",
			"requests shed with 503 + Retry-After", telemetry.Label{Name: "reason", Value: reason})
	}
	if p.breaker != nil {
		p.breaker.SetMetrics(reg)
	}
}

// Breaker exposes the wrapped breaker (nil when disabled).
func (p *Protection) Breaker() *Breaker { return p.breaker }

// AdmissionStats returns a snapshot of the admission counters.
func (p *Protection) AdmissionStats() AdmissionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ActiveSessions returns the number of sessions currently holding a slot.
func (p *Protection) ActiveSessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.expireLocked(p.clock.Now())
	return len(p.sessions)
}

// clientKey identifies the requesting session: the client-stamped session
// header when present, otherwise the remote address (including port, so
// distinct unidentified connections are distinct clients rather than one
// shared bucket).
func clientKey(r *http.Request) string {
	if id := r.Header.Get(SessionIDHeader); id != "" {
		return id
	}
	if host, port, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host + ":" + port
	}
	return r.RemoteAddr
}

// expireLocked reclaims slots from sessions idle past SessionIdleSec.
func (p *Protection) expireLocked(now time.Time) {
	idle := wallSeconds(p.cfg.SessionIdleSec)
	for k, s := range p.sessions {
		if now.Sub(s.lastSeen) >= idle {
			delete(p.sessions, k)
		}
	}
	p.activeGauge.Set(float64(len(p.sessions)))
}

// admitOutcome classifies one admission decision.
type admitOutcome int

const (
	admitOK admitOutcome = iota
	admitNoSlot
	admitRateLimited
)

// tryAdmit attempts to admit one request for key without waiting.
func (p *Protection) tryAdmit(key string) (admitOutcome, float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return admitNoSlot, p.cfg.RetryAfterSec
	}
	now := p.clock.Now()
	s, ok := p.sessions[key]
	if !ok {
		p.expireLocked(now)
		if p.cfg.MaxSessions > 0 && len(p.sessions) >= p.cfg.MaxSessions {
			return admitNoSlot, p.cfg.RetryAfterSec
		}
		s = &session{lastSeen: now, tokens: p.cfg.SessionBurst, refilled: now}
		p.sessions[key] = s
		if n := len(p.sessions); n > p.stats.PeakSessions {
			p.stats.PeakSessions = n
		}
		p.activeGauge.Set(float64(len(p.sessions)))
	}
	s.lastSeen = now
	if p.cfg.RatePerSessionPerSec > 0 {
		s.tokens += now.Sub(s.refilled).Seconds() * p.cfg.RatePerSessionPerSec
		s.refilled = now
		if s.tokens > p.cfg.SessionBurst {
			s.tokens = p.cfg.SessionBurst
		}
		if s.tokens < 1 {
			retry := (1 - s.tokens) / p.cfg.RatePerSessionPerSec
			return admitRateLimited, retry
		}
		s.tokens--
	}
	p.stats.Admitted++
	return admitOK, 0
}

// shedWith records a shed and answers it.
func (p *Protection) shedWith(w http.ResponseWriter, reason string, retrySec float64) {
	p.mu.Lock()
	switch reason {
	case "queue_full":
		p.stats.ShedQueueFull++
	case "queue_timeout":
		p.stats.ShedQueueTimeout++
	case "rate_limited":
		p.stats.ShedRateLimited++
	}
	p.mu.Unlock()
	p.shed[reason].Inc()
	writeShed(w, retrySec, reason)
}

// Saturated reports whether the server should refuse new work: the session
// table is at its bound or the breaker is open.
func (p *Protection) Saturated() bool {
	if p.breaker != nil && p.breaker.State() == BreakerOpen {
		return true
	}
	if p.cfg.MaxSessions <= 0 {
		return false
	}
	return p.ActiveSessions() >= p.cfg.MaxSessions
}

// Handler returns the protected handler: health endpoints, then admission,
// then the (breaker-wrapped) inner handler.
func (p *Protection) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte("ok\n"))
			return
		case "/readyz":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if p.Saturated() {
				w.WriteHeader(http.StatusServiceUnavailable)
				_, _ = w.Write([]byte("saturated\n"))
				return
			}
			_, _ = w.Write([]byte("ready\n"))
			return
		}
		p.mu.Lock()
		p.stats.Requests++
		p.mu.Unlock()
		key := clientKey(r)

		outcome, retrySec := p.tryAdmit(key)
		reason := "rate_limited"
		if outcome == admitNoSlot {
			outcome, reason, retrySec = p.waitForSlot(r, key)
		}
		if outcome != admitOK {
			p.shedWith(w, reason, retrySec)
			return
		}
		p.admitted.Inc()
		p.inflight.Add(1)
		defer p.inflight.Add(-1)
		p.inner.ServeHTTP(w, r)
	})
}

// waitForSlot queues a new session for an admission slot, polling on the
// injected clock until admission succeeds or the queue timeout elapses.
// It returns the final outcome with the shed reason and Retry-After hint
// for the non-admitted cases.
func (p *Protection) waitForSlot(r *http.Request, key string) (admitOutcome, string, float64) {
	if p.cfg.ShedImmediately {
		return admitNoSlot, "queue_full", p.cfg.RetryAfterSec
	}
	p.mu.Lock()
	if p.closed || p.waiting >= p.cfg.QueueDepth {
		p.mu.Unlock()
		return admitNoSlot, "queue_full", p.cfg.RetryAfterSec
	}
	p.waiting++
	// drain.Add happens under the same mutex Close holds while setting
	// closed, so no waiter can join the queue after Close started waiting.
	p.drain.Add(1)
	p.waitingGauge.Set(float64(p.waiting))
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.waiting--
		p.waitingGauge.Set(float64(p.waiting))
		p.mu.Unlock()
		p.drain.Done()
	}()

	deadline := p.clock.Now().Add(wallSeconds(p.cfg.QueueTimeoutSec))
	for {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			// Close drained the queue: shed honestly so the client retries
			// against whatever replaces this server.
			return admitNoSlot, "queue_full", p.cfg.RetryAfterSec
		}
		if err := r.Context().Err(); err != nil {
			// The client gave up while queued; the response goes nowhere,
			// but the books stay balanced.
			return admitNoSlot, "queue_timeout", p.cfg.RetryAfterSec
		}
		outcome, retrySec := p.tryAdmit(key)
		if outcome != admitNoSlot {
			return outcome, "rate_limited", retrySec
		}
		if !p.clock.Now().Before(deadline) {
			return admitNoSlot, "queue_timeout", p.cfg.RetryAfterSec
		}
		p.clock.Sleep(admissionPollInterval)
	}
}

// Close marks the protection layer closed and drains the admission queue:
// every waiter parked in waitForSlot's poll loop is shed on its next poll,
// new arrivals are shed immediately, and Close blocks until the last
// queued goroutine has left. Idempotent; the idle-expiry sweep needs no
// separate stop because it is lazy (it runs inside tryAdmit and
// ActiveSessions, never on its own goroutine).
func (p *Protection) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.drain.Wait()
}

// wallSeconds converts float seconds to a time.Duration.
func wallSeconds(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
