package dash

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cava/internal/core"
	"cava/internal/telemetry"
)

// scriptedTransport is a counting RoundTripper: it records the path and
// X-Session-Id of every attempt the client makes, sheds the first
// shedFirst requests with 503 + Retry-After, 503s the first segment
// request once (no hint), and serves everything else from the wrapped
// handler in-process.
type scriptedTransport struct {
	inner http.Handler

	mu        sync.Mutex
	calls     int
	shedFirst int
	segFailed bool
	sessions  []string
	paths     []string
}

func (st *scriptedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	st.mu.Lock()
	st.calls++
	st.sessions = append(st.sessions, req.Header.Get(SessionIDHeader))
	st.paths = append(st.paths, req.URL.Path)
	shed := st.calls <= st.shedFirst
	segFail := false
	if !shed && !st.segFailed && strings.Contains(req.URL.Path, "/seg/") {
		st.segFailed = true
		segFail = true
	}
	st.mu.Unlock()

	rec := httptest.NewRecorder()
	switch {
	case shed:
		rec.Header().Set("Retry-After", "1")
		http.Error(rec, "overloaded", http.StatusServiceUnavailable)
	case segFail:
		http.Error(rec, "transient", http.StatusServiceUnavailable)
	default:
		st.inner.ServeHTTP(rec, req)
	}
	return rec.Result(), nil
}

// attempts returns copies of the recorded per-attempt sessions and paths.
func (st *scriptedTransport) attempts() (sessions, paths []string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.sessions...), append([]string(nil), st.paths...)
}

// TestSessionHeaderOnEveryAttempt is the satellite regression pin: the
// client must stamp X-Session-Id on EVERY attempt — first tries, manifest
// fallbacks, and each retry after a failure — because server-side admission
// control keys on it; an unstamped retry would be admitted as a brand-new
// session. The scripted transport sheds the two manifest attempts (JSON +
// MPD fallback) with Retry-After: 1 and one segment attempt with a plain
// 503, so the recorded attempt log covers all three retry shapes.
func TestSessionHeaderOnEveryAttempt(t *testing.T) {
	v := testVideo()
	st := &scriptedTransport{inner: NewServer(v).Handler(), shedFirst: 2}
	reg := telemetry.NewRegistry()
	c, err := NewClient(ClientConfig{
		BaseURL:      "http://origin.test",
		HTTPClient:   &http.Client{Transport: st},
		NewAlgorithm: core.Factory(),
		TimeScale:    200,
		MaxChunks:    4,
		Resilience:   &ResilienceConfig{JitterSeed: 11},
		SessionID:    "regress-7",
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SkippedChunks != 0 {
		t.Errorf("session skipped %d chunks; the single 503 should be retried away",
			res.SkippedChunks)
	}

	sessions, paths := st.attempts()
	if len(sessions) < 4+3 { // 4 segments + 2 shed manifest attempts + 1 retried manifest
		t.Fatalf("transport saw only %d attempts: %v", len(sessions), paths)
	}
	for i, s := range sessions {
		if s != "regress-7" {
			t.Errorf("attempt %d (%s) carried session %q, want regress-7", i, paths[i], s)
		}
	}
	if !st.segFailed {
		t.Error("scripted segment failure never triggered; retry path untested")
	}

	// The shed manifest attempts carried Retry-After: 1 (wall second); the
	// resilient retry must honor it as a floor, which is observable both in
	// wall time and on the counter.
	if got := reg.Counter("dash_client_retry_after_waits_total", "").Value(); got != 1 {
		t.Errorf("dash_client_retry_after_waits_total = %d, want 1", got)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("session finished in %v; a 1s Retry-After hint was not honored", elapsed)
	}
}

// TestRetryWaitFullJitter pins the backoff shape: seeded FULL jitter over
// the capped exponential — uniform in [0, cap), reproducible per seed —
// rather than the lockstep-prone half-jitter.
func TestRetryWaitFullJitter(t *testing.T) {
	mk := func(seed int64) *fetcher {
		return &fetcher{
			c:     &Client{},
			rc:    ResilienceConfig{JitterSeed: seed}.withDefaults(),
			rng:   rand.New(rand.NewSource(seed)),
			scale: 1,
		}
	}
	f := mk(3)
	base, max := f.rc.BaseBackoffSec, f.rc.MaxBackoffSec
	lo, hi := base, 0.0
	for i := 0; i < 500; i++ {
		w := f.retryWait(0, 0)
		if w < 0 || w >= base {
			t.Fatalf("retryWait(0) = %v outside [0, %v)", w, base)
		}
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	// Full jitter covers the whole window; half jitter would never go
	// below base/2.
	if lo > 0.1*base || hi < 0.9*base {
		t.Errorf("500 samples span [%v, %v]; want full [0, %v) coverage", lo, hi, base)
	}
	for r := 0; r < 12; r++ {
		if w := f.retryWait(r, 0); w >= max {
			t.Errorf("retryWait(%d) = %v >= cap %v", r, w, max)
		}
	}
	// Same seed, same schedule: the sweep cache depends on this.
	a, b := mk(42), mk(42)
	for i := 0; i < 20; i++ {
		if wa, wb := a.retryWait(i%4, 0), b.retryWait(i%4, 0); wa != wb {
			t.Fatalf("seeded schedules diverge at draw %d: %v vs %v", i, wa, wb)
		}
	}
}

// TestRetryWaitHonorsRetryAfterFloor pins the server-paced arm: a hint of
// h wall seconds floors the wait at h×TimeScale virtual seconds (which
// sleepVirtual converts back to exactly h wall seconds).
func TestRetryWaitHonorsRetryAfterFloor(t *testing.T) {
	f := &fetcher{
		c:     &Client{},
		rc:    ResilienceConfig{JitterSeed: 5}.withDefaults(),
		rng:   rand.New(rand.NewSource(5)),
		scale: 40,
	}
	for i := 0; i < 50; i++ {
		if w := f.retryWait(0, 2); w < 2*40 {
			t.Fatalf("retryWait with 2s hint = %v virtual sec, want >= %v", w, 2*40)
		}
	}
	if w := f.retryWait(0, 0); w >= f.rc.BaseBackoffSec {
		t.Errorf("hint-less retryWait = %v, want plain jittered backoff", w)
	}
}

// TestParseRetryAfterSec covers the header grammar the testbed emits.
func TestParseRetryAfterSec(t *testing.T) {
	cases := []struct {
		value string
		want  float64
	}{
		{"", 0}, {"3", 3}, {"0", 0}, {"-2", 0}, {"soon", 0}, {"1.5", 0},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.value != "" {
			h.Set("Retry-After", tc.value)
		}
		if got := parseRetryAfterSec(h); got != tc.want {
			t.Errorf("parseRetryAfterSec(%q) = %v, want %v", tc.value, got, tc.want)
		}
	}
}
