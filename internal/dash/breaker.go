package dash

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cava/internal/telemetry"
)

// Breaker is a circuit breaker for the shaper/fault path: when the inner
// handler (the fault injector in front of the segment server) keeps
// failing — 5xx responses or aborted connections — the breaker opens and
// answers 503 + Retry-After immediately instead of burning a shaped-link
// slot on a request that is going to fail anyway. After a cool-down it
// half-opens and lets a bounded number of probe requests through; a probe
// success closes the circuit, a probe failure re-opens it.
//
// The state machine is the textbook three-state breaker:
//
//	closed ──(ConsecutiveFailures failures in a row)──▶ open
//	open ──(OpenSec elapsed)──▶ half-open
//	half-open ──(probe succeeds)──▶ closed
//	half-open ──(probe fails)──▶ open
//
// All time flows through the injected Clock, so tests pin every transition
// with a FakeClock. The zero-value config disables nothing by accident:
// use DefaultBreakerConfig for the standard policy.
type BreakerConfig struct {
	// ConsecutiveFailures is how many back-to-back inner failures trip the
	// breaker (default 8).
	ConsecutiveFailures int
	// OpenSec is the cool-down in wall seconds before the open breaker
	// half-opens (default 2).
	OpenSec float64
	// HalfOpenProbes is how many concurrent probe requests the half-open
	// state admits (default 1).
	HalfOpenProbes int
}

// DefaultBreakerConfig returns the standard breaker policy.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{ConsecutiveFailures: 8, OpenSec: 2, HalfOpenProbes: 1}
}

// withDefaults fills zero fields with the standard policy values.
func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = d.ConsecutiveFailures
	}
	if c.OpenSec <= 0 {
		c.OpenSec = d.OpenSec
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = d.HalfOpenProbes
	}
	return c
}

// BreakerState is the breaker's position in the state machine.
type BreakerState int

const (
	// BreakerClosed passes requests through (healthy path).
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits every request with 503 + Retry-After.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probes.
	BreakerHalfOpen
)

// String renders the state for metrics labels and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// BreakerStats is a snapshot of the breaker's counters.
type BreakerStats struct {
	// State is the current state.
	State BreakerState
	// Opens, HalfOpens and Closes count state transitions.
	Opens     int
	HalfOpens int
	Closes    int
	// ShortCircuits counts requests answered 503 without reaching the
	// inner handler.
	ShortCircuits int
	// Failures and Successes count inner-handler outcomes observed.
	Failures  int
	Successes int
}

// Breaker wraps an inner handler with the circuit-breaker policy. It is
// safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	inner http.Handler
	clock Clock

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probes      int // in-flight probes while half-open
	stats       BreakerStats

	// Telemetry (nil-safe).
	stateGauge  *telemetry.Gauge
	transitions map[BreakerState]*telemetry.Counter
	shorted     *telemetry.Counter
}

// NewBreaker wraps inner with the breaker policy.
func NewBreaker(cfg BreakerConfig, inner http.Handler) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), inner: inner, clock: RealClock()}
}

// NewOriginBreaker returns a breaker for client-side (outbound) use: there
// is no inner handler, so it never serves HTTP itself. Callers gate each
// outbound attempt with Allow and report the outcome with Observe; the
// edge tier keeps one per origin so a dead replica is skipped immediately
// and recovery is probed with bounded concurrency.
func NewOriginBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), clock: RealClock()}
}

// Allow reports whether an outbound attempt may proceed. When pass is
// false the attempt must be skipped; retryAfterSec is the remaining
// cool-down to advertise. When probe is true the breaker is half-open and
// this attempt is one of its bounded probes — the caller MUST report the
// outcome via Observe with the same probe flag.
func (b *Breaker) Allow() (pass, probe bool, retryAfterSec float64) {
	return b.admit()
}

// Observe records the outcome of an attempt admitted by Allow, driving the
// closed/open/half-open state machine exactly as served requests do.
func (b *Breaker) Observe(probe, failed bool) {
	b.report(probe, failed)
}

// WithClock substitutes the breaker's clock (tests use a FakeClock). Call
// before serving.
func (b *Breaker) WithClock(c Clock) *Breaker {
	b.clock = realClockOr(c)
	return b
}

// SetMetrics registers the breaker's gauges and counters on reg (nil
// disables). Call before serving.
func (b *Breaker) SetMetrics(reg *telemetry.Registry) {
	b.stateGauge = reg.Gauge("dash_breaker_state", "circuit-breaker state (0 closed, 1 open, 2 half-open)")
	b.transitions = make(map[BreakerState]*telemetry.Counter)
	for _, s := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
		b.transitions[s] = reg.Counter("dash_breaker_transitions_total",
			"circuit-breaker state transitions", telemetry.Label{Name: "to", Value: s.String()})
	}
	b.shorted = reg.Counter("dash_breaker_short_circuit_total",
		"requests answered 503 by the open breaker")
}

// Stats returns a snapshot of the breaker's counters and current state.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.State = b.state
	return s
}

// State returns the current state (advancing open → half-open if the
// cool-down has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

// transitionLocked moves to the target state and records the transition.
func (b *Breaker) transitionLocked(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	switch to {
	case BreakerOpen:
		b.stats.Opens++
		b.openedAt = b.clock.Now()
	case BreakerHalfOpen:
		b.stats.HalfOpens++
		b.probes = 0
	case BreakerClosed:
		b.stats.Closes++
		b.consecFails = 0
	}
	b.stateGauge.Set(float64(to))
	b.transitions[to].Inc()
}

// advanceLocked applies the time-driven open → half-open transition.
func (b *Breaker) advanceLocked() {
	if b.state == BreakerOpen &&
		b.clock.Now().Sub(b.openedAt).Seconds() >= b.cfg.OpenSec {
		b.transitionLocked(BreakerHalfOpen)
	}
}

// admit decides whether a request may pass. It returns pass=false with the
// seconds to advertise in Retry-After when short-circuited, and
// probe=true when the request is a half-open probe (the caller must report
// its outcome via done).
func (b *Breaker) admit() (pass bool, probe bool, retryAfterSec float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case BreakerClosed:
		return true, false, 0
	case BreakerHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true, true, 0
		}
		b.stats.ShortCircuits++
		return false, false, b.cfg.OpenSec
	default: // BreakerOpen
		b.stats.ShortCircuits++
		remain := b.cfg.OpenSec - b.clock.Now().Sub(b.openedAt).Seconds()
		if remain < 0 {
			remain = 0
		}
		return false, false, remain
	}
}

// report records an inner-handler outcome and drives the state machine.
func (b *Breaker) report(probe, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probes--
	}
	if failed {
		b.stats.Failures++
		b.consecFails++
		if b.state == BreakerHalfOpen ||
			(b.state == BreakerClosed && b.consecFails >= b.cfg.ConsecutiveFailures) {
			b.transitionLocked(BreakerOpen)
		}
		return
	}
	b.stats.Successes++
	b.consecFails = 0
	if b.state == BreakerHalfOpen {
		b.transitionLocked(BreakerClosed)
	}
}

// statusWriter captures the response status so the breaker can classify
// the inner handler's outcome.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// ServeHTTP implements http.Handler.
func (b *Breaker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	pass, probe, retrySec := b.admit()
	if !pass {
		b.shorted.Inc()
		writeShed(w, retrySec, "circuit open")
		return
	}
	sw := &statusWriter{ResponseWriter: w}
	panicked := true
	defer func() {
		failed := panicked || sw.status >= http.StatusInternalServerError
		b.report(probe, failed)
	}()
	b.inner.ServeHTTP(sw, r)
	panicked = false
}

// writeShed answers a shed request: 503 with a Retry-After hint, the
// contract the resilient client's backoff understands.
func writeShed(w http.ResponseWriter, retryAfterSec float64, reason string) {
	sec := int(retryAfterSec + 0.999) // ceil; Retry-After is whole seconds
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	http.Error(w, "overloaded: "+reason, http.StatusServiceUnavailable)
}
