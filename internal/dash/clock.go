package dash

import (
	"sync"
	"time"
)

// Clock abstracts wall-clock access for the testbed. Everything in this
// package that needs the current time or a delay goes through a Clock, so
// unit tests drive the shaper, the fault injector and the client on a
// FakeClock and observe exactly reproducible virtual-time behaviour. This
// file is the only place in the package allowed to read the real clock
// (abrlint's determinism allowlist names it).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)
}

// systemClock is the real wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time        { return time.Now() }
func (systemClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the process wall clock.
func RealClock() Clock { return systemClock{} }

// realClockOr substitutes the real clock for a nil one.
func realClockOr(c Clock) Clock {
	if c == nil {
		return systemClock{}
	}
	return c
}

// FakeClock is a manually advanced clock for tests. Sleep advances the
// clock immediately instead of blocking, so polling loops (the shaper's
// token wait) make deterministic progress with no real delay. The zero
// value starts at the zero time; use NewFakeClock to pick an epoch.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a fake clock starting at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d without blocking.
func (c *FakeClock) Sleep(d time.Duration) {
	c.Advance(d)
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
