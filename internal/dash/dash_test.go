package dash

import (
	"bytes"
	"context"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cava/internal/abr"
	"cava/internal/chaos/leakcheck"
	"cava/internal/core"
	"cava/internal/trace"
	"cava/internal/video"
)

func testVideo() *video.Video {
	return video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
}

func TestManifestRoundTrip(t *testing.T) {
	v := testVideo()
	m := BuildManifest(v)
	if err := m.Validate(); err != nil {
		t.Fatalf("built manifest invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := m.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VideoID != v.ID() || got.ChunkDurSec != v.ChunkDurSec || len(got.Tracks) != v.NumTracks() {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if got.NumSegments() != v.NumChunks() {
		t.Errorf("segments = %d, want %d", got.NumSegments(), v.NumChunks())
	}
	for li := range got.Tracks {
		for ci, s := range got.Tracks[li].SegmentBits {
			if s != v.ChunkSize(li, ci) {
				t.Fatalf("segment size mismatch at %d/%d", li, ci)
			}
		}
	}
}

func TestManifestValidation(t *testing.T) {
	v := testVideo()
	m := BuildManifest(v)
	m.ChunkDurSec = 0
	if m.Validate() == nil {
		t.Error("zero chunk duration validated")
	}
	m = BuildManifest(v)
	m.Tracks[1].SegmentBits = m.Tracks[1].SegmentBits[:3]
	if m.Validate() == nil {
		t.Error("mismatched segment counts validated")
	}
	m = BuildManifest(v)
	m.Tracks[0].SegmentBits[0] = -1
	if m.Validate() == nil {
		t.Error("negative segment size validated")
	}
	if (&Manifest{ChunkDurSec: 2}).Validate() == nil {
		t.Error("trackless manifest validated")
	}
}

func TestManifestToVideo(t *testing.T) {
	v := testVideo()
	view := BuildManifest(v).ToVideo()
	if err := view.Validate(); err != nil {
		t.Fatalf("client view invalid: %v", err)
	}
	if view.NumChunks() != v.NumChunks() || view.NumTracks() != v.NumTracks() {
		t.Fatal("dimensions lost")
	}
	for li := range view.Tracks {
		if math.Abs(view.AvgBitrateBps(li)-v.AvgBitrateBps(li))/v.AvgBitrateBps(li) > 1e-9 {
			t.Errorf("track %d average bitrate drifted", li)
		}
	}
	// CAVA must be constructible from the client view alone.
	algo := core.New(view)
	if got := algo.Select(abr.State{ChunkIndex: 0, Est: 2e6, Buffer: 20}); got < 0 || got >= view.NumTracks() {
		t.Errorf("CAVA on client view selected %d", got)
	}
}

func TestServerEndpoints(t *testing.T) {
	v := testVideo()
	srv := httptest.NewServer(NewServer(v).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeManifest(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("manifest decode: %v", err)
	}
	if m.VideoID != v.ID() {
		t.Errorf("manifest video = %s", m.VideoID)
	}

	// A segment must have exactly ceil(bits/8) bytes.
	resp, err = http.Get(srv.URL + SegmentURL(3, 7))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := int(v.ChunkSize(3, 7)+7) / 8
	if len(body) != want {
		t.Errorf("segment bytes = %d, want %d", len(body), want)
	}

	// Errors.
	for _, path := range []string{"/seg/9/0", "/seg/0/99999", "/seg/x/0", "/seg/0"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("path %s unexpectedly succeeded", path)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/manifest.json", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST manifest status %d", resp.StatusCode)
	}
}

func TestShaperRate(t *testing.T) {
	// 8 Mbps link, scale 20: 1 MB should take ~1/20 * 1s wall.
	tr := trace.Constant("c", 8e6, 600, 1)
	s := NewShaper(tr, 20)
	start := time.Now()
	total := 0
	for total < 1_000_000 {
		n := 32 << 10
		s.Wait(n)
		total += n
	}
	wall := time.Since(start).Seconds()
	// Expected: 1e6 bytes at 8e6*20/8 = 2e7 B/s -> 50 ms.
	if wall < 0.03 || wall > 0.25 {
		t.Errorf("1MB over shaped link took %.3fs wall, want ~0.05s", wall)
	}
}

func TestShaperHonorsOutage(t *testing.T) {
	tr := &trace.Trace{ID: "o", IntervalSec: 1, Samples: []float64{0, 8e6}}
	s := NewShaper(tr, 10)
	start := time.Now()
	s.Wait(100_000) // must wait out the 0.1 s (virtual 1 s) outage
	if wall := time.Since(start).Seconds(); wall < 0.08 {
		t.Errorf("outage not enforced: %.3fs", wall)
	}
}

func TestEndToEndStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("live streaming test")
	}
	defer leakcheck.Check(t)()
	v := testVideo()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const scale = 120
	shaped := NewShapedListener(ln, NewShaper(trace.Constant("c", 3e6, 1200, 1), scale))
	hsrv := NewHTTPServer(NewServer(v).Handler())
	go hsrv.Serve(shaped)
	defer hsrv.Close()

	client, err := NewClient(ClientConfig{
		BaseURL:      "http://" + ln.Addr().String(),
		NewAlgorithm: core.Factory(),
		TimeScale:    scale,
		MaxChunks:    60,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 60 {
		t.Fatalf("streamed %d chunks, want 60", len(res.Chunks))
	}
	if res.Scheme != "CAVA" {
		t.Errorf("scheme = %s", res.Scheme)
	}
	// On a constant 3 Mbps (virtual) link the client must converge above
	// the bottom track and observe roughly the shaped throughput.
	lastLevels := res.Chunks[40:]
	sum := 0
	for _, c := range lastLevels {
		sum += c.Level
	}
	if avg := float64(sum) / float64(len(lastLevels)); avg < 1.5 {
		t.Errorf("late average level %.2f on a 3 Mbps link; adaptation failed", avg)
	}
	// Aggregate throughput over substantial downloads only: tiny segments
	// ride the token-bucket burst and report inflated rates, exactly like
	// short transfers over a real shaped link.
	var bits, secs float64
	for _, c := range res.Chunks {
		if c.DownloadSec > 1 { // virtual seconds
			bits += c.SizeBits
			secs += c.DownloadSec
		}
	}
	if secs > 5 {
		if agg := bits / secs; agg < 1.5e6 || agg > 4.5e6 {
			t.Errorf("aggregate virtual throughput %.2f Mbps, want ~3", agg/1e6)
		}
	}
	if res.TotalRebufferSec > 5 {
		t.Errorf("rebuffered %.1f virtual seconds on an ample link", res.TotalRebufferSec)
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewClient(ClientConfig{BaseURL: "http://x"}); err == nil {
		t.Error("missing factory accepted")
	}
	c, err := NewClient(ClientConfig{BaseURL: "http://x", NewAlgorithm: core.Factory()})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.TimeScale != 1 || c.cfg.StartupSec != 10 || c.cfg.MaxBufferSec != 100 {
		t.Errorf("defaults not applied: %+v", c.cfg)
	}
}

func TestParseSegmentPath(t *testing.T) {
	tr, idx, err := parseSegmentPath("/seg/4/123")
	if err != nil || tr != 4 || idx != 123 {
		t.Errorf("parse = %d,%d,%v", tr, idx, err)
	}
	for _, bad := range []string{"/seg/", "/seg/1", "/seg/a/2", "/seg/1/b", "/seg/1/2/3"} {
		if _, _, err := parseSegmentPath(bad); err == nil {
			t.Errorf("path %q parsed", bad)
		}
	}
}
