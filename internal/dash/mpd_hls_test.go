package dash

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMPDRoundTrip(t *testing.T) {
	v := testVideo()
	m := BuildManifest(v)
	var buf bytes.Buffer
	if err := WriteMPD(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "urn:mpeg:dash:schema:mpd:2011") {
		t.Error("MPD missing schema namespace")
	}
	got, err := ReadMPD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VideoID != m.VideoID {
		t.Errorf("VideoID = %q, want %q", got.VideoID, m.VideoID)
	}
	if got.ChunkDurSec != m.ChunkDurSec || len(got.Tracks) != len(m.Tracks) {
		t.Fatalf("structure lost: dur=%v tracks=%d", got.ChunkDurSec, len(got.Tracks))
	}
	for li := range got.Tracks {
		if got.Tracks[li].Height != m.Tracks[li].Height {
			t.Errorf("track %d height mismatch", li)
		}
		if len(got.Tracks[li].SegmentBits) != len(m.Tracks[li].SegmentBits) {
			t.Fatalf("track %d segment count mismatch", li)
		}
		for ci := range got.Tracks[li].SegmentBits {
			// Sizes are rounded to whole bits in the descriptor.
			if math.Abs(got.Tracks[li].SegmentBits[ci]-m.Tracks[li].SegmentBits[ci]) > 0.5 {
				t.Fatalf("track %d segment %d size drifted", li, ci)
			}
		}
	}
	// The reconstructed manifest must still drive a client view.
	if err := got.ToVideo().Validate(); err != nil {
		t.Errorf("client view from MPD invalid: %v", err)
	}
}

func TestMPDErrors(t *testing.T) {
	if _, err := ReadMPD(strings.NewReader("not xml")); err == nil {
		t.Error("garbage accepted as MPD")
	}
	if _, err := ReadMPD(strings.NewReader(`<?xml version="1.0"?><MPD><Period id="0" duration="PT1S"></Period></MPD>`)); err == nil {
		t.Error("MPD without adaptation sets accepted")
	}
	// Inconsistent declared duration.
	v := testVideo()
	var buf bytes.Buffer
	if err := WriteMPD(&buf, BuildManifest(v)); err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(buf.String(), `mediaPresentationDuration="PT600S"`,
		`mediaPresentationDuration="PT9S"`, 1)
	if !strings.Contains(buf.String(), `PT600S`) {
		t.Skip("duration attribute format changed")
	}
	if _, err := ReadMPD(strings.NewReader(bad)); err == nil {
		t.Error("inconsistent MPD duration accepted")
	}
}

func TestISODuration(t *testing.T) {
	cases := map[string]float64{
		"PT600S":    600,
		"PT10M":     600,
		"PT1H10M5S": 4205,
		"PT2.5S":    2.5,
		"PT1H":      3600,
	}
	for in, want := range cases {
		got, err := parseISODuration(in)
		if err != nil || got != want {
			t.Errorf("parseISODuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "600", "PTXS", "PT5X"} {
		if _, err := parseISODuration(bad); err == nil {
			t.Errorf("parseISODuration(%q) accepted", bad)
		}
	}
	if isoDuration(600) != "PT600S" {
		t.Errorf("isoDuration(600) = %s", isoDuration(600))
	}
}

func TestHLSMasterRoundTrip(t *testing.T) {
	v := testVideo()
	m := BuildManifest(v)
	var buf bytes.Buffer
	if err := WriteHLSMaster(&buf, m); err != nil {
		t.Fatal(err)
	}
	variants, err := ReadHLSMaster(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != len(m.Tracks) {
		t.Fatalf("%d variants, want %d", len(variants), len(m.Tracks))
	}
	for i, vt := range variants {
		if vt.Height != m.Tracks[i].Height {
			t.Errorf("variant %d height %d, want %d", i, vt.Height, m.Tracks[i].Height)
		}
		if math.Abs(vt.AverageBandwidth-m.Tracks[i].DeclaredBitrateBps) > 1 {
			t.Errorf("variant %d average bandwidth drifted", i)
		}
		if vt.Bandwidth < vt.AverageBandwidth {
			t.Errorf("variant %d peak below average", i)
		}
		if vt.URI == "" {
			t.Errorf("variant %d missing URI", i)
		}
	}
}

func TestHLSMediaRoundTrip(t *testing.T) {
	v := testVideo()
	m := BuildManifest(v)
	var buf bytes.Buffer
	if err := WriteHLSMedia(&buf, m, 3); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadHLSMedia(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.SegmentBits) != v.NumChunks() {
		t.Fatalf("%d segments, want %d", len(tr.SegmentBits), v.NumChunks())
	}
	if tr.TargetDuration < m.ChunkDurSec {
		t.Errorf("target duration %v below chunk duration", tr.TargetDuration)
	}
	// EXT-X-BITRATE is kbps-rounded; sizes must agree within 0.1%.
	for i := range tr.SegmentBits {
		want := v.ChunkSize(3, i)
		if rel := math.Abs(tr.SegmentBits[i]-want) / want; rel > 0.01 {
			t.Fatalf("segment %d size off by %.2f%%", i, rel*100)
		}
	}
	if tr.URIs[0] != "seg/3/0" {
		t.Errorf("first URI = %q", tr.URIs[0])
	}
}

func TestHLSMediaErrors(t *testing.T) {
	if _, err := ReadHLSMedia(strings.NewReader("nope")); err == nil {
		t.Error("non-playlist accepted")
	}
	if _, err := ReadHLSMedia(strings.NewReader("#EXTM3U\nseg/0/0\n")); err == nil {
		t.Error("segment without EXTINF accepted")
	}
	if _, err := ReadHLSMedia(strings.NewReader("#EXTM3U\n#EXT-X-ENDLIST\n")); err == nil {
		t.Error("empty playlist accepted")
	}
	if _, err := ReadHLSMaster(strings.NewReader("#EXTM3U\n")); err == nil {
		t.Error("variant-less master accepted")
	}
}

func TestWriteHLSMediaBadTrack(t *testing.T) {
	m := BuildManifest(testVideo())
	var buf bytes.Buffer
	if err := WriteHLSMedia(&buf, m, 99); err == nil {
		t.Error("out-of-range track accepted")
	}
}

func TestSplitHLSAttrs(t *testing.T) {
	got := splitHLSAttrs(`BANDWIDTH=1,CODECS="a,b",RESOLUTION=1x2`)
	if len(got) != 3 || got[1] != `CODECS="a,b"` {
		t.Errorf("splitHLSAttrs = %v", got)
	}
}

func TestServerServesMPDAndHLS(t *testing.T) {
	v := testVideo()
	srv := httptest.NewServer(NewServer(v).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/manifest.mpd")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadMPD(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("served MPD unreadable: %v", err)
	}
	if m.NumSegments() != v.NumChunks() {
		t.Error("served MPD lost segments")
	}

	resp, err = http.Get(srv.URL + "/master.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	variants, err := ReadHLSMaster(resp.Body)
	resp.Body.Close()
	if err != nil || len(variants) != v.NumTracks() {
		t.Fatalf("served master playlist bad: %v (%d variants)", err, len(variants))
	}

	resp, err = http.Get(srv.URL + "/track_2.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ReadHLSMedia(resp.Body)
	resp.Body.Close()
	if err != nil || len(tr.SegmentBits) != v.NumChunks() {
		t.Fatalf("served media playlist bad: %v", err)
	}

	resp, _ = http.Get(srv.URL + "/track_99.m3u8")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bogus media playlist status %d", resp.StatusCode)
	}
}
