package dash

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"

	"cava/internal/abr"
	"cava/internal/telemetry"
)

// ResilienceConfig tunes the client's fault-tolerant fetch pipeline.
// A nil ResilienceConfig on the ClientConfig keeps the legacy fail-fast
// behaviour (any transport error aborts the session); a non-nil config —
// DefaultResilience() for the standard policy — makes the client survive
// transient faults the way production players do: capped-backoff retries,
// truncation detection, mid-download abandonment with a downshift, and
// skip-with-stall accounting once retries are exhausted.
//
// All durations are virtual seconds (scaled by ClientConfig.TimeScale),
// so the policy is invariant under time compression.
type ResilienceConfig struct {
	// MaxRetries is the number of re-attempts per segment after the first
	// try fails (default 3).
	MaxRetries int
	// BaseBackoffSec and MaxBackoffSec bound the exponential backoff
	// between attempts (defaults 0.25 and 4 virtual seconds). The actual
	// wait is the capped exponential scaled by a seeded jitter in
	// [0.5, 1.0), so retry storms from concurrent clients decorrelate
	// while staying reproducible.
	BaseBackoffSec float64
	MaxBackoffSec  float64
	// JitterSeed seeds the backoff jitter (sessions with equal seeds
	// replay identical schedules).
	JitterSeed int64
	// DeadlineFactor caps each attempt at DeadlineFactor × the predicted
	// download time (from the bandwidth estimate), clamped to
	// [MinDeadlineSec, MaxDeadlineSec]. 0 disables per-attempt deadlines.
	DeadlineFactor float64
	// MinDeadlineSec and MaxDeadlineSec clamp the per-attempt deadline
	// (defaults 4 and 60 virtual seconds).
	MinDeadlineSec float64
	MaxDeadlineSec float64
	// AbandonEnabled turns on mid-download segment abandonment (the
	// BOLA-E/paper "proactive" rule): when the projected finish time of an
	// in-flight download would drain the playback buffer, give up and
	// downshift one track.
	AbandonEnabled bool
	// AbandonSafetySec is the buffer headroom (virtual seconds) kept when
	// projecting: abandon when projected remaining time exceeds
	// buffer − AbandonSafetySec (default 1).
	AbandonSafetySec float64
	// AbandonCheckBytes is the minimum bytes observed before the rate
	// projection is trusted (default 16 KiB).
	AbandonCheckBytes int64
	// MaxConsecutiveSkips bounds graceful degradation: after this many
	// back-to-back skipped segments the session aborts (the server is
	// gone, not glitching). Default 20.
	MaxConsecutiveSkips int
}

// DefaultResilience returns the standard resilient-fetch policy.
func DefaultResilience() *ResilienceConfig {
	return &ResilienceConfig{
		MaxRetries:          3,
		BaseBackoffSec:      0.25,
		MaxBackoffSec:       4,
		DeadlineFactor:      6,
		MinDeadlineSec:      4,
		MaxDeadlineSec:      60,
		AbandonEnabled:      true,
		AbandonSafetySec:    1,
		AbandonCheckBytes:   16 << 10,
		MaxConsecutiveSkips: 20,
	}
}

// withDefaults fills zero fields with the standard policy values.
func (rc ResilienceConfig) withDefaults() ResilienceConfig {
	d := DefaultResilience()
	if rc.MaxRetries <= 0 {
		rc.MaxRetries = d.MaxRetries
	}
	if rc.BaseBackoffSec <= 0 {
		rc.BaseBackoffSec = d.BaseBackoffSec
	}
	if rc.MaxBackoffSec <= 0 {
		rc.MaxBackoffSec = d.MaxBackoffSec
	}
	if rc.MinDeadlineSec <= 0 {
		rc.MinDeadlineSec = d.MinDeadlineSec
	}
	if rc.MaxDeadlineSec <= 0 {
		rc.MaxDeadlineSec = d.MaxDeadlineSec
	}
	if rc.AbandonSafetySec <= 0 {
		rc.AbandonSafetySec = d.AbandonSafetySec
	}
	if rc.AbandonCheckBytes <= 0 {
		rc.AbandonCheckBytes = d.AbandonCheckBytes
	}
	if rc.MaxConsecutiveSkips <= 0 {
		rc.MaxConsecutiveSkips = d.MaxConsecutiveSkips
	}
	return rc
}

// errTruncated marks a download whose body fell short of Content-Length.
var errTruncated = errors.New("dash: truncated segment body")

// statusError reports a non-200 response, carrying the server's
// Retry-After hint (wall seconds; 0 when absent) so the retry loop can
// honor server-paced backoff instead of guessing.
type statusError struct {
	msg           string
	code          int
	retryAfterSec float64
}

func (e *statusError) Error() string { return e.msg }

// retryAfterSecOf extracts the wall-seconds Retry-After hint from an
// attempt error (0 when the error carries none).
func retryAfterSecOf(err error) float64 {
	var se *statusError
	if errors.As(err, &se) {
		return se.retryAfterSec
	}
	return 0
}

// parseRetryAfterSec reads the delay-seconds form of a Retry-After header
// (the only form the testbed emits); 0 means absent or unparseable.
func parseRetryAfterSec(h http.Header) float64 {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	sec, err := strconv.Atoi(v)
	if err != nil || sec < 0 {
		return 0
	}
	return float64(sec)
}

// errAbandoned marks a download given up mid-flight for being too slow.
var errAbandoned = errors.New("dash: segment download abandoned")

// segmentFetch is the outcome of the resilient pipeline for one segment.
type segmentFetch struct {
	// Bytes is the delivered size of the successful attempt (0 if skipped).
	Bytes int64
	// Level is the track actually delivered (≤ requested after downshifts).
	Level int
	// Retries counts failed attempts that were retried.
	Retries int
	// Truncations counts attempts rejected for a short body.
	Truncations int
	// Abandonments counts mid-flight downshifts.
	Abandonments int
	// WastedBits counts bits of abandoned partial downloads (they crossed
	// the link but deliver no video).
	WastedBits float64
	// Skipped reports that every attempt failed and playback moves on.
	Skipped bool
}

// fetcher runs the resilient download pipeline for one session. It is
// created per Run and is not safe for concurrent use (sessions are
// sequential by construction).
type fetcher struct {
	c     *Client
	m     *Manifest
	rc    ResilienceConfig
	rng   *rand.Rand
	vnow  func() float64
	sleep func(float64) error // virtual-seconds sleep, ctx-aware
	scale float64

	// Decision tracing (set by Client.Run once the session id is known).
	trc     telemetry.Recorder
	session string
}

func newFetcher(c *Client, m *Manifest, rc ResilienceConfig,
	vnow func() float64, sleep func(float64) error) *fetcher {
	return &fetcher{
		c:     c,
		m:     m,
		rc:    rc.withDefaults(),
		rng:   rand.New(rand.NewSource(rc.JitterSeed)),
		vnow:  vnow,
		sleep: sleep,
		scale: c.cfg.TimeScale,
	}
}

// retryWait returns the virtual-seconds wait before retry r (0-based).
// The base is a capped exponential with seeded FULL jitter — uniform in
// [0, cap) rather than [cap/2, cap) — so concurrent sessions that failed
// together spread their retries across the whole window instead of
// re-colliding in lockstep. When the failed attempt carried a server
// Retry-After hint (wall seconds, from load shedding or an open breaker),
// the hint is honored as a floor: the client never returns before the
// server asked it to, with the jitter decorrelating arrivals beyond it.
func (f *fetcher) retryWait(r int, retryAfterWallSec float64) float64 {
	d := f.rc.BaseBackoffSec
	for i := 0; i < r && d < f.rc.MaxBackoffSec; i++ {
		d *= 2
	}
	if d > f.rc.MaxBackoffSec {
		d = f.rc.MaxBackoffSec
	}
	wait := d * f.rng.Float64()
	if retryAfterWallSec > 0 {
		// Retry-After is wall seconds; the wait below is virtual.
		wait += retryAfterWallSec * f.scale
		f.c.mRetryAfter.Inc()
	}
	return wait
}

// deadline returns the per-attempt virtual-time budget for a segment of
// sizeBits under bandwidth estimate est, or 0 for no deadline.
func (f *fetcher) deadline(sizeBits, est float64) float64 {
	if f.rc.DeadlineFactor <= 0 {
		return 0
	}
	d := f.rc.MaxDeadlineSec
	if est > 0 {
		d = f.rc.DeadlineFactor * sizeBits / est
	}
	if d < f.rc.MinDeadlineSec {
		d = f.rc.MinDeadlineSec
	}
	if d > f.rc.MaxDeadlineSec {
		d = f.rc.MaxDeadlineSec
	}
	return d
}

// fetch downloads segment index at the requested level, absorbing faults
// per the policy. It returns an error only for fatal conditions (context
// cancellation or the consecutive-skip bound tripping elsewhere); per-
// segment failure surfaces as Skipped.
func (f *fetcher) fetch(ctx context.Context, level, index int,
	buffer, est float64, playing bool) (segmentFetch, error) {
	sf := segmentFetch{Level: level}
	for {
		if err := ctx.Err(); err != nil {
			return sf, err
		}
		attemptCtx := ctx
		cancel := context.CancelFunc(func() {})
		if d := f.deadline(f.m.Tracks[sf.Level].SegmentBits[index], est); d > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, wallDuration(d, f.scale))
		}
		n, err := f.fetchOnce(attemptCtx, sf.Level, index, buffer, est, playing)
		cancel()
		if err == nil {
			sf.Bytes = n
			return sf, nil
		}
		if ctx.Err() != nil {
			// The session, not the attempt, was cancelled.
			return sf, ctx.Err()
		}
		if errors.Is(err, context.DeadlineExceeded) {
			// The per-attempt deadline fired (the session context is live).
			f.c.mDeadlines.Inc()
		}
		switch {
		case errors.Is(err, errAbandoned):
			// Downshift and refetch immediately; the partial bytes are
			// sunk cost on the link.
			sf.Abandonments++
			sf.WastedBits += float64(n) * 8
			f.c.mAbandons.Inc()
			prev := sf.Level
			sf.Level = abr.ClampLevel(sf.Level-1, len(f.m.Tracks))
			if f.trc != nil {
				f.trc.Record(telemetry.Event{
					Session: f.session, TimeSec: f.vnow(), Kind: telemetry.KindAbandon,
					Chunk: index, Level: sf.Level, PrevLevel: prev,
					BufferSec: buffer, EstBps: est,
					SizeBits: float64(n) * 8, Detail: "projected stall, downshifting",
				})
			}
			continue
		case errors.Is(err, errTruncated):
			sf.Truncations++
			f.c.mTruncs.Inc()
		}
		if sf.Retries >= f.rc.MaxRetries {
			sf.Skipped = true
			sf.Bytes = 0
			return sf, nil
		}
		sf.Retries++
		f.c.mRetries.Inc()
		if f.trc != nil {
			f.trc.Record(telemetry.Event{
				Session: f.session, TimeSec: f.vnow(), Kind: telemetry.KindRetry,
				Chunk: index, Level: sf.Level, PrevLevel: sf.Level,
				BufferSec: buffer, EstBps: est,
				Attempt: sf.Retries, Detail: err.Error(),
			})
		}
		if err := f.sleep(f.retryWait(sf.Retries-1, retryAfterSecOf(err))); err != nil {
			return sf, err
		}
	}
}

// fetchOnce performs a single monitored download attempt.
func (f *fetcher) fetchOnce(ctx context.Context, level, index int,
	buffer, est float64, playing bool) (int64, error) {
	req, err := f.c.newRequest(ctx, SegmentURL(level, index))
	if err != nil {
		return 0, err
	}
	resp, err := f.c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, fmt.Errorf("dash: fetching segment %d/%d: %w", level, index, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, &statusError{
			msg:           fmt.Sprintf("dash: segment %d/%d status %s", level, index, resp.Status),
			code:          resp.StatusCode,
			retryAfterSec: parseRetryAfterSec(resp.Header),
		}
	}

	declared := resp.ContentLength
	startV := f.vnow()
	var total int64
	buf := make([]byte, 16<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		total += int64(n)

		// Abandonment check: would finishing this download at the observed
		// rate stall playback? Only meaningful mid-download, with a rate
		// sample, a known size, and a lower track to fall back to.
		if f.rc.AbandonEnabled && playing && level > 0 && declared > 0 &&
			total >= f.rc.AbandonCheckBytes && total < declared {
			elapsed := f.vnow() - startV
			if elapsed > 0 {
				rate := float64(total) / elapsed // bytes per virtual second
				remainSec := float64(declared-total) / rate
				if remainSec > buffer-elapsed-f.rc.AbandonSafetySec {
					return total, errAbandoned
				}
			}
		}

		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			if cerr := ctx.Err(); cerr != nil {
				// Attempt deadline or session cancellation, not a short
				// body from the server.
				return total, fmt.Errorf("dash: segment %d/%d: %w", level, index, cerr)
			}
			if declared >= 0 && total < declared {
				return total, fmt.Errorf("dash: segment %d/%d: %w after %d/%d bytes (%v)",
					level, index, errTruncated, total, declared, rerr)
			}
			return total, rerr
		}
	}
	if declared >= 0 && total != declared {
		return total, fmt.Errorf("dash: segment %d/%d: %w: read %d of %d bytes",
			level, index, errTruncated, total, declared)
	}
	return total, nil
}

// fetchManifestResilient retries the manifest fetch under the same backoff
// policy (full jitter, Retry-After honored), so a session can start
// through a transient fault without piling onto a shedding server.
func (f *fetcher) fetchManifestResilient(ctx context.Context) (*Manifest, error) {
	var lastErr error
	for attempt := 0; attempt <= f.rc.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := f.sleep(f.retryWait(attempt-1, retryAfterSecOf(lastErr))); err != nil {
				return nil, err
			}
		}
		m, err := f.c.FetchManifest(ctx)
		if err == nil {
			return m, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dash: manifest unavailable after %d retries: %w",
		f.rc.MaxRetries, lastErr)
}
