package dash

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"time"

	"cava/internal/telemetry"
)

// FaultConfig describes the failure behaviour of the testbed link/server,
// emulating the transient errors real CDN edges and cellular links exhibit
// (§6.8 runs over emulated LTE, where mid-session failures are the norm).
//
// Every decision is a pure function of (Seed, request path, attempt number
// for that path), so a fault schedule is exactly reproducible across runs
// and independent of request interleaving: retrying the same segment sees a
// fresh (but still deterministic) draw, and concurrent clients do not
// perturb each other's schedules.
//
// Probabilities are per-request in [0, 1] and are evaluated in a fixed
// precedence order: outage window, connection reset, HTTP error, body
// truncation; latency and mid-body stalls compose with a successful
// response. The zero value injects nothing.
type FaultConfig struct {
	// Seed drives every pseudo-random decision.
	Seed int64
	// ErrorProb is the probability of answering 503 Service Unavailable.
	ErrorProb float64
	// ResetProb is the probability of dropping the connection without a
	// response (the client observes EOF / connection reset).
	ResetProb float64
	// TruncateProb is the probability of declaring the full Content-Length
	// but sending only TruncateFrac of the body before closing.
	TruncateProb float64
	// TruncateFrac is the delivered fraction of a truncated body
	// (default 0.5; clamped to (0, 1)).
	TruncateFrac float64
	// LatencyProb and LatencySec inject a response-latency spike: the
	// response is delayed by LatencySec virtual seconds.
	LatencyProb float64
	LatencySec  float64
	// StallProb and StallSec freeze the body mid-transfer once, halfway
	// through, for StallSec virtual seconds (a slow segment, not an error).
	StallProb float64
	StallSec  float64
	// Outages are virtual-time windows (seconds since the injector's first
	// request) during which every request is answered 503.
	Outages []OutageWindow
	// TimeScale converts wall time to virtual time for Outages, LatencySec
	// and StallSec; it must match the shaper/client scale (default 1).
	TimeScale float64
	// SegmentsOnly restricts injection to segment requests (/seg/...),
	// leaving manifests and playlists untouched.
	SegmentsOnly bool
}

// OutageWindow is a half-open virtual-time interval [StartSec, EndSec).
type OutageWindow struct {
	StartSec, EndSec float64
}

// Validate rejects malformed configurations.
func (c *FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ErrorProb", c.ErrorProb}, {"ResetProb", c.ResetProb},
		{"TruncateProb", c.TruncateProb}, {"LatencyProb", c.LatencyProb},
		{"StallProb", c.StallProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("dash: fault %s = %v out of [0,1]", p.name, p.v)
		}
	}
	for _, w := range c.Outages {
		if w.EndSec <= w.StartSec || w.StartSec < 0 {
			return fmt.Errorf("dash: bad outage window [%v,%v)", w.StartSec, w.EndSec)
		}
	}
	return nil
}

// Active reports whether the config injects any fault at all.
func (c *FaultConfig) Active() bool {
	return c.ErrorProb > 0 || c.ResetProb > 0 || c.TruncateProb > 0 ||
		c.LatencyProb > 0 || c.StallProb > 0 || len(c.Outages) > 0
}

// FaultStats counts injected events, for reporting and assertions.
type FaultStats struct {
	// Requests is the total number of requests seen (faulted or not).
	Requests int
	// Errors counts injected 503 responses (outside outage windows).
	Errors int
	// Resets counts dropped connections.
	Resets int
	// Truncations counts short bodies.
	Truncations int
	// Latencies and Stalls count injected delays.
	Latencies int
	Stalls    int
	// OutageRejections counts requests refused inside an outage window.
	OutageRejections int
}

// FaultInjector is an http.Handler middleware that applies a FaultConfig in
// front of an inner handler. It is safe for concurrent use.
type FaultInjector struct {
	cfg   FaultConfig
	inner http.Handler
	clock Clock

	mu       sync.Mutex
	start    time.Time
	attempts map[string]uint64
	stats    FaultStats

	// Telemetry (nil-safe). faultsTot is labeled by fault type; rec, when
	// set, receives a KindFault decision-trace event per injected fault so
	// server-side causes line up with client-side retries in one timeline.
	reqsTot   *telemetry.Counter
	faultsTot map[string]*telemetry.Counter
	rec       telemetry.Recorder
	session   string
}

// NewFaultInjector wraps inner with the fault model. A nil-effect (inactive)
// config passes everything through untouched.
func NewFaultInjector(cfg FaultConfig, inner http.Handler) *FaultInjector {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.TruncateFrac <= 0 || cfg.TruncateFrac >= 1 {
		cfg.TruncateFrac = 0.5
	}
	return &FaultInjector{cfg: cfg, inner: inner, clock: RealClock(), attempts: make(map[string]uint64)}
}

// WithClock substitutes the injector's clock (tests use a FakeClock). Call
// before serving.
func (f *FaultInjector) WithClock(c Clock) *FaultInjector {
	f.clock = realClockOr(c)
	return f
}

// SetMetrics registers the injector's counters on reg (nil disables).
func (f *FaultInjector) SetMetrics(reg *telemetry.Registry) {
	f.reqsTot = reg.Counter("dash_faults_requests_total", "requests seen by the fault injector")
	f.faultsTot = make(map[string]*telemetry.Counter)
	for _, typ := range []string{"outage", "reset", "error", "truncate", "latency", "stall"} {
		f.faultsTot[typ] = reg.Counter("dash_faults_injected_total",
			"faults injected by type", telemetry.Label{Name: "type", Value: typ})
	}
}

// SetRecorder attaches a decision-trace recorder: every injected fault is
// recorded as a KindFault event stamped with the injector's virtual clock
// and, for segment requests, the chunk and track concerned.
func (f *FaultInjector) SetRecorder(rec telemetry.Recorder, session string) {
	f.rec = rec
	f.session = session
}

// Stats returns a snapshot of the injected-event counters.
func (f *FaultInjector) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// decision is the fault plan for one request.
type decision struct {
	outage   bool
	reset    bool
	httpErr  bool
	truncate bool
	latency  bool
	stall    bool
}

// draw derives a uniform [0,1) float from (seed, path, attempt, salt) via
// FNV-1a + a splitmix64 finalizer: cheap, stable across runs, and with no
// shared-state ordering dependence.
func draw(seed int64, path string, attempt uint64, salt uint64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", seed, path, attempt, salt)
	x := h.Sum64()
	// splitmix64 finalizer to decorrelate the FNV lanes.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// plan computes the request's fault decision and updates counters.
func (f *FaultInjector) plan(path string) decision {
	f.mu.Lock()
	now := f.clock.Now()
	if f.start.IsZero() {
		f.start = now
	}
	vt := now.Sub(f.start).Seconds() * f.cfg.TimeScale
	attempt := f.attempts[path]
	f.attempts[path] = attempt + 1
	f.stats.Requests++
	f.mu.Unlock()

	var d decision
	for _, w := range f.cfg.Outages {
		if vt >= w.StartSec && vt < w.EndSec {
			d.outage = true
		}
	}
	seed := f.cfg.Seed
	switch {
	case d.outage:
	case draw(seed, path, attempt, 1) < f.cfg.ResetProb:
		d.reset = true
	case draw(seed, path, attempt, 2) < f.cfg.ErrorProb:
		d.httpErr = true
	case draw(seed, path, attempt, 3) < f.cfg.TruncateProb:
		d.truncate = true
	}
	if !d.outage && !d.reset && !d.httpErr {
		d.latency = draw(seed, path, attempt, 4) < f.cfg.LatencyProb
		d.stall = draw(seed, path, attempt, 5) < f.cfg.StallProb
	}

	f.mu.Lock()
	switch {
	case d.outage:
		f.stats.OutageRejections++
	case d.reset:
		f.stats.Resets++
	case d.httpErr:
		f.stats.Errors++
	case d.truncate:
		f.stats.Truncations++
	}
	if d.latency {
		f.stats.Latencies++
	}
	if d.stall {
		f.stats.Stalls++
	}
	f.mu.Unlock()

	f.reqsTot.Inc()
	for _, typ := range d.types() {
		f.faultsTot[typ].Inc()
		if f.rec != nil {
			track, index := -1, -1
			if t, i, err := parseSegmentPath(path); err == nil {
				track, index = t, i
			}
			f.rec.Record(telemetry.Event{
				Session: f.session, TimeSec: vt, Kind: telemetry.KindFault,
				Chunk: index, Level: track, PrevLevel: -1,
				Attempt: int(attempt), Detail: typ,
			})
		}
	}
	return d
}

// types lists the fault type names a decision will inject.
func (d decision) types() []string {
	var out []string
	if d.outage {
		out = append(out, "outage")
	}
	if d.reset {
		out = append(out, "reset")
	}
	if d.httpErr {
		out = append(out, "error")
	}
	if d.truncate {
		out = append(out, "truncate")
	}
	if d.latency {
		out = append(out, "latency")
	}
	if d.stall {
		out = append(out, "stall")
	}
	return out
}

// ServeHTTP implements http.Handler.
func (f *FaultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !f.cfg.Active() ||
		(f.cfg.SegmentsOnly && !strings.HasPrefix(r.URL.Path, "/seg/")) {
		f.inner.ServeHTTP(w, r)
		return
	}
	d := f.plan(r.URL.Path)
	switch {
	case d.outage:
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
		return
	case d.reset:
		// ErrAbortHandler makes the server drop the connection without a
		// response and without logging a stack trace.
		//lint:allow nopanic http.ErrAbortHandler is net/http's abort idiom
		panic(http.ErrAbortHandler)
	case d.httpErr:
		http.Error(w, "injected server error", http.StatusServiceUnavailable)
		return
	}
	if d.latency && f.cfg.LatencySec > 0 {
		f.clock.Sleep(wallDuration(f.cfg.LatencySec, f.cfg.TimeScale))
	}
	out := http.ResponseWriter(w)
	if d.truncate || d.stall {
		out = &faultWriter{
			ResponseWriter: w,
			clock:          f.clock,
			truncate:       d.truncate,
			truncFrac:      f.cfg.TruncateFrac,
			stall:          d.stall,
			stallWall:      wallDuration(f.cfg.StallSec, f.cfg.TimeScale),
		}
	}
	f.inner.ServeHTTP(out, r)
}

// wallDuration converts virtual seconds to a wall-clock duration.
func wallDuration(virtualSec, scale float64) time.Duration {
	return time.Duration(virtualSec / scale * float64(time.Second))
}

// faultWriter applies body-level faults: it discovers the declared
// Content-Length at the first write, silently drops bytes past the
// truncation point (the server then closes the connection short of the
// declared length), and freezes once halfway through for the stall case.
type faultWriter struct {
	http.ResponseWriter
	clock     Clock
	truncate  bool
	truncFrac float64
	stall     bool
	stallWall time.Duration

	declared int64 // from Content-Length; -1 when absent
	written  int64
	limit    int64 // bytes allowed through when truncating
	half     int64 // stall trigger point
	inited   bool
	stalled  bool
}

func (fw *faultWriter) init() {
	if fw.inited {
		return
	}
	fw.inited = true
	fw.declared = -1
	if cl := fw.Header().Get("Content-Length"); cl != "" {
		var n int64
		if _, err := fmt.Sscanf(cl, "%d", &n); err == nil {
			fw.declared = n
		}
	}
	if fw.declared > 0 {
		fw.limit = int64(float64(fw.declared) * fw.truncFrac)
		if fw.limit < 1 {
			fw.limit = 1
		}
		fw.half = fw.declared / 2
	} else {
		// No declared length: truncation cannot be detected by the client
		// anyway; pass one write through then cut, and stall immediately.
		fw.limit = 1
		fw.half = 0
	}
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	fw.init()
	if fw.stall && !fw.stalled && fw.written >= fw.half {
		fw.stalled = true
		fw.clock.Sleep(fw.stallWall)
	}
	if fw.truncate {
		remain := fw.limit - fw.written
		if remain <= 0 {
			// Report success so the inner handler keeps its invariants;
			// the bytes never reach the wire and the server closes the
			// connection short.
			fw.written += int64(len(p))
			return len(p), nil
		}
		if int64(len(p)) > remain {
			n, err := fw.ResponseWriter.Write(p[:remain])
			fw.written += int64(len(p))
			if err != nil {
				return n, err
			}
			return len(p), nil
		}
	}
	n, err := fw.ResponseWriter.Write(p)
	fw.written += int64(n)
	return n, err
}

// FaultProfileNames lists the built-in named fault profiles.
func FaultProfileNames() []string {
	return []string{"none", "transient", "lossy", "outage"}
}

// FaultProfile resolves a named fault profile. Profiles model §6.8-style
// LTE conditions: "transient" is sporadic 5xx/truncation with latency
// spikes, "lossy" adds connection resets and mid-body stalls, "outage"
// is a scheduled 12-second (virtual) dead window on top of light errors.
func FaultProfile(name string, seed int64, timeScale float64) (FaultConfig, error) {
	base := FaultConfig{Seed: seed, TimeScale: timeScale, SegmentsOnly: true}
	switch name {
	case "none", "":
		return FaultConfig{TimeScale: timeScale}, nil
	case "transient":
		base.ErrorProb = 0.12
		base.TruncateProb = 0.06
		base.LatencyProb = 0.10
		base.LatencySec = 0.3
		return base, nil
	case "lossy":
		base.ErrorProb = 0.08
		base.ResetProb = 0.08
		base.TruncateProb = 0.08
		base.StallProb = 0.05
		base.StallSec = 1
		return base, nil
	case "outage":
		base.ErrorProb = 0.02
		base.Outages = []OutageWindow{{StartSec: 30, EndSec: 42}}
		return base, nil
	}
	return FaultConfig{}, fmt.Errorf("dash: unknown fault profile %q (have %v)",
		name, FaultProfileNames())
}
