package dash

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cava/internal/chaos/leakcheck"
	"cava/internal/telemetry"
)

// TestProtectionCloseShedsAndDrainsQueue pins the admission stop path that
// the goroleak analyzer audits: a request parked in waitForSlot's poll loop
// must be shed (503 queue_full) when Close runs, Close must block until
// that goroutine has left the queue, and arrivals after Close — new
// sessions and established ones alike — are shed immediately. Runs on the
// real clock so the parked waiter genuinely sleeps between polls; the leak
// check proves Close left no goroutine behind.
func TestProtectionCloseShedsAndDrainsQueue(t *testing.T) {
	defer leakcheck.Check(t)()

	p := Protect(ProtectionConfig{
		MaxSessions:     1,
		QueueTimeoutSec: 30, // far beyond the test: Close, not the timeout, must free the waiter
		SessionIdleSec:  100,
		RetryAfterSec:   2,
	}, okHandler())
	reg := telemetry.NewRegistry()
	p.SetMetrics(reg)
	h := p.Handler()

	// The first session takes the only slot and keeps it (idle window is
	// far longer than the test).
	if w := reqAs(t, h, "alice", "/manifest.json"); w.Code != http.StatusOK {
		t.Fatalf("first session got %d, want 200", w.Code)
	}

	// A second session parks in the admission queue on its own goroutine.
	queued := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodGet, "/manifest.json", nil)
		r.Header.Set(SessionIDHeader, "bob")
		h.ServeHTTP(w, r)
		queued <- w
	}()
	waiting := reg.Gauge("dash_admission_waiting_sessions", "")
	deadline := time.Now().Add(5 * time.Second)
	for waiting.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the second session to queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Close drains the queue: when it returns, the waiter has already left
	// waitForSlot, so its 503 is on the channel (modulo handler epilogue).
	p.Close()
	var w *httptest.ResponseRecorder
	select {
	case w = <-queued:
	case <-time.After(5 * time.Second):
		t.Fatal("queued request did not finish after Close")
	}
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued session got %d after Close, want 503", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q", ra, "2")
	}
	if got := waiting.Value(); got != 0 {
		t.Fatalf("waiting gauge = %v after Close, want 0", got)
	}

	// After Close everything is shed without queueing — a brand-new
	// session and the previously established one alike.
	if w := reqAs(t, h, "carol", "/manifest.json"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("new session after Close got %d, want 503", w.Code)
	}
	if w := reqAs(t, h, "alice", "/seg/0/0"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("established session after Close got %d, want 503", w.Code)
	}

	st := p.AdmissionStats()
	if st.Admitted != 1 || st.ShedQueueFull != 3 {
		t.Fatalf("stats = %+v, want 1 admitted and 3 queue-full sheds", st)
	}

	// Close is idempotent.
	p.Close()
}
