package dash

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/player"
)

// ClientConfig configures a streaming client session.
type ClientConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient performs the requests; nil uses http.DefaultClient.
	HTTPClient *http.Client
	// NewAlgorithm builds the adaptation logic from the client-side video
	// view reconstructed from the manifest.
	NewAlgorithm abr.Factory
	// TimeScale must match the link shaper's scale so buffer dynamics run
	// in the same virtual time as the network (1 for real time).
	TimeScale float64
	// StartupSec and MaxBufferSec mirror the simulator configuration
	// (virtual seconds; defaults 10 and 100).
	StartupSec   float64
	MaxBufferSec float64
	// Predictor estimates bandwidth; nil uses the harmonic mean of the
	// past 5 segments.
	Predictor bandwidth.Predictor
	// MaxChunks truncates the session after this many segments (0 = all),
	// keeping integration tests fast.
	MaxChunks int
}

// Client streams a video over HTTP under an ABR algorithm, reporting the
// same Result structure as the simulator so the metrics pipeline applies
// unchanged.
type Client struct {
	cfg ClientConfig
}

// NewClient validates the config and returns a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("dash: client needs a BaseURL")
	}
	if cfg.NewAlgorithm == nil {
		return nil, fmt.Errorf("dash: client needs an algorithm factory")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.StartupSec <= 0 {
		cfg.StartupSec = 10
	}
	if cfg.MaxBufferSec <= 0 {
		cfg.MaxBufferSec = 100
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.Predictor == nil {
		cfg.Predictor = bandwidth.NewHarmonicMean(bandwidth.DefaultWindow)
	}
	return &Client{cfg: cfg}, nil
}

// FetchManifest retrieves and validates the manifest: the native JSON
// format first, falling back to a DASH MPD (so the client can stream from
// any server that publishes /manifest.mpd with the segment-size
// descriptor).
func (c *Client) FetchManifest(ctx context.Context) (*Manifest, error) {
	m, jsonErr := c.fetchManifestAs(ctx, "/manifest.json", DecodeManifest)
	if jsonErr == nil {
		return m, nil
	}
	m, mpdErr := c.fetchManifestAs(ctx, "/manifest.mpd", ReadMPD)
	if mpdErr == nil {
		return m, nil
	}
	return nil, fmt.Errorf("dash: fetching manifest: %v (MPD fallback: %v)", jsonErr, mpdErr)
}

// fetchManifestAs retrieves one manifest representation.
func (c *Client) fetchManifestAs(ctx context.Context, path string,
	decode func(io.Reader) (*Manifest, error)) (*Manifest, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return decode(resp.Body)
}

// Run streams the video and returns the session result in virtual time.
func (c *Client) Run(ctx context.Context) (*player.Result, error) {
	m, err := c.FetchManifest(ctx)
	if err != nil {
		return nil, err
	}
	view := m.ToVideo()
	algo := c.cfg.NewAlgorithm(view)
	delayer, canDelay := algo.(abr.Delayer)
	pred := c.cfg.Predictor
	pred.Reset()

	n := m.NumSegments()
	if c.cfg.MaxChunks > 0 && c.cfg.MaxChunks < n {
		n = c.cfg.MaxChunks
	}

	res := &player.Result{VideoID: m.VideoID, TraceID: "live", Scheme: algo.Name()}
	scale := c.cfg.TimeScale
	start := time.Now()
	vnow := func() float64 { return time.Since(start).Seconds() * scale }

	buffer := 0.0
	lastV := 0.0
	playing := false
	prevLevel := -1
	lastThroughput := 0.0

	// advance moves the virtual clock to v, draining the buffer while
	// playing and returning stall seconds.
	advance := func(v float64) float64 {
		dt := v - lastV
		lastV = v
		if dt <= 0 || !playing {
			return 0
		}
		if buffer >= dt {
			buffer -= dt
			return 0
		}
		stall := dt - buffer
		buffer = 0
		return stall
	}
	// sleepVirtual idles for d virtual seconds.
	sleepVirtual := func(d float64) error {
		if d <= 0 {
			return nil
		}
		t := time.NewTimer(time.Duration(d / scale * float64(time.Second)))
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}

	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec := player.ChunkRecord{Index: i, BufferBefore: buffer}
		st := abr.State{
			ChunkIndex:     i,
			Now:            vnow(),
			Buffer:         buffer,
			Playing:        playing,
			PrevLevel:      prevLevel,
			Est:            pred.Predict(vnow()),
			LastThroughput: lastThroughput,
		}
		if canDelay {
			if d := delayer.Delay(st); d > 0 {
				rec.WaitSec += d
				if err := sleepVirtual(d); err != nil {
					return nil, err
				}
				stall := advance(vnow())
				res.TotalRebufferSec += stall
				rec.RebufferSec += stall
			}
		}
		if playing && buffer+m.ChunkDur > c.cfg.MaxBufferSec {
			wait := buffer + m.ChunkDur - c.cfg.MaxBufferSec
			rec.WaitSec += wait
			if err := sleepVirtual(wait); err != nil {
				return nil, err
			}
			advance(vnow())
		}

		st.Now, st.Buffer, st.Est = vnow(), buffer, pred.Predict(vnow())
		level := algo.Select(st)
		if level < 0 {
			level = 0
		}
		if level >= len(m.Tracks) {
			level = len(m.Tracks) - 1
		}

		v0 := vnow()
		bytes, err := c.fetchSegment(ctx, level, i)
		if err != nil {
			return nil, err
		}
		v1 := vnow()
		vdur := v1 - v0
		bits := float64(bytes) * 8

		rec.Level = level
		rec.SizeBits = bits
		rec.StartTime = v0
		rec.DownloadSec = vdur
		if vdur > 0 {
			rec.Throughput = bits / vdur
		}
		stall := advance(v1)
		res.TotalRebufferSec += stall
		rec.RebufferSec += stall
		buffer += m.ChunkDur
		rec.BufferAfter = buffer

		pred.ObserveDownload(bits, vdur)
		lastThroughput = rec.Throughput
		prevLevel = level
		res.Chunks = append(res.Chunks, rec)
		res.TotalBits += bits

		if !playing && (buffer >= c.cfg.StartupSec || i == n-1) {
			playing = true
			res.StartupDelay = vnow()
			lastV = res.StartupDelay
		}
	}
	res.SessionSec = vnow()
	return res, nil
}

// fetchSegment downloads one segment fully, returning its byte count.
func (c *Client) fetchSegment(ctx context.Context, track, index int) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+SegmentURL(track, index), nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, fmt.Errorf("dash: fetching segment %d/%d: %w", track, index, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("dash: segment %d/%d status %s", track, index, resp.Status)
	}
	return io.Copy(io.Discard, resp.Body)
}
