package dash

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/player"
	"cava/internal/telemetry"
)

// ClientConfig configures a streaming client session.
type ClientConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient performs the requests; nil uses a client with sane
	// connect/header/overall timeouts (http.DefaultClient never times out,
	// so a hung server would block Run until the caller's context fires).
	HTTPClient *http.Client
	// NewAlgorithm builds the adaptation logic from the client-side video
	// view reconstructed from the manifest.
	NewAlgorithm abr.Factory
	// TimeScale must match the link shaper's scale so buffer dynamics run
	// in the same virtual time as the network (1 for real time).
	TimeScale float64
	// StartupSec and MaxBufferSec mirror the simulator configuration
	// (virtual seconds; defaults 10 and 100).
	StartupSec   float64
	MaxBufferSec float64
	// Predictor estimates bandwidth; nil uses the harmonic mean of the
	// past 5 segments.
	Predictor bandwidth.Predictor
	// MaxChunks truncates the session after this many segments (0 = all),
	// keeping integration tests fast.
	MaxChunks int
	// Resilience, when non-nil, enables the fault-tolerant fetch pipeline
	// (retries, truncation detection, abandonment, skip accounting); see
	// ResilienceConfig. Nil keeps the legacy fail-fast behaviour.
	Resilience *ResilienceConfig
	// Recorder receives the session's decision-trace events under the same
	// schema as player.Simulate (nil disables tracing).
	Recorder telemetry.Recorder
	// SessionID overrides the trace event session identifier; empty uses
	// video|live|scheme. When set it is also stamped on every request as
	// the X-Session-Id header, which server-side admission control and
	// per-session rate limiting key on (see Protection).
	SessionID string
	// Metrics registers the client's fetch-pipeline counters (retries,
	// abandonments, deadline hits, download latency) on the given registry;
	// nil disables at zero cost.
	Metrics *telemetry.Registry
	// Clock supplies the session clock; nil uses the real wall clock.
	// Tests substitute a FakeClock for reproducible virtual time.
	Clock Clock
}

// newDefaultHTTPClient builds the default transport: bounded connect and
// response-header waits plus a generous overall backstop, so a dead or
// hung server surfaces as an error instead of a silent hang.
func newDefaultHTTPClient() *http.Client {
	return &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
			TLSHandshakeTimeout:   10 * time.Second,
			MaxIdleConnsPerHost:   4,
		},
	}
}

// Client streams a video over HTTP under an ABR algorithm, reporting the
// same Result structure as the simulator so the metrics pipeline applies
// unchanged.
type Client struct {
	cfg ClientConfig

	// Fetch-pipeline telemetry handles (nil-safe, resolved once here so
	// the download loop never touches the registry map).
	mRetries    *telemetry.Counter
	mTruncs     *telemetry.Counter
	mAbandons   *telemetry.Counter
	mSkips      *telemetry.Counter
	mDeadlines  *telemetry.Counter
	mRetryAfter *telemetry.Counter
	mBytes      *telemetry.Counter
	mFetchSec   *telemetry.Histogram
}

// NewClient validates the config and returns a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("dash: client needs a BaseURL")
	}
	if cfg.NewAlgorithm == nil {
		return nil, fmt.Errorf("dash: client needs an algorithm factory")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.StartupSec <= 0 {
		cfg.StartupSec = 10
	}
	if cfg.MaxBufferSec <= 0 {
		cfg.MaxBufferSec = 100
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = newDefaultHTTPClient()
	}
	if cfg.Predictor == nil {
		cfg.Predictor = bandwidth.NewHarmonicMean(bandwidth.DefaultWindow)
	}
	reg := cfg.Metrics
	return &Client{
		cfg:         cfg,
		mRetries:    reg.Counter("dash_client_retries_total", "failed segment attempts that were retried"),
		mTruncs:     reg.Counter("dash_client_truncations_total", "segment attempts rejected for a short body"),
		mAbandons:   reg.Counter("dash_client_abandonments_total", "mid-flight downloads abandoned for a lower track"),
		mSkips:      reg.Counter("dash_client_skips_total", "segments skipped after exhausting retries"),
		mDeadlines:  reg.Counter("dash_client_deadline_hits_total", "segment attempts cancelled by the per-attempt deadline"),
		mRetryAfter: reg.Counter("dash_client_retry_after_waits_total", "retry delays floored by a server Retry-After hint"),
		mBytes:      reg.Counter("dash_client_bytes_total", "segment payload bytes delivered"),
		mFetchSec:   reg.Histogram("dash_client_fetch_virtual_seconds", "per-segment fetch time in virtual seconds", nil),
	}, nil
}

// newRequest builds a GET for path with the client's session identity
// stamped (when known), so server-side admission control and rate limiting
// key on sessions rather than connections.
func (c *Client) newRequest(ctx context.Context, path string) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	if c.cfg.SessionID != "" {
		req.Header.Set(SessionIDHeader, c.cfg.SessionID)
	}
	return req, nil
}

// Close releases the client's idle transport connections. Call when the
// client will issue no further requests; tests rely on it to return the
// process to its goroutine baseline.
func (c *Client) Close() {
	c.cfg.HTTPClient.CloseIdleConnections()
}

// FetchManifest retrieves and validates the manifest: the native JSON
// format first, falling back to a DASH MPD (so the client can stream from
// any server that publishes /manifest.mpd with the segment-size
// descriptor).
func (c *Client) FetchManifest(ctx context.Context) (*Manifest, error) {
	m, jsonErr := c.fetchManifestAs(ctx, "/manifest.json", DecodeManifest)
	if jsonErr == nil {
		return m, nil
	}
	m, mpdErr := c.fetchManifestAs(ctx, "/manifest.mpd", ReadMPD)
	if mpdErr == nil {
		return m, nil
	}
	// Wrap (not flatten) the primary error so a Retry-After hint on a shed
	// response survives for the resilient retry loop to honor.
	return nil, fmt.Errorf("dash: fetching manifest: %w (MPD fallback: %v)", jsonErr, mpdErr)
}

// fetchManifestAs retrieves one manifest representation.
func (c *Client) fetchManifestAs(ctx context.Context, path string,
	decode func(io.Reader) (*Manifest, error)) (*Manifest, error) {
	req, err := c.newRequest(ctx, path)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &statusError{
			msg:           fmt.Sprintf("status %s", resp.Status),
			code:          resp.StatusCode,
			retryAfterSec: parseRetryAfterSec(resp.Header),
		}
	}
	return decode(resp.Body)
}

// Run streams the video and returns the session result in virtual time.
// With cfg.Resilience set, transient faults (5xx, resets, truncation, slow
// segments) are absorbed per the policy and surface as resilience counters
// on the Result instead of aborting the session.
//
// The buffer/startup/telemetry state machine is the shared player.StepState
// core — the same engine behind player.Simulate and the discrete-event
// fleet simulator — driven here by measured virtual time: the client
// supplies real fetch outcomes and clock readings, the core does every
// piece of session accounting.
func (c *Client) Run(ctx context.Context) (*player.Result, error) {
	scale := c.cfg.TimeScale
	clk := realClockOr(c.cfg.Clock)
	start := clk.Now()
	vnow := func() float64 { return clk.Now().Sub(start).Seconds() * scale }
	// sleepVirtual idles for d virtual seconds.
	sleepVirtual := func(d float64) error {
		if d <= 0 {
			return nil
		}
		t := time.NewTimer(time.Duration(d / scale * float64(time.Second)))
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}

	var fx *fetcher
	if c.cfg.Resilience != nil {
		fx = newFetcher(c, nil, *c.cfg.Resilience, vnow, sleepVirtual)
	}

	var m *Manifest
	var err error
	if fx != nil {
		m, err = fx.fetchManifestResilient(ctx)
	} else {
		m, err = c.FetchManifest(ctx)
	}
	if err != nil {
		return nil, err
	}
	if fx != nil {
		fx.m = m
	}
	view := m.ToVideo()
	algo := c.cfg.NewAlgorithm(view)

	var s player.StepState
	s.Init(view, m.VideoID, "live", algo, player.Config{
		StartupSec:   c.cfg.StartupSec,
		MaxBufferSec: c.cfg.MaxBufferSec,
		Predictor:    c.cfg.Predictor,
		Recorder:     c.cfg.Recorder,
		SessionID:    c.cfg.SessionID,
	}, true)
	s.LimitChunks(c.cfg.MaxChunks)

	trc := c.cfg.Recorder
	if fx != nil {
		fx.trc = trc
		fx.session = s.Session()
	}

	res := s.Res()
	consecSkips := 0

	for !s.Done() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		i := s.Chunk
		s.SetNow(vnow())
		st := s.BeginChunk()
		if d := s.WantDelay(st); d > 0 {
			s.NoteWait(d)
			if err := sleepVirtual(d); err != nil {
				return nil, err
			}
			s.AddStall(s.ElapseTo(vnow()))
		}
		if wait := s.FullBufferWait(); wait > 0 {
			s.NoteWait(wait)
			if err := sleepVirtual(wait); err != nil {
				return nil, err
			}
			s.ElapseTo(vnow()) // cannot stall: buffer is at its maximum
		}

		s.SetNow(vnow())
		s.Refresh(&st)
		level := s.Decide(st)

		v0 := vnow()
		var sf segmentFetch
		if fx != nil {
			sf, err = fx.fetch(ctx, level, i, s.BufferSec, st.Est, s.Playing)
			if err != nil {
				return nil, err
			}
		} else {
			bytes, err := c.fetchSegment(ctx, level, i)
			if err != nil {
				return nil, err
			}
			sf = segmentFetch{Bytes: bytes, Level: level}
		}
		v1 := vnow()
		vdur := v1 - v0
		bits := float64(sf.Bytes) * 8

		s.Rec.Level = sf.Level
		s.Rec.SizeBits = bits
		s.Rec.StartTime = v0
		s.Rec.DownloadSec = vdur
		s.Rec.Retries = sf.Retries
		s.Rec.Truncations = sf.Truncations
		s.Rec.Abandonments = sf.Abandonments
		s.Rec.WastedBits = sf.WastedBits
		s.Rec.Skipped = sf.Skipped
		if vdur > 0 && !sf.Skipped {
			s.Rec.ThroughputBps = bits / vdur
		}
		s.AddStall(s.ElapseTo(v1))
		res.TotalRetries += sf.Retries
		res.TotalTruncations += sf.Truncations
		res.TotalAbandonments += sf.Abandonments
		res.WastedBits += sf.WastedBits

		c.mBytes.Add(uint64(sf.Bytes))
		if !sf.Skipped {
			c.mFetchSec.Observe(vdur)
		}
		if sf.Skipped {
			// Graceful degradation: the segment is gone; playback jumps
			// the gap, which the viewer experiences as a stall of one
			// segment duration.
			consecSkips++
			if fx != nil && consecSkips > fx.rc.MaxConsecutiveSkips {
				return nil, fmt.Errorf("dash: aborting after %d consecutive skipped segments (segment %d)",
					consecSkips, i)
			}
			s.SkipChunk()
			c.mSkips.Inc()
			if trc != nil {
				trc.Record(telemetry.Event{
					Session: s.Session(), TimeSec: v1, Kind: telemetry.KindSkip,
					Chunk: i, Level: sf.Level, PrevLevel: s.PrevLevel,
					BufferSec: s.BufferSec, RebufferSec: s.Rec.RebufferSec,
					Attempt: sf.Retries, Detail: "retries exhausted",
				})
			}
			// The gap is real time: playback freezes for one segment
			// duration when the playhead reaches the hole. Let it elapse
			// without draining the buffer (playback is frozen, and the
			// stall is already accounted above).
			if err := sleepVirtual(m.ChunkDurSec); err != nil {
				return nil, err
			}
			s.SetNow(vnow())
		} else {
			consecSkips = 0
			s.FinishDownload(st.Est)
		}

		s.MaybeStartup(vnow())
		s.NextChunk()
	}
	s.SetNow(vnow())
	return s.Take(), nil
}

// fetchSegment downloads one segment fully, returning its byte count. The
// bytes read are verified against the declared Content-Length: a truncated
// body must error, not masquerade as a smaller, faster download (which
// would corrupt the throughput estimate feeding the ABR loop).
func (c *Client) fetchSegment(ctx context.Context, track, index int) (int64, error) {
	req, err := c.newRequest(ctx, SegmentURL(track, index))
	if err != nil {
		return 0, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, fmt.Errorf("dash: fetching segment %d/%d: %w", track, index, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("dash: segment %d/%d status %s", track, index, resp.Status)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if declared := resp.ContentLength; declared >= 0 && n != declared {
		return n, fmt.Errorf("dash: segment %d/%d: %w: read %d of %d bytes",
			track, index, errTruncated, n, declared)
	}
	return n, err
}
