// Package dash implements a DASH-like streaming testbed over a real HTTP
// stack: a JSON manifest (an MPD analogue carrying per-segment sizes, the
// information §3.2 notes DASH exposes to clients), a segment server, a
// trace-driven token-bucket link shaper (the `tc` analogue of §6.8), and a
// streaming client player that runs any abr.Algorithm against live HTTP
// downloads.
//
// The testbed reproduces the paper's dash.js experiment (§6.8): real
// manifest fetch, real segment GETs over a shaped TCP connection, and
// application-level throughput estimation — the same code path a browser
// player exercises — while remaining fast enough for CI via virtual-time
// scaling.
package dash

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"cava/internal/video"
)

// Manifest is the client-visible description of a video, mirroring what a
// DASH MPD (plus segment index) provides: the track ladder with declared
// bitrates and every segment's exact size.
type Manifest struct {
	// VideoID identifies the content.
	VideoID string `json:"video_id"`
	// ChunkDurSec is the segment playback duration in seconds.
	ChunkDurSec float64 `json:"chunk_dur"`
	// FPS is the content frame rate.
	FPS float64 `json:"fps"`
	// Tracks lists renditions in ascending bitrate order.
	Tracks []ManifestTrack `json:"tracks"`
}

// ManifestTrack is one rendition in the manifest.
type ManifestTrack struct {
	// ID is the 0-based track index.
	ID int `json:"id"`
	// Resolution is the display name (e.g. "480p").
	Resolution string `json:"resolution"`
	// Width and Height are the coded dimensions.
	Width  int `json:"width"`
	Height int `json:"height"`
	// DeclaredBitrateBps is the manifest-declared average bitrate (bits/s).
	DeclaredBitrateBps float64 `json:"declared_bitrate"`
	// PeakBitrateBps is the highest per-segment bitrate (bits/s).
	PeakBitrateBps float64 `json:"peak_bitrate"`
	// SegmentBits holds each segment's exact size in bits.
	SegmentBits []float64 `json:"segment_bits"`
}

// BuildManifest derives the manifest of a video.
func BuildManifest(v *video.Video) *Manifest {
	m := &Manifest{VideoID: v.ID(), ChunkDurSec: v.ChunkDurSec, FPS: v.FPS}
	for _, t := range v.Tracks {
		m.Tracks = append(m.Tracks, ManifestTrack{
			ID:                 t.ID,
			Resolution:         t.Res.Name,
			Width:              t.Res.Width,
			Height:             t.Res.Height,
			DeclaredBitrateBps: t.DeclaredBitrateBps,
			PeakBitrateBps:     t.PeakBitrateBps,
			SegmentBits:        append([]float64(nil), t.ChunkSizesBits...),
		})
	}
	return m
}

// NumSegments returns the per-track segment count (0 for an empty manifest).
func (m *Manifest) NumSegments() int {
	if len(m.Tracks) == 0 {
		return 0
	}
	return len(m.Tracks[0].SegmentBits)
}

// Validate checks structural sanity of a received manifest.
func (m *Manifest) Validate() error {
	if m.ChunkDurSec <= 0 {
		return fmt.Errorf("dash: manifest %q has non-positive chunk duration", m.VideoID)
	}
	if len(m.Tracks) == 0 {
		return fmt.Errorf("dash: manifest %q has no tracks", m.VideoID)
	}
	n := len(m.Tracks[0].SegmentBits)
	if n == 0 {
		return fmt.Errorf("dash: manifest %q has no segments", m.VideoID)
	}
	for _, t := range m.Tracks {
		if len(t.SegmentBits) != n {
			return fmt.Errorf("dash: manifest %q track %d segment count mismatch", m.VideoID, t.ID)
		}
		for i, s := range t.SegmentBits {
			if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return fmt.Errorf("dash: manifest %q track %d segment %d bad size", m.VideoID, t.ID, i)
			}
		}
	}
	return nil
}

// ToVideo reconstructs the client-side view of the video from the manifest.
// The latent complexity is unknown at the client (as in real DASH), so it
// is zero-filled; adaptation logic must rely on segment sizes only, which
// is precisely the constraint CAVA is designed for. The returned video is
// suitable for constructing algorithms, not for quality evaluation.
func (m *Manifest) ToVideo() *video.Video {
	v := &video.Video{
		Name:        m.VideoID,
		ChunkDurSec: m.ChunkDurSec,
		FPS:         m.FPS,
		Complexity:  make([]float64, m.NumSegments()),
	}
	for _, t := range m.Tracks {
		sizes := append([]float64(nil), t.SegmentBits...)
		avg := 0.0
		for _, s := range sizes {
			avg += s
		}
		avg /= float64(len(sizes)) * m.ChunkDurSec
		v.Tracks = append(v.Tracks, video.Track{
			ID:                 t.ID,
			Res:                video.Resolution{Name: t.Resolution, Width: t.Width, Height: t.Height},
			AvgBitrateBps:      avg,
			PeakBitrateBps:     t.PeakBitrateBps,
			DeclaredBitrateBps: t.DeclaredBitrateBps,
			ChunkSizesBits:     sizes,
		})
	}
	return v
}

// EncodeTo writes the manifest as JSON.
func (m *Manifest) EncodeTo(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// DecodeManifest parses a JSON manifest and validates it.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("dash: decoding manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
