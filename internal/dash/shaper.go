package dash

import (
	"net"
	"sync"
	"time"

	"cava/internal/telemetry"
	"cava/internal/trace"
)

// Shaper is a trace-driven token bucket: it limits bytes to the bandwidth
// the trace prescribes at the current (virtual) time, emulating `tc netem`
// on the testbed link (§6.8).
//
// TimeScale compresses time: with TimeScale = S the shaper advances through
// the trace S times faster and permits S times the byte rate, so a session
// that would take 600 s of trace time completes in 600/S wall seconds with
// identical dynamics. Virtual-time quantities (what the client reports) are
// wall time × S.
type Shaper struct {
	tr    *trace.Trace
	scale float64
	clock Clock

	mu         sync.Mutex
	start      time.Time
	lastRefill time.Time
	tokens     float64 // bytes available

	// Telemetry handles (nil-safe; SetMetrics wires them).
	queueBytes *telemetry.Gauge   // bytes currently waiting for tokens
	waiters    *telemetry.Gauge   // writes currently blocked in Wait
	shapedTot  *telemetry.Counter // bytes admitted through the link
}

// NewShaper creates a shaper over the trace with the given time scale
// (coerced to 1 when non-positive). The clock starts at the first Wait.
func NewShaper(tr *trace.Trace, timeScale float64) *Shaper {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &Shaper{tr: tr, scale: timeScale, clock: RealClock()}
}

// WithClock substitutes the shaper's clock (tests use a FakeClock). Call
// before the first Wait.
func (s *Shaper) WithClock(c Clock) *Shaper {
	s.clock = realClockOr(c)
	return s
}

// TimeScale reports the configured compression factor.
func (s *Shaper) TimeScale() float64 { return s.scale }

// SetMetrics registers the shaper's queue-depth gauges and throughput
// counter on reg (nil disables). Call before serving.
func (s *Shaper) SetMetrics(reg *telemetry.Registry) {
	s.queueBytes = reg.Gauge("dash_shaper_queue_bytes", "bytes waiting for link tokens")
	s.waiters = reg.Gauge("dash_shaper_waiters", "writes currently blocked on the shaper")
	s.shapedTot = reg.Counter("dash_shaper_bytes_total", "bytes admitted through the shaped link")
}

// VirtualNow returns the current position on the trace in virtual seconds.
func (s *Shaper) VirtualNow() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.start.IsZero() {
		return 0
	}
	return s.clock.Now().Sub(s.start).Seconds() * s.scale
}

// Wait blocks until n bytes may pass the link.
func (s *Shaper) Wait(n int) {
	remaining := float64(n)
	s.waiters.Add(1)
	s.queueBytes.Add(remaining)
	defer s.waiters.Add(-1)
	for remaining > 0 {
		s.mu.Lock()
		now := s.clock.Now()
		if s.start.IsZero() {
			s.start = now
			s.lastRefill = now
		}
		elapsed := now.Sub(s.lastRefill).Seconds()
		s.lastRefill = now
		vt := now.Sub(s.start).Seconds() * s.scale
		rateBytes := s.tr.BandwidthAt(vt) * s.scale / 8 // wall bytes/sec
		s.tokens += elapsed * rateBytes
		// Bound the bucket to ~50 ms of line rate plus a small floor so
		// bursts stay trace-faithful at high time scales.
		if burst := rateBytes*0.05 + 16384; s.tokens > burst {
			s.tokens = burst
		}
		take := remaining
		if take > s.tokens {
			take = s.tokens
		}
		s.tokens -= take
		remaining -= take
		s.mu.Unlock()
		if take > 0 {
			s.queueBytes.Add(-take)
			s.shapedTot.Add(uint64(take))
		}
		if remaining > 0 {
			s.clock.Sleep(time.Millisecond)
		}
	}
}

// shapedConn rate-limits writes through the shaper. Reads pass through
// (requests are tiny; the paper's bottleneck is the download direction).
type shapedConn struct {
	net.Conn
	shaper *Shaper
}

// Write implements net.Conn with shaping, pushing data in slices so the
// token bucket granularity stays fine.
func (c *shapedConn) Write(b []byte) (int, error) {
	written := 0
	for written < len(b) {
		n := len(b) - written
		if n > 32<<10 {
			n = 32 << 10
		}
		c.shaper.Wait(n)
		m, err := c.Conn.Write(b[written : written+n])
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ShapedListener wraps a listener so every accepted connection's writes are
// shaped by the same Shaper (one bottleneck link shared by all
// connections, like a last-mile access link).
type ShapedListener struct {
	net.Listener
	shaper *Shaper
}

// NewShapedListener wraps ln with the shaper.
func NewShapedListener(ln net.Listener, shaper *Shaper) *ShapedListener {
	return &ShapedListener{Listener: ln, shaper: shaper}
}

// Accept implements net.Listener.
func (l *ShapedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &shapedConn{Conn: c, shaper: l.shaper}, nil
}
