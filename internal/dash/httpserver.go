package dash

import (
	"net/http"
	"time"
)

// Protective timeouts applied to every testbed http.Server. A server with
// zero timeouts keeps a goroutine and a connection alive for as long as a
// slow (or malicious) peer cares to dribble bytes — exactly the resource
// exhaustion the overload-protection layer exists to prevent, reachable
// from below the middleware. Write timeouts are deliberately absent:
// segment bodies stream through the trace shaper, so a legitimate response
// can take arbitrarily long at low bandwidth; the write side is bounded by
// the client's own deadlines instead.
const (
	// DefaultReadHeaderTimeout bounds how long a connection may take to
	// deliver its request header.
	DefaultReadHeaderTimeout = 10 * time.Second
	// DefaultReadTimeout bounds reading one full request (the testbed only
	// serves tiny GETs, so a slow request body is an attack, not a client).
	DefaultReadTimeout = 30 * time.Second
	// DefaultIdleTimeout reaps keep-alive connections with no request in
	// flight.
	DefaultIdleTimeout = 120 * time.Second
)

// NewHTTPServer returns an http.Server for h with the repository-standard
// protective timeouts set. Every http.Server literal in the testbed, the
// commands and the examples goes through this constructor so none of them
// can regress to the unbounded zero-value configuration.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		IdleTimeout:       DefaultIdleTimeout,
	}
}
