package dash

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// payloadHandler writes n deterministic bytes with a Content-Length header,
// like the segment server does.
func payloadHandler(n int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(n))
		buf := make([]byte, 4<<10)
		for i := range buf {
			buf[i] = byte(i)
		}
		for left := n; left > 0; {
			c := left
			if c > len(buf) {
				c = len(buf)
			}
			if _, err := w.Write(buf[:c]); err != nil {
				return
			}
			left -= c
		}
	})
}

func TestDrawDeterministicAndSaltSensitive(t *testing.T) {
	a := draw(7, "/seg/1/2", 0, 1)
	b := draw(7, "/seg/1/2", 0, 1)
	if a != b {
		t.Fatalf("draw not deterministic: %v vs %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Fatalf("draw out of [0,1): %v", a)
	}
	if draw(7, "/seg/1/2", 0, 2) == a {
		t.Error("different salts should decorrelate")
	}
	if draw(7, "/seg/1/2", 1, 1) == a {
		t.Error("different attempts should decorrelate")
	}
	if draw(8, "/seg/1/2", 0, 1) == a {
		t.Error("different seeds should decorrelate")
	}
}

// TestInjectorScheduleDeterminism replays the same request sequence against
// two injectors with equal seeds and demands identical fault decisions,
// and a different seed must eventually diverge.
func TestInjectorScheduleDeterminism(t *testing.T) {
	sequence := func(seed int64) []int {
		inj := NewFaultInjector(FaultConfig{Seed: seed, ErrorProb: 0.4},
			http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(http.StatusOK)
			}))
		var codes []int
		for i := 0; i < 30; i++ {
			path := fmt.Sprintf("/seg/0/%d", i%10) // 3 attempts per path
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rr := httptest.NewRecorder()
			inj.ServeHTTP(rr, req)
			codes = append(codes, rr.Code)
		}
		return codes
	}
	a, b, c := sequence(11), sequence(11), sequence(12)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
	saw := map[int]bool{}
	for _, code := range a {
		saw[code] = true
	}
	if !saw[http.StatusOK] || !saw[http.StatusServiceUnavailable] {
		t.Errorf("ErrorProb 0.4 over 30 requests should mix 200s and 503s, got %v", a)
	}
}

func TestInjectorOutageWindow(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{
		Outages:   []OutageWindow{{StartSec: 0, EndSec: 0.15}},
		TimeScale: 1,
	}, payloadHandler(64))

	rr := httptest.NewRecorder()
	inj.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/seg/0/0", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("inside outage window got %d, want 503", rr.Code)
	}
	time.Sleep(200 * time.Millisecond)
	rr = httptest.NewRecorder()
	inj.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/seg/0/0", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("after outage window got %d, want 200", rr.Code)
	}
	st := inj.Stats()
	if st.OutageRejections != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v, want 1 outage rejection of 2 requests", st)
	}
}

func TestInjectorOutageWindowBoundaries(t *testing.T) {
	// The window is half-open [StartSec, EndSec): a request at exactly
	// StartSec is refused, a request at exactly EndSec is served. Pinned on
	// a FakeClock so the boundary instants are exact, not sleep-raced.
	fc := NewFakeClock(time.Unix(50, 0))
	inj := NewFaultInjector(FaultConfig{
		Outages:   []OutageWindow{{StartSec: 10, EndSec: 20}},
		TimeScale: 1,
	}, payloadHandler(8)).WithClock(fc)
	get := func() int {
		rr := httptest.NewRecorder()
		inj.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/seg/0/0", nil))
		return rr.Code
	}

	// The first request anchors virtual time zero — before the window.
	if code := get(); code != http.StatusOK {
		t.Fatalf("before window got %d, want 200", code)
	}
	fc.Advance(10 * time.Second) // vt == StartSec: first faulted instant
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("at window start got %d, want 503", code)
	}
	fc.Advance(9999 * time.Millisecond) // vt = 19.999: last instant inside
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("just before window end got %d, want 503", code)
	}
	fc.Advance(time.Millisecond) // vt == EndSec: first clean instant
	if code := get(); code != http.StatusOK {
		t.Fatalf("at window end got %d, want 200", code)
	}
	if st := inj.Stats(); st.OutageRejections != 2 || st.Requests != 4 {
		t.Errorf("stats = %+v, want 2 outage rejections of 4 requests", st)
	}
}

func TestInjectorZeroLengthOutageWindow(t *testing.T) {
	// [x, x) is empty: Validate rejects it as misconfiguration, and even an
	// unvalidated injector must never match it.
	if (&FaultConfig{Outages: []OutageWindow{{StartSec: 2, EndSec: 2}}}).Validate() == nil {
		t.Error("zero-length outage window validated")
	}
	fc := NewFakeClock(time.Unix(50, 0))
	inj := NewFaultInjector(FaultConfig{
		Outages:   []OutageWindow{{StartSec: 2, EndSec: 2}},
		TimeScale: 1,
	}, payloadHandler(8)).WithClock(fc)
	rr := httptest.NewRecorder()
	inj.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/seg/0/0", nil))
	fc.Advance(2 * time.Second) // vt exactly at the empty window's instant
	rr2 := httptest.NewRecorder()
	inj.ServeHTTP(rr2, httptest.NewRequest(http.MethodGet, "/seg/0/0", nil))
	if rr.Code != http.StatusOK || rr2.Code != http.StatusOK {
		t.Errorf("codes = %d, %d; want 200, 200", rr.Code, rr2.Code)
	}
	if st := inj.Stats(); st.OutageRejections != 0 {
		t.Errorf("empty window rejected %d requests", st.OutageRejections)
	}
}

func TestInjectorTruncationShortensBody(t *testing.T) {
	const size = 100 << 10
	srv := httptest.NewServer(NewFaultInjector(FaultConfig{
		TruncateProb: 1, TruncateFrac: 0.5,
	}, payloadHandler(size)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/seg/0/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength != size {
		t.Fatalf("declared length %d, want %d (truncation must keep the declared size)",
			resp.ContentLength, size)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err == nil && n == size {
		t.Fatal("truncated response delivered the full body")
	}
	if n >= size {
		t.Fatalf("read %d bytes of a truncated %d-byte body", n, size)
	}
}

func TestInjectorConnectionReset(t *testing.T) {
	srv := httptest.NewServer(NewFaultInjector(FaultConfig{ResetProb: 1},
		payloadHandler(1<<10)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/seg/0/0")
	if err == nil {
		defer resp.Body.Close()
		if _, cerr := io.Copy(io.Discard, resp.Body); cerr == nil {
			t.Fatal("reset-injected request delivered a full response")
		}
	}
}

func TestInjectorSegmentsOnlyLeavesManifestAlone(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{ErrorProb: 1, SegmentsOnly: true},
		payloadHandler(8))
	rr := httptest.NewRecorder()
	inj.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/manifest.json", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("manifest request faulted with SegmentsOnly: %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	inj.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/seg/0/0", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("segment request not faulted: %d", rr.Code)
	}
}

func TestFaultConfigValidate(t *testing.T) {
	good := FaultConfig{ErrorProb: 0.5, Outages: []OutageWindow{{1, 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if (&FaultConfig{ErrorProb: 1.5}).Validate() == nil {
		t.Error("probability > 1 accepted")
	}
	if (&FaultConfig{ResetProb: -0.1}).Validate() == nil {
		t.Error("negative probability accepted")
	}
	if (&FaultConfig{Outages: []OutageWindow{{5, 3}}}).Validate() == nil {
		t.Error("inverted outage window accepted")
	}
}

func TestFaultProfiles(t *testing.T) {
	for _, name := range FaultProfileNames() {
		cfg, err := FaultProfile(name, 3, 60)
		if err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("profile %s invalid: %v", name, err)
		}
		if name == "none" && cfg.Active() {
			t.Error("profile none injects faults")
		}
		if name != "none" && !cfg.Active() {
			t.Errorf("profile %s injects nothing", name)
		}
	}
	if _, err := FaultProfile("blizzard", 1, 1); err == nil {
		t.Error("unknown profile accepted")
	}
}
