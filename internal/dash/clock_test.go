package dash

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cava/internal/trace"
)

func TestFakeClock(t *testing.T) {
	epoch := time.Unix(1000, 0)
	c := NewFakeClock(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", c.Now(), epoch)
	}
	c.Advance(2 * time.Second)
	c.Sleep(500 * time.Millisecond) // advances, never blocks
	if got, want := c.Now(), epoch.Add(2500*time.Millisecond); !got.Equal(want) {
		t.Fatalf("after advance+sleep: %v, want %v", got, want)
	}
	if realClockOr(nil) == nil || realClockOr(c) != Clock(c) {
		t.Fatal("realClockOr substitution wrong")
	}
}

// TestShaperFakeClockRate drives the shaper on a fake clock: admitting n
// bytes over a constant-bandwidth trace must consume exactly the virtual
// time the trace prescribes, with zero real sleeping.
func TestShaperFakeClockRate(t *testing.T) {
	// 8 Mbps -> 1e6 bytes of link capacity per virtual second.
	tr := trace.Constant("c", 8e6, 60, 1)
	for _, scale := range []float64{1, 10} {
		clk := NewFakeClock(time.Unix(0, 0))
		s := NewShaper(tr, scale).WithClock(clk)
		wallStart := clk.Now()
		s.Wait(100_000) // 0.1 virtual seconds of capacity

		if v := s.VirtualNow(); math.Abs(v-0.1) > 0.005 {
			t.Errorf("scale %.0f: virtual completion %.4fs, want ~0.1s", scale, v)
		}
		// Wall time compresses by the scale; virtual dynamics do not.
		wall := clk.Now().Sub(wallStart).Seconds()
		if want := 0.1 / scale; math.Abs(wall-want) > 0.005 {
			t.Errorf("scale %.0f: wall time %.4fs, want ~%.4fs", scale, wall, want)
		}
	}
}

// TestShaperFakeClockDeterministic pins byte-identical virtual timing across
// runs: two shapers over the same trace and clock epoch agree exactly.
func TestShaperFakeClockDeterministic(t *testing.T) {
	tr := trace.GenLTE(3)
	run := func() []float64 {
		clk := NewFakeClock(time.Unix(42, 0))
		s := NewShaper(tr, 5).WithClock(clk)
		var marks []float64
		for i := 0; i < 4; i++ {
			s.Wait(250_000)
			marks = append(marks, s.VirtualNow())
		}
		return marks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wait %d: virtual times differ (%v vs %v)", i, a[i], b[i])
		}
	}
}

// TestFaultInjectorLatencyFakeClock verifies the injected latency spike is
// taken from the injector's clock (and scaled), not the wall clock: on a
// fake clock the handler returns immediately having advanced virtual time.
func TestFaultInjectorLatencyFakeClock(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	cfg := FaultConfig{Seed: 1, LatencyProb: 1, LatencySec: 3, TimeScale: 10}
	clk := NewFakeClock(time.Unix(0, 0))
	fi := NewFaultInjector(cfg, inner).WithClock(clk)

	wallStart := time.Now()
	rec := httptest.NewRecorder()
	fi.ServeHTTP(rec, httptest.NewRequest("GET", "/seg/0/0", nil))

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	// 3 virtual seconds at scale 10 = 0.3 s advanced on the fake clock.
	if got := clk.Now().Sub(time.Unix(0, 0)); got != 300*time.Millisecond {
		t.Errorf("fake clock advanced %v, want 300ms", got)
	}
	if real := time.Since(wallStart); real > time.Second {
		t.Errorf("handler blocked %v of real time on a fake clock", real)
	}
}

// TestFaultWriterStallFakeClock pins the mid-body stall to the injected
// clock as well.
func TestFaultWriterStallFakeClock(t *testing.T) {
	body := make([]byte, 1000)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "1000")
		w.Write(body[:500])
		w.Write(body[500:])
	})
	cfg := FaultConfig{Seed: 7, StallProb: 1, StallSec: 2}
	clk := NewFakeClock(time.Unix(0, 0))
	fi := NewFaultInjector(cfg, inner).WithClock(clk)

	rec := httptest.NewRecorder()
	fi.ServeHTTP(rec, httptest.NewRequest("GET", "/seg/0/1", nil))
	if rec.Body.Len() != 1000 {
		t.Fatalf("body %d bytes, want 1000 (stall is not truncation)", rec.Body.Len())
	}
	if got := clk.Now().Sub(time.Unix(0, 0)); got != 2*time.Second {
		t.Errorf("fake clock advanced %v, want 2s", got)
	}
}
