package dash

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"cava/internal/core"
	"cava/internal/player"
	"cava/internal/telemetry"
	"cava/internal/trace"
)

// traceKinds returns the set of event kinds present.
func traceKinds(events []telemetry.Event) map[telemetry.Kind]bool {
	out := map[telemetry.Kind]bool{}
	for _, ev := range events {
		out[ev.Kind] = true
	}
	return out
}

// populatedFields returns the sorted union of JSON field names the events of
// one kind actually carry (omitempty hides zero-valued optionals).
func populatedFields(t *testing.T, events []telemetry.Event, kind telemetry.Kind) []string {
	t.Helper()
	set := map[string]bool{}
	for _, ev := range events {
		if ev.Kind != kind {
			continue
		}
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		for k := range m {
			set[k] = true
		}
	}
	fields := make([]string, 0, len(set))
	for k := range set {
		fields = append(fields, k)
	}
	sort.Strings(fields)
	return fields
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTraceSchemaParity runs the same video/scheme through the pure
// simulator and the HTTP testbed, each with a trace recorder, and checks the
// two decision traces follow one schema: same kinds, same per-kind fields
// for the ABR-decision events, same session-id shape. This is the guarantee
// that lets one toolchain (abrexport trace) render either.
func TestTraceSchemaParity(t *testing.T) {
	if testing.Short() {
		t.Skip("live streaming test")
	}
	v := testVideo()
	const chunks = 40

	// Simulated session (full video; simulation is cheap).
	simRing := telemetry.NewRing(telemetry.DefaultRingCapacity)
	cfg := player.DefaultConfig()
	cfg.Recorder = simRing
	if _, err := player.Simulate(v, trace.Constant("c", 3e6, 1200, 1), core.Factory()(v), cfg); err != nil {
		t.Fatal(err)
	}
	simEvents := simRing.Events()

	// Testbed session over a real HTTP server (unshaped loopback).
	liveRing := telemetry.NewRing(telemetry.DefaultRingCapacity)
	srv := httptest.NewServer(NewServer(v).Handler())
	defer srv.Close()
	client, err := NewClient(ClientConfig{
		BaseURL:      srv.URL,
		NewAlgorithm: core.Factory(),
		TimeScale:    120,
		MaxChunks:    chunks,
		Recorder:     liveRing,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := client.Run(ctx); err != nil {
		t.Fatal(err)
	}
	liveEvents := liveRing.Events()

	if len(simEvents) == 0 || len(liveEvents) == 0 {
		t.Fatalf("empty trace: sim %d events, testbed %d events", len(simEvents), len(liveEvents))
	}

	// Both produce the core ABR kinds.
	simKinds, liveKinds := traceKinds(simEvents), traceKinds(liveEvents)
	for _, k := range []telemetry.Kind{telemetry.KindDecide, telemetry.KindDownload, telemetry.KindStartup} {
		if !simKinds[k] {
			t.Errorf("simulator trace missing kind %q", k)
		}
		if !liveKinds[k] {
			t.Errorf("testbed trace missing kind %q", k)
		}
	}

	// The decision events — the ones CAVA itself records — must carry the
	// same fields in both worlds, controller internals included.
	simDecide := populatedFields(t, simEvents, telemetry.KindDecide)
	liveDecide := populatedFields(t, liveEvents, telemetry.KindDecide)
	if !equalStrings(simDecide, liveDecide) {
		t.Errorf("decide schema diverged:\n  sim:     %v\n  testbed: %v", simDecide, liveDecide)
	}
	for _, want := range []string{"buffer_sec", "target_sec", "u", "p_term", "i_term", "alpha", "scores"} {
		found := false
		for _, f := range simDecide {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("decide events missing %q: %v", want, simDecide)
		}
	}

	// Download events in both worlds must carry the transfer accounting.
	for name, events := range map[string][]telemetry.Event{"sim": simEvents, "testbed": liveEvents} {
		for _, ev := range events {
			if ev.Kind != telemetry.KindDownload {
				continue
			}
			if ev.SizeBits <= 0 || ev.DownloadSec < 0 || ev.ThroughputBps <= 0 {
				t.Fatalf("%s download event lacks accounting: %+v", name, ev)
			}
		}
	}

	// Regression: the download event used to be recorded after prevLevel had
	// advanced to the current chunk's level, so PrevLevel always equaled
	// Level. In both worlds the downloads must chain: the first carries
	// PrevLevel -1, each later one the previous download's Level.
	for name, events := range map[string][]telemetry.Event{"sim": simEvents, "testbed": liveEvents} {
		prev, n := -1, 0
		for _, ev := range events {
			if ev.Kind != telemetry.KindDownload {
				continue
			}
			if ev.PrevLevel != prev {
				t.Fatalf("%s download %d: PrevLevel = %d, want %d (previous download's Level)",
					name, n, ev.PrevLevel, prev)
			}
			prev = ev.Level
			n++
		}
		if n == 0 {
			t.Fatalf("%s trace has no download events", name)
		}
	}

	// Session IDs follow the shared video|trace|scheme shape, and every
	// event within a trace carries the same session and ascending seq.
	for name, events := range map[string][]telemetry.Event{"sim": simEvents, "testbed": liveEvents} {
		session := events[0].Session
		if session == "" {
			t.Fatalf("%s events have no session id", name)
		}
		for i, ev := range events {
			if ev.Session != session {
				t.Fatalf("%s event %d switched session: %q vs %q", name, i, ev.Session, session)
			}
			if i > 0 && ev.Seq <= events[i-1].Seq {
				t.Fatalf("%s seq not ascending at %d", name, i)
			}
		}
	}

	// A testbed trace must survive the JSONL round trip unchanged, so the
	// -trace-out file feeds abrexport trace losslessly.
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, liveEvents); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(liveEvents) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(liveEvents))
	}
	for i := range back {
		if !reflect.DeepEqual(back[i], liveEvents[i]) {
			t.Fatalf("event %d changed in round trip:\n  %+v\n  %+v", i, liveEvents[i], back[i])
		}
	}
}
