package dash

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"cava/internal/telemetry"
)

// get issues a GET and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestServerSegmentOutOfRange(t *testing.T) {
	v := testVideo()
	srv := httptest.NewServer(NewServer(v).Handler())
	defer srv.Close()

	for _, path := range []string{
		SegmentURL(v.NumTracks(), 0), // track one past the end
		SegmentURL(0, v.NumChunks()), // index one past the end
		SegmentURL(-1, 0),            // negative track
		SegmentURL(0, -1),            // negative index
		SegmentURL(1000, 1000),       // far out of range
	} {
		if code, _ := get(t, srv.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
	// Boundary values must still work.
	if code, _ := get(t, srv.URL+SegmentURL(v.NumTracks()-1, v.NumChunks()-1)); code != http.StatusOK {
		t.Errorf("last segment = %d, want 200", code)
	}
}

func TestServerSegmentMalformedPaths(t *testing.T) {
	srv := httptest.NewServer(NewServer(testVideo()).Handler())
	defer srv.Close()

	for _, path := range []string{
		"/seg/",      // no components
		"/seg/0",     // missing index
		"/seg/0/1/2", // too many components
		"/seg/x/0",   // non-numeric track
		"/seg/0/y",   // non-numeric index
		"/seg/1.5/0", // float track
		"/seg//0",    // empty track
	} {
		code, _ := get(t, srv.URL+path)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, code)
		}
	}
}

func TestServerUnknownMediaPlaylist(t *testing.T) {
	v := testVideo()
	srv := httptest.NewServer(NewServer(v).Handler())
	defer srv.Close()

	for _, path := range []string{
		"/track_99.m3u8", // track out of range
		"/track_-1.m3u8", // negative track
		"/track_x.m3u8",  // non-numeric track
		"/track_.m3u8",   // empty track
		"/nope.m3u8",     // not a track playlist at all
		"/other",         // plain unknown path
	} {
		if code, _ := get(t, srv.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
	if code, _ := get(t, srv.URL+"/track_0.m3u8"); code != http.StatusOK {
		t.Errorf("valid media playlist = %d, want 200", code)
	}
}

// TestServerMetricsScrape wires a registry into the server, exercises the
// endpoints, and checks the /metrics exposition reflects the traffic.
func TestServerMetricsScrape(t *testing.T) {
	v := testVideo()
	s := NewServer(v)
	reg := telemetry.NewRegistry()
	s.SetMetrics(reg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	msrv := httptest.NewServer(reg.Handler())
	defer msrv.Close()

	get(t, srv.URL+"/manifest.json")
	_, body := get(t, srv.URL+SegmentURL(0, 0))
	get(t, srv.URL+SegmentURL(0, v.NumChunks())) // 404
	get(t, srv.URL+"/seg/x/0")                   // 400

	resp, err := http.Get(msrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("scrape Content-Type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)

	for _, want := range []string{
		"# TYPE dash_server_requests_total counter",
		"dash_server_requests_total 4",
		"dash_server_segment_requests_total 1",
		"dash_server_not_found_total 1",
		"dash_server_bad_request_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
	// Payload bytes must match the one delivered segment exactly.
	if !strings.Contains(text, "dash_server_segment_bytes_total "+strconv.Itoa(len(body))) {
		t.Errorf("scrape missing dash_server_segment_bytes_total %d:\n%s", len(body), text)
	}
}
