// Package cache is the repository's content-addressed artifact cache and
// sweep memoization layer. Every figure/table reproduction derives the same
// artifacts from the same deterministic inputs — generated videos, quality
// tables, scene classifications, whole sim sweeps — so the cache
// fingerprints those inputs (fingerprint.go) and memoizes the outputs
// behind a concurrent get-or-compute API with singleflight semantics:
// parallel workers asking for the same key block on one computation instead
// of duplicating it.
//
// Two storage layers:
//
//   - In-memory, always on: a map from key to value, scoped to the Cache
//     instance (Shared is the process-wide default).
//   - On disk, optional (WithDir): values that pass through the JSON layer
//     (GetOrComputeJSON — sim sweep results) are persisted as
//     <dir>/<kind>/<fingerprint>.json, so repeated abrexport/abreval
//     invocations across processes skip completed sweeps.
//
// The disk layer is hardened against partial and corrupted files: every
// entry is framed with a FNV-64a checksum header, written to a temp file
// and renamed into place. A read that fails the checksum (bit rot, torn
// write by a pre-rename crash, manual tampering) quarantines the file as
// <name>.corrupt and falls back to recomputation, so a damaged entry can
// degrade one request's latency but never poison a memoized figure.
//
// Telemetry: cache_hits_total{kind}, cache_misses_total{kind},
// cache_corrupt_entries_total{kind} and cache_bytes_total (serialized
// bytes moved through the JSON layer) when a registry is attached with
// WithMetrics; Stats exposes the same counts programmatically for tests.
// A nil *Cache disables caching: every helper computes directly.
package cache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"cava/internal/telemetry"
)

// Cache is a concurrent get-or-compute store. Use New; the zero value is
// not ready. A nil *Cache is a valid disabled cache.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	stats   map[string]*Stats
	dir     string
	reg     *telemetry.Registry
	bytes   *telemetry.Counter
}

// entry is one in-flight or completed computation.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// Stats counts one kind's cache outcomes. Hits are requests served without
// running the computation (in-memory, disk, or by waiting on another
// caller's in-flight computation); Misses are actual computations; Corrupt
// counts disk entries that failed checksum verification and were
// quarantined (each such request also recomputes, so it counts a miss too).
type Stats struct {
	Hits, Misses, Corrupt uint64
}

// Option configures a Cache.
type Option func(*Cache)

// WithDir enables the on-disk JSON layer rooted at dir (created lazily).
func WithDir(dir string) Option {
	return func(c *Cache) { c.dir = dir }
}

// WithMetrics mirrors the hit/miss/bytes counters into a telemetry
// registry as cache_hits_total{kind=...}, cache_misses_total{kind=...} and
// cache_bytes_total.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(c *Cache) {
		c.reg = reg
		c.bytes = reg.Counter("cache_bytes_total", "serialized bytes moved through the cache JSON layer")
	}
}

// New returns an empty cache.
func New(opts ...Option) *Cache {
	c := &Cache{
		entries: make(map[string]*entry),
		stats:   make(map[string]*Stats),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Shared is the process-wide default cache (in-memory only). Experiment
// runners fall back to it when no explicit cache is configured, so one
// abreval/test process never regenerates an artifact or re-executes an
// identical sweep.
var Shared = New()

// Stats returns a snapshot of one kind's counters (zero for unknown kinds
// and on a nil cache).
func (c *Cache) Stats(kind string) Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.stats[kind]; s != nil {
		return *s
	}
	return Stats{}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// count records one outcome for a kind, mirroring to the registry when
// attached. Callers hold no lock.
func (c *Cache) count(kind string, hit bool) {
	c.mu.Lock()
	s := c.stats[kind]
	if s == nil {
		s = &Stats{}
		c.stats[kind] = s
	}
	if hit {
		s.Hits++
	} else {
		s.Misses++
	}
	reg := c.reg
	c.mu.Unlock()
	if reg != nil {
		if hit {
			reg.Counter("cache_hits_total", "cache requests served without computing",
				telemetry.Label{Name: "kind", Value: kind}).Inc()
		} else {
			reg.Counter("cache_misses_total", "cache requests that ran the computation",
				telemetry.Label{Name: "kind", Value: kind}).Inc()
		}
	}
}

// GetOrCompute returns the value stored under kind/key, computing and
// storing it on first request. Concurrent requests for the same key share
// one computation (singleflight): exactly one caller runs compute, the rest
// block until it finishes and receive the same value. A compute error is
// returned to every waiter and the entry is dropped so a later request
// retries. A nil cache calls compute directly.
func (c *Cache) GetOrCompute(kind, key string, compute func() (any, error)) (any, error) {
	if c == nil {
		return compute()
	}
	full := kind + "\x00" + key
	c.mu.Lock()
	if e, ok := c.entries[full]; ok {
		c.mu.Unlock()
		<-e.done
		if e.err == nil {
			c.count(kind, true)
		}
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[full] = e
	c.mu.Unlock()

	e.val, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, full)
		c.mu.Unlock()
	} else {
		c.count(kind, false)
	}
	close(e.done)
	return e.val, e.err
}

// GetOrComputeJSON is GetOrCompute for JSON-serializable values, adding the
// on-disk layer: a first-in-process request probes <dir>/<kind>/<key>.json
// before computing (a disk load counts as a hit), and a fresh computation
// is persisted for future processes. Disk failures degrade to compute-only;
// they never fail the request.
func GetOrComputeJSON[T any](c *Cache, kind, key string, compute func() (T, error)) (T, error) {
	if c == nil {
		return compute()
	}
	v, err := c.GetOrCompute(kind, key, func() (any, error) {
		if data, ok := c.readDisk(kind, key); ok {
			var out T
			if jerr := json.Unmarshal(data, &out); jerr == nil {
				c.addBytes(len(data))
				return diskLoaded[T]{out}, nil
			}
			// A corrupt or stale-format file is ignored and overwritten.
		}
		out, err := compute()
		if err != nil {
			return nil, err
		}
		if data, jerr := json.Marshal(out); jerr == nil {
			c.addBytes(len(data))
			c.writeDisk(kind, key, data)
		}
		return out, nil
	})
	if err != nil {
		var zero T
		return zero, err
	}
	// A disk load was a miss by GetOrCompute's accounting (the closure ran);
	// reclassify it as a hit — the computation itself was skipped.
	if dl, ok := v.(diskLoaded[T]); ok {
		c.reclassify(kind)
		return dl.val, nil
	}
	return v.(T), nil
}

// diskLoaded marks a value that came from the disk layer rather than a
// fresh computation, so the hit/miss accounting can tell them apart.
type diskLoaded[T any] struct{ val T }

// reclassify converts the most recent miss of a kind into a hit.
func (c *Cache) reclassify(kind string) {
	c.mu.Lock()
	if s := c.stats[kind]; s != nil && s.Misses > 0 {
		s.Misses--
		s.Hits++
	}
	reg := c.reg
	c.mu.Unlock()
	if reg != nil {
		reg.Counter("cache_hits_total", "cache requests served without computing",
			telemetry.Label{Name: "kind", Value: kind}).Inc()
		// Registry counters are monotonic; expose the correction as a
		// dedicated counter instead of decrementing the miss count.
		reg.Counter("cache_disk_loads_total", "misses satisfied by the on-disk layer",
			telemetry.Label{Name: "kind", Value: kind}).Inc()
	}
}

func (c *Cache) addBytes(n int) {
	if c.bytes != nil {
		c.bytes.Add(uint64(n))
	}
}

// diskPath maps kind/key to a file. Keys are hex fingerprints, so they are
// safe path components; kind is a short identifier chosen by callers.
func (c *Cache) diskPath(kind, key string) string {
	return filepath.Join(c.dir, kind, key+".json")
}

// diskMagic opens every checksummed disk entry. The full header is one
// line — "abrcache1 <fnv64a hex16> <payload byte count>\n" — followed by
// the JSON payload the checksum covers. Files without the magic are
// pre-checksum legacy entries: not corrupt, just unverifiable, so they
// read as misses and get rewritten in the framed format.
const diskMagic = "abrcache1 "

// frameDisk wraps a payload in the checksum header.
func frameDisk(payload []byte) []byte {
	h := fnv.New64a()
	h.Write(payload)
	header := fmt.Sprintf("%s%016x %d\n", diskMagic, h.Sum64(), len(payload))
	return append([]byte(header), payload...)
}

// unframeDisk verifies a framed entry and returns its payload. legacy
// reports a file predating the checksum format; err reports a framed file
// whose header or checksum does not match its contents.
func unframeDisk(raw []byte) (payload []byte, legacy bool, err error) {
	if !bytes.HasPrefix(raw, []byte(diskMagic)) {
		return nil, true, nil
	}
	rest := raw[len(diskMagic):]
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, false, fmt.Errorf("truncated header")
	}
	var sum uint64
	var count int
	if _, err := fmt.Sscanf(string(rest[:nl]), "%x %d", &sum, &count); err != nil {
		return nil, false, fmt.Errorf("malformed header %q", rest[:nl])
	}
	payload = rest[nl+1:]
	if len(payload) != count {
		return nil, false, fmt.Errorf("payload is %d bytes, header says %d (torn write)", len(payload), count)
	}
	h := fnv.New64a()
	h.Write(payload)
	if got := h.Sum64(); got != sum {
		return nil, false, fmt.Errorf("checksum %016x, header says %016x (bit rot)", got, sum)
	}
	return payload, false, nil
}

// readDisk loads and verifies one entry. A corrupt file — framed but
// failing its length or checksum — is quarantined (renamed to
// <name>.corrupt), counted, and reported as a miss so the caller
// recomputes; it is never returned as data.
func (c *Cache) readDisk(kind, key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.diskPath(kind, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	payload, legacy, err := unframeDisk(raw)
	if err != nil {
		c.quarantineDisk(kind, path)
		return nil, false
	}
	if legacy {
		return nil, false
	}
	return payload, true
}

// quarantineDisk moves a corrupt entry aside so the recomputed value can
// take its place while the damaged bytes stay inspectable, and counts the
// event (Stats.Corrupt, cache_corrupt_entries_total{kind}).
func (c *Cache) quarantineDisk(kind, path string) {
	_ = os.Rename(path, path+".corrupt") // best-effort: losing the evidence must not fail the request
	c.mu.Lock()
	s := c.stats[kind]
	if s == nil {
		s = &Stats{}
		c.stats[kind] = s
	}
	s.Corrupt++
	reg := c.reg
	c.mu.Unlock()
	if reg != nil {
		reg.Counter("cache_corrupt_entries_total", "disk cache entries that failed checksum verification and were quarantined",
			telemetry.Label{Name: "kind", Value: kind}).Inc()
	}
}

// writeDisk persists one checksummed entry via a temp-file write, sync and
// rename, so concurrent processes never observe a torn file and a crash
// mid-write leaves the previous entry (or no entry) in place.
func (c *Cache) writeDisk(kind, key string, data []byte) {
	if c.dir == "" {
		return
	}
	path := c.diskPath(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(frameDisk(data))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		_ = os.Remove(name) // best-effort cleanup of the temp file
		return
	}
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name) // best-effort cleanup of the temp file
	}
}

// String summarizes the cache state for logs.
func (c *Cache) String() string {
	if c == nil {
		return "cache(disabled)"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var hits, misses uint64
	for _, s := range c.stats {
		hits += s.Hits
		misses += s.Misses
	}
	return fmt.Sprintf("cache(%d entries, %d hits, %d misses)", len(c.entries), hits, misses)
}
