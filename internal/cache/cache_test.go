package cache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cava/internal/quality"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

func TestGetOrComputeMemoizes(t *testing.T) {
	c := New()
	calls := 0
	get := func() (any, error) {
		return c.GetOrCompute("k", "key", func() (any, error) {
			calls++
			return 42, nil
		})
	}
	for i := 0; i < 3; i++ {
		v, err := get()
		if err != nil || v.(int) != 42 {
			t.Fatalf("get %d: %v, %v", i, v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if s := c.Stats("k"); s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits 1 miss", s)
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	c := New()
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrCompute("sf", "key", func() (any, error) {
				calls.Add(1)
				<-release // hold every concurrent caller at the door
				return "shared", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", got)
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	s := c.Stats("sf")
	if s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("stats = %+v, want 1 miss %d hits", s, n-1)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New()
	calls := 0
	boom := errors.New("boom")
	get := func(fail bool) (any, error) {
		return c.GetOrCompute("e", "key", func() (any, error) {
			calls++
			if fail {
				return nil, boom
			}
			return "ok", nil
		})
	}
	if _, err := get(true); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// The failed entry must not poison the key: the next call retries.
	v, err := get(false)
	if err != nil || v != "ok" {
		t.Fatalf("retry got %v, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	if s := c.Stats("e"); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("stats = %+v: errors must not count as misses or hits", s)
	}
}

func TestGetOrComputeJSONDiskRoundTrip(t *testing.T) {
	type payload struct {
		Name string    `json:"name"`
		Xs   []float64 `json:"xs"`
	}
	dir := t.TempDir()
	want := payload{Name: "p", Xs: []float64{1.5, 0.1 + 0.2, -3}}

	cold := New(WithDir(dir))
	got, err := GetOrComputeJSON(cold, "sweep", "abc123", func() (payload, error) { return want, nil })
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("cold: %+v, %v", got, err)
	}
	if s := cold.Stats("sweep"); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("cold stats = %+v", s)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "sweep", "abc123.json")); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same dir (a new process) loads from disk:
	// deep-equal value, no compute, and the load counts as a hit.
	warm := New(WithDir(dir))
	got2, err := GetOrComputeJSON(warm, "sweep", "abc123", func() (payload, error) {
		t.Fatal("compute ran despite disk entry")
		return payload{}, nil
	})
	if err != nil || !reflect.DeepEqual(got2, want) {
		t.Fatalf("warm: %+v, %v", got2, err)
	}
	if s := warm.Stats("sweep"); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("warm stats = %+v, want 1 hit 0 misses", s)
	}
}

func TestCacheTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(WithMetrics(reg))
	for i := 0; i < 3; i++ {
		GetOrComputeJSON(c, "sim", "k", func() (int, error) { return 7, nil })
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`cache_hits_total{kind="sim"} 2`,
		`cache_misses_total{kind="sim"} 1`,
		`cache_bytes_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestGenerateKeyedByFullConfig(t *testing.T) {
	c := New()
	// Cap4x ED and plain FFmpeg ED share a video ID but differ in cap;
	// the cache must treat them as distinct artifacts.
	ed := video.FFmpegConfig(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
	cap4 := video.Cap4xConfig()
	if ed.ID() != cap4.ID() {
		t.Fatalf("precondition: IDs differ (%s vs %s)", ed.ID(), cap4.ID())
	}
	if GenConfigKey(ed) == GenConfigKey(cap4) {
		t.Fatal("GenConfigKey collides for configs differing only in cap")
	}
	v1, v2 := c.Generate(ed), c.Generate(cap4)
	if v1 == v2 {
		t.Fatal("cache conflated the 2x and 4x encodes")
	}
	if v1.Cap != 2.0 || v2.Cap != 4.0 {
		t.Fatalf("caps = %v, %v", v1.Cap, v2.Cap)
	}
	if c.Generate(ed) != v1 {
		t.Fatal("repeated Generate did not return the memoized video")
	}
}

func TestArtifactHelpersNilSafe(t *testing.T) {
	var c *Cache
	v := c.Generate(video.YouTubeConfig(video.Title{Name: "ED", Genre: video.SciFi}))
	if v == nil {
		t.Fatal("nil cache Generate returned nil")
	}
	if qt := c.QualityTable(v, quality.VMAFPhone); qt == nil {
		t.Fatal("nil cache QualityTable returned nil")
	}
	if cats := c.Categories(v); len(cats) != v.NumChunks() {
		t.Fatal("nil cache Categories wrong length")
	}
	if got := c.Stats("video"); got != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", got)
	}
	out, err := GetOrComputeJSON[int](c, "k", "key", func() (int, error) { return 9, nil })
	if err != nil || out != 9 {
		t.Fatalf("nil cache GetOrComputeJSON: %v, %v", out, err)
	}
}

func TestVideoByID(t *testing.T) {
	c := New()
	v := c.VideoByID("ED-ffmpeg-h264")
	if v == nil || v.ID() != "ED-ffmpeg-h264" {
		t.Fatalf("VideoByID = %v", v)
	}
	if c.VideoByID("ED-ffmpeg-h264") != v {
		t.Fatal("VideoByID did not memoize")
	}
	if c.VideoByID("nope") != nil {
		t.Fatal("unknown ID should return nil")
	}
	// Regression: the error-returning variant must report unknown IDs as
	// errors, not crash (the former MustVideoByID panicked here).
	if _, err := c.VideoByIDErr("nope"); err == nil {
		t.Fatal("VideoByIDErr accepted an unknown ID")
	}
	if ev, err := c.VideoByIDErr("ED-ffmpeg-h264"); err != nil || ev != v {
		t.Fatalf("VideoByIDErr = %v, %v", ev, err)
	}
	// Matches the package-level lookup.
	if want := video.ByID("ED-ffmpeg-h264"); !reflect.DeepEqual(v, want) {
		t.Fatal("cached video differs from video.ByID")
	}
}

func TestFingerprintsContentSensitive(t *testing.T) {
	v1 := video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
	v2 := video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
	if VideoFingerprint(v1) != VideoFingerprint(v2) {
		t.Fatal("identical content at different addresses must fingerprint equally")
	}
	v3 := video.Cap4xED()
	if VideoFingerprint(v1) == VideoFingerprint(v3) {
		t.Fatal("different content must fingerprint differently")
	}
	t1, t2 := trace.Constant("c", 3e6, 100, 1), trace.Constant("c", 3e6, 100, 1)
	if TraceFingerprint(t1) != TraceFingerprint(t2) {
		t.Fatal("identical traces must fingerprint equally")
	}
	t3 := trace.Constant("c", 4e6, 100, 1)
	if TraceFingerprint(t1) == TraceFingerprint(t3) {
		t.Fatal("different traces must fingerprint differently")
	}
}

func TestHasherLengthPrefixing(t *testing.T) {
	// "ab"+"c" vs "a"+"bc" must not collide (length prefixes delimit).
	if NewHasher().Str("ab").Str("c").Sum() == NewHasher().Str("a").Str("bc").Sum() {
		t.Fatal("string concatenation collision")
	}
	if NewHasher().F64s([]float64{1, 2}).F64s(nil).Sum() ==
		NewHasher().F64s([]float64{1}).F64s([]float64{2}).Sum() {
		t.Fatal("float slice boundary collision")
	}
}

func TestStringSummary(t *testing.T) {
	c := New()
	c.GetOrCompute("k", "a", func() (any, error) { return 1, nil })
	c.GetOrCompute("k", "a", func() (any, error) { return 1, nil })
	got := fmt.Sprint(c)
	if !strings.Contains(got, "1 entries") || !strings.Contains(got, "1 hits") || !strings.Contains(got, "1 misses") {
		t.Fatalf("String() = %q", got)
	}
	var nilc *Cache
	if fmt.Sprint(nilc) != "cache(disabled)" {
		t.Fatalf("nil String() = %q", fmt.Sprint(nilc))
	}
}

// TestCacheDiskCorruptionQuarantine pins the hardened disk layer: a framed
// entry whose payload no longer matches its checksum is detected on read,
// quarantined as <name>.corrupt, counted (Stats.Corrupt and
// cache_corrupt_entries_total), and transparently recomputed — the damaged
// bytes never reach a caller.
func TestCacheDiskCorruptionQuarantine(t *testing.T) {
	type payload struct {
		N int `json:"n"`
	}
	dir := t.TempDir()
	seed := New(WithDir(dir))
	if _, err := GetOrComputeJSON(seed, "sweep", "deadbeef", func() (payload, error) {
		return payload{N: 7}, nil
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sweep", "deadbeef.json")

	// Flip one payload byte under the intact header — classic bit rot.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rot := append([]byte(nil), raw...)
	rot[len(rot)-2] ^= 0x01
	if err := os.WriteFile(path, rot, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	fresh := New(WithDir(dir), WithMetrics(reg))
	recomputed := 0
	got, err := GetOrComputeJSON(fresh, "sweep", "deadbeef", func() (payload, error) {
		recomputed++
		return payload{N: 7}, nil
	})
	if err != nil || got.N != 7 {
		t.Fatalf("read after corruption: %+v, %v", got, err)
	}
	if recomputed != 1 {
		t.Errorf("compute ran %d times, want 1 (corrupt entry must force recompute)", recomputed)
	}
	if s := fresh.Stats("sweep"); s.Corrupt != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 corrupt 1 miss", s)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt entry not quarantined: %v", err)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `cache_corrupt_entries_total{kind="sweep"} 1`) {
		t.Errorf("exposition missing corrupt counter:\n%s", sb.String())
	}

	// The recomputed entry replaced the damaged one: a third process reads
	// it cleanly with no compute and no new corruption count.
	warm := New(WithDir(dir))
	if _, err := GetOrComputeJSON(warm, "sweep", "deadbeef", func() (payload, error) {
		t.Fatal("compute ran despite recomputed disk entry")
		return payload{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats("sweep"); s.Corrupt != 0 || s.Hits != 1 {
		t.Errorf("post-recovery stats = %+v, want 1 hit 0 corrupt", s)
	}
}

// TestCacheDiskTornAndLegacyFiles covers the two non-checksum-match shapes:
// a framed file cut short mid-payload (a torn write that somehow bypassed
// the rename protocol) is corrupt and quarantined; a pre-checksum legacy
// file (bare JSON, no magic) is merely unverifiable — recomputed and
// rewritten in the framed format, but never counted or renamed as corrupt.
func TestCacheDiskTornAndLegacyFiles(t *testing.T) {
	dir := t.TempDir()
	seed := New(WithDir(dir))
	if _, err := GetOrComputeJSON(seed, "sweep", "torn", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	tornPath := filepath.Join(dir, "sweep", "torn.json")
	raw, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	legacyPath := filepath.Join(dir, "sweep", "legacy.json")
	if err := os.WriteFile(legacyPath, []byte("3"), 0o644); err != nil {
		t.Fatal(err)
	}

	c := New(WithDir(dir))
	if v, err := GetOrComputeJSON(c, "sweep", "torn", func() (int, error) { return 1, nil }); err != nil || v != 1 {
		t.Fatalf("torn entry: %v, %v", v, err)
	}
	if _, err := os.Stat(tornPath + ".corrupt"); err != nil {
		t.Errorf("torn entry not quarantined: %v", err)
	}
	if v, err := GetOrComputeJSON(c, "sweep", "legacy", func() (int, error) { return 9, nil }); err != nil || v != 9 {
		t.Fatalf("legacy entry: %v, %v", v, err)
	}
	if _, err := os.Stat(legacyPath + ".corrupt"); err == nil {
		t.Error("legacy (unframed) file was quarantined as corrupt")
	}
	if s := c.Stats("sweep"); s.Corrupt != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 1 corrupt 2 misses", s)
	}
	// Both keys are now framed on disk and verify cleanly.
	for _, key := range []string{"torn", "legacy"} {
		data, err := os.ReadFile(filepath.Join(dir, "sweep", key+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if _, legacy, err := unframeDisk(data); legacy || err != nil {
			t.Errorf("%s not rewritten as a framed entry: legacy=%v err=%v", key, legacy, err)
		}
	}
}
