package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sync"

	"cava/internal/trace"
	"cava/internal/video"
)

// A Hasher accumulates the deterministic inputs of a computation into a
// content fingerprint. Every write is length- or tag-delimited so distinct
// input sequences cannot collide by concatenation, and floats are hashed by
// their IEEE-754 bit pattern so the fingerprint is exact, not
// formatting-dependent.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher returns a Hasher seeded with the given tag parts (typically a
// format-version string, so changing a serialization invalidates old
// fingerprints).
func NewHasher(parts ...string) *Hasher {
	h := &Hasher{h: sha256.New()}
	for _, p := range parts {
		h.Str(p)
	}
	return h
}

// Str hashes a length-prefixed string.
func (h *Hasher) Str(s string) *Hasher {
	h.I64(int64(len(s)))
	h.h.Write([]byte(s))
	return h
}

// I64 hashes one integer.
func (h *Hasher) I64(v int64) *Hasher {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
	h.h.Write(h.buf[:])
	return h
}

// F64 hashes one float by bit pattern.
func (h *Hasher) F64(v float64) *Hasher {
	binary.LittleEndian.PutUint64(h.buf[:], bitsOf(v))
	h.h.Write(h.buf[:])
	return h
}

// F64s hashes a length-prefixed float slice.
func (h *Hasher) F64s(vs []float64) *Hasher {
	h.I64(int64(len(vs)))
	for _, v := range vs {
		h.F64(v)
	}
	return h
}

// Sum returns the hex fingerprint.
func (h *Hasher) Sum() string {
	return hex.EncodeToString(h.h.Sum(nil))
}

func bitsOf(v float64) uint64 { return math.Float64bits(v) }

// videoFPs and traceFPs memoize fingerprints per pointer. Content-identical
// values at different addresses still agree (the fingerprint hashes
// content); the pointer map is only a fast path for the common case of one
// generated instance reused across requests.
var (
	videoFPs sync.Map // *video.Video -> string
	traceFPs sync.Map // *trace.Trace -> string
)

// VideoFingerprint returns a content fingerprint of a video: identity
// fields, the latent complexity series and every track's chunk sizes, so
// any change to the generator invalidates dependent cache entries.
func VideoFingerprint(v *video.Video) string {
	if fp, ok := videoFPs.Load(v); ok {
		return fp.(string)
	}
	h := NewHasher("video-v1")
	h.Str(v.Name).I64(int64(v.Genre)).I64(int64(v.Codec)).I64(int64(v.Source))
	h.F64(v.ChunkDurSec).F64(v.Cap).F64(v.FPS)
	h.F64s(v.Complexity)
	h.I64(int64(len(v.Tracks)))
	for _, t := range v.Tracks {
		h.I64(int64(t.ID)).Str(t.Res.Name)
		h.F64(t.AvgBitrateBps).F64(t.PeakBitrateBps).F64(t.DeclaredBitrateBps)
		h.F64s(t.ChunkSizesBits)
	}
	fp := h.Sum()
	videoFPs.Store(v, fp)
	return fp
}

// TraceFingerprint returns a content fingerprint of a bandwidth trace.
func TraceFingerprint(tr *trace.Trace) string {
	if fp, ok := traceFPs.Load(tr); ok {
		return fp.(string)
	}
	h := NewHasher("trace-v1")
	h.Str(tr.ID).F64(tr.IntervalSec).F64s(tr.Samples)
	fp := h.Sum()
	traceFPs.Store(tr, fp)
	return fp
}

// GenConfigKey fingerprints a video generator configuration — the full
// deterministic input of video.Generate.
func GenConfigKey(cfg video.GenConfig) string {
	h := NewHasher("genconfig-v1")
	h.Str(cfg.Name).I64(int64(cfg.Genre)).I64(int64(cfg.Codec)).I64(int64(cfg.Source))
	h.F64(cfg.ChunkDurSec).F64(cfg.Cap).F64(cfg.DurationSec).F64(cfg.FPS).I64(cfg.Seed)
	return h.Sum()
}
