package cache

import (
	"fmt"

	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/video"
)

// This file holds the typed artifact helpers: per-video derived artifacts
// (generated videos, quality tables, scene classifications) memoized behind
// the get-or-compute core. All are safe to share across goroutines because
// the underlying values are immutable once computed. Every helper works on
// a nil cache by computing directly.

// Artifact kinds, used as Stats keys and telemetry label values.
const (
	KindVideo   = "video"
	KindQuality = "quality"
	KindScene   = "scene"
	KindSim     = "sim"
)

// Generate returns the video for a generator configuration, generating it
// at most once per cache. The full configuration is the key (not the video
// ID: Cap4xConfig and the plain ED H.264 encode share an ID but differ in
// cap).
func (c *Cache) Generate(cfg video.GenConfig) *video.Video {
	if c == nil {
		return video.Generate(cfg)
	}
	v, _ := c.GetOrCompute(KindVideo, GenConfigKey(cfg), func() (any, error) {
		return video.Generate(cfg), nil
	})
	return v.(*video.Video)
}

// GenerateAll returns the videos for a list of configurations, each
// generated at most once per cache.
func (c *Cache) GenerateAll(cfgs []video.GenConfig) []*video.Video {
	out := make([]*video.Video, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = c.Generate(cfg)
	}
	return out
}

// VideoByID returns the dataset video with the given ID, generating at most
// once per cache, or nil when the ID is not in the dataset. Only the
// requested video is generated, unlike video.ByID's original
// scan-the-dataset behavior.
func (c *Cache) VideoByID(id string) *video.Video {
	cfg, ok := video.ConfigByID(id)
	if !ok {
		return nil
	}
	return c.Generate(cfg)
}

// QualityTable returns the per-chunk quality table of a video under a
// metric, computed at most once per (video content, metric).
func (c *Cache) QualityTable(v *video.Video, m quality.Metric) *quality.Table {
	if c == nil {
		return quality.NewTable(v, m)
	}
	key := NewHasher("quality-v1").Str(VideoFingerprint(v)).I64(int64(m)).Sum()
	qt, _ := c.GetOrCompute(KindQuality, key, func() (any, error) {
		return quality.NewTable(v, m), nil
	})
	return qt.(*quality.Table)
}

// Categories returns the default scene classification of a video, computed
// at most once per video content.
func (c *Cache) Categories(v *video.Video) []scene.Category {
	if c == nil {
		return scene.ClassifyDefault(v)
	}
	key := NewHasher("scene-v1").Str(VideoFingerprint(v)).Sum()
	cats, _ := c.GetOrCompute(KindScene, key, func() (any, error) {
		return scene.ClassifyDefault(v), nil
	})
	return cats.([]scene.Category)
}

// VideoByIDErr is VideoByID returning an error for unknown IDs, for call
// sites that thread errors instead of handling the nil sentinel.
func (c *Cache) VideoByIDErr(id string) (*video.Video, error) {
	v := c.VideoByID(id)
	if v == nil {
		return nil, fmt.Errorf("cache: unknown video ID %q", id)
	}
	return v, nil
}
