package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The floateq analyzer flags == and != between floating-point operands:
// after any arithmetic, exact comparison is a rounding bug waiting to
// happen (the PID and MPC controllers are all float math). One idiom is
// exempt — comparison against a compile-time constant zero — because the
// zero sentinel ("this field was never set") is assigned exactly and never
// the result of arithmetic in this codebase. Intentional exact comparisons
// (sort tie-breaks on stored values) carry a lint:allow directive.

func runFloatEq(p *Package, _ Config) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !floatOperand(p.Info, bin.X) || !floatOperand(p.Info, bin.Y) {
				return true
			}
			if constZero(p.Info, bin.X) || constZero(p.Info, bin.Y) {
				return true
			}
			out = append(out, Finding{
				Pos: p.Fset.Position(bin.OpPos), Analyzer: "floateq",
				Message: fmt.Sprintf("%s compares floats exactly; use a tolerance (or compare against the 0 sentinel)", bin.Op),
			})
			return true
		})
	}
	return out
}

// floatOperand reports whether the expression has floating-point type.
func floatOperand(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
