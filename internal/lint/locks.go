package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The locks analyzer guards the three sync mistakes the -race soaks catch
// only when the interleaving cooperates:
//
//   - sync.Mutex / sync.RWMutex / sync.WaitGroup copied by value (a value
//     parameter, receiver, result, or assignment copy): the copy has its
//     own state, so the original's exclusion silently stops applying;
//   - Lock with no matching Unlock, or a return statement between a Lock
//     and its Unlock with no deferred Unlock in scope: the early-return
//     path leaves the mutex held forever;
//   - WaitGroup.Add inside the goroutine it gates: the spawner can reach
//     Wait before the goroutine is scheduled, so Wait returns early. Add
//     must happen before the go statement, in the spawning goroutine.
//
// Lock/Unlock matching is per-object (the field or variable the method is
// called on) and per-kind (Lock pairs with Unlock, RLock with RUnlock),
// scanning each function body as its own scope.

func runLocks(p *Package, cfg Config) []Finding {
	out := copiedByValue(p, "locks", containsLocker, "sync primitive")
	for _, body := range functionBodies(p) {
		out = append(out, lockPairFindings(p, body)...)
	}
	out = append(out, addInsideGoroutine(p)...)
	return out
}

// syncTypeName returns the sync-package type name (Mutex, RWMutex,
// WaitGroup) behind t, or "".
func syncTypeName(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup":
		return obj.Name()
	}
	return ""
}

// containsLocker reports whether t holds a sync.Mutex/RWMutex/WaitGroup by
// value (directly, in a struct field, or in an array element).
func containsLocker(t types.Type) bool {
	return containsType(t, func(t types.Type) bool { return syncTypeName(t) != "" }, map[types.Type]bool{})
}

// containsType walks value-embedded structure (struct fields, arrays)
// looking for a type matching the predicate. Pointers, slices, maps and
// channels are references, not copies, so the walk stops there.
func containsType(t types.Type, match func(types.Type) bool, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if match(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsType(u.Field(i).Type(), match, seen) {
				return true
			}
		}
	case *types.Array:
		return containsType(u.Elem(), match, seen)
	}
	return false
}

// copiedByValue flags value parameters, receivers, results and assignment
// copies whose type carries a non-copyable value (per the contains
// predicate). Shared by locks and atomicmix.
func copiedByValue(p *Package, analyzer string, contains func(types.Type) bool, what string) []Finding {
	var out []Finding
	flag := func(pos token.Pos, form string, t types.Type) {
		out = append(out, Finding{
			Pos: p.Fset.Position(pos), Analyzer: analyzer,
			Message: fmt.Sprintf("%s of type %s copies a %s by value; pass a pointer", form, t, what),
		})
	}
	checkField := func(fld *ast.Field, form string) {
		tv, ok := p.Info.Types[fld.Type]
		if !ok || tv.Type == nil || !contains(tv.Type) {
			return
		}
		pos := fld.Type.Pos()
		if len(fld.Names) > 0 {
			pos = fld.Names[0].Pos()
		}
		flag(pos, form, tv.Type)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, fld := range n.Recv.List {
						checkField(fld, "receiver")
					}
				}
			case *ast.FuncType:
				if n.Params != nil {
					for _, fld := range n.Params.List {
						checkField(fld, "parameter")
					}
				}
				if n.Results != nil {
					for _, fld := range n.Results.List {
						checkField(fld, "result")
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !copiesExistingValue(rhs) {
						continue
					}
					// Assigning to the blank identifier discards the value;
					// no second copy of the state survives.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					tv, ok := p.Info.Types[rhs]
					if ok && tv.Type != nil && contains(tv.Type) {
						flag(rhs.Pos(), "assignment", tv.Type)
					}
				}
			}
			return true
		})
	}
	return out
}

// copiesExistingValue reports whether the expression reads an existing
// value (identifier, field, deref, or index) — the shapes whose assignment
// duplicates state. Composite literals and calls build fresh values and
// are fine to bind.
func copiesExistingValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesExistingValue(e.X)
	}
	return false
}

// functionBodies yields every function scope in the package: each FuncDecl
// body and each FuncLit body, analyzed independently.
func functionBodies(p *Package) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})
	}
	return bodies
}

// lockEvent is one Lock/Unlock call inside a function scope.
type lockEvent struct {
	obj  types.Object // the mutex the method is called on
	read bool         // RLock/RUnlock
	pos  token.Pos
	node ast.Node
}

// lockPairFindings checks one function scope for Lock calls with no
// matching Unlock, or with a return statement on the path between Lock and
// the first matching Unlock. A deferred Unlock for the same mutex (direct
// or inside a deferred closure) clears every Lock of that mutex.
func lockPairFindings(p *Package, body *ast.BlockStmt) []Finding {
	type pairKey struct {
		obj  types.Object
		read bool
	}
	var locks, unlocks []lockEvent
	deferred := map[pairKey]bool{}
	var returns []token.Pos

	classify := func(call *ast.CallExpr) (ev lockEvent, isLock, isUnlock bool) {
		obj, name := syncMethodTarget(p.Info, call)
		if obj == nil {
			return
		}
		switch name {
		case "Lock", "RLock":
			return lockEvent{obj: obj, read: name == "RLock", pos: call.Pos(), node: call}, true, false
		case "Unlock", "RUnlock":
			return lockEvent{obj: obj, read: name == "RUnlock", pos: call.Pos(), node: call}, false, true
		}
		return
	}

	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, analyzed on its own
		case *ast.DeferStmt:
			if ev, _, isUnlock := classify(n.Call); isUnlock {
				deferred[pairKey{ev.obj, ev.read}] = true
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// A deferred closure's unlocks count as deferred here.
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if ev, _, isUnlock := classify(call); isUnlock {
							deferred[pairKey{ev.obj, ev.read}] = true
						}
					}
					return true
				})
				return false
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.CallExpr:
			if ev, isLock, isUnlock := classify(n); isLock {
				locks = append(locks, ev)
			} else if isUnlock {
				unlocks = append(unlocks, ev)
			}
		}
		return true
	}
	ast.Inspect(body, scan)

	var out []Finding
	for _, l := range locks {
		lockName, unlockName := "Lock", "Unlock"
		if l.read {
			lockName, unlockName = "RLock", "RUnlock"
		}
		if deferred[pairKey{l.obj, l.read}] {
			continue
		}
		var first token.Pos
		for _, u := range unlocks {
			if u.obj == l.obj && u.read == l.read && u.pos > l.pos {
				first = u.pos
				break
			}
		}
		if first == token.NoPos {
			out = append(out, Finding{
				Pos: p.Fset.Position(l.pos), Analyzer: "locks",
				Message: fmt.Sprintf("%s.%s with no matching %s in this function; use defer %s.%s()",
					l.obj.Name(), lockName, unlockName, l.obj.Name(), unlockName),
			})
			continue
		}
		for _, r := range returns {
			if r > l.pos && r < first {
				out = append(out, Finding{
					Pos: p.Fset.Position(l.pos), Analyzer: "locks",
					Message: fmt.Sprintf("return between %s.%s and its %s leaves the mutex held; use defer %s.%s()",
						l.obj.Name(), lockName, unlockName, l.obj.Name(), unlockName),
				})
				break
			}
		}
	}
	return out
}

// syncMethodTarget resolves a call of the form x.M() where M is a method
// of sync.Mutex/RWMutex/WaitGroup (including promoted embeddings),
// returning the object x resolves to and the method name. The object is
// the innermost field or variable the method is invoked on, so two locks
// on the same field pair up even through different receivers.
func syncMethodTarget(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	var obj types.Object
	switch x := sel.X.(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	if obj == nil {
		return nil, ""
	}
	return obj, fn.Name()
}

// addInsideGoroutine flags WaitGroup.Add calls lexically inside the
// function literal a go statement runs: the spawner may reach Wait before
// the goroutine executes Add.
func addInsideGoroutine(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if obj, name := syncMethodTarget(p.Info, call); obj != nil && name == "Add" {
					if syncTypeName(derefType(objType(obj))) == "WaitGroup" {
						out = append(out, Finding{
							Pos: p.Fset.Position(call.Pos()), Analyzer: "locks",
							Message: fmt.Sprintf("%s.Add inside the goroutine it gates; call Add before the go statement", obj.Name()),
						})
					}
				}
				return true
			})
			return true
		})
	}
	return out
}

// objType returns the object's type (nil-safe).
func objType(obj types.Object) types.Type {
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
