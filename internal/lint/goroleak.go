package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The goroleak analyzer is the static twin of internal/chaos/leakcheck: it
// flags `go` statements in library (non-main) packages with no visible
// stop mechanism, so a goroutine that would trip the dynamic leak guard is
// named at review time instead of at soak time. A spawn is considered
// stoppable when any of these holds:
//
//   - a WaitGroup.Add call precedes the go statement in the spawning
//     function (the wg.Add(1); go f() idiom — Close/Wait drains it);
//   - the goroutine body receives from a channel, ranges over one, selects,
//     closes one, calls WaitGroup.Done/Wait, or touches a context.Context
//     (worker loops fed by a closable channel, ctx-cancelled loops);
//   - the goroutine body uses a value whose type has Close, Shutdown, Stop,
//     or CloseIdleConnections called on it somewhere in the package (e.g. a
//     goroutine blocked in (*http.Server).ListenAndServe is stopped by the
//     hsrv.Close() in the teardown path — matched by type, not by the
//     specific variable, since teardown often holds its own reference).
//
// For `go f(...)` spawning a function declared in the same package, the
// body of f is inspected; a spawn whose body is out of package can only
// pass via the wg.Add rule or a stoppable argument.

func runGoroleak(p *Package, cfg Config) []Finding {
	if p.IsMain() {
		return nil // commands run to exit; the OS reaps their goroutines
	}
	closeable := closeableTypes(p)
	decls := funcDeclIndex(p)
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, goStmtFindings(p, fd.Body, closeable, decls)...)
		}
	}
	return out
}

// goStmtFindings inspects one function body (including nested literals)
// for unstoppable go statements. The enclosing-body context for the
// wg.Add-before-go rule is the innermost function scope containing the go
// statement.
func goStmtFindings(p *Package, body *ast.BlockStmt, closeable map[string]bool, decls map[*types.Func]*ast.FuncDecl) []Finding {
	var out []Finding
	var inspect func(scope *ast.BlockStmt, n ast.Node)
	inspect = func(scope *ast.BlockStmt, n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m.Body != n { // avoid re-entering the node we started on
					inspect(m.Body, m.Body)
					return false
				}
			case *ast.GoStmt:
				if !goStmtStoppable(p, scope, m, closeable, decls) {
					out = append(out, Finding{
						Pos: p.Fset.Position(m.Pos()), Analyzer: "goroleak",
						Message: "goroutine has no visible stop mechanism (ctx/done channel, WaitGroup, or a Close()d object); leaks past Close",
					})
				}
			}
			return true
		})
	}
	inspect(body, body)
	return out
}

// goStmtStoppable applies the three OK-rules to one go statement.
func goStmtStoppable(p *Package, scope *ast.BlockStmt, g *ast.GoStmt, closeable map[string]bool, decls map[*types.Func]*ast.FuncDecl) bool {
	// Rule 1: wg.Add before the go statement in the spawning scope.
	if wgAddBefore(p, scope, g.Pos()) {
		return true
	}
	// Resolve the goroutine body.
	var gbody ast.Node
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		gbody = fun.Body
	default:
		var obj types.Object
		switch fn := fun.(type) {
		case *ast.Ident:
			obj = p.Info.Uses[fn]
		case *ast.SelectorExpr:
			obj = p.Info.Uses[fn.Sel]
		}
		if tf, ok := obj.(*types.Func); ok {
			if fd := decls[tf]; fd != nil && fd.Body != nil {
				gbody = fd.Body
			}
		}
	}
	if gbody == nil {
		// Out-of-package body: a context or channel argument, a
		// closeable-typed argument, or a closeable receiver (the
		// `go srv.Serve(l)` / `defer srv.Close()` idiom) is the only
		// provable stop handle.
		if sel, ok := g.Call.Fun.(*ast.SelectorExpr); ok && exprStoppable(p, sel.X, closeable) {
			return true
		}
		for _, arg := range g.Call.Args {
			if exprStoppable(p, arg, closeable) {
				return true
			}
		}
		return false
	}
	// Rules 2+3 over the resolved body.
	stoppable := false
	ast.Inspect(gbody, func(n ast.Node) bool {
		if stoppable {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				stoppable = true
			}
		case *ast.SelectStmt:
			stoppable = true
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					stoppable = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" &&
				p.Info.Uses[id] == types.Universe.Lookup("close") {
				stoppable = true
			}
			if obj, name := syncMethodTarget(p.Info, n); obj != nil &&
				(name == "Done" || name == "Wait") &&
				syncTypeName(derefType(objType(obj))) == "WaitGroup" {
				stoppable = true
			}
		case ast.Expr:
			if exprStoppable(p, n, closeable) {
				stoppable = true
			}
		}
		return !stoppable
	})
	return stoppable
}

// wgAddBefore reports a WaitGroup.Add call lexically before pos in the
// scope (not inside a nested function literal).
func wgAddBefore(p *Package, scope *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n.Pos() >= pos {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj, name := syncMethodTarget(p.Info, call); obj != nil && name == "Add" &&
				syncTypeName(derefType(objType(obj))) == "WaitGroup" {
				found = true
			}
		}
		return true
	})
	return found
}

// exprStoppable reports whether an expression's type is a stop handle: a
// context.Context, a channel, or a type the package registers a
// Close/Shutdown/Stop on.
func exprStoppable(p *Package, e ast.Expr, closeable map[string]bool) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if isContextType(t) {
		return true
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	if closeable[t.String()] || closeable[derefType(t).String()] {
		return true
	}
	return false
}

// isContextType reports context.Context (or an interface embedding it by
// identical type).
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// closeableTypes collects the type strings (value and pointee forms) of
// every receiver the package calls Close, Shutdown, Stop, or
// CloseIdleConnections on — the "registered Close" set goroutine bodies
// are matched against.
func closeableTypes(p *Package) map[string]bool {
	stopNames := map[string]bool{
		"Close": true, "Shutdown": true, "Stop": true, "CloseIdleConnections": true,
	}
	set := map[string]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !stopNames[sel.Sel.Name] {
				return true
			}
			if tv, ok := p.Info.Types[sel.X]; ok && tv.Type != nil {
				set[tv.Type.String()] = true
				set[derefType(tv.Type).String()] = true
			}
			return true
		})
	}
	return set
}

// funcDeclIndex maps each declared function object to its declaration, so
// `go f()` can resolve to f's body when f lives in this package.
func funcDeclIndex(p *Package) map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if tf, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				idx[tf] = fd
			}
		}
	}
	return idx
}
