package lint

import (
	"bytes"
	"go/token"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadFixtureCorpus loads every fixture package (the full golden corpus).
func loadFixtureCorpus(t *testing.T) []*Package {
	t.Helper()
	ld := NewLoader(filepath.Join("testdata", "src"), "fixture")
	pkgs := make([]*Package, 0, len(fixturePackages))
	for _, name := range fixturePackages {
		pkgs = append(pkgs, loadFixture(t, ld, name))
	}
	return pkgs
}

// TestTenAnalyzersRegistered pins the suite roster: the repo-clean gate
// (TestRepoIsClean) runs Analyzers(), so this list is exactly what that
// gate covers — the five v1 analyzers plus the five concurrency/allocation
// ones, and the "allow" pseudo-analyzer for broken directives.
func TestTenAnalyzersRegistered(t *testing.T) {
	want := []string{
		"determinism", "units", "nopanic", "floateq", "errdrop",
		"hotalloc", "locks", "goroleak", "atomicmix", "metricname",
	}
	var got []string
	for _, a := range Analyzers() {
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run function", a.Name)
		}
		got = append(got, a.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyzers() = %v, want %v", got, want)
	}
	if names := AnalyzerNames(); !reflect.DeepEqual(names, append(want, "allow")) {
		t.Fatalf("AnalyzerNames() = %v, want the suite plus \"allow\"", names)
	}
}

// TestParallelAnalysisMatchesSequential pins the fan-out contract: the
// same corpus analyzed with 1, 2, 3, and 8 workers yields byte-identical
// findings in identical order. The corpus spans every fixture package, so
// every analyzer and the suppression scanner run under the partition.
func TestParallelAnalysisMatchesSequential(t *testing.T) {
	pkgs := loadFixtureCorpus(t)
	cfg := fixtureConfig()
	sequential := analyzeAll(pkgs, cfg, 1)
	if len(sequential) == 0 {
		t.Fatal("fixture corpus produced no findings; the equivalence check would be vacuous")
	}
	for _, workers := range []int{2, 3, 8, len(pkgs) + 5} {
		got := analyzeAll(pkgs, cfg, workers)
		if !reflect.DeepEqual(got, sequential) {
			t.Errorf("analyzeAll with %d workers diverged from sequential\n got: %v\nwant: %v",
				workers, got, sequential)
		}
	}
}

// TestJSONRoundTrip pins the -json wire format: WriteJSON then ParseJSON
// reproduces the findings exactly, suppressed markers included.
func TestJSONRoundTrip(t *testing.T) {
	in := []Finding{
		{
			Pos:      token.Position{Filename: "internal/player/step.go", Line: 41, Column: 7},
			Analyzer: "hotalloc",
			Message:  "append in hot path may allocate",
		},
		{
			Pos:        token.Position{Filename: "internal/cache/cache.go", Line: 75, Column: 2},
			Analyzer:   "metricname",
			Message:    `counter "cache_bytes" must end in _total`,
			Suppressed: true,
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(in) {
		t.Fatalf("WriteJSON emitted %d lines, want one per finding (%d)", lines, len(in))
	}
	out, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip diverged\n got: %+v\nwant: %+v", out, in)
	}
}

// TestJSONRoundTripLiveFindings round-trips the real fixture-corpus output
// (every analyzer, suppressed and active findings mixed).
func TestJSONRoundTripLiveFindings(t *testing.T) {
	in := AnalyzeAll(loadFixtureCorpus(t), fixtureConfig())
	// Offset is not part of the wire format; the CLI prints file:line:col.
	for i := range in {
		in[i].Pos.Offset = 0
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("live round trip diverged (%d findings in, %d out)", len(in), len(out))
	}
}

// TestSuppressedMarkedNotDropped pins the audit view: AnalyzeAll keeps a
// waived finding, marked, at the position the directive covers; Analyze
// filters exactly the marked ones.
func TestSuppressedMarkedNotDropped(t *testing.T) {
	ld := NewLoader(filepath.Join("testdata", "src"), "fixture")
	pkgs := []*Package{loadFixture(t, ld, "telemetry"), loadFixture(t, ld, "metricfix")}
	all := AnalyzeAll(pkgs, fixtureConfig())
	var suppressed []Finding
	for _, f := range all {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		}
	}
	if len(suppressed) == 0 {
		t.Fatal("AnalyzeAll dropped the waived metricname finding instead of marking it")
	}
	for _, f := range suppressed {
		if f.Analyzer != "metricname" {
			t.Errorf("unexpected suppressed finding %s", f)
		}
	}
	active := Analyze(pkgs, fixtureConfig())
	if got, want := len(active), len(all)-len(suppressed); got != want {
		t.Fatalf("Analyze returned %d findings, want AnalyzeAll minus the %d suppressed (%d)",
			got, len(suppressed), want)
	}
	for _, f := range active {
		if f.Suppressed {
			t.Errorf("Analyze leaked a suppressed finding: %s", f)
		}
	}
}

// suppressfixFindings analyzes the suppressfix fixture and returns every
// finding, suppressed included.
func suppressfixFindings(t *testing.T) []Finding {
	t.Helper()
	ld := NewLoader(filepath.Join("testdata", "src"), "fixture")
	return AnalyzeAll([]*Package{loadFixture(t, ld, "suppressfix")}, fixtureConfig())
}

// TestStackedSuppressionDirectives pins the directive-stack walk: a waiver
// at the top of a contiguous run of directives still covers the flagged
// line below the run, while the unwaived control panic fires.
func TestStackedSuppressionDirectives(t *testing.T) {
	var stacked, control *Finding
	findings := suppressfixFindings(t)
	for i, f := range findings {
		if f.Analyzer != "nopanic" {
			continue
		}
		switch f.Pos.Line {
		case 17:
			stacked = &findings[i]
		case 22:
			control = &findings[i]
		}
	}
	if stacked == nil || !stacked.Suppressed {
		t.Errorf("stacked directive did not suppress the panic at line 17: %+v", stacked)
	}
	if control == nil || control.Suppressed {
		t.Errorf("control panic at line 22 should fire unsuppressed: %+v", control)
	}
}

// TestUnknownAnalyzerReported pins directive validation: a lint:allow
// naming an analyzer outside AnalyzerNames is itself a finding, under the
// "allow" pseudo-analyzer, at the directive's own line.
func TestUnknownAnalyzerReported(t *testing.T) {
	var found bool
	for _, f := range suppressfixFindings(t) {
		if f.Analyzer != "allow" {
			continue
		}
		found = true
		if f.Pos.Line != 28 {
			t.Errorf("unknown-analyzer finding at line %d, want 28", f.Pos.Line)
		}
		if !strings.Contains(f.Message, "nosuchcheck") {
			t.Errorf("finding message %q does not name the unknown analyzer", f.Message)
		}
		if f.Suppressed {
			t.Errorf("broken directive must not be suppressible: %+v", f)
		}
	}
	if !found {
		t.Error("no finding for the unknown-analyzer directive")
	}
}
