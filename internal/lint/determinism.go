package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The determinism analyzer guards the sweep cache's core assumption: a
// simulation keyed by (inputs, seed) replays byte-identically. It flags,
// inside the configured deterministic package set:
//
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - the global math/rand generator (top-level rand.Intn, rand.Float64,
//     …), whose sequence depends on process history — explicit
//     rand.New(rand.NewSource(seed)) instances are fine;
//   - `for … range <map>` loops whose body appends to a slice or writes
//     output: Go's map order is randomized per run, so the result order
//     leaks into artifacts. Loops whose appended slice is sorted later in
//     the same function are pardoned (the canonical collect-then-sort
//     idiom restores determinism).
//
// Files in DeterminismAllowFiles (the real Clock implementation) are
// exempt.

// randCtors are math/rand names that construct explicitly seeded state and
// are therefore deterministic to call.
var randCtors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(p *Package, cfg Config) []Finding {
	if !pkgSelected(p.Path, cfg.DeterministicPkgs) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		pos := p.Fset.Position(f.Pos())
		if fileSelected(pos.Filename, cfg.DeterminismAllowFiles) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				switch pkgNameOf(p.Info, n.X) {
				case "time":
					switch n.Sel.Name {
					case "Now", "Since", "Until":
						out = append(out, Finding{
							Pos: p.Fset.Position(n.Pos()), Analyzer: "determinism",
							Message: fmt.Sprintf("time.%s reads the wall clock; deterministic packages must take time as input (or a Clock)", n.Sel.Name),
						})
					}
				case "math/rand", "math/rand/v2":
					// Only function references count: rand.Rand / rand.Source
					// type names in signatures are how seeded state is
					// threaded, which is exactly what we want.
					if _, isFunc := p.Info.Uses[n.Sel].(*types.Func); isFunc && !randCtors[n.Sel.Name] {
						out = append(out, Finding{
							Pos: p.Fset.Position(n.Pos()), Analyzer: "determinism",
							Message: fmt.Sprintf("global rand.%s depends on process-wide state; use an explicitly seeded rand.New(rand.NewSource(seed))", n.Sel.Name),
						})
					}
				}
			case *ast.FuncDecl:
				// Map-range order checks need the enclosing body (the
				// collect-then-sort pardon scans it); selectors keep being
				// visited by this walk.
				if n.Body != nil {
					out = append(out, mapRangeFindings(p, n.Body)...)
				}
			}
			return true
		})
	}
	return out
}

// mapRangeFindings flags order-dependent map iteration within one function
// body, pardoning the collect-then-sort idiom.
func mapRangeFindings(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		appended, writes := rangeBodyEffects(p, rng.Body)
		if writes {
			out = append(out, Finding{
				Pos: p.Fset.Position(rng.Pos()), Analyzer: "determinism",
				Message: "map iteration order is randomized; this range body writes output per entry — collect and sort first",
			})
			return true
		}
		for _, target := range appended {
			if !sortedAfter(p, body, rng, target) {
				out = append(out, Finding{
					Pos: p.Fset.Position(rng.Pos()), Analyzer: "determinism",
					Message: fmt.Sprintf("map iteration order is randomized; slice %q appended here is never sorted — sort it before use", target.Name),
				})
				break
			}
		}
		return true
	})
	return out
}

// rangeBodyEffects finds slice-append targets and output writes inside a
// range body. Output writes are calls to fmt printers or Write/WriteString
// methods — anything that emits per-entry bytes in iteration order.
func rangeBodyEffects(p *Package, body *ast.BlockStmt) (appended []*ast.Ident, writes bool) {
	seen := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && p.Info.Uses[fun] == types.Universe.Lookup("append") && len(call.Args) > 0 {
				if id := rootIdent(call.Args[0]); id != nil {
					obj := p.Info.Uses[id]
					if obj != nil && !seen[obj] {
						seen[obj] = true
						appended = append(appended, id)
					}
				}
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if pkgNameOf(p.Info, fun.X) == "fmt" {
				// Only the printing functions write; Sprintf/Errorf are pure.
				if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
					writes = true
				}
			} else if name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune" {
				writes = true
			}
		}
		return true
	})
	return appended, writes
}

// rootIdent unwraps index/selector expressions down to their base
// identifier (nil when the base is not a plain identifier).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether the function body contains a sort.* call on
// the same object anywhere after the range statement.
func sortedAfter(p *Package, body *ast.BlockStmt, rng *ast.RangeStmt, target *ast.Ident) bool {
	obj := p.Info.Uses[target]
	if obj == nil {
		obj = p.Info.Defs[target]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || pkgNameOf(p.Info, sel.X) != "sort" || len(call.Args) == 0 {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
