package lint

import (
	"go/token"
	"strings"
)

// Suppression grammar: `//lint:allow <analyzer> <reason>` on the flagged
// line or on the line directly above it. The reason is mandatory — the
// directive documents *why* the invariant is waived, and a bare waiver is
// reported as its own finding so it cannot rot silently.

// allowKey identifies one (file, line, analyzer) waiver.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions is the per-package waiver table.
type suppressions struct {
	keys   map[allowKey]bool
	broken []Finding // reason-less directives
}

// allows reports whether the analyzer is waived at the position (same line
// or the directive line directly above).
func (s suppressions) allows(analyzer string, pos token.Position) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if s.keys[allowKey{pos.Filename, line, analyzer}] {
			return true
		}
	}
	return false
}

// collectSuppressions scans a package's comments for lint:allow directives.
func collectSuppressions(p *Package) suppressions {
	s := suppressions{keys: map[allowKey]bool{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					s.broken = append(s.broken, Finding{
						Pos: pos, Analyzer: "allow",
						Message: "lint:allow needs an analyzer name and a reason",
					})
					continue
				}
				if len(fields) < 2 {
					s.broken = append(s.broken, Finding{
						Pos: pos, Analyzer: "allow",
						Message: "lint:allow " + fields[0] + " needs a reason",
					})
					continue
				}
				s.keys[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return s
}
