package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// Suppression grammar: `//lint:allow <analyzer> <reason>` on the flagged
// line or on the directive stack directly above it. The reason is
// mandatory — the directive documents *why* the invariant is waived — and
// the analyzer name must be one the suite knows; a bare waiver, or one
// naming an unknown analyzer, is reported as its own finding so it cannot
// rot silently. Consecutive directive lines stack: several analyzers can
// be waived above one flagged line, each with its own reason.

// allowKey identifies one (file, line, analyzer) waiver.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// fileLine identifies one source line (for directive-stack walking).
type fileLine struct {
	file string
	line int
}

// suppressions is the per-package waiver table.
type suppressions struct {
	keys   map[allowKey]bool
	lines  map[fileLine]bool // every line holding a lint:allow directive
	broken []Finding         // reason-less or unknown-analyzer directives
}

// allows reports whether the analyzer is waived at the position: by a
// directive on the same line, or anywhere in the contiguous run of
// directive lines directly above it.
func (s suppressions) allows(analyzer string, pos token.Position) bool {
	if s.keys[allowKey{pos.Filename, pos.Line, analyzer}] {
		return true
	}
	for line := pos.Line - 1; s.lines[fileLine{pos.Filename, line}]; line-- {
		if s.keys[allowKey{pos.Filename, line, analyzer}] {
			return true
		}
	}
	return false
}

// collectSuppressions scans a package's comments for lint:allow directives.
func collectSuppressions(p *Package) suppressions {
	known := map[string]bool{}
	for _, name := range AnalyzerNames() {
		known[name] = true
	}
	s := suppressions{keys: map[allowKey]bool{}, lines: map[fileLine]bool{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				s.lines[fileLine{pos.Filename, pos.Line}] = true
				fields := strings.Fields(text)
				if len(fields) == 0 {
					s.broken = append(s.broken, Finding{
						Pos: pos, Analyzer: "allow",
						Message: "lint:allow needs an analyzer name and a reason",
					})
					continue
				}
				if !known[fields[0]] {
					s.broken = append(s.broken, Finding{
						Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("lint:allow names unknown analyzer %q (known: %s)",
							fields[0], strings.Join(AnalyzerNames(), ", ")),
					})
					continue
				}
				if len(fields) < 2 {
					s.broken = append(s.broken, Finding{
						Pos: pos, Analyzer: "allow",
						Message: "lint:allow " + fields[0] + " needs a reason",
					})
					continue
				}
				s.keys[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return s
}
