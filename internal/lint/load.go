package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package plus everything the
// analyzers need: its syntax (with comments), its type information, and its
// import path within the module.
type Package struct {
	// Path is the full import path (module path + directory).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset positions all files of the load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object tables.
	Info *types.Info
}

// IsMain reports whether the package is a command.
func (p *Package) IsMain() bool { return p.Types.Name() == "main" }

// LoadTree loads every non-test package under root/internal and root/cmd.
// root must contain go.mod (its module line names the import-path prefix).
func LoadTree(root string) ([]*Package, error) {
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, top := range []string{"internal", "cmd"} {
		d := filepath.Join(root, top)
		if _, err := os.Stat(d); err != nil {
			continue
		}
		sub, err := goDirs(d)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, sub...)
	}
	ld := NewLoader(root, mod)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		p, err := ld.Load(mod + "/" + filepath.ToSlash(rel))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goDirs lists directories under root holding at least one non-test .go
// file, skipping testdata and hidden directories.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// modulePath extracts the module line from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (run from the module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Loader parses and type-checks module packages from source. Module-local
// imports resolve recursively through the loader itself (with caching);
// everything else falls back to the standard library's source importer, so
// the whole load works offline with no export data and no go tool
// invocations. Cgo is disabled for the load: the repository is pure Go and
// the netgo fallbacks type-check identically.
type Loader struct {
	root   string // module root directory
	module string // module import-path prefix
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*Package
	stack  []string // in-flight loads, for import-cycle reporting
}

// NewLoader creates a loader for the module rooted at root.
func NewLoader(root, module string) *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		root:   root,
		module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*Package{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the package with the given module import
// path, reusing previously loaded results.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	for _, s := range l.stack {
		if s == path {
			return nil, fmt.Errorf("lint: import cycle through %s", strings.Join(append(l.stack, path), " -> "))
		}
	}
	l.stack = append(l.stack, path)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()

	rel, ok := strings.CutPrefix(path, l.module+"/")
	if !ok {
		return nil, fmt.Errorf("lint: %s is outside module %s", path, l.module)
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:     map[ast.Expr]types.TypeAndValue{},
		Defs:      map[*ast.Ident]types.Object{},
		Uses:      map[*ast.Ident]types.Object{},
		Implicits: map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(func(imp string) (*types.Package, error) {
		if imp == l.module || strings.HasPrefix(imp, l.module+"/") {
			p, err := l.Load(imp)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.std.Import(imp)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = p
	return p, nil
}

// parseDir parses all non-test .go files of a directory with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// pkgNameOf resolves a selector's base identifier to an imported package
// path ("" when the identifier is not a package name). Used to recognize
// time.Now, math/rand globals and fmt printers.
func pkgNameOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// constZero reports whether the expression is a compile-time constant equal
// to zero (the exact-sentinel idiom floateq exempts).
func constZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	s := tv.Value.ExactString()
	f, err := strconv.ParseFloat(s, 64)
	return err == nil && f == 0
}
