// Package locksfix exercises the locks analyzer: sync primitives copied
// by value, Lock calls whose Unlock is missing or skippable by an early
// return, and WaitGroup.Add inside the goroutine it gates.
package locksfix

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { // want locks
	return g.n
}

func (g guarded) valueRecv() int { // want locks
	return g.n
}

func freshMutex() sync.Mutex { // want locks
	var mu sync.Mutex
	return mu
}

func assignCopy(g *guarded) {
	local := *g // want locks
	_ = local
}

func (g *guarded) neverUnlocks() {
	g.mu.Lock() // want locks
	g.n++
}

func (g *guarded) earlyReturn(stop bool) int {
	g.mu.Lock() // want locks
	if stop {
		return 0
	}
	g.mu.Unlock()
	return g.n
}

// deferred is the canonical safe shape.
func (g *guarded) deferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// branchUnlocks releases on every path without defer: safe.
func (g *guarded) branchUnlocks(stop bool) int {
	g.mu.Lock()
	if stop {
		g.mu.Unlock()
		return 0
	}
	g.n++
	g.mu.Unlock()
	return g.n
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

func (t *table) getLeaky(k string) int {
	t.mu.RLock() // want locks
	if t.m == nil {
		return 0
	}
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

func (t *table) getSafe(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// addInside races: the spawner can reach Wait before Add runs.
func addInside(work func()) *sync.WaitGroup {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want locks
		defer wg.Done()
		work()
	}()
	return &wg
}

// addOutside is the safe idiom.
func addOutside(work func()) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	return &wg
}

// bareWaiver shows that a reason-less directive does not suppress.
func bareWaiver(g *guarded) {
	//lint:allow locks
	g.mu.Lock() // want locks
	g.n++
}
