// Package telemetry is a stub of the real registry: just enough surface
// for the metricname fixture to type-check against. The analyzer matches
// receivers by type name (Registry) and package name (telemetry), so
// calls through this stub exercise the same code path as the real one.
package telemetry

// Label is one name/value metric dimension.
type Label struct {
	Name  string
	Value string
}

// Counter, Gauge and Histogram are opaque handles.
type Counter struct{}

type Gauge struct{}

type Histogram struct{}

// Registry mirrors the real registry's registration surface.
type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return nil }

func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge { return nil }

func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return nil
}
