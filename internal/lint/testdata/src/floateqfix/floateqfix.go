// Package floateqfix is the floateq-analyzer fixture: exact ==/!= between
// floats are findings, while comparisons against a constant zero (the exact
// sentinel idiom), integer comparisons, and ordered comparisons are not.
package floateqfix

// Same compares floats exactly both ways; both operators are findings.
func Same(a, b float64) bool {
	if a != b { // want floateq
		return false
	}
	return a == b // want floateq
}

// ZeroSentinel compares against constant zero; the idiom is exempt.
func ZeroSentinel(x float64) bool {
	const unset = 0.0
	return x == 0 || x == unset || 0 != x
}

// Ints compares integers; never flagged.
func Ints(a, b int) bool { return a == b }

// Ordered uses <, which is fine for floats.
func Ordered(a, b float64) bool { return a < b }

// Waived carries a reasoned suppression; not a finding.
func Waived(a, b float64) bool {
	//lint:allow floateq exact tie-break over copied values
	return a == b
}
