// Package hotallocfix exercises the hotalloc analyzer: every
// allocation-inducing construct inside the configured hot-path functions
// must be flagged, identical constructs outside the hot set must not, and
// a reasoned lint:allow waives a provably amortized append while a bare
// one is itself reported.
package hotallocfix

import "fmt"

type point struct{ x, y int }

type state struct {
	buf []int
}

func (s *state) HotStep(n int) {
	v := make([]int, n) // want hotalloc
	_ = v
	p := new(point) // want hotalloc
	_ = p
}

func (s *state) HotGrow(x int) {
	s.buf = append(s.buf, x) // want hotalloc
}

func (s *state) HotFormat(id int) string {
	return fmt.Sprintf("session-%d", id) // want hotalloc
}

func HotConvert(msg string) int {
	b := []byte(msg) // want hotalloc
	return len(b)
}

func HotIface(x int) any {
	return any(x) // want hotalloc
}

func HotBox(x int) int {
	return boxed(x) // want hotalloc
}

func HotClosure(n int) func() int {
	return func() int { return n } // want hotalloc
}

func HotAddr(x, y int) *point {
	return &point{x: x, y: y} // want hotalloc
}

// HotAllowed shows the amortized-append waiver: the reason names the
// preallocation site, so the finding is suppressed.
func (s *state) HotAllowed(x int) {
	//lint:allow hotalloc buf is preallocated by the caller to a fixed capacity
	s.buf = append(s.buf, x)
}

// HotBare shows that a reason-less waiver does not suppress: the directive
// is reported as broken and the append still fires.
func (s *state) HotBare(x int) {
	//lint:allow hotalloc
	s.buf = append(s.buf, x) // want hotalloc
}

// coldPath uses every flagged construct outside the hot set: no findings.
func coldPath(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func boxed(v any) int {
	if v == nil {
		return 0
	}
	return 1
}
