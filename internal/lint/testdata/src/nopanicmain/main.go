// Command nopanicmain is the nopanic false-positive fixture: panics in
// package main are a legitimate way to die and must not be flagged.
package main

func main() {
	panic("commands may panic")
}
