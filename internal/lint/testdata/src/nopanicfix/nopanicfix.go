// Package nopanicfix is the nopanic-analyzer fixture: library panics are
// findings, reasoned suppressions silence them, and a reason-less
// suppression is itself reported.
package nopanicfix

// Boom panics without excuse; the call is a finding.
func Boom() {
	panic("boom") // want nopanic
}

// Invariant panics with a reasoned waiver; not a finding.
func Invariant(n int) {
	if n < 0 {
		//lint:allow nopanic negative n is a programmer error
		panic("nopanicfix: negative n")
	}
}

// BadWaiver carries a reason-less suppression: the bare directive is
// reported as an "allow" finding AND does not waive the panic beneath it.
func BadWaiver() {
	//lint:allow nopanic
	panic("waived without a reason") // want nopanic
}

// Recoverable shadows the built-in; calling it is not a finding.
func Recoverable() {
	localPanic := func(string) {}
	localPanic("not the built-in")
}
