// Package atomicmixfix exercises the atomicmix analyzer: a field that is
// the target of sync/atomic function calls must never be read or written
// plainly, and typed-atomic-bearing values must not be copied.
package atomicmixfix

import "sync/atomic"

type hits struct {
	n     int64
	other int64
}

func (h *hits) bump() {
	atomic.AddInt64(&h.n, 1)
}

func (h *hits) read() int64 {
	return atomic.LoadInt64(&h.n)
}

func (h *hits) mixedWrite() {
	h.n++ // want atomicmix
}

func (h *hits) mixedRead() int64 {
	return h.n // want atomicmix
}

// plainOnly is fine: other is never touched atomically.
func (h *hits) plainOnly() {
	h.other++
}

type gauge struct {
	v atomic.Uint64
}

func byValue(g gauge) uint64 { // want atomicmix
	return g.v.Load()
}

func (g gauge) valueRecv() uint64 { // want atomicmix
	return g.v.Load()
}

func copyAssign(g *gauge) {
	snapshot := *g // want atomicmix
	_ = snapshot
}

// byPointer is the safe shape.
func byPointer(g *gauge) uint64 {
	return g.v.Load()
}

// bareWaiver shows that a reason-less directive does not suppress.
func bareWaiver(h *hits) {
	//lint:allow atomicmix
	h.n++ // want atomicmix
}
