// Package unitsfix is the units-analyzer fixture: numeric identifiers whose
// last camel-case word is a quantity stem (bitrate, size, duration, delay,
// interval, throughput, ...) must carry a unit suffix; suffixed identifiers,
// non-numeric identifiers, and suppressed counts must not be flagged.
package unitsfix

// PollInterval is unit-ambiguous.
const PollInterval = 5 // want units

// MaxDelayMs carries its unit; not a finding.
const MaxDelayMs = 250

// Chunk mixes ambiguous and suffixed fields.
type Chunk struct {
	Bitrate  float64 // want units
	SizeBits float64
	Dur      float64 // want units
	DurSec   float64
	Name     string // non-numeric: never flagged
	//lint:allow units Window counts samples, not a physical quantity
	WindowSize int
}

// Wait's duration parameter is ambiguous; the suffixed one is not.
func Wait(duration float64, timeoutSec float64) float64 { // want units
	return duration + timeoutSec
}
