// Package determfix is the determinism-analyzer fixture: wall-clock reads,
// global math/rand use, and order-dependent map iteration must be flagged;
// seeded generators, *rand.Rand plumbing, and collect-then-sort map loops
// must not.
package determfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Clock reads the wall clock three ways; every call is a finding.
func Clock() (time.Time, time.Duration, time.Duration) {
	now := time.Now()                   // want determinism
	since := time.Since(now)            // want determinism
	until := time.Until(now.Add(since)) // want determinism
	return now, since, until
}

// GlobalRand uses the process-global generator; both calls are findings.
func GlobalRand() float64 {
	x := rand.Float64()                // want determinism
	rand.Shuffle(1, func(i, j int) {}) // want determinism
	return x
}

// SeededRand threads an explicit generator; nothing here is a finding: the
// constructors are allowlisted and r is a *rand.Rand value, not the global.
func SeededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Draw consumes a caller-supplied generator; the *rand.Rand type reference
// must not be mistaken for global rand use.
func Draw(r *rand.Rand) float64 { return r.Float64() }

// LeakOrder appends in map-iteration order straight into its result; the
// range statement is a finding.
func LeakOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want determinism
		out = append(out, k)
	}
	return out
}

// PrintOrder writes output in map-iteration order; the range statement is a
// finding.
func PrintOrder(m map[string]int) {
	for k, v := range m { // want determinism
		fmt.Println(k, v)
	}
}

// SortedOrder collects then sorts before anyone can observe the order; the
// range statement must not be flagged.
func SortedOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Accumulate ranges a map without emitting anything order-dependent
// (commutative sum); it must not be flagged.
func Accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
