// Package suppressfix exercises the suppression grammar's edge cases: the
// same-line waiver, the stacked directive run above a flagged line, and a
// directive naming an unknown analyzer (itself reported).
package suppressfix

// sameLine waives on the flagged line itself.
func sameLine() {
	panic("unreachable: fixture") //lint:allow nopanic fixture demonstrates the same-line waiver
}

// stacked waives through a run of directives: the matching directive is
// the top of the stack, with another valid directive between it and the
// flagged line.
func stacked() {
	//lint:allow nopanic fixture demonstrates the stacked-directive walk
	//lint:allow floateq fixture stacks a second valid waiver in between
	panic("unreachable: fixture")
}

// control shows the unwaived finding still fires.
func control() {
	panic("unreachable: fixture") // want nopanic
}

// unknown's directive names an analyzer the suite does not have: the
// directive itself is the finding.
func unknown() {
	//lint:allow nosuchcheck this analyzer does not exist // want allow
	_ = 1
}
