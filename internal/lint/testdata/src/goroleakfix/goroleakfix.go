// Package goroleakfix exercises the goroleak analyzer: go statements with
// no visible stop mechanism are flagged; WaitGroup-gated spawns,
// channel-fed workers, select/done loops, ctx-watched bodies, and
// goroutines holding an object the package registers a Close on are not.
package goroleakfix

import (
	"context"
	"fmt"
	"sync"
)

type counter struct{ n int }

func spin(c *counter) {
	for {
		c.n++
	}
}

func LeakNamed(c *counter) {
	go spin(c) // want goroleak
}

func LeakLit() {
	go func() { // want goroleak
		x := 0
		for {
			x++
		}
	}()
}

func LeakExternal(msg string) {
	go fmt.Println(msg) // want goroleak
}

// WaitGroupGated: Add before the go statement.
func WaitGroupGated(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// ChannelFed: the worker dies when jobs is closed.
func ChannelFed(jobs chan int, c *counter) {
	go func() {
		for j := range jobs {
			c.n += j
		}
	}()
}

// DoneStopped: a done channel breaks the loop.
func DoneStopped(done chan struct{}, c *counter) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				c.n++
			}
		}
	}()
}

// CtxStopped: the spawned body (resolved in-package) watches a context.
func CtxStopped(ctx context.Context, c *counter) {
	go watch(ctx, c)
}

func watch(ctx context.Context, c *counter) {
	<-ctx.Done()
	c.n = 0
}

// server's serve loop is stoppable because the package registers a Close
// on its type (StopServer): matched by type, not by the specific variable.
type server struct{ n int }

func (s *server) serve() {
	for {
		s.n++
	}
}

func (s *server) Close() { s.n = -1 }

func StartServer(s *server) {
	go s.serve()
}

func StopServer(s *server) {
	s.Close()
}

// bareWaiver shows that a reason-less directive does not suppress.
func bareWaiver(c *counter) {
	//lint:allow goroleak
	go spin(c) // want goroleak
}
