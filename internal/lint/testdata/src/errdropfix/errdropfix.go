// Package errdropfix is the errdrop-analyzer fixture: statement-position
// calls that discard an error are findings; explicit `_ =` drops, handled
// errors, and writes that provably cannot fail are not.
package errdropfix

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

// Drops discards errors three ways; each statement is a finding.
func Drops(f *os.File) {
	fallible()           // want errdrop
	pair()               // want errdrop
	f.Close()            // want errdrop
	fmt.Fprintf(f, "hi") // want errdrop (an *os.File is not a std stream)
}

// Handled threads or explicitly discards every error; no findings.
func Handled() error {
	if err := fallible(); err != nil {
		return err
	}
	_ = fallible()
	return nil
}

// Exempt exercises the allowed writers: console printing, the std streams,
// infallible in-memory writers, and sticky buffered writers whose error
// resurfaces at the checked Flush.
func Exempt() error {
	fmt.Println("console output")
	fmt.Fprintln(os.Stderr, "diagnostics")
	var sb strings.Builder
	sb.WriteString("no error path")
	fmt.Fprintf(&sb, "still none")
	bw := bufio.NewWriter(&sb)
	fmt.Fprintf(bw, "latched until Flush")
	return bw.Flush()
}

// Waived suppresses a drop with a reason; not a finding.
func Waived() {
	//lint:allow errdrop fixture demonstrates a reasoned waiver
	fallible()
}
