// Package metricfix exercises the metricname analyzer against the stub
// telemetry registry: snake_case, constant names, _total on counters (and
// nowhere else), unit suffixes on histograms, and no bare quantity stems
// on gauges.
package metricfix

import "fixture/telemetry"

func register(r *telemetry.Registry) {
	r.Counter("requests_total", "good")
	r.Gauge("queue_depth", "good")
	r.Histogram("fetch_seconds", "good", nil)

	r.Counter("requests", "missing _total")        // want metricname
	r.Counter("Bad_Case_total", "not snake_case")  // want metricname
	r.Gauge("queue_total", "_total on a gauge")    // want metricname
	r.Gauge("fetch_latency", "bare quantity stem") // want metricname
	r.Histogram("fetch_time", "no unit", nil)      // want metricname
	r.Counter(dynamic(), "non-constant name")      // want metricname
}

func dynamic() string { return "dyn_total" }

// waived shows a reasoned suppression: the finding is marked, not counted.
func waived(r *telemetry.Registry) {
	//lint:allow metricname legacy dashboard name the fixture keeps for the suppression path
	r.Counter("legacy", "waived")
}

// bareWaiver shows that a reason-less directive does not suppress.
func bareWaiver(r *telemetry.Registry) {
	//lint:allow metricname
	r.Counter("bare", "still reported") // want metricname
}
