package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureConfig selects the fixture packages the way DefaultConfig selects
// the real tree: determfix plays the deterministic simulator, unitsfix the
// unit-suffixed domain model, hotallocfix's Hot* functions the zero-alloc
// hot-path set.
func fixtureConfig() Config {
	return Config{
		DeterministicPkgs: []string{"determfix"},
		UnitsPkgs:         []string{"unitsfix"},
		HotPathFuncs: []string{
			"hotallocfix:HotStep", "hotallocfix:HotGrow",
			"hotallocfix:HotFormat", "hotallocfix:HotConvert",
			"hotallocfix:HotIface", "hotallocfix:HotBox",
			"hotallocfix:HotClosure", "hotallocfix:HotAddr",
			"hotallocfix:HotAllowed", "hotallocfix:HotBare",
		},
	}
}

// fixturePackages is the full golden corpus (the telemetry stub rides
// along as a must-stay-clean package).
var fixturePackages = []string{
	"determfix", "unitsfix", "nopanicfix", "nopanicmain",
	"floateqfix", "errdropfix", "hotallocfix", "locksfix",
	"goroleakfix", "atomicmixfix", "metricfix", "suppressfix",
	"telemetry",
}

// loadFixture type-checks one package under testdata/src.
func loadFixture(t *testing.T, ld *Loader, name string) *Package {
	t.Helper()
	p, err := ld.Load("fixture/" + name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return p
}

var wantRe = regexp.MustCompile(`// want (\w+)`)
var bareAllowRe = regexp.MustCompile(`^\s*//lint:allow\s+\w+\s*$`)

// expectedFindings scans a fixture file for `// want <analyzer>` markers
// (one expected finding on that line) and bare reason-less `//lint:allow`
// directives (one expected "allow" finding on that line).
func expectedFindings(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i, line := range strings.Split(string(data), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			want = append(want, fmt.Sprintf("%s:%d:%s", filepath.Base(path), i+1, m[1]))
		}
		if bareAllowRe.MatchString(line) {
			want = append(want, fmt.Sprintf("%s:%d:allow", filepath.Base(path), i+1))
		}
	}
	sort.Strings(want)
	return want
}

// compact renders findings as base-file:line:analyzer for golden comparison.
func compact(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer)
	}
	sort.Strings(out)
	return out
}

// TestAnalyzersAgainstFixtures runs the full suite over each fixture package
// and compares the surviving findings against the `// want` markers in the
// fixture source — every marker must fire, and nothing else may.
func TestAnalyzersAgainstFixtures(t *testing.T) {
	ld := NewLoader(filepath.Join("testdata", "src"), "fixture")
	for _, name := range fixturePackages {
		t.Run(name, func(t *testing.T) {
			p := loadFixture(t, ld, name)
			got := compact(Analyze([]*Package{p}, fixtureConfig()))
			var want []string
			for _, f := range p.Files {
				want = append(want, expectedFindings(t, p.Fset.Position(f.Pos()).Filename)...)
			}
			sort.Strings(want)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestDeterminismScopedByConfig verifies the package selector: the same
// wall-clock-reading fixture produces no determinism findings when it is
// outside DeterministicPkgs, and none of its files produce findings when
// allowlisted.
func TestDeterminismScopedByConfig(t *testing.T) {
	ld := NewLoader(filepath.Join("testdata", "src"), "fixture")
	p := loadFixture(t, ld, "determfix")

	for _, f := range Analyze([]*Package{p}, Config{}) {
		if f.Analyzer == "determinism" || f.Analyzer == "units" {
			t.Errorf("unselected package still flagged: %v", f)
		}
	}

	cfg := fixtureConfig()
	cfg.DeterminismAllowFiles = []string{"determfix/determfix.go"}
	for _, f := range Analyze([]*Package{p}, cfg) {
		if f.Analyzer == "determinism" {
			t.Errorf("allowlisted file still flagged: %v", f)
		}
	}
}

// TestFindingString pins the canonical rendering the CLI prints and the
// golden tests parse.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "nopanic", Message: "no"}
	f.Pos.Filename, f.Pos.Line = "a/b.go", 7
	if got := f.String(); got != "a/b.go:7: [nopanic] no" {
		t.Errorf("String() = %q", got)
	}
}

// TestRepoIsClean is the self-check gate: the suite must report zero
// findings over this repository's own tree, so `abrlint ./...` stays a
// tier-1 gate (any new finding fails this test before it fails CI).
func TestRepoIsClean(t *testing.T) {
	findings, err := Run(filepath.Join("..", ".."), DefaultConfig())
	if err != nil {
		t.Fatalf("load repository: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("%d findings; the repository must stay lint-clean", len(findings))
	}
}

// TestFixtureViolationsFailTheSuite mirrors what cmd/abrlint's exit code
// rests on: a tree containing violations yields a non-empty finding list.
func TestFixtureViolationsFailTheSuite(t *testing.T) {
	ld := NewLoader(filepath.Join("testdata", "src"), "fixture")
	p := loadFixture(t, ld, "determfix")
	if len(Analyze([]*Package{p}, fixtureConfig())) == 0 {
		t.Fatal("fixture violations produced no findings")
	}
}

// TestSuppressionRequiresReason pins the directive grammar edge cases.
func TestSuppressionRequiresReason(t *testing.T) {
	ld := NewLoader(filepath.Join("testdata", "src"), "fixture")
	p := loadFixture(t, ld, "nopanicfix")
	sup := collectSuppressions(p)
	if len(sup.broken) != 1 {
		t.Fatalf("broken suppressions = %d, want 1", len(sup.broken))
	}
	if !strings.Contains(sup.broken[0].Message, "needs a reason") {
		t.Errorf("broken message = %q", sup.broken[0].Message)
	}
}

// TestStickyWriterExemption pins the errdrop writer taxonomy on real types.
func TestStickyWriterExemption(t *testing.T) {
	// Compile-time spot check that the exempted types still have the
	// latching semantics the analyzer's comment claims for bufio.
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	fmt.Fprintf(bw, "x")
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if sb.String() != "x" {
		t.Fatal("buffered write lost")
	}
}
