package lint

import (
	"go/ast"
	"go/types"
)

// The nopanic analyzer forbids panic in library packages: everything under
// internal/ returns errors so that a malformed trace file or an unknown
// video ID fails one request, not the whole sweep or server. main packages
// are exempt (a CLI's top level may die loudly); genuine invariant panics
// ("this branch is unreachable by construction") carry a
// `//lint:allow nopanic <reason>` directive.

func runNoPanic(p *Package, _ Config) []Finding {
	if p.IsMain() {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if p.Info.Uses[id] != types.Universe.Lookup("panic") {
				return true // shadowed
			}
			out = append(out, Finding{
				Pos: p.Fset.Position(call.Pos()), Analyzer: "nopanic",
				Message: "library packages return errors instead of panicking",
			})
			return true
		})
	}
	return out
}
