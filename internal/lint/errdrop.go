package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The errdrop analyzer flags expression statements that call a function
// returning an error and let the value fall on the floor. Dropping an
// error must be explicit (`_ = f()`) or handled. Exemptions, because the
// call provably cannot fail or failure is not actionable:
//
//   - fmt.Print / Printf / Println, and fmt.Fprint* aimed at os.Stdout or
//     os.Stderr (CLI progress output: a failed write to a closed pipe has
//     no remedy);
//   - writes to *strings.Builder, *bytes.Buffer, or hash.Hash — writers
//     whose Write never returns an error — whether through fmt.Fprint* or
//     direct Write/WriteString/WriteByte/WriteRune method calls;
//   - fmt.Fprint* into a *bufio.Writer or *tabwriter.Writer: bufio latches
//     the first error and re-reports it from Flush; tabwriter buffers all
//     cells until Flush, which is where this codebase checks both.
//
// Deferred and go-routine calls are out of scope for this analyzer (a
// deferred Close on a read path is idiomatic); the sweep that introduced
// errdrop converted the statement-position drops.

func runErrDrop(p *Package, _ Config) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p.Info, call) || exemptDrop(p.Info, call) {
				return true
			}
			out = append(out, Finding{
				Pos: p.Fset.Position(call.Pos()), Analyzer: "errdrop",
				Message: fmt.Sprintf("%s returns an error that is silently dropped; handle it or assign to _ explicitly", calleeName(call)),
			})
			return true
		})
	}
	return out
}

// returnsError reports whether the call's results include an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exemptDrop reports whether the dropped error is from an allowed callee.
func exemptDrop(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if pkgNameOf(info, sel.X) == "fmt" {
		if name == "Print" || name == "Printf" || name == "Println" {
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return stdStream(info, call.Args[0]) ||
				infallibleWriter(info, call.Args[0]) ||
				stickyWriter(info, call.Args[0])
		}
		return false
	}
	// Direct write methods on writers that cannot fail.
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return infallibleWriter(info, sel.X)
	}
	return false
}

// stdStream reports whether the expression is os.Stdout or os.Stderr.
func stdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || pkgNameOf(info, sel.X) != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}

// stickyWriter reports whether the expression is a *bufio.Writer (whose
// first error latches and resurfaces from Flush) or a *tabwriter.Writer
// (which buffers every cell until Flush, so underlying-writer errors
// surface there).
func stickyWriter(info *types.Info, e ast.Expr) bool {
	named := namedOf(info, e)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "bufio", "text/tabwriter":
		return named.Obj().Name() == "Writer"
	}
	return false
}

// infallibleWriter reports whether the expression's static type is a
// writer that never returns a non-nil error: strings.Builder,
// bytes.Buffer, or any hash.Hash implementation.
func infallibleWriter(info *types.Info, e ast.Expr) bool {
	named := namedOf(info, e)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "strings":
		return obj.Name() == "Builder"
	case "bytes":
		return obj.Name() == "Buffer"
	case "hash":
		return true // hash.Hash, hash.Hash32, hash.Hash64
	}
	return false
}

// namedOf returns the (pointer-stripped) named type of an expression, or
// nil when it has none.
func namedOf(info *types.Info, e ast.Expr) *types.Named {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// calleeName renders the call target for the message.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
