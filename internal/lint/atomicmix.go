package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The atomicmix analyzer guards the lock-free structures (the telemetry
// registry's counters, the fleet gauges) against the two ways atomic
// discipline silently degrades:
//
//   - a variable or field that is the target of a sync/atomic function
//     call (atomic.AddUint64(&x.n, 1), atomic.LoadInt64(&v), …) but is
//     also read or written plainly elsewhere in the package: the plain
//     access races with the atomic ones, and the race detector only sees
//     it when both sides fire;
//   - a value of a typed-atomic-bearing type (atomic.Uint64, atomic.Value,
//     …) copied by value — a parameter, receiver, result, or assignment
//     copy: the copy carries its own cell, so updates through it are lost,
//     and the vet copylocks check only catches types with a noCopy field.
//
// The fix for the first is always to pick one discipline — the typed
// atomics make the atomic one self-enforcing; the fix for the second is to
// pass a pointer.

func runAtomicMix(p *Package, cfg Config) []Finding {
	out := copiedByValue(p, "atomicmix", containsAtomic, "typed atomic")
	out = append(out, mixedAccessFindings(p)...)
	return out
}

// atomicTypeName returns the sync/atomic type name behind t, or "".
func atomicTypeName(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return obj.Name()
}

// containsAtomic reports whether t holds a sync/atomic typed value by
// value (directly, in a struct field, or in an array element).
func containsAtomic(t types.Type) bool {
	return containsType(t, func(t types.Type) bool { return atomicTypeName(t) != "" }, map[types.Type]bool{})
}

// inSpans reports whether pos falls inside any of the source spans.
func inSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}

// mixedAccessFindings flags package variables and fields accessed both
// through sync/atomic function calls and plainly.
func mixedAccessFindings(p *Package) []Finding {
	// Pass 1: every object handed by address to a sync/atomic function,
	// and the source spans of those calls (uses inside them are atomic).
	targets := map[types.Object]bool{}
	var spans [][2]token.Pos
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || pkgNameOf(p.Info, sel.X) != "sync/atomic" {
				return true
			}
			spans = append(spans, [2]token.Pos{call.Pos(), call.End()})
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedObject(p.Info, un.X); obj != nil {
					targets[obj] = true
				}
			}
			return true
		})
	}
	if len(targets) == 0 {
		return nil
	}
	// Pass 2: any use of a target outside an atomic call span is a plain
	// access racing the atomic ones.
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || !targets[obj] || inSpans(spans, id.Pos()) {
				return true
			}
			out = append(out, Finding{
				Pos: p.Fset.Position(id.Pos()), Analyzer: "atomicmix",
				Message: fmt.Sprintf("%s is accessed atomically elsewhere but plainly here; every access must go through sync/atomic (or migrate to a typed atomic)", obj.Name()),
			})
			return true
		})
	}
	return out
}

// addressedObject resolves the variable or field behind an &expr argument.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.ParenExpr:
		return addressedObject(info, e.X)
	case *ast.IndexExpr:
		return addressedObject(info, e.X)
	}
	return nil
}
