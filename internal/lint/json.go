package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"strings"
)

// JSON exposition for editor and CI tooling: one Finding object per line
// (JSON Lines), so consumers stream-parse without buffering the whole
// report. Suppressed findings are included and marked — the exit status
// ignores them, but an auditor can see every active waiver.

// jsonFinding is the wire form of one Finding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// WriteJSON renders findings as JSON Lines. Filenames are written as
// given; callers relativize Pos.Filename first when they want
// module-relative paths.
func WriteJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		jf := jsonFinding{
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		}
		if err := enc.Encode(jf); err != nil {
			return fmt.Errorf("lint: encode finding: %w", err)
		}
	}
	return nil
}

// ParseJSON reads a JSON Lines finding stream back into Findings — the
// round-trip consumers (and TestJSONRoundTrip) rely on.
func ParseJSON(r io.Reader) ([]Finding, error) {
	var out []Finding
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var jf jsonFinding
		if err := json.Unmarshal([]byte(text), &jf); err != nil {
			return nil, fmt.Errorf("lint: parse JSON finding on line %d: %w", line, err)
		}
		out = append(out, Finding{
			Pos:        token.Position{Filename: jf.File, Line: jf.Line, Column: jf.Col},
			Analyzer:   jf.Analyzer,
			Message:    jf.Message,
			Suppressed: jf.Suppressed,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: read JSON findings: %w", err)
	}
	return out, nil
}
