// Package lint is abrlint's analyzer suite: project-specific static
// analysis that enforces the invariants this reproduction rests on but the
// compiler cannot see. Three of them are global correctness properties —
// every simulation path must be seed-deterministic (the sweep cache replays
// warm results byte-for-byte), every float64 carries its unit only in its
// name (bits vs bytes, Bps vs Kbps, seconds vs milliseconds), and library
// packages return errors instead of panicking — and two are bug-class
// gates (float equality, silently dropped errors).
//
// The suite is built on go/parser and go/types with the source importer
// only, so it works offline with zero module dependencies and runs as a
// tier-1 gate next to go vet.
//
// Suppressions: a finding may be waived with a comment on the flagged line
// or the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a reason-less suppression is itself reported
// (analyzer name "allow"). Suppressions are per-line and per-analyzer.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	// Pos locates the violation (file, line, column).
	Pos token.Position
	// Analyzer is the reporting analyzer's name (determinism, units,
	// nopanic, floateq, errdrop, or allow for broken suppressions).
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the finding in the canonical file:line: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Config selects which packages each analyzer inspects. Package entries are
// import-path suffixes ("internal/sim" matches cava/internal/sim); file
// entries are slash-path suffixes relative to the module root.
type Config struct {
	// DeterministicPkgs is the package set whose behaviour must be a pure
	// function of explicit seeds: the simulator and everything feeding it.
	// The determinism analyzer flags wall-clock reads, global math/rand
	// use, and order-dependent map iteration here.
	DeterministicPkgs []string
	// DeterminismAllowFiles are files inside DeterministicPkgs exempt from
	// the determinism analyzer: the real Clock implementation is the single
	// place allowed to call time.Now.
	DeterminismAllowFiles []string
	// UnitsPkgs is the domain set whose numeric identifiers must carry
	// explicit unit suffixes.
	UnitsPkgs []string
}

// DefaultConfig is the repository configuration: the deterministic set is
// every package the sweep cache assumes replays byte-identically, plus
// internal/dash whose only wall-clock access is the Clock interface's real
// implementation (clock.go, allowlisted). internal/telemetry stays outside
// the deterministic set: it timestamps real traffic by design.
func DefaultConfig() Config {
	return Config{
		DeterministicPkgs: []string{
			"internal/sim", "internal/experiments", "internal/player",
			"internal/video", "internal/trace", "internal/scene",
			"internal/abr", "internal/metrics", "internal/cache",
			"internal/qoe", "internal/quality", "internal/oracle",
			"internal/report", "internal/core", "internal/bandwidth",
			"internal/plot", "internal/cliutil", "internal/lint",
			"internal/dash", "internal/edge", "internal/fleet",
		},
		DeterminismAllowFiles: []string{"internal/dash/clock.go"},
		UnitsPkgs: []string{
			"internal/video", "internal/trace", "internal/player",
			"internal/abr", "internal/bandwidth", "internal/qoe",
			"internal/metrics", "internal/core", "internal/oracle",
			"internal/edge", "internal/fleet",
		},
	}
}

// pkgSelected reports whether an import path is in the suffix set.
func pkgSelected(path string, set []string) bool {
	for _, s := range set {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// fileSelected reports whether a filename is in the slash-suffix set.
func fileSelected(filename string, set []string) bool {
	f := strings.ReplaceAll(filename, "\\", "/")
	for _, s := range set {
		if f == s || strings.HasSuffix(f, "/"+s) {
			return true
		}
	}
	return false
}

// Analyzer is one check over a type-checked package.
type Analyzer struct {
	Name string
	Run  func(*Package, Config) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "determinism", Run: runDeterminism},
		{Name: "units", Run: runUnits},
		{Name: "nopanic", Run: runNoPanic},
		{Name: "floateq", Run: runFloatEq},
		{Name: "errdrop", Run: runErrDrop},
	}
}

// Run loads every package under the given root directories and applies the
// suite, returning the surviving (non-suppressed) findings sorted by
// position. Load errors (parse or type-check failures) are returned as an
// error: the suite only analyzes code that compiles.
func Run(root string, cfg Config) ([]Finding, error) {
	pkgs, err := LoadTree(root)
	if err != nil {
		return nil, err
	}
	return Analyze(pkgs, cfg), nil
}

// Analyze applies the suite to already-loaded packages.
func Analyze(pkgs []*Package, cfg Config) []Finding {
	var all []Finding
	for _, p := range pkgs {
		sup := collectSuppressions(p)
		all = append(all, sup.broken...)
		for _, a := range Analyzers() {
			for _, f := range a.Run(p, cfg) {
				if !sup.allows(a.Name, f.Pos) {
					all = append(all, f)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}
