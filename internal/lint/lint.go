// Package lint is abrlint's analyzer suite: project-specific static
// analysis that enforces the invariants this reproduction rests on but the
// compiler cannot see. Three of them are global correctness properties —
// every simulation path must be seed-deterministic (the sweep cache replays
// warm results byte-for-byte), every float64 carries its unit only in its
// name (bits vs bytes, Bps vs Kbps, seconds vs milliseconds), and library
// packages return errors instead of panicking — two are bug-class gates
// (float equality, silently dropped errors), and five guard the
// fleet-scale concurrency and allocation contracts (hotalloc, locks,
// goroleak, atomicmix, metricname) that are otherwise pinned only
// dynamically by testing.AllocsPerRun and -race soaks.
//
// The suite is built on go/parser and go/types with the source importer
// only, so it works offline with zero module dependencies and runs as a
// tier-1 gate next to go vet. Analysis fans out across GOMAXPROCS workers
// per package; output order is position-sorted and identical to a
// sequential run.
//
// Suppressions: a finding may be waived with a comment on the flagged line
// or on the directive stack directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a reason-less directive, or one naming an
// unknown analyzer, is itself reported (analyzer name "allow").
// Suppressions are per-line and per-analyzer; consecutive directive lines
// stack, so several analyzers can be waived above one flagged line.
package lint

import (
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one reported violation.
type Finding struct {
	// Pos locates the violation (file, line, column).
	Pos token.Position
	// Analyzer is the reporting analyzer's name (one of Analyzers, or
	// "allow" for broken suppression directives).
	Analyzer string
	// Message describes the violation.
	Message string
	// Suppressed marks a finding waived by a lint:allow directive. The CLI
	// exit status and the repo-clean gate ignore suppressed findings; the
	// -json output carries them so tooling can audit the waiver set.
	Suppressed bool
}

// String renders the finding in the canonical file:line: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Config selects which packages each analyzer inspects. Package entries are
// import-path suffixes ("internal/sim" matches cava/internal/sim); file
// entries are slash-path suffixes relative to the module root.
type Config struct {
	// DeterministicPkgs is the package set whose behaviour must be a pure
	// function of explicit seeds: the simulator and everything feeding it.
	// The determinism analyzer flags wall-clock reads, global math/rand
	// use, and order-dependent map iteration here.
	DeterministicPkgs []string
	// DeterminismAllowFiles are files inside DeterministicPkgs exempt from
	// the determinism analyzer: the real Clock implementation is the single
	// place allowed to call time.Now.
	DeterminismAllowFiles []string
	// UnitsPkgs is the domain set whose numeric identifiers must carry
	// explicit unit suffixes.
	UnitsPkgs []string
	// HotPathFuncs is the zero-alloc hot-path set the hotalloc analyzer
	// inspects: "pkg-suffix:FuncName" entries naming functions (or methods,
	// by bare name) that run once per simulated event and must not allocate
	// in the steady state.
	HotPathFuncs []string
}

// DefaultConfig is the repository configuration: the deterministic set is
// every package the sweep cache assumes replays byte-identically, plus
// internal/dash whose only wall-clock access is the Clock interface's real
// implementation (clock.go, allowlisted). internal/telemetry stays outside
// the deterministic set: it timestamps real traffic by design.
func DefaultConfig() Config {
	return Config{
		DeterministicPkgs: []string{
			"internal/sim", "internal/experiments", "internal/player",
			"internal/video", "internal/trace", "internal/scene",
			"internal/abr", "internal/metrics", "internal/cache",
			"internal/qoe", "internal/quality", "internal/oracle",
			"internal/report", "internal/core", "internal/bandwidth",
			"internal/plot", "internal/cliutil", "internal/lint",
			"internal/dash", "internal/edge", "internal/fleet",
		},
		DeterminismAllowFiles: []string{"internal/dash/clock.go"},
		UnitsPkgs: []string{
			"internal/video", "internal/trace", "internal/player",
			"internal/abr", "internal/bandwidth", "internal/qoe",
			"internal/metrics", "internal/core", "internal/oracle",
			"internal/edge", "internal/fleet",
		},
		// The hot-path set is exactly the per-event code the fleet engine's
		// zero-alloc guards (testing.AllocsPerRun) pin dynamically: the
		// player chunk-step core, the fleet drain/shard loop and event heap,
		// and the bandwidth predictor ring.
		HotPathFuncs: []string{
			"internal/player:Advance", "internal/player:BeginChunk",
			"internal/player:WantDelay", "internal/player:FullBufferWait",
			"internal/player:Refresh", "internal/player:Decide",
			"internal/player:FinishDownload", "internal/player:SkipChunk",
			"internal/player:MaybeStartup", "internal/player:NextChunk",
			"internal/player:drainFor", "internal/player:ElapseTo",
			"internal/player:AddStall", "internal/player:NoteWait",
			"internal/fleet:drain", "internal/fleet:runBatch",
			"internal/fleet:stepSession", "internal/fleet:advanceSession",
			"internal/fleet:observeChunk",
			"internal/fleet:finishSession", "internal/fleet:drainInstant",
			"internal/fleet:push", "internal/fleet:pop",
			"internal/fleet:peek", "internal/fleet:eventLess",
			"internal/fleet:gate",
			"internal/bandwidth:ObserveDownload", "internal/bandwidth:Predict",
			"internal/bandwidth:Reset",
		},
	}
}

// pkgSelected reports whether an import path is in the suffix set.
func pkgSelected(path string, set []string) bool {
	for _, s := range set {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// fileSelected reports whether a filename is in the slash-suffix set.
func fileSelected(filename string, set []string) bool {
	f := strings.ReplaceAll(filename, "\\", "/")
	for _, s := range set {
		if f == s || strings.HasSuffix(f, "/"+s) {
			return true
		}
	}
	return false
}

// Analyzer is one check over a type-checked package.
type Analyzer struct {
	Name string
	Run  func(*Package, Config) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "determinism", Run: runDeterminism},
		{Name: "units", Run: runUnits},
		{Name: "nopanic", Run: runNoPanic},
		{Name: "floateq", Run: runFloatEq},
		{Name: "errdrop", Run: runErrDrop},
		{Name: "hotalloc", Run: runHotAlloc},
		{Name: "locks", Run: runLocks},
		{Name: "goroleak", Run: runGoroleak},
		{Name: "atomicmix", Run: runAtomicMix},
		{Name: "metricname", Run: runMetricName},
	}
}

// AnalyzerNames returns every valid analyzer name, including "allow" (the
// pseudo-analyzer broken suppression directives report under). The
// suppression scanner validates lint:allow directives against this set.
func AnalyzerNames() []string {
	names := make([]string, 0, 11)
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return append(names, "allow")
}

// Run loads every package under the given root directories and applies the
// suite, returning the surviving (non-suppressed) findings sorted by
// position. Load errors (parse or type-check failures) are returned as an
// error: the suite only analyzes code that compiles.
func Run(root string, cfg Config) ([]Finding, error) {
	all, err := RunAll(root, cfg)
	if err != nil {
		return nil, err
	}
	return dropSuppressed(all), nil
}

// RunAll is Run including suppressed findings (marked, not dropped) — the
// -json audit view.
func RunAll(root string, cfg Config) ([]Finding, error) {
	pkgs, err := LoadTree(root)
	if err != nil {
		return nil, err
	}
	return AnalyzeAll(pkgs, cfg), nil
}

// Analyze applies the suite to already-loaded packages and returns the
// surviving (non-suppressed) findings.
func Analyze(pkgs []*Package, cfg Config) []Finding {
	return dropSuppressed(AnalyzeAll(pkgs, cfg))
}

// AnalyzeAll applies the suite to already-loaded packages, fanning the
// per-package analysis out across GOMAXPROCS workers, and returns every
// finding — suppressed ones marked — in deterministic position order.
func AnalyzeAll(pkgs []*Package, cfg Config) []Finding {
	return analyzeAll(pkgs, cfg, runtime.GOMAXPROCS(0))
}

// analyzeAll runs the suite with an explicit worker count. Findings are
// collected per package and flattened in package order, then sorted, so
// the output is bit-identical for every worker count (the equivalence is
// pinned by TestParallelAnalysisMatchesSequential).
func analyzeAll(pkgs []*Package, cfg Config, workers int) []Finding {
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	perPkg := make([][]Finding, len(pkgs))
	if workers <= 1 {
		for i, p := range pkgs {
			perPkg[i] = analyzePackage(p, cfg)
		}
	} else {
		// Static interleaved partition: package i goes to worker i%workers.
		// Analyzers only read shared state (ASTs, type info, the mutex-
		// guarded FileSet), so the fan-out is race-free by construction.
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(pkgs); i += workers {
					perPkg[i] = analyzePackage(pkgs[i], cfg)
				}
			}(w)
		}
		wg.Wait()
	}
	var all []Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	sortFindings(all)
	return all
}

// analyzePackage applies every analyzer to one package, marking suppressed
// findings instead of dropping them.
func analyzePackage(p *Package, cfg Config) []Finding {
	sup := collectSuppressions(p)
	all := append([]Finding(nil), sup.broken...)
	for _, a := range Analyzers() {
		for _, f := range a.Run(p, cfg) {
			f.Suppressed = sup.allows(a.Name, f.Pos)
			all = append(all, f)
		}
	}
	return all
}

// sortFindings orders findings by (file, line, column, analyzer, message)
// — a total order, so parallel and sequential runs print identically.
func sortFindings(all []Finding) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// dropSuppressed filters marked-suppressed findings out.
func dropSuppressed(all []Finding) []Finding {
	out := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
