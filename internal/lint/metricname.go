package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// The metricname analyzer is the telemetry-facing face of the units
// convention: every name registered through telemetry.Registry's Counter,
// Gauge, and Histogram methods must be Prometheus-conformant, because the
// /metrics endpoint exposes them verbatim and downstream dashboards key on
// them. The rules:
//
//   - names are snake_case: lowercase words joined by single underscores;
//   - the name must be a compile-time constant string, so the convention
//     is checkable at all (per-label cardinality belongs in labels, not in
//     generated names);
//   - counters end in `_total` (the Prometheus counter convention);
//   - gauges must NOT end in `_total` (a gauge is a level, not a count);
//   - histograms end in an explicit unit: `_seconds`, `_sec`, `_ms`,
//     `_bytes`, or `_bits`;
//   - a gauge whose final word is a bare quantity stem (the units
//     analyzer's list: size, duration, latency, …) is unit-ambiguous and
//     needs the unit spelled out (`_bytes`, `_seconds`, …).
//
// Receivers are matched by type name (Registry) and package name
// (telemetry), so fixtures exercise the analyzer with a stub package.

var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// histogramUnits are the accepted histogram unit suffixes.
var histogramUnits = []string{"_seconds", "_sec", "_ms", "_bytes", "_bits"}

func runMetricName(p *Package, cfg Config) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registryMetricKind(p.Info, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			flag := func(format string, args ...any) {
				out = append(out, Finding{
					Pos: p.Fset.Position(call.Args[0].Pos()), Analyzer: "metricname",
					Message: fmt.Sprintf(format, args...),
				})
			}
			name, isConst := constString(p.Info, call.Args[0])
			if !isConst {
				flag("%s name must be a compile-time constant string; put per-instance dimensions in labels", kind)
				return true
			}
			if !metricNameRe.MatchString(name) {
				flag("%s name %q is not Prometheus snake_case (lowercase words joined by single underscores)", kind, name)
				return true
			}
			switch kind {
			case "Counter":
				if !strings.HasSuffix(name, "_total") {
					flag("counter name %q must end in _total", name)
				}
			case "Gauge":
				if strings.HasSuffix(name, "_total") {
					flag("gauge name %q must not end in _total; a gauge is a level, not a count", name)
				} else if stem := bareStem(name); stem != "" {
					flag("gauge name %q ends in the bare quantity stem %q; spell out the unit (_bytes, _seconds, ...)", name, stem)
				}
			case "Histogram":
				if !hasAnySuffix(name, histogramUnits) {
					flag("histogram name %q must end in a unit suffix (%s)", name, strings.Join(histogramUnits, ", "))
				}
			}
			return true
		})
	}
	return out
}

// registryMetricKind recognizes a Counter/Gauge/Histogram call on a
// telemetry.Registry receiver (matched by type and package *name*, so the
// fixture's stub telemetry package exercises the analyzer too).
func registryMetricKind(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "telemetry" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", false
	}
	return sel.Sel.Name, true
}

// constString evaluates a compile-time constant string expression.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// bareStem returns the name's final underscore word when it is a bare
// quantity stem from the units analyzer's list, else "".
func bareStem(name string) string {
	last := name
	if i := strings.LastIndexByte(name, '_'); i >= 0 {
		last = name[i+1:]
	}
	if unitStems[last] {
		return last
	}
	return ""
}

// hasAnySuffix reports whether s ends in any of the suffixes.
func hasAnySuffix(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}
