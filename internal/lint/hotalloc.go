package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The hotalloc analyzer guards the zero-alloc hot paths the fleet engine's
// scale rests on: the player chunk-step core, the fleet drain/shard loop
// and its event heap, and the bandwidth predictor ring all run once per
// simulated event, and BENCH_fleet's 1M-session point only holds while
// those paths allocate nothing in the steady state. The dynamic guards
// (testing.AllocsPerRun) catch a regression after the fact; this analyzer
// names the construct that caused it at review time.
//
// Inside functions named by Config.HotPathFuncs it flags every
// allocation-inducing construct:
//
//   - function literals (a closure captures its environment on the heap;
//     bind a method value once at setup instead);
//   - make and new calls (fresh backing memory per event);
//   - append calls (a grow re-allocates the backing array; preallocate to
//     capacity at init and waive the call with the reason);
//   - fmt.* calls (formatting boxes every variadic argument into an any);
//   - conversions to an interface type, and concrete arguments passed to
//     interface-typed parameters (interface boxing);
//   - string <-> []byte / []rune conversions (each copies the payload);
//   - taking the address of a composite literal (escapes to the heap).
//
// Provably amortized constructs — appends into buffers preallocated at
// init — carry a `//lint:allow hotalloc <reason>` naming the preallocation
// site; everything else gets fixed, not waived.

func runHotAlloc(p *Package, cfg Config) []Finding {
	hot := hotFuncsFor(p.Path, cfg.HotPathFuncs)
	if len(hot) == 0 {
		return nil
	}
	var out []Finding
	flag := func(n ast.Node, msg string) {
		out = append(out, Finding{
			Pos: p.Fset.Position(n.Pos()), Analyzer: "hotalloc", Message: msg,
		})
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hot[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					flag(n, "closure allocates on the hot path; bind a method value or func variable once at setup")
					return false // the literal runs off the per-event path
				case *ast.UnaryExpr:
					if _, lit := n.X.(*ast.CompositeLit); lit && n.Op.String() == "&" {
						flag(n, "address of a composite literal escapes to the heap on the hot path; reuse a preallocated value")
					}
				case *ast.CallExpr:
					out = append(out, hotCallFindings(p, n)...)
				}
				return true
			})
		}
	}
	return out
}

// hotFuncsFor resolves the "pkg-suffix:FuncName" hot-path entries that
// apply to one package into a function-name set.
func hotFuncsFor(path string, entries []string) map[string]bool {
	var hot map[string]bool
	for _, e := range entries {
		i := strings.LastIndex(e, ":")
		if i < 0 || !pkgSelected(path, []string{e[:i]}) {
			continue
		}
		if hot == nil {
			hot = map[string]bool{}
		}
		hot[e[i+1:]] = true
	}
	return hot
}

// hotCallFindings classifies one call expression on a hot path.
func hotCallFindings(p *Package, call *ast.CallExpr) []Finding {
	var out []Finding
	flag := func(msg string) {
		out = append(out, Finding{
			Pos: p.Fset.Position(call.Pos()), Analyzer: "hotalloc", Message: msg,
		})
	}

	// Builtins: append grows, make/new allocate by definition.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch {
		case id.Name == "append" && p.Info.Uses[id] == types.Universe.Lookup("append"):
			flag("append may grow the backing array on the hot path; preallocate capacity at init (waive with the preallocation site as the reason)")
		case (id.Name == "make" || id.Name == "new") && p.Info.Uses[id] == types.Universe.Lookup(id.Name):
			flag(id.Name + " allocates on the hot path; allocate once at init and reuse")
		}
	}

	// fmt.* boxes every variadic argument and allocates the result.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && pkgNameOf(p.Info, sel.X) == "fmt" {
		flag(fmt.Sprintf("fmt.%s allocates and boxes its arguments on the hot path; move formatting off the per-event path", sel.Sel.Name))
		return out
	}

	// Conversions: T(x) where the call's Fun is a type.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		out = append(out, conversionFindings(p, call, tv.Type)...)
		return out
	}

	// Concrete arguments passed to interface-typed parameters box.
	out = append(out, boxingFindings(p, call)...)
	return out
}

// conversionFindings flags allocating conversions: to an interface type,
// or between string and byte/rune slices.
func conversionFindings(p *Package, call *ast.CallExpr, target types.Type) []Finding {
	argTV, ok := p.Info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return nil
	}
	pos := p.Fset.Position(call.Pos())
	if types.IsInterface(target.Underlying()) && !types.IsInterface(argTV.Type.Underlying()) {
		return []Finding{{Pos: pos, Analyzer: "hotalloc",
			Message: fmt.Sprintf("conversion of %s to interface type %s boxes on the hot path", argTV.Type, target)}}
	}
	if stringSliceConv(target, argTV.Type) || stringSliceConv(argTV.Type, target) {
		return []Finding{{Pos: pos, Analyzer: "hotalloc",
			Message: fmt.Sprintf("conversion %s -> %s copies the payload on the hot path", argTV.Type, target)}}
	}
	return nil
}

// stringSliceConv reports a string -> []byte/[]rune shape (either
// direction is checked by calling it twice with swapped arguments).
func stringSliceConv(from, to types.Type) bool {
	fb, ok := from.Underlying().(*types.Basic)
	if !ok || fb.Info()&types.IsString == 0 {
		return false
	}
	ts, ok := to.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	eb, ok := ts.Elem().Underlying().(*types.Basic)
	return ok && (eb.Kind() == types.Byte || eb.Kind() == types.Rune ||
		eb.Kind() == types.Uint8 || eb.Kind() == types.Int32)
}

// boxingFindings flags concrete (non-interface) arguments passed to
// interface-typed parameters: each such pass may heap-allocate the boxed
// value. Untyped nil never boxes.
func boxingFindings(p *Package, call *ast.CallExpr) []Finding {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []Finding
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(np - 1).Type() // x... passes the slice itself
			} else {
				pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := p.Info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		out = append(out, Finding{
			Pos: p.Fset.Position(arg.Pos()), Analyzer: "hotalloc",
			Message: fmt.Sprintf("passing %s to an interface-typed parameter boxes on the hot path", at.Type),
		})
	}
	return out
}
