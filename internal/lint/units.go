package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
	"unicode"
)

// The units analyzer enforces the repository's unit-suffix convention:
// every quantity is a raw number whose unit lives only in its name, so a
// numeric struct field, function parameter, or constant whose name ends in
// a bare quantity stem (Bitrate, Size, Dur, Delay, Interval, Throughput,
// …) is ambiguous — is ChunkDur seconds or milliseconds? is Size bits or
// bytes? Such names must carry one of the explicit unit suffixes:
//
//	…Bits …Bytes …Kbps …Bps …Sec …Ms
//
// Only the configured domain packages are checked. Quantities measured in
// other units (counts of chunks, samples, …) use a lint:allow directive
// naming the actual unit.

// unitStems are the quantity words that demand a unit suffix when they end
// a name. Plural size ("Sizes", for slices) counts.
var unitStems = map[string]bool{
	"bitrate": true, "size": true, "sizes": true,
	"dur": true, "duration": true, "delay": true,
	"interval": true, "throughput": true, "bandwidth": true,
	"latency": true, "timeout": true,
}

// unitSuffixes are the accepted explicit units.
var unitSuffixes = []string{"Bits", "Bytes", "Kbps", "Bps", "Sec", "Ms"}

func runUnits(p *Package, cfg Config) []Finding {
	if !pkgSelected(p.Path, cfg.UnitsPkgs) {
		return nil
	}
	var out []Finding
	flag := func(id *ast.Ident, kind string) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := p.Info.Defs[id]
		if obj == nil || !numericType(obj.Type()) {
			return
		}
		if !needsUnitSuffix(id.Name) {
			return
		}
		out = append(out, Finding{
			Pos: p.Fset.Position(id.Pos()), Analyzer: "units",
			Message: fmt.Sprintf("numeric %s %q is unit-ambiguous; add a unit suffix (%s)",
				kind, id.Name, strings.Join(unitSuffixes, "/")),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					for _, name := range fld.Names {
						flag(name, "field")
					}
				}
			case *ast.FuncType:
				if n.Params != nil {
					for _, fld := range n.Params.List {
						for _, name := range fld.Names {
							flag(name, "parameter")
						}
					}
				}
			case *ast.GenDecl:
				if n.Tok.String() == "const" {
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							flag(name, "constant")
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// needsUnitSuffix reports whether the name's final camel-case word is a
// bare quantity stem. A name already ending in a unit suffix never matches
// (its final word is the suffix, not a stem).
func needsUnitSuffix(name string) bool {
	return unitStems[strings.ToLower(lastCamelWord(name))]
}

// lastCamelWord returns the final camel-case word of an identifier
// ("AvgBitrate" -> "Bitrate", "ChunkDurSec" -> "Sec", "size" -> "size").
func lastCamelWord(name string) string {
	runes := []rune(name)
	end := len(runes)
	// Trim a trailing acronym/digit run to its own word boundary.
	i := end - 1
	for i > 0 && !unicode.IsUpper(runes[i]) {
		i--
	}
	if i == 0 && !unicode.IsUpper(runes[0]) {
		return name // single all-lower word
	}
	return string(runes[i:])
}

// numericType reports whether t is an integer/float type or a slice/array
// of one (the shapes quantities take in this repository).
func numericType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsInteger|types.IsFloat|types.IsUntyped) != 0 &&
			u.Info()&(types.IsBoolean|types.IsString) == 0
	case *types.Slice:
		return numericType(u.Elem())
	case *types.Array:
		return numericType(u.Elem())
	}
	return false
}
