package experiments

import (
	"fmt"
	"strings"

	"cava/internal/bandwidth"
	"cava/internal/cache"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("table1", "Table 1: CAVA vs RobustMPC and PANDA/CQ max-min across videos (LTE and FCC)", runTable1)
	register("codec", "§6.5: codec impact (H.265 vs H.264)", runCodec)
	register("cap4x", "§6.6: higher bitrate variability (4x-capped ED)", runCap4x)
	register("prederr", "§6.7: impact of bandwidth prediction error", runPredErr)
}

// table1Videos returns the paper's Table 1 rows: the 8 YouTube videos under
// LTE and the 4 open titles under FCC.
func table1Videos(c *cache.Cache) (lte, fcc []*video.Video) {
	lte = c.GenerateAll(video.YouTubeSetConfigs())
	for _, t := range video.OpenTitles {
		fcc = append(fcc, c.Generate(video.YouTubeConfig(t)))
	}
	return lte, fcc
}

// runTable1 regenerates Table 1: per-video changes by CAVA relative to
// RobustMPC and PANDA/CQ max-min on the five metrics. Cells hold two
// values (vs RobustMPC, vs PANDA/CQ max-min), matching the paper's layout.
func runTable1(opt Options) (*Result, error) {
	lteVideos, fccVideos := table1Videos(opt.cache())
	var sb strings.Builder
	header := []string{"set", "video", "Q4 qual", "low-qual %", "stall %", "qual chg %", "data %"}
	var rows [][]string

	run := func(set string, videos []*video.Video, traces []*trace.Trace, metric quality.Metric) error {
		res, err := sim.Run(sim.Request{
			Videos:  videos,
			Traces:  traces,
			Schemes: comparisonSchemes(),
			Config:  defaultConfig(),
			Metric:  metric,
			Workers: opt.Workers,
			Cache:   opt.cache(),
		})
		if err != nil {
			return err
		}
		for _, v := range videos {
			cava := meansOf(res.Summaries("CAVA", v.ID()))
			robust := meansOf(res.Summaries("RobustMPC", v.ID()))
			panda := meansOf(res.Summaries("PANDA/CQ max-min", v.ID()))
			dr := deltaRow(cava, robust)
			dp := deltaRow(cava, panda)
			row := []string{set, v.Name}
			for i := range dr {
				row = append(row, dr[i]+", "+dp[i])
			}
			rows = append(rows, row)
		}
		return nil
	}
	if err := run("LTE", lteVideos, trace.GenLTESet(opt.traces()), quality.VMAFPhone); err != nil {
		return nil, err
	}
	if err := run("FCC", fccVideos, trace.GenFCCSet(opt.traces()), quality.VMAFTV); err != nil {
		return nil, err
	}

	sb.WriteString(table(header, rows))
	sb.WriteString("\neach cell: change by CAVA relative to RobustMPC, PANDA/CQ max-min\n")
	sb.WriteString("Q4 qual in VMAF points (↑ better); other columns in % (↓ better)\n")
	return &Result{ID: "table1", Title: Title("table1"), Text: sb.String()}, nil
}

// runCodec reproduces §6.5: the comparison repeated on the H.265 encodes,
// reporting CAVA's deltas and the absolute quality lift H.265 brings.
func runCodec(opt Options) (*Result, error) {
	var sb strings.Builder
	traces := trace.GenLTESet(opt.traces())
	header := []string{"codec", "video", "CAVA Q4", "ΔQ4 vs RMPC", "ΔQ4 vs PANDA", "Δrebuf vs RMPC", "Δlow% vs RMPC", "Δchg% vs RMPC"}
	var rows [][]string
	for _, codec := range []video.Codec{video.H264, video.H265} {
		var videos []*video.Video
		for _, t := range video.OpenTitles {
			videos = append(videos, opt.cache().Generate(video.FFmpegConfig(t, codec)))
		}
		res, err := sim.Run(sim.Request{
			Videos:  videos,
			Traces:  traces,
			Schemes: comparisonSchemes(),
			Config:  defaultConfig(),
			Metric:  quality.VMAFPhone,
			Workers: opt.Workers,
			Cache:   opt.cache(),
		})
		if err != nil {
			return nil, err
		}
		for _, v := range videos {
			cava := meansOf(res.Summaries("CAVA", v.ID()))
			robust := meansOf(res.Summaries("RobustMPC", v.ID()))
			panda := meansOf(res.Summaries("PANDA/CQ max-min", v.ID()))
			rows = append(rows, []string{
				codec.String(), v.Name,
				f1(cava.q4),
				f1(cava.q4 - robust.q4),
				f1(cava.q4 - panda.q4),
				fmt.Sprintf("%.0f%%", metrics.DeltaPct(cava.reb, robust.reb)),
				fmt.Sprintf("%.0f%%", metrics.DeltaPct(cava.low, robust.low)),
				fmt.Sprintf("%.0f%%", metrics.DeltaPct(cava.chg, robust.chg)),
			})
		}
	}
	sb.WriteString(table(header, rows))
	sb.WriteString("\n(H.265 tracks need ~0.62x the bits of H.264, so every scheme improves; CAVA's lead persists)\n")
	return &Result{ID: "codec", Title: Title("codec"), Text: sb.String()}, nil
}

// runCap4x reproduces §6.6 on the 4x-capped Elephant Dream encode.
func runCap4x(opt Options) (*Result, error) {
	v4 := opt.cache().Generate(video.Cap4xConfig())
	v2 := edFFmpeg()
	traces := trace.GenLTESet(opt.traces())
	var sb strings.Builder
	header := []string{"cap", "scheme", "Q4 qual", "low-qual %", "rebuf (s)", "qual chg", "data MB"}
	var rows [][]string
	for _, v := range []*video.Video{v2, v4} {
		res, err := sim.Run(sim.Request{
			Videos:  []*video.Video{v},
			Traces:  traces,
			Schemes: comparisonSchemes(),
			Config:  defaultConfig(),
			Metric:  quality.VMAFPhone,
			Workers: opt.Workers,
			Cache:   opt.cache(),
		})
		if err != nil {
			return nil, err
		}
		for _, s := range []string{"CAVA", "RobustMPC", "PANDA/CQ max-min"} {
			m := meansOf(res.Summaries(s, v.ID()))
			rows = append(rows, []string{
				fmt.Sprintf("%.0fx", v.Cap), s,
				f1(m.q4), f1(m.low), f1(m.reb), f2(m.chg), f1(m.mb),
			})
		}
	}
	sb.WriteString(table(header, rows))
	sb.WriteString("\n(the §3.3 characteristics persist under the 4x cap, and so does CAVA's advantage)\n")
	return &Result{ID: "cap4x", Title: Title("cap4x"), Text: sb.String()}, nil
}

// runPredErr reproduces §6.7: a controlled uniform prediction error err in
// {0, 25%, 50%} injected via a noisy oracle predictor. CAVA's feedback
// loop absorbs the error; MPC rebuffers and over-downloads; PANDA/CQ
// max-min rebuffers noticeably more.
func runPredErr(opt Options) (*Result, error) {
	v := edFFmpeg()
	traces := trace.GenLTESet(opt.traces())
	schemes := []string{"CAVA", "MPC", "PANDA/CQ max-min"}
	var sb strings.Builder
	header := []string{"err", "scheme", "Q4 qual", "low-qual %", "rebuf (s)", "data MB"}
	var rows [][]string
	for _, errLevel := range []float64{0, 0.25, 0.5} {
		errLevel := errLevel
		res, err := sim.Run(sim.Request{
			Videos:  []*video.Video{v},
			Traces:  traces,
			Schemes: comparisonSchemes(),
			Config:  defaultConfig(),
			Metric:  quality.VMAFPhone,
			Workers: opt.Workers,
			// PredictorFor makes the sweep unfingerprintable, so only the
			// per-video artifacts are cached — the sessions always run.
			Cache: opt.cache(),
			PredictorFor: func(vv *video.Video, tr *trace.Trace) player.Config {
				cfg := defaultConfig()
				cfg.Predictor = bandwidth.NewNoisyOracle(tr, errLevel, seedFromID(tr.ID))
				return cfg
			},
		})
		if err != nil {
			return nil, err
		}
		for _, s := range schemes {
			m := meansOf(res.Summaries(s, v.ID()))
			rows = append(rows, []string{
				fmt.Sprintf("%.0f%%", errLevel*100), s,
				f1(m.q4), f1(m.low), f1(m.reb), f1(m.mb),
			})
		}
	}
	sb.WriteString(table(header, rows))
	sb.WriteString("\n(predictions drawn uniformly from C(t)(1±err); CAVA's control loop corrects the error)\n")
	return &Result{ID: "prederr", Title: Title("prederr"), Text: sb.String()}, nil
}

func seedFromID(id string) int64 {
	var s int64 = 7
	for _, r := range id {
		s = s*31 + int64(r)
	}
	return s
}
