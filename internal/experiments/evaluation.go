package experiments

import (
	"fmt"
	"math"
	"strings"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/plot"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("fig4", "Fig. 4: myopic schemes (BBA-1, RBA) vs CAVA on Q4 chunk quality", runFig4)
	register("fig7", "Fig. 7: impact of the inner controller window size W", runFig7)
	register("fig7b", "§6.2: impact of the outer controller window size W'", runFig7b)
	register("fig8", "Fig. 8: 5-metric comparison, ED (FFmpeg, H.264), LTE traces", runFig8)
	register("fig9", "Fig. 9: quality of Q1-Q3 chunks and all chunks", runFig9)
	register("fig10", "Fig. 10: ablation of the three design principles (p1/p12/p123)", runFig10)
}

// runFig4 replays one LTE trace under the two myopic schemes and CAVA,
// printing the per-chunk quality timeline with Q4 positions marked, plus
// the summary the paper quotes (average Q4 VMAF and rebuffering).
func runFig4(opt Options) (*Result, error) {
	v := edYouTube()
	qt := opt.cache().QualityTable(v, quality.VMAFPhone)
	cats := opt.cache().Categories(v)
	cfg := defaultConfig()
	// Pick an illustrative trace, as the paper's Fig. 4 does: one where
	// CAVA streams stall-free and the myopic schemes' Q4 deficit shows.
	tr := trace.GenLTE(0)
	bestGap := math.Inf(-1)
	for ti := 0; ti < 12; ti++ {
		cand := trace.GenLTE(ti)
		cres, err := player.Simulate(v, cand, cavaScheme().New(v), cfg)
		if err != nil {
			return nil, err
		}
		bres, err := player.Simulate(v, cand, bbaScheme().New(v), cfg)
		if err != nil {
			return nil, err
		}
		rres, err := player.Simulate(v, cand, rbaScheme().New(v), cfg)
		if err != nil {
			return nil, err
		}
		cs := metrics.Summarize(cres, qt, cats)
		bs := metrics.Summarize(bres, qt, cats)
		rs := metrics.Summarize(rres, qt, cats)
		if cs.RebufferSec > 0 {
			continue
		}
		gap := cs.Q4Quality - math.Max(bs.Q4Quality, rs.Q4Quality)
		if gap > bestGap {
			bestGap = gap
			tr = cand
		}
	}

	var sb strings.Builder
	marks := make([]string, 0, v.NumChunks())
	for i := 0; i < v.NumChunks(); i++ {
		if scene.IsComplex(cats[i]) {
			marks = append(marks, fmt.Sprint(i))
		}
	}
	fmt.Fprintf(&sb, "video %s, trace %s; Q4 chunk positions: %s\n\n", v.ID(), tr.ID, strings.Join(marks, " "))

	header := []string{"scheme", "avg Q4 VMAF", "rebuffer(s)", "avg all VMAF"}
	var rows [][]string
	var timelines []string
	var qualSeries [][]float64
	var schemesOrder []string
	for _, sc := range []abr.Scheme{bbaScheme(), rbaScheme(), cavaScheme()} {
		res, err := player.Simulate(v, tr, sc.New(v), cfg)
		if err != nil {
			return nil, err
		}
		s := metrics.Summarize(res, qt, cats)
		rows = append(rows, []string{sc.Name, f1(s.Q4Quality), f1(s.RebufferSec), f1(s.AvgQuality)})
		parts := make([]string, len(s.ChunkQualities))
		for i, q := range s.ChunkQualities {
			parts[i] = fmt.Sprintf("%.0f", q)
		}
		timelines = append(timelines, fmt.Sprintf("%-8s %s", sc.Name, strings.Join(parts, " ")))
		qualSeries = append(qualSeries, s.ChunkQualities)
		schemesOrder = append(schemesOrder, sc.Name)
	}
	sb.WriteString(table(header, rows))
	sb.WriteString("\nquality strip charts (higher block = higher VMAF):\n")
	hl := make([]bool, v.NumChunks())
	for i := range hl {
		hl[i] = scene.IsComplex(cats[i])
	}
	for si, series := range qualSeries {
		fmt.Fprintf(&sb, "%s\n%s", schemesOrder[si], plot.Timeline(series, hl, 100))
	}
	sb.WriteString("\nper-chunk VMAF timelines:\n")
	for _, tl := range timelines {
		sb.WriteString(tl + "\n")
	}
	return &Result{ID: "fig4", Title: Title("fig4"), Text: sb.String()}, nil
}

// windowSweep runs CAVA with one parameter override across the LTE set and
// reports Q4 quality and rebuffering (mean and 10th/90th percentiles).
func windowSweep(opt Options, values []float64, set func(*core.Params, float64)) ([][]string, error) {
	v := edFFmpeg()
	traces := trace.GenLTESet(opt.traces())
	var rows [][]string
	for _, val := range values {
		p := core.DefaultParams()
		set(&p, val)
		// The sweep rebuilds "CAVA" with different controller parameters
		// each iteration; Key carries the full parameter set so each
		// configuration fingerprints (and therefore memoizes) separately.
		sc := abr.Scheme{Name: "CAVA", Key: fmt.Sprintf("cava-params-%+v", p),
			New: func(v *video.Video) abr.Algorithm {
				return core.NewWith(v, p, core.AllPrinciples, "CAVA")
			}}
		res, err := sim.Run(sim.Request{
			Videos:  []*video.Video{v},
			Traces:  traces,
			Schemes: []abr.Scheme{sc},
			Config:  defaultConfig(),
			Metric:  quality.VMAFPhone,
			Workers: opt.Workers,
			Cache:   opt.cache(),
		})
		if err != nil {
			return nil, err
		}
		ss := res.Summaries("CAVA", v.ID())
		q4 := metrics.NewSorted(metrics.Collect(ss, metrics.FieldQ4Quality))
		reb := metrics.NewSorted(metrics.Collect(ss, metrics.FieldRebuffer))
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", val),
			f1(q4.Mean()), f1(q4.Percentile(10)), f1(q4.Percentile(90)),
			f1(reb.Mean()), f1(reb.Percentile(10)), f1(reb.Percentile(90)),
		})
	}
	return rows, nil
}

// runFig7 sweeps the inner window W. The paper's shape: Q4 quality rises
// then flattens; rebuffering rises slightly then sharply at large W.
func runFig7(opt Options) (*Result, error) {
	rows, err := windowSweep(opt, []float64{2, 10, 20, 40, 80, 120, 160},
		func(p *core.Params, v float64) { p.InnerWindowSec = v })
	if err != nil {
		return nil, err
	}
	header := []string{"W(s)", "Q4 mean", "Q4 p10", "Q4 p90", "rebuf mean", "rebuf p10", "rebuf p90"}
	return &Result{ID: "fig7", Title: Title("fig7"),
		Text: table(header, rows) + "\n(ED, FFmpeg H.264, LTE traces; paper picks W=40s)\n"}, nil
}

// runFig7b sweeps the outer window W'. Rebuffering decreases with W', with
// diminishing (or reversing) returns at very large windows.
func runFig7b(opt Options) (*Result, error) {
	rows, err := windowSweep(opt, []float64{20, 60, 100, 200, 400, 600},
		func(p *core.Params, v float64) { p.OuterWindowSec = v })
	if err != nil {
		return nil, err
	}
	header := []string{"W'(s)", "Q4 mean", "Q4 p10", "Q4 p90", "rebuf mean", "rebuf p10", "rebuf p90"}
	return &Result{ID: "fig7b", Title: Title("fig7b"),
		Text: table(header, rows) + "\n(ED, FFmpeg H.264, LTE traces; paper picks W'=200s)\n"}, nil
}

// fig8Run executes the Fig. 8 sweep and returns the results handle. Both
// runFig8 and runFig9 need exactly this sweep; with the cache enabled
// (the default) the second caller gets the memoized result, so one
// abreval/abrexport invocation executes the sweep once.
func fig8Run(opt Options) (*sim.Results, *video.Video, error) {
	v := edFFmpeg()
	res, err := sim.Run(sim.Request{
		Videos:  []*video.Video{v},
		Traces:  trace.GenLTESet(opt.traces()),
		Schemes: comparisonSchemes(),
		Config:  defaultConfig(),
		Metric:  quality.VMAFPhone,
		Workers: opt.Workers,
		Cache:   opt.cache(),
	})
	return res, v, err
}

// runFig8 prints the five metric CDFs for CAVA vs the MPC and PANDA
// baselines, plus the headline statistics quoted in §6.3.
func runFig8(opt Options) (*Result, error) {
	res, v, err := fig8Run(opt)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "video %s, %d LTE traces, VMAF phone model\n\n", v.ID(), opt.traces())

	schemes := []string{"CAVA", "MPC", "RobustMPC", "PANDA/CQ max-sum", "PANDA/CQ max-min"}
	fields := []struct {
		name string
		f    metrics.Field
	}{
		{"quality of Q4 chunks", metrics.FieldQ4Quality},
		{"% low-quality chunks", metrics.FieldLowQualityPct},
		{"total rebuffering (s)", metrics.FieldRebuffer},
		{"avg quality change /chunk", metrics.FieldQualityChange},
		{"data usage (MB)", metrics.FieldDataMB},
	}
	for _, fd := range fields {
		fmt.Fprintf(&sb, "%s (CDF deciles):\n", fd.name)
		var rows [][]string
		for _, s := range schemes {
			xs := metrics.Collect(res.Summaries(s, v.ID()), fd.f)
			rows = append(rows, []string{s, f1(metrics.Mean(xs)), cdfDeciles(xs)})
		}
		sb.WriteString(table([]string{"scheme", "mean", "deciles"}, rows))
		sb.WriteString("\n")
	}

	// Headline statistics (§6.3 (i)-(iii)).
	sb.WriteString("headline statistics:\n")
	var rows [][]string
	for _, s := range schemes {
		ss := res.Summaries(s, v.ID())
		var q4med, goodQ4, noReb, noLow float64
		var q4all []float64
		for _, x := range ss {
			q4all = append(q4all, x.Q4MedianQuality)
			goodQ4 += x.GoodQ4Pct
			if x.RebufferSec == 0 {
				noReb++
			}
			if x.LowQualityPct == 0 {
				noLow++
			}
		}
		q4med = metrics.Median(q4all)
		n := float64(len(ss))
		rows = append(rows, []string{
			s, f1(q4med), f1(goodQ4 / n),
			f1(100 * noReb / n), f1(100 * noLow / n),
		})
	}
	sb.WriteString(table([]string{"scheme", "median Q4 VMAF", "% Q4 > 60", "% traces no rebuf", "% traces no low-q"}, rows))

	for _, fd := range []struct {
		name string
		f    metrics.Field
	}{{"quality of Q4 chunks", metrics.FieldQ4Quality}, {"total rebuffering (s)", metrics.FieldRebuffer}} {
		var series []plot.Series
		for _, s := range schemes {
			series = append(series, plot.Series{Name: s,
				Values: metrics.Collect(res.Summaries(s, v.ID()), fd.f)})
		}
		fmt.Fprintf(&sb, "\nCDF plot — %s:\n%s", fd.name, plot.CDF(series, 64, 12))
	}
	return &Result{ID: "fig8", Title: Title("fig8"), Text: sb.String()}, nil
}

// runFig9 prints the Q1–Q3 and all-chunk quality CDFs for the same sweep.
func runFig9(opt Options) (*Result, error) {
	res, v, err := fig8Run(opt)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	schemes := []string{"CAVA", "MPC", "RobustMPC", "PANDA/CQ max-sum", "PANDA/CQ max-min"}
	for _, which := range []string{"Q1-Q3 chunks", "all chunks"} {
		fmt.Fprintf(&sb, "quality of %s (CDF deciles):\n", which)
		var rows [][]string
		for _, s := range schemes {
			ss := res.Summaries(s, v.ID())
			var xs []float64
			for _, x := range ss {
				if which == "all chunks" {
					xs = append(xs, x.AvgQuality)
				} else {
					xs = append(xs, x.Q13Quality)
				}
			}
			rows = append(rows, []string{s, f1(metrics.Mean(xs)), cdfDeciles(xs)})
		}
		sb.WriteString(table([]string{"scheme", "mean", "deciles"}, rows))
		sb.WriteString("\n")
	}
	return &Result{ID: "fig9", Title: Title("fig9"), Text: sb.String()}, nil
}

// runFig10 reproduces the §6.4 ablation: per-trace Q4 quality of p12/p123
// relative to p1, and rebuffering of p123 relative to p12 on traces where
// either variant stalls.
func runFig10(opt Options) (*Result, error) {
	v := edFFmpeg()
	res, err := sim.Run(sim.Request{
		Videos: []*video.Video{v},
		Traces: trace.GenLTESet(opt.traces()),
		Schemes: []abr.Scheme{
			{Name: "CAVA-p1", New: core.Variant("p1")},
			{Name: "CAVA-p12", New: core.Variant("p12")},
			{Name: "CAVA-p123", New: core.Variant("p123")},
		},
		Config:  defaultConfig(),
		Metric:  quality.VMAFPhone,
		Workers: opt.Workers,
		Cache:   opt.cache(),
	})
	if err != nil {
		return nil, err
	}
	p1 := res.Summaries("CAVA-p1", v.ID())
	p12 := res.Summaries("CAVA-p12", v.ID())
	p123 := res.Summaries("CAVA-p123", v.ID())

	var sb strings.Builder
	sb.WriteString("(a) Q4 chunk quality relative to CAVA-p1 (per-trace deltas):\n")
	var rows [][]string
	for _, pair := range []struct {
		name string
		ss   []metrics.Summary
	}{{"CAVA-p12", p12}, {"CAVA-p123", p123}} {
		var deltas []float64
		pos := 0
		for i := range pair.ss {
			d := pair.ss[i].Q4Quality - p1[i].Q4Quality
			deltas = append(deltas, d)
			if d > 0.5 {
				pos++
			}
		}
		rows = append(rows, []string{
			pair.name, f1(metrics.Mean(deltas)), f1(metrics.Median(deltas)),
			f1(100 * float64(pos) / float64(len(deltas))),
		})
	}
	sb.WriteString(table([]string{"variant", "mean ΔQ4", "median ΔQ4", "% traces improved"}, rows))

	sb.WriteString("\n(b) rebuffering of CAVA-p123 relative to CAVA-p12 (stall-prone traces):\n")
	reportStallDeltas(&sb, p12, p123)

	// CAVA rarely stalls at the default link scale, which starves (b) of
	// samples; repeat the P3 comparison on a harsher link (bandwidth
	// x0.85) where the proactive principle has stalls to prevent.
	sb.WriteString("\n(b') same comparison on a 15% slower link:\n")
	var harsher []*trace.Trace
	for _, tr := range trace.GenLTESet(opt.traces()) {
		harsher = append(harsher, tr.Scale(0.85))
	}
	res2, err := sim.Run(sim.Request{
		Videos: []*video.Video{v},
		Traces: harsher,
		Schemes: []abr.Scheme{
			{Name: "CAVA-p12", New: core.Variant("p12")},
			{Name: "CAVA-p123", New: core.Variant("p123")},
		},
		Config:  defaultConfig(),
		Metric:  quality.VMAFPhone,
		Workers: opt.Workers,
		Cache:   opt.cache(),
	})
	if err != nil {
		return nil, err
	}
	reportStallDeltas(&sb, res2.Summaries("CAVA-p12", v.ID()), res2.Summaries("CAVA-p123", v.ID()))
	return &Result{ID: "fig10", Title: Title("fig10"), Text: sb.String()}, nil
}

// reportStallDeltas prints the per-trace p123-vs-p12 rebuffering comparison
// over traces where either variant stalls.
func reportStallDeltas(sb *strings.Builder, p12, p123 []metrics.Summary) {
	var deltas []float64
	better := 0
	var tot12, tot123 float64
	for i := range p12 {
		tot12 += p12[i].RebufferSec
		tot123 += p123[i].RebufferSec
		if p12[i].RebufferSec == 0 && p123[i].RebufferSec == 0 {
			continue
		}
		d := p123[i].RebufferSec - p12[i].RebufferSec
		deltas = append(deltas, d)
		if d < 0 {
			better++
		}
	}
	if len(deltas) == 0 {
		sb.WriteString("no stall-prone traces at this scale\n")
		return
	}
	fmt.Fprintf(sb, "stall-prone traces: %d; p123 lower in %.0f%%; total rebuffer p12=%.1fs p123=%.1fs; max reduction %.1fs\n",
		len(deltas), 100*float64(better)/float64(len(deltas)), tot12, tot123, -minOf(deltas))
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
