package experiments

import (
	"fmt"
	"math"
	"strings"

	"cava/internal/abr"
	"cava/internal/metrics"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("cbrvbr", "motivation (§1): VBR vs CBR encoding at the same average bitrate", runCBRvsVBR)
	register("startup", "sensitivity (§6.1): playback startup latency", runStartup)
	register("chunkdur", "sensitivity (§2/§6): chunk duration (2 s vs 5 s encodes)", runChunkDur)
	register("baselines", "full scheme roster on one setting (incl. PIA, FESTIVE, BBA-1, RBA)", runBaselines)
}

// runCBRvsVBR reproduces the paper's motivating contrast: at the same
// average bitrate, VBR delivers higher and more uniform quality than CBR,
// whose complex scenes starve. Measured directly on the encodes (no
// network), per track.
func runCBRvsVBR(opt Options) (*Result, error) {
	vbr := edFFmpeg()
	cbr := video.CBRCounterpart(vbr)
	cats := opt.cache().Categories(vbr)

	var sb strings.Builder
	header := []string{"track", "encoding", "avg Mbps", "mean VMAF", "Q4-complex VMAF", "simple VMAF", "stdev"}
	var rows [][]string
	for _, pair := range []struct {
		label string
		v     *video.Video
	}{{"VBR 2x", vbr}, {"CBR", cbr}} {
		qt := opt.cache().QualityTable(pair.v, quality.VMAFPhone)
		for _, li := range []int{2, 3, 4} {
			var all, q4, simple []float64
			for i := 0; i < pair.v.NumChunks(); i++ {
				q := qt.At(li, i)
				all = append(all, q)
				// Use the VBR video's classification for both encodes: the
				// scene content is identical by construction.
				if scene.IsComplex(cats[i]) {
					q4 = append(q4, q)
				} else {
					simple = append(simple, q)
				}
			}
			rows = append(rows, []string{
				pair.v.Tracks[li].Res.Name, pair.label,
				f2(pair.v.AvgBitrateBps(li) / 1e6),
				f1(metrics.Mean(all)), f1(metrics.Mean(q4)), f1(metrics.Mean(simple)),
				f1(stdev(all)),
			})
		}
	}
	sb.WriteString(table(header, rows))
	sb.WriteString("\n(same content, same average bitrate: VBR trades its spare simple-scene bits\n")
	sb.WriteString(" toward complex scenes, lifting both the mean and the worst case)\n")
	return &Result{ID: "cbrvbr", Title: Title("cbrvbr"), Text: sb.String()}, nil
}

func stdev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := metrics.Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// runStartup sweeps the playback startup latency; §6.1 reports results for
// 10 s and notes other practical settings behave similarly.
func runStartup(opt Options) (*Result, error) {
	v := edYouTube()
	traces := trace.GenLTESet(opt.traces())
	header := []string{"startup (s)", "scheme", "Q4 qual", "rebuf (s)", "startup delay (s)", "data MB"}
	var rows [][]string
	for _, startup := range []float64{5, 10, 20, 30} {
		cfg := defaultConfig()
		cfg.StartupSec = startup
		res, err := sim.Run(sim.Request{
			Videos:  []*video.Video{v},
			Traces:  traces,
			Schemes: []abr.Scheme{cavaScheme(), mpcScheme(true)},
			Config:  cfg,
			Metric:  quality.VMAFPhone,
			Workers: opt.Workers,
			Cache:   opt.cache(),
		})
		if err != nil {
			return nil, err
		}
		for _, s := range []string{"CAVA", "RobustMPC"} {
			ss := res.Summaries(s, v.ID())
			var delay []float64
			for _, x := range ss {
				delay = append(delay, x.StartupDelaySec)
			}
			m := meansOf(ss)
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", startup), s,
				f1(m.q4), f1(m.reb), f1(metrics.Mean(delay)), f1(m.mb),
			})
		}
	}
	return &Result{ID: "startup", Title: Title("startup"),
		Text: table(header, rows) + "\n(results stable across practical startup settings, as §6.1 reports)\n"}, nil
}

// runChunkDur contrasts the 2-second (FFmpeg) and 5-second (YouTube)
// encodes of the same title under the same traces: shorter chunks give the
// controllers finer decisions but noisier throughput samples.
func runChunkDur(opt Options) (*Result, error) {
	vids := []*video.Video{
		edFFmpeg(),  // 2s
		edYouTube(), // 5s
	}
	traces := trace.GenLTESet(opt.traces())
	res, err := sim.Run(sim.Request{
		Videos:  vids,
		Traces:  traces,
		Schemes: []abr.Scheme{cavaScheme(), mpcScheme(true), pandaScheme(abr.MaxMin)},
		Config:  defaultConfig(),
		Metric:  quality.VMAFPhone,
		Workers: opt.Workers,
		Cache:   opt.cache(),
	})
	if err != nil {
		return nil, err
	}
	header := []string{"chunk dur", "scheme", "Q4 qual", "low-qual %", "rebuf (s)", "qual chg", "data MB"}
	var rows [][]string
	for _, v := range vids {
		for _, s := range []string{"CAVA", "RobustMPC", "PANDA/CQ max-min"} {
			m := meansOf(res.Summaries(s, v.ID()))
			rows = append(rows, []string{
				fmt.Sprintf("%.0fs (%s)", v.ChunkDurSec, v.Source), s,
				f1(m.q4), f1(m.low), f1(m.reb), f2(m.chg), f1(m.mb),
			})
		}
	}
	return &Result{ID: "chunkdur", Title: Title("chunkdur"),
		Text: table(header, rows) + "\n(CAVA's window parameters are specified in seconds, so W/W' adapt across chunk durations)\n"}, nil
}

// runBaselines runs the complete scheme roster — including the related-work
// schemes beyond the paper's headline set (PIA, FESTIVE, plain BOLA) — on
// one setting, as a single reference table.
func runBaselines(opt Options) (*Result, error) {
	v := edFFmpeg()
	schemes := []abr.Scheme{
		cavaScheme(),
		{Name: "PIA", New: func(v *video.Video) abr.Algorithm { return abr.NewPIA(v) }},
		{Name: "FESTIVE", New: func(v *video.Video) abr.Algorithm { return abr.NewFESTIVE(v) }},
		mpcScheme(false),
		mpcScheme(true),
		pandaScheme(abr.MaxMin),
		bolaScheme(abr.BOLASeg, true),
		{Name: "BOLA (avg)", New: func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLAAvg, false) }},
		bbaScheme(),
		rbaScheme(),
	}
	res, err := sim.Run(sim.Request{
		Videos:  []*video.Video{v},
		Traces:  trace.GenLTESet(opt.traces()),
		Schemes: schemes,
		Config:  defaultConfig(),
		Metric:  quality.VMAFPhone,
		Workers: opt.Workers,
		Cache:   opt.cache(),
	})
	if err != nil {
		return nil, err
	}
	header := []string{"scheme", "Q4 qual", "low-qual %", "rebuf (s)", "qual chg", "data MB"}
	var rows [][]string
	for _, sc := range schemes {
		m := meansOf(res.Summaries(sc.Name, v.ID()))
		rows = append(rows, []string{sc.Name, f1(m.q4), f1(m.low), f1(m.reb), f2(m.chg), f1(m.mb)})
	}
	var sb strings.Builder
	sb.WriteString(table(header, rows))
	sb.WriteString("\n(PIA is the CBR-era PID scheme CAVA generalizes: same control core, no VBR awareness)\n")
	return &Result{ID: "baselines", Title: Title("baselines"), Text: sb.String()}, nil
}
