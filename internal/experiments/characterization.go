package experiments

import (
	"fmt"
	"strings"

	"cava/internal/metrics"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/video"
)

func init() {
	register("fig1", "Fig. 1: per-chunk bitrates of a VBR video (ED, YouTube encoded, H.264)", runFig1)
	register("fig2", "Fig. 2: chunk SI/TI by size quartile (ED, track 3, H.264 & H.265)", runFig2)
	register("fig3", "Fig. 3: quality CDFs by size quartile (ED, YouTube encoded, 480p)", runFig3)
}

// runFig1 regenerates the bitrate series of Fig. 1: every track's chunk
// bitrates plus the per-track averages (the figure's dashed lines) and the
// §2 variability statistics.
func runFig1(Options) (*Result, error) {
	v := edYouTube()
	var sb strings.Builder

	header := []string{"track", "avg(Mbps)", "peak(Mbps)", "peak/avg", "CoV"}
	var rows [][]string
	for _, t := range v.Tracks {
		rows = append(rows, []string{
			t.Res.Name,
			f2(t.AvgBitrateBps / 1e6),
			f2(t.PeakBitrateBps / 1e6),
			f2(t.PeakToAvg()),
			f2(t.CoV()),
		})
	}
	sb.WriteString(table(header, rows))
	sb.WriteString("\nchunk bitrate series (Mbps), first 100 chunks:\n")
	for _, t := range v.Tracks {
		parts := make([]string, 0, 100)
		for i := 0; i < 100 && i < v.NumChunks(); i++ {
			parts = append(parts, f2(t.ChunkBitrate(i, v.ChunkDurSec)/1e6))
		}
		fmt.Fprintf(&sb, "%-6s %s\n", t.Res.Name, strings.Join(parts, " "))
	}
	return &Result{ID: "fig1", Title: Title("fig1"), Text: sb.String()}, nil
}

// runFig2 regenerates the SI/TI quartile separation of Fig. 2 for both
// codecs: the fraction of each quartile's chunks above the SI>25, TI>7
// region, plus mean SI/TI per quartile.
func runFig2(opt Options) (*Result, error) {
	var sb strings.Builder
	for _, codec := range []video.Codec{video.H264, video.H265} {
		v := opt.cache().Generate(video.FFmpegConfig(video.Title{Name: "ED", Genre: video.SciFi}, codec))
		cats := scene.Classify(v, 3, 4)
		siti := scene.ComputeSITI(v)
		fr := scene.FractionAbove(cats, siti, 25, 7, 4)

		meanSI := map[scene.Category]float64{}
		meanTI := map[scene.Category]float64{}
		count := map[scene.Category]int{}
		for i, c := range cats {
			meanSI[c] += siti[i].SI
			meanTI[c] += siti[i].TI
			count[c]++
		}
		fmt.Fprintf(&sb, "%s (track 3 reference):\n", v.ID())
		header := []string{"quartile", "chunks", "mean SI", "mean TI", "frac(SI>25 & TI>7)"}
		var rows [][]string
		for c := scene.Q1; c <= scene.Q4; c++ {
			n := float64(count[c])
			rows = append(rows, []string{
				fmt.Sprintf("Q%d", c), fmt.Sprint(count[c]),
				f1(meanSI[c] / n), f1(meanTI[c] / n), f2(fr[c]),
			})
		}
		sb.WriteString(table(header, rows))

		// Cross-track category consistency (§3.1.1 Property 2).
		var corrs []string
		for l := 0; l < v.NumTracks(); l++ {
			corrs = append(corrs, f2(scene.CategoryCorrelation(v, 3, l, 4)))
		}
		fmt.Fprintf(&sb, "cross-track category correlation vs track 3: %s\n\n", strings.Join(corrs, " "))
	}
	return &Result{ID: "fig2", Title: Title("fig2"), Text: sb.String()}, nil
}

// runFig3 regenerates the per-quartile quality CDFs of Fig. 3 on the middle
// (480p) track for PSNR, SSIM, VMAF-TV and VMAF-phone.
func runFig3(opt Options) (*Result, error) {
	v := edYouTube()
	cats := opt.cache().Categories(v)
	mid := v.NumTracks() / 2
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s, track %d (%s):\n\n", v.ID(), mid, v.Tracks[mid].Res.Name)
	for _, m := range []quality.Metric{quality.PSNR, quality.SSIM, quality.VMAFTV, quality.VMAFPhone} {
		qt := opt.cache().QualityTable(v, m)
		byCat := map[scene.Category][]float64{}
		for i := 0; i < v.NumChunks(); i++ {
			byCat[cats[i]] = append(byCat[cats[i]], qt.At(mid, i))
		}
		fmt.Fprintf(&sb, "%s:\n", m)
		header := []string{"quartile", "median", "CDF deciles"}
		var rows [][]string
		for c := scene.Q1; c <= scene.Q4; c++ {
			med := metrics.Median(byCat[c])
			medStr := f1(med)
			if m == quality.SSIM {
				medStr = fmt.Sprintf("%.3f", med)
			}
			rows = append(rows, []string{fmt.Sprintf("Q%d", c), medStr, cdfDeciles(byCat[c])})
		}
		sb.WriteString(table(header, rows))
		sb.WriteString("\n")
	}
	return &Result{ID: "fig3", Title: Title("fig3"), Text: sb.String()}, nil
}
