package experiments

import (
	"fmt"
	"strings"

	"cava/internal/chaos"
	"cava/internal/dash"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("edge", "edge/CDN tier under origin kill: failover, stale serving, cache recovery", runEdgeChaos)
}

// runEdgeChaos drives the edge-tier chaos harness: staggered sessions stream
// through the edge (consistent-hash origins, segment cache, SWR manifests)
// while the origin-lifecycle controller kills the primary origin mid-run and
// restarts it. The contrast cell keeps every origin alive. Both cells are
// checked against the edge invariants: ≥ 99% completion through failover and
// stale serving, nonzero failover and stale counters across the kill, cache
// hits resuming after the restart, and no goroutine leak.
func runEdgeChaos(opt Options) (*Result, error) {
	const seed = 7
	base := chaos.Config{
		Video:     opt.cache().Generate(video.FFmpegConfig(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)),
		Trace:     trace.Constant("link40", 40e6, 1200, 1),
		Scheme:    cavaScheme(),
		Seed:      seed,
		TimeScale: 240,
		MaxChunks: 6,
		Sessions:  16,
	}
	cells := []struct {
		name string
		kill *chaos.OriginKillPlan
	}{
		{"healthy", nil},
		{"kill-primary", &chaos.OriginKillPlan{Target: -1, KillAfterSec: 0.25, DownForSec: 0.5}},
	}

	header := []string{"cell", "sessions", "completed", "failovers", "brk skips",
		"stale", "hit ratio", "hits after restart", "shed", "invariants"}
	var rows [][]string
	for _, cell := range cells {
		cfg := base
		cfg.Edge = &chaos.EdgeTierConfig{
			Origins:            3,
			ManifestSoftTTLSec: 0.01,
			ManifestHardTTLSec: 300,
			Breaker:            dash.BreakerConfig{ConsecutiveFailures: 3, OpenSec: 0.5, HalfOpenProbes: 1},
			OriginKill:         cell.kill,
			SessionStaggerSec:  1.0,
		}
		rep, err := chaos.RunEdge(cfg)
		if err != nil {
			return nil, fmt.Errorf("edge cell %s: %w", cell.name, err)
		}
		verdict := "ok"
		if errs := rep.Invariants(); len(errs) > 0 {
			verdict = fmt.Sprintf("%d VIOLATED (%v)", len(errs), errs[0])
		}
		es := rep.Edge
		rows = append(rows, []string{
			cell.name, fmt.Sprint(rep.Sessions), fmt.Sprint(rep.Completed),
			fmt.Sprint(es.Failovers), fmt.Sprint(es.BreakerSkips),
			fmt.Sprint(es.StaleServed), fmt.Sprintf("%.0f%%", 100*es.HitRatio()),
			fmt.Sprint(rep.EdgeHitsAfterRestart), fmt.Sprint(es.Shed), verdict,
		})
	}

	var sb strings.Builder
	sb.WriteString(table(header, rows))
	fmt.Fprintf(&sb, "\n(3 origin replicas behind one edge; kill-primary cell kills the ring-primary "+
		"origin 0.25s in and restarts it 0.5s later; fault seed %d; sessions staggered over 1s so "+
		"manifests age past the 10ms soft TTL and serve stale while revalidating)\n", seed)
	return &Result{ID: "edge", Title: Title("edge"), Text: sb.String()}, nil
}
