// Package experiments reproduces every table and figure of the paper's
// characterization (§3) and evaluation (§6). Each experiment has an ID
// (fig1, fig2, ..., table1, table2, codec, cap4x, prederr) and a runner
// that regenerates the corresponding rows/series; cmd/abreval exposes them
// on the command line and the repository-root benchmarks time them.
//
// Absolute numbers differ from the paper (the substrate is a calibrated
// synthetic simulator, not the authors' testbed), but each runner's output
// preserves the reported shape: who wins, by roughly what factor, and where
// crossovers fall. EXPERIMENTS.md records paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"cava/internal/abr"
	"cava/internal/cache"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/trace"
	"cava/internal/video"
)

// Options tunes experiment scale. The zero value uses paper-scale defaults
// (200 traces per set); benchmarks and tests shrink them.
type Options struct {
	// Traces is the number of traces per set (default 200).
	Traces int
	// Workers bounds sweep parallelism (default GOMAXPROCS).
	Workers int
	// Cache memoizes generated videos, derived artifacts and whole sweep
	// results across runners (nil uses the process-wide cache.Shared, so
	// e.g. fig8 and fig9 — which need the same sweep — execute it once).
	Cache *cache.Cache
}

func (o Options) traces() int {
	if o.Traces <= 0 {
		return trace.DefaultSetSize
	}
	return o.Traces
}

func (o Options) cache() *cache.Cache {
	if o.Cache != nil {
		return o.Cache
	}
	return cache.Shared
}

// Result is a completed experiment: an identifier, a human title, and the
// formatted rows that regenerate the paper artifact.
type Result struct {
	ID    string
	Title string
	Text  string
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

// registry maps experiment IDs to runners, populated by the per-experiment
// files' init functions.
var registry = map[string]struct {
	title string
	run   Runner
}{}

func register(id, title string, run Runner) {
	registry[id] = struct {
		title string
		run   Runner
	}{title, run}
}

// IDs returns all experiment IDs in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's title ("" when unknown).
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given options.
func Run(id string, opt Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.run(opt)
}

// table renders aligned rows.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	_ = w.Flush() // cannot fail: the underlying writer is a strings.Builder
	return sb.String()
}

// f1, f2 format floats briefly.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// edYouTube returns the canonical YouTube-encoded Elephant Dream,
// generated at most once per process (videos are immutable, so sharing
// the cache.Shared instance across runners and option sets is safe).
func edYouTube() *video.Video {
	return cache.Shared.Generate(video.YouTubeConfig(video.Title{Name: "ED", Genre: video.SciFi}))
}

// edFFmpeg returns the canonical FFmpeg H.264 Elephant Dream.
func edFFmpeg() *video.Video {
	return cache.Shared.Generate(video.FFmpegConfig(video.Title{Name: "ED", Genre: video.SciFi}, video.H264))
}

// Scheme factories shared across experiments. PANDA/CQ consumes per-chunk
// quality values; it receives the PSNR surface (the quality metadata a
// 2014-era pipeline would carry), while evaluation uses VMAF (§6.1) — see
// DESIGN.md's substitution notes.
func cavaScheme() abr.Scheme { return abr.Scheme{Name: "CAVA", New: core.Factory()} }

func mpcScheme(robust bool) abr.Scheme {
	name := "MPC"
	if robust {
		name = "RobustMPC"
	}
	return abr.Scheme{Name: name, New: func(v *video.Video) abr.Algorithm {
		return abr.NewMPC(v, robust)
	}}
}

func pandaScheme(mode abr.PANDAMode) abr.Scheme {
	name := "PANDA/CQ max-sum"
	if mode == abr.MaxMin {
		name = "PANDA/CQ max-min"
	}
	return abr.Scheme{Name: name, New: func(v *video.Video) abr.Algorithm {
		// The factory runs once per session; the PSNR table only depends on
		// the video, so share it process-wide instead of rebuilding it for
		// every (trace, scheme) session of a sweep.
		return abr.NewPANDACQ(v, cache.Shared.QualityTable(v, quality.PSNR), mode)
	}}
}

func bbaScheme() abr.Scheme {
	return abr.Scheme{Name: "BBA-1", New: func(v *video.Video) abr.Algorithm {
		return abr.NewBBA1(v, 0, 0)
	}}
}

func rbaScheme() abr.Scheme {
	return abr.Scheme{Name: "RBA", New: func(v *video.Video) abr.Algorithm {
		return abr.NewRBA(v, 4)
	}}
}

func bolaScheme(variant abr.BOLAVariant, enhanced bool) abr.Scheme {
	probe := abr.NewBOLAE(edYouTube(), variant, enhanced)
	return abr.Scheme{Name: probe.Name(), New: func(v *video.Video) abr.Algorithm {
		return abr.NewBOLAE(v, variant, enhanced)
	}}
}

// comparisonSchemes is the Fig. 8 / Table 1 scheme set.
func comparisonSchemes() []abr.Scheme {
	return []abr.Scheme{
		cavaScheme(),
		mpcScheme(false),
		mpcScheme(true),
		pandaScheme(abr.MaxSum),
		pandaScheme(abr.MaxMin),
	}
}

// cdfDeciles formats a sample's CDF at the 10th..90th percentiles.
func cdfDeciles(xs []float64) string {
	sorted := metrics.NewSorted(xs)
	parts := make([]string, 0, 9)
	for p := 10.0; p <= 90; p += 10 {
		parts = append(parts, fmt.Sprintf("p%02.0f=%s", p, f1(sorted.Percentile(p))))
	}
	return strings.Join(parts, " ")
}

// sessionMetrics summarizes one scheme's summaries into the five headline
// means used by the tables.
type fiveMetrics struct {
	q4, low, reb, chg, mb float64
}

func meansOf(ss []metrics.Summary) fiveMetrics {
	return fiveMetrics{
		q4:  metrics.Mean(metrics.Collect(ss, metrics.FieldQ4Quality)),
		low: metrics.Mean(metrics.Collect(ss, metrics.FieldLowQualityPct)),
		reb: metrics.Mean(metrics.Collect(ss, metrics.FieldRebuffer)),
		chg: metrics.Mean(metrics.Collect(ss, metrics.FieldQualityChange)),
		mb:  metrics.Mean(metrics.Collect(ss, metrics.FieldDataMB)),
	}
}

// deltaRow renders a Table-1-style row: the CAVA value change vs a baseline
// (absolute for Q4 quality, percentage for the rest).
func deltaRow(cava, base fiveMetrics) []string {
	arrow := func(v float64, pct bool) string {
		sym := "↑"
		if v < 0 {
			sym = "↓"
			v = -v
		}
		if pct {
			return fmt.Sprintf("%s%.0f%%", sym, v)
		}
		return fmt.Sprintf("%s%.1f", sym, v)
	}
	return []string{
		arrow(cava.q4-base.q4, false),
		arrow(metrics.DeltaPct(cava.low, base.low), true),
		arrow(metrics.DeltaPct(cava.reb, base.reb), true),
		arrow(metrics.DeltaPct(cava.chg, base.chg), true),
		arrow(metrics.DeltaPct(cava.mb, base.mb), true),
	}
}

// defaultConfig is the shared §6.1 player configuration.
func defaultConfig() player.Config { return player.DefaultConfig() }
