package experiments

import (
	"fmt"
	"strings"

	"cava/internal/chaos"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("chaos", "robustness at scale: overload-protected server vs concurrent sessions × fault profiles", runChaos)
}

// runChaos sweeps the multi-session chaos harness across fault profiles and
// concurrency levels: N resilient clients share one shaped bottleneck against
// a fault-injected server behind admission control, and every cell is checked
// against the harness invariants (no livelock, bounded honest shedding, no
// goroutine leaks, graceful degradation). The single-client "robustness"
// experiment shows the fetch pipeline surviving faults; this one shows the
// *server* surviving clients.
func runChaos(opt Options) (*Result, error) {
	const seed = 7
	base := chaos.Config{
		Video: opt.cache().Generate(video.FFmpegConfig(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)),
		// One ample shared link: overload and faults do the damage, not
		// raw starvation.
		Trace:     trace.Constant("link40", 40e6, 1200, 1),
		Scheme:    cavaScheme(),
		Seed:      seed,
		TimeScale: 240,
		MaxChunks: 6,
	}
	profiles := []string{"none", "transient", "lossy"}
	concurrency := []int{4, 16}

	reps, err := chaos.Sweep(base, profiles, concurrency)
	if err != nil {
		return nil, err
	}

	header := []string{"profile", "sessions", "completed", "failed", "livelock",
		"shed", "shed seen", "breaker opens", "invariants"}
	var rows [][]string
	for _, rep := range reps {
		verdict := "ok"
		if errs := rep.Invariants(); len(errs) > 0 {
			verdict = fmt.Sprintf("%d VIOLATED (%v)", len(errs), errs[0])
		}
		rows = append(rows, []string{
			rep.Profile, fmt.Sprint(rep.Sessions),
			fmt.Sprint(rep.Completed), fmt.Sprint(rep.Failed), fmt.Sprint(rep.Livelocked),
			fmt.Sprint(rep.Admission.ShedTotal()), fmt.Sprint(rep.ObservedShed),
			fmt.Sprint(rep.Breaker.Opens), verdict,
		})
	}
	var sb strings.Builder
	sb.WriteString(table(header, rows))
	fmt.Fprintf(&sb, "\n(real HTTP over one shared shaped link; admission bounded to half the "+
		"session count, fault seed %d; \"shed seen\" counts client-observed 503 + Retry-After)\n", seed)
	return &Result{ID: "chaos", Title: Title("chaos"), Text: sb.String()}, nil
}
