package experiments

import (
	"fmt"
	"strings"

	"cava/internal/abr"
	"cava/internal/fleet"
	"cava/internal/metrics"
	"cava/internal/quality"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("fleet", "population view: QoE distributions across a discrete-event session fleet", runFleet)
}

// runFleet is the population-scale counterpart of the per-session sweeps:
// instead of one session per (video, trace, scheme) cell, the discrete-event
// engine runs thousands of concurrent sessions with Poisson arrivals and
// random trace offsets over the full mixed corpus — half LTE, half FCC
// (lte:100,fcc:100 = the 200-trace paper corpus at default scale, not the
// reduced bench mix) — and reports each scheme's fleet-level distributions:
// the tail percentiles an operator sees, which cell means hide. Sessions
// scale with the trace-count option (25 sessions per trace: 200 traces →
// 5000 sessions at paper scale); the engine shards across opt.Workers.
func runFleet(opt Options) (*Result, error) {
	videos := []*video.Video{edYouTube(), edFFmpeg()}
	nTraces := opt.traces()
	traces := append(trace.GenLTESet((nTraces+1)/2), trace.GenFCCSet(nTraces/2)...)
	sessions := 25 * nTraces
	schemes := []abr.Scheme{cavaScheme(), mpcScheme(true), bbaScheme(), rbaScheme()}

	header := []string{"scheme", "metric", "p10", "p50", "p90", "p99"}
	var rows [][]string
	for _, sc := range schemes {
		res, err := fleet.Run(fleet.Config{
			Videos:             videos,
			Traces:             traces,
			Scheme:             sc,
			Player:             defaultConfig(),
			Sessions:           sessions,
			Workers:            opt.Workers,
			ArrivalRatePerSec:  2,
			RandomTraceOffsets: true,
			Seed:               1,
			Metric:             quality.VMAFPhone,
			Cache:              opt.cache(),
		})
		if err != nil {
			return nil, err
		}
		for _, m := range []struct {
			name string
			s    metrics.Sorted
		}{
			{"rebuffer (s)", res.RebufferSec},
			{"startup (s)", res.StartupDelaySec},
			{"avg quality", res.AvgQuality},
			{"switches", res.Switches},
			{"data MB", res.DataMB},
		} {
			rows = append(rows, []string{sc.Name, m.name,
				f1(m.s.Percentile(10)), f1(m.s.Percentile(50)),
				f1(m.s.Percentile(90)), f1(m.s.Percentile(99))})
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%d sessions per scheme, %d videos × %d traces (%d LTE + %d FCC), Poisson arrivals (2/s), random trace offsets\n\n",
		sessions, len(videos), len(traces), (nTraces+1)/2, nTraces/2)
	sb.WriteString(table(header, rows))
	sb.WriteString("\nReading: per-session distributions across the whole fleet; p99 rebuffer is the\n" +
		"operator's pain metric. Every scheme sees the identical session population\n" +
		"(same seed ⇒ same video/trace/offset/arrival assignment).\n")
	return &Result{ID: "fleet", Title: Title("fleet"), Text: sb.String()}, nil
}
