package experiments

import (
	"strings"
	"testing"

	"cava/internal/cache"
)

// tinyOpt keeps experiment tests fast while exercising the full pipeline.
var tinyOpt = Options{Traces: 3}

func TestIDsComplete(t *testing.T) {
	want := []string{"alpha", "autotune", "baselines", "cap4x", "cbrvbr", "chaos", "chunkdur", "codec",
		"edge", "fig1", "fig10", "fig11", "fig2", "fig3", "fig4", "fig7", "fig7b", "fig8", "fig9",
		"fleet", "live", "liveext", "multiclient", "oracle", "prederr", "robustness", "startup",
		"table1", "table2"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, id := range got {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", tinyOpt); err == nil {
		t.Error("unknown experiment id did not error")
	}
}

func TestRunAllFastExperiments(t *testing.T) {
	// "live", "robustness", "chaos" and "edge" open real sockets and sleep in
	// wall time; they have their own tests. Everything else must run at tiny
	// scale.
	for _, id := range IDs() {
		if id == "live" || id == "robustness" || id == "chaos" || id == "edge" {
			continue
		}
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(id, tinyOpt)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.ID != id || res.Text == "" {
				t.Fatalf("%s: empty result", id)
			}
		})
	}
}

func TestFig1ContainsLadder(t *testing.T) {
	res, err := Run("fig1", tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, rung := range []string{"144p", "240p", "360p", "480p", "720p", "1080p"} {
		if !strings.Contains(res.Text, rung) {
			t.Errorf("fig1 output missing track %s", rung)
		}
	}
}

func TestFig8ComparesAllSchemes(t *testing.T) {
	res, err := Run("fig8", tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"CAVA", "MPC", "RobustMPC", "PANDA/CQ max-sum", "PANDA/CQ max-min"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("fig8 output missing scheme %s", s)
		}
	}
	if !strings.Contains(res.Text, "quality of Q4 chunks") ||
		!strings.Contains(res.Text, "total rebuffering") ||
		!strings.Contains(res.Text, "data usage") {
		t.Error("fig8 output missing a metric section")
	}
}

func TestTable1CoversBothSets(t *testing.T) {
	res, err := Run("table1", tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "LTE") || !strings.Contains(res.Text, "FCC") {
		t.Error("table1 missing a trace set")
	}
	for _, v := range []string{"ED", "BBB", "ToS", "Sintel", "Sports", "Animal", "Nature", "Action"} {
		if !strings.Contains(res.Text, v) {
			t.Errorf("table1 missing video %s", v)
		}
	}
}

func TestFig10HasAblationVariants(t *testing.T) {
	res, err := Run("fig10", tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "CAVA-p12") || !strings.Contains(res.Text, "CAVA-p123") {
		t.Error("fig10 missing ablation variants")
	}
}

func TestLiveExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP experiment")
	}
	res, err := Run("live", Options{Traces: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "CAVA") || !strings.Contains(res.Text, "BOLA-E (seg)") {
		t.Errorf("live output missing schemes:\n%s", res.Text)
	}
}

func TestRobustnessExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP experiment")
	}
	res, err := Run("robustness", Options{Traces: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CAVA", "BOLA-E (seg)", "transient", "lossy", "outage"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("robustness output missing %q:\n%s", want, res.Text)
		}
	}
}

func TestChaosExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP experiment")
	}
	res, err := Run("chaos", Options{Traces: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"transient", "lossy", "invariants", "shed seen"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("chaos output missing %q:\n%s", want, res.Text)
		}
	}
	if strings.Contains(res.Text, "VIOLATED") {
		t.Errorf("chaos sweep violated invariants:\n%s", res.Text)
	}
}

func TestDeterministicOutputs(t *testing.T) {
	a, err := Run("fig3", tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig3", tinyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Error("fig3 output not deterministic")
	}
}

// TestFig8Fig9ShareOneSweep pins the memoization contract at the experiments
// layer: fig8 and fig9 render the same underlying sweep, so running both with
// one cache must execute sim.Run's sessions exactly once.
func TestFig8Fig9ShareOneSweep(t *testing.T) {
	c := cache.New()
	opt := Options{Traces: 2, Cache: c}
	if _, err := Run("fig8", opt); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(cache.KindSim); s.Misses != 1 {
		t.Fatalf("fig8 stats = %+v, want exactly 1 sweep executed", s)
	}
	if _, err := Run("fig9", opt); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(cache.KindSim); s.Misses != 1 || s.Hits < 1 {
		t.Fatalf("fig8+fig9 stats = %+v, want the second runner to reuse the sweep", s)
	}
}
