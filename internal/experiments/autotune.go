package experiments

import (
	"strings"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/quality"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("autotune", "extension: Oboe-style online re-tuning of CAVA's differential strength", runAutoTune)
}

// runAutoTune compares fixed-parameter CAVA against AutoCAVA, which detects
// the throughput regime online and re-tunes the α factors and guards. The
// interesting contrast is across environments: LTE (volatile) rewards the
// safer tuning while FCC broadband (stable) rewards the aggressive one; the
// auto variant should track the better fixed configuration in each without
// manual intervention — the adaptation Oboe argues for.
func runAutoTune(opt Options) (*Result, error) {
	v := edYouTube()
	schemes := []abr.Scheme{
		{Name: "CAVA", New: core.Factory()},
		{Name: "CAVA-auto", New: core.AutoFactory()},
	}
	header := []string{"traces", "scheme", "Q4 qual", "low-qual %", "rebuf (s)", "qual chg", "data MB"}
	var rows [][]string
	run := func(label string, traces []*trace.Trace, metric quality.Metric) error {
		res, err := sim.Run(sim.Request{
			Videos:  []*video.Video{v},
			Traces:  traces,
			Schemes: schemes,
			Config:  defaultConfig(),
			Metric:  metric,
			Workers: opt.Workers,
			Cache:   opt.cache(),
		})
		if err != nil {
			return err
		}
		for _, sc := range schemes {
			m := meansOf(res.Summaries(sc.Name, v.ID()))
			rows = append(rows, []string{label, sc.Name,
				f1(m.q4), f1(m.low), f1(m.reb), f2(m.chg), f1(m.mb)})
		}
		return nil
	}
	if err := run("LTE", trace.GenLTESet(opt.traces()), quality.VMAFPhone); err != nil {
		return nil, err
	}
	if err := run("FCC", trace.GenFCCSet(opt.traces()), quality.VMAFTV); err != nil {
		return nil, err
	}

	var sb strings.Builder
	sb.WriteString(table(header, rows))
	sb.WriteString("\n(AutoCAVA re-tunes α and the low-buffer guards from the observed throughput CoV)\n")
	return &Result{ID: "autotune", Title: Title("autotune"), Text: sb.String()}, nil
}
