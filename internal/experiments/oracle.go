package experiments

import (
	"fmt"
	"strings"

	"cava/internal/metrics"
	"cava/internal/oracle"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/trace"
)

func init() {
	register("oracle", "reference: offline-optimal headroom above CAVA and RobustMPC", runOracle)
}

// runOracle compares CAVA and RobustMPC against the offline-optimal
// zero-stall schedule (full future knowledge of bandwidth, sizes and
// quality). The oracle's dynamic program is expensive, so this experiment
// caps the trace count at 20.
func runOracle(opt Options) (*Result, error) {
	nTraces := opt.traces()
	if nTraces > 20 {
		nTraces = 20
	}
	v := edYouTube()
	qt := opt.cache().QualityTable(v, quality.VMAFPhone)
	cats := opt.cache().Categories(v)
	cfg := defaultConfig()

	type agg struct {
		q4, avg, reb, chg, mb []float64
	}
	sums := map[string]*agg{}
	add := func(name string, s metrics.Summary) {
		a := sums[name]
		if a == nil {
			a = &agg{}
			sums[name] = a
		}
		a.q4 = append(a.q4, s.Q4Quality)
		a.avg = append(a.avg, s.AvgQuality)
		a.reb = append(a.reb, s.RebufferSec)
		a.chg = append(a.chg, s.QualityChange)
		a.mb = append(a.mb, s.DataMB)
	}

	infeasible := 0
	for ti := 0; ti < nTraces; ti++ {
		tr := trace.GenLTE(ti)
		plan, err := oracle.Compute(v, tr, qt, oracle.Config{})
		if err != nil {
			return nil, err
		}
		if !plan.Feasible {
			infeasible++
		}
		ores, err := oracle.Replay(v, tr, plan, cfg)
		if err != nil {
			return nil, err
		}
		add("Oracle", metrics.Summarize(ores, qt, cats))

		for _, sc := range []struct {
			name string
		}{{"CAVA"}, {"RobustMPC"}} {
			var res *player.Result
			var serr error
			switch sc.name {
			case "CAVA":
				res, serr = player.Simulate(v, tr, cavaScheme().New(v), cfg)
			case "RobustMPC":
				res, serr = player.Simulate(v, tr, mpcScheme(true).New(v), cfg)
			}
			if serr != nil {
				return nil, serr
			}
			add(sc.name, metrics.Summarize(res, qt, cats))
		}
	}

	var sb strings.Builder
	header := []string{"scheme", "Q4 qual", "avg qual", "rebuf (s)", "qual chg", "data MB"}
	var rows [][]string
	for _, name := range []string{"Oracle", "CAVA", "RobustMPC"} {
		a := sums[name]
		rows = append(rows, []string{name,
			f1(metrics.Mean(a.q4)), f1(metrics.Mean(a.avg)), f1(metrics.Mean(a.reb)),
			f2(metrics.Mean(a.chg)), f1(metrics.Mean(a.mb))})
	}
	sb.WriteString(table(header, rows))
	fmt.Fprintf(&sb, "\n(%d LTE traces; %d had no zero-stall schedule; the oracle bounds what any\n", nTraces, infeasible)
	sb.WriteString(" online scheme could achieve — the CAVA-to-oracle gap is the remaining headroom)\n")
	return &Result{ID: "oracle", Title: Title("oracle"), Text: sb.String()}, nil
}
