package experiments

import (
	"fmt"
	"strings"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("alpha", "ablation: differential-treatment strength (α sweep, §5.3's explored ranges)", runAlpha)
	register("liveext", "extension (§8): CAVA under live-streaming lookahead limits", runLiveExt)
}

// runAlpha sweeps the (αComplex, αSimple) pairs across the ranges the paper
// explored, exposing the tradeoff §5.3 describes: stronger inflation lifts
// Q4 quality at the cost of stalls; stronger deflation saves data but can
// degrade simple scenes.
func runAlpha(opt Options) (*Result, error) {
	v := edFFmpeg()
	traces := trace.GenLTESet(opt.traces())
	pairs := []struct{ complex, simple float64 }{
		{1.0, 1.0}, // differential treatment off (α-wise)
		{1.1, 0.9},
		{1.1, 0.8}, // the paper's chosen point
		{1.3, 0.7},
		{1.5, 0.7}, // this repo's default
		{1.5, 0.6}, // the strongest explored corner
	}
	header := []string{"αQ4/αQ1-3", "Q4 qual", "Q1-3 qual", "low-qual %", "rebuf (s)", "data MB"}
	var rows [][]string
	for _, pr := range pairs {
		p := core.DefaultParams()
		p.AlphaComplex, p.AlphaSimple = pr.complex, pr.simple
		name := fmt.Sprintf("CAVA α=%.1f/%.1f", pr.complex, pr.simple)
		res, err := sim.Run(sim.Request{
			Videos: []*video.Video{v},
			Traces: traces,
			Schemes: []abr.Scheme{{Name: name, New: func(v *video.Video) abr.Algorithm {
				return core.NewWith(v, p, core.AllPrinciples, name)
			}}},
			Config:  defaultConfig(),
			Metric:  quality.VMAFPhone,
			Workers: opt.Workers,
			Cache:   opt.cache(),
		})
		if err != nil {
			return nil, err
		}
		ss := res.Summaries(name, v.ID())
		var q13 []float64
		for _, s := range ss {
			q13 = append(q13, s.Q13Quality)
		}
		m := meansOf(ss)
		rows = append(rows, []string{
			fmt.Sprintf("%.1f/%.1f", pr.complex, pr.simple),
			f1(m.q4), f1(metrics.Mean(q13)), f1(m.low), f1(m.reb), f1(m.mb),
		})
	}
	var sb strings.Builder
	sb.WriteString(table(header, rows))
	sb.WriteString("\n(ED, FFmpeg H.264, LTE; stronger differential treatment lifts Q4 while deflation caps data)\n")
	return &Result{ID: "alpha", Title: Title("alpha"), Text: sb.String()}, nil
}

// runLiveExt evaluates the §8 future-work direction: true live VBR
// streaming. The encoder produces chunks in real time, the client can never
// buffer past the live edge, stalls permanently raise latency, and the
// scheme only knows the sizes of already-encoded chunks (core.Live's
// lookahead bound). The table also includes a VoD column as the reference
// upper bound, plus RobustMPC under the same live constraints.
func runLiveExt(opt Options) (*Result, error) {
	v := edFFmpeg()
	nTraces := opt.traces()
	cfg := defaultConfig()
	// Live sessions cannot pre-buffer a minute of content: use a 10s
	// startup against a live edge with a default one-chunk encoder delay.
	lcfg := player.LiveConfig{EncoderDelaySec: -1}
	qt := opt.cache().QualityTable(v, quality.VMAFPhone)
	cats := opt.cache().Categories(v)

	type liveScheme struct {
		name string
		make func() abr.Algorithm
		vod  bool
	}
	mk := func(la int, name string) liveScheme {
		return liveScheme{name: name, make: func() abr.Algorithm {
			p := core.DefaultParams()
			p.Lookahead = la
			// The live buffer is bounded by the edge; target what is
			// reachable under the startup latency.
			p.BaseTargetBuffer = cfg.StartupSec
			p.TargetMax = cfg.StartupSec + 2*v.ChunkDurSec
			return core.NewWith(v, p, core.AllPrinciples, name)
		}}
	}
	schemes := []liveScheme{
		mk(2, "CAVA-live2"),
		mk(5, "CAVA-live5"),
		mk(20, "CAVA-live20"),
		{name: "RobustMPC-live", make: func() abr.Algorithm { return abr.NewMPC(v, true) }},
		{name: "CAVA (VoD ref)", make: func() abr.Algorithm { return core.New(v) }, vod: true},
	}

	header := []string{"scheme", "Q4 qual", "low-qual %", "rebuf (s)", "avg latency (s)", "max latency (s)", "data MB"}
	var rows [][]string
	for _, sc := range schemes {
		var q4s, lows, rebs, lats, latMaxs, mbs []float64
		for ti := 0; ti < nTraces; ti++ {
			tr := trace.GenLTE(ti)
			if sc.vod {
				res, err := player.Simulate(v, tr, sc.make(), cfg)
				if err != nil {
					return nil, err
				}
				s := metrics.Summarize(res, qt, cats)
				q4s = append(q4s, s.Q4Quality)
				lows = append(lows, s.LowQualityPct)
				rebs = append(rebs, s.RebufferSec)
				mbs = append(mbs, s.DataMB)
				continue
			}
			res, err := player.SimulateLive(v, tr, sc.make(), cfg, lcfg)
			if err != nil {
				return nil, err
			}
			s := metrics.Summarize(&res.Result, qt, cats)
			q4s = append(q4s, s.Q4Quality)
			lows = append(lows, s.LowQualityPct)
			rebs = append(rebs, s.RebufferSec)
			lats = append(lats, res.AvgLatencySec)
			latMaxs = append(latMaxs, res.MaxLatencySec)
			mbs = append(mbs, s.DataMB)
		}
		lat, latMax := "-", "-"
		if len(lats) > 0 {
			lat, latMax = f1(metrics.Mean(lats)), f1(metrics.Mean(latMaxs))
		}
		rows = append(rows, []string{sc.name,
			f1(metrics.Mean(q4s)), f1(metrics.Mean(lows)), f1(metrics.Mean(rebs)),
			lat, latMax, f1(metrics.Mean(mbs))})
	}
	var sb strings.Builder
	sb.WriteString(table(header, rows))
	sb.WriteString("\n(encoder-paced sessions; the scheme sees only already-encoded chunk sizes,\n")
	sb.WriteString(" the buffer is bounded by the live edge, and stalls permanently raise latency)\n")
	return &Result{ID: "liveext", Title: Title("liveext"), Text: sb.String()}, nil
}
