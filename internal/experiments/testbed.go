package experiments

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/dash"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("fig11", "Fig. 11: CAVA vs BOLA-E (peak/avg/seg) — dash testbed model (BBB, LTE)", runFig11)
	register("table2", "Table 2: CAVA vs BOLA-E (seg) across YouTube videos (LTE)", runTable2)
	register("live", "§6.8: live HTTP streaming over a trace-shaped link (validation run)", runLive)
	register("robustness", "§6.8 under faults: resilient client vs fault profiles (seeded injection)", runRobustness)
}

// bolaComparisonSchemes is the §6.8 scheme set.
func bolaComparisonSchemes() []abr.Scheme {
	return []abr.Scheme{
		cavaScheme(),
		bolaScheme(abr.BOLAPeak, true),
		bolaScheme(abr.BOLAAvg, true),
		bolaScheme(abr.BOLASeg, true),
	}
}

// runFig11 compares CAVA with the three BOLA-E declared-bitrate variants.
// The algorithms are byte-identical to the ones the live HTTP testbed runs
// (see the "live" experiment); the trace-replay path makes the 200-trace
// sweep tractable, exactly as the paper pairs simulation with its dash.js
// testbed.
func runFig11(opt Options) (*Result, error) {
	v := opt.cache().Generate(video.YouTubeConfig(video.Title{Name: "BBB", Genre: video.Animation}))
	res, err := sim.Run(sim.Request{
		Videos:  []*video.Video{v},
		Traces:  trace.GenLTESet(opt.traces()),
		Schemes: bolaComparisonSchemes(),
		Config:  defaultConfig(),
		Metric:  quality.VMAFPhone,
		Workers: opt.Workers,
		Cache:   opt.cache(),
	})
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "video %s, %d LTE traces\n\n", v.ID(), opt.traces())
	schemes := []string{"CAVA", "BOLA-E (peak)", "BOLA-E (avg)", "BOLA-E (seg)"}
	fields := []struct {
		name string
		f    metrics.Field
	}{
		{"quality of Q4 chunks", metrics.FieldQ4Quality},
		{"% low-quality chunks", metrics.FieldLowQualityPct},
		{"total rebuffering (s)", metrics.FieldRebuffer},
		{"avg quality change /chunk", metrics.FieldQualityChange},
		{"data usage (MB)", metrics.FieldDataMB},
	}
	for _, fd := range fields {
		fmt.Fprintf(&sb, "%s:\n", fd.name)
		var rows [][]string
		for _, s := range schemes {
			xs := metrics.Collect(res.Summaries(s, v.ID()), fd.f)
			rows = append(rows, []string{s, f1(metrics.Mean(xs)), cdfDeciles(xs)})
		}
		sb.WriteString(table([]string{"scheme", "mean", "deciles"}, rows))
		sb.WriteString("\n")
	}
	return &Result{ID: "fig11", Title: Title("fig11"), Text: sb.String()}, nil
}

// runTable2 regenerates Table 2: CAVA's change relative to BOLA-E (seg)
// for four YouTube videos under LTE traces.
func runTable2(opt Options) (*Result, error) {
	titles := []video.Title{
		{Name: "BBB", Genre: video.Animation},
		{Name: "ED", Genre: video.SciFi},
		{Name: "Sports", Genre: video.Sports},
		{Name: "ToS", Genre: video.SciFi},
	}
	var videos []*video.Video
	for _, t := range titles {
		videos = append(videos, opt.cache().Generate(video.YouTubeConfig(t)))
	}
	res, err := sim.Run(sim.Request{
		Videos:  videos,
		Traces:  trace.GenLTESet(opt.traces()),
		Schemes: []abr.Scheme{cavaScheme(), bolaScheme(abr.BOLASeg, true)},
		Config:  defaultConfig(),
		Metric:  quality.VMAFPhone,
		Workers: opt.Workers,
		Cache:   opt.cache(),
	})
	if err != nil {
		return nil, err
	}
	header := []string{"video", "Q4 qual", "low-qual %", "stall %", "qual chg %", "data %"}
	var rows [][]string
	for _, v := range videos {
		cava := meansOf(res.Summaries("CAVA", v.ID()))
		bola := meansOf(res.Summaries("BOLA-E (seg)", v.ID()))
		rows = append(rows, append([]string{v.Name}, deltaRow(cava, bola)...))
	}
	var sb strings.Builder
	sb.WriteString(table(header, rows))
	sb.WriteString("\n(change by CAVA relative to BOLA-E (seg); Q4 in VMAF points, others in %)\n")
	return &Result{ID: "table2", Title: Title("table2"), Text: sb.String()}, nil
}

// runLive streams a video over a real HTTP server through a trace-shaped
// TCP link — the §6.8 testbed — for CAVA and BOLA-E (seg), and reports the
// session metrics. Scale and session length are chosen so the run takes a
// few wall seconds; Options.Traces bounds the number of traces replayed
// (default 2 at paper scale to keep the runtime sane).
func runLive(opt Options) (*Result, error) {
	nTraces := 2
	if opt.Traces > 0 && opt.Traces < nTraces {
		nTraces = opt.Traces
	}
	const scale = 120
	const maxChunks = 60

	v := opt.cache().Generate(video.YouTubeConfig(video.Title{Name: "BBB", Genre: video.Animation}))
	qt := opt.cache().QualityTable(v, quality.VMAFPhone)
	cats := opt.cache().Categories(v)

	factories := []abr.Scheme{cavaScheme(), bolaScheme(abr.BOLASeg, true)}
	header := []string{"trace", "scheme", "Q4 qual", "low-qual %", "rebuf (s)", "qual chg", "data MB", "wall (s)"}
	var rows [][]string
	for ti := 0; ti < nTraces; ti++ {
		tr := trace.GenLTE(ti)
		for _, sc := range factories {
			row, err := liveSession(v, qt, cats, tr, sc, scale, maxChunks)
			if err != nil {
				return nil, err
			}
			rows = append(rows, append([]string{tr.ID}, row...))
		}
	}
	var sb strings.Builder
	sb.WriteString(table(header, rows))
	fmt.Fprintf(&sb, "\n(real HTTP over a shaped loopback link; time scale %dx, first %d chunks)\n", scale, maxChunks)
	return &Result{ID: "live", Title: Title("live"), Text: sb.String()}, nil
}

// liveSession runs one real HTTP streaming session and returns the
// formatted metric cells.
func liveSession(v *video.Video, qt *quality.Table, cats []scene.Category,
	tr *trace.Trace, sc abr.Scheme, scale float64, maxChunks int) ([]string, error) {
	res, _, err := testbedSession(v, tr, sc, scale, maxChunks, dash.FaultConfig{}, nil)
	if err != nil {
		return nil, err
	}
	s := metrics.Summarize(res, qt, cats)
	return []string{
		res.Scheme, f1(s.Q4Quality), f1(s.LowQualityPct), f1(s.RebufferSec),
		f2(s.QualityChange), f1(s.DataMB), f1(res.SessionSec / scale),
	}, nil
}

// testbedSession runs one real HTTP streaming session over a shaped
// loopback link, optionally behind a fault injector and with a resilient
// client, and returns the session result plus the injector's stats.
func testbedSession(v *video.Video, tr *trace.Trace, sc abr.Scheme,
	scale float64, maxChunks int, faults dash.FaultConfig,
	resilience *dash.ResilienceConfig) (*player.Result, dash.FaultStats, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, dash.FaultStats{}, err
	}
	shaped := dash.NewShapedListener(ln, dash.NewShaper(tr, scale))
	inj := dash.NewFaultInjector(faults, dash.NewServer(v).Handler())
	srv := dash.NewHTTPServer(inj)
	go srv.Serve(shaped)
	defer srv.Close()

	client, err := dash.NewClient(dash.ClientConfig{
		BaseURL:      "http://" + ln.Addr().String(),
		NewAlgorithm: sc.New,
		TimeScale:    scale,
		MaxChunks:    maxChunks,
		Resilience:   resilience,
	})
	if err != nil {
		return nil, dash.FaultStats{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := client.Run(ctx)
	if err != nil {
		return nil, inj.Stats(), err
	}
	return res, inj.Stats(), nil
}

// runRobustness streams the testbed under seeded fault injection: every
// scheme crosses every fault profile on one LTE trace with the resilient
// client, demonstrating that sessions complete (with retries, downshifts
// and skip-stalls accounted) where the fail-fast client would abort.
func runRobustness(opt Options) (*Result, error) {
	const scale = 120
	const maxChunks = 40
	const seed = 1

	v := opt.cache().Generate(video.YouTubeConfig(video.Title{Name: "BBB", Genre: video.Animation}))
	qt := opt.cache().QualityTable(v, quality.VMAFPhone)
	cats := opt.cache().Categories(v)
	tr := trace.GenLTE(0)

	schemes := []abr.Scheme{cavaScheme(), bolaScheme(abr.BOLASeg, true)}
	header := []string{"profile", "scheme", "retries", "trunc", "abandon", "skip",
		"rebuf (s)", "Q4 qual", "data MB", "injected"}
	var rows [][]string
	for _, profile := range dash.FaultProfileNames() {
		fc, err := dash.FaultProfile(profile, seed, scale)
		if err != nil {
			return nil, err
		}
		for _, sc := range schemes {
			res, stats, err := testbedSession(v, tr, sc, scale, maxChunks, fc, dash.DefaultResilience())
			if err != nil {
				return nil, fmt.Errorf("robustness %s/%s: %w", profile, sc.Name, err)
			}
			s := metrics.Summarize(res, qt, cats)
			injected := stats.Errors + stats.Resets + stats.Truncations + stats.OutageRejections
			rows = append(rows, []string{
				profile, res.Scheme,
				fmt.Sprint(s.Retries), fmt.Sprint(s.Truncations),
				fmt.Sprint(s.Abandonments), fmt.Sprint(s.SkippedChunks),
				f1(s.RebufferSec), f1(s.Q4Quality), f1(s.DataMB),
				fmt.Sprint(injected),
			})
		}
	}
	var sb strings.Builder
	sb.WriteString(table(header, rows))
	fmt.Fprintf(&sb, "\n(LTE trace %s, %d chunks, time scale %dx, fault seed %d; "+
		"every session completes under the resilient fetch pipeline)\n",
		tr.ID, maxChunks, scale, seed)
	return &Result{ID: "robustness", Title: Title("robustness"), Text: sb.String()}, nil
}

// Referenced by runLive indirectly; keep core imported for the default
// scheme factory used in bolaComparisonSchemes.
var _ = core.Factory
