package experiments

import (
	"fmt"
	"strings"

	"cava/internal/abr"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/trace"
	"cava/internal/video"
)

func init() {
	register("multiclient", "extension: fairness and stability of competing players on one bottleneck", runMultiClient)
}

// runMultiClient puts three identical players behind one trace-driven
// bottleneck (the FESTIVE setting) and reports per-scheme fairness (Jain
// index over delivered bytes), quality and stalls. The shared link couples
// the players: a scheme that reacts violently to its competitors'
// on/off downloading oscillates and splits capacity unevenly.
func runMultiClient(opt Options) (*Result, error) {
	const clientsPerRun = 3
	nTraces := opt.traces()
	if nTraces > 40 {
		nTraces = 40 // shared sessions are ~3x the work of solo ones
	}
	v := edYouTube()
	qt := opt.cache().QualityTable(v, quality.VMAFPhone)
	cats := opt.cache().Categories(v)

	schemes := []abr.Scheme{
		cavaScheme(),
		mpcScheme(true),
		{Name: "FESTIVE", New: func(v *video.Video) abr.Algorithm { return abr.NewFESTIVE(v) }},
		bolaScheme(abr.BOLASeg, true),
		rbaScheme(),
	}

	header := []string{"scheme", "Jain(bytes)", "Q4 qual", "low-qual %", "rebuf (s)", "qual chg"}
	var rows [][]string
	for _, sc := range schemes {
		var jains, q4s, lows, rebs, chgs []float64
		for ti := 0; ti < nTraces; ti++ {
			// Scale the link so three clients share roughly one client's
			// usual capacity each.
			tr := trace.GenLTE(ti).Scale(clientsPerRun)
			clients := make([]player.SharedClient, clientsPerRun)
			for c := range clients {
				clients[c] = player.SharedClient{
					Video: v, Algo: sc.New(v),
					// Staggered joins break the lockstep of identical
					// deterministic clients.
					JoinDelaySec: float64(c) * 41,
				}
			}
			results, err := player.SimulateShared(tr, clients)
			if err != nil {
				return nil, err
			}
			var bytes []float64
			for _, res := range results {
				bytes = append(bytes, res.TotalBits)
				s := metrics.Summarize(res, qt, cats)
				q4s = append(q4s, s.Q4Quality)
				lows = append(lows, s.LowQualityPct)
				rebs = append(rebs, s.RebufferSec)
				chgs = append(chgs, s.QualityChange)
			}
			jains = append(jains, player.JainIndex(bytes))
		}
		rows = append(rows, []string{
			sc.Name,
			fmt.Sprintf("%.3f", metrics.Mean(jains)),
			f1(metrics.Mean(q4s)), f1(metrics.Mean(lows)),
			f1(metrics.Mean(rebs)), f2(metrics.Mean(chgs)),
		})
	}
	var sb strings.Builder
	sb.WriteString(table(header, rows))
	fmt.Fprintf(&sb, "\n(%d traces x %d identical competing clients per scheme; the link is the\n", nTraces, clientsPerRun)
	sb.WriteString(" LTE trace scaled x3 and split TCP-fairly among active downloads;\n")
	sb.WriteString(" clients join 41 s apart)\n")
	return &Result{ID: "multiclient", Title: Title("multiclient"), Text: sb.String()}, nil
}
