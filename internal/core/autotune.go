package core

import (
	"math"

	"cava/internal/abr"
	"cava/internal/video"
)

// Auto-tuning extension (inspired by Oboe, SIGCOMM'18, which the paper's
// related work highlights): CAVA's differential-treatment strength and
// control clamps are picked offline for a broad operating range; AutoCAVA
// re-tunes them online from the observed throughput regime. On stable
// links it leans into differential treatment (nothing threatens the
// buffer); on highly volatile links it softens the inflation and widens
// the low-buffer guard, trading a little Q4 quality for stall safety.

// Regime classifies the recent network volatility.
type Regime int

// Volatility regimes.
const (
	// RegimeUnknown means not enough samples yet.
	RegimeUnknown Regime = iota
	// RegimeStable is CoV below 0.30.
	RegimeStable
	// RegimeModerate is CoV in [0.30, 0.70).
	RegimeModerate
	// RegimeVolatile is CoV of 0.70 and above.
	RegimeVolatile
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case RegimeStable:
		return "stable"
	case RegimeModerate:
		return "moderate"
	case RegimeVolatile:
		return "volatile"
	default:
		return "unknown"
	}
}

// ClassifyRegime computes the volatility regime of throughput samples.
func ClassifyRegime(samples []float64) Regime {
	if len(samples) < 4 {
		return RegimeUnknown
	}
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	if mean <= 0 {
		return RegimeVolatile
	}
	ss := 0.0
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	cov := math.Sqrt(ss/float64(len(samples))) / mean
	switch {
	case cov < 0.30:
		return RegimeStable
	case cov < 0.70:
		return RegimeModerate
	default:
		return RegimeVolatile
	}
}

// paramsFor maps a regime onto CAVA tunables.
func paramsFor(r Regime) Params {
	p := DefaultParams()
	switch r {
	case RegimeStable:
		// Nothing threatens the buffer: spend harder on complex scenes
		// and allow a brisker startup.
		p.AlphaComplex = 1.5
		p.AlphaSimple = 0.75
		p.UMax = 2.0
		p.Q4NoInflateBuffer = 12
	case RegimeVolatile:
		// Bursty link: soften the inflation, save more on simple scenes,
		// and keep the no-inflate guard wide.
		p.AlphaComplex = 1.25
		p.AlphaSimple = 0.65
		p.Q4NoInflateBuffer = 30
	}
	return p
}

// Tune replaces the controller's tunables mid-session, preserving the PID
// state and the chunk classification (which depend on fixed structural
// parameters: RefLevel, NumClasses, the video).
func (c *CAVA) Tune(p Params) {
	p.RefLevel = c.p.RefLevel
	p.NumClasses = c.p.NumClasses
	c.p = p
}

// CurrentParams exposes the active tunables (for tests and logging).
func (c *CAVA) CurrentParams() Params { return c.p }

// AutoCAVA wraps CAVA with online regime detection over the observed
// per-chunk throughputs, re-tuning every AdaptEvery decisions.
type AutoCAVA struct {
	*CAVA
	// AdaptEvery is the re-tune period in chunks (8 by default).
	AdaptEvery int
	// WindowSize is how many throughput samples feed the detector (24).
	//lint:allow units WindowSize counts samples, not a data size
	WindowSize int

	samples []float64
	since   int
	regime  Regime
}

// NewAuto returns an auto-tuning CAVA instance.
func NewAuto(v *video.Video) *AutoCAVA {
	return &AutoCAVA{
		CAVA:       NewWith(v, DefaultParams(), AllPrinciples, "CAVA-auto"),
		AdaptEvery: 8,
		WindowSize: 24,
	}
}

// AutoFactory returns the AutoCAVA factory.
func AutoFactory() abr.Factory {
	return func(v *video.Video) abr.Algorithm { return NewAuto(v) }
}

// Regime exposes the currently detected regime.
func (a *AutoCAVA) Regime() Regime { return a.regime }

// Select implements abr.Algorithm: observe, maybe re-tune, then delegate.
func (a *AutoCAVA) Select(st abr.State) int {
	if st.LastThroughputBps > 0 {
		a.samples = append(a.samples, st.LastThroughputBps)
		if len(a.samples) > a.WindowSize {
			a.samples = a.samples[len(a.samples)-a.WindowSize:]
		}
	}
	a.since++
	if a.since >= a.AdaptEvery {
		a.since = 0
		if r := ClassifyRegime(a.samples); r != RegimeUnknown && r != a.regime {
			a.regime = r
			a.Tune(paramsFor(r))
		}
	}
	return a.CAVA.Select(st)
}
