package core

import (
	"strings"
	"testing"

	"cava/internal/abr"
	"cava/internal/player"
	"cava/internal/trace"
)

func TestLiveEdge(t *testing.T) {
	v := testVideo()
	vod := New(v)
	if vod.liveEdge(10) != v.NumChunks() {
		t.Error("VoD live edge should be the whole video")
	}
	p := DefaultParams()
	p.Lookahead = 5
	live := NewWith(v, p, AllPrinciples, "live")
	if got := live.liveEdge(10); got != 16 {
		t.Errorf("liveEdge(10) with lookahead 5 = %d, want 16", got)
	}
	if got := live.liveEdge(v.NumChunks() - 2); got != v.NumChunks() {
		t.Errorf("liveEdge near the end = %d, want %d", got, v.NumChunks())
	}
}

func TestLiveWindowTruncation(t *testing.T) {
	v := testVideo()
	p := DefaultParams()
	p.Lookahead = 2
	live := NewWith(v, p, AllPrinciples, "live")
	// With a 2-chunk lookahead the window average covers chunks i..i+2.
	i := 20
	want := (v.ChunkSize(3, i) + v.ChunkSize(3, i+1) + v.ChunkSize(3, i+2)) / (3 * v.ChunkDurSec)
	if got := live.windowAvgBitrate(3, i); got != want {
		t.Errorf("truncated window average = %v, want %v", got, want)
	}
}

func TestLiveOuterControllerWeakerAtShortLookahead(t *testing.T) {
	v := testVideo()
	p := DefaultParams()
	p.Lookahead = 3
	live := NewWith(v, p, AllPrinciples, "live")
	vod := New(v)
	// A 3-chunk preview sees far less of an approaching cluster than the
	// full W' window: its total target elevation must be smaller.
	var liveSum, vodSum float64
	for i := 0; i < v.NumChunks(); i++ {
		liveSum += live.TargetBuffer(i) - p.BaseTargetBuffer
		vodSum += vod.TargetBuffer(i) - p.BaseTargetBuffer
	}
	if liveSum >= vodSum {
		t.Errorf("short-lookahead preview elevation %.1f not below VoD %.1f", liveSum, vodSum)
	}
	// And the preview is exactly blind at the final chunk (no future).
	last := v.NumChunks() - 1
	if got := live.TargetBuffer(last); got < p.BaseTargetBuffer {
		t.Errorf("target at the last chunk = %v, below base", got)
	}
}

func TestLiveFactoryNames(t *testing.T) {
	v := testVideo()
	a := Live(10)(v)
	if a.Name() != "CAVA-live10" {
		t.Errorf("name = %q", a.Name())
	}
	if !strings.HasPrefix(Live(3)(v).Name(), "CAVA-live") {
		t.Error("live name prefix wrong")
	}
}

// TestLiveDegradesGracefully: live sessions must complete, and the effect
// of restricting lookahead is graceful conservatism — the inner window
// tracks the immediate chunks tightly, so Q4 quality (which needs the
// smoothing and preview) drops while rebuffering does not explode.
func TestLiveDegradesGracefully(t *testing.T) {
	v := testVideo()
	cfg := player.DefaultConfig()
	var vodQ4, liveQ4, liveReb float64
	n := 8
	for i := 0; i < n; i++ {
		tr := trace.GenLTE(i)
		rv := mustSimulate(t, v, tr, New(v), cfg)
		rl := mustSimulate(t, v, tr, Live(2)(v), cfg)
		if len(rl.Chunks) != v.NumChunks() {
			t.Fatal("live session incomplete")
		}
		vodQ4 += meanLevel(rv, v)
		liveQ4 += meanLevel(rl, v)
		liveReb += rl.TotalRebufferSec
	}
	// With a 2-chunk lookahead CAVA loses its smoothing and preview, so it
	// must not pick *higher* levels than full-knowledge CAVA on average.
	if liveQ4 > vodQ4+0.3*float64(n) {
		t.Errorf("live-2 mean level %.2f above VoD %.2f", liveQ4/float64(n), vodQ4/float64(n))
	}
	if liveReb/float64(n) > 60 {
		t.Errorf("live-2 rebuffering exploded: %.1f s/session", liveReb/float64(n))
	}
}

func meanLevel(r *player.Result, v interface{ NumChunks() int }) float64 {
	sum := 0.0
	for _, c := range r.Chunks {
		sum += float64(c.Level)
	}
	return sum / float64(len(r.Chunks))
}

func TestLiveSelectValid(t *testing.T) {
	v := testVideo()
	a := Live(3)(v)
	for i := 0; i < v.NumChunks(); i += 5 {
		st := abr.State{ChunkIndex: i, Now: float64(5 * i), Buffer: 40, Est: 2e6, PrevLevel: 2}
		if l := a.Select(st); l < 0 || l >= v.NumTracks() {
			t.Fatalf("invalid level %d at chunk %d", l, i)
		}
	}
}
