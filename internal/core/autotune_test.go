package core

import (
	"testing"

	"cava/internal/abr"
	"cava/internal/player"
	"cava/internal/trace"
	"cava/internal/video"
)

func TestClassifyRegime(t *testing.T) {
	if ClassifyRegime([]float64{1, 2}) != RegimeUnknown {
		t.Error("too-few samples not unknown")
	}
	stable := []float64{2e6, 2.05e6, 1.95e6, 2.02e6, 1.98e6}
	if ClassifyRegime(stable) != RegimeStable {
		t.Error("near-constant samples not stable")
	}
	volatile := []float64{0.2e6, 5e6, 0.5e6, 8e6, 0.1e6, 4e6}
	if ClassifyRegime(volatile) != RegimeVolatile {
		t.Error("wild samples not volatile")
	}
	if ClassifyRegime([]float64{0, 0, 0, 0}) != RegimeVolatile {
		t.Error("zero-mean treated leniently")
	}
	for _, r := range []Regime{RegimeUnknown, RegimeStable, RegimeModerate, RegimeVolatile} {
		if r.String() == "" {
			t.Error("regime without a name")
		}
	}
}

func TestTunePreservesStructure(t *testing.T) {
	v := testVideo()
	c := New(v)
	before := c.Categories()
	p := DefaultParams()
	p.AlphaComplex = 1.2
	p.RefLevel = 0   // must be ignored by Tune
	p.NumClasses = 8 // must be ignored by Tune
	c.Tune(p)
	if c.CurrentParams().AlphaComplex != 1.2 {
		t.Error("tunable not applied")
	}
	if c.CurrentParams().RefLevel != DefaultParams().RefLevel {
		t.Error("structural RefLevel changed by Tune")
	}
	after := c.Categories()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("classification changed by Tune")
		}
	}
}

func TestAutoCAVAAdaptsToRegime(t *testing.T) {
	v := testVideo()
	a := NewAuto(v)
	if a.Name() != "CAVA-auto" {
		t.Errorf("name = %q", a.Name())
	}
	// Feed stable throughput observations through decisions.
	for i := 0; i < 20; i++ {
		a.Select(abr.State{ChunkIndex: i, Now: float64(5 * i), Buffer: 40,
			Est: 2e6, LastThroughputBps: 2e6 * (1 + 0.01*float64(i%2)), PrevLevel: 2})
	}
	if a.Regime() != RegimeStable {
		t.Errorf("regime = %v after stable samples", a.Regime())
	}
	if a.CurrentParams().UMax != paramsFor(RegimeStable).UMax {
		t.Error("stable params not applied")
	}
	// Now volatile samples flip the regime.
	tputs := []float64{0.2e6, 6e6, 0.4e6, 9e6, 0.3e6, 5e6}
	for i := 20; i < 60; i++ {
		a.Select(abr.State{ChunkIndex: i, Now: float64(5 * i), Buffer: 40,
			Est: 2e6, LastThroughputBps: tputs[i%len(tputs)], PrevLevel: 2})
	}
	if a.Regime() != RegimeVolatile {
		t.Errorf("regime = %v after volatile samples", a.Regime())
	}
	if a.CurrentParams().Q4NoInflateBuffer != paramsFor(RegimeVolatile).Q4NoInflateBuffer {
		t.Error("volatile params not applied")
	}
}

func TestAutoCAVASessionSane(t *testing.T) {
	v := testVideo()
	cfg := player.DefaultConfig()
	for i := 0; i < 6; i++ {
		res, err := player.Simulate(v, trace.GenLTE(i), NewAuto(v), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Chunks) != v.NumChunks() {
			t.Fatal("auto session incomplete")
		}
	}
}

func TestAutoCAVAComparableToFixed(t *testing.T) {
	// Auto-tuning must not collapse performance relative to fixed CAVA on
	// the environment both were designed for.
	v := testVideo()
	cfg := player.DefaultConfig()
	var fixedBits, autoBits, fixedReb, autoReb float64
	n := 10
	for i := 0; i < n; i++ {
		tr := trace.GenLTE(i)
		f := mustSimulate(t, v, tr, New(v), cfg)
		a := mustSimulate(t, v, tr, NewAuto(v), cfg)
		fixedBits += f.TotalBits
		autoBits += a.TotalBits
		fixedReb += f.TotalRebufferSec
		autoReb += a.TotalRebufferSec
	}
	if autoBits < 0.7*fixedBits {
		t.Errorf("auto delivers %.0f%% of fixed CAVA's data; collapsed", 100*autoBits/fixedBits)
	}
	if autoReb > fixedReb+60 {
		t.Errorf("auto rebuffers far more: %.1f vs %.1f", autoReb, fixedReb)
	}
}

// mustSimulate fails the test on a simulation error; the test fixtures are
// valid by construction.
func mustSimulate(tb testing.TB, v *video.Video, tr *trace.Trace, algo abr.Algorithm, cfg player.Config) *player.Result {
	tb.Helper()
	res, err := player.Simulate(v, tr, algo, cfg)
	if err != nil {
		tb.Fatalf("Simulate: %v", err)
	}
	return res
}
