package core

import (
	"math"
	"testing"

	"cava/internal/abr"
	"cava/internal/scene"
	"cava/internal/video"
)

func testVideo() *video.Video {
	return video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
}

func TestNames(t *testing.T) {
	v := testVideo()
	if New(v).Name() != "CAVA" {
		t.Error("default name wrong")
	}
	for _, w := range []string{"p1", "p12", "p123"} {
		a := Variant(w)(v)
		if a.Name() != "CAVA-"+w {
			t.Errorf("variant %s name = %q", w, a.Name())
		}
	}
}

func TestVariantPrinciples(t *testing.T) {
	v := testVideo()
	p1 := Variant("p1")(v).(*CAVA)
	if p1.pr.Differential || p1.pr.Proactive || !p1.pr.NonMyopic {
		t.Errorf("p1 principles = %+v", p1.pr)
	}
	p12 := Variant("p12")(v).(*CAVA)
	if !p12.pr.Differential || p12.pr.Proactive {
		t.Errorf("p12 principles = %+v", p12.pr)
	}
	p123 := Variant("p123")(v).(*CAVA)
	if !p123.pr.Differential || !p123.pr.Proactive || !p123.pr.NonMyopic {
		t.Errorf("p123 principles = %+v", p123.pr)
	}
}

func TestTargetBufferBounds(t *testing.T) {
	v := testVideo()
	c := New(v)
	base := c.p.BaseTargetBuffer
	cap := c.p.TargetCapFactor * base
	for i := 0; i < v.NumChunks(); i++ {
		x := c.TargetBuffer(i)
		if x < base-1e-9 || x > cap+1e-9 {
			t.Fatalf("target at chunk %d = %v outside [%v, %v]", i, x, base, cap)
		}
	}
}

func TestTargetBufferFlatWithoutP3(t *testing.T) {
	v := testVideo()
	c := Variant("p12")(v).(*CAVA)
	for i := 0; i < v.NumChunks(); i += 11 {
		if x := c.TargetBuffer(i); x != c.p.BaseTargetBuffer {
			t.Fatalf("p12 target at %d = %v, want base", i, x)
		}
	}
}

func TestTargetBufferRisesBeforeLargeCluster(t *testing.T) {
	v := testVideo()
	c := New(v)
	// The target must be elevated somewhere (the video has complex
	// clusters) and flat elsewhere.
	raised := 0
	for i := 0; i < v.NumChunks(); i++ {
		if c.TargetBuffer(i) > c.p.BaseTargetBuffer+1 {
			raised++
		}
	}
	if raised == 0 {
		t.Error("outer controller never raised the target")
	}
	if raised == v.NumChunks() {
		t.Error("outer controller always raised the target")
	}
}

func TestControlSignalDirection(t *testing.T) {
	v := testVideo()
	c := New(v)
	// Buffer far below target: controller demands filling (u > 1).
	u := c.controlSignal(0, 10, 60)
	if u <= 1 {
		t.Errorf("u = %v with buffer below target, want > 1", u)
	}
	// Fresh controller, buffer far above target: u < 1 (draining).
	c2 := New(v)
	u2 := c2.controlSignal(0, 95, 60)
	if u2 >= 1 {
		t.Errorf("u = %v with buffer above target, want < 1", u2)
	}
	// Clamps.
	c3 := New(v)
	if u3 := c3.controlSignal(0, 0, 1e6); u3 > c3.p.UMax {
		t.Errorf("u exceeds UMax: %v", u3)
	}
	c4 := New(v)
	if u4 := c4.controlSignal(0, 1e6, 0); u4 < c4.p.UMin {
		t.Errorf("u below UMin: %v", u4)
	}
}

func TestControlSignalIndicatorTerm(t *testing.T) {
	v := testVideo()
	c := New(v)
	// At equal buffer and target with buffer >= one chunk, u == 1 exactly
	// on the first call (no integral accumulated yet).
	if u := c.controlSignal(0, 60, 60); u != 1 {
		t.Errorf("u at equilibrium = %v, want 1 (indicator active)", u)
	}
	c2 := New(v)
	// Buffer below one chunk duration: indicator off.
	if u := c2.controlSignal(0, 1, 1); u != c2.p.UMin {
		t.Errorf("u with near-empty buffer = %v, want UMin", u)
	}
}

func TestControlSignalAntiWindup(t *testing.T) {
	v := testVideo()
	c := New(v)
	// Hold a large error for a long simulated time; the integral must be
	// clamped.
	for i := 0; i < 1000; i++ {
		c.controlSignal(float64(i)*10, 0, 120)
	}
	if lim := 0.8 / c.p.Ki; c.integral > lim+1e-9 {
		t.Errorf("integral %v above anti-windup limit %v", c.integral, lim)
	}
}

func TestWindowAvgBitrate(t *testing.T) {
	v := testVideo()
	c := New(v)
	w := int(math.Round(c.p.InnerWindowSec / v.ChunkDurSec))
	// Manual average for a mid-video chunk.
	i, level := 20, 3
	sum := 0.0
	for k := i; k < i+w; k++ {
		sum += v.ChunkSize(level, k)
	}
	want := sum / (float64(w) * v.ChunkDurSec)
	if got := c.windowAvgBitrate(level, i); math.Abs(got-want) > 1e-6 {
		t.Errorf("window average = %v, want %v", got, want)
	}
	// Myopic variant returns the single chunk's bitrate.
	myopic := NewWith(v, DefaultParams(), Principles{}, "m")
	if got := myopic.windowAvgBitrate(level, i); got != v.ChunkBitrate(level, i) {
		t.Errorf("myopic bitrate = %v, want chunk bitrate", got)
	}
	// Window truncates at the end of the video.
	last := v.NumChunks() - 1
	if got := c.windowAvgBitrate(level, last); got != v.ChunkBitrate(level, last) {
		t.Errorf("end-of-video window average = %v, want last chunk bitrate", got)
	}
}

func TestWindowSmoothsQ4Requirement(t *testing.T) {
	// The non-myopic principle's purpose: for a Q4 chunk the window
	// average is below the chunk's own bitrate, enabling a higher track.
	v := testVideo()
	c := New(v)
	ref := v.Tracks[3].ChunkSizesBits
	large := 10
	for i := 10; i < v.NumChunks()-20; i++ {
		if ref[i] > ref[large] {
			large = i
		}
	}
	if c.windowAvgBitrate(3, large) >= v.ChunkBitrate(3, large) {
		t.Error("window average not below the largest chunk's own bitrate")
	}
}

func TestAlphaRules(t *testing.T) {
	v := testVideo()
	c := New(v)
	cats := c.Categories()
	var q4, simple int = -1, -1
	for i, cat := range cats {
		if cat == scene.Q4 && q4 < 0 {
			q4 = i
		}
		if cat == scene.Q1 && simple < 0 {
			simple = i
		}
	}
	if a := c.alpha(q4, 60); a != c.p.AlphaComplex {
		t.Errorf("alpha(Q4, rich buffer) = %v, want %v", a, c.p.AlphaComplex)
	}
	if a := c.alpha(simple, 60); a != c.p.AlphaSimple {
		t.Errorf("alpha(simple) = %v, want %v", a, c.p.AlphaSimple)
	}
	// Q4 no-inflate guard at low buffer.
	if a := c.alpha(q4, c.p.Q4NoInflateBuffer-1); a != 1 {
		t.Errorf("alpha(Q4, low buffer) = %v, want 1", a)
	}
	// Without P2 alpha is always 1.
	p1 := Variant("p1")(v).(*CAVA)
	if p1.alpha(q4, 60) != 1 || p1.alpha(simple, 60) != 1 {
		t.Error("p1 applies differential alpha")
	}
}

func TestEtaRules(t *testing.T) {
	v := testVideo()
	c := New(v)
	cats := c.Categories()
	if c.eta(0) != 0 {
		t.Error("eta(0) must be 0 (no previous chunk)")
	}
	for i := 1; i < v.NumChunks(); i++ {
		boundary := scene.IsComplex(cats[i]) != scene.IsComplex(cats[i-1])
		e := c.eta(i)
		if boundary && e != 0 {
			t.Fatalf("eta at category boundary %d = %v, want 0", i, e)
		}
		if !boundary && e != c.p.EtaWeight {
			t.Fatalf("eta inside category run %d = %v, want %v", i, e, c.p.EtaWeight)
		}
	}
	p1 := Variant("p1")(v).(*CAVA)
	if p1.eta(5) != p1.p.EtaWeight {
		t.Error("p1 should always penalize switches")
	}
}

func TestSelectNoEstimate(t *testing.T) {
	v := testVideo()
	if got := New(v).Select(abr.State{ChunkIndex: 0}); got != 0 {
		t.Errorf("selection without estimate = %d, want 0", got)
	}
}

func TestSelectValidAndMonotoneInBandwidth(t *testing.T) {
	v := testVideo()
	prev := -1
	for est := 2e5; est < 1e8; est *= 2 {
		c := New(v)
		l := c.Select(abr.State{ChunkIndex: 10, Now: 50, Buffer: 60, Est: est, PrevLevel: 2})
		if l < 0 || l >= v.NumTracks() {
			t.Fatalf("invalid level %d", l)
		}
		if l < prev {
			t.Fatalf("level decreased as bandwidth grew")
		}
		prev = l
	}
}

func TestNoDeflateHeuristic(t *testing.T) {
	v := testVideo()
	cats := scene.ClassifyDefault(v)
	simple := -1
	for i, cat := range cats {
		if cat == scene.Q1 {
			simple = i
			break
		}
	}
	// Pick a bandwidth so low that deflated selection lands at a very low
	// level; with a comfortable buffer the heuristic must re-run with
	// alpha=1 and produce a level >= the deflated choice.
	p := DefaultParams()
	deflOff := NewWith(v, p, Principles{NonMyopic: true}, "x")
	st := abr.State{ChunkIndex: simple, Now: 100, Buffer: 40, Est: 4e5, PrevLevel: 1}
	withHeuristic := New(v).Select(st)
	plain := deflOff.Select(st)
	if withHeuristic < 0 || withHeuristic >= v.NumTracks() {
		t.Fatalf("invalid level")
	}
	// The heuristic guards against unnecessarily low picks: CAVA must not
	// sit below the undeflated choice by more than the differential design
	// intends when the buffer is comfortable.
	if withHeuristic < plain-1 {
		t.Errorf("deflation drove simple chunk to %d vs undeflated %d despite rich buffer", withHeuristic, plain)
	}
}

func TestCategoriesExposed(t *testing.T) {
	v := testVideo()
	c := New(v)
	want := scene.ClassifyDefault(v)
	got := c.Categories()
	if len(got) != len(want) {
		t.Fatal("category length mismatch")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("category %d differs", i)
		}
	}
}

func TestDeterministicDecisions(t *testing.T) {
	v := testVideo()
	a, b := New(v), New(v)
	for i := 0; i < 50; i++ {
		st := abr.State{ChunkIndex: i, Now: float64(i) * 5, Buffer: 30 + float64(i%40), Est: 2e6, PrevLevel: i % 6}
		if a.Select(st) != b.Select(st) {
			t.Fatalf("decision %d not deterministic", i)
		}
	}
}

func TestRefLevelOverride(t *testing.T) {
	v := testVideo()
	p := DefaultParams()
	p.RefLevel = 1
	c := NewWith(v, p, AllPrinciples, "CAVA")
	if c.ref != 1 {
		t.Errorf("ref = %d, want 1", c.ref)
	}
	p.RefLevel = 99
	c = NewWith(v, p, AllPrinciples, "CAVA")
	if c.ref != scene.DefaultReferenceTrack(v.NumTracks()) {
		t.Errorf("out-of-range ref not coerced to middle track")
	}
}
