// Package core implements CAVA — Control-theoretic Adaptation for VBR-based
// ABR streaming — the paper's primary contribution (§5).
//
// CAVA consists of two controllers working in synergy:
//
//   - The inner controller selects the track. A PID feedback block (Eq. 1–2)
//     regulates the relative buffer filling rate u_t toward a dynamic target
//     buffer level; an optimizer (Eq. 3–4) then picks the track minimizing a
//     weighted sum of (i) deviation of the required bandwidth from the
//     assumed bandwidth and (ii) track change, where the required bandwidth
//     uses the average bitrate of a window of W future chunks (non-myopic,
//     P1) and the assumed bandwidth is inflated for complex Q4 chunks and
//     deflated for simple chunks (differential treatment, P2).
//   - The outer controller sets the target buffer level (Eq. 5): when large
//     chunks loom within a window of W′ future chunks it raises the target
//     proactively (P3), so the buffer is charged before complex scenes
//     arrive.
//
// CAVA uses only information available in today's DASH/HLS manifests:
// per-chunk sizes, declared track bitrates, and client-side buffer and
// throughput observations.
package core

import (
	"fmt"
	"math"

	"cava/internal/abr"
	"cava/internal/scene"
	"cava/internal/telemetry"
	"cava/internal/video"
)

// Params holds every tunable of CAVA with the paper's defaults (§5, §6).
type Params struct {
	// HorizonN is the optimizer's look-ahead horizon in chunks (N = 5).
	HorizonN int
	// InnerWindowSec is the inner-controller window W in seconds over
	// which future chunk bitrates are averaged (40 s; §6.2).
	InnerWindowSec float64
	// OuterWindowSec is the outer-controller look-ahead W′ in seconds
	// (200 s; §6.2).
	OuterWindowSec float64
	// AlphaComplex inflates the bandwidth estimate for Q4 chunks (1.1).
	AlphaComplex float64
	// AlphaSimple deflates the bandwidth estimate for Q1–Q3 chunks (0.8).
	AlphaSimple float64
	// NoDeflateBuffer is the buffer level (seconds) above which the
	// deflation heuristic is skipped when it would pick a very low level
	// (10 s; §5.3).
	NoDeflateBuffer float64
	// NoDeflateMaxLevel is the highest 0-based level considered "very
	// low" for the no-deflate heuristic (1, i.e. the paper's levels 1–2).
	NoDeflateMaxLevel int
	// Q4NoInflate enables the optional heuristic that skips inflation for
	// Q4 chunks when the buffer is below Q4NoInflateBuffer. Disabled in
	// the paper's reported results (§5.3).
	Q4NoInflate bool
	// Q4NoInflateBuffer is the low-buffer threshold for Q4NoInflate.
	Q4NoInflateBuffer float64
	// BaseTargetBuffer is the base target buffer level x̄r in seconds
	// (60; 40 yields similar results per §5.4).
	BaseTargetBuffer float64
	// TargetCapFactor clamps the dynamic target at factor·x̄r (2).
	TargetCapFactor float64
	// TargetMax additionally clamps the dynamic target below the player's
	// reachable buffer; a target above the buffer cap would bias the
	// controller conservative permanently (90 for the paper's 100 s
	// player buffer).
	TargetMax float64
	// Kp and Ki are the PID proportional and integral gains; a wide
	// range performs well (§6.1, following PIA's methodology).
	Kp, Ki float64
	// UMin and UMax clamp the controller output to keep the track search
	// meaningful under extreme buffer errors.
	UMin, UMax float64
	// EtaWeight is the track-change penalty weight applied when the
	// current and previous chunks are in the same complexity category
	// (Eq. 3's η_t). The paper uses 1 to weigh the two penalty terms
	// equally; since the deviation term is summed over the N-chunk
	// horizon, weighing the change term by N keeps the two terms at
	// equal per-chunk scale.
	EtaWeight float64
	// Lookahead bounds how many future chunks (beyond the current one)
	// the controllers may inspect; 0 means unbounded (VoD). In live
	// streaming only the chunks the encoder has already produced are
	// known, so both the inner window and the outer preview truncate at
	// the live edge — the §8 future-work extension.
	Lookahead int
	// RefLevel is the reference track ℓ̃ for chunk classification and the
	// outer controller; negative selects the middle track.
	RefLevel int
	// NumClasses is the size-quantile class count (4 ⇒ quartiles).
	NumClasses int
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params {
	return Params{
		HorizonN:          5,
		InnerWindowSec:    40,
		OuterWindowSec:    200,
		AlphaComplex:      1.5,
		AlphaSimple:       0.7,
		NoDeflateBuffer:   10,
		NoDeflateMaxLevel: 2,
		Q4NoInflate:       true,
		Q4NoInflateBuffer: 20,
		BaseTargetBuffer:  60,
		TargetCapFactor:   2,
		TargetMax:         90,
		Kp:                0.06,
		Ki:                0.0004,
		UMin:              0.35,
		UMax:              2.5,
		EtaWeight:         5,
		RefLevel:          -1,
		NumClasses:        scene.DefaultNumClasses,
	}
}

// Principles toggles the three design principles for the §6.4 ablation.
type Principles struct {
	// NonMyopic enables P1: window-W bitrate averaging in the optimizer.
	NonMyopic bool
	// Differential enables P2: α inflation/deflation and the
	// category-aware track-change weight η.
	Differential bool
	// Proactive enables P3: the outer preview controller.
	Proactive bool
}

// AllPrinciples is full CAVA (p123).
var AllPrinciples = Principles{NonMyopic: true, Differential: true, Proactive: true}

// CAVA is a per-session instance implementing abr.Algorithm.
type CAVA struct {
	v    *video.Video
	p    Params
	pr   Principles
	cats []scene.Category

	ref            int     // resolved reference track
	refAvgSizeBits float64 // mean chunk size of the reference track (bits)

	integral float64 // PID integral accumulator (seconds²)
	lastNow  float64
	primed   bool
	// lastP and lastI hold the proportional and integral contributions of
	// the most recent controlSignal call — cheap scalar stores that let the
	// decision trace expose the PID decomposition without recomputation.
	lastP, lastI float64

	rec     telemetry.Recorder // nil = tracing disabled
	session string

	name string
}

// New returns a full CAVA instance with default parameters.
func New(v *video.Video) *CAVA { return NewWith(v, DefaultParams(), AllPrinciples, "CAVA") }

// NewWith returns a CAVA instance with explicit parameters, principle
// toggles and display name (used for the p1/p12/p123 ablation variants).
func NewWith(v *video.Video, p Params, pr Principles, name string) *CAVA {
	ref := p.RefLevel
	if ref < 0 || ref >= v.NumTracks() {
		ref = scene.DefaultReferenceTrack(v.NumTracks())
	}
	c := &CAVA{
		v:    v,
		p:    p,
		pr:   pr,
		cats: scene.Classify(v, ref, p.NumClasses),
		ref:  ref,
		name: name,
	}
	sum := 0.0
	for _, s := range v.Tracks[ref].ChunkSizesBits {
		sum += s
	}
	c.refAvgSizeBits = sum / float64(v.NumChunks())
	return c
}

// Variant builds the ablation factories used in §6.4: p1 (non-myopic only),
// p12 (plus differential treatment) and p123 (full CAVA).
func Variant(which string) abr.Factory {
	pr := AllPrinciples
	name := "CAVA"
	switch which {
	case "p1":
		pr = Principles{NonMyopic: true}
		name = "CAVA-p1"
	case "p12":
		pr = Principles{NonMyopic: true, Differential: true}
		name = "CAVA-p12"
	case "p123":
		name = "CAVA-p123"
	}
	return func(v *video.Video) abr.Algorithm {
		return NewWith(v, DefaultParams(), pr, name)
	}
}

// Factory returns the default full-CAVA factory.
func Factory() abr.Factory {
	return func(v *video.Video) abr.Algorithm { return New(v) }
}

// Live returns a CAVA factory restricted to a live-streaming lookahead of
// the given number of future chunks (the §8 future-work extension): only
// already-encoded chunks inform the inner window and the outer preview.
func Live(lookahead int) abr.Factory {
	return func(v *video.Video) abr.Algorithm {
		p := DefaultParams()
		p.Lookahead = lookahead
		return NewWith(v, p, AllPrinciples, fmt.Sprintf("CAVA-live%d", lookahead))
	}
}

// Name implements abr.Algorithm.
func (c *CAVA) Name() string { return c.name }

// SetRecorder implements abr.Traced: subsequent Select calls emit a decide
// event with the controller internals (target buffer, u_t decomposition,
// α_t, η_t, and the per-track objective scores).
func (c *CAVA) SetRecorder(rec telemetry.Recorder, session string) {
	c.rec = rec
	c.session = session
}

// Categories exposes the chunk classification (for experiments and tests).
func (c *CAVA) Categories() []scene.Category { return c.cats }

// TargetBuffer computes the outer controller's dynamic target buffer level
// x_r(t) for a decision at chunk index i (Eq. 5). Without P3 the target is
// the base level.
func (c *CAVA) TargetBuffer(i int) float64 {
	xr := c.p.BaseTargetBuffer
	if !c.pr.Proactive {
		return xr
	}
	wChunks := int(math.Round(c.p.OuterWindowSec / c.v.ChunkDurSec))
	if wChunks < 1 {
		wChunks = 1
	}
	// Eq. 5's preview window starts at the current chunk.
	start := i
	end := start + wChunks
	if end > c.v.NumChunks() {
		end = c.v.NumChunks()
	}
	if limit := c.liveEdge(i); end > limit {
		end = limit
	}
	if end <= start {
		return xr
	}
	sum := 0.0
	for k := start; k < end; k++ {
		sum += c.v.ChunkSize(c.ref, k)
	}
	n := float64(end - start)
	// Deviation of the upcoming window from the track average, converted
	// to seconds by dividing by the reference track's average bitrate.
	refAvgBitrate := c.v.AvgBitrateBps(c.ref)
	dev := (sum - c.refAvgSizeBits*n) / refAvgBitrate
	if dev > 0 {
		xr += dev
	}
	if cap := c.p.TargetCapFactor * c.p.BaseTargetBuffer; xr > cap {
		xr = cap
	}
	if c.p.TargetMax > 0 && xr > c.p.TargetMax {
		xr = c.p.TargetMax
	}
	return xr
}

// liveEdge returns one past the last chunk index whose size is known at a
// decision for chunk i (NumChunks for VoD).
func (c *CAVA) liveEdge(i int) int {
	if c.p.Lookahead <= 0 {
		return c.v.NumChunks()
	}
	edge := i + 1 + c.p.Lookahead
	if edge > c.v.NumChunks() {
		edge = c.v.NumChunks()
	}
	return edge
}

// controlSignal runs the PID feedback block (Eq. 2), returning u_t.
func (c *CAVA) controlSignal(now, buffer, target float64) float64 {
	e := target - buffer
	if c.primed {
		dt := now - c.lastNow
		if dt > 0 {
			c.integral += e * dt
			// Anti-windup: bound the integral contribution so transient
			// large errors (startup, outages) do not bias decisions long
			// after the buffer has recovered.
			if lim := 0.8 / c.p.Ki; c.integral > lim {
				c.integral = lim
			} else if c.integral < -lim {
				c.integral = -lim
			}
		}
	} else {
		c.primed = true
	}
	c.lastNow = now

	c.lastP = c.p.Kp * e
	c.lastI = c.p.Ki * c.integral
	u := c.lastP + c.lastI
	if buffer >= c.v.ChunkDurSec {
		u += 1 // the linearizing indicator term 1(x_t − Δ)
	}
	if u < c.p.UMin {
		u = c.p.UMin
	}
	if u > c.p.UMax {
		u = c.p.UMax
	}
	return u
}

// windowAvgBitrate returns R̄_t(ℓ): the average bitrate of the W-chunk
// window starting at chunk i on track ℓ (P1). With P1 disabled it is the
// single chunk's bitrate (myopic).
func (c *CAVA) windowAvgBitrate(level, i int) float64 {
	if !c.pr.NonMyopic {
		return c.v.ChunkBitrate(level, i)
	}
	wChunks := int(math.Round(c.p.InnerWindowSec / c.v.ChunkDurSec))
	if wChunks < 1 {
		wChunks = 1
	}
	end := i + wChunks
	if end > c.v.NumChunks() {
		end = c.v.NumChunks()
	}
	if limit := c.liveEdge(i); end > limit {
		end = limit
	}
	sum := 0.0
	for k := i; k < end; k++ {
		sum += c.v.ChunkSize(level, k)
	}
	return sum / (float64(end-i) * c.v.ChunkDurSec)
}

// alpha returns the bandwidth inflation/deflation factor α_t for chunk i
// (P2), before heuristics.
func (c *CAVA) alpha(i int, buffer float64) float64 {
	if !c.pr.Differential {
		return 1
	}
	if scene.IsComplex(c.cats[i]) {
		if c.p.Q4NoInflate && buffer < c.p.Q4NoInflateBuffer {
			return 1
		}
		return c.p.AlphaComplex
	}
	return c.p.AlphaSimple
}

// eta returns the track-change penalty weight η_t for chunk i (Eq. 3): zero
// when the current and previous chunks are in different complexity
// categories (Q4 vs non-Q4), one otherwise. Without P2 it is always one.
func (c *CAVA) eta(i int) float64 {
	if i == 0 {
		return 0
	}
	if !c.pr.Differential {
		return c.p.EtaWeight
	}
	if scene.IsComplex(c.cats[i]) != scene.IsComplex(c.cats[i-1]) {
		return 0
	}
	return c.p.EtaWeight
}

// objective evaluates Q(ℓ) of Eq. 3 for a candidate level.
func (c *CAVA) objective(level, i, prevLevel int, u, estBW, alpha, eta float64) float64 {
	n := c.p.HorizonN
	if rem := c.v.NumChunks() - i; rem < n {
		n = rem
	}
	if n < 1 {
		n = 1
	}
	rbar := c.windowAvgBitrate(level, i)
	dev := u*rbar - alpha*estBW
	q := float64(n) * dev * dev
	if prevLevel >= 0 {
		d := c.v.AvgBitrateBps(level) - c.v.AvgBitrateBps(prevLevel)
		q += eta * d * d
	}
	return q
}

// bestLevel solves Eq. 4 by evaluating Q(ℓ) over all tracks (O(N·|L|)).
func (c *CAVA) bestLevel(i, prevLevel int, u, estBW, alpha, eta float64) int {
	best, bestQ := 0, math.Inf(1)
	for l := 0; l < c.v.NumTracks(); l++ {
		q := c.objective(l, i, prevLevel, u, estBW, alpha, eta)
		if q < bestQ {
			best, bestQ = l, q
		}
	}
	return best
}

// Select implements abr.Algorithm: one full CAVA decision.
func (c *CAVA) Select(st abr.State) int {
	i := st.ChunkIndex
	if st.Est <= 0 {
		// No throughput observation yet: start from the lowest track.
		if c.rec != nil {
			c.rec.Record(telemetry.Event{
				Session: c.session, TimeSec: st.Now, Kind: telemetry.KindDecide,
				Chunk: i, Level: 0, PrevLevel: st.PrevLevel,
				BufferSec: st.Buffer, Detail: "no bandwidth estimate",
			})
		}
		return 0
	}
	target := c.TargetBuffer(i)
	u := c.controlSignal(st.Now, st.Buffer, target)
	alpha := c.alpha(i, st.Buffer)
	eta := c.eta(i)

	level := c.bestLevel(i, st.PrevLevel, u, st.Est, alpha, eta)

	// No-deflate heuristic (§5.3): deflation should save bandwidth for
	// complex scenes, not push simple scenes to the lowest rungs when
	// there is no stall risk.
	if c.pr.Differential && !scene.IsComplex(c.cats[i]) &&
		level <= c.p.NoDeflateMaxLevel && st.Buffer > c.p.NoDeflateBuffer && alpha < 1 {
		alpha = 1 // the decision that stands is the no-deflate re-solve
		level = c.bestLevel(i, st.PrevLevel, u, st.Est, alpha, eta)
	}
	if c.rec != nil {
		scores := make([]float64, c.v.NumTracks())
		for l := range scores {
			scores[l] = c.objective(l, i, st.PrevLevel, u, st.Est, alpha, eta)
		}
		c.rec.Record(telemetry.Event{
			Session: c.session, TimeSec: st.Now, Kind: telemetry.KindDecide,
			Chunk: i, Level: level, PrevLevel: st.PrevLevel,
			BufferSec: st.Buffer, EstBps: st.Est,
			TargetSec: target, U: u, PTerm: c.lastP, ITerm: c.lastI,
			Alpha: alpha, Eta: eta, Scores: scores,
		})
	}
	return level
}
