package abr

import (
	"testing"

	"cava/internal/quality"
	"cava/internal/video"
)

func pandaPair(v *video.Video) (*PANDACQ, *PANDACQ) {
	qt := quality.NewTable(v, quality.PSNR)
	return NewPANDACQ(v, qt, MaxSum), NewPANDACQ(v, qt, MaxMin)
}

func TestPANDANames(t *testing.T) {
	s, m := pandaPair(testVideo())
	if s.Name() != "PANDA/CQ max-sum" || m.Name() != "PANDA/CQ max-min" {
		t.Errorf("names: %q, %q", s.Name(), m.Name())
	}
}

func TestPANDANoEstimate(t *testing.T) {
	s, _ := pandaPair(testVideo())
	if got := s.Select(State{ChunkIndex: 0, Buffer: 20}); got != 0 {
		t.Errorf("selection without estimate = %d, want 0", got)
	}
}

func TestPANDARespectsBudget(t *testing.T) {
	v := testVideo()
	_, m := pandaPair(v)
	// With a modest estimate the window budget forbids the top track for
	// every chunk even with a huge buffer.
	st := State{ChunkIndex: 10, Buffer: 90, Est: 1e6, PrevLevel: 2}
	l := m.Select(st)
	top := v.NumTracks() - 1
	if l == top {
		t.Errorf("max-min chose the top track with a 1 Mbps budget")
	}
}

func TestPANDAMonotoneInBandwidth(t *testing.T) {
	v := testVideo()
	prev := -1
	for est := 2e5; est < 1e8; est *= 2 {
		_, m := pandaPair(v)
		l := m.Select(State{ChunkIndex: 10, Buffer: 60, Est: est, PrevLevel: 2})
		if l < prev {
			t.Fatalf("PANDA level decreased as bandwidth grew")
		}
		prev = l
	}
}

// TestPANDAMaxMinFavorsComplexChunk: when the decision chunk is the worst-
// quality (complex) one in the window, max-min lifts it to a higher track
// than max-sum gives it, at the same bandwidth.
func TestPANDAMaxMinFavorsComplexChunk(t *testing.T) {
	v := testVideo()
	ref := v.Tracks[3].ChunkSizesBits
	// Find a clearly-large chunk (complex scene) away from the ends.
	large := 5
	for i := 5; i < v.NumChunks()-10; i++ {
		if ref[i] > ref[large] {
			large = i
		}
	}
	sum, min := pandaPair(v)
	st := State{ChunkIndex: large, Buffer: 60, Est: 2.5e6, PrevLevel: 2}
	ls, lm := sum.Select(st), min.Select(st)
	if lm < ls {
		t.Errorf("max-min gave the complex chunk %d, below max-sum's %d", lm, ls)
	}
}

func TestPANDAFallsBackWhenInfeasible(t *testing.T) {
	v := testVideo()
	_, m := pandaPair(v)
	// Tiny bandwidth, empty buffer: nothing is stall-free; the scheme
	// must still return a valid (lowest) track.
	got := m.Select(State{ChunkIndex: 0, Buffer: 0, Est: 3e4, PrevLevel: -1})
	if got != 0 {
		t.Errorf("infeasible fallback selected %d, want 0", got)
	}
}

func TestBOLAVariantNames(t *testing.T) {
	v := testVideo()
	cases := map[string]Algorithm{
		"BOLA-E (peak)": NewBOLAE(v, BOLAPeak, true),
		"BOLA-E (avg)":  NewBOLAE(v, BOLAAvg, true),
		"BOLA-E (seg)":  NewBOLAE(v, BOLASeg, true),
		"BOLA (seg)":    NewBOLAE(v, BOLASeg, false),
	}
	for want, a := range cases {
		if a.Name() != want {
			t.Errorf("name = %q, want %q", a.Name(), want)
		}
	}
}

func TestBOLABufferDrivesLevel(t *testing.T) {
	v := testVideo()
	b := NewBOLAE(v, BOLAAvg, false)
	lo := b.Select(State{ChunkIndex: 10, Buffer: 3, PrevLevel: 0})
	hi := b.Select(State{ChunkIndex: 10, Buffer: 55, PrevLevel: 0})
	if hi <= lo && hi != v.NumTracks()-1 {
		t.Errorf("BOLA level did not grow with buffer: %d -> %d", lo, hi)
	}
	if lo != 0 {
		t.Errorf("BOLA at near-empty buffer selected %d, want 0", lo)
	}
}

func TestBOLAPeakMoreConservativeThanAvg(t *testing.T) {
	v := testVideo()
	// The peak variant treats every chunk as track-peak sized, so at any
	// buffer level its selection is ≤ the avg variant's (§6.8).
	for _, buf := range []float64{10, 25, 40, 55} {
		p := NewBOLAE(v, BOLAPeak, false).Select(State{ChunkIndex: 10, Buffer: buf})
		a := NewBOLAE(v, BOLAAvg, false).Select(State{ChunkIndex: 10, Buffer: buf})
		if p > a {
			t.Errorf("buffer %v: peak variant picked %d above avg variant's %d", buf, p, a)
		}
	}
}

func TestBOLASegReactsToChunkSize(t *testing.T) {
	v := testVideo()
	ref := v.Tracks[3].ChunkSizesBits
	small, large := 10, 10
	for i := 10; i < v.NumChunks()-10; i++ {
		if ref[i] < ref[small] {
			small = i
		}
		if ref[i] > ref[large] {
			large = i
		}
	}
	b := NewBOLAE(v, BOLASeg, false)
	ls := b.Select(State{ChunkIndex: small, Buffer: 35})
	bl := NewBOLAE(v, BOLASeg, false)
	ll := bl.Select(State{ChunkIndex: large, Buffer: 35})
	if ll > ls {
		t.Errorf("seg variant gave the large chunk %d above the small chunk's %d", ll, ls)
	}
}

func TestBOLADelayWhenBufferAboveCeiling(t *testing.T) {
	v := testVideo()
	b := NewBOLAE(v, BOLAAvg, false)
	if d := b.Delay(State{ChunkIndex: 10, Buffer: 5}); d != 0 {
		t.Errorf("low-buffer delay = %v, want 0", d)
	}
	if d := b.Delay(State{ChunkIndex: 10, Buffer: 99}); d <= 0 {
		t.Error("BOLA should pause with a near-full buffer")
	}
}

func TestBOLAEPlaceholderAbsorbsDelay(t *testing.T) {
	v := testVideo()
	b := NewBOLAE(v, BOLAAvg, true)
	b.placeholder = 30
	d1 := b.Delay(State{ChunkIndex: 10, Buffer: 50})
	// The placeholder should be drained before a real pause is requested.
	if b.placeholder >= 30 {
		t.Error("placeholder not drained by Delay")
	}
	plain := NewBOLAE(v, BOLAAvg, false)
	d2 := plain.Delay(State{ChunkIndex: 10, Buffer: 80})
	if d1 > d2 {
		t.Errorf("enhanced delay %v exceeds plain delay %v at lower buffer", d1, d2)
	}
}

func TestBOLAEInsufficientBufferRule(t *testing.T) {
	v := testVideo()
	b := NewBOLAE(v, BOLAAvg, true)
	// Large placeholder, tiny real buffer: IBR must cap the level at what
	// half the estimate sustains.
	b.placeholder = 50
	b.fastStarted = true
	got := b.Select(State{ChunkIndex: 10, Buffer: 2, Est: 1e6, PrevLevel: 0})
	capLevel := b.throughputLevel(0.5e6, 10)
	if got > capLevel {
		t.Errorf("IBR violated: selected %d above cap %d", got, capLevel)
	}
}

func TestBOLAEOscillationGuard(t *testing.T) {
	v := testVideo()
	b := NewBOLAE(v, BOLAAvg, true)
	b.fastStarted = true
	// High buffer pushes the utility toward the top track, but a modest
	// estimate should cap upward switches near the sustainable level.
	got := b.Select(State{ChunkIndex: 10, Buffer: 55, Est: 1.2e6, PrevLevel: 2})
	if got > 3 {
		t.Errorf("upswitch to %d despite 1.2 Mbps estimate", got)
	}
	if got < 2 {
		t.Errorf("oscillation guard forced a downswitch to %d", got)
	}
}

func TestBOLALevelsAlwaysValid(t *testing.T) {
	v := testVideo()
	for _, variant := range []BOLAVariant{BOLAPeak, BOLAAvg, BOLASeg} {
		for _, enhanced := range []bool{false, true} {
			b := NewBOLAE(v, variant, enhanced)
			for i := 0; i < v.NumChunks(); i += 7 {
				st := State{ChunkIndex: i, Buffer: float64(i % 100), Est: 2e6, PrevLevel: i % 6}
				if l := b.Select(st); l < 0 || l >= v.NumTracks() {
					t.Fatalf("%s selected invalid level %d", b.Name(), l)
				}
			}
		}
	}
}
