package abr

import (
	"math"

	"cava/internal/quality"
	"cava/internal/video"
)

// PANDAMode selects the PANDA/CQ objective over the look-ahead window.
type PANDAMode int

// The two PANDA/CQ variants the paper evaluates (§6.1).
const (
	// MaxSum maximizes the sum of the qualities of the next N chunks.
	MaxSum PANDAMode = iota
	// MaxMin maximizes the minimum quality among the next N chunks.
	MaxMin
)

// PANDACQ implements the consistent-quality window optimization of Li et
// al. (MMSys'14) as characterized in the paper: it is the only baseline
// that consumes per-chunk video-quality values (information not available
// in today's DASH/HLS manifests). Over a window of N future chunks it
// searches track sequences within the window's data budget — the predicted
// bandwidth × window playback time, scaled by BudgetFactor — and picks the
// first track of the sequence optimizing the selected quality objective,
// breaking ties toward fewer track switches and then lower data usage.
// The rate budget is what makes the objectives meaningful: without it,
// max-sum would degenerately select the top track for every chunk. The
// scheme equalizes quality rather than regulating the buffer, so sustained
// over-prediction drains the buffer into stalls — the §6.3/§6.7 behaviour
// the paper reports. When no sequence fits the budget it minimizes data.
type PANDACQ struct {
	v *video.Video
	q *quality.Table
	// Mode is the quality objective.
	Mode PANDAMode
	// Horizon is the look-ahead window in chunks (5 as in CAVA's N).
	Horizon int
	// BufferCap bounds the predicted buffer.
	BufferCap float64
	// BudgetFactor scales the window's data budget relative to the
	// predicted bandwidth (1 keeps the buffer level on average).
	BudgetFactor float64
}

// NewPANDACQ returns a PANDA/CQ instance over the given quality table.
func NewPANDACQ(v *video.Video, q *quality.Table, mode PANDAMode) *PANDACQ {
	return &PANDACQ{v: v, q: q, Mode: mode, Horizon: 5, BufferCap: 100, BudgetFactor: 1}
}

// Name implements Algorithm.
func (p *PANDACQ) Name() string {
	if p.Mode == MaxMin {
		return "PANDA/CQ max-min"
	}
	return "PANDA/CQ max-sum"
}

// Select implements Algorithm.
func (p *PANDACQ) Select(st State) int {
	v := p.v
	pred := st.Est
	if pred <= 0 {
		return 0
	}
	horizon := p.Horizon
	if rem := v.NumChunks() - st.ChunkIndex; rem < horizon {
		horizon = rem
	}
	if horizon <= 0 {
		return clampLevel(st.PrevLevel, v.NumTracks())
	}

	type cand struct {
		feasible bool
		obj      float64 // quality objective (higher better)
		rebuf    float64
		switches int
		bits     float64
		first    int
	}
	best := cand{feasible: false, obj: math.Inf(-1), rebuf: math.Inf(1)}
	better := func(a, b cand) bool {
		if a.feasible != b.feasible {
			return a.feasible
		}
		if !a.feasible {
			// Nothing fits the budget: less data wins.
			//lint:allow floateq exact tie-break between candidate byte sums
			if a.bits != b.bits {
				return a.bits < b.bits
			}
			return a.obj > b.obj
		}
		//lint:allow floateq exact tie-break between candidate objectives
		if a.obj != b.obj {
			return a.obj > b.obj
		}
		if a.switches != b.switches {
			return a.switches < b.switches
		}
		return a.bits < b.bits
	}

	budget := p.BudgetFactor * pred * float64(horizon) * v.ChunkDurSec

	var dfs func(depth int, buf float64, prevL int, sum, min, rebuf, bits float64, switches, first int)
	dfs = func(depth int, buf float64, prevL int, sum, min, rebuf, bits float64, switches, first int) {
		if depth == horizon {
			obj := sum
			if p.Mode == MaxMin {
				obj = min
			}
			c := cand{feasible: bits <= budget, obj: obj, rebuf: rebuf,
				switches: switches, bits: bits, first: first}
			if better(c, best) {
				best = c
			}
			return
		}
		i := st.ChunkIndex + depth
		for l := 0; l < v.NumTracks(); l++ {
			size := v.ChunkSize(l, i)
			dl := size / pred
			b := buf - dl
			rb := rebuf
			if b < 0 {
				rb += -b
				b = 0
			}
			b += v.ChunkDurSec
			if b > p.BufferCap {
				b = p.BufferCap
			}
			q := p.q.At(l, i)
			mn := min
			if q < mn {
				mn = q
			}
			sw := switches
			if prevL >= 0 && l != prevL {
				sw++
			}
			f := first
			if depth == 0 {
				f = l
			}
			dfs(depth+1, b, l, sum+q, mn, rb, bits+size, sw, f)
		}
	}
	dfs(0, st.Buffer, st.PrevLevel, 0, math.Inf(1), 0, 0, 0, 0)
	return best.first
}
