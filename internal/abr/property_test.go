package abr

import (
	"testing"
	"testing/quick"

	"cava/internal/quality"
	"cava/internal/video"
)

// Property tests across every scheme: for arbitrary (bounded) player
// states, Select must return a valid track and never panic, including at
// the video edges and with degenerate estimates.

func allAlgorithms(v *video.Video) []Algorithm {
	pq := quality.NewTable(v, quality.PSNR)
	return []Algorithm{
		NewBBA1(v, 0, 0),
		NewRBA(v, 4),
		NewMPC(v, false),
		NewMPC(v, true),
		NewPANDACQ(v, pq, MaxSum),
		NewPANDACQ(v, pq, MaxMin),
		NewBOLAE(v, BOLAPeak, true),
		NewBOLAE(v, BOLAAvg, true),
		NewBOLAE(v, BOLASeg, true),
		NewBOLAE(v, BOLAAvg, false),
		NewPIA(v),
		NewFESTIVE(v),
		Fixed(3)(v),
	}
}

func TestAllSchemesValidOnArbitraryStates(t *testing.T) {
	v := testVideo()
	algos := allAlgorithms(v)
	f := func(chunkU uint16, bufU uint8, estU uint32, prevI int8, tputU uint32, playing bool) bool {
		st := State{
			ChunkIndex:        int(chunkU) % v.NumChunks(),
			Now:               float64(chunkU),
			Buffer:            float64(bufU % 100),
			Playing:           playing,
			PrevLevel:         int(prevI)%v.NumTracks() - 1, // includes -1 and negatives
			Est:               float64(estU % 20_000_000),
			LastThroughputBps: float64(tputU % 20_000_000),
		}
		for _, a := range algos {
			l := a.Select(st)
			if l < 0 || l >= v.NumTracks() {
				t.Logf("%s returned %d for %+v", a.Name(), l, st)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAllSchemesEdgeStates(t *testing.T) {
	v := testVideo()
	edges := []State{
		{},                                    // zero state
		{ChunkIndex: v.NumChunks() - 1},       // last chunk, no estimate
		{ChunkIndex: 0, Est: 1, Buffer: 0},    // absurdly low estimate
		{ChunkIndex: 5, Est: 1e12, Buffer: 0}, // absurdly high estimate
		{ChunkIndex: 5, Est: 2e6, Buffer: 1e6, PrevLevel: 5},
		{ChunkIndex: v.NumChunks(), Est: 2e6, PrevLevel: 2}, // past the end
	}
	for _, a := range allAlgorithms(v) {
		for i, st := range edges {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s panicked on edge state %d: %v", a.Name(), i, r)
					}
				}()
				if st.ChunkIndex >= v.NumChunks() {
					// Only horizon-based schemes define behaviour past the
					// end; skip the others.
					switch a.(type) {
					case *MPC, *PANDACQ:
					default:
						return
					}
				}
				l := a.Select(st)
				if l < 0 || l >= v.NumTracks() {
					t.Errorf("%s returned %d on edge state %d", a.Name(), l, i)
				}
			}()
		}
	}
}

func TestDelayersNeverNegative(t *testing.T) {
	v := testVideo()
	for _, a := range allAlgorithms(v) {
		d, ok := a.(Delayer)
		if !ok {
			continue
		}
		for buf := 0.0; buf <= 120; buf += 7 {
			if w := d.Delay(State{ChunkIndex: 10, Buffer: buf, Est: 2e6}); w < 0 {
				t.Errorf("%s returned negative delay %v at buffer %v", a.Name(), w, buf)
			}
		}
	}
}
