package abr

import "cava/internal/video"

// This file implements the two myopic schemes of §4: BBA-1 (buffer-based,
// Huang et al. SIGCOMM'14 adapted to VBR via its chunk map) and RBA
// (rate-based, Zhang et al. INFOCOM'17 as described in the paper). Both
// consider only the immediate next chunk, which is exactly the behaviour
// the non-myopic principle corrects: they mechanically pick high levels for
// small (simple) chunks and low levels for large (complex) chunks.

// BBA1 is the buffer-based scheme: a chunk map linearly maps the current
// buffer level to an allowed chunk size between the average chunk size of
// the lowest track and that of the highest track; the scheme picks the
// highest track whose next chunk fits.
type BBA1 struct {
	v *video.Video
	// ReservoirSec is the buffer level below which the lowest track is
	// always selected.
	ReservoirSec float64
	// CushionEndSec is the buffer level at which the highest track
	// becomes allowed.
	CushionEndSec float64
}

// NewBBA1 returns a BBA-1 instance with the given reservoir and cushion
// end (defaults 10 s and 90 s when non-positive).
func NewBBA1(v *video.Video, reservoirSec, cushionEndSec float64) *BBA1 {
	if reservoirSec <= 0 {
		reservoirSec = 10
	}
	if cushionEndSec <= reservoirSec {
		cushionEndSec = 90
	}
	return &BBA1{v: v, ReservoirSec: reservoirSec, CushionEndSec: cushionEndSec}
}

// Name implements Algorithm.
func (b *BBA1) Name() string { return "BBA-1" }

// Select implements Algorithm.
func (b *BBA1) Select(st State) int {
	v := b.v
	i := st.ChunkIndex
	loAvg := v.AvgBitrateBps(0) * v.ChunkDurSec
	hiAvg := v.AvgBitrateBps(v.NumTracks()-1) * v.ChunkDurSec

	var allowed float64
	switch {
	case st.Buffer <= b.ReservoirSec:
		allowed = loAvg
	case st.Buffer >= b.CushionEndSec:
		allowed = hiAvg
	default:
		f := (st.Buffer - b.ReservoirSec) / (b.CushionEndSec - b.ReservoirSec)
		allowed = loAvg + f*(hiAvg-loAvg)
	}
	level := 0
	for l := 0; l < v.NumTracks(); l++ {
		if v.ChunkSize(l, i) <= allowed {
			level = l
		}
	}
	return level
}

// RBA is the rate-based scheme: it selects the highest track such that,
// after downloading the corresponding chunk at the estimated bandwidth, the
// buffer still holds at least MinChunks chunks.
type RBA struct {
	v *video.Video
	// MinChunks is the number of chunks that must remain buffered after
	// the download (4 in the paper).
	MinChunks int
}

// NewRBA returns an RBA instance; minChunks defaults to 4 when non-positive.
func NewRBA(v *video.Video, minChunks int) *RBA {
	if minChunks <= 0 {
		minChunks = 4
	}
	return &RBA{v: v, MinChunks: minChunks}
}

// Name implements Algorithm.
func (r *RBA) Name() string { return "RBA" }

// Select implements Algorithm.
func (r *RBA) Select(st State) int {
	v := r.v
	if st.Est <= 0 {
		return 0
	}
	need := float64(r.MinChunks) * v.ChunkDurSec
	level := 0
	for l := 0; l < v.NumTracks(); l++ {
		dl := v.ChunkSize(l, st.ChunkIndex) / st.Est
		if st.Buffer-dl >= need {
			level = l
		}
	}
	return level
}
