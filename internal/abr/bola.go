package abr

import (
	"math"

	"cava/internal/video"
)

// BOLAVariant selects how BOLA-E interprets track bitrates for VBR content,
// mirroring the three versions evaluated in §6.8.
type BOLAVariant int

// The three declared-bitrate variants.
const (
	// BOLAPeak uses each track's peak bitrate as its declared bitrate —
	// the most conservative treatment (overestimates every chunk).
	BOLAPeak BOLAVariant = iota
	// BOLAAvg uses each track's average bitrate — the most aggressive.
	BOLAAvg
	// BOLASeg uses the actual per-chunk size, as the BOLA paper suggests
	// for VBR encodings — in between, but with more quality changes.
	BOLASeg
)

// String returns the variant label used in the paper's tables.
func (v BOLAVariant) String() string {
	switch v {
	case BOLAPeak:
		return "peak"
	case BOLAAvg:
		return "avg"
	case BOLASeg:
		return "seg"
	default:
		return "?"
	}
}

// BOLAE implements BOLA (Spiteri et al., INFOCOM'16) and its production
// BOLA-E refinement (MMSys'18): a Lyapunov-utility scheme that maximizes
// (V·(υ_l + γp) − Q)/S_l over tracks l, pausing when no track has positive
// utility (Q above the derived target). The enhanced mode adds the two
// dash.js behaviours the paper calls out in §6.8: a placeholder buffer for
// fast startup, and bitrate capping on upward switches to avoid
// oscillations. The variant controls the S_l a VBR deployment would use.
type BOLAE struct {
	v *video.Video
	// Variant selects the declared-bitrate interpretation.
	Variant BOLAVariant
	// Enhanced enables the BOLA-E placeholder and oscillation guards;
	// when false the scheme is plain BOLA.
	Enhanced bool
	// TargetBuffer is the buffer level (seconds) BOLA steers toward.
	TargetBuffer float64
	// GammaP is the γp smoothing weight in seconds.
	GammaP float64

	vParam      float64
	placeholder float64
	fastStarted bool
}

// NewBOLAE returns a BOLA-E instance with a 25-second buffer target, in
// line with dash.js's stable buffer target; BOLA therefore pauses once the
// buffer exceeds its derived ceiling, which is the source of its lower
// data usage in §6.8.
func NewBOLAE(v *video.Video, variant BOLAVariant, enhanced bool) *BOLAE {
	b := &BOLAE{
		v:            v,
		Variant:      variant,
		Enhanced:     enhanced,
		TargetBuffer: 25,
		GammaP:       5,
	}
	b.calibrate()
	return b
}

// calibrate derives the Lyapunov V from the buffer target so the highest
// track is chosen as the buffer approaches the target.
func (b *BOLAE) calibrate() {
	n := b.v.NumTracks()
	utilMax := math.Log(b.declaredBitrate(n-1) / b.declaredBitrate(0))
	b.vParam = (b.TargetBuffer - b.v.ChunkDurSec) / (utilMax + b.GammaP)
}

// declaredBitrate returns the variant-level bitrate used for calibration
// (per-chunk sizes still apply at decision time for the seg variant).
func (b *BOLAE) declaredBitrate(l int) float64 {
	switch b.Variant {
	case BOLAPeak:
		return b.v.Tracks[l].PeakBitrateBps
	default:
		return b.v.Tracks[l].AvgBitrateBps
	}
}

// size returns the decision size in bits of chunk i at level l under the
// configured variant.
func (b *BOLAE) size(l, i int) float64 {
	switch b.Variant {
	case BOLAPeak:
		return b.v.Tracks[l].PeakBitrateBps * b.v.ChunkDurSec
	case BOLAAvg:
		return b.v.Tracks[l].AvgBitrateBps * b.v.ChunkDurSec
	default:
		return b.v.ChunkSize(l, i)
	}
}

// Name implements Algorithm.
func (b *BOLAE) Name() string {
	if b.Enhanced {
		return "BOLA-E (" + b.Variant.String() + ")"
	}
	return "BOLA (" + b.Variant.String() + ")"
}

// utility returns υ_l for chunk i.
func (b *BOLAE) utility(l, i int) float64 {
	return math.Log(b.size(l, i) / b.size(0, i))
}

// Select implements Algorithm.
func (b *BOLAE) Select(st State) int {
	v := b.v
	i := st.ChunkIndex

	// BOLA-E fast start: once the first throughput sample arrives, seed
	// the placeholder so the utility rule starts near the sustainable
	// level instead of crawling up from the bottom. The placeholder only
	// lifts the utility operating point; the insufficient-buffer rule
	// below still protects the (real) near-empty buffer.
	if b.Enhanced && !b.fastStarted && st.Est > 0 {
		lt := b.throughputLevel(st.Est, i)
		q := b.vParam * (b.utility(lt, i) + b.GammaP)
		if ph := 0.8*q - st.Buffer; ph > 0 {
			b.placeholder = ph
		}
		b.fastStarted = true
	}

	qe := st.Buffer + b.placeholder
	best, bestScore := 0, math.Inf(-1)
	for l := 0; l < v.NumTracks(); l++ {
		s := b.size(l, i)
		score := (b.vParam*(b.utility(l, i)+b.GammaP) - qe) / s
		if score > bestScore {
			best, bestScore = l, score
		}
	}

	if b.Enhanced && st.PrevLevel >= 0 && best > st.PrevLevel && st.Est > 0 {
		// Oscillation compensation: cap upward switches at the highest
		// level sustainable by the estimated throughput, without forcing
		// a downswitch.
		lt := b.throughputLevel(st.Est, i)
		if best > lt {
			capped := lt
			if capped < st.PrevLevel {
				capped = st.PrevLevel
			}
			// Absorb the skipped utility into the placeholder as BOLA-E
			// does, keeping the Lyapunov accounting consistent.
			b.placeholder += b.vParam * (b.utility(best, i) - b.utility(capped, i))
			best = capped
		}
	}
	if b.Enhanced && st.Est > 0 && st.Buffer < 2*b.v.ChunkDurSec {
		// Insufficient-buffer rule: with almost nothing buffered, never
		// request more than a conservative fraction of the estimated
		// throughput regardless of what the utility (inflated by the
		// placeholder) suggests.
		if lt := b.throughputLevel(0.5*st.Est, i); best > lt {
			best = lt
		}
	}
	return best
}

// throughputLevel returns the highest level whose decision bitrate fits the
// estimate.
func (b *BOLAE) throughputLevel(est float64, i int) int {
	lt := 0
	for l := 0; l < b.v.NumTracks(); l++ {
		if b.size(l, i)/b.v.ChunkDurSec <= est {
			lt = l
		}
	}
	return lt
}

// Delay implements Delayer: BOLA pauses when every track's utility is
// negative, i.e. the (effective) buffer exceeds the derived ceiling. The
// enhanced variant drains the placeholder before pausing for real, so only
// genuine oversupply causes an idle period (the paper observes these pauses
// as BOLA-E's lower data usage).
func (b *BOLAE) Delay(st State) float64 {
	i := st.ChunkIndex
	ceiling := 0.0
	for l := 0; l < b.v.NumTracks(); l++ {
		if q := b.vParam * (b.utility(l, i) + b.GammaP); q > ceiling {
			ceiling = q
		}
	}
	over := st.Buffer + b.placeholder - ceiling
	if over <= 0 {
		return 0
	}
	if b.Enhanced && b.placeholder > 0 {
		drain := math.Min(b.placeholder, over)
		b.placeholder -= drain
		over -= drain
	}
	if over < 0 {
		over = 0
	}
	return over
}
