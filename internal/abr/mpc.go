package abr

import (
	"math"

	"cava/internal/video"
)

// MPC implements the model-predictive-control scheme of Yin et al.
// (SIGCOMM'15) with the paper's recommended VBR adaptation: actual chunk
// sizes drive the predicted buffer evolution. At each decision it searches
// all track sequences over a finite horizon, simulates the buffer under the
// predicted bandwidth, and picks the first track of the sequence maximizing
//
//	QoE = Σ q_k − λ Σ |q_k − q_{k−1}| − μ Σ rebuffer_k
//
// where q_k is the chunk bitrate in Mbps. RobustMPC divides the bandwidth
// prediction by (1 + max recent relative prediction error), trading some
// quality for much less rebuffering under volatile bandwidth.
type MPC struct {
	v *video.Video
	// Horizon is the look-ahead length in chunks (5 in the paper).
	Horizon int
	// LambdaSwitch weighs the quality-change penalty.
	LambdaSwitch float64
	// MuRebuf weighs the rebuffering penalty (quality units per second).
	MuRebuf float64
	// BufferCap bounds the predicted buffer (the player's max buffer).
	BufferCap float64
	// Robust enables the RobustMPC error-discounted prediction.
	Robust bool

	errWindow []float64
	lastPred  float64
}

// NewMPC returns an MPC instance with the paper-aligned defaults
// (horizon 5, λ=1, μ=6 quality-units/s, 100 s buffer cap).
func NewMPC(v *video.Video, robust bool) *MPC {
	return &MPC{
		v:            v,
		Horizon:      5,
		LambdaSwitch: 1,
		MuRebuf:      6,
		BufferCap:    100,
		Robust:       robust,
	}
}

// Name implements Algorithm.
func (m *MPC) Name() string {
	if m.Robust {
		return "RobustMPC"
	}
	return "MPC"
}

// qual returns the MPC quality of chunk i at level l: its bitrate in Mbps.
func (m *MPC) qual(l, i int) float64 {
	return m.v.ChunkBitrate(l, i) / 1e6
}

// Select implements Algorithm.
func (m *MPC) Select(st State) int {
	v := m.v
	// Track prediction error for the robust discount.
	if m.lastPred > 0 && st.LastThroughputBps > 0 {
		e := math.Abs(m.lastPred-st.LastThroughputBps) / m.lastPred
		m.errWindow = append(m.errWindow, e)
		if len(m.errWindow) > 5 {
			m.errWindow = m.errWindow[len(m.errWindow)-5:]
		}
	}
	pred := st.Est
	m.lastPred = pred
	if pred <= 0 {
		return 0
	}
	if m.Robust {
		maxErr := 0.0
		for _, e := range m.errWindow {
			if e > maxErr {
				maxErr = e
			}
		}
		pred /= 1 + maxErr
	}

	horizon := m.Horizon
	if rem := v.NumChunks() - st.ChunkIndex; rem < horizon {
		horizon = rem
	}
	if horizon <= 0 {
		return clampLevel(st.PrevLevel, v.NumTracks())
	}

	prevQ := 0.0
	havePrev := st.PrevLevel >= 0
	if havePrev {
		if pi := st.ChunkIndex - 1; pi >= 0 {
			prevQ = m.qual(st.PrevLevel, pi)
		}
	}

	best := math.Inf(-1)
	bestFirst := 0
	var dfs func(depth int, buf, prevQ, acc float64, first int, hasPrev bool)
	dfs = func(depth int, buf, prevQ, acc float64, first int, hasPrev bool) {
		if depth == horizon {
			if acc > best {
				best = acc
				bestFirst = first
			}
			return
		}
		i := st.ChunkIndex + depth
		for l := 0; l < v.NumTracks(); l++ {
			dl := v.ChunkSize(l, i) / pred
			b := buf - dl
			rebuf := 0.0
			if b < 0 {
				rebuf = -b
				b = 0
			}
			b += v.ChunkDurSec
			if b > m.BufferCap {
				b = m.BufferCap
			}
			q := m.qual(l, i)
			a := acc + q - m.MuRebuf*rebuf
			if hasPrev {
				a -= m.LambdaSwitch * math.Abs(q-prevQ)
			}
			f := first
			if depth == 0 {
				f = l
			}
			dfs(depth+1, b, q, a, f, true)
		}
	}
	dfs(0, st.Buffer, prevQ, 0, 0, havePrev)
	return bestFirst
}
