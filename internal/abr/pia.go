package abr

import (
	"math"

	"cava/internal/video"
)

// PIA implements the PID-control ABR scheme of Qin et al. (INFOCOM'17) —
// the CBR-era feedback framework CAVA generalizes (§5). PIA regulates the
// buffer toward a *fixed* target with the control law
//
//	u_t = Kp(x_r − x_t) + Ki∫(x_r − x_τ)dτ + 1(x_t − Δ)
//
// and picks the track whose *average* bitrate is closest to Ĉ/u_t from
// below. Unlike CAVA it knows nothing about per-chunk sizes: each track is
// its declared average, which is exactly the CBR assumption that breaks
// down for VBR content (the gap CAVA's three principles close).
type PIA struct {
	v *video.Video
	// TargetBuffer is the fixed buffer target x_r in seconds.
	TargetBuffer float64
	// Kp and Ki are the PID gains.
	Kp, Ki float64
	// UMin and UMax clamp the control signal.
	UMin, UMax float64

	integral float64
	lastNow  float64
	primed   bool
}

// NewPIA returns a PIA instance with gains matching this repository's CAVA
// configuration (the paper tunes both the same way).
func NewPIA(v *video.Video) *PIA {
	return &PIA{
		v:            v,
		TargetBuffer: 60,
		Kp:           0.06,
		Ki:           0.0004,
		UMin:         0.35,
		UMax:         2.5,
	}
}

// Name implements Algorithm.
func (p *PIA) Name() string { return "PIA" }

// Select implements Algorithm.
func (p *PIA) Select(st State) int {
	if st.Est <= 0 {
		return 0
	}
	e := p.TargetBuffer - st.Buffer
	if p.primed {
		if dt := st.Now - p.lastNow; dt > 0 {
			p.integral += e * dt
			if lim := 0.8 / p.Ki; p.integral > lim {
				p.integral = lim
			} else if p.integral < -lim {
				p.integral = -lim
			}
		}
	} else {
		p.primed = true
	}
	p.lastNow = st.Now

	u := p.Kp*e + p.Ki*p.integral
	if st.Buffer >= p.v.ChunkDurSec {
		u++
	}
	u = math.Max(p.UMin, math.Min(p.UMax, u))

	// Highest track whose average bitrate fits the controller's budget.
	budget := st.Est / u
	level := 0
	for l := 0; l < p.v.NumTracks(); l++ {
		if p.v.AvgBitrateBps(l) <= budget {
			level = l
		}
	}
	return level
}

// FESTIVE implements the rate-based scheme of Jiang et al. (CoNEXT'12) in
// its single-player essentials: a harmonic-mean bandwidth estimate drives a
// reference track (with a conservative safety factor), upward switches are
// delayed until the reference has persisted for a few chunks (gradual
// switching), and downward switches happen immediately. Like RBA it treats
// a track's declared average as its cost — another CBR assumption that
// mishandles VBR bursts.
type FESTIVE struct {
	v *video.Video
	// SafetyFactor discounts the estimate (0.85 per the paper's p=0.85).
	SafetyFactor float64
	// UpDelay is how many consecutive chunks the reference must stay
	// above the current level before switching up one step.
	//lint:allow units UpDelay counts chunks, not a physical quantity
	UpDelay int

	upStreak int
}

// NewFESTIVE returns a FESTIVE instance with the original constants.
func NewFESTIVE(v *video.Video) *FESTIVE {
	return &FESTIVE{v: v, SafetyFactor: 0.85, UpDelay: 3}
}

// Name implements Algorithm.
func (f *FESTIVE) Name() string { return "FESTIVE" }

// Select implements Algorithm.
func (f *FESTIVE) Select(st State) int {
	if st.Est <= 0 {
		return 0
	}
	budget := f.SafetyFactor * st.Est
	ref := 0
	for l := 0; l < f.v.NumTracks(); l++ {
		if f.v.AvgBitrateBps(l) <= budget {
			ref = l
		}
	}
	cur := st.PrevLevel
	if cur < 0 {
		f.upStreak = 0
		return ref
	}
	switch {
	case ref > cur:
		f.upStreak++
		if f.upStreak >= f.UpDelay {
			f.upStreak = 0
			return cur + 1 // gradual: one level at a time
		}
		return cur
	case ref < cur:
		f.upStreak = 0
		return ref // immediate down-switch
	default:
		f.upStreak = 0
		return cur
	}
}
