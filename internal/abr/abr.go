// Package abr defines the rate-adaptation interface shared by every scheme
// and implements the state-of-the-art baselines the CAVA paper compares
// against (§6.1): MPC and RobustMPC (model-predictive control), PANDA/CQ
// max-sum and max-min (consistent-quality dynamic programming), BOLA and
// BOLA-E with its peak/avg/seg declared-bitrate variants, BBA-1
// (buffer-based) and RBA (rate-based).
//
// Algorithms see exactly what a DASH/HLS client sees: the manifest (track
// ladder, declared bitrates, per-chunk sizes), the player buffer, and an
// application-level bandwidth estimate. Only PANDA/CQ additionally consumes
// per-chunk quality values, which the paper notes are not available in
// today's ABR protocols; it is included as a strong reference point.
package abr

import (
	"cava/internal/telemetry"
	"cava/internal/video"
)

// State is the player state visible to an adaptation decision. It contains
// only client-observable quantities.
type State struct {
	// ChunkIndex is the index of the chunk to select a track for.
	ChunkIndex int
	// Now is the current wall-clock time in seconds since session start.
	Now float64
	// Buffer is the seconds of video currently buffered.
	Buffer float64
	// Playing reports whether playback has started (startup phase over).
	Playing bool
	// PrevLevel is the track chosen for the previous chunk, or -1 before
	// the first chunk.
	PrevLevel int
	// Est is the predicted network bandwidth in bits/sec (0 if unknown).
	Est float64
	// LastThroughputBps is the measured throughput of the most recent chunk
	// download in bits/sec (0 before the first download).
	LastThroughputBps float64
}

// Algorithm selects a track for each chunk. Implementations are stateful
// per streaming session and must not be shared across concurrent sessions.
type Algorithm interface {
	// Name identifies the scheme (used in result tables).
	Name() string
	// Select returns the track level (0-based) for chunk st.ChunkIndex.
	Select(st State) int
}

// Delayer is an optional interface for schemes that deliberately pause
// before fetching the next chunk (e.g. BOLA when no action has positive
// utility). The player drains the returned delay from the buffer before
// asking for a decision again.
type Delayer interface {
	// Delay returns how many seconds to wait before downloading chunk
	// st.ChunkIndex, or 0 to proceed immediately.
	Delay(st State) float64
}

// Traced is an optional interface for schemes that emit their own decision
// trace events with controller internals (CAVA records the PID terms and
// per-track objective scores behind each choice). The player attaches the
// session's recorder before the first Select; for algorithms that do not
// implement Traced the player records a plain decide event itself, so every
// session yields exactly one decide event per chunk either way.
type Traced interface {
	// SetRecorder attaches the recorder and the session identifier used in
	// emitted events. A nil recorder disables tracing (the default).
	SetRecorder(rec telemetry.Recorder, session string)
}

// Factory builds a fresh per-session Algorithm instance for a video.
type Factory func(v *video.Video) Algorithm

// Scheme pairs a display name with a factory, for experiment sweeps.
// Name labels the scheme's results and must be unique within one sweep.
// Key, when non-empty, discriminates the factory's configuration for
// cache fingerprints: two schemes with the same Name but different
// parameters (e.g. a parameter sweep rebuilding "CAVA" with varying
// controller settings) must carry distinct Keys, or a memoized sweep
// result for one configuration would be returned for another. A factory
// closed over nothing but the scheme name may leave Key empty.
type Scheme struct {
	Name string
	Key  string
	New  Factory
}

// ClampLevel bounds a level into the video's valid track range. It is the
// single clamping rule shared by the simulator and the live DASH client, so
// the two execution paths cannot drift in how they defend against an
// out-of-range Select result.
func ClampLevel(l, numTracks int) int {
	if l < 0 {
		return 0
	}
	if l >= numTracks {
		return numTracks - 1
	}
	return l
}

// clampLevel is the historical package-private spelling.
func clampLevel(l, numTracks int) int { return ClampLevel(l, numTracks) }

// Fixed returns an Algorithm that always selects the same track level,
// useful as a floor/ceiling reference and in tests.
func Fixed(level int) Factory {
	return func(v *video.Video) Algorithm {
		return fixed{level: clampLevel(level, v.NumTracks())}
	}
}

type fixed struct{ level int }

func (f fixed) Name() string     { return "Fixed" }
func (f fixed) Select(State) int { return f.level }
