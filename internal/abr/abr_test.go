package abr

import (
	"testing"

	"cava/internal/video"
)

func testVideo() *video.Video {
	return video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
}

func TestFixed(t *testing.T) {
	v := testVideo()
	a := Fixed(3)(v)
	if a.Name() != "Fixed" {
		t.Errorf("name = %q", a.Name())
	}
	if got := a.Select(State{ChunkIndex: 0}); got != 3 {
		t.Errorf("Fixed(3) selected %d", got)
	}
	if got := Fixed(99)(v).Select(State{}); got != v.NumTracks()-1 {
		t.Errorf("Fixed(99) clamps to %d, got %d", v.NumTracks()-1, got)
	}
	if got := Fixed(-1)(v).Select(State{}); got != 0 {
		t.Errorf("Fixed(-1) clamps to 0, got %d", got)
	}
}

func TestClampLevel(t *testing.T) {
	if clampLevel(-3, 6) != 0 || clampLevel(7, 6) != 5 || clampLevel(2, 6) != 2 {
		t.Error("clampLevel broken")
	}
}

func TestBBA1BufferMap(t *testing.T) {
	v := testVideo()
	b := NewBBA1(v, 10, 90)
	i := 10

	// Below the reservoir: lowest track always.
	if got := b.Select(State{ChunkIndex: i, Buffer: 5}); got != 0 {
		t.Errorf("below reservoir selected %d, want 0", got)
	}
	// At/above the cushion end: the track whose chunk fits the highest
	// allowed size (the top track's average chunk).
	high := b.Select(State{ChunkIndex: i, Buffer: 95})
	if high < 4 {
		t.Errorf("above cushion selected %d, want a top track", high)
	}
	// Monotone non-decreasing in buffer.
	prev := -1
	for buf := 0.0; buf <= 100; buf += 5 {
		l := b.Select(State{ChunkIndex: i, Buffer: buf})
		if l < prev {
			t.Fatalf("BBA-1 level decreased from %d to %d as buffer grew to %v", prev, l, buf)
		}
		prev = l
	}
}

func TestBBA1IsMyopic(t *testing.T) {
	// At the same buffer level, a large (complex) chunk gets a lower or
	// equal track than a small (simple) chunk — the myopic behaviour the
	// paper's Fig. 4 calls out.
	v := testVideo()
	b := NewBBA1(v, 10, 90)
	ref := v.Tracks[3].ChunkSizesBits
	small, large := 0, 0
	for i := 1; i < v.NumChunks(); i++ {
		if ref[i] < ref[small] {
			small = i
		}
		if ref[i] > ref[large] {
			large = i
		}
	}
	ls := b.Select(State{ChunkIndex: small, Buffer: 50})
	ll := b.Select(State{ChunkIndex: large, Buffer: 50})
	if ll > ls {
		t.Errorf("BBA-1 gave the large chunk a higher track (%d) than the small one (%d)", ll, ls)
	}
}

func TestBBA1Defaults(t *testing.T) {
	v := testVideo()
	b := NewBBA1(v, 0, 0)
	if b.ReservoirSec != 10 || b.CushionEndSec != 90 {
		t.Errorf("defaults = %v/%v", b.ReservoirSec, b.CushionEndSec)
	}
	if b.Name() != "BBA-1" {
		t.Errorf("name = %q", b.Name())
	}
}

func TestRBA(t *testing.T) {
	v := testVideo()
	r := NewRBA(v, 4)
	if r.Name() != "RBA" {
		t.Errorf("name = %q", r.Name())
	}
	// Without an estimate: lowest track.
	if got := r.Select(State{ChunkIndex: 0, Buffer: 50}); got != 0 {
		t.Errorf("no-estimate selection = %d, want 0", got)
	}
	// With a huge estimate and buffer, the top track keeps 4 chunks.
	if got := r.Select(State{ChunkIndex: 0, Buffer: 80, Est: 1e9}); got != v.NumTracks()-1 {
		t.Errorf("rich selection = %d, want top", got)
	}
	// Monotone non-decreasing in the estimate.
	prev := -1
	for est := 1e5; est < 1e8; est *= 2 {
		l := r.Select(State{ChunkIndex: 5, Buffer: 40, Est: est})
		if l < prev {
			t.Fatalf("RBA level decreased as estimate grew")
		}
		prev = l
	}
	// With exactly 4 chunks buffered, any download violates the floor
	// unless instantaneous; RBA must pick the lowest.
	if got := r.Select(State{ChunkIndex: 0, Buffer: 4 * v.ChunkDurSec, Est: 1e6}); got != 0 {
		t.Errorf("at-floor selection = %d, want 0", got)
	}
}

func TestRBADefaultMinChunks(t *testing.T) {
	if NewRBA(testVideo(), 0).MinChunks != 4 {
		t.Error("default MinChunks not 4")
	}
}

func TestMPCNames(t *testing.T) {
	v := testVideo()
	if NewMPC(v, false).Name() != "MPC" || NewMPC(v, true).Name() != "RobustMPC" {
		t.Error("MPC names wrong")
	}
}

func TestMPCNoEstimatePicksLowest(t *testing.T) {
	v := testVideo()
	if got := NewMPC(v, false).Select(State{ChunkIndex: 0, Buffer: 10}); got != 0 {
		t.Errorf("MPC without estimate selected %d", got)
	}
}

func TestMPCRichNetworkPicksTop(t *testing.T) {
	v := testVideo()
	m := NewMPC(v, false)
	got := m.Select(State{ChunkIndex: 0, Buffer: 60, Est: 1e9, PrevLevel: -1})
	if got != v.NumTracks()-1 {
		t.Errorf("MPC with huge bandwidth selected %d, want top", got)
	}
}

func TestMPCPoorNetworkLowBufferPicksBottom(t *testing.T) {
	v := testVideo()
	m := NewMPC(v, false)
	got := m.Select(State{ChunkIndex: 0, Buffer: 2, Est: 5e4, PrevLevel: -1})
	if got != 0 {
		t.Errorf("MPC near-stall selected %d, want 0", got)
	}
}

func TestMPCMonotoneInBandwidth(t *testing.T) {
	v := testVideo()
	prev := -1
	for est := 2e5; est < 2e8; est *= 2 {
		m := NewMPC(v, false)
		l := m.Select(State{ChunkIndex: 10, Buffer: 50, Est: est, PrevLevel: 2})
		if l < prev {
			t.Fatalf("MPC level decreased as bandwidth grew (est=%v: %d -> %d)", est, prev, l)
		}
		prev = l
	}
}

func TestRobustMPCMoreConservative(t *testing.T) {
	v := testVideo()
	// Feed both variants a history of large over-predictions; the robust
	// variant must discount the estimate and pick a lower-or-equal track.
	mkHistory := func(m *MPC) {
		for k := 0; k < 5; k++ {
			m.Select(State{ChunkIndex: k, Buffer: 30, Est: 4e6, LastThroughputBps: 1.5e6, PrevLevel: 2})
		}
	}
	plain, robust := NewMPC(v, false), NewMPC(v, true)
	mkHistory(plain)
	mkHistory(robust)
	st := State{ChunkIndex: 6, Buffer: 30, Est: 4e6, LastThroughputBps: 1.5e6, PrevLevel: 2}
	lp, lr := plain.Select(st), robust.Select(st)
	if lr > lp {
		t.Errorf("RobustMPC picked %d above MPC's %d despite bad prediction history", lr, lp)
	}
	if lr == lp {
		// At minimum the robust internal prediction must be discounted; the
		// track choice may coincide on coarse ladders.
		t.Logf("levels coincide (%d); acceptable on a coarse ladder", lp)
	}
}

func TestMPCHorizonShrinksAtEnd(t *testing.T) {
	v := testVideo()
	m := NewMPC(v, false)
	last := v.NumChunks() - 1
	if got := m.Select(State{ChunkIndex: last, Buffer: 50, Est: 3e6, PrevLevel: 3}); got < 0 || got >= v.NumTracks() {
		t.Errorf("end-of-video selection %d out of range", got)
	}
	// Past the end: return the previous level, clamped.
	if got := m.Select(State{ChunkIndex: v.NumChunks(), Buffer: 50, Est: 3e6, PrevLevel: 3}); got != 3 {
		t.Errorf("past-end selection %d, want 3", got)
	}
}
