package abr_test

import (
	"testing"

	"cava/internal/abr"
	"cava/internal/player"
	"cava/internal/trace"
	"cava/internal/video"
)

func testVideoExt() *video.Video {
	return video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
}

func TestPIANoEstimate(t *testing.T) {
	p := abr.NewPIA(testVideoExt())
	if got := p.Select(abr.State{ChunkIndex: 0, Buffer: 30}); got != 0 {
		t.Errorf("PIA without estimate selected %d", got)
	}
	if p.Name() != "PIA" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestPIABufferFeedback(t *testing.T) {
	v := testVideoExt()
	// Below target: conservative (u > 1 shrinks the budget). Above
	// target: aggressive. Same estimate, fresh controllers.
	lo := abr.NewPIA(v).Select(abr.State{ChunkIndex: 10, Now: 0, Buffer: 10, Est: 2.5e6, PrevLevel: 2})
	hi := abr.NewPIA(v).Select(abr.State{ChunkIndex: 10, Now: 0, Buffer: 95, Est: 2.5e6, PrevLevel: 2})
	if lo > hi {
		t.Errorf("PIA picked %d below target but %d above target", lo, hi)
	}
	// At equilibrium the budget is the raw estimate: highest avg <= est.
	eq := abr.NewPIA(v).Select(abr.State{ChunkIndex: 10, Now: 0, Buffer: 60, Est: 2.5e6, PrevLevel: 2})
	want := 0
	for l := 0; l < v.NumTracks(); l++ {
		if v.AvgBitrateBps(l) <= 2.5e6 {
			want = l
		}
	}
	if eq != want {
		t.Errorf("PIA at equilibrium picked %d, want %d", eq, want)
	}
}

func TestPIAMonotoneInBandwidth(t *testing.T) {
	v := testVideoExt()
	prev := -1
	for est := 2e5; est < 1e8; est *= 2 {
		l := abr.NewPIA(v).Select(abr.State{ChunkIndex: 5, Now: 0, Buffer: 60, Est: est, PrevLevel: 2})
		if l < prev {
			t.Fatal("PIA level decreased as bandwidth grew")
		}
		prev = l
	}
}

func TestPIAFullSession(t *testing.T) {
	v := testVideoExt()
	res, err := player.Simulate(v, trace.GenLTE(1), abr.NewPIA(v), player.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != v.NumChunks() {
		t.Fatal("PIA session incomplete")
	}
}

func TestFESTIVEGradualUpswitch(t *testing.T) {
	v := testVideoExt()
	f := abr.NewFESTIVE(v)
	// Reference well above the current level: the first UpDelay-1 calls
	// hold, then one step up.
	st := abr.State{ChunkIndex: 10, Buffer: 40, Est: 1e8, PrevLevel: 1}
	if got := f.Select(st); got != 1 {
		t.Fatalf("upswitch after 1 streak chunk: %d", got)
	}
	if got := f.Select(st); got != 1 {
		t.Fatalf("upswitch after 2 streak chunks: %d", got)
	}
	if got := f.Select(st); got != 2 {
		t.Fatalf("third streak chunk should step up one level, got %d", got)
	}
}

func TestFESTIVEImmediateDownswitch(t *testing.T) {
	v := testVideoExt()
	f := abr.NewFESTIVE(v)
	got := f.Select(abr.State{ChunkIndex: 10, Buffer: 40, Est: 3e5, PrevLevel: 4})
	if got >= 4 {
		t.Errorf("FESTIVE held level %d on a collapsed estimate", got)
	}
}

func TestFESTIVESafetyFactor(t *testing.T) {
	v := testVideoExt()
	f := abr.NewFESTIVE(v)
	// First decision (no previous level) goes straight to the reference,
	// which must respect the 0.85 safety factor.
	est := v.AvgBitrateBps(3) / 0.85 * 0.99 // just below what level 3 needs
	got := f.Select(abr.State{ChunkIndex: 0, Buffer: 10, Est: est, PrevLevel: -1})
	if got > 2 {
		t.Errorf("safety factor ignored: selected %d", got)
	}
}

func TestFESTIVEFullSession(t *testing.T) {
	v := testVideoExt()
	res, err := player.Simulate(v, trace.GenLTE(2), abr.NewFESTIVE(v), player.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != v.NumChunks() {
		t.Fatal("FESTIVE session incomplete")
	}
	// Gradual switching: never more than one level up between consecutive
	// chunks.
	for i := 1; i < len(res.Chunks); i++ {
		if res.Chunks[i].Level > res.Chunks[i-1].Level+1 {
			t.Fatalf("FESTIVE jumped from %d to %d", res.Chunks[i-1].Level, res.Chunks[i].Level)
		}
	}
}
