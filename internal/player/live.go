package player

import (
	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/trace"
	"cava/internal/video"
)

// Live streaming simulation (the paper's §8 future-work setting). In live
// ABR the encoder produces chunks in real time: chunk i only becomes
// available at its encode time, the client can never buffer past the live
// edge, and every stall permanently increases the end-to-end latency. The
// scheme sees chunk sizes only up to the live edge (pair with
// core.Live(k) to bound the algorithm's lookahead accordingly).

// LiveConfig extends Config with the live-edge parameters.
type LiveConfig struct {
	// EncoderDelaySec is the encode+packaging delay: chunk i becomes
	// downloadable at i·Δ + EncoderDelaySec (one chunk duration when
	// negative; 0 means the chunk is ready the instant its content ends).
	EncoderDelaySec float64
}

// LiveResult augments Result with latency accounting.
type LiveResult struct {
	Result
	// AvgLatencySec and MaxLatencySec track the playhead's lag behind the
	// live edge while playing (startup excluded).
	AvgLatencySec, MaxLatencySec float64
	// AvailabilityWaitSec is total time spent waiting for chunks that the
	// encoder had not produced yet (the client caught up to the edge).
	AvailabilityWaitSec float64
}

// SimulateLive runs one live streaming session. Wall time 0 is the moment
// chunk 0 becomes available; the client joins then.
func SimulateLive(v *video.Video, tr *trace.Trace, algo abr.Algorithm, cfg Config, lcfg LiveConfig) (*LiveResult, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if cfg.StartupSec <= 0 {
		cfg.StartupSec = 10
	}
	if cfg.MaxBufferSec <= 0 {
		cfg.MaxBufferSec = 100
	}
	if lcfg.EncoderDelaySec < 0 {
		lcfg.EncoderDelaySec = v.ChunkDurSec
	}
	pred := cfg.Predictor
	if pred == nil {
		pred = bandwidth.NewHarmonicMean(bandwidth.DefaultWindow)
	}
	pred.Reset()

	res := &LiveResult{}
	res.VideoID, res.TraceID, res.Scheme = v.ID(), tr.ID, algo.Name()
	delayer, canDelay := algo.(abr.Delayer)

	now := 0.0
	buffer := 0.0
	playing := false
	playStart := 0.0
	stalls := 0.0
	prevLevel := -1
	lastThroughput := 0.0
	n := v.NumChunks()

	// avail is when chunk i becomes downloadable: its content ends at
	// (i+1)Δ relative to chunk 0's content end at 0, plus encode delay.
	avail := func(i int) float64 {
		return float64(i)*v.ChunkDurSec + lcfg.EncoderDelaySec
	}
	drain := func(dt float64) float64 {
		now += dt
		if !playing {
			return 0
		}
		if buffer >= dt {
			buffer -= dt
			return 0
		}
		stall := dt - buffer
		buffer = 0
		return stall
	}
	// latency is the playhead's lag behind the live edge: the content time
	// produced so far minus the content time played out.
	var latSum, latN, latMax float64
	observeLatency := func() {
		if !playing {
			return
		}
		played := now - playStart - stalls
		edge := now + lcfg.EncoderDelaySec // content exists up to "now" at the encoder
		lat := edge - played
		latSum += lat
		latN++
		if lat > latMax {
			latMax = lat
		}
	}

	for i := 0; i < n; i++ {
		rec := ChunkRecord{Index: i, BufferBefore: buffer}

		// Wait for the encoder when the client has caught up to the edge.
		if a := avail(i); now < a {
			wait := a - now
			rec.WaitSec += wait
			res.AvailabilityWaitSec += wait
			st := drain(wait)
			res.TotalRebufferSec += st
			stalls += st
			rec.RebufferSec += st
		}

		st := abr.State{
			ChunkIndex:        i,
			Now:               now,
			Buffer:            buffer,
			Playing:           playing,
			PrevLevel:         prevLevel,
			Est:               pred.Predict(now),
			LastThroughputBps: lastThroughput,
		}
		if canDelay {
			if d := delayer.Delay(st); d > 0 {
				rec.WaitSec += d
				s := drain(d)
				res.TotalRebufferSec += s
				stalls += s
				rec.RebufferSec += s
			}
		}
		if playing && buffer+v.ChunkDurSec > cfg.MaxBufferSec {
			wait := buffer + v.ChunkDurSec - cfg.MaxBufferSec
			rec.WaitSec += wait
			drain(wait)
		}

		st.Now, st.Buffer, st.Est = now, buffer, pred.Predict(now)
		level := st2level(algo, st, v.NumTracks())
		size := v.ChunkSize(level, i)
		dl := tr.DownloadTime(now, size)

		rec.Level = level
		rec.SizeBits = size
		rec.StartTime = now
		rec.DownloadSec = dl
		if dl > 0 {
			rec.ThroughputBps = size / dl
		}
		s := drain(dl)
		res.TotalRebufferSec += s
		stalls += s
		rec.RebufferSec += s
		buffer += v.ChunkDurSec
		rec.BufferAfter = buffer

		pred.ObserveDownload(size, dl)
		lastThroughput = rec.ThroughputBps
		prevLevel = level
		res.Chunks = append(res.Chunks, rec)
		res.TotalBits += size

		if !playing && (buffer >= cfg.StartupSec || i == n-1) {
			playing = true
			playStart = now
			res.StartupDelaySec = now
		}
		observeLatency()
	}
	res.SessionSec = now
	if latN > 0 {
		res.AvgLatencySec = latSum / latN
	}
	res.MaxLatencySec = latMax
	return res, nil
}
