package player

import (
	"math"
	"testing"
	"testing/quick"

	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

func testVideo() *video.Video {
	return video.YouTubeVideo(video.Title{Name: "BBB", Genre: video.Animation})
}

func fixedAlgo(v *video.Video, level int) abr.Algorithm { return abr.Fixed(level)(v) }

func TestAmpleBandwidthNoRebuffer(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("fast", 100e6, 1200, 1)
	res, err := Simulate(v, tr, fixedAlgo(v, 5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRebufferSec != 0 {
		t.Errorf("rebuffered %v s on a 100 Mbps link", res.TotalRebufferSec)
	}
	if len(res.Chunks) != v.NumChunks() {
		t.Errorf("downloaded %d chunks, want %d", len(res.Chunks), v.NumChunks())
	}
	// Data accounting: total equals the sum of top-track chunk sizes.
	want := 0.0
	for _, s := range v.Tracks[5].ChunkSizesBits {
		want += s
	}
	if math.Abs(res.TotalBits-want) > 1 {
		t.Errorf("TotalBits = %v, want %v", res.TotalBits, want)
	}
}

func TestStarvedLinkRebuffers(t *testing.T) {
	v := testVideo()
	// 50 kbps cannot sustain even the lowest track (100 kbps).
	tr := trace.Constant("slow", 5e4, 4000, 1)
	res, err := Simulate(v, tr, fixedAlgo(v, 0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRebufferSec <= 0 {
		t.Error("no rebuffering on a starved link")
	}
}

func TestStartupDelay(t *testing.T) {
	v := testVideo()
	// 1 Mbps link, lowest track (100 kbps avg, 5 s chunks -> ~0.5 s per
	// chunk): two chunks give 10 s of video, so startup ends after two
	// downloads, at roughly 1 s.
	tr := trace.Constant("c", 1e6, 1200, 1)
	res, err := Simulate(v, tr, fixedAlgo(v, 0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.StartupDelaySec <= 0 || res.StartupDelaySec > 5 {
		t.Errorf("startup delay = %v, want ~1s", res.StartupDelaySec)
	}
	// Startup latency config is honored: no playback before 10 s of video
	// is buffered, so no stall can occur during the first two downloads.
	if res.Chunks[0].RebufferSec != 0 || res.Chunks[1].RebufferSec != 0 {
		t.Error("stall during startup phase")
	}
}

func TestMaxBufferRespected(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("fast", 50e6, 1200, 1)
	cfg := DefaultConfig()
	res, err := Simulate(v, tr, fixedAlgo(v, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Chunks {
		if c.BufferAfter > cfg.MaxBufferSec+1e-6 {
			t.Fatalf("buffer %v exceeds max %v at chunk %d", c.BufferAfter, cfg.MaxBufferSec, c.Index)
		}
	}
	// On a fast link the session must be paced by playback: the client
	// waits before downloads once the buffer is full.
	waited := 0.0
	for _, c := range res.Chunks {
		waited += c.WaitSec
	}
	if waited <= 0 {
		t.Error("client never waited despite a 50 Mbps link and a 100 s buffer cap")
	}
}

func TestSessionAccountingInvariants(t *testing.T) {
	v := testVideo()
	f := func(traceIdx uint8, level uint8) bool {
		tr := trace.GenLTE(int(traceIdx) % 30)
		l := int(level) % v.NumTracks()
		res, err := Simulate(v, tr, fixedAlgo(v, l), DefaultConfig())
		if err != nil {
			return false
		}
		if len(res.Chunks) != v.NumChunks() {
			return false
		}
		var bits float64
		prevStart := -1.0
		for i, c := range res.Chunks {
			bits += c.SizeBits
			if c.Index != i || c.Level != l {
				return false
			}
			if c.StartTime < prevStart {
				return false
			}
			prevStart = c.StartTime
			if c.DownloadSec < 0 || c.RebufferSec < 0 || c.WaitSec < 0 {
				return false
			}
		}
		if math.Abs(bits-res.TotalBits) > 1 {
			return false
		}
		return res.SessionSec >= 0 && res.TotalRebufferSec >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSessionDeterministic(t *testing.T) {
	v := testVideo()
	tr := trace.GenLTE(9)
	a, _ := Simulate(v, tr, fixedAlgo(v, 2), DefaultConfig())
	b, _ := Simulate(v, tr, fixedAlgo(v, 2), DefaultConfig())
	if a.SessionSec != b.SessionSec || a.TotalRebufferSec != b.TotalRebufferSec {
		t.Error("sessions with identical inputs diverge")
	}
}

func TestValidatesInputs(t *testing.T) {
	v := testVideo()
	badTrace := &trace.Trace{ID: "bad", IntervalSec: 0}
	if _, err := Simulate(v, badTrace, fixedAlgo(v, 0), DefaultConfig()); err == nil {
		t.Error("bad trace accepted")
	}
	badVideo := *v
	badVideo.Tracks = nil
	tr := trace.Constant("c", 1e6, 1200, 1)
	if _, err := Simulate(&badVideo, tr, fixedAlgo(v, 0), DefaultConfig()); err == nil {
		t.Error("bad video accepted")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("c", 5e6, 1200, 1)
	res, err := Simulate(v, tr, fixedAlgo(v, 0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.StartupDelaySec <= 0 {
		t.Error("zero-value config broke startup accounting")
	}
}

// delayingAlgo pauses a fixed time before the 5th chunk.
type delayingAlgo struct {
	delayed bool
}

func (d *delayingAlgo) Name() string         { return "delaying" }
func (d *delayingAlgo) Select(abr.State) int { return 0 }
func (d *delayingAlgo) Delay(st abr.State) float64 {
	if st.ChunkIndex == 5 && !d.delayed {
		d.delayed = true
		return 7
	}
	return 0
}

func TestDelayerHonored(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("c", 10e6, 1200, 1)
	res, err := Simulate(v, tr, &delayingAlgo{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks[5].WaitSec < 7 {
		t.Errorf("chunk 5 wait = %v, want >= 7", res.Chunks[5].WaitSec)
	}
	// Time monotonicity across the pause.
	if res.Chunks[5].StartTime < res.Chunks[4].StartTime+7 {
		t.Error("pause did not advance the clock")
	}
}

func TestThroughputRecorded(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("c", 2e6, 1200, 1)
	res, _ := Simulate(v, tr, fixedAlgo(v, 3), DefaultConfig())
	for _, c := range res.Chunks {
		if c.DownloadSec > 0 && math.Abs(c.ThroughputBps-2e6) > 1 {
			t.Fatalf("chunk %d throughput %v, want 2e6", c.Index, c.ThroughputBps)
		}
	}
}

func TestCustomPredictorUsed(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("c", 2e6, 1200, 1)
	cfg := DefaultConfig()
	cfg.Predictor = bandwidth.NewNoisyOracle(tr, 0, 1)
	// An estimating algorithm that records what it sees.
	rec := &estRecorder{}
	if _, err := Simulate(v, tr, rec, cfg); err != nil {
		t.Fatal(err)
	}
	// The oracle knows the bandwidth before the first download; the
	// harmonic-mean default would report 0 there.
	if rec.firstEst != 2e6 {
		t.Errorf("first estimate = %v, want 2e6 from the oracle", rec.firstEst)
	}
}

type estRecorder struct {
	firstEst float64
	seen     bool
}

func (e *estRecorder) Name() string { return "rec" }
func (e *estRecorder) Select(st abr.State) int {
	if !e.seen {
		e.firstEst = st.Est
		e.seen = true
	}
	return 0
}

func TestBufferNeverNegative(t *testing.T) {
	v := testVideo()
	for i := 0; i < 10; i++ {
		res, _ := Simulate(v, trace.GenLTE(i), fixedAlgo(v, 5), DefaultConfig())
		for _, c := range res.Chunks {
			if c.BufferBefore < -1e-9 || c.BufferAfter < -1e-9 {
				t.Fatalf("negative buffer at chunk %d of trace %d", c.Index, i)
			}
		}
	}
}

func TestLevelsHelper(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("c", 5e6, 1200, 1)
	res, _ := Simulate(v, tr, fixedAlgo(v, 2), DefaultConfig())
	for _, l := range res.Levels() {
		if l != 2 {
			t.Fatalf("Levels() reported %d, want 2", l)
		}
	}
}

func TestSimulateErrorsOnBadInput(t *testing.T) {
	// Regression: invalid inputs must surface as returned errors, not
	// panics (the former MustSimulate crashed the process here).
	v := testVideo()
	if _, err := Simulate(v, &trace.Trace{ID: "bad", IntervalSec: 0}, fixedAlgo(v, 0), DefaultConfig()); err == nil {
		t.Error("Simulate accepted a trace with a zero interval")
	}
	if _, err := Simulate(&video.Video{}, trace.Constant("c", 5e6, 1200, 1), fixedAlgo(v, 0), DefaultConfig()); err == nil {
		t.Error("Simulate accepted an empty video")
	}
}

// oscillator alternates between two track levels every chunk, so consecutive
// downloads always land on different tracks — the strongest possible probe
// for PrevLevel bookkeeping.
type oscillator struct{ n int }

func (o *oscillator) Name() string { return "Oscillator" }
func (o *oscillator) Select(abr.State) int {
	o.n++
	return o.n % 2
}

// TestDownloadEventPrevLevelChain is the regression test for recording the
// download trace event after prevLevel had already advanced to the current
// chunk's level: every download event carried PrevLevel == Level, destroying
// the track-switch information. The events must chain instead — the first
// download sees -1, every later one sees the previous download's Level.
func TestDownloadEventPrevLevelChain(t *testing.T) {
	v := testVideo()
	ring := telemetry.NewRing(telemetry.DefaultRingCapacity)
	cfg := DefaultConfig()
	cfg.Recorder = ring
	if _, err := Simulate(v, trace.Constant("c", 10e6, 1200, 1), &oscillator{}, cfg); err != nil {
		t.Fatal(err)
	}
	prev, downloads, switches := -1, 0, 0
	for _, ev := range ring.Events() {
		if ev.Kind != telemetry.KindDownload {
			continue
		}
		if ev.PrevLevel != prev {
			t.Fatalf("download %d: PrevLevel = %d, want %d (the previous download's Level)",
				downloads, ev.PrevLevel, prev)
		}
		if ev.PrevLevel != ev.Level {
			switches++
		}
		prev = ev.Level
		downloads++
	}
	if downloads != v.NumChunks() {
		t.Fatalf("recorded %d download events, want %d", downloads, v.NumChunks())
	}
	// The oscillator switches track on every chunk; if no event shows a
	// switch, PrevLevel is being stamped from the current level.
	if switches != downloads {
		t.Fatalf("only %d/%d download events show a track switch under an oscillating algorithm",
			switches, downloads)
	}
}
