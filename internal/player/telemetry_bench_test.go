package player

import (
	"sync"
	"testing"

	"cava/internal/core"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// Shared session fixtures, built once so alloc measurements see the chunk
// loop (plus the unavoidable fresh algorithm per session), not video and
// trace generation.
var benchFixture struct {
	once sync.Once
	v    *video.Video
	tr   *trace.Trace
}

// benchSession runs one full CAVA session, optionally traced.
func benchSession(rec telemetry.Recorder) {
	benchFixture.once.Do(func() {
		benchFixture.v = testVideo()
		benchFixture.tr = trace.GenLTE(0)
	})
	cfg := DefaultConfig()
	cfg.Recorder = rec
	if _, err := Simulate(benchFixture.v, benchFixture.tr, core.New(benchFixture.v), cfg); err != nil {
		panic(err) // bench fixture is valid by construction
	}
}

// BenchmarkTelemetryDisabled is the player step path with a nil recorder —
// the cost every plain simulation pays for the instrumentation hooks.
func BenchmarkTelemetryDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSession(nil)
	}
}

// BenchmarkTelemetryEnabled is the same session recording into a ring.
func BenchmarkTelemetryEnabled(b *testing.B) {
	b.ReportAllocs()
	ring := telemetry.NewRing(telemetry.DefaultRingCapacity)
	for i := 0; i < b.N; i++ {
		benchSession(ring)
	}
}

// TestTelemetryDisabledAllocBound pins the zero-alloc contract: with a nil
// recorder the chunk loop must not build events, so a session's allocations
// stay far below one per chunk (what remains is amortized slice growth plus
// per-session setup). The enabled path allocates at least the per-decision
// score vectors, which the same measurement must show.
func TestTelemetryDisabledAllocBound(t *testing.T) {
	chunks := float64(testVideo().NumChunks())

	disabled := testing.AllocsPerRun(5, func() { benchSession(nil) })
	if perChunk := disabled / chunks; perChunk > 0.5 {
		t.Errorf("nil recorder allocates %.2f/chunk (%.0f over %0.f chunks); the disabled path must not build events",
			perChunk, disabled, chunks)
	}

	ring := telemetry.NewRing(telemetry.DefaultRingCapacity)
	enabled := testing.AllocsPerRun(5, func() { benchSession(ring) })
	if enabled <= disabled {
		t.Errorf("enabled tracing allocates %.0f <= disabled %.0f; the measurement is not sensing the trace path",
			enabled, disabled)
	}
}
