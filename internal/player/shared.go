package player

import (
	"fmt"
	"math"

	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/trace"
	"cava/internal/video"
)

// Multi-client simulation: several players share one bottleneck link whose
// capacity follows a trace and is split equally among clients with an
// active download (the TCP-fair idealization used throughout the ABR
// fairness literature, e.g. FESTIVE). Clients that are not downloading
// (full buffer, scheme pause, done) consume nothing, so the remaining
// clients speed up — which is exactly the coupling that causes bitrate
// oscillation and unfairness among competing players.

// SharedClient is one participant in a shared-link session.
type SharedClient struct {
	// Video is the content this client streams.
	Video *video.Video
	// Algo is the client's adaptation logic (fresh instance).
	Algo abr.Algorithm
	// Config is the client's player configuration; zero values take the
	// §6.1 defaults.
	Config Config
	// JoinDelaySec staggers this client's session start: it issues no
	// requests before this time. Staggered joins are what break the
	// lockstep of identical clients and expose (un)fairness.
	JoinDelaySec float64
}

// SimulateShared runs all clients to completion over the shared link and
// returns one Result per client, in input order.
func SimulateShared(tr *trace.Trace, clients []SharedClient) ([]*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("player: no clients")
	}

	type cstate struct {
		sc   SharedClient
		res  *Result
		pred bandwidth.Predictor

		chunk     int     // next chunk index to request
		remaining float64 // bits left of the in-flight download (0 = none)
		inflight  ChunkRecord
		wakeAt    float64 // waiting (full buffer / scheme delay) until this time
		buffer    float64
		playing   bool
		prevLevel int
		lastTput  float64
		done      bool
	}

	states := make([]*cstate, len(clients))
	for i, sc := range clients {
		if err := sc.Video.Validate(); err != nil {
			return nil, fmt.Errorf("player: client %d: %w", i, err)
		}
		cfg := sc.Config
		if cfg.StartupSec <= 0 {
			cfg.StartupSec = 10
		}
		if cfg.MaxBufferSec <= 0 {
			cfg.MaxBufferSec = 100
		}
		pred := cfg.Predictor
		if pred == nil {
			pred = bandwidth.NewHarmonicMean(bandwidth.DefaultWindow)
		}
		pred.Reset()
		sc.Config = cfg
		states[i] = &cstate{
			sc:        sc,
			res:       &Result{VideoID: sc.Video.ID(), TraceID: tr.ID, Scheme: sc.Algo.Name()},
			pred:      pred,
			prevLevel: -1,
			wakeAt:    sc.JoinDelaySec,
		}
	}

	now := 0.0
	const eps = 1e-9

	// decide prompts a client for its next action at time `now`; it either
	// starts a download (remaining > 0) or sets a wake time.
	decide := func(st *cstate) {
		v := st.sc.Video
		if st.chunk >= v.NumChunks() {
			st.done = true
			st.res.SessionSec = now
			return
		}
		s := abr.State{
			ChunkIndex:        st.chunk,
			Now:               now,
			Buffer:            st.buffer,
			Playing:           st.playing,
			PrevLevel:         st.prevLevel,
			Est:               st.pred.Predict(now),
			LastThroughputBps: st.lastTput,
		}
		if d, ok := st.sc.Algo.(abr.Delayer); ok {
			if w := d.Delay(s); w > 0 {
				st.wakeAt = now + w
				return
			}
		}
		if st.playing && st.buffer+v.ChunkDurSec > st.sc.Config.MaxBufferSec {
			st.wakeAt = now + (st.buffer + v.ChunkDurSec - st.sc.Config.MaxBufferSec)
			return
		}
		level := st2level(st.sc.Algo, s, v.NumTracks())
		st.inflight = ChunkRecord{
			Index:        st.chunk,
			Level:        level,
			SizeBits:     v.ChunkSize(level, st.chunk),
			StartTime:    now,
			BufferBefore: st.buffer,
		}
		st.remaining = st.inflight.SizeBits
		st.wakeAt = 0
	}

	for _, st := range states {
		if st.wakeAt <= 0 {
			decide(st)
		}
	}

	for {
		// Collect active downloaders and the next wake/boundary events.
		var active []*cstate
		next := math.Inf(1)
		allDone := true
		for _, st := range states {
			if st.done {
				continue
			}
			allDone = false
			if st.remaining > 0 {
				active = append(active, st)
			} else if st.wakeAt > now && st.wakeAt < next {
				next = st.wakeAt
			} else if st.wakeAt <= now {
				// Ready to decide again right now.
				next = now
			}
		}
		if allDone {
			break
		}
		// Trace boundary bounds the constant-rate span.
		boundary := (math.Floor(now/tr.IntervalSec) + 1) * tr.IntervalSec
		if boundary < next {
			next = boundary
		}
		share := 0.0
		if len(active) > 0 {
			share = tr.BandwidthAt(now) / float64(len(active))
			for _, st := range active {
				if fin := now + st.remaining/math.Max(share, eps); fin < next {
					next = fin
				}
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("player: shared simulation wedged at t=%.1f", now)
		}
		if next < now+eps {
			next = now + eps
		}
		dt := next - now

		// Advance downloads and playback.
		for _, st := range states {
			if st.done {
				continue
			}
			if st.remaining > 0 && share > 0 {
				st.remaining -= share * dt
			}
			if st.playing {
				if st.buffer >= dt {
					st.buffer -= dt
				} else {
					stall := dt - st.buffer
					st.buffer = 0
					st.res.TotalRebufferSec += stall
					if st.remaining > 0 {
						st.inflight.RebufferSec += stall
					}
				}
			}
		}
		now = next

		// Complete downloads and re-decide.
		for _, st := range states {
			if st.done {
				continue
			}
			v := st.sc.Video
			if st.remaining > 0 && st.remaining <= eps*10 {
				st.remaining = 0
			}
			if st.inflight.SizeBits > 0 && st.remaining <= 0 {
				rec := st.inflight
				rec.DownloadSec = now - rec.StartTime
				if rec.DownloadSec > 0 {
					rec.ThroughputBps = rec.SizeBits / rec.DownloadSec
				}
				st.buffer += v.ChunkDurSec
				rec.BufferAfter = st.buffer
				st.pred.ObserveDownload(rec.SizeBits, rec.DownloadSec)
				st.lastTput = rec.ThroughputBps
				st.prevLevel = rec.Level
				st.res.Chunks = append(st.res.Chunks, rec)
				st.res.TotalBits += rec.SizeBits
				st.inflight = ChunkRecord{}
				st.chunk++
				if !st.playing && (st.buffer >= st.sc.Config.StartupSec || st.chunk == v.NumChunks()) {
					st.playing = true
					st.res.StartupDelaySec = now
				}
				decide(st)
			} else if st.remaining <= 0 && st.wakeAt <= now {
				decide(st)
			}
		}
	}

	out := make([]*Result, len(states))
	for i, st := range states {
		out[i] = st.res
	}
	return out, nil
}

// JainIndex computes Jain's fairness index over per-client values
// (1 = perfectly fair, 1/n = maximally unfair).
func JainIndex(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(values)) * sumSq)
}
