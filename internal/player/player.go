// Package player simulates ABR streaming playback: a client that downloads
// chunks over a bandwidth trace under an adaptation algorithm, tracking
// buffer dynamics, startup latency, rebuffering, pauses and data usage.
//
// The simulation follows the paper's trace-driven replay methodology
// (§6.1): the application-level view of the network is the per-interval
// throughput series, and lower-layer effects (loss, RTT, signal strength)
// manifest only through that series.
package player

import (
	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// Config holds session parameters shared by all schemes for apples-to-apples
// comparison (§6.1).
type Config struct {
	// StartupSec is the playback startup latency: seconds of video that
	// must be buffered before playback begins (10 in the paper).
	StartupSec float64
	// MaxBufferSec is the client buffer cap; the client does not request
	// the next chunk while the buffer is full (100 in the paper).
	MaxBufferSec float64
	// Predictor estimates bandwidth for the ABR logic; nil selects the
	// paper's default, the harmonic mean of the past 5 chunks.
	Predictor bandwidth.Predictor
	// Recorder receives the session's decision-trace events (decide,
	// download, wait, startup) when non-nil. The nil default disables
	// tracing and adds no allocations to the chunk loop.
	Recorder telemetry.Recorder
	// SessionID overrides the trace event session identifier; empty uses
	// video|trace|scheme.
	SessionID string
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{StartupSec: 10, MaxBufferSec: 100}
}

// ChunkRecord logs one chunk download.
type ChunkRecord struct {
	// Index is the chunk position in playback order.
	Index int
	// Level is the selected track.
	Level int
	// SizeBits is the downloaded size in bits.
	SizeBits float64
	// StartTime is when the download began (seconds since session start).
	StartTime float64
	// DownloadSec is how long the download took.
	DownloadSec float64
	// ThroughputBps is SizeBits/DownloadSec in bits/sec.
	ThroughputBps float64
	// BufferBefore and BufferAfter bracket the download (video seconds).
	BufferBefore, BufferAfter float64
	// RebufferSec is the stall time incurred while this chunk downloaded.
	RebufferSec float64
	// WaitSec is idle time before the download (full buffer or an
	// algorithm-requested pause).
	WaitSec float64
	// Retries counts failed download attempts that were retried for this
	// chunk (live resilient client; always 0 in pure simulation).
	Retries int
	// Truncations counts attempts rejected because the body fell short of
	// the declared Content-Length.
	Truncations int
	// Abandonments counts mid-flight downloads given up for a lower track.
	Abandonments int
	// WastedBits is the abandoned partial-download volume (transited the
	// link, delivered no video).
	WastedBits float64
	// Skipped reports the chunk was never delivered: every attempt failed
	// and playback jumped the gap (accounted as RebufferSec).
	Skipped bool
}

// Result is a complete simulated session.
type Result struct {
	// VideoID, TraceID and Scheme identify the run.
	VideoID, TraceID, Scheme string
	// Chunks has one record per downloaded chunk, in playback order.
	Chunks []ChunkRecord
	// StartupDelaySec is when playback began (seconds since session start).
	StartupDelaySec float64
	// TotalRebufferSec is the total mid-playback stall time.
	TotalRebufferSec float64
	// TotalBits is the total data downloaded.
	TotalBits float64
	// SessionSec is the wall-clock time until the last chunk finished.
	SessionSec float64
	// TotalRetries, TotalTruncations, TotalAbandonments, SkippedChunks and
	// WastedBits aggregate the per-chunk resilience events (live resilient
	// client; all zero in pure simulation and in fail-fast mode).
	TotalRetries      int
	TotalTruncations  int
	TotalAbandonments int
	SkippedChunks     int
	WastedBits        float64
}

// Levels returns the per-chunk selected levels.
func (r *Result) Levels() []int {
	out := make([]int, len(r.Chunks))
	for i, c := range r.Chunks {
		out[i] = c.Level
	}
	return out
}

// Simulate runs one streaming session of video v over trace tr with the
// given adaptation algorithm. The algorithm instance must be fresh (it may
// carry per-session state).
//
// Simulate is a thin frontend over the shared StepState core: a one-session
// fleet (internal/fleet) driving the same core produces an identical Result.
func Simulate(v *video.Video, tr *trace.Trace, algo abr.Algorithm, cfg Config) (*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	var s StepState
	s.Init(v, v.ID(), tr.ID, algo, cfg, true)
	for !s.Done() {
		s.Advance(tr, 0)
	}
	return s.Take(), nil
}

// st2level queries the algorithm and clamps the result defensively, using
// the same abr.ClampLevel rule as the live DASH client.
func st2level(algo abr.Algorithm, st abr.State, numTracks int) int {
	return abr.ClampLevel(algo.Select(st), numTracks)
}
