// Package player simulates ABR streaming playback: a client that downloads
// chunks over a bandwidth trace under an adaptation algorithm, tracking
// buffer dynamics, startup latency, rebuffering, pauses and data usage.
//
// The simulation follows the paper's trace-driven replay methodology
// (§6.1): the application-level view of the network is the per-interval
// throughput series, and lower-layer effects (loss, RTT, signal strength)
// manifest only through that series.
package player

import (
	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// Config holds session parameters shared by all schemes for apples-to-apples
// comparison (§6.1).
type Config struct {
	// StartupSec is the playback startup latency: seconds of video that
	// must be buffered before playback begins (10 in the paper).
	StartupSec float64
	// MaxBufferSec is the client buffer cap; the client does not request
	// the next chunk while the buffer is full (100 in the paper).
	MaxBufferSec float64
	// Predictor estimates bandwidth for the ABR logic; nil selects the
	// paper's default, the harmonic mean of the past 5 chunks.
	Predictor bandwidth.Predictor
	// Recorder receives the session's decision-trace events (decide,
	// download, wait, startup) when non-nil. The nil default disables
	// tracing and adds no allocations to the chunk loop.
	Recorder telemetry.Recorder
	// SessionID overrides the trace event session identifier; empty uses
	// video|trace|scheme.
	SessionID string
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{StartupSec: 10, MaxBufferSec: 100}
}

// ChunkRecord logs one chunk download.
type ChunkRecord struct {
	// Index is the chunk position in playback order.
	Index int
	// Level is the selected track.
	Level int
	// SizeBits is the downloaded size in bits.
	SizeBits float64
	// StartTime is when the download began (seconds since session start).
	StartTime float64
	// DownloadSec is how long the download took.
	DownloadSec float64
	// ThroughputBps is SizeBits/DownloadSec in bits/sec.
	ThroughputBps float64
	// BufferBefore and BufferAfter bracket the download (video seconds).
	BufferBefore, BufferAfter float64
	// RebufferSec is the stall time incurred while this chunk downloaded.
	RebufferSec float64
	// WaitSec is idle time before the download (full buffer or an
	// algorithm-requested pause).
	WaitSec float64
	// Retries counts failed download attempts that were retried for this
	// chunk (live resilient client; always 0 in pure simulation).
	Retries int
	// Truncations counts attempts rejected because the body fell short of
	// the declared Content-Length.
	Truncations int
	// Abandonments counts mid-flight downloads given up for a lower track.
	Abandonments int
	// WastedBits is the abandoned partial-download volume (transited the
	// link, delivered no video).
	WastedBits float64
	// Skipped reports the chunk was never delivered: every attempt failed
	// and playback jumped the gap (accounted as RebufferSec).
	Skipped bool
}

// Result is a complete simulated session.
type Result struct {
	// VideoID, TraceID and Scheme identify the run.
	VideoID, TraceID, Scheme string
	// Chunks has one record per downloaded chunk, in playback order.
	Chunks []ChunkRecord
	// StartupDelaySec is when playback began (seconds since session start).
	StartupDelaySec float64
	// TotalRebufferSec is the total mid-playback stall time.
	TotalRebufferSec float64
	// TotalBits is the total data downloaded.
	TotalBits float64
	// SessionSec is the wall-clock time until the last chunk finished.
	SessionSec float64
	// TotalRetries, TotalTruncations, TotalAbandonments, SkippedChunks and
	// WastedBits aggregate the per-chunk resilience events (live resilient
	// client; all zero in pure simulation and in fail-fast mode).
	TotalRetries      int
	TotalTruncations  int
	TotalAbandonments int
	SkippedChunks     int
	WastedBits        float64
}

// Levels returns the per-chunk selected levels.
func (r *Result) Levels() []int {
	out := make([]int, len(r.Chunks))
	for i, c := range r.Chunks {
		out[i] = c.Level
	}
	return out
}

// Simulate runs one streaming session of video v over trace tr with the
// given adaptation algorithm. The algorithm instance must be fresh (it may
// carry per-session state).
func Simulate(v *video.Video, tr *trace.Trace, algo abr.Algorithm, cfg Config) (*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if cfg.StartupSec <= 0 {
		cfg.StartupSec = 10
	}
	if cfg.MaxBufferSec <= 0 {
		cfg.MaxBufferSec = 100
	}
	pred := cfg.Predictor
	if pred == nil {
		pred = bandwidth.NewHarmonicMean(bandwidth.DefaultWindow)
	}
	pred.Reset()

	res := &Result{VideoID: v.ID(), TraceID: tr.ID, Scheme: algo.Name()}
	delayer, canDelay := algo.(abr.Delayer)

	// Decision tracing. When the algorithm records its own decide events
	// (abr.Traced, e.g. CAVA with controller internals), the player emits
	// only the step events around them; otherwise it records a plain decide
	// per chunk, so every session produces the same schema.
	trc := cfg.Recorder
	session := ""
	algoTraces := false
	if trc != nil {
		session = cfg.SessionID
		if session == "" {
			session = telemetry.SessionID(v.ID(), tr.ID, algo.Name())
		}
		if t, ok := algo.(abr.Traced); ok {
			t.SetRecorder(trc, session)
			algoTraces = true
		}
	}

	now := 0.0
	buffer := 0.0
	playing := false
	prevLevel := -1
	lastThroughput := 0.0
	n := v.NumChunks()

	// drain advances time by dt, draining the buffer when playing and
	// accounting any stall. Returns stall seconds incurred.
	drain := func(dt float64) float64 {
		now += dt
		if !playing {
			return 0
		}
		if buffer >= dt {
			buffer -= dt
			return 0
		}
		stall := dt - buffer
		buffer = 0
		return stall
	}

	for i := 0; i < n; i++ {
		rec := ChunkRecord{Index: i, BufferBefore: buffer}

		st := abr.State{
			ChunkIndex:        i,
			Now:               now,
			Buffer:            buffer,
			Playing:           playing,
			PrevLevel:         prevLevel,
			Est:               pred.Predict(now),
			LastThroughputBps: lastThroughput,
		}

		// Algorithm-requested pause (e.g. BOLA above its buffer ceiling).
		if canDelay {
			if d := delayer.Delay(st); d > 0 {
				rec.WaitSec += d
				stall := drain(d)
				res.TotalRebufferSec += stall
				rec.RebufferSec += stall
			}
		}

		// Full buffer: wait until the next chunk fits.
		if playing && buffer+v.ChunkDurSec > cfg.MaxBufferSec {
			wait := buffer + v.ChunkDurSec - cfg.MaxBufferSec
			rec.WaitSec += wait
			drain(wait) // cannot stall: buffer is at its maximum
		}

		// Refresh the state after any waiting.
		st.Now, st.Buffer, st.Est = now, buffer, pred.Predict(now)
		if trc != nil && rec.WaitSec > 0 {
			trc.Record(telemetry.Event{
				Session: session, TimeSec: now, Kind: telemetry.KindWait,
				Chunk: i, Level: prevLevel, PrevLevel: prevLevel,
				BufferSec: buffer, WaitSec: rec.WaitSec,
			})
		}
		level := st2level(algo, st, v.NumTracks())
		if trc != nil && !algoTraces {
			trc.Record(telemetry.Event{
				Session: session, TimeSec: now, Kind: telemetry.KindDecide,
				Chunk: i, Level: level, PrevLevel: prevLevel,
				BufferSec: buffer, EstBps: st.Est,
			})
		}
		size := v.ChunkSize(level, i)

		dl := tr.DownloadTime(now, size)
		rec.Level = level
		rec.SizeBits = size
		rec.StartTime = now
		rec.DownloadSec = dl
		if dl > 0 {
			rec.ThroughputBps = size / dl
		}

		stall := drain(dl)
		res.TotalRebufferSec += stall
		rec.RebufferSec += stall
		buffer += v.ChunkDurSec
		rec.BufferAfter = buffer

		pred.ObserveDownload(size, dl)
		lastThroughput = rec.ThroughputBps
		res.Chunks = append(res.Chunks, rec)
		res.TotalBits += size
		if trc != nil {
			// PrevLevel is the track of the *previous* chunk (-1 on the
			// first), so it must be recorded before prevLevel advances to
			// this chunk's level.
			trc.Record(telemetry.Event{
				Session: session, TimeSec: now, Kind: telemetry.KindDownload,
				Chunk: i, Level: level, PrevLevel: prevLevel,
				BufferSec: buffer, EstBps: st.Est,
				SizeBits: size, DownloadSec: dl, ThroughputBps: rec.ThroughputBps,
				RebufferSec: rec.RebufferSec, WaitSec: rec.WaitSec,
			})
		}
		prevLevel = level

		if !playing && (buffer >= cfg.StartupSec || i == n-1) {
			playing = true
			res.StartupDelaySec = now
			if trc != nil {
				trc.Record(telemetry.Event{
					Session: session, TimeSec: now, Kind: telemetry.KindStartup,
					Chunk: i, Level: level, PrevLevel: prevLevel, BufferSec: buffer,
				})
			}
		}
	}
	res.SessionSec = now
	return res, nil
}

// st2level queries the algorithm and clamps the result defensively, using
// the same abr.ClampLevel rule as the live DASH client.
func st2level(algo abr.Algorithm, st abr.State, numTracks int) int {
	return abr.ClampLevel(algo.Select(st), numTracks)
}
