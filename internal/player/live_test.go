package player

import (
	"testing"

	"cava/internal/trace"
)

func TestLiveAvailabilityGatesDownloads(t *testing.T) {
	v := testVideo()
	// A very fast link: the client is always edge-limited, so every chunk
	// waits for the encoder and downloads start no earlier than avail(i).
	tr := trace.Constant("fast", 100e6, 1200, 1)
	res, err := SimulateLive(v, tr, fixedAlgo(v, 0), DefaultConfig(), LiveConfig{EncoderDelaySec: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Chunks {
		if c.StartTime < float64(i)*v.ChunkDurSec-1e-9 {
			t.Fatalf("chunk %d started at %.2f, before it existed (%.2f)", i, c.StartTime, float64(i)*v.ChunkDurSec)
		}
	}
	if res.AvailabilityWaitSec <= 0 {
		t.Error("edge-limited client never waited for the encoder")
	}
	// Session duration ~ video duration (paced by the encoder).
	if res.SessionSec < v.Duration()-2*v.ChunkDurSec {
		t.Errorf("session %.1fs shorter than encoder pacing allows", res.SessionSec)
	}
}

func TestLiveBufferBoundedByEdge(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("fast", 100e6, 1200, 1)
	res, err := SimulateLive(v, tr, fixedAlgo(v, 0), DefaultConfig(), LiveConfig{EncoderDelaySec: 0})
	if err != nil {
		t.Fatal(err)
	}
	// With startup 10 s and instant downloads, the client holds roughly
	// the startup worth of buffer and cannot accumulate more than the gap
	// to the live edge.
	for _, c := range res.Chunks[5:] {
		if c.BufferAfter > DefaultConfig().StartupSec+2*v.ChunkDurSec {
			t.Fatalf("chunk %d buffer %.1f exceeds live-edge bound", c.Index, c.BufferAfter)
		}
	}
}

func TestLiveLatencyAccounting(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("fast", 100e6, 1200, 1)
	res, err := SimulateLive(v, tr, fixedAlgo(v, 0), DefaultConfig(), LiveConfig{EncoderDelaySec: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Latency ≈ startup buffer depth on a fast link (the client joined at
	// the edge and pre-buffered StartupSec of content).
	if res.AvgLatencySec < 5 || res.AvgLatencySec > 25 {
		t.Errorf("average latency %.1fs implausible for a 10s startup", res.AvgLatencySec)
	}
	if res.MaxLatencySec < res.AvgLatencySec {
		t.Error("max latency below average")
	}
}

func TestLiveStallsRaiseLatency(t *testing.T) {
	v := testVideo()
	// A link that collapses mid-session: stalls must translate into
	// permanently higher latency.
	samples := make([]float64, 1200)
	for i := range samples {
		switch {
		case i < 200:
			samples[i] = 5e6
		case i < 260:
			samples[i] = 2e4 // heavy congestion
		default:
			samples[i] = 5e6
		}
	}
	tr := &trace.Trace{ID: "collapse", IntervalSec: 1, Samples: samples}
	res, err := SimulateLive(v, tr, fixedAlgo(v, 3), DefaultConfig(), LiveConfig{EncoderDelaySec: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRebufferSec <= 0 {
		t.Skip("no stall induced; trace too gentle for this ladder")
	}
	if res.MaxLatencySec <= res.AvgLatencySec {
		t.Error("stall did not raise max latency above average")
	}
}

func TestLiveEncoderDelayDefault(t *testing.T) {
	v := testVideo()
	tr := trace.Constant("fast", 100e6, 1200, 1)
	res, err := SimulateLive(v, tr, fixedAlgo(v, 0), DefaultConfig(), LiveConfig{EncoderDelaySec: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Default encoder delay is one chunk duration: chunk 0 available at Δ.
	if res.Chunks[0].StartTime < v.ChunkDurSec-1e-9 {
		t.Errorf("chunk 0 started at %.2f; default encoder delay ignored", res.Chunks[0].StartTime)
	}
}

func TestLiveValidatesInputs(t *testing.T) {
	v := testVideo()
	if _, err := SimulateLive(v, &trace.Trace{IntervalSec: 0}, fixedAlgo(v, 0), DefaultConfig(), LiveConfig{}); err == nil {
		t.Error("bad trace accepted")
	}
}
