package player

import (
	"math"
	"testing"

	"cava/internal/abr"
	"cava/internal/trace"
	"cava/internal/video"
)

func sharedClients(n int, level int) []SharedClient {
	v := video.YouTubeVideo(video.Title{Name: "BBB", Genre: video.Animation})
	out := make([]SharedClient, n)
	for i := range out {
		out[i] = SharedClient{Video: v, Algo: abr.Fixed(level)(v)}
	}
	return out
}

func TestSharedSingleClientMatchesSolo(t *testing.T) {
	v := video.YouTubeVideo(video.Title{Name: "BBB", Genre: video.Animation})
	tr := trace.Constant("c", 3e6, 2000, 1)
	solo, err := Simulate(v, tr, abr.Fixed(3)(v), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SimulateShared(tr, []SharedClient{{Video: v, Algo: abr.Fixed(3)(v)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(shared[0].Chunks) != len(solo.Chunks) {
		t.Fatalf("chunk counts differ: %d vs %d", len(shared[0].Chunks), len(solo.Chunks))
	}
	if math.Abs(shared[0].TotalBits-solo.TotalBits) > 1 {
		t.Error("data usage differs for a single shared client")
	}
	if math.Abs(shared[0].TotalRebufferSec-solo.TotalRebufferSec) > 1 {
		t.Errorf("rebuffering differs: shared %.2f vs solo %.2f",
			shared[0].TotalRebufferSec, solo.TotalRebufferSec)
	}
}

func TestSharedLinkSplitsCapacity(t *testing.T) {
	// Two always-downloading clients on a 2 Mbps link should each see
	// roughly 1 Mbps of throughput on substantial chunks.
	tr := trace.Constant("c", 2e6, 4000, 1)
	clients := sharedClients(2, 3)
	results, err := SimulateShared(tr, clients)
	if err != nil {
		t.Fatal(err)
	}
	for ci, res := range results {
		var bits, secs float64
		for _, c := range res.Chunks {
			if c.DownloadSec > 1 {
				bits += c.SizeBits
				secs += c.DownloadSec
			}
		}
		if secs == 0 {
			t.Fatalf("client %d had no substantial downloads", ci)
		}
		tput := bits / secs
		// At track 3 (~1.1 Mbps) both clients are nearly saturating; the
		// fair share is ~1 Mbps.
		if tput < 0.7e6 || tput > 2.0e6 {
			t.Errorf("client %d aggregate throughput %.2f Mbps, want ~1", ci, tput/1e6)
		}
	}
}

func TestSharedIdenticalClientsFair(t *testing.T) {
	tr := trace.GenLTE(1)
	clients := sharedClients(3, 2)
	results, err := SimulateShared(tr, clients)
	if err != nil {
		t.Fatal(err)
	}
	var rates []float64
	for _, res := range results {
		rates = append(rates, res.TotalBits)
	}
	if j := JainIndex(rates); j < 0.98 {
		t.Errorf("identical fixed clients got Jain index %.3f, want ~1", j)
	}
}

func TestSharedAdaptiveClientsComplete(t *testing.T) {
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	tr := trace.GenLTE(2).Scale(2) // room for two adaptive clients
	clients := []SharedClient{
		{Video: v, Algo: abr.NewRBA(v, 4)},
		{Video: v, Algo: abr.NewBBA1(v, 0, 0)},
	}
	results, err := SimulateShared(tr, clients)
	if err != nil {
		t.Fatal(err)
	}
	for ci, res := range results {
		if len(res.Chunks) != v.NumChunks() {
			t.Fatalf("client %d finished %d chunks", ci, len(res.Chunks))
		}
		if res.TotalBits <= 0 || res.SessionSec <= 0 {
			t.Fatalf("client %d accounting broken: %+v", ci, res)
		}
	}
}

func TestSharedValidatesInputs(t *testing.T) {
	if _, err := SimulateShared(&trace.Trace{IntervalSec: 0}, sharedClients(1, 0)); err == nil {
		t.Error("bad trace accepted")
	}
	if _, err := SimulateShared(trace.Constant("c", 1e6, 10, 1), nil); err == nil {
		t.Error("no clients accepted")
	}
	bad := sharedClients(1, 0)
	brokenVideo := *bad[0].Video
	brokenVideo.Tracks = nil
	bad[0].Video = &brokenVideo
	if _, err := SimulateShared(trace.Constant("c", 1e6, 10, 1), bad); err == nil {
		t.Error("bad video accepted")
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Errorf("equal shares Jain = %v", j)
	}
	if j := JainIndex([]float64{1, 0, 0}); math.Abs(j-1.0/3) > 1e-12 {
		t.Errorf("single-winner Jain = %v, want 1/3", j)
	}
	if JainIndex(nil) != 0 {
		t.Error("empty Jain should be 0")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Error("all-zero Jain should be 1 (degenerate equality)")
	}
}
