package player

import (
	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// StepState is the reusable session core behind every execution frontend:
// the pure simulator (Simulate), the discrete-event fleet engine
// (internal/fleet) and the live DASH testbed client (internal/dash) all
// drive the same per-chunk state machine — one simulator, three frontends.
//
// The core is clock-agnostic: it never reads a clock. Virtual time only
// moves when a frontend applies a duration (drain/ElapseTo), so the same
// code runs under trace-integrated virtual time (Simulate, fleet) and
// measured wall time (the testbed client). It is also allocation-free in
// the steady state: with chunk-record retention off and a nil recorder,
// Advance performs no allocations per event, which is what lets the fleet
// engine hold hundreds of thousands of concurrent sessions in one process.
//
// A StepState is single-session, single-goroutine state. Zero value is not
// usable; call Init first.
type StepState struct {
	v          *video.Video
	algo       abr.Algorithm
	delayer    abr.Delayer
	pred       bandwidth.Predictor
	trc        telemetry.Recorder
	session    string
	algoTraces bool
	canDelay   bool
	keepChunks bool

	startupSec   float64
	maxBufferSec float64
	chunkDurSec  float64
	numTracks    int
	n            int

	// NowSec is the session-local virtual clock (seconds since session
	// start). BufferSec, Playing, PrevLevel and LastThroughputBps are the
	// player state the next decision sees; Chunk is the next chunk index.
	NowSec            float64
	BufferSec         float64
	Playing           bool
	PrevLevel         int
	LastThroughputBps float64
	Chunk             int

	// Rec is the record of the chunk currently in progress (or the last
	// one completed). Frontends that obtain download outcomes themselves
	// (the testbed client) fill its download fields before FinishDownload.
	Rec ChunkRecord

	res Result
}

// Init prepares the core for one session of v under algo. Config zero
// values take the §6.1 defaults (startup 10 s, buffer cap 100 s, harmonic
// mean predictor). videoID and traceID label the Result and the default
// telemetry session identifier; keepChunks controls whether per-chunk
// records accumulate on the Result (fleet-scale runs disable it to keep
// the per-event path allocation-free).
//
// Init does not validate v: callers that accept external input run
// v.Validate() (and trace validation) first, exactly as Simulate does.
func (s *StepState) Init(v *video.Video, videoID, traceID string, algo abr.Algorithm, cfg Config, keepChunks bool) {
	if cfg.StartupSec <= 0 {
		cfg.StartupSec = 10
	}
	if cfg.MaxBufferSec <= 0 {
		cfg.MaxBufferSec = 100
	}
	pred := cfg.Predictor
	if pred == nil {
		pred = bandwidth.NewHarmonicMean(bandwidth.DefaultWindow)
	}
	pred.Reset()

	delayer, canDelay := algo.(abr.Delayer)

	*s = StepState{
		v:            v,
		algo:         algo,
		delayer:      delayer,
		canDelay:     canDelay,
		pred:         pred,
		keepChunks:   keepChunks,
		startupSec:   cfg.StartupSec,
		maxBufferSec: cfg.MaxBufferSec,
		chunkDurSec:  v.ChunkDurSec,
		numTracks:    v.NumTracks(),
		n:            v.NumChunks(),
		PrevLevel:    -1,
		res:          Result{VideoID: videoID, TraceID: traceID, Scheme: algo.Name()},
	}

	// Decision tracing. When the algorithm records its own decide events
	// (abr.Traced, e.g. CAVA with controller internals), the core emits
	// only the step events around them; otherwise it records a plain decide
	// per chunk, so every session produces the same schema.
	if trc := cfg.Recorder; trc != nil {
		s.trc = trc
		s.session = cfg.SessionID
		if s.session == "" {
			s.session = telemetry.SessionID(videoID, traceID, algo.Name())
		}
		if t, ok := algo.(abr.Traced); ok {
			t.SetRecorder(trc, s.session)
			s.algoTraces = true
		}
	}
}

// LimitChunks truncates the session after n chunks (the testbed client's
// MaxChunks); non-positive or over-length values are ignored.
func (s *StepState) LimitChunks(n int) {
	if n > 0 && n < s.n {
		s.n = n
	}
}

// Done reports whether every chunk has been processed.
func (s *StepState) Done() bool { return s.Chunk >= s.n }

// Session returns the telemetry session identifier ("" when untraced).
func (s *StepState) Session() string { return s.session }

// Res exposes the in-progress Result for frontends that maintain extra
// accounting on it (the testbed client's resilience totals).
func (s *StepState) Res() *Result { return &s.res }

// SetNow moves the virtual clock without draining the buffer. Frontends
// running on a measured clock use it to sync the core to a fresh reading
// at points where the elapsed sliver carries no playback meaning.
func (s *StepState) SetNow(nowSec float64) { s.NowSec = nowSec }

// drainFor advances time by dt, draining the buffer when playing.
// Returns stall seconds incurred.
func (s *StepState) drainFor(dt float64) float64 {
	s.NowSec += dt
	if !s.Playing {
		return 0
	}
	if s.BufferSec >= dt {
		s.BufferSec -= dt
		return 0
	}
	stall := dt - s.BufferSec
	s.BufferSec = 0
	return stall
}

// ElapseTo advances the clock to the absolute virtual time nowSec,
// draining the buffer while playing, and returns the stall incurred
// (not yet accounted; see AddStall). A non-forward target only resets
// the clock, mirroring the testbed client's measured-time bookkeeping.
func (s *StepState) ElapseTo(nowSec float64) float64 {
	dt := nowSec - s.NowSec
	s.NowSec = nowSec
	if dt <= 0 || !s.Playing {
		return 0
	}
	if s.BufferSec >= dt {
		s.BufferSec -= dt
		return 0
	}
	stall := dt - s.BufferSec
	s.BufferSec = 0
	return stall
}

// AddStall accounts stall seconds to the current chunk and the session.
func (s *StepState) AddStall(stallSec float64) {
	s.res.TotalRebufferSec += stallSec
	s.Rec.RebufferSec += stallSec
}

// NoteWait accounts idle seconds (scheme pause or full buffer) to the
// current chunk.
func (s *StepState) NoteWait(waitSec float64) { s.Rec.WaitSec += waitSec }

// BeginChunk starts the current chunk: it resets the chunk record and
// returns the decision state as of now.
func (s *StepState) BeginChunk() abr.State {
	s.Rec = ChunkRecord{Index: s.Chunk, BufferBefore: s.BufferSec}
	return abr.State{
		ChunkIndex:        s.Chunk,
		Now:               s.NowSec,
		Buffer:            s.BufferSec,
		Playing:           s.Playing,
		PrevLevel:         s.PrevLevel,
		Est:               s.pred.Predict(s.NowSec),
		LastThroughputBps: s.LastThroughputBps,
	}
}

// WantDelay returns the algorithm-requested pause before the current chunk
// (e.g. BOLA above its buffer ceiling), 0 when none.
func (s *StepState) WantDelay(st abr.State) float64 {
	if !s.canDelay {
		return 0
	}
	if d := s.delayer.Delay(st); d > 0 {
		return d
	}
	return 0
}

// FullBufferWait returns how long the client must idle until the next
// chunk fits under the buffer cap, 0 when it already fits.
func (s *StepState) FullBufferWait() float64 {
	if s.Playing && s.BufferSec+s.chunkDurSec > s.maxBufferSec {
		return s.BufferSec + s.chunkDurSec - s.maxBufferSec
	}
	return 0
}

// Refresh re-reads the mutable decision inputs after any waiting and emits
// the wait trace event when the chunk accumulated idle time.
func (s *StepState) Refresh(st *abr.State) {
	st.Now, st.Buffer, st.Est = s.NowSec, s.BufferSec, s.pred.Predict(s.NowSec)
	if s.trc != nil && s.Rec.WaitSec > 0 {
		s.trc.Record(telemetry.Event{
			Session: s.session, TimeSec: s.NowSec, Kind: telemetry.KindWait,
			Chunk: s.Chunk, Level: s.PrevLevel, PrevLevel: s.PrevLevel,
			BufferSec: s.BufferSec, WaitSec: s.Rec.WaitSec,
		})
	}
}

// Decide queries the algorithm, clamps the result with the shared
// abr.ClampLevel rule, and emits the plain decide event for algorithms
// that do not trace themselves.
func (s *StepState) Decide(st abr.State) int {
	level := st2level(s.algo, st, s.numTracks)
	if s.trc != nil && !s.algoTraces {
		s.trc.Record(telemetry.Event{
			Session: s.session, TimeSec: s.NowSec, Kind: telemetry.KindDecide,
			Chunk: s.Chunk, Level: level, PrevLevel: s.PrevLevel,
			BufferSec: s.BufferSec, EstBps: st.Est,
		})
	}
	return level
}

// FinishDownload applies a completed download whose outcome is already in
// Rec (level, size, timing): the buffer gains one chunk, the predictor
// observes the transfer, totals and the download trace event advance, and
// PrevLevel moves to the delivered level. estBps is the estimate the
// decision saw (st.Est), echoed into the trace event.
func (s *StepState) FinishDownload(estBps float64) {
	s.BufferSec += s.chunkDurSec
	s.Rec.BufferAfter = s.BufferSec

	s.pred.ObserveDownload(s.Rec.SizeBits, s.Rec.DownloadSec)
	s.LastThroughputBps = s.Rec.ThroughputBps
	if s.keepChunks {
		//lint:allow hotalloc guarded by keepChunks, false on the zero-alloc fleet path; only the single-session simulator keeps per-chunk records
		s.res.Chunks = append(s.res.Chunks, s.Rec)
	}
	s.res.TotalBits += s.Rec.SizeBits
	if s.trc != nil {
		// PrevLevel is the track of the *previous* chunk (-1 on the
		// first), so it must be recorded before PrevLevel advances to
		// this chunk's level.
		s.trc.Record(telemetry.Event{
			Session: s.session, TimeSec: s.NowSec, Kind: telemetry.KindDownload,
			Chunk: s.Chunk, Level: s.Rec.Level, PrevLevel: s.PrevLevel,
			BufferSec: s.BufferSec, EstBps: estBps,
			SizeBits: s.Rec.SizeBits, DownloadSec: s.Rec.DownloadSec, ThroughputBps: s.Rec.ThroughputBps,
			RebufferSec: s.Rec.RebufferSec, WaitSec: s.Rec.WaitSec,
		})
	}
	s.PrevLevel = s.Rec.Level
}

// SkipChunk accounts a chunk that was never delivered (testbed client
// after exhausting retries): playback jumps the gap, experienced as one
// chunk duration of stall. PrevLevel, the predictor and the throughput
// history deliberately do not advance.
func (s *StepState) SkipChunk() {
	s.res.SkippedChunks++
	s.res.TotalRebufferSec += s.chunkDurSec
	s.Rec.RebufferSec += s.chunkDurSec
	s.Rec.BufferAfter = s.BufferSec
	if s.keepChunks {
		//lint:allow hotalloc guarded by keepChunks, false on the zero-alloc fleet path; only the single-session simulator keeps per-chunk records
		s.res.Chunks = append(s.res.Chunks, s.Rec)
	}
}

// MaybeStartup starts playback once the startup buffer is filled (or the
// last chunk arrived), stamping the startup delay with atSec and syncing
// the clock to it. Reports whether playback started on this call.
func (s *StepState) MaybeStartup(atSec float64) bool {
	if s.Playing || (s.BufferSec < s.startupSec && s.Chunk != s.n-1) {
		return false
	}
	s.Playing = true
	s.res.StartupDelaySec = atSec
	s.NowSec = atSec
	if s.trc != nil {
		s.trc.Record(telemetry.Event{
			Session: s.session, TimeSec: atSec, Kind: telemetry.KindStartup,
			Chunk: s.Chunk, Level: s.Rec.Level, PrevLevel: s.PrevLevel, BufferSec: s.BufferSec,
		})
	}
	return true
}

// NextChunk advances to the next chunk index.
func (s *StepState) NextChunk() { s.Chunk++ }

// Advance runs one complete chunk step against a bandwidth trace: waits,
// decision, trace-integrated download, accounting. The trace is read at
// traceOffsetSec + session-local time, so fleet sessions can start at
// staggered positions of a shared trace (wrapping past its end). It
// returns the session-local virtual time at which the session next needs
// service — the wakeup the discrete-event engine schedules.
//
// Advance performs no allocations in the steady state when the session
// was initialized with keepChunks=false and a nil recorder.
func (s *StepState) Advance(tr *trace.Trace, traceOffsetSec float64) float64 {
	st := s.BeginChunk()

	// Algorithm-requested pause (e.g. BOLA above its buffer ceiling).
	if d := s.WantDelay(st); d > 0 {
		s.NoteWait(d)
		s.AddStall(s.drainFor(d))
	}

	// Full buffer: wait until the next chunk fits.
	if wait := s.FullBufferWait(); wait > 0 {
		s.NoteWait(wait)
		s.drainFor(wait) // cannot stall: buffer is at its maximum
	}

	s.Refresh(&st)
	level := s.Decide(st)
	size := s.v.ChunkSize(level, s.Chunk)
	dl := tr.DownloadTime(traceOffsetSec+s.NowSec, size)

	s.Rec.Level = level
	s.Rec.SizeBits = size
	s.Rec.StartTime = s.NowSec
	s.Rec.DownloadSec = dl
	if dl > 0 {
		s.Rec.ThroughputBps = size / dl
	}

	s.AddStall(s.drainFor(dl))
	s.FinishDownload(st.Est)
	s.MaybeStartup(s.NowSec)
	s.NextChunk()
	return s.NowSec
}

// Take finalizes and returns the session Result. The StepState must not
// be advanced afterwards.
func (s *StepState) Take() *Result {
	s.res.SessionSec = s.NowSec
	return &s.res
}
