package qoe

import (
	"math"
	"testing"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/trace"
	"cava/internal/video"
)

func session(tb testing.TB, level int) (*player.Result, *quality.Table) {
	tb.Helper()
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	tr := trace.Constant("c", 50e6, 1200, 1)
	res := mustSimulate(tb, v, tr, abr.Fixed(level)(v), player.DefaultConfig())
	return res, quality.NewTable(v, quality.VMAFPhone)
}

// mustSimulate fails the test on a simulation error; QoE fixtures are
// valid by construction.
func mustSimulate(tb testing.TB, v *video.Video, tr *trace.Trace, algo abr.Algorithm, cfg player.Config) *player.Result {
	tb.Helper()
	res, err := player.Simulate(v, tr, algo, cfg)
	if err != nil {
		tb.Fatalf("Simulate: %v", err)
	}
	return res
}

func TestPerceptualDecomposition(t *testing.T) {
	res, qt := session(t, 3)
	s := Perceptual(res, qt, VMAFWeights())
	if math.Abs(s.Total-(s.Quality-s.Switching-s.Rebuffer-s.Startup)) > 1e-9 {
		t.Error("decomposition does not sum")
	}
	if s.Quality <= 0 || s.Switching < 0 {
		t.Errorf("terms implausible: %+v", s)
	}
	if s.Rebuffer != 0 {
		t.Error("no-stall session has rebuffer penalty")
	}
}

func TestPerceptualOrdersLevels(t *testing.T) {
	lo, qt := session(t, 1)
	hi, _ := session(t, 4)
	w := VMAFWeights()
	if Perceptual(hi, qt, w).Total <= Perceptual(lo, qt, w).Total {
		t.Error("higher track not scored higher on an ample link")
	}
}

func TestLinearBitrateOrdersLevels(t *testing.T) {
	lo, _ := session(t, 1)
	hi, _ := session(t, 5)
	w := MPCWeights()
	if LinearBitrate(hi, w).Total <= LinearBitrate(lo, w).Total {
		t.Error("higher bitrate not scored higher")
	}
}

func TestRebufferPenalized(t *testing.T) {
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	qt := quality.NewTable(v, quality.VMAFPhone)
	good := mustSimulate(t, v, trace.Constant("f", 50e6, 1200, 1), abr.Fixed(3)(v), player.DefaultConfig())
	// Starved link at the same fixed level: heavy stalls.
	bad := mustSimulate(t, v, trace.Constant("s", 5e5, 5000, 1), abr.Fixed(3)(v), player.DefaultConfig())
	w := VMAFWeights()
	if Perceptual(bad, qt, w).Total >= Perceptual(good, qt, w).Total {
		t.Error("stalling session not penalized")
	}
	if Perceptual(bad, qt, w).Rebuffer <= 0 {
		t.Error("rebuffer term missing")
	}
}

func TestPerChunk(t *testing.T) {
	s := Score{Total: 100}
	if s.PerChunk(50) != 2 {
		t.Error("per-chunk normalization wrong")
	}
	if s.PerChunk(0) != 0 {
		t.Error("zero chunks should yield 0")
	}
}

func TestCAVAQoECompetitive(t *testing.T) {
	// Composite QoE sanity: over a few LTE traces CAVA's perceptual QoE
	// must beat the myopic RBA.
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	qt := quality.NewTable(v, quality.VMAFPhone)
	w := VMAFWeights()
	var cava, rba float64
	for i := 0; i < 10; i++ {
		tr := trace.GenLTE(i)
		cres := mustSimulate(t, v, tr, core.New(v), player.DefaultConfig())
		rres := mustSimulate(t, v, tr, abr.NewRBA(v, 4), player.DefaultConfig())
		cava += Perceptual(cres, qt, w).Total
		rba += Perceptual(rres, qt, w).Total
	}
	if cava <= rba {
		t.Errorf("CAVA QoE %.0f not above RBA %.0f", cava, rba)
	}
}

func TestChunkDurRecovery(t *testing.T) {
	res, _ := session(t, 0)
	if d := chunkDurSec(res); math.Abs(d-5) > 0.5 {
		t.Errorf("recovered chunk duration %v, want ~5", d)
	}
	if chunkDurSec(&player.Result{}) != 1 {
		t.Error("empty session fallback wrong")
	}
}
