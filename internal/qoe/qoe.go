// Package qoe computes composite session Quality-of-Experience scores from
// simulated sessions. The paper reports five metrics separately (§6.1);
// much of the ABR literature additionally collapses them into one linear
// score. Two standard shapes are provided:
//
//   - Linear bitrate QoE (MPC, SIGCOMM'15): Σ r_k − λΣ|r_k − r_{k−1}| −
//     μ·rebuffer − μs·startup, with r in Mbps.
//   - Perceptual QoE (Pensieve-style with VMAF): the same shape over
//     per-chunk quality values instead of bitrates.
//
// Collapsing to one number hides the multi-dimensional tradeoffs the paper
// argues matter — the package exists so that comparisons with
// single-score literature remain possible, not as a replacement for the
// five-metric view.
package qoe

import (
	"math"

	"cava/internal/player"
	"cava/internal/quality"
)

// Weights parametrizes the linear QoE shape.
type Weights struct {
	// LambdaSwitch scales the smoothness penalty.
	LambdaSwitch float64
	// MuRebuffer scales the rebuffering penalty (per second of stall).
	MuRebuffer float64
	// MuStartup scales the startup-delay penalty (per second).
	MuStartup float64
}

// MPCWeights are the linear-QoE constants of the MPC paper (bitrate in
// Mbps; rebuffering weighted at 4.3 Mbps-equivalents per second).
func MPCWeights() Weights {
	return Weights{LambdaSwitch: 1, MuRebuffer: 4.3, MuStartup: 4.3}
}

// VMAFWeights follow the common perceptual instantiation: one VMAF point
// per point of switching, a heavy stall penalty (a stalled second costs
// the session as much as a full-quality chunk), and a mild startup term.
func VMAFWeights() Weights {
	return Weights{LambdaSwitch: 1, MuRebuffer: 100.0 / 4, MuStartup: 1}
}

// Score is a decomposed QoE value.
type Score struct {
	// Total is Quality − Switching − Rebuffer − Startup.
	Total float64
	// Quality is the summed per-chunk value term.
	Quality float64
	// Switching is the summed smoothness penalty.
	Switching float64
	// Rebuffer and Startup are the weighted stall terms.
	Rebuffer, Startup float64
}

// LinearBitrate computes the MPC-style bitrate QoE of a session.
func LinearBitrate(res *player.Result, w Weights) Score {
	var s Score
	prev := math.NaN()
	for _, c := range res.Chunks {
		mbps := 0.0
		if c.DownloadSec >= 0 && c.SizeBits > 0 {
			// Chunk bitrate: size over playback duration.
			mbps = c.SizeBits / 1e6 / chunkDurSec(res)
		}
		s.Quality += mbps
		if !math.IsNaN(prev) {
			s.Switching += w.LambdaSwitch * math.Abs(mbps-prev)
		}
		prev = mbps
	}
	s.Rebuffer = w.MuRebuffer * res.TotalRebufferSec
	s.Startup = w.MuStartup * res.StartupDelaySec
	s.Total = s.Quality - s.Switching - s.Rebuffer - s.Startup
	return s
}

// chunkDurSec recovers the chunk playback duration from the session record
// (BufferAfter − BufferBefore of a stall-free, wait-free chunk equals
// Δ − downloadTime; the robust estimate is the modal buffer gain plus
// download time). The player stores no explicit duration, so derive it
// from the first chunk: buffer gain during startup equals Δ exactly.
func chunkDurSec(res *player.Result) float64 {
	if len(res.Chunks) == 0 {
		return 1
	}
	c := res.Chunks[0]
	d := c.BufferAfter - c.BufferBefore
	if d <= 0 {
		return 1
	}
	return d
}

// Perceptual computes the VMAF-based QoE of a session against a quality
// table.
func Perceptual(res *player.Result, qt *quality.Table, w Weights) Score {
	var s Score
	prev := math.NaN()
	for _, c := range res.Chunks {
		q := qt.At(c.Level, c.Index)
		s.Quality += q
		if !math.IsNaN(prev) {
			s.Switching += w.LambdaSwitch * math.Abs(q-prev)
		}
		prev = q
	}
	s.Rebuffer = w.MuRebuffer * res.TotalRebufferSec
	s.Startup = w.MuStartup * res.StartupDelaySec
	s.Total = s.Quality - s.Switching - s.Rebuffer - s.Startup
	return s
}

// PerChunk returns the session-length-normalized total (QoE per chunk),
// which makes sessions of different chunk counts comparable.
func (s Score) PerChunk(n int) float64 {
	if n <= 0 {
		return 0
	}
	return s.Total / float64(n)
}
