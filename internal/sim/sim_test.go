package sim

import (
	"strconv"
	"strings"
	"testing"

	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

func smallRequest(workers int) Request {
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	return Request{
		Videos: []*video.Video{v},
		Traces: trace.GenLTESet(4),
		Schemes: []abr.Scheme{
			{Name: "CAVA", New: core.Factory()},
			{Name: "RBA", New: func(v *video.Video) abr.Algorithm { return abr.NewRBA(v, 4) }},
		},
		Config:  player.DefaultConfig(),
		Metric:  quality.VMAFPhone,
		Workers: workers,
	}
}

func mustRun(t *testing.T, req Request) *Results {
	t.Helper()
	res, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCompleteness(t *testing.T) {
	req := smallRequest(4)
	res := mustRun(t, req)
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(res.Cells))
	}
	vid := req.Videos[0].ID()
	for _, scheme := range []string{"CAVA", "RBA"} {
		ss := res.Summaries(scheme, vid)
		if len(ss) != len(req.Traces) {
			t.Fatalf("%s: %d summaries, want %d", scheme, len(ss), len(req.Traces))
		}
		for ti, s := range ss {
			if s.TraceID != req.Traces[ti].ID {
				t.Fatalf("%s summary %d is for trace %s, want %s", scheme, ti, s.TraceID, req.Traces[ti].ID)
			}
			if s.Scheme != scheme || s.VideoID != vid {
				t.Fatalf("misfiled summary: %+v", s)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	a := mustRun(t, smallRequest(1))
	b := mustRun(t, smallRequest(8))
	vid := smallRequest(1).Videos[0].ID()
	for _, scheme := range []string{"CAVA", "RBA"} {
		sa, sb := a.Summaries(scheme, vid), b.Summaries(scheme, vid)
		for i := range sa {
			if sa[i].Q4Quality != sb[i].Q4Quality || sa[i].RebufferSec != sb[i].RebufferSec ||
				sa[i].DataMB != sb[i].DataMB {
				t.Fatalf("%s trace %d: serial and parallel runs differ", scheme, i)
			}
		}
	}
}

func TestSchemeAll(t *testing.T) {
	res := mustRun(t, smallRequest(2))
	all := res.SchemeAll("CAVA")
	if len(all) != 4 {
		t.Fatalf("SchemeAll returned %d summaries, want 4", len(all))
	}
	if res.SchemeAll("nope") != nil {
		t.Error("unknown scheme should return nil")
	}
}

func TestMeanOf(t *testing.T) {
	res := mustRun(t, smallRequest(2))
	ss := res.SchemeAll("CAVA")
	m := MeanOf(ss, metrics.FieldDataMB)
	if m <= 0 {
		t.Errorf("MeanOf DataMB = %v", m)
	}
}

func TestPredictorForHook(t *testing.T) {
	req := smallRequest(2)
	base := player.DefaultConfig()
	req.PredictorFor = func(v *video.Video, tr *trace.Trace) player.Config {
		cfg := base
		cfg.Predictor = bandwidth.NewNoisyOracle(tr, 0, 1)
		return cfg
	}
	res := mustRun(t, req)
	// With a perfect oracle the schemes see bandwidth from chunk 0; the
	// sweep must still be complete and deterministic.
	if len(res.SchemeAll("CAVA")) != 4 {
		t.Error("PredictorFor sweep incomplete")
	}
	res2 := mustRun(t, req)
	a, b := res.SchemeAll("CAVA"), res2.SchemeAll("CAVA")
	for i := range a {
		if a[i].DataMB != b[i].DataMB {
			t.Fatal("oracle-predictor sweep not deterministic")
		}
	}
}

func TestRunPropagatesSessionError(t *testing.T) {
	req := smallRequest(4)
	// An empty trace fails player validation; the sweep must surface that
	// instead of panicking or returning partial results.
	req.Traces = append(req.Traces, &trace.Trace{ID: "broken"})
	res, err := Run(req)
	if err == nil {
		t.Fatal("sweep with an invalid trace returned no error")
	}
	if res != nil {
		t.Fatal("failed sweep returned non-nil results")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q does not identify the failing session", err)
	}
}

func TestRunSweepMetrics(t *testing.T) {
	req := smallRequest(2)
	reg := telemetry.NewRegistry()
	req.Metrics = reg
	mustRun(t, req)
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	want := len(req.Videos) * len(req.Traces) * len(req.Schemes)
	if !strings.Contains(text, "sim_sessions_total "+strconv.Itoa(want)) {
		t.Errorf("sim_sessions_total != %d in exposition:\n%s", want, text)
	}
	if !strings.Contains(text, "sim_jobs_pending 0") {
		t.Errorf("sim_jobs_pending not drained to 0:\n%s", text)
	}
}

// gatedAlgo blocks its first Select until released, letting a test hold a
// sweep mid-flight deterministically.
type gatedAlgo struct {
	ready   chan<- struct{}
	release <-chan struct{}
	once    bool
}

func (g *gatedAlgo) Name() string { return "Gated" }
func (g *gatedAlgo) Select(abr.State) int {
	if !g.once {
		g.once = true
		g.ready <- struct{}{}
		<-g.release
	}
	return 0
}

// TestPendingGaugeComposesAcrossSweeps pins the Add-vs-Set gauge contract:
// two sweeps sharing one registry must each contribute their own job count
// to sim_jobs_pending while in flight (Set would clobber the first sweep's
// contribution with the second's), and the gauge must drain to zero once
// both finish.
func TestPendingGaugeComposesAcrossSweeps(t *testing.T) {
	reg := telemetry.NewRegistry()
	gauge := reg.Gauge("sim_jobs_pending", "sweep sessions not yet finished")

	release := make(chan struct{})
	launch := func(n int) (<-chan error, int) {
		req := smallRequest(1)
		req.Metrics = reg
		// Buffered: every session's algorithm signals once, the test only
		// waits for the first (the rest must not block their sessions).
		ready := make(chan struct{}, 8)
		req.Schemes = []abr.Scheme{{Name: "Gated", New: func(*video.Video) abr.Algorithm {
			return &gatedAlgo{ready: ready, release: release}
		}}}
		req.Traces = req.Traces[:n]
		done := make(chan error, 1)
		go func() {
			_, err := Run(req)
			done <- err
		}()
		// With one worker, the sweep is now parked inside its first
		// session's first decision; its full job count is pending.
		<-ready
		return done, len(req.Videos) * len(req.Traces) * len(req.Schemes)
	}

	doneA, jobsA := launch(3)
	doneB, jobsB := launch(2)
	if got, want := gauge.Value(), float64(jobsA+jobsB); got != want {
		t.Errorf("two in-flight sweeps: sim_jobs_pending = %v, want %v (Set clobbers, Add composes)", got, want)
	}
	close(release)
	for _, done := range []<-chan error{doneA, doneB} {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := gauge.Value(); got != 0 {
		t.Errorf("after both sweeps finished: sim_jobs_pending = %v, want 0", got)
	}
}

// TestPendingGaugeDrainsOnFailure pins the failure path: a sweep aborted by
// a session error must still take every job's decrement — completed, failed
// and skipped-after-failure alike — so the gauge returns to zero.
func TestPendingGaugeDrainsOnFailure(t *testing.T) {
	req := smallRequest(2)
	reg := telemetry.NewRegistry()
	req.Metrics = reg
	req.Traces = append(req.Traces, &trace.Trace{ID: "broken"})
	if _, err := Run(req); err == nil {
		t.Fatal("sweep with an invalid trace returned no error")
	}
	if got := reg.Gauge("sim_jobs_pending", "").Value(); got != 0 {
		t.Errorf("after failed sweep: sim_jobs_pending = %v, want 0", got)
	}
}
