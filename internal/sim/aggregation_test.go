package sim

import (
	"reflect"
	"strings"
	"testing"

	"cava/internal/abr"
	"cava/internal/cache"
	"cava/internal/player"
	"cava/internal/trace"
	"cava/internal/video"
)

// TestRunRejectsDuplicateSchemeNames is the regression test for the silent
// cell collision: two schemes sharing a name used to merge into one cell,
// where the dedup then dropped half the sessions and left zero-valued
// summaries. Run must refuse the request instead.
func TestRunRejectsDuplicateSchemeNames(t *testing.T) {
	req := smallRequest(2)
	req.Schemes = []abr.Scheme{
		{Name: "Fixed", New: abr.Fixed(0)},
		{Name: "Fixed", New: abr.Fixed(2)},
	}
	res, err := Run(req)
	if err == nil {
		t.Fatal("duplicate scheme names accepted")
	}
	if res != nil {
		t.Fatal("failed request returned results")
	}
	if !strings.Contains(err.Error(), "Fixed") {
		t.Errorf("error %q does not name the colliding scheme", err)
	}
}

// TestRunKeysCellsBySchemeLabel is the regression test for keying cells by
// algo.Name(): a scheme whose constructor names the algorithm differently
// was unfindable via Results.Summaries, and two labeled variants of one
// algorithm collided.
func TestRunKeysCellsBySchemeLabel(t *testing.T) {
	req := smallRequest(2)
	// Both schemes build abr.Fixed, whose Name() is always "Fixed" — the
	// labels differ from the algorithm name AND from each other.
	req.Schemes = []abr.Scheme{
		{Name: "floor", New: abr.Fixed(0)},
		{Name: "ceiling", New: abr.Fixed(99)},
	}
	res := mustRun(t, req)
	vid := req.Videos[0].ID()

	if got := res.Summaries("Fixed", vid); got != nil {
		t.Fatalf("cells keyed by algorithm name, not scheme label (found %d summaries under %q)",
			len(got), "Fixed")
	}
	floor := res.Summaries("floor", vid)
	ceiling := res.Summaries("ceiling", vid)
	if len(floor) != len(req.Traces) || len(ceiling) != len(req.Traces) {
		t.Fatalf("labels unfindable: floor=%d ceiling=%d summaries, want %d each",
			len(floor), len(ceiling), len(req.Traces))
	}
	// The two variants stream different tracks, so they must not have been
	// conflated: the ceiling sessions move strictly more data.
	for i := range floor {
		if floor[i].Scheme != "floor" || ceiling[i].Scheme != "ceiling" {
			t.Fatalf("summary labels not rewritten to the sweep label: %q / %q",
				floor[i].Scheme, ceiling[i].Scheme)
		}
		if ceiling[i].DataMB <= floor[i].DataMB {
			t.Fatalf("trace %d: ceiling (%.2f MB) <= floor (%.2f MB) — cells conflated?",
				i, ceiling[i].DataMB, floor[i].DataMB)
		}
	}
}

// TestRunTraceOrderDeterministicParallel verifies that under heavy worker
// parallelism each cell's summaries stay in trace order, repeatably.
func TestRunTraceOrderDeterministicParallel(t *testing.T) {
	req := smallRequest(12)
	for round := 0; round < 3; round++ {
		res := mustRun(t, req)
		for _, scheme := range []string{"CAVA", "RBA"} {
			ss := res.Summaries(scheme, req.Videos[0].ID())
			if len(ss) != len(req.Traces) {
				t.Fatalf("round %d %s: %d summaries, want %d", round, scheme, len(ss), len(req.Traces))
			}
			for ti, s := range ss {
				if s.TraceID != req.Traces[ti].ID {
					t.Fatalf("round %d %s slot %d holds trace %s, want %s",
						round, scheme, ti, s.TraceID, req.Traces[ti].ID)
				}
			}
		}
	}
}

func TestFingerprintProperties(t *testing.T) {
	a, okA := smallRequest(2).Fingerprint()
	b, okB := smallRequest(8).Fingerprint()
	if !okA || !okB {
		t.Fatal("plain request not fingerprintable")
	}
	if a != b {
		t.Error("Workers changed the fingerprint")
	}

	mod := smallRequest(2)
	mod.Config.StartupSec += 1
	if m, _ := mod.Fingerprint(); m == a {
		t.Error("player config change did not change the fingerprint")
	}

	keyed := smallRequest(2)
	keyed.Schemes[0].Key = "variant-b"
	if k, _ := keyed.Fingerprint(); k == a {
		t.Error("scheme Key did not change the fingerprint")
	}
}

func TestFingerprintRefusesUncacheable(t *testing.T) {
	req := smallRequest(2)
	req.PredictorFor = func(v *video.Video, tr *trace.Trace) player.Config {
		return player.DefaultConfig()
	}
	if _, ok := req.Fingerprint(); ok {
		t.Error("PredictorFor request claimed to be fingerprintable")
	}
	req2 := smallRequest(2)
	req2.Config.SessionID = "custom"
	if _, ok := req2.Fingerprint(); ok {
		t.Error("SessionID request claimed to be fingerprintable")
	}
}

// TestRunCacheColdWarm proves the memoization contract: a second identical
// request is a hit, a warm result is deep-equal to the cold one, and a
// fresh process (simulated by a new Cache over the same directory) loads
// the sweep from disk without executing any session.
func TestRunCacheColdWarm(t *testing.T) {
	dir := t.TempDir()

	req := smallRequest(4)
	req.Cache = cache.New(cache.WithDir(dir))

	cold := mustRun(t, req)
	if s := req.Cache.Stats(cache.KindSim); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("cold stats = %+v, want 1 miss", s)
	}
	warm := mustRun(t, req)
	if s := req.Cache.Stats(cache.KindSim); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("warm stats = %+v, want 1 miss 1 hit", s)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm in-memory result differs from cold result")
	}

	// New cache over the same dir = a later process: the disk layer must
	// reproduce the result exactly (JSON round trip) with zero sessions run.
	req2 := smallRequest(4)
	req2.Cache = cache.New(cache.WithDir(dir))
	disk := mustRun(t, req2)
	if s := req2.Cache.Stats(cache.KindSim); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("disk stats = %+v, want 1 hit 0 misses", s)
	}
	if !reflect.DeepEqual(cold, disk) {
		t.Fatal("disk-loaded result differs from cold result")
	}
}

// TestRunCacheDistinguishesSchemeKeys guards the parameter-sweep hazard: two
// requests identical except for a scheme Key must not share a memoized
// result.
func TestRunCacheDistinguishesSchemeKeys(t *testing.T) {
	c := cache.New()
	reqA := smallRequest(2)
	reqA.Cache = c
	reqA.Schemes = []abr.Scheme{{Name: "Fixed", Key: "level-0", New: abr.Fixed(0)}}
	reqB := smallRequest(2)
	reqB.Cache = c
	reqB.Schemes = []abr.Scheme{{Name: "Fixed", Key: "level-9", New: abr.Fixed(9)}}

	a := mustRun(t, reqA)
	b := mustRun(t, reqB)
	if s := c.Stats(cache.KindSim); s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses (distinct keys must not share entries)", s)
	}
	vid := reqA.Videos[0].ID()
	if reflect.DeepEqual(a.Summaries("Fixed", vid), b.Summaries("Fixed", vid)) {
		t.Fatal("distinct configurations returned identical cached results")
	}
}
