// Package sim runs scheme × video × trace evaluation sweeps in parallel and
// aggregates per-session metric summaries, the machinery behind every table
// and figure reproduction.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"cava/internal/abr"
	"cava/internal/cache"
	"cava/internal/cliutil"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// SchemeAll returns every scheme in the CLI registry as a sweep entry, in
// sorted name order — the complete comparison set. The fleet engine's
// equivalence test pins player.Simulate against a one-session fleet for
// each of these.
func SchemeAll() []abr.Scheme {
	reg := cliutil.Schemes()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]abr.Scheme, 0, len(names))
	for _, n := range names {
		out = append(out, abr.Scheme{Name: n, New: reg[n]})
	}
	return out
}

// Request describes one sweep.
type Request struct {
	// Videos to stream.
	Videos []*video.Video
	// Traces to replay.
	Traces []*trace.Trace
	// Schemes to compare.
	Schemes []abr.Scheme
	// Config is the shared player configuration.
	Config player.Config
	// Metric is the perceptual metric for QoE accounting (VMAF phone for
	// LTE, VMAF TV for FCC per §6.1).
	Metric quality.Metric
	// Workers bounds parallelism; non-positive uses GOMAXPROCS.
	Workers int
	// PredictorFor optionally supplies a per-session bandwidth predictor
	// (e.g. the §6.7 noisy oracle); nil uses Config.Predictor semantics.
	PredictorFor func(v *video.Video, tr *trace.Trace) player.Config
	// Metrics, when non-nil, receives sweep progress instrumentation:
	// sim_sessions_total, sim_session_errors_total and the
	// sim_jobs_pending gauge, so a long sweep is observable live on
	// /metrics instead of only through its final summary.
	Metrics *telemetry.Registry
	// Cache, when non-nil, memoizes per-video derived artifacts (quality
	// tables, scene classifications) and — for requests whose outcome is
	// fully determined by fingerprintable inputs (see Fingerprint) — the
	// whole sweep result, in memory and optionally on disk. Neither
	// Workers nor Metrics affects results, so neither invalidates a
	// cached sweep.
	Cache *cache.Cache
}

// CellKey identifies one (scheme, video) aggregation cell.
type CellKey struct {
	Scheme string
	Video  string
}

// Results holds all per-session summaries of a sweep, grouped by cell. The
// summaries within a cell are ordered by trace for determinism.
type Results struct {
	// Cells maps (scheme, video) to its per-trace summaries.
	Cells map[CellKey][]metrics.Summary
}

// Summaries returns the cell for a scheme/video pair (nil when absent).
func (r *Results) Summaries(scheme, videoID string) []metrics.Summary {
	return r.Cells[CellKey{Scheme: scheme, Video: videoID}]
}

// SchemeAll concatenates a scheme's summaries across all videos, in video
// order (map iteration order would leak into aggregates otherwise).
func (r *Results) SchemeAll(scheme string) []metrics.Summary {
	var vids []string
	for k := range r.Cells {
		if k.Scheme == scheme {
			vids = append(vids, k.Video)
		}
	}
	sort.Strings(vids)
	var out []metrics.Summary
	for _, v := range vids {
		out = append(out, r.Cells[CellKey{Scheme: scheme, Video: v}]...)
	}
	return out
}

// Run executes the sweep. Every (video, trace, scheme) triple is one
// independent streaming session with a fresh algorithm instance. A session
// failure (invalid video or trace) aborts the sweep and is returned after
// the in-flight sessions drain.
//
// Scheme names must be unique within a request: results are keyed by
// scheme name, so duplicates would merge distinct schemes into one cell.
// Run rejects them with an error instead of silently dropping sessions.
//
// When req.Cache is set and the request is fingerprintable (see
// Fingerprint), the whole sweep result is memoized: a repeated identical
// request — in this process or, with a disk-backed cache, in a previous
// one — returns the stored result without running any session.
func Run(req Request) (*Results, error) {
	seen := make(map[string]bool, len(req.Schemes))
	for _, sc := range req.Schemes {
		if seen[sc.Name] {
			return nil, fmt.Errorf("sim: duplicate scheme name %q in request", sc.Name)
		}
		seen[sc.Name] = true
	}
	if fp, ok := req.Fingerprint(); ok && req.Cache != nil {
		enc, err := cache.GetOrComputeJSON(req.Cache, cache.KindSim, fp, func() (resultsEnc, error) {
			r, err := run(req)
			if err != nil {
				return nil, err
			}
			return encodeResults(r), nil
		})
		if err != nil {
			return nil, err
		}
		return enc.decode(), nil
	}
	return run(req)
}

// run executes the sweep unconditionally.
func run(req Request) (*Results, error) {
	type job struct {
		v      *video.Video
		tr     *trace.Trace
		scheme abr.Scheme
		ti     int
	}
	workers := req.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	sessionsTot := req.Metrics.Counter("sim_sessions_total", "sweep sessions completed")
	errorsTot := req.Metrics.Counter("sim_session_errors_total", "sweep sessions that failed")
	pending := req.Metrics.Gauge("sim_jobs_pending", "sweep sessions not yet finished")
	// Add, not Set: concurrent sweeps may share one registry (overlapping
	// experiment runners), and Set would clobber the other sweep's pending
	// count. Every job — completed, failed or skipped after a failure —
	// takes its Add(-1), so the gauge composes across sweeps and returns
	// to zero when all of them finish.
	pending.Add(float64(len(req.Videos) * len(req.Traces) * len(req.Schemes)))

	// Per-video quality tables and classifications, computed once here and
	// at most once per process when a cache is attached (req.Cache may be
	// nil; the helpers then compute directly).
	qts := make(map[string]*quality.Table, len(req.Videos))
	cats := make(map[string][]scene.Category, len(req.Videos))
	for _, v := range req.Videos {
		qts[v.ID()] = req.Cache.QualityTable(v, req.Metric)
		cats[v.ID()] = req.Cache.Categories(v)
	}

	jobs := make(chan job)
	type keyed struct {
		key CellKey
		ti  int
		s   metrics.Summary
	}
	out := make(chan keyed)

	// The first session error wins; later failures of the same sweep add
	// nothing actionable. Workers keep draining the job channel after a
	// failure (skipping the work) so the producer goroutine never blocks.
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if failed() {
					pending.Add(-1)
					continue
				}
				cfg := req.Config
				if req.PredictorFor != nil {
					cfg = req.PredictorFor(j.v, j.tr)
				}
				algo := j.scheme.New(j.v)
				res, err := player.Simulate(j.v, j.tr, algo, cfg)
				if err != nil {
					errorsTot.Inc()
					pending.Add(-1)
					fail(fmt.Errorf("sim: session (%s, %s, %s): %w",
						j.v.ID(), j.tr.ID, j.scheme.Name, err))
					continue
				}
				s := metrics.Summarize(res, qts[j.v.ID()], cats[j.v.ID()])
				// Cells — and the summaries inside them — carry the sweep's
				// scheme label, not the algorithm's self-reported name: a
				// constructor may name its algorithm differently (or several
				// sweep entries may share one algorithm), and results must
				// stay findable under the label the caller configured.
				s.Scheme = j.scheme.Name
				sessionsTot.Inc()
				pending.Add(-1)
				out <- keyed{key: CellKey{Scheme: j.scheme.Name, Video: j.v.ID()}, ti: j.ti, s: s}
			}
		}()
	}
	go func() {
		for _, v := range req.Videos {
			for ti, tr := range req.Traces {
				for _, sc := range req.Schemes {
					jobs <- job{v: v, tr: tr, scheme: sc, ti: ti}
				}
			}
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()

	tmp := make(map[CellKey][]keyed)
	for k := range out {
		tmp[k.key] = append(tmp[k.key], k)
	}
	if failed() {
		errMu.Lock()
		defer errMu.Unlock()
		return nil, firstErr
	}
	res := &Results{Cells: make(map[CellKey][]metrics.Summary, len(tmp))}
	for key, ks := range tmp {
		// Restore trace order for determinism. Every cell must receive
		// exactly one summary per trace; anything else is an aggregation
		// bug and must surface, not silently leave zero-valued slots.
		if len(ks) != len(req.Traces) {
			return nil, fmt.Errorf("sim: cell (%s, %s) collected %d sessions for %d traces",
				key.Scheme, key.Video, len(ks), len(req.Traces))
		}
		ordered := make([]metrics.Summary, len(ks))
		filled := make([]bool, len(req.Traces))
		for _, k := range ks {
			if k.ti >= len(ordered) || filled[k.ti] {
				return nil, fmt.Errorf("sim: cell (%s, %s) received conflicting sessions for trace %d",
					key.Scheme, key.Video, k.ti)
			}
			ordered[k.ti] = k.s
			filled[k.ti] = true
		}
		res.Cells[key] = ordered
	}
	return res, nil
}

// MeanOf aggregates one metric field across a cell's summaries.
func MeanOf(ss []metrics.Summary, f metrics.Field) float64 {
	return metrics.Mean(metrics.Collect(ss, f))
}
