package sim

import (
	"sort"

	"cava/internal/cache"
	"cava/internal/metrics"
)

// Fingerprint returns the content fingerprint of a request — the key under
// which its sweep result is memoized — and whether the request is
// fingerprintable at all.
//
// The fingerprint covers everything that determines the result: video
// content, trace content and order, scheme names and keys (in order), the
// player configuration and the quality metric. It deliberately excludes
// Workers and Metrics, which change how the sweep runs but not what it
// produces.
//
// A request is not fingerprintable when its behavior depends on values the
// fingerprint cannot see: a custom bandwidth predictor (PredictorFor or
// Config.Predictor), an attached trace recorder, or a session-ID override.
// Such requests always execute.
func (req Request) Fingerprint() (string, bool) {
	if req.PredictorFor != nil || req.Config.Predictor != nil ||
		req.Config.Recorder != nil || req.Config.SessionID != "" {
		return "", false
	}
	h := cache.NewHasher("sim-v1")
	h.F64(req.Config.StartupSec).F64(req.Config.MaxBufferSec)
	h.I64(int64(req.Metric))
	h.I64(int64(len(req.Videos)))
	for _, v := range req.Videos {
		h.Str(cache.VideoFingerprint(v))
	}
	h.I64(int64(len(req.Traces)))
	for _, tr := range req.Traces {
		h.Str(cache.TraceFingerprint(tr))
	}
	h.I64(int64(len(req.Schemes)))
	for _, sc := range req.Schemes {
		h.Str(sc.Name).Str(sc.Key)
	}
	return h.Sum(), true
}

// cellEnc is the JSON shape of one aggregation cell. Results.Cells is a
// map keyed by a struct, which encoding/json cannot represent, so cached
// sweeps serialize as a sorted list of cells (sorted so identical results
// marshal to identical bytes).
type cellEnc struct {
	Scheme    string            `json:"scheme"`
	Video     string            `json:"video"`
	Summaries []metrics.Summary `json:"summaries"`
}

type resultsEnc []cellEnc

func encodeResults(r *Results) resultsEnc {
	out := make(resultsEnc, 0, len(r.Cells))
	for k, ss := range r.Cells {
		out = append(out, cellEnc{Scheme: k.Scheme, Video: k.Video, Summaries: ss})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Video < out[j].Video
	})
	return out
}

func (e resultsEnc) decode() *Results {
	r := &Results{Cells: make(map[CellKey][]metrics.Summary, len(e))}
	for _, c := range e {
		r.Cells[CellKey{Scheme: c.Scheme, Video: c.Video}] = c.Summaries
	}
	return r
}
