// Package telemetry is the repository's dependency-free instrumentation
// substrate: a concurrent registry of counters, gauges and fixed-bucket
// histograms with Prometheus text-format exposition, plus a structured
// per-session ABR decision trace shared by the simulator and the HTTP
// testbed (see trace.go).
//
// Design constraints, in priority order:
//
//  1. The increment path is atomic and allocation-free: metric handles are
//     resolved once (at wiring time) and then updated with plain atomic
//     operations, so instrumentation is safe on the hot paths the ROADMAP
//     wants to optimize.
//  2. Disabled telemetry is free. Every constructor and every update method
//     is nil-receiver-safe: code instruments unconditionally against
//     possibly-nil handles, and a nil *Registry hands out nil handles, so
//     an uninstrumented run performs only a nil check per update.
//  3. No dependencies. Exposition emits the Prometheus text format directly
//     (expose.go); nothing outside the standard library is imported.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil *Counter ignores updates (disabled telemetry).
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (no-op on a nil receiver).
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits. The
// zero value is ready to use; a nil *Gauge ignores updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta (CAS loop; no allocation).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are defined by
// ascending upper bounds; observations beyond the last bound land in the
// implicit +Inf bucket. Observe is atomic and allocation-free. A nil
// *Histogram ignores updates.
type Histogram struct {
	bounds  []float64 // ascending upper bounds (exclusive of +Inf)
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets is a general-purpose latency bucket ladder in seconds.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket ladders are short (≤ ~20), and a scan avoids the
	// bounds-check and branch-misprediction overhead of binary search at
	// these sizes.
	i := len(h.bounds)
	for b, ub := range h.bounds {
		if v <= ub {
			i = b
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Label is one metric label pair.
type Label struct {
	Name, Value string
}

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered metric instance (one label combination).
type entry struct {
	name   string
	help   string
	labels string // pre-rendered {k="v",...} or ""
	kind   kind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry is a concurrent collection of metrics. Lookup-or-create is
// mutex-guarded (wiring time); the handles it returns update lock-free.
// A nil *Registry is a valid disabled registry: every constructor returns
// nil, which the metric types accept as a no-op target.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// renderLabels builds the canonical `{k="v",...}` suffix (sorted by name)
// used both as part of the registry key and verbatim in exposition.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the Prometheus label-value escaping rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the entry for (name, labels), creating it with mk when
// absent. Re-registering an existing (name, labels) with the same kind
// returns the existing instance; a kind mismatch panics (it is a wiring
// bug, not a runtime condition).
func (r *Registry) lookup(name, help string, labels []Label, k kind, mk func(*entry)) *entry {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != k {
			//lint:allow nopanic kind mismatch on re-registration is a programmer error
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, k, e.kind))
		}
		return e
	}
	e := &entry{name: name, help: help, labels: renderLabels(labels), kind: k}
	mk(e)
	r.entries[key] = e
	return e
}

// Counter returns the counter registered under name (creating it if
// needed). A nil registry returns nil, which is safe to update.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, help, labels, kindCounter, func(e *entry) { e.c = &Counter{} })
	return e.c
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, help, labels, kindGauge, func(e *entry) { e.g = &Gauge{} })
	return e.g
}

// Histogram returns the histogram registered under name with the given
// bucket upper bounds (nil selects DefBuckets). Bounds are fixed at first
// registration; later registrations reuse the existing ladder.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	e := r.lookup(name, help, labels, kindHistogram, func(e *entry) { e.h = newHistogram(bounds) })
	return e.h
}

// snapshot returns the entries sorted by (name, labels) for exposition.
func (r *Registry) snapshot() []*entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
