package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` headers once per metric family,
// samples sorted by name then label set, histograms expanded into
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, e := range r.snapshot() {
		if e.name != lastFamily {
			lastFamily = e.name
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", e.name, e.labels, e.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %s\n", e.name, e.labels, formatFloat(e.g.Value()))
		case kindHistogram:
			writeHistogram(bw, e)
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series for one histogram.
func writeHistogram(w *bufio.Writer, e *entry) {
	h := e.h
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, mergeLabels(e.labels, "le", formatFloat(ub)), cum)
	}
	// The +Inf bucket equals the total count by construction; read the
	// bucket itself so a torn read against count stays internally cumulative.
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, mergeLabels(e.labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", e.name, e.labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", e.name, e.labels, h.Count())
}

// mergeLabels inserts an extra pair into a pre-rendered label suffix.
func mergeLabels(rendered, name, value string) string {
	extra := name + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}

// escapeHelp applies the help-text escaping rules.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry at any path, for
// mounting at /metrics. A nil registry serves an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WriteText(w)
	})
}
