package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// The decision trace is a structured event log of one streaming session:
// every ABR step (what the controller saw and why it chose that track),
// every download, and every resilience/fault event, in one schema shared
// verbatim by the trace-driven simulator (player.Simulate) and the live
// HTTP testbed (dash.Client) — the point being that a tool written against
// one producer (cmd/abrexport's trace renderer, a dashboard, a diff script)
// works unmodified against the other.

// Kind tags a trace event.
type Kind string

const (
	// KindDecide is one ABR decision: the observable state, the chosen
	// track, and (for CAVA) the controller internals that produced it.
	KindDecide Kind = "decide"
	// KindDownload is one completed chunk download.
	KindDownload Kind = "download"
	// KindStartup marks playback start (end of the startup phase).
	KindStartup Kind = "startup"
	// KindWait is idle time before a request (full buffer or an
	// algorithm-requested pause).
	KindWait Kind = "wait"
	// KindRetry is one failed download attempt that will be retried.
	KindRetry Kind = "retry"
	// KindAbandon is a mid-flight download given up for a lower track.
	KindAbandon Kind = "abandon"
	// KindSkip is a chunk abandoned entirely after exhausting retries.
	KindSkip Kind = "skip"
	// KindFault is a server-side injected fault (testbed fault injector).
	KindFault Kind = "fault"
)

// Event is one decision-trace record. Scalar fields are always meaningful;
// optional fields are populated per Kind and elide from JSON when zero, so
// a JSONL dump stays compact. All times are virtual seconds since session
// start and all rates are bits per second, matching the simulator's units.
type Event struct {
	// Session identifies the producing session (video|trace|scheme unless
	// the caller sets an explicit id).
	Session string `json:"session"`
	// Seq is the ring-assigned monotonically increasing sequence number.
	Seq uint64 `json:"seq"`
	// TimeSec is the virtual session clock at the event.
	TimeSec float64 `json:"t"`
	// Kind tags the event.
	Kind Kind `json:"kind"`
	// Chunk is the chunk index the event concerns (-1 when not chunk-scoped).
	Chunk int `json:"chunk"`
	// Level is the track the event concerns: the chosen track for decide,
	// the delivered track for download, the attempted track for
	// retry/abandon/skip.
	Level int `json:"level"`
	// PrevLevel is the previously chosen track (-1 before the first chunk).
	PrevLevel int `json:"prev_level"`
	// BufferSec is the playback buffer at the event.
	BufferSec float64 `json:"buffer_sec"`
	// EstBps is the bandwidth estimate visible to the decision.
	EstBps float64 `json:"est_bps,omitempty"`

	// Controller internals (decide events from CAVA).
	TargetSec float64 `json:"target_sec,omitempty"` // outer-loop target buffer x_r
	U         float64 `json:"u,omitempty"`          // inner-loop control signal u_t
	PTerm     float64 `json:"p_term,omitempty"`     // proportional term Kp·e
	ITerm     float64 `json:"i_term,omitempty"`     // integral term Ki·∫e
	Alpha     float64 `json:"alpha,omitempty"`      // bandwidth inflation α_t
	Eta       float64 `json:"eta,omitempty"`        // change-penalty weight η_t
	// Scores are the per-track objective values Q(ℓ) of the decision
	// (lower is better); index = track level.
	Scores []float64 `json:"scores,omitempty"`

	// Download detail (download events).
	SizeBits      float64 `json:"size_bits,omitempty"`
	DownloadSec   float64 `json:"download_sec,omitempty"`
	ThroughputBps float64 `json:"throughput_bps,omitempty"`
	RebufferSec   float64 `json:"rebuffer_sec,omitempty"`
	WaitSec       float64 `json:"wait_sec,omitempty"`

	// Resilience/fault detail (retry, abandon, skip, fault events).
	Attempt int    `json:"attempt,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Recorder consumes trace events. Implementations must be safe for
// concurrent use (a sweep shares one recorder across sessions). Producers
// must guard with a nil check so disabled tracing costs nothing:
//
//	if rec != nil {
//		rec.Record(telemetry.Event{...})
//	}
type Recorder interface {
	Record(ev Event)
}

// Ring is a bounded in-memory Recorder: a ring buffer that keeps the most
// recent Capacity events and counts what it evicted. The zero value is
// unusable; use NewRing. A nil *Ring discards events, so a typed-nil Ring
// stored in a Recorder interface stays safe.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	n       int
	seq     uint64
	dropped uint64
}

// DefaultRingCapacity holds several full sessions of events.
const DefaultRingCapacity = 8192

// NewRing returns a ring holding up to capacity events (non-positive
// selects DefaultRingCapacity).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Recorder: it stamps the sequence number and stores the
// event, evicting the oldest when full.
func (r *Ring) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a snapshot of the retained events, oldest first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events were evicted to make room.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteJSONL dumps the retained events as JSON Lines, oldest first.
func (r *Ring) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Events())
}

// WriteJSONL writes events as JSON Lines (one event per line).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines trace dump back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: parsing trace line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// SessionID renders the canonical session identifier used when the caller
// does not set an explicit one.
func SessionID(videoID, traceID, scheme string) string {
	return videoID + "|" + traceID + "|" + scheme
}
