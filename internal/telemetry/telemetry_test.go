package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 16 {
		t.Fatalf("sum = %v, want 16", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="2"} 3`,
		`lat_seconds_bucket{le="5"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 16`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestNilRegistryAndHandlesAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil handles must read as zero")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, want empty", buf.String())
	}
	var ring *Ring
	ring.Record(Event{Kind: KindDecide})
	if ring.Len() != 0 || ring.Events() != nil {
		t.Fatalf("nil ring must discard")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "shared")
			h := r.Histogram("conc_seconds", "shared", []float64{1})
			g := r.Gauge("conc_gauge", "shared", Label{Name: "w", Value: strconv.Itoa(w)})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 3))
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("conc_seconds", "shared", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// parsePrometheus is a minimal exposition-format parser: it checks comment
// structure and returns sample name{labels} -> value.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("line %d: bad type %q", ln+1, parts[3])
				}
				typed[parts[2]] = true
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, line)
			}
			name = name[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[family] {
			t.Fatalf("line %d: sample %q precedes its TYPE header", ln+1, name)
		}
		samples[key] = f
	}
	return samples
}

func TestPrometheusExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "total requests").Add(7)
	r.Counter("app_requests_total", "total requests", Label{Name: "code", Value: "503"}).Add(2)
	r.Gauge("app_queue_depth", "bytes waiting\nfor the shaper").Set(12.5)
	r.Histogram("app_fetch_seconds", "fetch latency", []float64{0.1, 1}).Observe(0.05)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	samples := parsePrometheus(t, rec.Body.String())
	for key, want := range map[string]float64{
		"app_requests_total":                  7,
		`app_requests_total{code="503"}`:      2,
		"app_queue_depth":                     12.5,
		`app_fetch_seconds_bucket{le="0.1"}`:  1,
		`app_fetch_seconds_bucket{le="+Inf"}`: 1,
		"app_fetch_seconds_count":             1,
	} {
		if got, ok := samples[key]; !ok || got != want {
			t.Errorf("sample %q = %v (present=%v), want %v", key, got, ok, want)
		}
	}
}

func TestRingEvictionAndOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Chunk: i, Kind: KindDecide})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Chunk != 6+i {
			t.Fatalf("event %d chunk = %d, want %d", i, ev.Chunk, 6+i)
		}
		if ev.Seq != uint64(7+i) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, 7+i)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Session: "s", Seq: 1, TimeSec: 0.5, Kind: KindDecide, Chunk: 0, Level: 2,
			PrevLevel: -1, BufferSec: 3, EstBps: 2e6, TargetSec: 60, U: 1.1,
			PTerm: 0.9, ITerm: 0.01, Alpha: 1.5, Eta: 5, Scores: []float64{3, 1, 2}},
		{Session: "s", Seq: 2, TimeSec: 1.5, Kind: KindRetry, Chunk: 0, Level: 2,
			Attempt: 1, Detail: "status 503"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(in) {
		t.Fatalf("jsonl has %d lines, want %d", got, len(in))
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(in)
	b, _ := json.Marshal(out)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip mismatch:\n%s\n%s", a, b)
	}
}

// TestZeroAllocUpdates is the allocation assertion guarding the zero-alloc
// counter path (wired into `make check` via the telemetry bench smoke).
func TestZeroAllocUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "")
	g := r.Gauge("hot_gauge", "")
	h := r.Histogram("hot_seconds", "", nil)
	var nilC *Counter
	var nilH *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(0.5)
		h.Observe(0.42)
		nilC.Inc()
		nilH.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("metric update path allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkTelemetryCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 17)
	}
}

func BenchmarkTelemetryExposition(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		r.Counter(fmt.Sprintf("m%02d_total", i), "bench metric").Add(uint64(i))
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := r.WriteText(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
