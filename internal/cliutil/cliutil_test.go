package cliutil

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cava/internal/abr"
	"cava/internal/trace"
	"cava/internal/video"
)

func TestParseTraceFamilies(t *testing.T) {
	lte, err := ParseTrace("lte:3")
	if err != nil || lte.ID != "lte-003" {
		t.Fatalf("lte spec: %v, %v", lte, err)
	}
	fcc, err := ParseTrace("fcc:0")
	if err != nil || fcc.IntervalSec != trace.FCCIntervalSec {
		t.Fatalf("fcc spec: %v, %v", fcc, err)
	}
	c, err := ParseTrace("const:2.5")
	if err != nil || c.Mean() != 2.5e6 {
		t.Fatalf("const spec: %v, %v", c, err)
	}
}

func TestParseTraceMahimahi(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteMahimahi(&buf, trace.Constant("x", 3e6, 5, 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mm.log")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace("mahimahi:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() < 4 {
		t.Errorf("mahimahi trace too short: %v", tr.Duration())
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"", "lte", "lte:x", "fcc:y", "const:z", "const:-1",
		"mars:1", "mahimahi:/does/not/exist",
	} {
		if _, err := ParseTrace(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestParseCorpus(t *testing.T) {
	trs, err := ParseCorpus("lte:3,fcc:2,const:2.5")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(trs))
	for i, tr := range trs {
		ids[i] = tr.ID
	}
	want := []string{"lte-000", "lte-001", "lte-002", "fcc-000", "fcc-001", "const:2.5"}
	if len(ids) != len(want) {
		t.Fatalf("corpus = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("corpus[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestParseCorpusErrors(t *testing.T) {
	for _, bad := range []string{
		"", "lte", "lte:0", "lte:-2", "fcc:x", "mars:1", "lte:3,,fcc:1",
	} {
		if _, err := ParseCorpus(bad); err == nil {
			t.Errorf("corpus spec %q accepted", bad)
		}
	}
}

func TestSchemeRegistryComplete(t *testing.T) {
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	for _, name := range SchemeNames() {
		f, err := SchemeByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		algo := f(v)
		if algo.Name() == "" {
			t.Errorf("%s: empty algorithm name", name)
		}
		if l := algo.Select(abr.State{ChunkIndex: 0, Buffer: 20, Est: 2e6}); l < 0 || l >= v.NumTracks() {
			t.Errorf("%s: first decision %d out of range", name, l)
		}
	}
}

func TestSchemeByNameUnknown(t *testing.T) {
	if _, err := SchemeByName("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}
