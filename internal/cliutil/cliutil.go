// Package cliutil holds the flag-parsing helpers shared by the command-line
// tools: trace specs ("lte:3", "fcc:10", "const:2.5", "mahimahi:<path>")
// and the scheme registry mapping CLI names to abr factories.
package cliutil

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/quality"
	"cava/internal/trace"
	"cava/internal/video"
)

// ParseTrace resolves a trace spec:
//
//	lte:<idx>        generated LTE trace
//	fcc:<idx>        generated FCC trace
//	const:<mbps>     constant-bandwidth trace (20 minutes)
//	mahimahi:<path>  mm-link packet log from disk
func ParseTrace(spec string) (*trace.Trace, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("trace spec %q: want lte:<idx>, fcc:<idx>, const:<mbps>, or mahimahi:<path>", spec)
	}
	switch parts[0] {
	case "lte":
		i, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("trace spec %q: %v", spec, err)
		}
		return trace.GenLTE(i), nil
	case "fcc":
		i, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("trace spec %q: %v", spec, err)
		}
		return trace.GenFCC(i), nil
	case "const":
		mbps, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace spec %q: %v", spec, err)
		}
		if mbps <= 0 {
			return nil, fmt.Errorf("trace spec %q: non-positive rate", spec)
		}
		return trace.Constant(spec, mbps*1e6, 1200, 1), nil
	case "mahimahi":
		f, err := os.Open(parts[1])
		if err != nil {
			return nil, fmt.Errorf("trace spec %q: %v", spec, err)
		}
		defer f.Close()
		return trace.ReadMahimahi(f, parts[1], 1)
	default:
		return nil, fmt.Errorf("unknown trace family %q", parts[0])
	}
}

// ParseCorpus resolves a comma-separated trace-corpus spec into a trace
// set. Each element names a family and a count (unlike ParseTrace, where
// the number is an index):
//
//	lte:<n>          the first n generated LTE traces
//	fcc:<n>          the first n generated FCC traces
//	const:<mbps>     one constant-bandwidth trace (20 minutes)
//	mahimahi:<path>  one mm-link packet log from disk
//
// "lte:40,fcc:20" is a 60-trace mixed corpus. Order is preserved, so a
// spec always produces the same corpus in the same order.
func ParseCorpus(spec string) ([]*trace.Trace, error) {
	var out []*trace.Trace
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		fam, arg, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("corpus spec %q: want lte:<n>, fcc:<n>, const:<mbps>, or mahimahi:<path>", part)
		}
		switch fam {
		case "lte", "fcc":
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("corpus spec %q: want a positive trace count", part)
			}
			if fam == "lte" {
				out = append(out, trace.GenLTESet(n)...)
			} else {
				out = append(out, trace.GenFCCSet(n)...)
			}
		default:
			tr, err := ParseTrace(part)
			if err != nil {
				return nil, err
			}
			out = append(out, tr)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("corpus spec %q: no traces", spec)
	}
	return out, nil
}

// Schemes maps every CLI scheme name to a factory.
func Schemes() map[string]abr.Factory {
	return map[string]abr.Factory{
		"cava":      core.Factory(),
		"cava-p1":   core.Variant("p1"),
		"cava-p12":  core.Variant("p12"),
		"cava-auto": core.AutoFactory(),
		"mpc":       func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, false) },
		"robustmpc": func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, true) },
		"panda-max-sum": func(v *video.Video) abr.Algorithm {
			return abr.NewPANDACQ(v, quality.NewTable(v, quality.PSNR), abr.MaxSum)
		},
		"panda-max-min": func(v *video.Video) abr.Algorithm {
			return abr.NewPANDACQ(v, quality.NewTable(v, quality.PSNR), abr.MaxMin)
		},
		"bba1":       func(v *video.Video) abr.Algorithm { return abr.NewBBA1(v, 0, 0) },
		"rba":        func(v *video.Video) abr.Algorithm { return abr.NewRBA(v, 4) },
		"pia":        func(v *video.Video) abr.Algorithm { return abr.NewPIA(v) },
		"festive":    func(v *video.Video) abr.Algorithm { return abr.NewFESTIVE(v) },
		"bola-avg":   func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLAAvg, false) },
		"bolae-peak": func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLAPeak, true) },
		"bolae-avg":  func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLAAvg, true) },
		"bolae-seg":  func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLASeg, true) },
	}
}

// SchemeByName resolves one scheme, with a helpful error listing the names.
func SchemeByName(name string) (abr.Factory, error) {
	reg := Schemes()
	if f, ok := reg[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("unknown scheme %q (have %s)", name, strings.Join(SchemeNames(), ", "))
}

// SchemeNames lists the registry keys in sorted order.
func SchemeNames() []string {
	reg := Schemes()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
