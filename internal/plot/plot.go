// Package plot renders small terminal charts — sparklines, CDF step plots
// and bar charts — so cmd/abreval and the examples can show the paper's
// figures directly in the terminal without any plotting dependency.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// sparkRunes are the eighth-block ramp used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a one-line miniature of a series, scaling into the
// eighth-block ramp. Empty input yields an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// Series is one named sample for CDF for comparison plots.
type Series struct {
	Name   string
	Values []float64
}

// seriesMarkers distinguish lines in shared plots.
var seriesMarkers = []rune("*o+x#@%&")

// CDF renders the empirical CDFs of several series on one character grid.
// The x axis spans the pooled sample range; the y axis is probability 0–1.
func CDF(series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	valid := false
	for _, s := range series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			valid = true
		}
	}
	if !valid {
		return "(no data)\n"
	}
	//lint:allow floateq degenerate-range guard wants exact equality
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range series {
		if len(s.Values) == 0 {
			continue
		}
		marker := seriesMarkers[si%len(seriesMarkers)]
		sorted := append([]float64(nil), s.Values...)
		sort.Float64s(sorted)
		for col := 0; col < width; col++ {
			x := lo + (hi-lo)*float64(col)/float64(width-1)
			// P(X <= x) by binary search.
			idx := sort.SearchFloat64s(sorted, x)
			for idx < len(sorted) && sorted[idx] <= x {
				idx++
			}
			p := float64(idx) / float64(len(sorted))
			row := height - 1 - int(p*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			if grid[row][col] == ' ' {
				grid[row][col] = marker
			} else if grid[row][col] != marker {
				grid[row][col] = '·' // overlap
			}
		}
	}

	var sb strings.Builder
	for r, row := range grid {
		p := 1 - float64(r)/float64(height-1)
		fmt.Fprintf(&sb, "%4.2f |%s|\n", p, string(row))
	}
	fmt.Fprintf(&sb, "      %-*s\n", width, axisLabels(lo, hi, width))
	for si, s := range series {
		fmt.Fprintf(&sb, "      %c %s\n", seriesMarkers[si%len(seriesMarkers)], s.Name)
	}
	return sb.String()
}

// axisLabels renders min/mid/max markers under the x axis.
func axisLabels(lo, hi float64, width int) string {
	left := fmt.Sprintf("%.4g", lo)
	mid := fmt.Sprintf("%.4g", (lo+hi)/2)
	right := fmt.Sprintf("%.4g", hi)
	pad := width - len(left) - len(mid) - len(right)
	if pad < 2 {
		return left + " … " + right
	}
	return left + strings.Repeat(" ", pad/2) + mid + strings.Repeat(" ", pad-pad/2) + right
}

// Bars renders a labeled horizontal bar chart scaled to the widest value.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		return "(label/value mismatch)\n"
	}
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var sb strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s |%s %.4g\n", maxLabel, labels[i], strings.Repeat("█", n), v)
	}
	return sb.String()
}

// Timeline renders a quality/level series as rows of a compact strip chart,
// marking highlighted positions (e.g. Q4 chunks) on a separate rail.
func Timeline(values []float64, highlight []bool, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width <= 0 || width > len(values) {
		width = len(values)
	}
	// Downsample by averaging buckets.
	bucket := float64(len(values)) / float64(width)
	ds := make([]float64, width)
	hl := make([]bool, width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * bucket)
		hi := int(float64(i+1) * bucket)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		sum := 0.0
		for k := lo; k < hi; k++ {
			sum += values[k]
			if highlight != nil && k < len(highlight) && highlight[k] {
				hl[i] = true
			}
		}
		ds[i] = sum / float64(hi-lo)
	}
	var sb strings.Builder
	sb.WriteString(Sparkline(ds))
	sb.WriteString("\n")
	for _, h := range hl {
		if h {
			sb.WriteString("▔")
		} else {
			sb.WriteString(" ")
		}
	}
	sb.WriteString("  (▔ marks complex Q4 scenes)\n")
	return sb.String()
}
