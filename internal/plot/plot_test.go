package plot

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline rune count %d, want 8", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline extremes wrong: %s", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline not empty")
	}
	// Constant series must not panic or divide by zero.
	c := Sparkline([]float64{5, 5, 5})
	if utf8.RuneCountInString(c) != 3 {
		t.Errorf("constant sparkline = %q", c)
	}
}

func TestSparklineMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		s := []rune(Sparkline(vals))
		if len(s) != len(vals) {
			return false
		}
		// Higher value never renders as a lower block.
		for i := range vals {
			for j := range vals {
				if vals[i] > vals[j] && blockIndex(s[i]) < blockIndex(s[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func blockIndex(r rune) int {
	for i, b := range sparkRunes {
		if b == r {
			return i
		}
	}
	return -1
}

func TestCDFPlot(t *testing.T) {
	out := CDF([]Series{
		{Name: "a", Values: []float64{1, 2, 3, 4, 5}},
		{Name: "b", Values: []float64{3, 4, 5, 6, 7}},
	}, 40, 8)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "1.00") || !strings.Contains(out, "0.00") {
		t.Error("y-axis labels missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
	// Series a (smaller values) must appear left of series b in the top row
	// region; check markers exist at all.
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Error("series markers missing")
	}
}

func TestCDFPlotDegenerate(t *testing.T) {
	if out := CDF(nil, 40, 8); !strings.Contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
	// Constant values must render without panic.
	out := CDF([]Series{{Name: "c", Values: []float64{2, 2, 2}}}, 20, 6)
	if out == "" {
		t.Error("constant-series plot empty")
	}
	// Tiny dimensions are coerced.
	out = CDF([]Series{{Name: "c", Values: []float64{1, 2}}}, 1, 1)
	if out == "" {
		t.Error("tiny plot empty")
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"CAVA", "RobustMPC"}, []float64{2, 4}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d bar lines", len(lines))
	}
	if strings.Count(lines[1], "█") != 20 {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "█") != 10 {
		t.Errorf("half bar wrong: %q", lines[0])
	}
	if !strings.Contains(Bars([]string{"x"}, []float64{1, 2}, 10), "mismatch") {
		t.Error("mismatched inputs not reported")
	}
	if !strings.Contains(Bars([]string{"z"}, []float64{0}, 10), "z") {
		t.Error("zero bar missing label")
	}
}

func TestTimeline(t *testing.T) {
	vals := make([]float64, 100)
	hl := make([]bool, 100)
	for i := range vals {
		vals[i] = float64(i % 10)
		hl[i] = i >= 50 && i < 60
	}
	out := Timeline(vals, hl, 50)
	lines := strings.Split(out, "\n")
	if len(lines) < 2 {
		t.Fatal("timeline too short")
	}
	if utf8.RuneCountInString(lines[0]) != 50 {
		t.Errorf("timeline width %d, want 50", utf8.RuneCountInString(lines[0]))
	}
	if !strings.Contains(lines[1], "▔") {
		t.Error("highlight rail missing")
	}
	if Timeline(nil, nil, 10) != "" {
		t.Error("empty timeline not empty")
	}
}
