package quality

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"cava/internal/scene"
	"cava/internal/video"
)

// testMedian avoids importing the metrics package, which depends on this
// package.
func testMedian(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 0 {
		return 0
	}
	return s[len(s)/2]
}

func edVideo() *video.Video {
	return video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
}

func TestRanges(t *testing.T) {
	v := edVideo()
	for l := 0; l < v.NumTracks(); l++ {
		for i := 0; i < v.NumChunks(); i++ {
			for _, m := range []Metric{VMAFTV, VMAFPhone} {
				q := Chunk(v, l, i, m)
				if q < 0 || q > 100 {
					t.Fatalf("%s track %d chunk %d = %v out of [0,100]", m, l, i, q)
				}
			}
			if p := Chunk(v, l, i, PSNR); p < 20 || p > 50 {
				t.Fatalf("PSNR track %d chunk %d = %v out of [20,50]", l, i, p)
			}
			if s := Chunk(v, l, i, SSIM); s < 0.5 || s > 1 {
				t.Fatalf("SSIM track %d chunk %d = %v out of [0.5,1]", l, i, s)
			}
		}
	}
}

func TestMeanQualityIncreasesWithLevel(t *testing.T) {
	v := edVideo()
	for _, m := range []Metric{VMAFTV, VMAFPhone, PSNR, SSIM} {
		prev := -1.0
		for l := 0; l < v.NumTracks(); l++ {
			sum := 0.0
			for i := 0; i < v.NumChunks(); i++ {
				sum += Chunk(v, l, i, m)
			}
			mean := sum / float64(v.NumChunks())
			if mean <= prev {
				t.Errorf("%s: mean quality at level %d (%.2f) not above level %d (%.2f)",
					m, l, mean, l-1, prev)
			}
			prev = mean
		}
	}
}

func TestCompressionScoreMonotone(t *testing.T) {
	// Increasing bits-per-pixel increases the score; increasing complexity
	// at fixed bpp decreases it.
	f := func(a, b uint8, cMilli uint16) bool {
		bppLo := 0.005 + float64(a)*0.001
		bppHi := bppLo + 0.001 + float64(b)*0.001
		c := float64(cMilli%1000) / 1000
		return compressionScore(bppHi, c) >= compressionScore(bppLo, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(bppU uint8, c1, c2 uint16) bool {
		bpp := 0.005 + float64(bppU)*0.002
		a, b := float64(c1%1000)/1000, float64(c2%1000)/1000
		if a > b {
			a, b = b, a
		}
		return compressionScore(bpp, a) >= compressionScore(bpp, b)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// TestQuartileQualityOrdering reproduces the §3.1.2 finding: despite larger
// sizes, Q4 chunks have lower quality than Q1–Q3 chunks in the same track,
// across every metric.
func TestQuartileQualityOrdering(t *testing.T) {
	v := edVideo()
	cats := scene.ClassifyDefault(v)
	mid := v.NumTracks() / 2
	for _, m := range []Metric{VMAFTV, VMAFPhone, PSNR, SSIM} {
		med := map[scene.Category][]float64{}
		for i := 0; i < v.NumChunks(); i++ {
			med[cats[i]] = append(med[cats[i]], Chunk(v, mid, i, m))
		}
		q1 := testMedian(med[scene.Q1])
		q4 := testMedian(med[scene.Q4])
		if q4 >= q1 {
			t.Errorf("%s: Q4 median %.2f not below Q1 median %.2f", m, q4, q1)
		}
	}
}

// TestQ4GapMatchesPaper checks the calibrated anchor: at the middle track,
// the phone-model VMAF gap between Q1 and Q4 medians is noticeable (several
// JND-relevant points) but not absurd.
func TestQ4GapMatchesPaper(t *testing.T) {
	v := edVideo()
	cats := scene.ClassifyDefault(v)
	var q1s, q4s []float64
	for i := 0; i < v.NumChunks(); i++ {
		q := Chunk(v, 3, i, VMAFPhone)
		switch cats[i] {
		case scene.Q1:
			q1s = append(q1s, q)
		case scene.Q4:
			q4s = append(q4s, q)
		}
	}
	gap := testMedian(q1s) - testMedian(q4s)
	if gap < 3 || gap > 20 {
		t.Errorf("Q1-Q4 phone VMAF gap %.1f outside [3,20]", gap)
	}
}

// Test4xCapRaisesQ4Quality reproduces §3.3: under a 4× cap complex scenes
// get more bits, so Q4 quality improves relative to the 2× encode while
// remaining below Q1–Q3.
func Test4xCapRaisesQ4Quality(t *testing.T) {
	v2 := video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
	v4 := video.Cap4xED()
	cats2 := scene.ClassifyDefault(v2)
	cats4 := scene.ClassifyDefault(v4)
	q4med := func(v *video.Video, cats []scene.Category) float64 {
		var qs []float64
		for i := 0; i < v.NumChunks(); i++ {
			if cats[i] == scene.Q4 {
				qs = append(qs, Chunk(v, 3, i, VMAFPhone))
			}
		}
		return testMedian(qs)
	}
	m2, m4 := q4med(v2, cats2), q4med(v4, cats4)
	if m4 <= m2 {
		t.Errorf("4x-cap Q4 median %.1f not above 2x-cap %.1f", m4, m2)
	}
	// Q4 must still lag Q1 under 4x (§3.3's central point).
	var q1s, q4s []float64
	for i := 0; i < v4.NumChunks(); i++ {
		q := Chunk(v4, 3, i, VMAFPhone)
		if cats4[i] == scene.Q1 {
			q1s = append(q1s, q)
		} else if cats4[i] == scene.Q4 {
			q4s = append(q4s, q)
		}
	}
	if testMedian(q4s) >= testMedian(q1s) {
		t.Error("4x cap erased the Q4 quality deficit entirely")
	}
}

func TestPhoneModelMoreForgiving(t *testing.T) {
	// The phone model scores low resolutions higher than the TV model
	// (small screens hide upscaling loss).
	v := edVideo()
	for l := 0; l < 4; l++ {
		for i := 0; i < v.NumChunks(); i += 17 {
			tv, ph := Chunk(v, l, i, VMAFTV), Chunk(v, l, i, VMAFPhone)
			if ph < tv {
				t.Fatalf("phone VMAF %.1f below TV %.1f at track %d chunk %d", ph, tv, l, i)
			}
		}
	}
}

func TestH265MatchesH264Quality(t *testing.T) {
	// The H.265 ladder runs at ~0.62x the bitrate for the same quality:
	// per-track mean quality must agree within a couple of VMAF points.
	h4 := video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
	h5 := video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H265)
	for l := 0; l < h4.NumTracks(); l++ {
		m4, m5 := 0.0, 0.0
		for i := 0; i < h4.NumChunks(); i++ {
			m4 += Chunk(h4, l, i, VMAFTV)
		}
		for i := 0; i < h5.NumChunks(); i++ {
			m5 += Chunk(h5, l, i, VMAFTV)
		}
		m4 /= float64(h4.NumChunks())
		m5 /= float64(h5.NumChunks())
		if math.Abs(m4-m5) > 3 {
			t.Errorf("track %d mean TV VMAF: h264 %.1f vs h265 %.1f", l, m4, m5)
		}
	}
}

func TestTableMatchesChunk(t *testing.T) {
	v := edVideo()
	tb := NewTable(v, VMAFPhone)
	for l := 0; l < v.NumTracks(); l++ {
		for i := 0; i < v.NumChunks(); i += 13 {
			if tb.At(l, i) != Chunk(v, l, i, VMAFPhone) {
				t.Fatalf("table mismatch at track %d chunk %d", l, i)
			}
		}
	}
	if tb.Metric != VMAFPhone {
		t.Error("table metric not recorded")
	}
}

func TestDeterministic(t *testing.T) {
	v1, v2 := edVideo(), edVideo()
	for i := 0; i < v1.NumChunks(); i += 7 {
		if Chunk(v1, 2, i, VMAFTV) != Chunk(v2, 2, i, VMAFTV) {
			t.Fatalf("quality not deterministic at chunk %d", i)
		}
	}
}

func TestDefaultMetricFor(t *testing.T) {
	if DefaultMetricFor(true) != VMAFPhone {
		t.Error("cellular should use the phone model")
	}
	if DefaultMetricFor(false) != VMAFTV {
		t.Error("broadband should use the TV model")
	}
}

func TestMetricString(t *testing.T) {
	names := map[Metric]string{VMAFTV: "VMAF-TV", VMAFPhone: "VMAF-Phone", PSNR: "PSNR", SSIM: "SSIM"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Metric(42).String() == "" {
		t.Error("unknown metric should still stringify")
	}
}

func TestLadderIndexNearest(t *testing.T) {
	if ladderIndex(video.Resolution{Name: "custom", Width: 900, Height: 500}) != 3 {
		t.Error("500p should map to the 480p rung")
	}
	if ladderIndex(video.Ladder[5]) != 5 {
		t.Error("exact ladder entry mismapped")
	}
}
