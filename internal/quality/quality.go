// Package quality provides parametric perceptual-quality models for the
// synthetic VBR dataset: VMAF (TV and phone models), PSNR and SSIM.
//
// Real VMAF/PSNR/SSIM require pixel data. Here each metric is a calibrated
// rate–quality surface Q(bits-per-pixel, scene complexity, resolution): it
// increases with bits-per-pixel, decreases with scene complexity at a fixed
// bitrate (the paper's central §3.1.2 finding — complex scenes have
// inferior quality despite more bits), and is ceilinged by the encode
// resolution (upscaling loss, with the phone model more forgiving of low
// resolutions than the TV model, as with Netflix's two VMAF models). The
// anchors follow the paper: for a middle (480p) track, Q4 chunks sit
// noticeably below Q1–Q3 (e.g. median phone-VMAF ≈ 79 vs 85–88 under a 4×
// cap, a wider gap under 2×), VMAF < 40 marks low/unacceptable quality,
// VMAF > 60 good quality, and a difference of 6 is one JND.
package quality

import (
	"fmt"
	"hash/fnv"
	"math"

	"cava/internal/video"
)

// Metric selects a quality model.
type Metric int

// Supported metrics.
const (
	VMAFTV Metric = iota
	VMAFPhone
	PSNR
	SSIM
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case VMAFTV:
		return "VMAF-TV"
	case VMAFPhone:
		return "VMAF-Phone"
	case PSNR:
		return "PSNR"
	case SSIM:
		return "SSIM"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Paper-aligned VMAF interpretation thresholds (§6.1, [50],[31]).
const (
	// LowQualityVMAF marks poor/unacceptable quality.
	LowQualityVMAF = 40.0
	// GoodQualityVMAF marks good viewing quality.
	GoodQualityVMAF = 60.0
	// JND is the just-noticeable VMAF difference.
	JND = 6.0
)

// Model parameters of the compression-quality sigmoid
// q = 1/(1+exp(-a·ln(bppEff/d(c)))), d(c) = d0·exp(g·c).
const (
	sigA = 1.7
	d0   = 0.0026
	gCx  = 3.2
)

// resCeilTV / resCeilPhone give the per-rung quality ceiling (out of 100)
// imposed by upscaling to the viewing display. Index matches video.Ladder.
var resCeilTV = []float64{30, 44, 61, 76, 91, 100}
var resCeilPhone = []float64{45, 60, 76, 88, 97, 100}

// codecBppFactor returns the bits-per-pixel an encoder needs relative to
// H.264 for equal quality.
func codecBppFactor(c video.Codec) float64 {
	if c == video.H265 {
		return 0.62
	}
	return 1.0
}

// compressionScore returns the 0..1 compression quality of a chunk before
// the resolution ceiling: bppEff is codec-normalized bits per pixel and c
// the latent scene complexity.
func compressionScore(bppEff, c float64) float64 {
	if bppEff <= 0 {
		return 0
	}
	demand := d0 * math.Exp(gCx*c)
	return 1 / (1 + math.Exp(-sigA*math.Log(bppEff/demand)))
}

// chunkScore returns the 0..1 compression score of chunk i at track level,
// including a small deterministic per-chunk perturbation standing in for
// frame-level measurement scatter.
func chunkScore(v *video.Video, level, chunk int) float64 {
	t := &v.Tracks[level]
	px := float64(t.Res.Width) * float64(t.Res.Height) * v.FPS * v.ChunkDurSec
	bpp := t.ChunkSizesBits[chunk] / px
	bppEff := bpp / codecBppFactor(v.Codec)
	s := compressionScore(bppEff, v.Complexity[chunk])
	// ±0.02 deterministic scatter.
	s += 0.02 * noise(v.ID(), level, chunk)
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// noise returns a deterministic pseudo-random value in [-1, 1) keyed by
// video/track/chunk.
func noise(id string, level, chunk int) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{byte(level), byte(chunk), byte(chunk >> 8)})
	u := h.Sum64()
	return float64(u%200000)/100000 - 1
}

// Chunk returns the quality of chunk i at track level under metric m.
// VMAF values are in [0,100], PSNR in dB (roughly 22–50), SSIM in (0,1].
func Chunk(v *video.Video, level, chunk int, m Metric) float64 {
	s := chunkScore(v, level, chunk)
	rung := ladderIndex(v.Tracks[level].Res)
	switch m {
	case VMAFTV:
		return s * resCeilTV[rung]
	case VMAFPhone:
		return s * resCeilPhone[rung]
	case PSNR:
		// Map compression score and a milder resolution factor into dB.
		rf := 0.6 + 0.4*resCeilTV[rung]/100
		return 22 + 26*s*rf
	case SSIM:
		rf := 0.55 + 0.45*resCeilTV[rung]/100
		return 0.62 + 0.38*math.Pow(s*rf, 0.8)
	default:
		return 0
	}
}

// ladderIndex maps a resolution to its rung in video.Ladder, falling back
// to the nearest rung by height so custom ladders still work.
func ladderIndex(res video.Resolution) int {
	best, bestDiff := 0, math.MaxFloat64
	for i, lr := range video.Ladder {
		d := math.Abs(float64(lr.Height - res.Height))
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

// Table precomputes per-chunk quality for every track of a video under one
// metric, for O(1) lookups in simulations and experiments.
type Table struct {
	// Metric is the metric the table holds.
	Metric Metric
	// Values is indexed [level][chunk].
	Values [][]float64
}

// NewTable computes the full quality table of a video.
func NewTable(v *video.Video, m Metric) *Table {
	t := &Table{Metric: m, Values: make([][]float64, v.NumTracks())}
	for l := range v.Tracks {
		row := make([]float64, v.NumChunks())
		for i := range row {
			row[i] = Chunk(v, l, i, m)
		}
		t.Values[l] = row
	}
	return t
}

// At returns the quality of chunk i at track level.
func (t *Table) At(level, chunk int) float64 { return t.Values[level][chunk] }

// DefaultMetricFor returns the VMAF model the paper pairs with a trace
// family: phone for cellular viewing, TV for home broadband (§6.1).
func DefaultMetricFor(cellular bool) Metric {
	if cellular {
		return VMAFPhone
	}
	return VMAFTV
}
