package metrics

import (
	"math/rand"
	"sort"
)

// Bootstrap confidence intervals for sweep aggregates. Experiment tables
// report mean deltas across traces; the CI helpers quantify how stable
// those deltas are without distributional assumptions, which matters when
// comparing schemes at reduced trace counts.

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	// Point is the statistic on the full sample.
	Point float64
	// Lo and Hi bound the interval.
	Lo, Hi float64
	// Level is the nominal coverage (e.g. 0.95).
	Level float64
}

// Contains reports whether x lies inside the interval.
func (c CI) Contains(x float64) bool { return x >= c.Lo && x <= c.Hi }

// BootstrapMeanCI estimates a percentile-bootstrap CI of the mean with the
// given number of resamples (1000 when non-positive) and coverage level
// (0.95 when out of range). The seed makes results reproducible.
func BootstrapMeanCI(xs []float64, resamples int, level float64, seed int64) CI {
	return bootstrapCI(xs, Mean, resamples, level, seed)
}

// BootstrapMedianCI is BootstrapMeanCI for the median.
func BootstrapMedianCI(xs []float64, resamples int, level float64, seed int64) CI {
	return bootstrapCI(xs, Median, resamples, level, seed)
}

func bootstrapCI(xs []float64, stat func([]float64) float64, resamples int, level float64, seed int64) CI {
	if resamples <= 0 {
		resamples = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	point := stat(xs)
	if len(xs) < 2 {
		return CI{Point: point, Lo: point, Hi: point, Level: level}
	}
	rng := rand.New(rand.NewSource(seed))
	stats := make([]float64, resamples)
	sample := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range sample {
			sample[i] = xs[rng.Intn(len(xs))]
		}
		stats[r] = stat(sample)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	lo := stats[int(alpha*float64(resamples))]
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return CI{Point: point, Lo: lo, Hi: stats[hiIdx], Level: level}
}

// BootstrapDeltaCI estimates a CI for the mean paired difference a−b
// (sessions paired by trace). It panics if the samples differ in length.
func BootstrapDeltaCI(a, b []float64, resamples int, level float64, seed int64) CI {
	if len(a) != len(b) {
		//lint:allow nopanic unpaired samples are a programmer error
		panic("metrics: BootstrapDeltaCI on unpaired samples")
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return BootstrapMeanCI(d, resamples, level, seed)
}

// SignificantlyDifferent reports whether the paired mean difference a−b
// excludes zero at the given level.
func SignificantlyDifferent(a, b []float64, level float64, seed int64) bool {
	return !BootstrapDeltaCI(a, b, 0, level, seed).Contains(0)
}
