package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/video"
)

func craftedSession() (*player.Result, *quality.Table, []scene.Category) {
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	qt := quality.NewTable(v, quality.VMAFPhone)
	cats := scene.ClassifyDefault(v)
	res := &player.Result{VideoID: v.ID(), TraceID: "t", Scheme: "s"}
	for i := 0; i < v.NumChunks(); i++ {
		res.Chunks = append(res.Chunks, player.ChunkRecord{
			Index: i, Level: i % v.NumTracks(), SizeBits: v.ChunkSize(i%v.NumTracks(), i),
		})
		res.TotalBits += v.ChunkSize(i%v.NumTracks(), i)
	}
	res.TotalRebufferSec = 3.5
	res.StartupDelaySec = 2.25
	return res, qt, cats
}

func TestSummarizeBasics(t *testing.T) {
	res, qt, cats := craftedSession()
	s := Summarize(res, qt, cats)
	if s.Scheme != "s" || s.TraceID != "t" {
		t.Error("identity fields not propagated")
	}
	if s.RebufferSec != 3.5 {
		t.Errorf("RebufferSec = %v", s.RebufferSec)
	}
	if s.StartupDelaySec != 2.25 {
		t.Errorf("StartupDelaySec = %v", s.StartupDelaySec)
	}
	if want := res.TotalBits / 8 / 1e6; math.Abs(s.DataMB-want) > 1e-9 {
		t.Errorf("DataMB = %v, want %v", s.DataMB, want)
	}
	if len(s.ChunkQualities) != len(res.Chunks) {
		t.Error("per-chunk qualities missing")
	}
	if s.Q4Quality <= 0 || s.Q13Quality <= 0 || s.AvgQuality <= 0 {
		t.Error("category means not computed")
	}
	if s.LowQualityPct < 0 || s.LowQualityPct > 100 {
		t.Errorf("LowQualityPct = %v", s.LowQualityPct)
	}
}

func TestSummarizeQualityChange(t *testing.T) {
	res, qt, cats := craftedSession()
	s := Summarize(res, qt, cats)
	want := 0.0
	for i := 1; i < len(s.ChunkQualities); i++ {
		want += math.Abs(s.ChunkQualities[i] - s.ChunkQualities[i-1])
	}
	want /= float64(len(s.ChunkQualities))
	if math.Abs(s.QualityChange-want) > 1e-9 {
		t.Errorf("QualityChange = %v, want %v", s.QualityChange, want)
	}
}

func TestSummarizeAggregatesConsistent(t *testing.T) {
	res, qt, cats := craftedSession()
	s := Summarize(res, qt, cats)
	// AvgQuality must be the weighted mean of the category means.
	var nQ4, nQ13 int
	for _, c := range cats {
		if scene.IsComplex(c) {
			nQ4++
		} else {
			nQ13++
		}
	}
	want := (s.Q4Quality*float64(nQ4) + s.Q13Quality*float64(nQ13)) / float64(nQ4+nQ13)
	if math.Abs(s.AvgQuality-want) > 1e-9 {
		t.Errorf("AvgQuality = %v, want %v", s.AvgQuality, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	res := &player.Result{Scheme: "x"}
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	qt := quality.NewTable(v, quality.VMAFPhone)
	s := Summarize(res, qt, scene.ClassifyDefault(v))
	if s.Q4Quality != 0 || s.AvgQuality != 0 {
		t.Error("empty session should produce zero metrics")
	}
}

func TestMedianAndMean(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median wrong")
	}
	if Median(nil) != 0 {
		t.Error("empty median wrong")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if Percentile(xs, 10) != 10 {
		t.Errorf("p10 = %v", Percentile(xs, 10))
	}
	if Percentile(xs, 90) != 90 {
		t.Errorf("p90 = %v", Percentile(xs, 90))
	}
	if Percentile(xs, 0) != 10 || Percentile(xs, 100) != 100 {
		t.Error("extremes wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile wrong")
	}
}

func TestSortedMatchesPackageFunctions(t *testing.T) {
	xs := []float64{9, 3, 7, 1, 5, 8, 2, 6, 4, 10}
	s := NewSorted(xs)
	if s.Len() != len(xs) {
		t.Fatalf("Len = %d", s.Len())
	}
	for p := 0.0; p <= 100; p += 5 {
		if got, want := s.Percentile(p), Percentile(xs, p); got != want {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if s.Median() != Median(xs) {
		t.Errorf("Median = %v, want %v", s.Median(), Median(xs))
	}
	if s.Mean() != Mean(xs) {
		t.Errorf("Mean = %v, want %v", s.Mean(), Mean(xs))
	}
	c, c2 := s.CDF(), NewCDF(xs)
	for i := range c.X {
		if c.X[i] != c2.X[i] || c.P[i] != c2.P[i] {
			t.Fatalf("CDF differs at %d", i)
		}
	}
}

func TestSortedDoesNotAliasInput(t *testing.T) {
	xs := []float64{2, 1, 3}
	s := NewSorted(xs)
	xs[0] = 99
	if s.Percentile(0) != 1 || s.Percentile(100) != 3 {
		t.Error("Sorted retained the caller's slice")
	}
	var empty Sorted
	if empty.Percentile(50) != 0 || empty.Median() != 0 || empty.Mean() != 0 {
		t.Error("zero-value Sorted not safe")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 2})
	if !sort.Float64sAreSorted(c.X) {
		t.Error("CDF values not sorted")
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.75 {
		t.Errorf("At(2) = %v, want 0.75", got)
	}
	if got := c.At(3); got != 1 {
		t.Errorf("At(3) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 3 {
		t.Errorf("Quantile(1) = %v, want 3", got)
	}
}

// TestQuantileMatchesPercentile is the regression test for the floor-rank
// Quantile: it used to return index int(p*n) while Percentile used
// nearest-rank ceil(p*n)-1, so the two disagreed on the same sample — e.g.
// the median of [1,2,3,4] was 3 by Quantile but 2 by Percentile. The two
// rules must agree everywhere.
func TestQuantileMatchesPercentile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) of [1,2,3,4] = %v, want 2 (nearest-rank)", got)
	}
	samples := [][]float64{
		{1, 2, 3, 4},
		{5},
		{2, 2, 2, 7},
		{-3, 0, 0.5, 9, 9, 12, 40, 41},
		{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
	}
	for _, xs := range samples {
		c := NewCDF(xs)
		for p := 0.0; p <= 1.0; p += 0.05 {
			if got, want := c.Quantile(p), Percentile(xs, p*100); got != want {
				t.Fatalf("sample %v: Quantile(%v) = %v, Percentile(%v) = %v — rules diverge",
					xs, p, got, p*100, want)
			}
		}
	}
	var empty CDF
	if empty.Quantile(0.5) != 0 {
		t.Error("empty Quantile should be 0")
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		// P is non-decreasing and ends at 1.
		for i := 1; i < len(c.P); i++ {
			if c.P[i] < c.P[i-1] {
				return false
			}
		}
		if c.P[len(c.P)-1] != 1 {
			return false
		}
		// At(max) == 1, At(just below min) == 0.
		below := math.Nextafter(c.X[0], math.Inf(-1))
		return c.At(c.X[len(c.X)-1]) == 1 && c.At(below) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeltaPct(t *testing.T) {
	if DeltaPct(110, 100) != 10 {
		t.Error("positive delta wrong")
	}
	if DeltaPct(90, 100) != -10 {
		t.Error("negative delta wrong")
	}
	if DeltaPct(5, 0) != 0 {
		t.Error("zero-base delta should be 0")
	}
}

func TestCollectAndFields(t *testing.T) {
	ss := []Summary{
		{Q4Quality: 70, LowQualityPct: 5, RebufferSec: 1, QualityChange: 2, DataMB: 100},
		{Q4Quality: 80, LowQualityPct: 15, RebufferSec: 3, QualityChange: 4, DataMB: 200},
	}
	if got := Collect(ss, FieldQ4Quality); got[0] != 70 || got[1] != 80 {
		t.Error("FieldQ4Quality wrong")
	}
	if got := Mean(Collect(ss, FieldDataMB)); got != 150 {
		t.Error("FieldDataMB aggregation wrong")
	}
	if Collect(ss, FieldLowQualityPct)[1] != 15 ||
		Collect(ss, FieldRebuffer)[1] != 3 ||
		Collect(ss, FieldQualityChange)[1] != 4 {
		t.Error("field selectors wrong")
	}
}
