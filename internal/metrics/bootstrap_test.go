package metrics

import (
	"math/rand"
	"testing"
)

func TestBootstrapMeanCIBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	ci := BootstrapMeanCI(xs, 500, 0.95, 7)
	if !ci.Contains(ci.Point) {
		t.Error("interval excludes its own point estimate")
	}
	if !ci.Contains(10) {
		t.Errorf("CI [%.2f, %.2f] excludes the true mean 10", ci.Lo, ci.Hi)
	}
	if ci.Hi-ci.Lo > 1 {
		t.Errorf("CI suspiciously wide for n=200: [%.2f, %.2f]", ci.Lo, ci.Hi)
	}
	if ci.Level != 0.95 {
		t.Errorf("level = %v", ci.Level)
	}
}

func TestBootstrapDefaultsAndDegenerate(t *testing.T) {
	ci := BootstrapMeanCI([]float64{5}, 0, 0, 1)
	if ci.Point != 5 || ci.Lo != 5 || ci.Hi != 5 {
		t.Errorf("single-sample CI = %+v", ci)
	}
	if ci.Level != 0.95 {
		t.Errorf("default level = %v", ci.Level)
	}
	ci = BootstrapMeanCI(nil, 10, 0.9, 1)
	if ci.Point != 0 {
		t.Errorf("empty-sample point = %v", ci.Point)
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	ci := BootstrapMedianCI(xs, 400, 0.95, 3)
	if ci.Point != Median(xs) {
		t.Error("median point estimate wrong")
	}
	// The outlier must not drag the median CI to 100.
	if ci.Hi > 50 {
		t.Errorf("median CI hi = %v", ci.Hi)
	}
}

func TestBootstrapDeterministicPerSeed(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a := BootstrapMeanCI(xs, 200, 0.95, 42)
	b := BootstrapMeanCI(xs, 200, 0.95, 42)
	if a != b {
		t.Error("same-seed bootstrap differs")
	}
}

func TestBootstrapDeltaCI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 150)
	b := make([]float64, 150)
	for i := range a {
		base := rng.NormFloat64() * 5
		a[i] = base + 2 + rng.NormFloat64()*0.5
		b[i] = base + rng.NormFloat64()*0.5
	}
	ci := BootstrapDeltaCI(a, b, 500, 0.95, 9)
	if !ci.Contains(2) {
		t.Errorf("delta CI [%.2f, %.2f] excludes the true shift 2", ci.Lo, ci.Hi)
	}
	if ci.Contains(0) {
		t.Error("clear 2-point shift not significant")
	}
	if !SignificantlyDifferent(a, b, 0.95, 9) {
		t.Error("SignificantlyDifferent disagrees with the CI")
	}

	defer func() {
		if recover() == nil {
			t.Error("unpaired samples did not panic")
		}
	}()
	BootstrapDeltaCI(a, b[:10], 10, 0.95, 1)
}

func TestBootstrapNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 120)
	b := make([]float64, 120)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if SignificantlyDifferent(a, b, 0.99, 5) {
		t.Error("two identical distributions flagged significant at 99%")
	}
}
