// Package metrics computes the paper's five performance metrics (§6.1) from
// simulated sessions, all with respect to the delivered video:
//
//  1. quality of Q4 chunks — perceptual quality of the most complex scenes
//     (higher is better);
//  2. low-quality chunk percentage — share of chunks below VMAF 40;
//  3. rebuffering duration — total mid-playback stall time;
//  4. average quality change per chunk — Σ|q_{i+1}−q_i|/n;
//  5. data usage — total bytes downloaded.
//
// It also provides CDFs and scheme-vs-scheme delta helpers used by the
// figure and table reproductions.
package metrics

import (
	"math"
	"sort"

	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
)

// Summary is the per-session metric set.
type Summary struct {
	// Scheme, VideoID and TraceID identify the session.
	Scheme, VideoID, TraceID string
	// Q4Quality is the mean quality of delivered Q4 (complex) chunks.
	Q4Quality float64
	// Q4MedianQuality is the median quality of Q4 chunks.
	Q4MedianQuality float64
	// Q13Quality is the mean quality of Q1–Q3 chunks.
	Q13Quality float64
	// AvgQuality is the mean quality over all chunks.
	AvgQuality float64
	// LowQualityPct is the percentage of chunks below LowQualityVMAF.
	LowQualityPct float64
	// GoodQ4Pct is the percentage of Q4 chunks above GoodQualityVMAF.
	GoodQ4Pct float64
	// RebufferSec is the total stall time in seconds.
	RebufferSec float64
	// QualityChange is the average absolute quality difference between
	// consecutive delivered chunks.
	QualityChange float64
	// DataMB is the total downloaded data in megabytes.
	DataMB float64
	// StartupDelaySec is the time to first frame in seconds.
	StartupDelaySec float64
	// ChunkQualities are the per-chunk delivered qualities, kept for CDF
	// plots (Fig. 8–9); indexed by playback order.
	ChunkQualities []float64
	// Categories are the per-chunk complexity classes.
	Categories []scene.Category
	// Retries, Truncations, Abandonments and SkippedChunks are the
	// session's resilience counters (live testbed client under faults;
	// all zero in pure simulation).
	Retries, Truncations, Abandonments, SkippedChunks int
	// WastedMB is abandoned partial-download volume in megabytes.
	WastedMB float64
}

// Summarize computes the metric set of one session given the video's
// quality table and chunk classification.
func Summarize(res *player.Result, qt *quality.Table, cats []scene.Category) Summary {
	s := Summary{Scheme: res.Scheme, VideoID: res.VideoID, TraceID: res.TraceID}
	n := len(res.Chunks)
	if n == 0 {
		return s
	}
	qs := make([]float64, 0, n)
	var q4 []float64
	var sumAll, sumQ4, sumQ13 float64
	var nQ4, nQ13, nLow, nGoodQ4, nDelivered int
	for _, c := range res.Chunks {
		if c.Skipped {
			// A skipped chunk delivered no video; it contributes stall
			// time (already in RebufferSec) and the SkippedChunks counter,
			// not quality statistics.
			continue
		}
		q := qt.At(c.Level, c.Index)
		qs = append(qs, q)
		nDelivered++
		sumAll += q
		if q < quality.LowQualityVMAF {
			nLow++
		}
		if scene.IsComplex(cats[c.Index]) {
			q4 = append(q4, q)
			sumQ4 += q
			nQ4++
			if q > quality.GoodQualityVMAF {
				nGoodQ4++
			}
		} else {
			sumQ13 += q
			nQ13++
		}
	}
	if nDelivered == 0 {
		s.SkippedChunks = res.SkippedChunks
		s.RebufferSec = res.TotalRebufferSec
		return s
	}
	s.AvgQuality = sumAll / float64(nDelivered)
	if nQ4 > 0 {
		s.Q4Quality = sumQ4 / float64(nQ4)
		s.Q4MedianQuality = Median(q4)
		s.GoodQ4Pct = 100 * float64(nGoodQ4) / float64(nQ4)
	}
	if nQ13 > 0 {
		s.Q13Quality = sumQ13 / float64(nQ13)
	}
	s.LowQualityPct = 100 * float64(nLow) / float64(nDelivered)

	change := 0.0
	for i := 1; i < len(qs); i++ {
		change += math.Abs(qs[i] - qs[i-1])
	}
	s.QualityChange = change / float64(nDelivered)
	s.RebufferSec = res.TotalRebufferSec
	s.DataMB = res.TotalBits / 8 / 1e6
	s.StartupDelaySec = res.StartupDelaySec
	s.ChunkQualities = qs
	s.Categories = cats
	s.Retries = res.TotalRetries
	s.Truncations = res.TotalTruncations
	s.Abandonments = res.TotalAbandonments
	s.SkippedChunks = res.SkippedChunks
	s.WastedMB = res.WastedBits / 8 / 1e6
	return s
}

// Sorted is a sample sorted once for repeated order-statistic queries. The
// package-level Percentile, Median and NewCDF each copy and sort their input
// on every call; when several statistics of the same sample are needed,
// build a Sorted once and query it.
type Sorted struct {
	xs []float64
}

// NewSorted copies and sorts the sample. The input slice is not retained.
func NewSorted(xs []float64) Sorted {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Sorted{xs: s}
}

// Len returns the sample size.
func (s Sorted) Len() int { return len(s.xs) }

// Percentile returns the p-th percentile (0–100) by nearest-rank.
func (s Sorted) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s.xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.xs[rank]
}

// Median returns the sample median (mean of the two central values for even
// sizes).
func (s Sorted) Median() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := len(s.xs) / 2
	if len(s.xs)%2 == 1 {
		return s.xs[m]
	}
	return (s.xs[m-1] + s.xs[m]) / 2
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s Sorted) Mean() float64 { return Mean(s.xs) }

// CDF returns the empirical CDF without re-sorting.
func (s Sorted) CDF() CDF {
	p := make([]float64, len(s.xs))
	for i := range s.xs {
		p[i] = float64(i+1) / float64(len(s.xs))
	}
	return CDF{X: s.xs, P: p}
}

// Median exposes the median of a sample (used by experiments).
func Median(xs []float64) float64 { return NewSorted(xs).Median() }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0–100) by nearest-rank on the
// sorted sample.
func Percentile(xs []float64, p float64) float64 {
	return NewSorted(xs).Percentile(p)
}

// CDF returns the empirical CDF of a sample as sorted values and their
// cumulative probabilities.
type CDF struct {
	X []float64
	P []float64
}

// NewCDF builds the empirical CDF of xs.
func NewCDF(xs []float64) CDF {
	return NewSorted(xs).CDF()
}

// At returns the CDF value at x: P(X ≤ x).
func (c CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.X, x)
	// i counts values < x; include equal values.
	for i < len(c.X) && c.X[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.X))
}

// Quantile returns the p-quantile (p in [0,1]) of the sample by the same
// nearest-rank rule as Sorted.Percentile — the smallest x with
// P(X ≤ x) ≥ p — so the two agree on any sample (a floor-rank
// implementation here used to disagree with Percentile, e.g. on the
// median of an even-sized sample).
func (c CDF) Quantile(p float64) float64 {
	return Sorted{xs: c.X}.Percentile(p * 100)
}

// DeltaPct returns (a−b)/b as a percentage, or 0 when b is 0. It is the
// table-1 convention: the change by CAVA relative to a baseline.
func DeltaPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}

// Field selects one scalar metric from a Summary, for generic aggregation.
type Field func(Summary) float64

// Convenience field selectors.
var (
	FieldQ4Quality     Field = func(s Summary) float64 { return s.Q4Quality }
	FieldLowQualityPct Field = func(s Summary) float64 { return s.LowQualityPct }
	FieldRebuffer      Field = func(s Summary) float64 { return s.RebufferSec }
	FieldQualityChange Field = func(s Summary) float64 { return s.QualityChange }
	FieldDataMB        Field = func(s Summary) float64 { return s.DataMB }
)

// Collect maps a field over summaries.
func Collect(ss []Summary, f Field) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = f(s)
	}
	return out
}
