package trace

import (
	"fmt"
	"math"
)

// Transformations for composing and reshaping traces: resampling to a
// different interval, slicing windows, concatenation, and simple additive
// shift — the toolbox for deriving controlled variants of real or
// generated traces in experiments and tests.

// Resample returns the trace re-sampled at a new interval, preserving the
// byte volume of every span (each output sample is the time-weighted mean
// of the inputs it covers).
func (t *Trace) Resample(newIntervalSec float64) (*Trace, error) {
	if newIntervalSec <= 0 {
		return nil, fmt.Errorf("trace %s: non-positive resample interval", t.ID)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	dur := t.Duration()
	n := int(math.Ceil(dur / newIntervalSec))
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		start := float64(i) * newIntervalSec
		end := start + newIntervalSec
		if end > dur {
			end = dur
		}
		// Integrate bits over [start, end).
		bits := 0.0
		pos := start
		for pos < end-1e-12 {
			idx := int(pos / t.IntervalSec)
			if idx >= len(t.Samples) {
				break
			}
			sliceEnd := math.Min(end, float64(idx+1)*t.IntervalSec)
			bits += t.Samples[idx] * (sliceEnd - pos)
			pos = sliceEnd
		}
		span := end - start
		if span > 0 {
			out[i] = bits / span
		}
	}
	return &Trace{ID: t.ID + "-rs", IntervalSec: newIntervalSec, Samples: out}, nil
}

// Slice returns the sub-trace covering [from, to) seconds, clamped to the
// trace bounds.
func (t *Trace) Slice(from, to float64) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if from < 0 {
		from = 0
	}
	if to > t.Duration() {
		to = t.Duration()
	}
	if to <= from {
		return nil, fmt.Errorf("trace %s: empty slice [%g, %g)", t.ID, from, to)
	}
	lo := int(from / t.IntervalSec)
	hi := int(math.Ceil(to / t.IntervalSec))
	if hi > len(t.Samples) {
		hi = len(t.Samples)
	}
	return &Trace{
		ID:          fmt.Sprintf("%s[%g:%g]", t.ID, from, to),
		IntervalSec: t.IntervalSec,
		Samples:     append([]float64(nil), t.Samples[lo:hi]...),
	}, nil
}

// Concat joins traces sampled at the same interval into one.
func Concat(id string, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: Concat of nothing")
	}
	interval := traces[0].IntervalSec
	var samples []float64
	for _, t := range traces {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		//lint:allow floateq intervals are copied verbatim, never computed
		if t.IntervalSec != interval {
			return nil, fmt.Errorf("trace: Concat interval mismatch (%g vs %g)", t.IntervalSec, interval)
		}
		samples = append(samples, t.Samples...)
	}
	return &Trace{ID: id, IntervalSec: interval, Samples: samples}, nil
}

// Shift returns a copy with every sample offset by delta bits/sec, floored
// at zero.
func (t *Trace) Shift(delta float64) *Trace {
	out := &Trace{ID: t.ID + "-sh", IntervalSec: t.IntervalSec, Samples: make([]float64, len(t.Samples))}
	for i, s := range t.Samples {
		v := s + delta
		if v < 0 {
			v = 0
		}
		out.Samples[i] = v
	}
	return out
}
