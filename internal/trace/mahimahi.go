package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Mahimahi trace support. Mahimahi's mm-link format — one integer
// millisecond timestamp per line, each representing the delivery
// opportunity of one MTU-sized (1500-byte) packet — is the lingua franca
// of ABR research datasets (the FCC and Norway/HSDPA sets ship in it, and
// Pensieve/Oboe/MPC artifacts consume it). ReadMahimahi converts such a
// log into this package's sampled bandwidth Trace, so published trace
// collections can drive every experiment in this repository.

// MahimahiMTUBytes is the payload each timestamp line represents.
const MahimahiMTUBytes = 1500

// maxMahimahiMs bounds accepted log duration (48 hours): longer inputs are
// almost certainly corrupt and would allocate absurd sample arrays.
const maxMahimahiMs = 48 * 3600 * 1000

// ReadMahimahi parses an mm-link packet-delivery log into a Trace sampled
// at the given sampling interval in seconds (1.0 when non-positive; NaN and
// ±Inf are rejected rather than coerced — they would bin packets into
// garbage indices). Short logs are looped by Trace replay semantics,
// matching mm-link's own behaviour.
func ReadMahimahi(r io.Reader, id string, intervalSec float64) (*Trace, error) {
	if math.IsNaN(intervalSec) || math.IsInf(intervalSec, 0) {
		return nil, fmt.Errorf("trace: mahimahi log %q: non-finite sampling interval %v", id, intervalSec)
	}
	if intervalSec <= 0 {
		intervalSec = 1.0
	}
	if intervalSec < 0.05 {
		intervalSec = 0.05 // finer bins than 50ms are measurement noise
	}
	sc := bufio.NewScanner(r)
	buf := make([]byte, 0, 1<<16)
	sc.Buffer(buf, 1<<22)

	var lastMs int64 = -1
	bytesPerBin := map[int64]float64{}
	var maxBin int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ms, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: mahimahi line %d: %q is not a millisecond timestamp", lineNo, line)
		}
		if ms < lastMs {
			return nil, fmt.Errorf("trace: mahimahi line %d: timestamps must be non-decreasing", lineNo)
		}
		if ms > maxMahimahiMs {
			return nil, fmt.Errorf("trace: mahimahi line %d: timestamp %dms exceeds the %dh bound", lineNo, ms, maxMahimahiMs/3600000)
		}
		lastMs = ms
		bin := int64(float64(ms) / 1000 / intervalSec)
		bytesPerBin[bin] += MahimahiMTUBytes
		if bin > maxBin {
			maxBin = bin
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lastMs < 0 {
		return nil, fmt.Errorf("trace: mahimahi log %q has no delivery opportunities", id)
	}
	samples := make([]float64, maxBin+1)
	for bin, b := range bytesPerBin {
		samples[bin] = b * 8 / intervalSec // bits per second
	}
	t := &Trace{ID: id, IntervalSec: intervalSec, Samples: samples}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteMahimahi renders a trace as an mm-link packet-delivery log: within
// each sample window, delivery opportunities are spaced evenly at the
// window's rate. Bandwidth below one MTU per window floors to zero
// opportunities, matching mm-link's packetized granularity.
func WriteMahimahi(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for i, bps := range t.Samples {
		windowStartMs := float64(i) * t.IntervalSec * 1000
		bytes := bps * t.IntervalSec / 8
		packets := int(bytes / MahimahiMTUBytes)
		for p := 0; p < packets; p++ {
			ms := windowStartMs + float64(p)*t.IntervalSec*1000/float64(packets)
			if _, err := fmt.Fprintf(bw, "%d\n", int64(ms)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
