package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResamplePreservesVolume(t *testing.T) {
	orig := GenLTE(2)
	for _, newIv := range []float64{0.5, 2, 5} {
		rs, err := orig.Resample(newIv)
		if err != nil {
			t.Fatal(err)
		}
		if rs.IntervalSec != newIv {
			t.Errorf("interval = %v", rs.IntervalSec)
		}
		// Total bits must be preserved (last partial window included).
		origBits := orig.Mean() * orig.Duration()
		var rsBits float64
		for i, s := range rs.Samples {
			span := newIv
			if end := float64(i+1) * newIv; end > orig.Duration() {
				span = orig.Duration() - float64(i)*newIv
			}
			rsBits += s * span
		}
		if rel := math.Abs(rsBits-origBits) / origBits; rel > 1e-9 {
			t.Errorf("resample to %gs lost %.6f%% of volume", newIv, rel*100)
		}
	}
}

func TestResampleIdentity(t *testing.T) {
	orig := Constant("c", 3e6, 10, 1)
	rs, err := orig.Resample(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs.Samples {
		if math.Abs(rs.Samples[i]-3e6) > 1e-6 {
			t.Fatalf("identity resample changed sample %d", i)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	tr := Constant("c", 1e6, 10, 1)
	if _, err := tr.Resample(0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := (&Trace{IntervalSec: 1}).Resample(2); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{ID: "t", IntervalSec: 1, Samples: []float64{1, 2, 3, 4, 5}}
	s, err := tr.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) != 3 || s.Samples[0] != 2 || s.Samples[2] != 4 {
		t.Errorf("slice = %v", s.Samples)
	}
	// Clamping.
	s, err = tr.Slice(-5, 100)
	if err != nil || len(s.Samples) != 5 {
		t.Errorf("clamped slice = %v, %v", s, err)
	}
	if _, err := tr.Slice(4, 4); err == nil {
		t.Error("empty slice accepted")
	}
}

func TestConcat(t *testing.T) {
	a := Constant("a", 1e6, 5, 1)
	b := Constant("b", 2e6, 5, 1)
	c, err := Concat("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Duration() != 10 {
		t.Errorf("duration = %v", c.Duration())
	}
	if c.Samples[0] != 1e6 || c.Samples[9] != 2e6 {
		t.Error("ordering lost")
	}
	if _, err := Concat("x"); err == nil {
		t.Error("empty concat accepted")
	}
	d := Constant("d", 1e6, 5, 5)
	if _, err := Concat("ad", a, d); err == nil {
		t.Error("interval mismatch accepted")
	}
}

func TestShift(t *testing.T) {
	tr := &Trace{ID: "t", IntervalSec: 1, Samples: []float64{1e6, 2e6}}
	up := tr.Shift(5e5)
	if up.Samples[0] != 1.5e6 {
		t.Error("shift up wrong")
	}
	down := tr.Shift(-1.5e6)
	if down.Samples[0] != 0 {
		t.Error("shift floor broken")
	}
	if down.Samples[1] != 5e5 {
		t.Error("shift down wrong")
	}
}

func TestResampleDownloadEquivalence(t *testing.T) {
	// Downloading through a resampled trace should take approximately the
	// same time as the original for multi-window transfers.
	orig := GenFCC(1)
	rs, err := orig.Resample(1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(sizeU uint16) bool {
		bits := 1e6 + float64(sizeU)*1e4
		a := orig.DownloadTime(10, bits)
		b := rs.DownloadTime(10, bits)
		// Allow one original sampling interval of divergence.
		return math.Abs(a-b) <= orig.IntervalSec+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
