package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReadMahimahiBasic(t *testing.T) {
	// 8 packets in the first second, 4 in the second: 96 kbps then 48 kbps.
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		sb.WriteString(strings.TrimSpace(itoa(i*125)) + "\n")
	}
	for i := 0; i < 4; i++ {
		sb.WriteString(itoa(1000+i*250) + "\n")
	}
	tr, err := ReadMahimahi(strings.NewReader(sb.String()), "mm", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 2 {
		t.Fatalf("%d samples, want 2", len(tr.Samples))
	}
	if want := 8.0 * 1500 * 8; tr.Samples[0] != want {
		t.Errorf("first second %v bps, want %v", tr.Samples[0], want)
	}
	if want := 4.0 * 1500 * 8; tr.Samples[1] != want {
		t.Errorf("second second %v bps, want %v", tr.Samples[1], want)
	}
}

func itoa(v int) string {
	b := [12]byte{}
	i := len(b)
	if v == 0 {
		return "0"
	}
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestReadMahimahiErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "abc\n",
		"decreasing":    "100\n50\n",
		"empty":         "",
		"comments only": "# header\n\n",
	}
	for name, in := range cases {
		if _, err := ReadMahimahi(strings.NewReader(in), "x", 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadMahimahiSkipsCommentsAndGaps(t *testing.T) {
	in := "# mm-link log\n0\n500\n\n2500\n"
	tr, err := ReadMahimahi(strings.NewReader(in), "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 3 {
		t.Fatalf("%d samples, want 3 (gap second included)", len(tr.Samples))
	}
	if tr.Samples[1] != 0 {
		t.Errorf("gap second bandwidth %v, want 0", tr.Samples[1])
	}
}

func TestMahimahiRoundTrip(t *testing.T) {
	orig := GenLTE(3)
	var buf bytes.Buffer
	if err := WriteMahimahi(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMahimahi(&buf, orig.ID, orig.IntervalSec)
	if err != nil {
		t.Fatal(err)
	}
	// Packetization floors each window to whole MTUs: per-sample error is
	// bounded by one packet per window plus boundary effects.
	n := len(got.Samples)
	if n > len(orig.Samples) {
		n = len(orig.Samples)
	}
	okCount := 0
	for i := 0; i < n; i++ {
		if math.Abs(got.Samples[i]-orig.Samples[i]) <= 2*MahimahiMTUBytes*8+1 {
			okCount++
		}
	}
	if float64(okCount) < 0.95*float64(n) {
		t.Errorf("only %d/%d samples within packetization error", okCount, n)
	}
	// Mean bandwidth must survive the round trip closely.
	if rel := math.Abs(got.Mean()-orig.Mean()) / orig.Mean(); rel > 0.02 {
		t.Errorf("mean drifted %.2f%%", rel*100)
	}
}

func TestWriteMahimahiRejectsBadTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMahimahi(&buf, &Trace{IntervalSec: 0}); err == nil {
		t.Error("bad trace accepted")
	}
}

func TestMahimahiIntervalCoerced(t *testing.T) {
	tr, err := ReadMahimahi(strings.NewReader("0\n100\n"), "x", -5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.IntervalSec != 1 {
		t.Errorf("interval = %v, want coerced 1", tr.IntervalSec)
	}
}

func TestMahimahiRejectsNonFiniteInterval(t *testing.T) {
	// NaN slips past both the <= 0 coercion and the 0.05 floor, then turns
	// packet binning into garbage; it must be rejected, not coerced.
	for _, iv := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := ReadMahimahi(strings.NewReader("0\n100\n"), "x", iv); err == nil {
			t.Errorf("interval %v accepted", iv)
		}
	}
}
