package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two trace parsers: they must never panic and every
// successfully parsed trace must validate.

func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	WriteCSV(&seed, GenLTE(0))
	f.Add(seed.String())
	f.Add("time_s,bandwidth_bps\n0,100\n1,200\n")
	f.Add("# trace x interval 2\n0,1\n")
	f.Add("")
	f.Add("garbage,,,\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("parsed trace fails validation: %v", err)
		}
	})
}

func FuzzReadMahimahi(f *testing.F) {
	var seed bytes.Buffer
	WriteMahimahi(&seed, Constant("c", 3e6, 5, 1))
	f.Add(seed.String(), 1.0)
	f.Add("0\n100\n200\n", 0.5)
	f.Add("# c\n\n5\n", 1.0)
	f.Add("-5\n", 1.0)
	f.Add("9999999999999999999999\n", 1.0)
	f.Fuzz(func(t *testing.T, in string, interval float64) {
		tr, err := ReadMahimahi(strings.NewReader(in), "fuzz", interval)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("parsed trace fails validation: %v", err)
		}
	})
}
