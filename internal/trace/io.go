package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV writes the trace in the simple two-column format
// "time_s,bandwidth_bps" with one row per sample, preceded by a header row.
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s interval %g\n", t.ID, t.IntervalSec); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "time_s,bandwidth_bps"); err != nil {
		return err
	}
	for i, s := range t.Samples {
		if _, err := fmt.Fprintf(bw, "%.3f,%.0f\n", float64(i)*t.IntervalSec, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. The interval is inferred from
// the first two rows (or defaults to 1 second for a single-row trace); the
// ID is taken from the header comment when present.
//
// Rows are validated as they are read — non-finite or negative bandwidth,
// non-finite or decreasing timestamps, and a malformed header interval are
// rejected with the offending line number, so garbage never reaches the
// shaper with only a sample index to go on.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	t := &Trace{ID: "csv", IntervalSec: 1}
	var times []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			for i := 0; i+1 < len(fields); i++ {
				switch fields[i] {
				case "trace":
					t.ID = fields[i+1]
				case "interval":
					v, err := strconv.ParseFloat(fields[i+1], 64)
					if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
						return nil, fmt.Errorf("trace csv:%d: header interval %q is not a positive finite number",
							lineNo, fields[i+1])
					}
					t.IntervalSec = v
				}
			}
			continue
		}
		if strings.HasPrefix(line, "time_s") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace csv:%d: malformed row %q", lineNo, line)
		}
		tm, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace csv:%d: bad time %q: %v", lineNo, parts[0], err)
		}
		if math.IsNaN(tm) || math.IsInf(tm, 0) || tm < 0 {
			return nil, fmt.Errorf("trace csv:%d: time %q is not a non-negative finite number", lineNo, parts[0])
		}
		if n := len(times); n > 0 && tm <= times[n-1] {
			return nil, fmt.Errorf("trace csv:%d: time %g does not increase past %g", lineNo, tm, times[n-1])
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace csv:%d: bad bandwidth %q: %v", lineNo, parts[1], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("trace csv:%d: bandwidth %q is not a non-negative finite number", lineNo, parts[1])
		}
		times = append(times, tm)
		t.Samples = append(t.Samples, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(times) >= 2 {
		if dt := times[1] - times[0]; dt > 0 {
			t.IntervalSec = dt
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
