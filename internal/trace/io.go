package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the trace in the simple two-column format
// "time_s,bandwidth_bps" with one row per sample, preceded by a header row.
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s interval %g\n", t.ID, t.IntervalSec); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "time_s,bandwidth_bps"); err != nil {
		return err
	}
	for i, s := range t.Samples {
		if _, err := fmt.Fprintf(bw, "%.3f,%.0f\n", float64(i)*t.IntervalSec, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. The interval is inferred from
// the first two rows (or defaults to 1 second for a single-row trace); the
// ID is taken from the header comment when present.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	t := &Trace{ID: "csv", IntervalSec: 1}
	var times []float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			for i := 0; i+1 < len(fields); i++ {
				switch fields[i] {
				case "trace":
					t.ID = fields[i+1]
				case "interval":
					if v, err := strconv.ParseFloat(fields[i+1], 64); err == nil && v > 0 {
						t.IntervalSec = v
					}
				}
			}
			continue
		}
		if strings.HasPrefix(line, "time_s") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace csv: malformed row %q", line)
		}
		tm, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace csv: bad time %q: %v", parts[0], err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace csv: bad bandwidth %q: %v", parts[1], err)
		}
		times = append(times, tm)
		t.Samples = append(t.Samples, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(times) >= 2 {
		if dt := times[1] - times[0]; dt > 0 {
			t.IntervalSec = dt
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
