package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBandwidthAt(t *testing.T) {
	tr := &Trace{ID: "t", IntervalSec: 2, Samples: []float64{10, 20, 30}}
	cases := []struct {
		time float64
		want float64
	}{
		{0, 10}, {1.9, 10}, {2, 20}, {3.5, 20}, {4, 30}, {5.99, 30},
		{6, 10},  // wraps
		{-1, 10}, // negative clamps to 0
		{13, 10}, // 13 mod 6 = 1 -> first sample
	}
	for _, c := range cases {
		if got := tr.BandwidthAt(c.time); got != c.want {
			t.Errorf("BandwidthAt(%v) = %v, want %v", c.time, got, c.want)
		}
	}
}

func TestBandwidthAtEmpty(t *testing.T) {
	tr := &Trace{IntervalSec: 1}
	if got := tr.BandwidthAt(5); got != 0 {
		t.Errorf("empty trace bandwidth = %v, want 0", got)
	}
}

func TestDownloadTimeConstant(t *testing.T) {
	tr := Constant("c", 1e6, 100, 1)
	// 5e6 bits at 1e6 bps = 5 seconds, regardless of start offset.
	for _, start := range []float64{0, 0.5, 3, 97} {
		if got := tr.DownloadTime(start, 5e6); !almostEqual(got, 5, 1e-9) {
			t.Errorf("DownloadTime(start=%v) = %v, want 5", start, got)
		}
	}
}

func TestDownloadTimeStep(t *testing.T) {
	// 1 Mbps for 10s, then 2 Mbps for 10s, repeating.
	tr := Step("s", 1e6, 2e6, 10, 40, 1)
	// Step starts high: samples 0..9 = 2e6, 10..19 = 1e6.
	// Download 25e6 bits from t=0: 20e6 in first 10s, remaining 5e6 at
	// 1 Mbps takes 5s. Total 15s.
	if got := tr.DownloadTime(0, 25e6); !almostEqual(got, 15, 1e-9) {
		t.Errorf("DownloadTime = %v, want 15", got)
	}
}

func TestDownloadTimeMidSample(t *testing.T) {
	tr := &Trace{ID: "m", IntervalSec: 1, Samples: []float64{1e6, 3e6}}
	// Start at t=0.5: 0.5s left at 1 Mbps (0.5e6 bits), then 3 Mbps.
	// Download 2e6 bits: 0.5e6 in 0.5s, then 1.5e6 at 3e6 -> 0.5s. Total 1s.
	if got := tr.DownloadTime(0.5, 2e6); !almostEqual(got, 1.0, 1e-9) {
		t.Errorf("DownloadTime = %v, want 1.0", got)
	}
}

func TestDownloadTimeOutage(t *testing.T) {
	tr := &Trace{ID: "o", IntervalSec: 1, Samples: []float64{1e6, 0, 0, 1e6}}
	// 1.5e6 bits from t=0: 1e6 in 1s, two outage seconds, then 0.5e6 in
	// 0.5s. Total 3.5s.
	if got := tr.DownloadTime(0, 1.5e6); !almostEqual(got, 3.5, 1e-9) {
		t.Errorf("DownloadTime with outage = %v, want 3.5", got)
	}
}

func TestDownloadTimeWraps(t *testing.T) {
	tr := &Trace{ID: "w", IntervalSec: 1, Samples: []float64{1e6}}
	// One-second trace: 10e6 bits wraps around ten times.
	if got := tr.DownloadTime(0, 10e6); !almostEqual(got, 10, 1e-9) {
		t.Errorf("DownloadTime wrap = %v, want 10", got)
	}
}

func TestDownloadTimeEdgeCases(t *testing.T) {
	tr := Constant("e", 1e6, 10, 1)
	if got := tr.DownloadTime(0, 0); got != 0 {
		t.Errorf("zero-size download took %v", got)
	}
	if got := tr.DownloadTime(0, -5); got != 0 {
		t.Errorf("negative-size download took %v", got)
	}
	empty := &Trace{IntervalSec: 1}
	if got := empty.DownloadTime(0, 1); !math.IsInf(got, 1) {
		t.Errorf("empty trace download = %v, want +Inf", got)
	}
	allZero := &Trace{IntervalSec: 1, Samples: []float64{0, 0}}
	if got := allZero.DownloadTime(0, 1); !math.IsInf(got, 1) {
		t.Errorf("all-zero trace download = %v, want +Inf", got)
	}
}

func TestDownloadTimeMonotoneInBits(t *testing.T) {
	tr := GenLTE(7)
	f := func(a, b uint16) bool {
		x, y := float64(a)*1e4, float64(b)*1e4
		if x > y {
			x, y = y, x
		}
		return tr.DownloadTime(3, x) <= tr.DownloadTime(3, y)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownloadTimeAdditive(t *testing.T) {
	// Downloading a+b bits equals downloading a, then b from where a
	// finished (piecewise-constant process, no per-request overhead).
	tr := GenLTE(3)
	f := func(a, b uint16) bool {
		x, y := float64(a)*1e4+1, float64(b)*1e4+1
		whole := tr.DownloadTime(5, x+y)
		first := tr.DownloadTime(5, x)
		second := tr.DownloadTime(5+first, y)
		return almostEqual(whole, first+second, 1e-6*whole+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	tr := &Trace{ID: "s", IntervalSec: 1, Samples: []float64{2, 4, 6}}
	if got := tr.Mean(); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := tr.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := tr.Max(); got != 6 {
		t.Errorf("Max = %v, want 6", got)
	}
	wantCoV := math.Sqrt(8.0/3.0) / 4
	if got := tr.CoV(); !almostEqual(got, wantCoV, 1e-12) {
		t.Errorf("CoV = %v, want %v", got, wantCoV)
	}
	if got := tr.Duration(); got != 3 {
		t.Errorf("Duration = %v, want 3", got)
	}
}

func TestStatsEmpty(t *testing.T) {
	tr := &Trace{IntervalSec: 1}
	if tr.Mean() != 0 || tr.CoV() != 0 || tr.Min() != 0 || tr.Max() != 0 {
		t.Error("empty trace stats should all be 0")
	}
}

func TestScale(t *testing.T) {
	tr := &Trace{ID: "x", IntervalSec: 1, Samples: []float64{1, 2}}
	s := tr.Scale(2.5)
	if s.Samples[0] != 2.5 || s.Samples[1] != 5 {
		t.Errorf("Scale result = %v", s.Samples)
	}
	if tr.Samples[0] != 1 {
		t.Error("Scale mutated the original")
	}
}

func TestValidate(t *testing.T) {
	good := Constant("g", 1e6, 10, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	cases := []*Trace{
		{ID: "bad-interval", IntervalSec: 0, Samples: []float64{1}},
		{ID: "no-samples", IntervalSec: 1},
		{ID: "negative", IntervalSec: 1, Samples: []float64{1, -2}},
		{ID: "nan", IntervalSec: 1, Samples: []float64{math.NaN()}},
		{ID: "inf", IntervalSec: 1, Samples: []float64{math.Inf(1)}},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("trace %s should fail validation", c.ID)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := GenLTE(42), GenLTE(42)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("LTE generation not deterministic in length")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("LTE sample %d differs across generations", i)
		}
	}
	c, d := GenFCC(17), GenFCC(17)
	for i := range c.Samples {
		if c.Samples[i] != d.Samples[i] {
			t.Fatalf("FCC sample %d differs across generations", i)
		}
	}
	if GenLTE(1).ID == GenLTE(2).ID {
		t.Error("distinct indices share an ID")
	}
}

func TestGeneratedTraceProperties(t *testing.T) {
	for _, tr := range GenLTESet(50) {
		if err := tr.Validate(); err != nil {
			t.Fatalf("LTE trace invalid: %v", err)
		}
		if tr.IntervalSec != LTEIntervalSec {
			t.Errorf("%s interval = %v", tr.ID, tr.IntervalSec)
		}
		if tr.Duration() < MinTraceDurationSec {
			t.Errorf("%s duration %v < %v", tr.ID, tr.Duration(), MinTraceDurationSec)
		}
		if m := tr.Mean(); m < 0.2*Mbps || m > 15*Mbps {
			t.Errorf("%s mean %v outside plausible LTE band", tr.ID, m)
		}
	}
	for _, tr := range GenFCCSet(50) {
		if err := tr.Validate(); err != nil {
			t.Fatalf("FCC trace invalid: %v", err)
		}
		if tr.IntervalSec != FCCIntervalSec {
			t.Errorf("%s interval = %v", tr.ID, tr.IntervalSec)
		}
		if tr.Duration() < MinTraceDurationSec {
			t.Errorf("%s too short", tr.ID)
		}
		if m := tr.Mean(); m < 0.8*Mbps || m > 30*Mbps {
			t.Errorf("%s mean %v outside plausible broadband band", tr.ID, m)
		}
	}
}

func TestLTERoughlyBurstierThanFCC(t *testing.T) {
	// The LTE set should be substantially more variable than the FCC set,
	// mirroring the §6.3 observation that FCC's smoother profiles reduce
	// rebuffering for every scheme.
	lte, fcc := 0.0, 0.0
	n := 40
	for i := 0; i < n; i++ {
		lte += GenLTE(i).CoV()
		fcc += GenFCC(i).CoV()
	}
	if lte/float64(n) < 1.5*fcc/float64(n) {
		t.Errorf("LTE mean CoV %.3f not clearly above FCC %.3f", lte/float64(n), fcc/float64(n))
	}
}

func TestLTEHasOutages(t *testing.T) {
	found := false
	for i := 0; i < 30 && !found; i++ {
		for _, s := range GenLTE(i).Samples {
			if s == 0 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no outage samples in 30 LTE traces; generator lost its outage model")
	}
}

func TestConstantAndStepHelpers(t *testing.T) {
	c := Constant("c", 5, 10, 2)
	if len(c.Samples) != 5 {
		t.Errorf("Constant has %d samples, want 5", len(c.Samples))
	}
	s := Step("s", 1, 2, 3, 12, 1)
	if s.Samples[0] != 2 || s.Samples[3] != 1 || s.Samples[6] != 2 {
		t.Errorf("Step pattern wrong: %v", s.Samples)
	}
	tiny := Constant("t", 1, 0.1, 1)
	if len(tiny.Samples) != 1 {
		t.Errorf("Constant with sub-interval duration has %d samples, want 1", len(tiny.Samples))
	}
}
