package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := GenLTE(5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.ID != orig.ID {
		t.Errorf("ID = %q, want %q", got.ID, orig.ID)
	}
	if got.IntervalSec != orig.IntervalSec {
		t.Errorf("IntervalSec = %v, want %v", got.IntervalSec, orig.IntervalSec)
	}
	if len(got.Samples) != len(orig.Samples) {
		t.Fatalf("sample count = %d, want %d", len(got.Samples), len(orig.Samples))
	}
	for i := range got.Samples {
		// WriteCSV rounds to whole bits/sec.
		if math.Abs(got.Samples[i]-orig.Samples[i]) > 0.5 {
			t.Fatalf("sample %d = %v, want %v", i, got.Samples[i], orig.Samples[i])
		}
	}
}

func TestReadCSVInfersInterval(t *testing.T) {
	in := "time_s,bandwidth_bps\n0.000,100\n5.000,200\n10.000,300\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tr.IntervalSec != 5 {
		t.Errorf("inferred interval = %v, want 5", tr.IntervalSec)
	}
	if len(tr.Samples) != 3 || tr.Samples[2] != 300 {
		t.Errorf("samples = %v", tr.Samples)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"malformed row": "time_s,bandwidth_bps\n1,2,3\n",
		"bad time":      "time_s,bandwidth_bps\nx,2\n",
		"bad bandwidth": "time_s,bandwidth_bps\n1,y\n",
		"negative":      "time_s,bandwidth_bps\n0,-5\n",
		"empty":         "",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestReadCSVRejectsGarbageRows(t *testing.T) {
	// Each malformed input must be rejected at read time with the offending
	// line number, not propagated into the shaper.
	cases := map[string]struct{ in, wantSub string }{
		"nan bandwidth":        {"time_s,bandwidth_bps\n0,NaN\n", "csv:2"},
		"inf bandwidth":        {"time_s,bandwidth_bps\n0,+Inf\n", "csv:2"},
		"negative bandwidth":   {"time_s,bandwidth_bps\n0,10\n1,-3\n", "csv:3"},
		"nan time":             {"time_s,bandwidth_bps\nNaN,10\n", "csv:2"},
		"inf time":             {"time_s,bandwidth_bps\nInf,10\n", "csv:2"},
		"negative time":        {"time_s,bandwidth_bps\n-1,10\n", "csv:2"},
		"non-increasing time":  {"time_s,bandwidth_bps\n0,10\n0,20\n", "csv:3"},
		"decreasing time":      {"time_s,bandwidth_bps\n0,10\n2,20\n1,30\n", "csv:4"},
		"bad header interval":  {"# trace x interval bogus\n0,10\n", "csv:1"},
		"zero header interval": {"# trace x interval 0\n0,10\n", "csv:1"},
		"nan header interval":  {"# trace x interval NaN\n0,10\n", "csv:1"},
	}
	for name, tc := range cases {
		_, err := ReadCSV(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: expected an error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q missing line reference %q", name, err, tc.wantSub)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	in := "# trace abc interval 2\ntime_s,bandwidth_bps\n\n0,10\n\n2,20\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tr.ID != "abc" || tr.IntervalSec != 2 || len(tr.Samples) != 2 {
		t.Errorf("parsed trace = %+v", tr)
	}
}
