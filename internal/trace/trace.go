// Package trace models time-varying network bandwidth as a sampled series
// and provides seeded generators for the two trace families the CAVA paper
// evaluates on: drive-test LTE traces (per-second samples, bursty, with
// outages) and FCC fixed-broadband traces (per-5-second samples, smooth).
//
// All bandwidth values are in bits per second; all times are in seconds.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// Trace is a bandwidth time series sampled at a fixed interval. Sample i
// covers the half-open time window [i*IntervalSec, (i+1)*IntervalSec). When the
// simulation runs past the end of the series the trace wraps around, so a
// Trace behaves as an infinite bandwidth process; the generated traces are
// at least 18 minutes long (longer than any 10-minute video session), so
// wrap-around only matters for pathological sessions.
type Trace struct {
	// ID identifies the trace within its set (e.g. "lte-017").
	ID string
	// IntervalSec is the sampling interval in seconds (1 for LTE, 5 for FCC).
	IntervalSec float64
	// Samples holds the per-interval average bandwidth in bits/second.
	Samples []float64
}

// Duration returns the total covered time in seconds.
func (t *Trace) Duration() float64 {
	return float64(len(t.Samples)) * t.IntervalSec
}

// BandwidthAt returns the bandwidth in effect at absolute time tm (seconds).
// Negative times are treated as 0; times past the end wrap around.
func (t *Trace) BandwidthAt(tm float64) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	if tm < 0 {
		tm = 0
	}
	i := int(tm/t.IntervalSec) % len(t.Samples)
	return t.Samples[i]
}

// DownloadTime returns the time needed to transfer the given number of bits
// starting at absolute time `start`, integrating the piecewise-constant
// bandwidth process (wrapping past the end). Outage samples (zero bandwidth)
// simply contribute elapsed time with no progress.
//
// A zero- or negative-size transfer completes instantly.
func (t *Trace) DownloadTime(start, bits float64) float64 {
	if bits <= 0 {
		return 0
	}
	if len(t.Samples) == 0 {
		return math.Inf(1)
	}
	// Guard against an all-zero trace, which would never complete.
	total := 0.0
	for _, s := range t.Samples {
		total += s
	}
	if total <= 0 {
		return math.Inf(1)
	}

	elapsed := 0.0
	remaining := bits
	now := start
	for remaining > 0 {
		idx := int(now/t.IntervalSec) % len(t.Samples)
		if idx < 0 {
			idx += len(t.Samples)
		}
		bw := t.Samples[idx]
		// Time left inside the current sample window.
		windowEnd := (math.Floor(now/t.IntervalSec) + 1) * t.IntervalSec
		slot := windowEnd - now
		if slot <= 0 {
			slot = t.IntervalSec
		}
		if bw > 0 {
			need := remaining / bw
			if need <= slot {
				return elapsed + need
			}
			remaining -= bw * slot
		}
		elapsed += slot
		now = windowEnd
	}
	return elapsed
}

// Mean returns the average bandwidth over the whole trace.
func (t *Trace) Mean() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range t.Samples {
		sum += s
	}
	return sum / float64(len(t.Samples))
}

// CoV returns the coefficient of variation (stddev/mean) of the samples.
// It returns 0 for an empty or zero-mean trace.
func (t *Trace) CoV() float64 {
	m := t.Mean()
	if m == 0 {
		return 0
	}
	ss := 0.0
	for _, s := range t.Samples {
		d := s - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(t.Samples))) / m
}

// Min returns the smallest sample, or 0 for an empty trace.
func (t *Trace) Min() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	m := t.Samples[0]
	for _, s := range t.Samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// Max returns the largest sample, or 0 for an empty trace.
func (t *Trace) Max() float64 {
	m := 0.0
	for _, s := range t.Samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Scale returns a copy of the trace with every sample multiplied by f.
// It is used to derive easier/harder variants of a trace set.
func (t *Trace) Scale(f float64) *Trace {
	out := &Trace{ID: t.ID, IntervalSec: t.IntervalSec, Samples: make([]float64, len(t.Samples))}
	for i, s := range t.Samples {
		out.Samples[i] = s * f
	}
	return out
}

// Validate reports whether the trace is usable for replay: a positive
// interval, at least one sample, and no negative samples.
func (t *Trace) Validate() error {
	if t.IntervalSec <= 0 {
		return fmt.Errorf("trace %s: non-positive interval %v", t.ID, t.IntervalSec)
	}
	if len(t.Samples) == 0 {
		return errors.New("trace " + t.ID + ": no samples")
	}
	for i, s := range t.Samples {
		if s < 0 {
			return fmt.Errorf("trace %s: negative sample %v at index %d", t.ID, s, i)
		}
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("trace %s: non-finite sample at index %d", t.ID, i)
		}
	}
	return nil
}
