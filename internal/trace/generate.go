package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator parameters mirror the two trace families used in the paper's
// evaluation (§6.1): 200 commercial-LTE drive-test traces recorded as
// per-second throughput, and 200 FCC fixed-broadband traces recorded as
// per-5-second throughput, each at least 18 minutes long.
const (
	// LTEIntervalSec is the sampling interval of LTE traces in seconds.
	LTEIntervalSec = 1.0
	// FCCIntervalSec is the sampling interval of FCC traces in seconds.
	FCCIntervalSec = 5.0
	// MinTraceDurationSec is the minimum trace length in seconds (18 minutes).
	MinTraceDurationSec = 18 * 60
	// DefaultSetSize is the number of traces in each generated set.
	//lint:allow units DefaultSetSize counts traces, not a data size
	DefaultSetSize = 200
)

// Mbps converts megabits/second to bits/second.
const Mbps = 1e6

// lteState is one regime of the Markov-modulated LTE bandwidth process.
type lteState struct {
	mean  float64 // bits/sec
	sigma float64 // lognormal shape of within-state jitter
}

// The regimes span deep fades through excellent coverage; a drive test moves
// through them with sticky transitions, producing the multi-timescale
// burstiness characteristic of cellular traces.
var lteStates = []lteState{
	{0.25 * Mbps, 0.45}, // deep fade / handover
	{0.8 * Mbps, 0.40},  // poor
	{1.8 * Mbps, 0.35},  // fair
	{3.2 * Mbps, 0.30},  // good
	{5.5 * Mbps, 0.28},  // very good
	{9.0 * Mbps, 0.25},  // excellent
}

// GenLTE deterministically generates an LTE drive-test-like trace for the
// given index. The same index always yields the same trace.
func GenLTE(index int) *Trace {
	rng := rand.New(rand.NewSource(int64(0x17e0000) + int64(index)))
	n := int(MinTraceDurationSec/LTEIntervalSec) + rng.Intn(240)
	samples := make([]float64, n)

	// Each trace has its own coverage bias so the set spans poorly- and
	// well-covered drives, like a coast-to-coast capture.
	// Coverage bias per trace: the set spans poorly- and well-covered
	// drives, with a median per-trace mean around 2 Mbps — constrained
	// relative to the 4.8 Mbps top track, as in the paper's drive tests.
	bias := 0.36 + 0.55*rng.Float64()

	state := rng.Intn(len(lteStates))
	outage := 0 // remaining outage seconds
	for i := range samples {
		// Sticky state transitions: mostly stay, sometimes drift one step,
		// rarely jump.
		switch p := rng.Float64(); {
		case p < 0.025 && state > 0:
			state--
		case p < 0.05 && state < len(lteStates)-1:
			state++
		case p < 0.056:
			state = rng.Intn(len(lteStates))
		}
		// Occasional total outages (tunnels, handover gaps).
		if outage == 0 && rng.Float64() < 0.0025 {
			outage = 1 + rng.Intn(5)
		}
		if outage > 0 {
			outage--
			samples[i] = 0
			continue
		}
		st := lteStates[state]
		jitter := math.Exp(st.sigma * rng.NormFloat64())
		bw := st.mean * bias * jitter
		if bw > 25*Mbps {
			bw = 25 * Mbps
		}
		samples[i] = bw
	}
	return &Trace{ID: fmt.Sprintf("lte-%03d", index), IntervalSec: LTEIntervalSec, Samples: samples}
}

// GenFCC deterministically generates an FCC fixed-broadband-like trace for
// the given index: per-5-second samples around a stable per-line rate with
// mild AR(1) variation and rare congestion dips.
func GenFCC(index int) *Trace {
	rng := rand.New(rand.NewSource(int64(0xfcc0000) + int64(index)))
	n := int(MinTraceDurationSec/FCCIntervalSec) + rng.Intn(48)
	samples := make([]float64, n)

	// Provisioned line rate: lognormal between roughly 1.5 and 20 Mbps.
	base := math.Exp(rng.NormFloat64()*0.55+1.6) * Mbps // median ~5 Mbps
	if base < 1.2*Mbps {
		base = 1.2 * Mbps
	}
	if base > 22*Mbps {
		base = 22 * Mbps
	}

	x := 0.0 // AR(1) deviation in log space
	dip := 0
	for i := range samples {
		x = 0.85*x + 0.10*rng.NormFloat64()
		bw := base * math.Exp(x)
		if dip == 0 && rng.Float64() < 0.01 {
			dip = 1 + rng.Intn(4)
		}
		if dip > 0 {
			dip--
			bw *= 0.25 + 0.35*rng.Float64()
		}
		samples[i] = bw
	}
	return &Trace{ID: fmt.Sprintf("fcc-%03d", index), IntervalSec: FCCIntervalSec, Samples: samples}
}

// GenLTESet generates n LTE traces (indices 0..n-1).
func GenLTESet(n int) []*Trace {
	out := make([]*Trace, n)
	for i := range out {
		out[i] = GenLTE(i)
	}
	return out
}

// GenFCCSet generates n FCC traces (indices 0..n-1).
func GenFCCSet(n int) []*Trace {
	out := make([]*Trace, n)
	for i := range out {
		out[i] = GenFCC(i)
	}
	return out
}

// Constant returns a trace with a single constant bandwidth, useful in tests
// and examples.
func Constant(id string, bps, durationSec, intervalSec float64) *Trace {
	n := int(math.Ceil(durationSec / intervalSec))
	if n < 1 {
		n = 1
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = bps
	}
	return &Trace{ID: id, IntervalSec: intervalSec, Samples: s}
}

// Step returns a trace that switches between two bandwidths every `period`
// seconds, useful for exercising adaptation transients in tests.
func Step(id string, low, high, period, durationSec, intervalSec float64) *Trace {
	n := int(math.Ceil(durationSec / intervalSec))
	s := make([]float64, n)
	for i := range s {
		t := float64(i) * intervalSec
		if int(t/period)%2 == 0 {
			s[i] = high
		} else {
			s[i] = low
		}
	}
	return &Trace{ID: id, IntervalSec: intervalSec, Samples: s}
}
