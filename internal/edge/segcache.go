package edge

import (
	"container/list"
	"sync"
)

// SegCache is the edge's bounded segment cache: an LRU over response
// payloads with singleflight request coalescing, the get-or-compute
// pattern of internal/cache specialized for byte-bounded HTTP bodies.
// Concurrent requests for one cold key share a single origin fetch —
// exactly one caller runs the fetch, the rest block and receive the same
// result (error included) — so a thundering herd of players asking for the
// same newly-published segment costs one origin round trip, not N.
//
// Only complete 200 responses are stored; everything else (origin errors,
// 404s) is delivered to the waiters of that flight and forgotten, so a
// transient failure never poisons the cache. Entries larger than the byte
// budget are served but not stored.
type SegCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	flights  map[string]*flight
	stats    SegCacheStats
}

// SegCacheStats counts cache outcomes.
type SegCacheStats struct {
	// Hits are requests served from the stored set.
	Hits uint64
	// Misses are requests that ran an origin fetch.
	Misses uint64
	// Coalesced are requests that piggybacked on another caller's
	// in-flight fetch instead of issuing their own.
	Coalesced uint64
	// Evictions are entries removed to respect the byte budget.
	Evictions uint64
	// StoredBytes is the current resident payload size.
	StoredBytes int64
}

// Entry is one cached (or fetched) response payload.
type Entry struct {
	// Body is the payload. Treat it as immutable: hits share the slice.
	Body []byte
	// ContentType is the origin's Content-Type.
	ContentType string
	// Status is the origin's HTTP status; only 200 entries are cached.
	Status int
}

// cacheItem is one stored LRU entry.
type cacheItem struct {
	key string
	ent Entry
}

// flight is one in-progress fetch that waiters coalesce onto.
type flight struct {
	done chan struct{}
	ent  Entry
	err  error
}

// Disposition classifies how one request was satisfied.
type Disposition int

const (
	// DispHit means the entry was already resident.
	DispHit Disposition = iota
	// DispMiss means this caller ran the origin fetch.
	DispMiss
	// DispCoalesced means the caller waited on another caller's fetch.
	DispCoalesced
)

// NewSegCache returns a cache bounded to maxBytes of payload.
func NewSegCache(maxBytes int64) *SegCache {
	return &SegCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *SegCache) Stats() SegCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.StoredBytes = c.curBytes
	return s
}

// Len returns the number of resident entries.
func (c *SegCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// GetOrFetch returns the entry for key, running fetch on a cold key.
// Concurrent callers for one key share a single fetch. The fetch result is
// stored only when it is a complete 200 within the byte budget.
func (c *SegCache) GetOrFetch(key string, fetch func() (Entry, error)) (Entry, Disposition, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		ent := el.Value.(*cacheItem).ent
		c.mu.Unlock()
		return ent, DispHit, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-fl.done
		return fl.ent, DispCoalesced, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	fl.ent, fl.err = fetch()

	c.mu.Lock()
	delete(c.flights, key)
	if fl.err == nil && fl.ent.Status == 200 {
		c.storeLocked(key, fl.ent)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.ent, DispMiss, fl.err
}

// Peek reports whether key is resident, without touching recency or stats.
func (c *SegCache) Peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// storeLocked inserts an entry and evicts from the cold end until the
// budget holds. Oversized entries are not stored at all.
func (c *SegCache) storeLocked(key string, ent Entry) {
	size := int64(len(ent.Body))
	if size > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		// A racing flight already stored it; refresh recency only.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, ent: ent})
	c.curBytes += size
	for c.curBytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		it := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.curBytes -= int64(len(it.ent.Body))
		c.stats.Evictions++
	}
}
