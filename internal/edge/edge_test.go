package edge

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cava/internal/dash"
	"cava/internal/telemetry"
)

// testOrigin is one controllable fake origin: it counts requests, records
// the session header of each, and fails on demand.
type testOrigin struct {
	srv      *httptest.Server
	requests atomic.Int64
	failing  atomic.Bool
	version  atomic.Int64

	mu       sync.Mutex
	sessions []string
}

// newTestOrigin starts a fake origin serving "o<idx>:v<version>" bodies for
// every path (with Content-Type text/test), 500s while failing is set.
func newTestOrigin(t *testing.T, idx int) *testOrigin {
	t.Helper()
	o := &testOrigin{}
	o.version.Store(1)
	o.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		o.requests.Add(1)
		o.mu.Lock()
		o.sessions = append(o.sessions, r.Header.Get(dash.SessionIDHeader))
		o.mu.Unlock()
		if o.failing.Load() {
			http.Error(w, "injected origin failure", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/test")
		fmt.Fprintf(w, "o%d:v%d", idx, o.version.Load())
	}))
	t.Cleanup(o.srv.Close)
	return o
}

// sessionsSeen returns a copy of the recorded session headers.
func (o *testOrigin) sessionsSeen() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.sessions...)
}

// newTestEdge builds an edge over the given origins with a FakeClock and
// registers its metrics.
func newTestEdge(t *testing.T, cfg Config, origins ...*testOrigin) (*Edge, *dash.FakeClock, *telemetry.Registry) {
	t.Helper()
	clock := dash.NewFakeClock(time.Unix(1000, 0))
	for _, o := range origins {
		cfg.Origins = append(cfg.Origins, o.srv.URL)
	}
	cfg.Clock = clock
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	reg := telemetry.NewRegistry()
	e.SetMetrics(reg)
	return e, clock, reg
}

// get performs one request against the edge handler and returns the
// recorded response.
func get(e *Edge, path, session string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if session != "" {
		req.Header.Set(dash.SessionIDHeader, session)
	}
	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, req)
	return rec
}

// waitFor polls cond (real time; the condition is completion of a
// background goroutine, not virtual-clock progress).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEdgeManifestSWR drives the stale-while-revalidate state machine
// through all four arms on a FakeClock: fresh hit, stale + background
// refresh, fresh-after-refresh, and hard-expired synchronous fetch.
func TestEdgeManifestSWR(t *testing.T) {
	origin := newTestOrigin(t, 0)
	e, clock, _ := newTestEdge(t, Config{
		VideoID:            "vid",
		ManifestSoftTTLSec: 1,
		ManifestHardTTLSec: 10,
	}, origin)

	// Cold: synchronous fetch.
	if rec := get(e, "/manifest.json", "s1"); rec.Code != 200 || rec.Body.String() != "o0:v1" {
		t.Fatalf("cold manifest = %d %q", rec.Code, rec.Body.String())
	}
	if n := origin.requests.Load(); n != 1 {
		t.Fatalf("origin requests after cold fetch = %d", n)
	}

	// Within the soft TTL: served from cache, origin untouched.
	if rec := get(e, "/manifest.json", "s1"); rec.Code != 200 || rec.Body.String() != "o0:v1" {
		t.Fatalf("fresh manifest = %d %q", rec.Code, rec.Body.String())
	}
	if n := origin.requests.Load(); n != 1 {
		t.Fatalf("fresh hit reached the origin (%d requests)", n)
	}

	// Past the soft TTL: the stale body is served NOW and a background
	// refresh picks up the origin's new version.
	origin.version.Store(2)
	clock.Advance(2 * time.Second)
	if rec := get(e, "/manifest.json", "s1"); rec.Code != 200 || rec.Body.String() != "o0:v1" {
		t.Fatalf("stale manifest = %d %q, want the old body immediately", rec.Code, rec.Body.String())
	}
	if got := e.Stats().StaleServed; got != 1 {
		t.Fatalf("StaleServed = %d, want 1", got)
	}
	waitFor(t, "background refresh", func() bool { return e.Stats().Refreshes == 1 })
	if rec := get(e, "/manifest.json", "s1"); rec.Body.String() != "o0:v2" {
		t.Fatalf("post-refresh manifest = %q, want the refreshed body", rec.Body.String())
	}

	// Past the hard TTL: stale is refused, the fetch is synchronous.
	origin.version.Store(3)
	clock.Advance(20 * time.Second)
	before := origin.requests.Load()
	if rec := get(e, "/manifest.json", "s1"); rec.Body.String() != "o0:v3" {
		t.Fatalf("hard-expired manifest = %q, want a synchronous refetch", rec.Body.String())
	}
	if n := origin.requests.Load(); n != before+1 {
		t.Fatalf("hard-expired fetch made %d origin requests, want 1", n-before)
	}

	s := e.Stats()
	if s.Hits < 2 || s.Misses < 2 || s.StaleServed != 1 || s.Refreshes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestEdgeManifestHardExpiredShed pins the honesty contract: when the
// cached manifest is past its hard TTL and every origin fails, the edge
// answers 503 + Retry-After instead of serving arbitrarily stale bytes.
func TestEdgeManifestHardExpiredShed(t *testing.T) {
	origin := newTestOrigin(t, 0)
	e, clock, _ := newTestEdge(t, Config{
		VideoID:            "vid",
		ManifestSoftTTLSec: 1,
		ManifestHardTTLSec: 10,
		RetryAfterSec:      3,
	}, origin)

	if rec := get(e, "/manifest.json", "s1"); rec.Code != 200 {
		t.Fatalf("cold manifest = %d", rec.Code)
	}
	origin.failing.Store(true)
	clock.Advance(time.Minute)
	rec := get(e, "/manifest.json", "s1")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("hard-expired manifest with dead origin = %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 3 {
		t.Errorf("Retry-After = %q, want an integer >= 3", rec.Header().Get("Retry-After"))
	}
	if s := e.Stats(); s.Shed != 1 {
		t.Errorf("Shed = %d, want 1", s.Shed)
	}
}

// TestEdgeFailoverForwardsSession pins two contracts at once: a 500 from
// the primary moves the request to the next replica in ring order, and the
// client's X-Session-Id header reaches the origin on EVERY attempt — the
// failed primary attempt included — so origin-side admission accounting
// stays per-session under failover.
func TestEdgeFailoverForwardsSession(t *testing.T) {
	o0, o1 := newTestOrigin(t, 0), newTestOrigin(t, 1)
	e, _, reg := newTestEdge(t, Config{VideoID: "vid"}, o0, o1)

	order := e.OriginOrder("")
	origins := []*testOrigin{o0, o1}
	primary, backup := origins[order[0]], origins[order[1]]
	primary.failing.Store(true)

	rec := get(e, "/seg/0/0", "session-42")
	if rec.Code != 200 {
		t.Fatalf("failover GET = %d, want 200 via the backup", rec.Code)
	}
	if n := primary.requests.Load(); n != 1 {
		t.Fatalf("primary saw %d requests, want 1", n)
	}
	if n := backup.requests.Load(); n != 1 {
		t.Fatalf("backup saw %d requests, want 1", n)
	}
	for i, o := range []*testOrigin{primary, backup} {
		for _, sess := range o.sessionsSeen() {
			if sess != "session-42" {
				t.Errorf("origin %d attempt carried session %q, want session-42", i, sess)
			}
		}
	}
	if s := e.Stats(); s.Failovers != 1 || s.Origins[order[0]].Failures != 1 {
		t.Errorf("stats = %+v, want 1 failover on the primary", s)
	}
	if got := reg.Counter("edge_origin_failovers_total", "").Value(); got != 1 {
		t.Errorf("edge_origin_failovers_total = %d, want 1", got)
	}
}

// TestEdgeShedWhenAllOriginsFail checks the every-replica-dead path for
// segments: honest 503 + Retry-After, nothing cached.
func TestEdgeShedWhenAllOriginsFail(t *testing.T) {
	o0, o1 := newTestOrigin(t, 0), newTestOrigin(t, 1)
	o0.failing.Store(true)
	o1.failing.Store(true)
	e, _, reg := newTestEdge(t, Config{VideoID: "vid"}, o0, o1)

	rec := get(e, "/seg/1/2", "s1")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-dead GET = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}
	// Recovery: the failure was not cached, so a healthy origin serves the
	// same path on the next request.
	o0.failing.Store(false)
	o1.failing.Store(false)
	if rec := get(e, "/seg/1/2", "s1"); rec.Code != 200 {
		t.Fatalf("post-recovery GET = %d, want 200", rec.Code)
	}
	if got := reg.Counter("edge_shed_total", "").Value(); got != 1 {
		t.Errorf("edge_shed_total = %d, want 1", got)
	}
}

// TestEdgeSegmentCachingAndCoalescing exercises the cache through the HTTP
// surface: concurrent requests for one cold segment cost one origin round
// trip, and later requests are hits.
func TestEdgeSegmentCachingAndCoalescing(t *testing.T) {
	gate := make(chan struct{})
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		<-gate
		fmt.Fprint(w, "segment-bytes")
	}))
	defer srv.Close()

	clock := dash.NewFakeClock(time.Unix(1000, 0))
	e, err := New(Config{Origins: []string{srv.URL}, VideoID: "vid", Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := telemetry.NewRegistry()
	e.SetMetrics(reg)

	const concurrent = 8
	var wg sync.WaitGroup
	codes := make([]int, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = get(e, "/seg/3/7", "s1").Code
		}(i)
	}
	waitFor(t, "coalesced waiters", func() bool {
		return e.Stats().Coalesced == concurrent-1
	})
	close(gate)
	wg.Wait()

	for i, code := range codes {
		if code != 200 {
			t.Errorf("request %d = %d, want 200", i, code)
		}
	}
	if n := requests.Load(); n != 1 {
		t.Errorf("origin saw %d requests for one segment, want 1", n)
	}
	if rec := get(e, "/seg/3/7", "s1"); rec.Code != 200 {
		t.Errorf("warm GET = %d", rec.Code)
	}
	s := e.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Coalesced != concurrent-1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / %d coalesced", s, concurrent-1)
	}
	if got := reg.Counter("edge_coalesced_requests_total", "").Value(); got != concurrent-1 {
		t.Errorf("edge_coalesced_requests_total = %d", got)
	}
}

// TestEdgeVideoPrefixSharding checks that /v/<id>/ paths shard by the id in
// the path: two different videos may land on different primaries, and the
// same id always lands on the same one.
func TestEdgeVideoPrefixSharding(t *testing.T) {
	o0, o1, o2 := newTestOrigin(t, 0), newTestOrigin(t, 1), newTestOrigin(t, 2)
	e, _, _ := newTestEdge(t, Config{VideoID: "default"}, o0, o1, o2)

	// Find two video ids with distinct primaries (must exist: the balance
	// test guarantees every origin owns a share of the keyspace).
	idByPrimary := map[int]string{}
	for k := 0; len(idByPrimary) < 2; k++ {
		id := fmt.Sprintf("vid-%d", k)
		idByPrimary[e.OriginOrder(id)[0]] = id
	}
	origins := []*testOrigin{o0, o1, o2}
	for primary, id := range idByPrimary {
		before := origins[primary].requests.Load()
		if rec := get(e, "/v/"+id+"/seg/0/0", "s1"); rec.Code != 200 {
			t.Fatalf("GET /v/%s/seg/0/0 = %d", id, rec.Code)
		}
		if got := origins[primary].requests.Load(); got != before+1 {
			t.Errorf("video %s did not fetch from its primary origin %d", id, primary)
		}
	}
}
