package edge

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// okEntry builds a 200 entry with an n-byte body.
func okEntry(n int) Entry {
	return Entry{Body: make([]byte, n), ContentType: "video/mp4", Status: http.StatusOK}
}

// TestSegCacheHitMissAndRecency covers the basic LRU contract: a stored key
// hits, a touch refreshes recency, and eviction removes the coldest entry.
func TestSegCacheHitMissAndRecency(t *testing.T) {
	c := NewSegCache(300)
	fetchFor := func(n int) func() (Entry, error) {
		return func() (Entry, error) { return okEntry(n), nil }
	}
	for _, key := range []string{"a", "b", "c"} {
		if _, disp, err := c.GetOrFetch(key, fetchFor(100)); err != nil || disp != DispMiss {
			t.Fatalf("cold GetOrFetch(%q) = %v, %v", key, disp, err)
		}
	}
	// Touch "a" so "b" is the coldest, then insert "d": "b" must go.
	if _, disp, _ := c.GetOrFetch("a", fetchFor(100)); disp != DispHit {
		t.Fatalf("warm GetOrFetch(a) disposition = %v, want hit", disp)
	}
	if _, disp, _ := c.GetOrFetch("d", fetchFor(100)); disp != DispMiss {
		t.Fatalf("GetOrFetch(d) disposition = %v, want miss", disp)
	}
	if c.Peek("b") {
		t.Error("coldest entry b survived eviction")
	}
	for _, key := range []string{"a", "c", "d"} {
		if !c.Peek(key) {
			t.Errorf("entry %q missing after eviction of b", key)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.StoredBytes != 300 {
		t.Errorf("stats = %+v, want 1 eviction and 300 stored bytes", s)
	}
}

// TestSegCacheByteBudget checks that the budget is enforced in bytes, not
// entries, and that an oversized body is served but never stored.
func TestSegCacheByteBudget(t *testing.T) {
	c := NewSegCache(250)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.GetOrFetch(key, func() (Entry, error) { return okEntry(100), nil }); err != nil {
			t.Fatal(err)
		}
		if got := c.Stats().StoredBytes; got > 250 {
			t.Fatalf("after %d inserts cache holds %d bytes > budget", i+1, got)
		}
	}
	if got := c.Len(); got != 2 {
		t.Errorf("cache holds %d entries, want 2 (2x100 <= 250 < 3x100)", got)
	}
	ent, disp, err := c.GetOrFetch("huge", func() (Entry, error) { return okEntry(1000), nil })
	if err != nil || disp != DispMiss || len(ent.Body) != 1000 {
		t.Fatalf("oversized fetch = %v, %v, body %d", disp, err, len(ent.Body))
	}
	if c.Peek("huge") {
		t.Error("oversized entry was stored")
	}
}

// TestSegCacheOnlyStoresOK checks the poisoning guard: non-200 responses and
// errors are delivered to the caller but never cached, so the next request
// retries the origin.
func TestSegCacheOnlyStoresOK(t *testing.T) {
	c := NewSegCache(1 << 20)
	ent, _, err := c.GetOrFetch("nf", func() (Entry, error) {
		return Entry{Body: []byte("gone"), Status: http.StatusNotFound}, nil
	})
	if err != nil || ent.Status != http.StatusNotFound {
		t.Fatalf("404 fetch = %+v, %v", ent, err)
	}
	if c.Peek("nf") {
		t.Error("404 response was cached")
	}
	wantErr := errors.New("origin down")
	if _, _, err := c.GetOrFetch("err", func() (Entry, error) { return Entry{}, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("error fetch returned %v, want %v", err, wantErr)
	}
	if c.Peek("err") {
		t.Error("failed fetch was cached")
	}
	// The retry after a failure runs a fresh fetch (a real miss, not a hit).
	if _, disp, err := c.GetOrFetch("err", func() (Entry, error) { return okEntry(8), nil }); err != nil || disp != DispMiss {
		t.Fatalf("retry after failure = %v, %v, want clean miss", disp, err)
	}
}

// TestSegCacheCoalesces pins singleflight: N concurrent requests for one
// cold key run exactly one fetch, and the waiters share its result.
func TestSegCacheCoalesces(t *testing.T) {
	c := NewSegCache(1 << 20)
	const waiters = 16
	gate := make(chan struct{})
	entered := make(chan struct{})
	var fetches int
	var once sync.Once
	fetch := func() (Entry, error) {
		fetches++ // no lock needed: coalescing admits one fetcher
		once.Do(func() { close(entered) })
		<-gate
		return okEntry(64), nil
	}

	var wg sync.WaitGroup
	disps := make([]Disposition, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ent, disp, err := c.GetOrFetch("seg", fetch)
			if err != nil || len(ent.Body) != 64 {
				t.Errorf("waiter %d: body %d, err %v", i, len(ent.Body), err)
			}
			disps[i] = disp
		}(i)
	}
	<-entered // one fetcher is inside fetch; let the rest pile up
	for c.Stats().Coalesced < waiters-1 {
		// Spin until every other goroutine has joined the flight. The loop
		// terminates because the gate is still closed: nobody can finish.
	}
	close(gate)
	wg.Wait()

	if fetches != 1 {
		t.Fatalf("fetch ran %d times, want 1", fetches)
	}
	var miss, coalesced int
	for _, d := range disps {
		switch d {
		case DispMiss:
			miss++
		case DispCoalesced:
			coalesced++
		}
	}
	if miss != 1 || coalesced != waiters-1 {
		t.Errorf("dispositions: %d miss / %d coalesced, want 1 / %d", miss, coalesced, waiters-1)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != waiters-1 {
		t.Errorf("stats = %+v, want 1 miss, %d coalesced", s, waiters-1)
	}
}
