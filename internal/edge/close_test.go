package edge

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cava/internal/chaos/leakcheck"
	"cava/internal/dash"
)

// TestEdgeCloseDrainsBackgroundRefresh pins the edge stop path that the
// goroleak analyzer audits: a stale manifest hit spawns refreshManifest on
// a background goroutine, and Close must cancel its in-flight origin fetch
// (the refresh runs under e.ctx) and block until the goroutine has exited.
// The origin parks the refresh request until the client abandons it, so
// the refresher is provably mid-fetch when Close runs; the leak check
// proves nothing survived.
func TestEdgeCloseDrainsBackgroundRefresh(t *testing.T) {
	defer leakcheck.Check(t)()

	refreshing := make(chan struct{})
	var requests atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) == 1 {
			// The cold fetch that seeds the cache.
			w.Write([]byte("v1"))
			return
		}
		// The background refresh parks here until Close cancels e.ctx,
		// which aborts this request and fires r.Context().
		close(refreshing)
		<-r.Context().Done()
	}))
	defer origin.Close()

	clock := dash.NewFakeClock(time.Unix(1000, 0))
	e, err := New(Config{
		Origins:            []string{origin.URL},
		VideoID:            "vid",
		ManifestSoftTTLSec: 1,
		ManifestHardTTLSec: 60,
		Clock:              clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Seed the cache, then age the entry into the stale-while-revalidate
	// window: the next hit serves the stale body and spawns the refresher.
	if rec := get(e, "/manifest.json", "s1"); rec.Code != 200 || rec.Body.String() != "v1" {
		t.Fatalf("cold manifest = %d %q", rec.Code, rec.Body.String())
	}
	clock.Advance(2 * time.Second)
	if rec := get(e, "/manifest.json", "s1"); rec.Code != 200 || rec.Body.String() != "v1" {
		t.Fatalf("stale manifest = %d %q, want the cached body immediately", rec.Code, rec.Body.String())
	}
	select {
	case <-refreshing:
	case <-time.After(5 * time.Second):
		t.Fatal("background refresh never reached the origin")
	}

	// Close must cancel the parked fetch and wait the refresher out. If it
	// did not, the deferred leak check would catch the straggler (and with
	// a blocked origin handler pinned to it, the origin's Close would hang
	// too).
	e.Close()
	if s := e.Stats(); s.StaleServed != 1 || s.Refreshes != 0 {
		t.Fatalf("stats = %+v, want 1 stale served and the aborted refresh not counted as a success", s)
	}
	if n := requests.Load(); n != 2 {
		t.Fatalf("origin saw %d requests, want 2 (cold fetch + aborted refresh)", n)
	}
}
