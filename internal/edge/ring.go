package edge

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring mapping content keys (video ids) to an
// ordered list of origin replicas. Each origin owns VNodes points on the
// ring; a key hashes to a point and its replica order is the distinct
// origins met walking clockwise from there. The properties the edge tier
// relies on:
//
//   - Stability: the mapping is a pure function of the origin name set and
//     the key, so every edge instance (and every run) agrees on which
//     origin is primary for a video.
//   - Minimal disruption: removing one origin only remaps the keys it
//     owned; everything else keeps its primary, so a cache warmed before an
//     origin death stays valid after it.
//   - Failover order: Order returns every origin exactly once, so a
//     request can walk the list until a healthy replica answers.
type Ring struct {
	points  []ringPoint
	origins int
}

// ringPoint is one virtual node: a position on the ring owned by an origin.
type ringPoint struct {
	hash   uint64
	origin int
}

// DefaultVNodes is the virtual-node count per origin: enough to spread
// keys evenly across small origin sets without measurable lookup cost.
const DefaultVNodes = 64

// NewRing builds a ring over the named origins (names are typically base
// URLs; they only need to be distinct). vnodes <= 0 selects DefaultVNodes.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("edge: ring needs at least one origin")
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return nil, fmt.Errorf("edge: duplicate origin %q in ring", n)
		}
		seen[n] = true
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{origins: len(names)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey(fmt.Sprintf("%s#%d", name, v)),
				origin: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].origin < r.points[b].origin
	})
	return r, nil
}

// Origins returns the number of origins on the ring.
func (r *Ring) Origins() int { return r.origins }

// Primary returns the origin index owning key.
func (r *Ring) Primary(key string) int { return r.Order(key)[0] }

// Order returns every origin index exactly once, primary first, in the
// clockwise order a failover should try them.
func (r *Ring) Order(key string) []int {
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	out := make([]int, 0, r.origins)
	seen := make([]bool, r.origins)
	for i := 0; i < len(r.points) && len(out) < r.origins; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.origin] {
			seen[p.origin] = true
			out = append(out, p.origin)
		}
	}
	return out
}

// hashKey is FNV-1a over the key: seed-free, stable across processes, and
// already the repository's idiom for deterministic request hashing (the
// fault injector's schedule uses the same family).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
