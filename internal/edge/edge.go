// Package edge is the testbed's edge/CDN tier: an HTTP server that fronts
// N dash.Server origins and gives many concurrent players one fast,
// failure-absorbing facade — the clients → edge → sharded-origins
// architecture the ROADMAP's "millions of users" north star names.
//
// Mechanisms, outermost first:
//
//   - Consistent-hash sharding (ring.go): every video id owns a stable
//     primary origin plus an ordered failover chain, so load spreads
//     across origins by content and every edge instance agrees on the
//     placement.
//   - Bounded LRU segment cache with singleflight coalescing
//     (segcache.go): a segment is fetched from its origin once, no matter
//     how many players ask concurrently; the byte budget evicts from the
//     cold end.
//   - Stale-while-revalidate manifests: a cached manifest/playlist is
//     served immediately while a background refresh runs; past the soft
//     TTL the response is stale-but-instant, past the hard TTL stale is
//     refused and the fetch goes to the origins synchronously.
//   - Per-request origin failover: a 5xx, timeout, or connection error
//     moves the request to the next replica in ring order after a capped,
//     seeded-jitter backoff. A per-origin circuit breaker (dash.Breaker)
//     marks dead origins so subsequent requests skip them immediately and
//     recovery is probed with bounded concurrency.
//
// When every replica fails, the edge sheds honestly: 503 with a
// Retry-After hint, the same contract the overload-protection layer and
// the resilient client already speak. All wall-clock access flows through
// an injected dash.Clock, so the stale/failover state machines are pinned
// by FakeClock unit tests.
package edge

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cava/internal/dash"
	"cava/internal/telemetry"
)

// Config describes one edge instance. Origins is required; zero values
// elsewhere select the documented defaults.
type Config struct {
	// Origins are the origin base URLs ("http://127.0.0.1:41234"), one per
	// replica. Order does not matter; placement comes from the hash ring.
	Origins []string
	// VideoID is the ring key for requests that carry no /v/<id>/ prefix
	// (the single-video namespace dash.Client speaks).
	VideoID string
	// CacheBytes bounds the segment cache payload (default 64 MiB).
	CacheBytes int64
	// ManifestSoftTTLSec is the age (wall seconds) past which a cached
	// manifest is served stale while a background refresh runs (default 1).
	ManifestSoftTTLSec float64
	// ManifestHardTTLSec is the age past which a stale manifest is refused
	// and the fetch becomes synchronous (default 120).
	ManifestHardTTLSec float64
	// AttemptTimeoutSec bounds each origin attempt in wall seconds
	// (default 5).
	AttemptTimeoutSec float64
	// FailoverBackoffSec and FailoverBackoffMaxSec bound the jittered
	// exponential pause between failover attempts, in wall seconds
	// (defaults 0.01 and 0.1; the jitter is full and seeded).
	FailoverBackoffSec    float64
	FailoverBackoffMaxSec float64
	// RetryAfterSec is the hint stamped on edge-shed 503s (default 1).
	RetryAfterSec float64
	// JitterSeed seeds the failover backoff jitter.
	JitterSeed int64
	// VNodes is the ring's virtual-node count per origin (default 64).
	VNodes int
	// Breaker is the per-origin circuit-breaker policy (zero value =
	// dash.DefaultBreakerConfig).
	Breaker dash.BreakerConfig
	// HTTPClient performs origin requests; nil builds one with bounded
	// connect/header timeouts.
	HTTPClient *http.Client
	// Clock supplies all time; nil uses the wall clock.
	Clock dash.Clock
}

// withDefaults fills zero fields with the standard policy values.
func (c Config) withDefaults() Config {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.ManifestSoftTTLSec <= 0 {
		c.ManifestSoftTTLSec = 1
	}
	if c.ManifestHardTTLSec <= 0 {
		c.ManifestHardTTLSec = 120
	}
	if c.AttemptTimeoutSec <= 0 {
		c.AttemptTimeoutSec = 5
	}
	if c.FailoverBackoffSec <= 0 {
		c.FailoverBackoffSec = 0.01
	}
	if c.FailoverBackoffMaxSec <= 0 {
		c.FailoverBackoffMaxSec = 0.1
	}
	if c.RetryAfterSec <= 0 {
		c.RetryAfterSec = 1
	}
	return c
}

// OriginStats is one origin's request accounting at the edge.
type OriginStats struct {
	// Requests counts attempts sent to this origin.
	Requests uint64
	// Failures counts attempts that errored, timed out, or answered 5xx.
	Failures uint64
	// FetchedBytes counts payload bytes pulled from this origin.
	FetchedBytes uint64
}

// Stats is a snapshot of the edge's counters (segment cache + manifest
// stale-while-revalidate combined).
type Stats struct {
	// Hits, Misses, Coalesced and Evictions describe the cache: fresh
	// serves, origin fetches, piggybacked fetches, and LRU evictions.
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	Evictions uint64
	// StaleServed counts manifests served past their soft TTL;
	// Refreshes/RefreshFailures count the background revalidations.
	StaleServed     uint64
	Refreshes       uint64
	RefreshFailures uint64
	// Failovers counts failed attempts that moved a request to the next
	// replica; BreakerSkips counts replicas skipped on an open breaker.
	Failovers    uint64
	BreakerSkips uint64
	// Shed counts requests answered 503 + Retry-After because every
	// replica failed (or a stale manifest passed its hard TTL).
	Shed uint64
	// ServedBytes counts payload bytes written to clients.
	ServedBytes uint64
	// Origins holds the per-origin accounting, indexed like Config.Origins.
	Origins []OriginStats
}

// HitRatio returns hits / (hits + misses), 0 when idle.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// manifestEntry is one cached manifest/playlist with its revalidation
// state.
type manifestEntry struct {
	body        []byte
	contentType string
	fetched     time.Time
	refreshing  bool
}

// Edge is the edge server. Build with New, serve Handler(), and Close when
// done (Close drains the background refreshers).
type Edge struct {
	cfg    Config
	ring   *Ring
	segs   *SegCache
	client *http.Client
	clock  dash.Clock

	breakers []*dash.Breaker

	rngMu sync.Mutex
	rng   *rand.Rand

	mmu       sync.Mutex
	manifests map[string]*manifestEntry

	smu           sync.Mutex
	manifestHits  uint64
	manifestMiss  uint64
	stale         uint64
	refreshes     uint64
	refreshFails  uint64
	failovers     uint64
	breakerSkips  uint64
	shedCount     uint64
	servedBytes   uint64
	originStats   []OriginStats
	lastEvictions uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// Telemetry handles (nil-safe).
	cHits      *telemetry.Counter
	cMisses    *telemetry.Counter
	cEvict     *telemetry.Counter
	cCoalesced *telemetry.Counter
	cFailover  *telemetry.Counter
	cStale     *telemetry.Counter
	cShed      *telemetry.Counter
	cBytes     *telemetry.Counter
	gCacheB    *telemetry.Gauge
}

// New validates the config and builds an edge instance.
func New(cfg Config) (*Edge, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Origins) == 0 {
		return nil, errors.New("edge: Config needs at least one origin")
	}
	ring, err := NewRing(cfg.Origins, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConnsPerHost:   16,
		}}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = dash.RealClock()
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Edge{
		cfg:         cfg,
		ring:        ring,
		segs:        NewSegCache(cfg.CacheBytes),
		client:      client,
		clock:       clock,
		rng:         rand.New(rand.NewSource(cfg.JitterSeed)),
		manifests:   make(map[string]*manifestEntry),
		originStats: make([]OriginStats, len(cfg.Origins)),
		ctx:         ctx,
		cancel:      cancel,
	}
	for range cfg.Origins {
		e.breakers = append(e.breakers, dash.NewOriginBreaker(cfg.Breaker).WithClock(clock))
	}
	return e, nil
}

// SetMetrics registers the edge counters on reg (nil disables). Call
// before serving.
func (e *Edge) SetMetrics(reg *telemetry.Registry) {
	e.cHits = reg.Counter("edge_cache_hits_total", "edge requests served from cache")
	e.cMisses = reg.Counter("edge_cache_misses_total", "edge requests fetched from an origin")
	e.cEvict = reg.Counter("edge_cache_evictions_total", "segment cache entries evicted for the byte budget")
	e.cCoalesced = reg.Counter("edge_coalesced_requests_total", "edge requests coalesced onto an in-flight origin fetch")
	e.cFailover = reg.Counter("edge_origin_failovers_total", "failed origin attempts that failed over to the next replica")
	e.cStale = reg.Counter("edge_stale_served_total", "manifests served stale while revalidating")
	e.cShed = reg.Counter("edge_shed_total", "edge requests shed 503 + Retry-After (all replicas failed)")
	e.cBytes = reg.Counter("edge_served_bytes_total", "payload bytes written to clients")
	e.gCacheB = reg.Gauge("edge_cache_bytes", "segment cache resident payload bytes")
}

// Close stops the background refreshers and releases idle origin
// connections. The handler must not be serving new requests.
func (e *Edge) Close() {
	e.cancel()
	e.wg.Wait()
	e.client.CloseIdleConnections()
}

// OriginOrder returns the failover order (origin indices, primary first)
// for the given video id — the default video when id is empty.
func (e *Edge) OriginOrder(videoID string) []int {
	if videoID == "" {
		videoID = e.cfg.VideoID
	}
	return e.ring.Order(videoID)
}

// Breaker exposes origin i's circuit breaker (tests and chaos reports).
func (e *Edge) Breaker(i int) *dash.Breaker { return e.breakers[i] }

// Stats returns a snapshot of the edge counters.
func (e *Edge) Stats() Stats {
	seg := e.segs.Stats()
	e.smu.Lock()
	defer e.smu.Unlock()
	out := Stats{
		Hits:            seg.Hits + e.manifestHits,
		Misses:          seg.Misses + e.manifestMiss,
		Coalesced:       seg.Coalesced,
		Evictions:       seg.Evictions,
		StaleServed:     e.stale,
		Refreshes:       e.refreshes,
		RefreshFailures: e.refreshFails,
		Failovers:       e.failovers,
		BreakerSkips:    e.breakerSkips,
		Shed:            e.shedCount,
		ServedBytes:     e.servedBytes,
		Origins:         append([]OriginStats(nil), e.originStats...),
	}
	return out
}

// videoKeyOf extracts the ring key from a request path: the id inside a
// /v/<id>/... prefix, the configured default otherwise.
func (e *Edge) videoKeyOf(path string) string {
	if rest, ok := strings.CutPrefix(path, "/v/"); ok {
		if i := strings.IndexByte(rest, '/'); i > 0 {
			return rest[:i]
		}
	}
	return e.cfg.VideoID
}

// isManifestPath reports whether path names a manifest or playlist (the
// stale-while-revalidate set).
func isManifestPath(path string) bool {
	base := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		base = path[i+1:]
	}
	switch base {
	case "manifest.json", "manifest.mpd", "master.m3u8":
		return true
	}
	return strings.HasPrefix(base, "track_") && strings.HasSuffix(base, ".m3u8")
}

// Handler returns the edge's HTTP handler.
func (e *Edge) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		switch {
		case isManifestPath(r.URL.Path):
			e.serveManifest(w, r)
		case strings.Contains(r.URL.Path, "/seg/"):
			e.serveSegment(w, r)
		default:
			// Pass anything else (health probes, bad paths) through to the
			// origins uncached so the edge namespace matches an origin's.
			ent, err := e.fetchWithFailover(r.Context(), r.URL.Path, sessionOf(r))
			if err != nil {
				e.shed(w, "all origins failed")
				return
			}
			e.reply(w, ent)
		}
	})
}

// serveSegment answers a segment request through the LRU + singleflight
// cache.
func (e *Edge) serveSegment(w http.ResponseWriter, r *http.Request) {
	path, session := r.URL.Path, sessionOf(r)
	ent, disp, err := e.segs.GetOrFetch(path, func() (Entry, error) {
		return e.fetchWithFailover(r.Context(), path, session)
	})
	switch disp {
	case DispHit:
		e.cHits.Inc()
	case DispMiss:
		e.cMisses.Inc()
	case DispCoalesced:
		e.cCoalesced.Inc()
	}
	e.syncEvictions()
	if err != nil {
		e.shed(w, "all origins failed")
		return
	}
	e.reply(w, ent)
}

// serveManifest answers a manifest/playlist request under the
// stale-while-revalidate state machine:
//
//	age < soft TTL          -> serve cached (fresh hit)
//	soft TTL <= age < hard  -> serve cached now, refresh in background
//	age >= hard TTL (or no entry) -> fetch synchronously; on total origin
//	                                 failure, shed 503 + Retry-After
func (e *Edge) serveManifest(w http.ResponseWriter, r *http.Request) {
	path, session := r.URL.Path, sessionOf(r)
	e.mmu.Lock()
	if ent := e.manifests[path]; ent != nil {
		age := e.clock.Now().Sub(ent.fetched).Seconds()
		if age < e.cfg.ManifestSoftTTLSec {
			body, ct := ent.body, ent.contentType
			e.mmu.Unlock()
			e.smu.Lock()
			e.manifestHits++
			e.smu.Unlock()
			e.cHits.Inc()
			e.reply(w, Entry{Body: body, ContentType: ct, Status: http.StatusOK})
			return
		}
		if age < e.cfg.ManifestHardTTLSec {
			body, ct := ent.body, ent.contentType
			if !ent.refreshing {
				ent.refreshing = true
				e.wg.Add(1)
				go e.refreshManifest(path, session)
			}
			e.mmu.Unlock()
			e.smu.Lock()
			e.stale++
			e.smu.Unlock()
			e.cStale.Inc()
			e.reply(w, Entry{Body: body, ContentType: ct, Status: http.StatusOK})
			return
		}
		// Hard-expired: too stale to serve. Fall through to a synchronous
		// fetch; the entry stays as a refresh target but never as a body.
	}
	e.mmu.Unlock()

	ent, err := e.fetchWithFailover(r.Context(), path, session)
	e.smu.Lock()
	e.manifestMiss++
	e.smu.Unlock()
	e.cMisses.Inc()
	if err != nil {
		e.shed(w, "manifest unavailable")
		return
	}
	if ent.Status == http.StatusOK {
		e.mmu.Lock()
		e.manifests[path] = &manifestEntry{
			body: ent.Body, contentType: ent.ContentType, fetched: e.clock.Now(),
		}
		e.mmu.Unlock()
	}
	e.reply(w, ent)
}

// refreshManifest revalidates one manifest in the background (the
// stale-while-revalidate "revalidate" arm).
func (e *Edge) refreshManifest(path, session string) {
	defer e.wg.Done()
	ent, err := e.fetchWithFailover(e.ctx, path, session)
	e.mmu.Lock()
	me := e.manifests[path]
	if me != nil {
		me.refreshing = false
	}
	ok := err == nil && ent.Status == http.StatusOK && me != nil
	if ok {
		me.body, me.contentType, me.fetched = ent.Body, ent.ContentType, e.clock.Now()
	}
	e.mmu.Unlock()
	e.smu.Lock()
	if ok {
		e.refreshes++
	} else {
		e.refreshFails++
	}
	e.smu.Unlock()
}

// errAllOrigins reports a request that exhausted every replica.
var errAllOrigins = errors.New("edge: every origin failed")

// fetchWithFailover walks the ring order for the request's video, skipping
// origins with an open breaker, until a replica answers below 500. The
// session id is forwarded on every attempt so origin-side admission
// accounting stays per-session under failover.
func (e *Edge) fetchWithFailover(ctx context.Context, path, session string) (Entry, error) {
	order := e.ring.Order(e.videoKeyOf(path))
	lastErr := errAllOrigins
	attempted := 0
	for _, oi := range order {
		b := e.breakers[oi]
		pass, probe, _ := b.Allow()
		if !pass {
			e.smu.Lock()
			e.breakerSkips++
			e.smu.Unlock()
			continue
		}
		if attempted > 0 {
			// Between replicas: a capped, seeded full-jitter pause, so a
			// fleet of edges hitting one dead origin does not stampede the
			// next replica in lockstep.
			e.clock.Sleep(wallDur(e.failoverBackoff(attempted - 1)))
		}
		attempted++
		ent, err := e.fetchOnce(ctx, oi, path, session)
		failed := err != nil || ent.Status >= http.StatusInternalServerError
		b.Observe(probe, failed)
		e.smu.Lock()
		e.originStats[oi].Requests++
		if failed {
			e.originStats[oi].Failures++
			e.failovers++
		} else {
			e.originStats[oi].FetchedBytes += uint64(len(ent.Body))
		}
		e.smu.Unlock()
		if !failed {
			return ent, nil
		}
		e.cFailover.Inc()
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("edge: origin %d answered %d for %s", oi, ent.Status, path)
		}
		if cerr := ctx.Err(); cerr != nil {
			return Entry{}, cerr
		}
	}
	return Entry{}, lastErr
}

// fetchOnce performs one origin attempt under the per-attempt deadline.
func (e *Edge) fetchOnce(ctx context.Context, origin int, path, session string) (Entry, error) {
	actx, cancel := context.WithTimeout(ctx, wallDur(e.cfg.AttemptTimeoutSec))
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, e.cfg.Origins[origin]+path, nil)
	if err != nil {
		return Entry{}, err
	}
	if session != "" {
		req.Header.Set(dash.SessionIDHeader, session)
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return Entry{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return Entry{}, err
	}
	if declared := resp.ContentLength; declared >= 0 && int64(len(body)) != declared {
		return Entry{}, fmt.Errorf("edge: origin %d truncated %s: %d of %d bytes",
			origin, path, len(body), declared)
	}
	return Entry{
		Body:        body,
		ContentType: resp.Header.Get("Content-Type"),
		Status:      resp.StatusCode,
	}, nil
}

// failoverBackoff returns the wall-seconds pause before failover attempt r
// (0-based): capped exponential with seeded full jitter.
func (e *Edge) failoverBackoff(r int) float64 {
	d := e.cfg.FailoverBackoffSec
	for i := 0; i < r && d < e.cfg.FailoverBackoffMaxSec; i++ {
		d *= 2
	}
	if d > e.cfg.FailoverBackoffMaxSec {
		d = e.cfg.FailoverBackoffMaxSec
	}
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return d * e.rng.Float64()
}

// reply writes a buffered origin response to the client.
func (e *Edge) reply(w http.ResponseWriter, ent Entry) {
	if ent.ContentType != "" {
		w.Header().Set("Content-Type", ent.ContentType)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(ent.Body)))
	w.WriteHeader(ent.Status)
	n, _ := w.Write(ent.Body)
	e.smu.Lock()
	e.servedBytes += uint64(n)
	e.smu.Unlock()
	e.cBytes.Add(uint64(n))
	e.gCacheB.Set(float64(e.segs.Stats().StoredBytes))
}

// shed answers a request no replica could serve: an honest 503 with a
// Retry-After hint, the contract resilient clients back off on.
func (e *Edge) shed(w http.ResponseWriter, reason string) {
	e.smu.Lock()
	e.shedCount++
	e.smu.Unlock()
	e.cShed.Inc()
	sec := int(e.cfg.RetryAfterSec + 0.999)
	if sec < 1 {
		sec = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(sec))
	http.Error(w, "edge: "+reason, http.StatusServiceUnavailable)
}

// syncEvictions mirrors the segment cache's eviction count into the
// telemetry counter (the cache itself is telemetry-free).
func (e *Edge) syncEvictions() {
	evictions := e.segs.Stats().Evictions
	e.smu.Lock()
	delta := evictions - e.lastEvictions
	e.lastEvictions = evictions
	e.smu.Unlock()
	if delta > 0 {
		e.cEvict.Add(delta)
	}
}

// sessionOf extracts the client's session identity for forwarding.
func sessionOf(r *http.Request) string {
	return r.Header.Get(dash.SessionIDHeader)
}

// wallDur converts float wall seconds to a time.Duration.
func wallDur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
