package edge

import (
	"fmt"
	"testing"
	"time"

	"cava/internal/dash"
)

// breakerTestEdge builds a 2-origin edge whose per-origin breakers trip
// after 2 consecutive failures and cool down for 2 virtual seconds.
func breakerTestEdge(t *testing.T) (*Edge, *dash.FakeClock, *testOrigin, *testOrigin) {
	t.Helper()
	o0, o1 := newTestOrigin(t, 0), newTestOrigin(t, 1)
	e, clock, _ := newTestEdge(t, Config{
		VideoID: "vid",
		Breaker: dash.BreakerConfig{ConsecutiveFailures: 2, OpenSec: 2, HalfOpenProbes: 1},
	}, o0, o1)
	order := e.OriginOrder("")
	origins := []*testOrigin{o0, o1}
	return e, clock, origins[order[0]], origins[order[1]]
}

// TestOpenBreakerSkipsOriginImmediately pins the dead-origin fast path: once
// an origin's breaker opens, subsequent requests go straight to the next
// replica without burning an attempt (or its timeout) on the dead one.
func TestOpenBreakerSkipsOriginImmediately(t *testing.T) {
	e, _, primary, backup := breakerTestEdge(t)
	primary.failing.Store(true)

	// Two failed attempts trip the primary's breaker (distinct uncached
	// paths so each request exercises failover, not the segment cache).
	for i := 0; i < 2; i++ {
		if rec := get(e, fmt.Sprintf("/blob/%d", i), "s1"); rec.Code != 200 {
			t.Fatalf("request %d = %d, want 200 via backup", i, rec.Code)
		}
	}
	if n := primary.requests.Load(); n != 2 {
		t.Fatalf("primary saw %d attempts while closed, want 2", n)
	}
	order := e.OriginOrder("")
	if st := e.Breaker(order[0]).State(); st != dash.BreakerOpen {
		t.Fatalf("primary breaker state = %v, want open", st)
	}

	// With the breaker open the primary is skipped: its request count must
	// not move, and the edge records breaker skips instead of failovers.
	before := e.Stats()
	for i := 2; i < 5; i++ {
		if rec := get(e, fmt.Sprintf("/blob/%d", i), "s1"); rec.Code != 200 {
			t.Fatalf("request %d = %d, want 200 via backup", i, rec.Code)
		}
	}
	if n := primary.requests.Load(); n != 2 {
		t.Errorf("open breaker leaked %d attempts to the dead primary", n-2)
	}
	after := e.Stats()
	if got := after.BreakerSkips - before.BreakerSkips; got != 3 {
		t.Errorf("BreakerSkips grew by %d, want 3", got)
	}
	if after.Failovers != before.Failovers {
		t.Errorf("Failovers grew while the breaker was open (%d -> %d)",
			before.Failovers, after.Failovers)
	}
	if n := backup.requests.Load(); n != 5 {
		t.Errorf("backup saw %d requests, want all 5", n)
	}
}

// TestHalfOpenProbesCappedAtOne pins recovery probing on the raw breaker:
// after the cool-down exactly one in-flight probe is admitted; a second
// concurrent Allow is refused until the probe reports back, and a probe
// success closes the circuit.
func TestHalfOpenProbesCappedAtOne(t *testing.T) {
	clock := dash.NewFakeClock(time.Unix(1000, 0))
	b := dash.NewOriginBreaker(dash.BreakerConfig{
		ConsecutiveFailures: 2, OpenSec: 2, HalfOpenProbes: 1,
	}).WithClock(clock)

	// Trip it: two consecutive failures.
	for i := 0; i < 2; i++ {
		pass, probe, _ := b.Allow()
		if !pass || probe {
			t.Fatalf("closed Allow() = %v, %v", pass, probe)
		}
		b.Observe(probe, true)
	}
	if pass, _, retrySec := b.Allow(); pass || retrySec <= 0 {
		t.Fatalf("open Allow() = pass %v, retryAfter %v; want refusal with cool-down", pass, retrySec)
	}

	// Cool-down elapses: exactly one probe may be in flight.
	clock.Advance(2 * time.Second)
	pass, probe, _ := b.Allow()
	if !pass || !probe {
		t.Fatalf("half-open Allow() = %v, %v, want one probe", pass, probe)
	}
	if pass2, _, _ := b.Allow(); pass2 {
		t.Fatal("second concurrent Allow() passed; half-open must cap probes at 1")
	}

	// The probe succeeds: circuit closes, traffic flows freely again.
	b.Observe(true, false)
	if st := b.State(); st != dash.BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", st)
	}
	if pass, probe, _ := b.Allow(); !pass || probe {
		t.Fatalf("closed Allow() after recovery = %v, %v", pass, probe)
	}
	b.Observe(false, false)
}

// TestHalfOpenProbeFailureReopens completes the state machine: a failed
// probe re-opens the circuit for another full cool-down.
func TestHalfOpenProbeFailureReopens(t *testing.T) {
	e, clock, primary, _ := breakerTestEdge(t)
	primary.failing.Store(true)
	for i := 0; i < 2; i++ {
		get(e, fmt.Sprintf("/blob/%d", i), "s1")
	}
	order := e.OriginOrder("")
	pb := e.Breaker(order[0])
	if st := pb.State(); st != dash.BreakerOpen {
		t.Fatalf("primary breaker = %v, want open", st)
	}

	// Cool-down elapses; the next request is the probe and it fails against
	// the still-dead primary, re-opening the circuit.
	clock.Advance(2 * time.Second)
	if rec := get(e, "/blob/probe", "s1"); rec.Code != 200 {
		t.Fatalf("probe-carrying request = %d, want 200 via backup", rec.Code)
	}
	if n := primary.requests.Load(); n != 3 {
		t.Fatalf("primary saw %d attempts, want 3 (2 trips + 1 probe)", n)
	}
	if st := pb.State(); st != dash.BreakerOpen {
		t.Fatalf("breaker after failed probe = %v, want open again", st)
	}

	// Primary recovers; after another cool-down the probe succeeds and the
	// primary serves again.
	primary.failing.Store(false)
	clock.Advance(2 * time.Second)
	if rec := get(e, "/blob/recovered", "s1"); rec.Code != 200 {
		t.Fatalf("recovery request = %d", rec.Code)
	}
	if st := pb.State(); st != dash.BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", st)
	}
	if n := primary.requests.Load(); n != 4 {
		t.Errorf("primary saw %d attempts, want 4", n)
	}
}
