package edge

import (
	"fmt"
	"testing"
)

// TestRingRejectsBadOrigins pins the constructor's validation: an empty
// origin set and duplicate names are both configuration errors.
func TestRingRejectsBadOrigins(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing(nil) = nil error, want error")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("NewRing with duplicate = nil error, want error")
	}
}

// TestRingOrderIsAPermutation checks the failover contract: Order returns
// every origin exactly once, primary first.
func TestRingOrderIsAPermutation(t *testing.T) {
	names := []string{"o0", "o1", "o2", "o3", "o4"}
	r, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("video-%d", k)
		order := r.Order(key)
		if len(order) != len(names) {
			t.Fatalf("Order(%q) has %d entries, want %d", key, len(order), len(names))
		}
		seen := make(map[int]bool)
		for _, oi := range order {
			if oi < 0 || oi >= len(names) || seen[oi] {
				t.Fatalf("Order(%q) = %v is not a permutation", key, order)
			}
			seen[oi] = true
		}
		if got := r.Primary(key); got != order[0] {
			t.Fatalf("Primary(%q) = %d, Order[0] = %d", key, got, order[0])
		}
	}
}

// TestRingBalance checks that virtual nodes spread keys across origins: with
// 3 origins and 3000 keys, no origin should own less than a tenth of the
// keyspace (a strict-uniform share would be a third each).
func TestRingBalance(t *testing.T) {
	names := []string{"http://a:1", "http://b:2", "http://c:3"}
	r, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 3000
	counts := make([]int, len(names))
	for k := 0; k < keys; k++ {
		counts[r.Primary(fmt.Sprintf("video-%d", k))]++
	}
	for i, c := range counts {
		if c < keys/10 {
			t.Errorf("origin %d owns %d/%d keys; distribution too skewed: %v",
				i, c, keys, counts)
		}
	}
}

// TestRingStability pins the consistency properties: the mapping is a pure
// function of the name set (two rings agree), and removing one origin only
// remaps the keys it owned.
func TestRingStability(t *testing.T) {
	names := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the last origin; indices 0 and 1 keep their meaning.
	shrunk, err := NewRing(names[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		key := fmt.Sprintf("video-%d", k)
		p := r1.Primary(key)
		if q := r2.Primary(key); q != p {
			t.Fatalf("rings disagree on %q: %d vs %d", key, p, q)
		}
		if p != 2 && shrunk.Primary(key) != p {
			t.Errorf("key %q moved from origin %d to %d when origin 2 left",
				key, p, shrunk.Primary(key))
		}
	}
}
