package chaos

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"cava/internal/chaos/leakcheck"
	"cava/internal/dash"
	"cava/internal/edge"
)

// OriginKillPlan schedules the origin-lifecycle fault: one origin is killed
// mid-run (its HTTP server and listener close, aborting in-flight
// responses) and optionally restarted on the same address, exercising the
// edge tier's failover, breaker, and cache-recovery paths.
type OriginKillPlan struct {
	// Target is the origin index to kill; -1 targets the primary origin for
	// the run's video (the one whose death hurts the most).
	Target int
	// KillAfterSec is when the origin dies, in wall seconds after run start.
	KillAfterSec float64
	// DownForSec is how long it stays down before restarting on the same
	// address; <= 0 means it never comes back.
	DownForSec float64
}

// EdgeTierConfig puts the edge/CDN tier between the chaos clients and a set
// of origin replicas. Clients speak to the edge through the shared shaped
// bottleneck; the edge fans out to unshaped local origins.
type EdgeTierConfig struct {
	// Origins is the number of origin replicas (default 3).
	Origins int
	// CacheBytes bounds the edge's segment cache (default 64 MiB).
	CacheBytes int64
	// ManifestSoftTTLSec / ManifestHardTTLSec tune the edge's
	// stale-while-revalidate window (defaults 1 and 120 wall seconds; the
	// soak sets a tiny soft TTL so staggered sessions exercise stale
	// serving).
	ManifestSoftTTLSec float64
	ManifestHardTTLSec float64
	// AttemptTimeoutSec bounds each edge→origin attempt (default 5).
	AttemptTimeoutSec float64
	// Breaker is the per-origin breaker policy (zero value = defaults).
	Breaker dash.BreakerConfig
	// OriginKill, when non-nil, schedules the origin-lifecycle fault.
	OriginKill *OriginKillPlan
	// SessionStaggerSec spreads session starts over a wall-clock window
	// (default 0: all at once), so manifest requests arrive at distinct
	// cache ages.
	SessionStaggerSec float64
}

// withDefaults fills zero fields.
func (c EdgeTierConfig) withDefaults() EdgeTierConfig {
	if c.Origins <= 0 {
		c.Origins = 3
	}
	return c
}

// originInstance is one restartable origin replica: a fixed address whose
// HTTP server can be killed and brought back, while the edge keeps the
// address in its ring throughout.
type originInstance struct {
	addr    string
	handler http.Handler

	mu   sync.Mutex
	hsrv *http.Server
}

// startOrigin binds a fresh loopback port and starts serving.
func startOrigin(handler http.Handler) (*originInstance, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	o := &originInstance{addr: ln.Addr().String(), handler: handler}
	o.serve(ln)
	return o, nil
}

// serve runs an HTTP server on ln until killed.
func (o *originInstance) serve(ln net.Listener) {
	hsrv := dash.NewHTTPServer(o.handler)
	o.mu.Lock()
	o.hsrv = hsrv
	o.mu.Unlock()
	go func() { _ = hsrv.Serve(ln) }()
}

// kill closes the origin's server and every connection it holds.
func (o *originInstance) kill() {
	o.mu.Lock()
	hsrv := o.hsrv
	o.hsrv = nil
	o.mu.Unlock()
	if hsrv != nil {
		_ = hsrv.Close()
	}
}

// restart rebinds the SAME address, so the edge's ring entry points at the
// revived replica. It fails if the port was reclaimed in the down window.
func (o *originInstance) restart() error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("chaos: restarting origin %s: %w", o.addr, err)
	}
	o.serve(ln)
	return nil
}

// RunEdge executes one chaos run with the edge tier in front of a set of
// origin replicas, optionally killing and restarting an origin mid-run.
// cfg.Edge selects the topology; the remaining Config fields keep their
// Run semantics. Unlike Run, the default protection admits every session:
// the quantity under test is completion through failover, not shedding.
func RunEdge(cfg Config) (*Report, error) {
	if cfg.Edge == nil {
		return nil, errors.New("chaos: RunEdge needs Config.Edge")
	}
	if cfg.Protection == nil {
		sessions := cfg.Sessions
		if sessions <= 0 {
			sessions = 8
		}
		p := dash.DefaultProtection(sessions)
		p.QueueTimeoutSec = 0.5
		p.SessionIdleSec = 300
		cfg.Protection = &p
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	et := cfg.Edge.withDefaults()

	baseline := leakcheck.Snapshot()
	start := time.Now()

	// Origin replicas: each runs the full single-video server behind its
	// own fault injector (distinct seeds, same profile), on its own
	// unshaped loopback listener.
	origins := make([]*originInstance, et.Origins)
	for i := range origins {
		faultCfg, ferr := dash.FaultProfile(cfg.FaultProfile, cfg.Seed+int64(i)*101, cfg.TimeScale)
		if ferr != nil {
			return nil, ferr
		}
		server := dash.NewServer(cfg.Video)
		server.SetMetrics(cfg.Registry)
		injector := dash.NewFaultInjector(faultCfg, server.Handler())
		origins[i], err = startOrigin(injector)
		if err != nil {
			for _, o := range origins {
				if o != nil {
					o.kill()
				}
			}
			return nil, fmt.Errorf("chaos: origin listen: %w", err)
		}
	}
	originURLs := make([]string, len(origins))
	for i, o := range origins {
		originURLs[i] = "http://" + o.addr
	}

	eg, err := edge.New(edge.Config{
		Origins:            originURLs,
		VideoID:            cfg.Video.ID(),
		CacheBytes:         et.CacheBytes,
		ManifestSoftTTLSec: et.ManifestSoftTTLSec,
		ManifestHardTTLSec: et.ManifestHardTTLSec,
		AttemptTimeoutSec:  et.AttemptTimeoutSec,
		Breaker:            et.Breaker,
		JitterSeed:         cfg.Seed,
	})
	if err != nil {
		for _, o := range origins {
			o.kill()
		}
		return nil, err
	}
	eg.SetMetrics(cfg.Registry)

	// The client-facing stack mirrors Run: overload protection in front,
	// the trace-shaped bottleneck underneath — but the protected handler is
	// the edge, not a single origin.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eg.Close()
		for _, o := range origins {
			o.kill()
		}
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	shaper := dash.NewShaper(cfg.Trace, cfg.TimeScale)
	shaper.SetMetrics(cfg.Registry)
	protection := dash.Protect(*cfg.Protection, eg.Handler())
	protection.SetMetrics(cfg.Registry)
	hsrv := dash.NewHTTPServer(protection.Handler())
	go func() { _ = hsrv.Serve(dash.NewShapedListener(ln, shaper)) }()

	transport := &countingTransport{inner: &http.Transport{
		DialContext:           (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
		ResponseHeaderTimeout: 30 * time.Second,
		MaxIdleConnsPerHost:   cfg.Sessions,
	}}
	httpClient := &http.Client{Timeout: 5 * time.Minute, Transport: transport}

	// Origin-lifecycle controller: kill the target origin mid-run, bring it
	// back after the down window, and snapshot the edge's hit counter at
	// restart so the report can show the cache recovering.
	var (
		kills, restarts int
		hitsAtRestart   uint64
		restartErr      error
		ctrlWG          sync.WaitGroup
	)
	if plan := et.OriginKill; plan != nil {
		target := plan.Target
		if target < 0 || target >= len(origins) {
			target = eg.OriginOrder("")[0] // the primary takes the hit
		}
		ctrlWG.Add(1)
		go func() {
			defer ctrlWG.Done()
			time.Sleep(wallSeconds(plan.KillAfterSec))
			origins[target].kill()
			kills++
			if plan.DownForSec <= 0 {
				return
			}
			time.Sleep(wallSeconds(plan.DownForSec))
			if err := origins[target].restart(); err != nil {
				restartErr = err
				return
			}
			restarts++
			hitsAtRestart = eg.Stats().Hits
		}()
	}

	results := make([]SessionResult, cfg.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if et.SessionStaggerSec > 0 && cfg.Sessions > 1 {
				time.Sleep(wallSeconds(et.SessionStaggerSec * float64(i) / float64(cfg.Sessions)))
			}
			results[i] = runSession(cfg, i, "http://"+ln.Addr().String(), httpClient)
		}(i)
	}
	wg.Wait()
	ctrlWG.Wait()
	if restartErr != nil {
		// A failed rebind leaves the run unable to test recovery; that is a
		// harness failure, not a system-under-test finding.
		_ = hsrv.Close()
		protection.Close()
		eg.Close()
		for _, o := range origins {
			o.kill()
		}
		httpClient.CloseIdleConnections()
		return nil, restartErr
	}

	rep := &Report{
		Profile:            cfg.FaultProfile,
		Sessions:           cfg.Sessions,
		Results:            results,
		Admission:          protection.AdmissionStats(),
		GoroutinesBaseline: baseline.Count(),
		ShedBudget:         shedBudget(cfg),
		OriginKills:        kills,
		OriginRestarts:     restarts,
	}
	if b := protection.Breaker(); b != nil {
		rep.Breaker = b.Stats()
	}
	rep.Observed503, rep.ObservedShed = transport.counts()
	for _, r := range results {
		switch {
		case r.Completed():
			rep.Completed++
		case r.Livelocked:
			rep.Livelocked++
			rep.Failed++
		default:
			rep.Failed++
		}
	}

	// Teardown order matters for the leak check: stop accepting client
	// traffic, drain the admission queue, drain the edge's background
	// refreshers, then drop the origins and idle connections before
	// requiring the baseline back.
	_ = hsrv.Close()
	protection.Close()
	es := eg.Stats()
	rep.Edge = &es
	if rep.OriginRestarts > 0 && es.Hits > hitsAtRestart {
		rep.EdgeHitsAfterRestart = es.Hits - hitsAtRestart
	}
	eg.Close()
	for _, o := range origins {
		o.kill()
	}
	httpClient.CloseIdleConnections()
	rep.LeakErr = baseline.Settle(wallSeconds(cfg.SettleWallTimeoutSec))
	rep.GoroutinesAfter = leakcheck.Snapshot().Count()
	rep.WallSec = time.Since(start).Seconds()
	return rep, nil
}

// edgeInvariants extends Invariants for edge-tier runs: sessions must ride
// out the origin kill through failover and stale serving, and the cache
// must warm back up after the restart.
func (r *Report) edgeInvariants() []error {
	var out []error
	if r.Edge == nil {
		return nil
	}
	// ≥ 99% of sessions complete through the edge despite the origin kill.
	if r.Completed*100 < r.Sessions*99 {
		out = append(out, fmt.Errorf("chaos: only %d of %d sessions completed through the edge",
			r.Completed, r.Sessions))
	}
	if r.OriginKills > 0 && r.Edge.Failovers+r.Edge.BreakerSkips == 0 {
		out = append(out, errors.New("chaos: origin was killed but the edge never failed over"))
	}
	if r.OriginKills > 0 && r.Sessions > 1 && r.Edge.StaleServed == 0 {
		out = append(out, errors.New("chaos: no manifest was served stale while revalidating"))
	}
	if r.OriginRestarts > 0 && r.EdgeHitsAfterRestart == 0 {
		out = append(out, errors.New("chaos: cache hits did not resume after the origin restart"))
	}
	return out
}
