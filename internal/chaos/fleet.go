package chaos

import (
	"errors"
	"fmt"
	"math"
	"time"

	"cava/internal/abr"
	"cava/internal/fleet"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// FleetConfig describes one fleet smoke run: the chaos harness's -fleet
// mode, which points the invariant checks at the discrete-event engine
// instead of the socket testbed. Where Run proves the networked stack
// survives dozens of goroutine-per-client sessions, RunFleet proves the
// event engine schedules thousands of virtual sessions without livelock or
// starvation — the two failure modes a priority-queue simulator can invent
// on its own (a session rescheduled forever at the same instant, or one
// whose wakeups drift past any bound).
type FleetConfig struct {
	// Videos and Traces form the shared corpus (required).
	Videos []*video.Video
	Traces []*trace.Trace
	// Scheme is the adaptation algorithm every session runs (required).
	Scheme abr.Scheme
	// Sessions is the fleet size (default 2000).
	Sessions int
	// Workers is the engine shard count (non-positive: GOMAXPROCS). The
	// soak cell runs multi-worker under the race detector, so the shard
	// partition itself is what the smoke exercises.
	Workers int
	// ArrivalRatePerSec staggers arrivals (default 20/s).
	ArrivalRatePerSec float64
	// Seed drives corpus assignment, offsets and arrivals (seeded rand
	// only, as everywhere in the engine).
	Seed int64
	// MaxChunks bounds each session's length (default 0: full video).
	MaxChunks int
	// DeadlineVirtualSec is the starvation bound: no session may need more
	// virtual time than this to finish. The default is 20× the longest
	// video — generous against slow traces, unreachable by a scheduling
	// bug that stops draining a session.
	DeadlineVirtualSec float64
	// Registry optionally collects the engine's telemetry.
	Registry *telemetry.Registry
}

// withDefaults validates the config and fills defaulted fields.
func (c FleetConfig) withDefaults() (FleetConfig, error) {
	if len(c.Videos) == 0 || len(c.Traces) == 0 || c.Scheme.New == nil {
		return c, errors.New("chaos: FleetConfig needs Videos, Traces and Scheme")
	}
	if c.Sessions <= 0 {
		c.Sessions = 2000
	}
	if c.ArrivalRatePerSec <= 0 {
		c.ArrivalRatePerSec = 20
	}
	if c.DeadlineVirtualSec <= 0 {
		longest := 0.0
		for _, v := range c.Videos {
			if d := float64(v.NumChunks()) * v.ChunkDurSec; d > longest {
				longest = d
			}
		}
		c.DeadlineVirtualSec = 20 * longest
	}
	return c, nil
}

// FleetReport aggregates one fleet smoke run for invariant checking.
type FleetReport struct {
	// Sessions, Events and ExpectedEvents echo the engine's accounting;
	// Events != ExpectedEvents is the livelock/lost-wakeup signal.
	Sessions       int
	Events         int64
	ExpectedEvents int64
	// Samples counts sessions that contributed distribution samples; fewer
	// than Sessions means sessions vanished without finishing.
	Samples int
	// VirtualSec is the fleet's virtual-time horizon; MaxSessionLenSec is
	// the longest single session in virtual seconds, checked against
	// DeadlineVirtualSec.
	VirtualSec         float64
	MaxSessionLenSec   float64
	DeadlineVirtualSec float64
	// MedianRebufferSec summarizes fleet health for the log line.
	MedianRebufferSec float64
	// WallSec is the run's wall-clock duration (reporting only; every
	// checked quantity above is virtual-time).
	WallSec float64
}

// RunFleet executes one fleet smoke run. An error means the engine itself
// could not run (bad config); invariant violations land in the report.
func RunFleet(cfg FleetConfig) (*FleetReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := fleet.Run(fleet.Config{
		Videos:             cfg.Videos,
		Traces:             cfg.Traces,
		Scheme:             cfg.Scheme,
		Sessions:           cfg.Sessions,
		Workers:            cfg.Workers,
		ArrivalRatePerSec:  cfg.ArrivalRatePerSec,
		RandomTraceOffsets: true,
		Seed:               cfg.Seed,
		MaxChunks:          cfg.MaxChunks,
		Metrics:            cfg.Registry,
	})
	if err != nil {
		return nil, err
	}
	return &FleetReport{
		Sessions:           res.Sessions,
		Events:             res.Events,
		ExpectedEvents:     res.ExpectedEvents,
		Samples:            res.SessionLenSec.Len(),
		VirtualSec:         res.VirtualSec,
		MaxSessionLenSec:   res.SessionLenSec.Percentile(100),
		DeadlineVirtualSec: cfg.DeadlineVirtualSec,
		MedianRebufferSec:  res.RebufferSec.Median(),
		WallSec:            time.Since(start).Seconds(),
	}, nil
}

// Invariants checks the report against the fleet engine's robustness
// invariants and returns every violation (empty means the run passed):
//
//   - no livelock or lost wakeups: the engine processed exactly one event
//     per scheduled chunk, and every session produced its samples;
//   - no starvation: the longest session finished within the virtual-time
//     deadline, and the fleet's horizon is finite.
func (r *FleetReport) Invariants() []error {
	var out []error
	if r.Events != r.ExpectedEvents {
		out = append(out, fmt.Errorf("chaos: fleet processed %d events, expected %d (livelock or lost wakeups)",
			r.Events, r.ExpectedEvents))
	}
	if r.Samples != r.Sessions {
		out = append(out, fmt.Errorf("chaos: %d of %d fleet sessions never finished",
			r.Sessions-r.Samples, r.Sessions))
	}
	if r.MaxSessionLenSec > r.DeadlineVirtualSec {
		out = append(out, fmt.Errorf("chaos: slowest fleet session took %.1f virtual s, deadline %.1f (starved)",
			r.MaxSessionLenSec, r.DeadlineVirtualSec))
	}
	if math.IsInf(r.VirtualSec, 0) || math.IsNaN(r.VirtualSec) {
		out = append(out, fmt.Errorf("chaos: fleet virtual time is %v", r.VirtualSec))
	}
	return out
}
