package chaos

import (
	"math"
	"strings"
	"testing"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/trace"
	"cava/internal/video"
)

func fleetTestConfig() FleetConfig {
	return FleetConfig{
		Videos: []*video.Video{
			video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264),
			video.FFmpegVideo(video.Title{Name: "BBB", Genre: video.Animation}, video.H264),
		},
		Traces: []*trace.Trace{
			trace.GenLTE(0), trace.GenLTE(1), trace.GenLTE(2), trace.GenFCC(0),
		},
		Scheme: abr.Scheme{Name: "CAVA", Key: "cava", New: core.Factory()},
		Seed:   11,
	}
}

func TestFleetChaosConfigValidation(t *testing.T) {
	if _, err := RunFleet(FleetConfig{}); err == nil {
		t.Fatal("RunFleet accepted an empty config")
	}
}

// TestFleetChaosSmoke is the -fleet smoke: two thousand CAVA sessions with
// Poisson arrivals and random trace offsets over a mixed LTE/FCC corpus,
// sharded across four workers (a multi-worker cell even on one core, so
// the race-enabled soak exercises the shard partition itself), checked
// against the engine's livelock and starvation invariants.
func TestFleetChaosSmoke(t *testing.T) {
	cfg := fleetTestConfig()
	cfg.MaxChunks = 40 // bounded smoke; the bench runs full-length sessions
	cfg.Workers = 4
	rep, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 2000 {
		t.Fatalf("defaulted fleet size = %d, want 2000", rep.Sessions)
	}
	for _, e := range rep.Invariants() {
		t.Errorf("invariant violated: %v", e)
	}
	if rep.Events != int64(2000*40) {
		t.Errorf("processed %d events, want %d", rep.Events, 2000*40)
	}
	t.Logf("fleet smoke: %d sessions, %d events, horizon %.0f virtual s, slowest session %.0f s, median rebuffer %.1f s (%.2f wall s)",
		rep.Sessions, rep.Events, rep.VirtualSec, rep.MaxSessionLenSec, rep.MedianRebufferSec, rep.WallSec)
}

// TestFleetInvariantsCatchViolations pins that each invariant actually
// fires: a report with a livelock signature, missing sessions, a starved
// session and a non-finite horizon must produce one violation apiece.
func TestFleetInvariantsCatchViolations(t *testing.T) {
	rep := &FleetReport{
		Sessions: 10, Events: 99, ExpectedEvents: 100, Samples: 9,
		VirtualSec: math.Inf(1), MaxSessionLenSec: 5000, DeadlineVirtualSec: 1000,
	}
	errs := rep.Invariants()
	if len(errs) != 4 {
		t.Fatalf("got %d violations, want 4: %v", len(errs), errs)
	}
	for _, want := range []string{"livelock", "never finished", "starved", "virtual time"} {
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no violation mentions %q in %v", want, errs)
		}
	}
}
