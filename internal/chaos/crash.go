package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"time"

	"cava/internal/abr"
	"cava/internal/fleet"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// CrashConfig describes one crash-injection soak: the chaos harness's
// answer to "does a long fleet run survive its own process?". Where
// RunFleet proves the event engine schedules a healthy fleet, RunCrash
// attacks the same engine three ways at once — seeded panics inside
// randomly chosen sessions' chunk steps, a mid-run interrupt that forces a
// checkpoint, and a resume that must land bit-identical to the run that
// was never interrupted. Panic isolation, checkpoint/resume and event
// accounting are all load-bearing at once, which is exactly the state a
// production OOM-kill or crashing ABR scheme would find them in.
type CrashConfig struct {
	// Videos and Traces form the shared corpus (required).
	Videos []*video.Video
	Traces []*trace.Trace
	// Scheme is the adaptation algorithm every session runs (required).
	Scheme abr.Scheme
	// Sessions is the fleet size (default 2000).
	Sessions int
	// Workers is the engine shard count (non-positive: GOMAXPROCS).
	Workers int
	// ArrivalRatePerSec staggers arrivals (default 20/s).
	ArrivalRatePerSec float64
	// Seed drives corpus assignment AND the fault schedule: which sessions
	// panic, at which chunk, and where the interrupt cut lands relative to
	// event progress. Same seed, same faults.
	Seed int64
	// MaxChunks bounds each session's length (default 40).
	MaxChunks int
	// Faults is how many sessions get a panic injected into one of their
	// chunk steps (default 25). Victim chunks are drawn below every
	// video's chunk budget, so every scheduled fault actually fires.
	Faults int
	// CheckpointDir hosts the mid-run checkpoint (required): the run is
	// interrupted once, checkpointed there, and resumed.
	CheckpointDir string
	// InterruptAfterEvents is the event count at which the run's context
	// is cancelled (default one third of a lower bound on the actual
	// event budget, derived from the shortest video in the corpus so the
	// cut is always reached and the interrupt leg always engages).
	InterruptAfterEvents int64
	// Registry optionally collects the engine's telemetry across all
	// three legs (baseline, interrupted, resumed).
	Registry *telemetry.Registry
}

// withCrashDefaults validates the config and fills defaulted fields.
func (c CrashConfig) withCrashDefaults() (CrashConfig, error) {
	if len(c.Videos) == 0 || len(c.Traces) == 0 || c.Scheme.New == nil {
		return c, errors.New("chaos: CrashConfig needs Videos, Traces and Scheme")
	}
	if c.CheckpointDir == "" {
		return c, errors.New("chaos: CrashConfig needs a CheckpointDir for the interrupt/resume leg")
	}
	if c.Sessions <= 0 {
		c.Sessions = 2000
	}
	if c.ArrivalRatePerSec <= 0 {
		c.ArrivalRatePerSec = 20
	}
	if c.MaxChunks <= 0 {
		c.MaxChunks = 40
	}
	if c.Faults <= 0 {
		c.Faults = 25
	}
	if c.Faults > c.Sessions {
		c.Faults = c.Sessions
	}
	// InterruptAfterEvents is defaulted in RunCrash: the real per-session
	// event budget is min(video.NumChunks, MaxChunks), which needs the
	// corpus scan that also bounds victim chunks.
	return c, nil
}

// CrashReport aggregates one crash soak for invariant checking.
type CrashReport struct {
	// Sessions, Completed and Quarantined partition the fleet; every
	// session must end up in exactly one of the latter two.
	Sessions    int
	Completed   int
	Quarantined int
	// FaultsInjected is the scheduled panic count; a healthy run
	// quarantines exactly this many sessions — no faults lost, no
	// collateral damage.
	FaultsInjected int
	// Events, ExpectedEvents and LostEvents echo the engine's accounting;
	// Events != ExpectedEvents - LostEvents means the isolation path
	// corrupted the schedule.
	Events         int64
	ExpectedEvents int64
	LostEvents     int64
	// Interrupted and Resumed report the checkpoint leg actually engaged:
	// the cancel landed mid-run and the final result came from a resumed
	// engine.
	Interrupted bool
	Resumed     bool
	// ResumeMatches is the headline: the resumed run's Result equals the
	// uninterrupted baseline's (quarantine stacks excepted — they name
	// goroutines of different processes-in-spirit).
	ResumeMatches bool
	// WallSec is the soak's wall-clock duration (reporting only).
	WallSec float64
}

// RunCrash executes one crash soak: an uninterrupted baseline run with the
// seeded faults, then the same run interrupted mid-flight (checkpoint on
// the way out) and resumed to completion. An error means the harness
// itself could not run; fault-tolerance violations land in the report.
func RunCrash(cfg CrashConfig) (*CrashReport, error) {
	cfg, err := cfg.withCrashDefaults()
	if err != nil {
		return nil, err
	}
	start := time.Now()

	// Victim chunks stay below every video's chunk budget so each fault is
	// guaranteed to fire regardless of which video the session drew.
	minBudget := cfg.MaxChunks
	for _, v := range cfg.Videos {
		if n := v.NumChunks(); n < minBudget {
			minBudget = n
		}
	}
	if minBudget < 2 {
		return nil, fmt.Errorf("chaos: chunk budget %d leaves no room for mid-session faults", minBudget)
	}
	if cfg.InterruptAfterEvents <= 0 {
		// One third of a lower bound on the total event count: every
		// non-victim session steps at least minBudget chunks, and every
		// victim fires at least one event before its panic. Deriving the
		// cut from MaxChunks instead would overshoot on a corpus of short
		// videos and the interrupt leg would never engage.
		budget := int64(cfg.Sessions-cfg.Faults)*int64(minBudget) + int64(cfg.Faults)
		cfg.InterruptAfterEvents = budget / 3
		if cfg.InterruptAfterEvents < 1 {
			cfg.InterruptAfterEvents = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	victims := make(map[int32]int, cfg.Faults)
	for len(victims) < cfg.Faults {
		id := int32(rng.Intn(cfg.Sessions))
		if _, dup := victims[id]; dup {
			continue
		}
		victims[id] = 1 + rng.Intn(minBudget-1)
	}
	// faultHook panics at each victim's chunk; with a counter attached it
	// also trips the interrupt once the event count crosses the cut.
	faultHook := func(counter *atomic.Int64, cancel context.CancelFunc) func(int32, int) {
		return func(id int32, chunk int) {
			if counter != nil && counter.Add(1) == cfg.InterruptAfterEvents {
				cancel()
			}
			if c, ok := victims[id]; ok && chunk == c {
				//lint:allow nopanic deliberate fault injection: the soak exists to prove the engine survives this panic
				panic(fmt.Sprintf("chaos: injected fault in session %d at chunk %d", id, chunk))
			}
		}
	}

	base := fleet.Config{
		Videos:             cfg.Videos,
		Traces:             cfg.Traces,
		Scheme:             cfg.Scheme,
		Sessions:           cfg.Sessions,
		Workers:            cfg.Workers,
		ArrivalRatePerSec:  cfg.ArrivalRatePerSec,
		RandomTraceOffsets: true,
		Seed:               cfg.Seed,
		MaxChunks:          cfg.MaxChunks,
		Metrics:            cfg.Registry,
	}

	// Leg 1: the uninterrupted baseline, faults and all.
	bcfg := base
	bcfg.CrashHook = faultHook(nil, nil)
	want, err := fleet.Run(bcfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline run: %w", err)
	}

	// Leg 2: the same run, cancelled mid-flight with a checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events atomic.Int64
	icfg := base
	icfg.CrashHook = faultHook(&events, cancel)
	e, err := fleet.New(icfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: interrupted run: %w", err)
	}
	partial, runErr := e.RunContext(ctx, fleet.RunOptions{CheckpointDir: cfg.CheckpointDir})
	interrupted := errors.Is(runErr, fleet.ErrInterrupted)
	if runErr != nil && !interrupted {
		return nil, fmt.Errorf("chaos: interrupted run: %w", runErr)
	}

	// Leg 3: resume from the checkpoint and finish. The hook rides along —
	// faults that had not yet fired at the cut must still fire.
	final := partial
	resumed := false
	if interrupted {
		rcfg := base
		rcfg.CrashHook = faultHook(nil, nil)
		re, err := fleet.Resume(rcfg, cfg.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("chaos: resume: %w", err)
		}
		if final, err = re.Run(); err != nil {
			return nil, fmt.Errorf("chaos: resumed run: %w", err)
		}
		resumed = true
	}

	return &CrashReport{
		Sessions:       final.Sessions,
		Completed:      final.Completed,
		Quarantined:    len(final.Quarantined),
		FaultsInjected: len(victims),
		Events:         final.Events,
		ExpectedEvents: final.ExpectedEvents,
		LostEvents:     final.LostEvents,
		Interrupted:    interrupted,
		Resumed:        resumed,
		ResumeMatches:  resultsMatch(want, final),
		WallSec:        time.Since(start).Seconds(),
	}, nil
}

// resultsMatch compares two fleet Results for bit-identity, ignoring
// quarantine stacks (two recoveries of the same injected fault capture
// stacks of different goroutines).
func resultsMatch(a, b *fleet.Result) bool {
	strip := func(r *fleet.Result) fleet.Result {
		c := *r
		c.Quarantined = append([]fleet.Quarantine(nil), r.Quarantined...)
		for i := range c.Quarantined {
			c.Quarantined[i].Stack = ""
		}
		return c
	}
	return reflect.DeepEqual(strip(a), strip(b))
}

// Invariants checks the report against the crash-tolerance contract and
// returns every violation (empty means the soak passed):
//
//   - isolation is exact: every injected fault quarantined its session,
//     and nothing else was quarantined;
//   - the fleet completed around the faults: completed + quarantined
//     partitions the population, and the event accounting closes as
//     Events == ExpectedEvents - LostEvents with LostEvents > 0;
//   - the checkpoint leg engaged: the run was interrupted and resumed;
//   - resume is lossless: the resumed run's Result is bit-identical to
//     the uninterrupted baseline's.
func (r *CrashReport) Invariants() []error {
	var out []error
	if r.Completed+r.Quarantined != r.Sessions {
		out = append(out, fmt.Errorf("chaos: %d completed + %d quarantined != %d sessions (sessions vanished)",
			r.Completed, r.Quarantined, r.Sessions))
	}
	if r.Quarantined != r.FaultsInjected {
		out = append(out, fmt.Errorf("chaos: %d sessions quarantined for %d injected faults (lost faults or collateral quarantine)",
			r.Quarantined, r.FaultsInjected))
	}
	if r.Events != r.ExpectedEvents-r.LostEvents {
		out = append(out, fmt.Errorf("chaos: accounting open: %d events for %d expected - %d lost",
			r.Events, r.ExpectedEvents, r.LostEvents))
	}
	if r.FaultsInjected > 0 && r.LostEvents <= 0 {
		out = append(out, fmt.Errorf("chaos: %d faults injected but no events lost (faults did not land mid-session)",
			r.FaultsInjected))
	}
	if !r.Interrupted || !r.Resumed {
		out = append(out, fmt.Errorf("chaos: interrupt leg never engaged (interrupted=%v resumed=%v)",
			r.Interrupted, r.Resumed))
	}
	if !r.ResumeMatches {
		out = append(out, errors.New("chaos: resumed run diverges from the uninterrupted baseline"))
	}
	return out
}
