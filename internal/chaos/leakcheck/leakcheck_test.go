package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestSettleCleanBaseline(t *testing.T) {
	b := Snapshot()
	if err := b.Settle(time.Second); err != nil {
		t.Fatalf("clean baseline reported a leak: %v", err)
	}
}

func TestSettleDetectsLeak(t *testing.T) {
	b := Snapshot()
	stop := make(chan struct{})
	go func() { <-stop }()
	err := b.Settle(50 * time.Millisecond)
	if err == nil {
		t.Fatal("Settle missed a live goroutine")
	}
	if !strings.Contains(err.Error(), "leaked") || !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("error lacks diagnostics: %v", err)
	}
	close(stop)
	if err := b.Settle(time.Second); err != nil {
		t.Fatalf("leak persisted after the goroutine exited: %v", err)
	}
}

func TestSettleWaitsForDrain(t *testing.T) {
	b := Snapshot()
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(done)
	}()
	// The goroutine outlives the first poll but drains inside the window.
	if err := b.Settle(2 * time.Second); err != nil {
		t.Fatalf("Settle did not wait for the drain: %v", err)
	}
	<-done
}

func TestCheckHelper(t *testing.T) {
	defer Check(t)()
	ch := make(chan struct{})
	go func() { <-ch }()
	close(ch)
}
