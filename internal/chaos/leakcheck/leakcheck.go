// Package leakcheck is a small stdlib-only goroutine-leak guard for tests
// and the chaos harness. Snapshot the goroutine count before starting
// servers and clients; after tearing everything down, Settle polls until
// the count returns to the baseline or a timeout expires, and on failure
// reports a full stack dump so the leaked goroutine is identifiable.
//
// The check is count-based, not identity-based: it cannot distinguish one
// leaked goroutine from an unrelated one that started meanwhile, so use it
// in tests that own their concurrency (no t.Parallel) and snapshot as
// close to the setup as possible.
package leakcheck

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// settlePollInterval is how often Settle re-samples the goroutine count.
const settlePollInterval = 10 * time.Millisecond

// DefaultSettleTimeout bounds how long Settle waits for goroutines to
// drain. Connection teardown (TIME_WAIT readers, transport idle loops)
// takes real time even when everything is closed correctly.
const DefaultSettleTimeout = 5 * time.Second

// Baseline is a goroutine-count snapshot.
type Baseline struct {
	n int
}

// Snapshot records the current goroutine count.
func Snapshot() Baseline {
	return Baseline{n: runtime.NumGoroutine()}
}

// Count returns the snapshot's goroutine count.
func (b Baseline) Count() int { return b.n }

// Settle waits up to timeout (non-positive selects DefaultSettleTimeout)
// for the goroutine count to return to the baseline, polling as it drains.
// It returns nil on success and an error carrying the surplus count and a
// stack dump otherwise.
func (b Baseline) Settle(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = DefaultSettleTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		now := runtime.NumGoroutine()
		if now <= b.n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leakcheck: %d goroutines, baseline %d (%d leaked)\n%s",
				now, b.n, now-b.n, stacks())
		}
		time.Sleep(settlePollInterval)
	}
}

// Check snapshots the goroutine count now and returns a function that
// asserts the count has settled back; use it at the top of a test:
//
//	defer leakcheck.Check(t)()
func Check(t testing.TB) func() {
	t.Helper()
	b := Snapshot()
	return func() {
		t.Helper()
		if err := b.Settle(0); err != nil {
			t.Error(err)
		}
	}
}

// stacks dumps every goroutine's stack (truncated to a sane size).
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return string(buf[:n])
}
