package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cava/internal/cache"
	"cava/internal/chaos/leakcheck"
	"cava/internal/telemetry"
	"cava/internal/video"
)

func TestCrashConfigValidation(t *testing.T) {
	if _, err := RunCrash(CrashConfig{}); err == nil {
		t.Fatal("RunCrash accepted an empty config")
	}
	cfg := CrashConfig{
		Videos: fleetTestConfig().Videos,
		Traces: fleetTestConfig().Traces,
		Scheme: fleetTestConfig().Scheme,
	}
	if _, err := RunCrash(cfg); err == nil || !strings.Contains(err.Error(), "CheckpointDir") {
		t.Fatalf("RunCrash without CheckpointDir: %v", err)
	}
}

// TestCrashSoak is the `make soak-crash` cell: the fleet engine under
// seeded in-step panics, a mid-run interrupt with checkpoint, and a
// resume — race-enabled — followed by a process-style disk-cache
// corruption pass. Asserts the crash-tolerance contract (exact quarantine,
// closed accounting, bit-identical resume), checksum detection and
// recompute on the cache, and goroutines back to baseline.
func TestCrashSoak(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := telemetry.NewRegistry()

	fc := fleetTestConfig()
	rep, err := RunCrash(CrashConfig{
		Videos:        fc.Videos,
		Traces:        fc.Traces,
		Scheme:        fc.Scheme,
		Workers:       4,
		Seed:          13,
		CheckpointDir: t.TempDir(),
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Invariants() {
		t.Errorf("invariant violated: %v", e)
	}
	if got := reg.Counter("fleet_sessions_quarantined_total", "").Value(); got == 0 {
		t.Error("fleet_sessions_quarantined_total never incremented")
	}
	if got := reg.Counter("fleet_checkpoints_written_total", "").Value(); rep.Interrupted && got == 0 {
		t.Error("run was interrupted with a checkpoint dir but fleet_checkpoints_written_total stayed 0")
	}
	t.Logf("crash soak: %d sessions, %d quarantined of %d faults, %d/%d events (%d lost), interrupted=%v resumed=%v match=%v (%.2f wall s)",
		rep.Sessions, rep.Quarantined, rep.FaultsInjected, rep.Events, rep.ExpectedEvents,
		rep.LostEvents, rep.Interrupted, rep.Resumed, rep.ResumeMatches, rep.WallSec)

	cacheCorruptionLeg(t, reg)
}

// TestCrashShortCorpusEngagesInterrupt pins the default interrupt cut
// against a corpus of videos much shorter than MaxChunks: the cut must be
// derived from the real per-session event budget (min NumChunks), so the
// cancel still fires mid-run and the interrupt/resume leg engages. A
// MaxChunks-derived default overshoots here — the event count never
// reaches it and a healthy engine reports a spurious "interrupt leg
// never engaged" violation.
func TestCrashShortCorpusEngagesInterrupt(t *testing.T) {
	defer leakcheck.Check(t)()
	fc := fleetTestConfig()
	short := []*video.Video{
		video.Generate(video.GenConfig{
			Name: "crash-short-1", Genre: video.SciFi,
			ChunkDurSec: 2, DurationSec: 12, Seed: 7,
		}),
		video.Generate(video.GenConfig{
			Name: "crash-short-2", Genre: video.Sports,
			ChunkDurSec: 2, DurationSec: 16, Seed: 8,
		}),
	}
	rep, err := RunCrash(CrashConfig{
		Videos:        short,
		Traces:        fc.Traces,
		Scheme:        fc.Scheme,
		Sessions:      800,
		Workers:       2,
		Faults:        4,
		Seed:          29,
		CheckpointDir: t.TempDir(),
		// MaxChunks stays at its default (40), far above the 6-chunk
		// shortest video: the cut has to come from the corpus.
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Invariants() {
		t.Errorf("invariant violated: %v", e)
	}
}

// cacheCorruptionLeg seeds a checksummed disk cache, damages entries the
// three ways a crashing process or decaying disk can (flipped payload
// byte, truncated tail, mangled header), and proves a fresh cache detects
// every one, quarantines the bytes, recomputes, and leaves the store fully
// healed for the next reader.
func cacheCorruptionLeg(t *testing.T, reg *telemetry.Registry) {
	t.Helper()
	dir := t.TempDir()
	const kind = "sweep"
	const keys = 8
	keyName := func(i int) string { return strings.Repeat("k", 3) + string(rune('a'+i)) }

	seed := cache.New(cache.WithDir(dir))
	for i := 0; i < keys; i++ {
		i := i
		if _, err := cache.GetOrComputeJSON(seed, kind, keyName(i), func() (int, error) { return i * i, nil }); err != nil {
			t.Fatal(err)
		}
	}

	damage := map[int]func(path string, raw []byte) []byte{
		1: func(_ string, raw []byte) []byte { // bit rot in the payload
			raw[len(raw)-1] ^= 0x08
			return raw
		},
		4: func(_ string, raw []byte) []byte { // torn tail
			return raw[:len(raw)-1]
		},
		6: func(_ string, raw []byte) []byte { // mangled header
			return append([]byte("abrcache1 zzzz\n"), raw...)
		},
	}
	for i, f := range damage {
		path := filepath.Join(dir, kind, keyName(i)+".json")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, f(path, raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	recomputes := 0
	fresh := cache.New(cache.WithDir(dir), cache.WithMetrics(reg))
	for i := 0; i < keys; i++ {
		i := i
		v, err := cache.GetOrComputeJSON(fresh, kind, keyName(i), func() (int, error) {
			recomputes++
			return i * i, nil
		})
		if err != nil || v != i*i {
			t.Fatalf("key %d after corruption: %v, %v", i, v, err)
		}
	}
	if s := fresh.Stats(kind); s.Corrupt != uint64(len(damage)) {
		t.Errorf("Stats.Corrupt = %d, want %d", s.Corrupt, len(damage))
	}
	if recomputes != len(damage) {
		t.Errorf("recomputed %d entries, want exactly the %d damaged ones", recomputes, len(damage))
	}
	for i := range damage {
		if _, err := os.Stat(filepath.Join(dir, kind, keyName(i)+".json.corrupt")); err != nil {
			t.Errorf("damaged entry %d not quarantined: %v", i, err)
		}
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `cache_corrupt_entries_total{kind="sweep"} 3`) {
		t.Errorf("exposition missing corrupt counter:\n%s", sb.String())
	}

	// The store healed: a third process hits every key, nothing corrupt.
	healed := cache.New(cache.WithDir(dir))
	for i := 0; i < keys; i++ {
		if _, err := cache.GetOrComputeJSON(healed, kind, keyName(i), func() (int, error) {
			t.Fatalf("key %d recomputed after heal", i)
			return 0, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s := healed.Stats(kind); s.Corrupt != 0 || s.Hits != keys {
		t.Errorf("healed stats = %+v, want %d hits 0 corrupt", s, keys)
	}
	t.Logf("cache leg: %d entries, %d damaged, all detected, quarantined and recomputed", keys, len(damage))
}
