package chaos

import (
	"strings"
	"testing"

	"cava/internal/abr"
	"cava/internal/chaos/leakcheck"
	"cava/internal/core"
	"cava/internal/dash"
	"cava/internal/trace"
	"cava/internal/video"
)

func testConfig() Config {
	return Config{
		Video: video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264),
		// An ample shared link: contention and faults stress the system,
		// not raw starvation.
		Trace:  trace.Constant("link", 40e6, 1200, 1),
		Scheme: abr.Scheme{Name: "CAVA", Key: "cava", New: core.Factory()},
		Seed:   7,
	}
}

func TestChaosConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run accepted an empty config")
	}
	cfg := testConfig()
	cfg.FaultProfile = "no-such-profile"
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an unknown fault profile")
	}
}

func TestChaosCleanRunAllComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real sockets and sessions")
	}
	defer leakcheck.Check(t)()
	cfg := testConfig()
	cfg.Sessions = 4
	cfg.TimeScale = 240
	cfg.MaxChunks = 4
	p := dash.DefaultProtection(4) // every session fits
	p.SessionIdleSec = 300
	cfg.Protection = &p

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 4 || rep.Failed != 0 {
		t.Fatalf("clean run: %d completed / %d failed, want 4 / 0 (results %+v)",
			rep.Completed, rep.Failed, rep.Results)
	}
	if shed := rep.Admission.ShedTotal(); shed != 0 {
		t.Errorf("clean run shed %d requests, want 0", shed)
	}
	for _, e := range rep.Invariants() {
		t.Errorf("invariant violated: %v", e)
	}
	for _, s := range rep.Results {
		if s.Chunks != 4 || s.DataMB <= 0 {
			t.Errorf("session %s: %d chunks, %.2f MB; want 4 chunks of data", s.ID, s.Chunks, s.DataMB)
		}
	}
}

// TestChaosSoak is the acceptance soak: 32 concurrent sessions against the
// "lossy" profile with room for only 12, on one shared link. No session may
// livelock, the goroutine count must return to baseline, and ≥ 99% of shed
// requests must be answered 503 + Retry-After.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run")
	}
	defer leakcheck.Check(t)()
	cfg := testConfig()
	cfg.Sessions = 32
	cfg.FaultProfile = "lossy"
	cfg.TimeScale = 240
	cfg.MaxChunks = 6
	p := dash.DefaultProtection(12)
	p.QueueTimeoutSec = 0.05 // rejected sessions fail fast
	p.SessionIdleSec = 300   // no slot churn inside the run
	cfg.Protection = &p

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d completed, %d failed, %d shed (%d observed 503+Retry-After), breaker opens %d, wall %.1fs",
		rep.Completed, rep.Failed, rep.Admission.ShedTotal(), rep.ObservedShed, rep.Breaker.Opens, rep.WallSec)

	for _, e := range rep.Invariants() {
		t.Errorf("invariant violated: %v", e)
	}
	if rep.Livelocked != 0 {
		t.Errorf("%d sessions livelocked, want 0", rep.Livelocked)
	}
	if rep.LeakErr != nil {
		t.Errorf("goroutines did not return to baseline: %v", rep.LeakErr)
	}
	// The run must actually exercise shedding: 32 sessions into 12 slots.
	shed := rep.Admission.ShedTotal()
	if shed == 0 {
		t.Error("soak shed nothing; overload path not exercised")
	}
	if rep.ObservedShed*100 < shed*99 {
		t.Errorf("only %d of %d shed requests observed as 503 + Retry-After", rep.ObservedShed, shed)
	}
	// Admitted sessions ride out the faults; most of the table completes.
	if rep.Completed < 10 {
		t.Errorf("only %d sessions completed, want ≥ 10 of the 12 admitted", rep.Completed)
	}
	if rep.Admission.PeakSessions > 12 {
		t.Errorf("peak sessions %d exceeded the MaxSessions=12 bound", rep.Admission.PeakSessions)
	}
}

func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	defer leakcheck.Check(t)()
	cfg := testConfig()
	cfg.TimeScale = 240
	cfg.MaxChunks = 3
	cfg.SessionWallTimeoutSec = 30

	reps, err := Sweep(cfg, []string{"none", "transient"}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("sweep produced %d reports, want 4", len(reps))
	}
	for _, rep := range reps {
		for _, e := range rep.Invariants() {
			t.Errorf("cell %s×%d: invariant violated: %v", rep.Profile, rep.Sessions, e)
		}
		if rep.Completed == 0 {
			t.Errorf("cell %s×%d: no session completed", rep.Profile, rep.Sessions)
		}
	}
}

func TestInvariantsCatchViolations(t *testing.T) {
	rep := &Report{
		Profile:  "lossy",
		Sessions: 2,
		Results: []SessionResult{
			{ID: "chaos-00", Chunks: 4, SkippedChunks: 3}, // collapsed
		},
		Livelocked: 1,
		Completed:  1,
		ShedBudget: 1,
	}
	rep.Admission.ShedQueueFull = 5 // over budget, none observed
	errs := rep.Invariants()
	if len(errs) != 4 {
		t.Fatalf("got %d violations, want 4 (livelock, budget, honesty, collapse): %v", len(errs), errs)
	}
	joined := ""
	for _, e := range errs {
		joined += e.Error() + "\n"
	}
	for _, want := range []string{"livelocked", "budget", "Retry-After", "collapsed"} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
}
