package chaos

import (
	"testing"

	"cava/internal/chaos/leakcheck"
	"cava/internal/dash"
	"cava/internal/edge"
)

func TestRunEdgeConfigValidation(t *testing.T) {
	if _, err := RunEdge(testConfig()); err == nil {
		t.Fatal("RunEdge accepted a config with no Edge tier")
	}
	cfg := testConfig()
	cfg.Edge = &EdgeTierConfig{}
	cfg.Video = nil
	if _, err := RunEdge(cfg); err == nil {
		t.Fatal("RunEdge accepted a config with no video")
	}
}

// TestEdgeChaosSoak is the edge tier's acceptance soak: 24 staggered
// sessions stream through the edge while the primary origin (of 3) is
// killed mid-run and restarted. The invariants: ≥ 99% of sessions complete
// via failover and stale serving, the goroutine count settles back, the
// failover and stale-served counters are nonzero, and cache hits resume
// after the restart.
func TestEdgeChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run")
	}
	defer leakcheck.Check(t)()
	cfg := testConfig()
	cfg.Sessions = 24
	cfg.TimeScale = 240
	cfg.MaxChunks = 6
	cfg.Edge = &EdgeTierConfig{
		Origins: 3,
		// A tiny soft TTL so the staggered sessions' manifest requests age
		// past it and exercise stale-while-revalidate; the hard TTL stays
		// large so the outage window never refuses stale.
		ManifestSoftTTLSec: 0.01,
		ManifestHardTTLSec: 300,
		// A tight breaker so the dead origin is marked within the outage.
		Breaker: dash.BreakerConfig{ConsecutiveFailures: 3, OpenSec: 0.5, HalfOpenProbes: 1},
		// Kill the primary a quarter second in — after the first sessions
		// warmed the cache, while most are mid-stream — and bring it back
		// while sessions are still running.
		OriginKill:        &OriginKillPlan{Target: -1, KillAfterSec: 0.25, DownForSec: 0.5},
		SessionStaggerSec: 1.0,
	}

	rep, err := RunEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	es := rep.Edge
	t.Logf("edge soak: %d/%d completed, kills %d, restarts %d, failovers %d, breaker skips %d, stale %d, hits %d (after restart %d), misses %d, coalesced %d, shed %d, wall %.1fs",
		rep.Completed, rep.Sessions, rep.OriginKills, rep.OriginRestarts,
		es.Failovers, es.BreakerSkips, es.StaleServed, es.Hits,
		rep.EdgeHitsAfterRestart, es.Misses, es.Coalesced, es.Shed, rep.WallSec)

	for _, e := range rep.Invariants() {
		t.Errorf("invariant violated: %v", e)
	}
	if rep.OriginKills != 1 || rep.OriginRestarts != 1 {
		t.Fatalf("controller ran %d kills / %d restarts, want 1 / 1", rep.OriginKills, rep.OriginRestarts)
	}
	if es.Failovers == 0 {
		t.Error("edge_origin_failovers stayed zero across an origin kill")
	}
	if es.StaleServed == 0 {
		t.Error("edge_stale_served stayed zero across staggered sessions")
	}
	if rep.EdgeHitsAfterRestart == 0 {
		t.Error("no cache hit after the origin restart; hit ratio did not recover")
	}
	if rep.LeakErr != nil {
		t.Errorf("goroutines did not return to baseline: %v", rep.LeakErr)
	}
	if es.HitRatio() <= 0 {
		t.Errorf("edge hit ratio = %.2f, want > 0 (hits %d, misses %d)",
			es.HitRatio(), es.Hits, es.Misses)
	}
}

// TestEdgeChaosCleanRun pins the no-fault edge path: every session
// completes, nothing sheds, nothing leaks, and the cache coalesces the
// concurrent demand for shared segments.
func TestEdgeChaosCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real sockets and sessions")
	}
	defer leakcheck.Check(t)()
	cfg := testConfig()
	cfg.Sessions = 6
	cfg.TimeScale = 240
	cfg.MaxChunks = 4
	cfg.Edge = &EdgeTierConfig{Origins: 2}

	rep, err := RunEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 6 || rep.Failed != 0 {
		t.Fatalf("clean edge run: %d completed / %d failed (results %+v)",
			rep.Completed, rep.Failed, rep.Results)
	}
	for _, e := range rep.Invariants() {
		t.Errorf("invariant violated: %v", e)
	}
	if shed := rep.Admission.ShedTotal(); shed != 0 {
		t.Errorf("clean edge run shed %d requests", shed)
	}
	if rep.Edge.Shed != 0 {
		t.Errorf("edge shed %d requests with healthy origins", rep.Edge.Shed)
	}
	if rep.Edge.Hits+rep.Edge.Coalesced == 0 {
		t.Error("6 sessions sharing one video produced no cache hit or coalesced fetch")
	}
}

// TestEdgeInvariantsCatchViolations exercises the edge-specific invariant
// arms on a synthetic report.
func TestEdgeInvariantsCatchViolations(t *testing.T) {
	rep := &Report{
		Sessions:       10,
		Completed:      8, // below the 99% bar
		OriginKills:    1,
		OriginRestarts: 1,
	}
	rep.Edge = &edge.Stats{}
	errs := rep.edgeInvariants()
	if len(errs) != 4 {
		t.Fatalf("got %d violations, want 4 (completion, failover, stale, recovery): %v",
			len(errs), errs)
	}
	// A Run-style report (no edge tier) adds none of them.
	if extra := (&Report{Sessions: 10}).edgeInvariants(); extra != nil {
		t.Errorf("edge invariants fired on a non-edge report: %v", extra)
	}
}
