// Package chaos is the multi-session robustness harness: it launches N
// concurrent resilient streaming clients against a fault-injected,
// overload-protected testbed server sharing one trace-shaped bottleneck
// link — the many-players-one-link regime PANDA studies — and checks
// system-level invariants after each run:
//
//   - every session terminates (no livelock): a session that exceeds its
//     wall-clock budget is counted as livelocked, and any livelock fails
//     the invariant check;
//   - load shedding is bounded and honest: the admission layer sheds at
//     most a budget proportional to the session count, and ≥ 99% of shed
//     requests are observed client-side as 503 + Retry-After;
//   - nothing leaks: the process goroutine count returns to its
//     pre-harness baseline once the server and clients are torn down;
//   - degradation is graceful: admitted sessions complete with bounded
//     chunk loss instead of collapsing, and rejected sessions fail fast.
//
// Every run is seeded: the server's fault schedule and each client's
// retry jitter derive from Config.Seed, so a failing configuration
// replays exactly. (Goroutine scheduling still interleaves requests
// differently run to run; the *fault decisions per request* do not
// change, which is what makes failures attributable.)
package chaos

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"cava/internal/abr"
	"cava/internal/chaos/leakcheck"
	"cava/internal/dash"
	"cava/internal/edge"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// Config describes one chaos run. Video, Trace and Scheme are required;
// zero values elsewhere select the defaults documented per field.
type Config struct {
	// Video is the title every session streams.
	Video *video.Video
	// Trace shapes the shared bottleneck link all sessions contend on.
	Trace *trace.Trace
	// Scheme is the adaptation algorithm every session runs.
	Scheme abr.Scheme
	// Sessions is the number of concurrent clients (default 8).
	Sessions int
	// FaultProfile is the named server-side fault profile (default "none";
	// see dash.FaultProfileNames).
	FaultProfile string
	// Seed drives the fault schedule and the per-session retry jitter
	// (session i uses Seed+i).
	Seed int64
	// TimeScale compresses time (default 120).
	TimeScale float64
	// MaxChunks bounds each session's length in segments (default 8).
	MaxChunks int
	// Protection configures the server's overload protection; nil uses
	// dash.DefaultProtection admitting half the session count (so the run
	// exercises shedding), with a short queue timeout.
	Protection *dash.ProtectionConfig
	// Resilience configures the clients' fault tolerance; nil uses
	// dash.DefaultResilience.
	Resilience *dash.ResilienceConfig
	// SessionWallTimeoutSec bounds each session in wall seconds; a session
	// still running at the bound is cancelled and counted as livelocked
	// (default 60).
	SessionWallTimeoutSec float64
	// SettleWallTimeoutSec bounds the post-run goroutine drain wait
	// (default 5).
	SettleWallTimeoutSec float64
	// Registry optionally collects server and client telemetry.
	Registry *telemetry.Registry
	// Edge, when non-nil, puts the edge/CDN tier between the clients and a
	// set of origin replicas (RunEdge only; Run ignores it).
	Edge *EdgeTierConfig
}

// withDefaults validates the config and fills defaulted fields.
func (c Config) withDefaults() (Config, error) {
	if c.Video == nil || c.Trace == nil || c.Scheme.New == nil {
		return c, errors.New("chaos: Config needs Video, Trace and Scheme")
	}
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.FaultProfile == "" {
		c.FaultProfile = "none"
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 120
	}
	if c.MaxChunks <= 0 {
		c.MaxChunks = 8
	}
	if c.Protection == nil {
		p := dash.DefaultProtection(maxInt(1, c.Sessions/2))
		p.QueueTimeoutSec = 0.1
		p.SessionIdleSec = 300 // no slot recycling inside one short run
		c.Protection = &p
	}
	if c.Resilience == nil {
		c.Resilience = dash.DefaultResilience()
	}
	if c.SessionWallTimeoutSec <= 0 {
		c.SessionWallTimeoutSec = 60
	}
	if c.SettleWallTimeoutSec <= 0 {
		c.SettleWallTimeoutSec = 5
	}
	return c, nil
}

// SessionResult is one client session's outcome.
type SessionResult struct {
	// ID is the session identity ("chaos-03").
	ID string
	// Err is the terminal error (nil for a completed session).
	Err error
	// Livelocked reports the session hit its wall-clock budget instead of
	// terminating on its own.
	Livelocked bool
	// Chunks counts delivered chunk records (skips included).
	Chunks int
	// SkippedChunks counts segments abandoned after exhausting retries.
	SkippedChunks int
	// Retries counts failed attempts that were retried.
	Retries int
	// RebufferSec is the session's total stall time in virtual seconds.
	RebufferSec float64
	// DataMB is the delivered payload in megabytes.
	DataMB float64
}

// Completed reports whether the session finished its stream.
func (s SessionResult) Completed() bool { return s.Err == nil }

// Report aggregates one chaos run.
type Report struct {
	// Profile and Sessions echo the configuration axis values.
	Profile  string
	Sessions int
	// Results holds the per-session outcomes, ordered by session index.
	Results []SessionResult
	// Completed, Failed and Livelocked partition the sessions (livelocked
	// sessions are also failed).
	Completed  int
	Failed     int
	Livelocked int
	// Admission and Breaker snapshot the protection layer's counters.
	Admission dash.AdmissionStats
	Breaker   dash.BreakerStats
	// Faults snapshots the injector's counters.
	Faults dash.FaultStats
	// Observed503 counts 503 responses seen client-side; ObservedShed is
	// the subset carrying Retry-After (i.e. honest load shedding, as
	// opposed to injected faults).
	Observed503  int
	ObservedShed int
	// ShedBudget is the run's bound on acceptable shedding.
	ShedBudget int
	// GoroutinesBaseline and GoroutinesAfter bracket the run; LeakErr is
	// non-nil when the count failed to settle back.
	GoroutinesBaseline int
	GoroutinesAfter    int
	LeakErr            error
	// WallSec is the run's wall-clock duration.
	WallSec float64
	// Edge snapshots the edge tier's counters (RunEdge only; nil for Run).
	Edge *edge.Stats
	// OriginKills and OriginRestarts count the origin-lifecycle controller's
	// actions; EdgeHitsAfterRestart counts cache hits accrued after the
	// killed origin came back (the cache-recovery signal).
	OriginKills          int
	OriginRestarts       int
	EdgeHitsAfterRestart uint64
}

// countingTransport counts 503 responses (and the Retry-After subset)
// observed by the clients, distinguishing honest shedding from injected
// faults on the wire.
type countingTransport struct {
	inner http.RoundTripper

	mu       sync.Mutex
	n503     int
	nShed503 int
}

func (t *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := t.inner.RoundTrip(r)
	if err == nil && resp.StatusCode == http.StatusServiceUnavailable {
		t.mu.Lock()
		t.n503++
		if resp.Header.Get("Retry-After") != "" {
			t.nShed503++
		}
		t.mu.Unlock()
	}
	return resp, err
}

func (t *countingTransport) counts() (n503, nShed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n503, t.nShed503
}

// Run executes one chaos run and returns its report. An error means the
// harness itself could not run (bad config, no listener); session-level
// failures land in the report, not the error.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	faultCfg, err := dash.FaultProfile(cfg.FaultProfile, cfg.Seed, cfg.TimeScale)
	if err != nil {
		return nil, err
	}

	baseline := leakcheck.Snapshot()
	start := time.Now()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	shaper := dash.NewShaper(cfg.Trace, cfg.TimeScale)
	shaper.SetMetrics(cfg.Registry)
	server := dash.NewServer(cfg.Video)
	server.SetMetrics(cfg.Registry)
	injector := dash.NewFaultInjector(faultCfg, server.Handler())
	injector.SetMetrics(cfg.Registry)
	protection := dash.Protect(*cfg.Protection, injector)
	protection.SetMetrics(cfg.Registry)
	hsrv := dash.NewHTTPServer(protection.Handler())
	go func() { _ = hsrv.Serve(dash.NewShapedListener(ln, shaper)) }()

	// One shared transport: sessions share the loopback the way real
	// players share an edge, and one counter sees every response.
	transport := &countingTransport{inner: &http.Transport{
		DialContext:           (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
		ResponseHeaderTimeout: 30 * time.Second,
		MaxIdleConnsPerHost:   cfg.Sessions,
	}}
	httpClient := &http.Client{Timeout: 5 * time.Minute, Transport: transport}

	results := make([]SessionResult, cfg.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runSession(cfg, i, "http://"+ln.Addr().String(), httpClient)
		}(i)
	}
	wg.Wait()

	rep := &Report{
		Profile:            cfg.FaultProfile,
		Sessions:           cfg.Sessions,
		Results:            results,
		Admission:          protection.AdmissionStats(),
		Faults:             injector.Stats(),
		GoroutinesBaseline: baseline.Count(),
		ShedBudget:         shedBudget(cfg),
	}
	if b := protection.Breaker(); b != nil {
		rep.Breaker = b.Stats()
	}
	rep.Observed503, rep.ObservedShed = transport.counts()
	for _, r := range results {
		switch {
		case r.Completed():
			rep.Completed++
		case r.Livelocked:
			rep.Livelocked++
			rep.Failed++
		default:
			rep.Failed++
		}
	}

	// Teardown, then require the goroutine count to drain to baseline.
	// protection.Close drains any request goroutine still parked in the
	// admission queue before the leak check counts survivors.
	_ = hsrv.Close()
	protection.Close()
	httpClient.CloseIdleConnections()
	rep.LeakErr = baseline.Settle(wallSeconds(cfg.SettleWallTimeoutSec))
	rep.GoroutinesAfter = leakcheck.Snapshot().Count()
	rep.WallSec = time.Since(start).Seconds()
	return rep, nil
}

// runSession executes one client session against the harness server.
func runSession(cfg Config, i int, baseURL string, httpClient *http.Client) SessionResult {
	id := fmt.Sprintf("chaos-%02d", i)
	out := SessionResult{ID: id}

	rcfg := *cfg.Resilience
	rcfg.JitterSeed = cfg.Seed + int64(i)
	client, err := dash.NewClient(dash.ClientConfig{
		BaseURL:      baseURL,
		HTTPClient:   httpClient,
		NewAlgorithm: cfg.Scheme.New,
		TimeScale:    cfg.TimeScale,
		MaxChunks:    cfg.MaxChunks,
		Resilience:   &rcfg,
		SessionID:    id,
		Metrics:      cfg.Registry,
	})
	if err != nil {
		out.Err = err
		return out
	}

	ctx, cancel := context.WithTimeout(context.Background(), wallSeconds(cfg.SessionWallTimeoutSec))
	defer cancel()
	res, err := client.Run(ctx)
	if err != nil {
		out.Err = err
		out.Livelocked = errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded)
		return out
	}
	out.Chunks = len(res.Chunks)
	out.SkippedChunks = res.SkippedChunks
	out.Retries = res.TotalRetries
	out.RebufferSec = res.TotalRebufferSec
	out.DataMB = res.TotalBits / 8 / 1e6
	return out
}

// shedBudget bounds acceptable shedding: each session may be refused on
// every manifest attempt (two representations per resilient attempt) plus
// one round of slack — anything past that means the server is amplifying
// load instead of shedding it.
func shedBudget(cfg Config) int {
	attempts := cfg.Resilience.MaxRetries + 1
	return cfg.Sessions * (2*attempts + 2)
}

// Invariants checks the report against the harness's robustness
// invariants and returns every violation (empty means the run passed).
func (r *Report) Invariants() []error {
	var out []error
	if r.Livelocked > 0 {
		out = append(out, fmt.Errorf("chaos: %d of %d sessions livelocked", r.Livelocked, r.Sessions))
	}
	if shed := r.Admission.ShedTotal(); shed > r.ShedBudget {
		out = append(out, fmt.Errorf("chaos: %d requests shed, budget %d", shed, r.ShedBudget))
	}
	// Honest shedding: ≥ 99% of server-side sheds observed client-side as
	// 503 + Retry-After (integer form of ObservedShed/ShedTotal ≥ 0.99).
	if shed := r.Admission.ShedTotal(); shed > 0 && r.ObservedShed*100 < shed*99 {
		out = append(out, fmt.Errorf("chaos: only %d of %d shed requests carried 503 + Retry-After",
			r.ObservedShed, shed))
	}
	if r.LeakErr != nil {
		out = append(out, fmt.Errorf("chaos: goroutines did not settle: %w", r.LeakErr))
	}
	if r.Completed == 0 {
		out = append(out, errors.New("chaos: no session completed"))
	}
	for _, s := range r.Results {
		if s.Completed() && s.Chunks > 0 && s.SkippedChunks*2 > s.Chunks {
			out = append(out, fmt.Errorf("chaos: session %s collapsed: %d of %d chunks skipped",
				s.ID, s.SkippedChunks, s.Chunks))
		}
	}
	out = append(out, r.edgeInvariants()...)
	return out
}

// Sweep runs the harness across fault profiles × session counts, the
// concurrency axis the single-client robustness experiment lacks.
func Sweep(base Config, profiles []string, sessionCounts []int) ([]*Report, error) {
	var out []*Report
	for _, p := range profiles {
		for _, n := range sessionCounts {
			c := base
			c.FaultProfile = p
			c.Sessions = n
			c.Protection = nil // re-derive the bound from the session count
			rep, err := Run(c)
			if err != nil {
				return nil, fmt.Errorf("chaos: sweep cell %s×%d: %w", p, n, err)
			}
			out = append(out, rep)
		}
	}
	return out, nil
}

// wallSeconds converts float seconds to a duration.
func wallSeconds(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
