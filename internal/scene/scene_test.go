package scene

import (
	"testing"
	"testing/quick"

	"cava/internal/video"
)

func edVideo() *video.Video {
	return video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
}

func TestClassifySizesQuartiles(t *testing.T) {
	sizes := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	cats := ClassifySizes(sizes, 4)
	want := []Category{Q1, Q1, Q2, Q2, Q3, Q3, Q4, Q4}
	for i := range want {
		if cats[i] != want[i] {
			t.Errorf("chunk %d category %d, want %d", i, cats[i], want[i])
		}
	}
}

func TestClassifySizesBalanced(t *testing.T) {
	v := edVideo()
	cats := ClassifyDefault(v)
	counts := map[Category]int{}
	for _, c := range cats {
		counts[c]++
	}
	n := v.NumChunks()
	for c := Q1; c <= Q4; c++ {
		if counts[c] < n/4-n/10 || counts[c] > n/4+n/10 {
			t.Errorf("category %d has %d chunks of %d; want near n/4", c, counts[c], n)
		}
	}
}

func TestClassifySizesEdgeCases(t *testing.T) {
	if got := ClassifySizes(nil, 4); len(got) != 0 {
		t.Error("empty input should classify to empty output")
	}
	// Constant sizes: everything lands in the lowest class (all ties).
	cats := ClassifySizes([]float64{5, 5, 5, 5}, 4)
	for _, c := range cats {
		if c != Q1 {
			t.Errorf("constant sizes classified as %d, want Q1", c)
		}
	}
	// nClasses below 2 is coerced to 2.
	cats = ClassifySizes([]float64{1, 2, 3, 4}, 1)
	if cats[0] != 1 || cats[3] != 2 {
		t.Errorf("binary classification wrong: %v", cats)
	}
}

func TestClassifyScaleInvariant(t *testing.T) {
	// Quantile classification must be invariant to positive scaling — it
	// is what lets one reference track classify all tracks.
	v := edVideo()
	sizes := v.Tracks[3].ChunkSizesBits
	f := func(scaleMilli uint16) bool {
		scale := 0.001 * (float64(scaleMilli) + 1)
		scaled := make([]float64, len(sizes))
		for i, s := range sizes {
			scaled[i] = s * scale
		}
		a := ClassifySizes(sizes, 4)
		b := ClassifySizes(scaled, 4)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCategoryCorrelationAcrossTracks(t *testing.T) {
	// §3.1.1 Property 2: category sequences from any two tracks correlate
	// near 1.
	for _, v := range []*video.Video{edVideo(), video.FFmpegVideo(video.OpenTitles[1], video.H264)} {
		ref := DefaultReferenceTrack(v.NumTracks())
		for l := 0; l < v.NumTracks(); l++ {
			if corr := CategoryCorrelation(v, ref, l, 4); corr < 0.85 {
				t.Errorf("%s: corr(track %d, track %d) = %.3f, want > 0.85", v.ID(), ref, l, corr)
			}
		}
	}
}

func TestCategoryCorrelationIdentity(t *testing.T) {
	v := edVideo()
	if corr := CategoryCorrelation(v, 3, 3, 4); corr < 0.9999 {
		t.Errorf("self correlation = %v, want 1", corr)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := pearsonCategories(nil, nil); got != 0 {
		t.Errorf("empty correlation = %v", got)
	}
	a := []Category{Q1, Q1, Q1}
	if got := pearsonCategories(a, a); got != 1 {
		t.Errorf("constant-sequence correlation = %v, want 1", got)
	}
	if got := pearsonCategories(a, []Category{Q1, Q2}); got != 0 {
		t.Errorf("length-mismatch correlation = %v, want 0", got)
	}
}

func TestSITIMonotoneWithComplexity(t *testing.T) {
	v := edVideo()
	siti := ComputeSITI(v)
	if len(siti) != v.NumChunks() {
		t.Fatalf("SITI length %d, want %d", len(siti), v.NumChunks())
	}
	// Mean SI/TI of the top complexity quartile must exceed that of the
	// bottom quartile.
	cats := ClassifyDefault(v)
	var loSI, hiSI, loTI, hiTI float64
	var nLo, nHi int
	for i, c := range cats {
		switch c {
		case Q1:
			loSI += siti[i].SI
			loTI += siti[i].TI
			nLo++
		case Q4:
			hiSI += siti[i].SI
			hiTI += siti[i].TI
			nHi++
		}
	}
	if hiSI/float64(nHi) <= loSI/float64(nLo) {
		t.Error("Q4 mean SI not above Q1")
	}
	if hiTI/float64(nHi) <= loTI/float64(nLo) {
		t.Error("Q4 mean TI not above Q1")
	}
}

func TestSITIRanges(t *testing.T) {
	for _, s := range ComputeSITI(edVideo()) {
		if s.SI < 0 || s.SI > 100 || s.TI < 0 || s.TI > 60 {
			t.Fatalf("SITI out of range: %+v", s)
		}
	}
}

func TestSITIDeterministic(t *testing.T) {
	a := ComputeSITI(edVideo())
	b := ComputeSITI(edVideo())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SITI differs at %d across runs", i)
		}
	}
}

// TestFractionAboveMatchesFig2 verifies the paper's Fig. 2 shape: most Q4
// chunks sit above the SI>25, TI>7 thresholds while only small tails of Q1
// and Q2 do.
func TestFractionAboveMatchesFig2(t *testing.T) {
	v := edVideo()
	cats := ClassifyDefault(v)
	fr := FractionAbove(cats, ComputeSITI(v), 25, 7, 4)
	if fr[Q4] < 0.55 {
		t.Errorf("Q4 fraction above thresholds %.2f, want > 0.55", fr[Q4])
	}
	if fr[Q1] > 0.30 {
		t.Errorf("Q1 fraction %.2f, want < 0.30", fr[Q1])
	}
	if fr[Q2] > 0.60 {
		t.Errorf("Q2 fraction %.2f, want < 0.60", fr[Q2])
	}
	if !(fr[Q1] <= fr[Q2] && fr[Q2] <= fr[Q3]+0.05 && fr[Q3] <= fr[Q4]+0.05) {
		t.Errorf("fractions not increasing: %v %v %v %v", fr[Q1], fr[Q2], fr[Q3], fr[Q4])
	}
}

func TestIsComplex(t *testing.T) {
	if IsComplex(Q1) || IsComplex(Q2) || IsComplex(Q3) {
		t.Error("non-Q4 categories flagged complex")
	}
	if !IsComplex(Q4) {
		t.Error("Q4 not flagged complex")
	}
}

func TestFiveClassClassification(t *testing.T) {
	// §3.1.1 notes other class counts work too; verify 5 classes cover
	// 1..5 and roughly balance.
	v := edVideo()
	cats := Classify(v, 3, 5)
	counts := map[Category]int{}
	for _, c := range cats {
		if c < 1 || c > 5 {
			t.Fatalf("category %d out of range for 5 classes", c)
		}
		counts[c]++
	}
	for c := Category(1); c <= 5; c++ {
		if counts[c] == 0 {
			t.Errorf("class %d empty", c)
		}
	}
}

func TestDefaultReferenceTrack(t *testing.T) {
	if DefaultReferenceTrack(6) != 3 {
		t.Errorf("middle of 6 tracks = %d, want 3", DefaultReferenceTrack(6))
	}
	if DefaultReferenceTrack(1) != 0 {
		t.Error("single track reference should be 0")
	}
}
