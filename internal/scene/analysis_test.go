package scene

import (
	"testing"

	"cava/internal/video"
)

func TestDetectSceneCuts(t *testing.T) {
	v := edVideo()
	cuts := DetectSceneCuts(v, 3, 0.35)
	if len(cuts) == 0 || cuts[0] != 0 {
		t.Fatal("cut list must start at chunk 0")
	}
	// A 10-minute multi-scene video must have a sensible number of cuts:
	// more than a handful, fewer than every chunk.
	if len(cuts) < 5 || len(cuts) > v.NumChunks()/2 {
		t.Errorf("%d cuts detected for %d chunks", len(cuts), v.NumChunks())
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatal("cuts not strictly increasing")
		}
	}
	// Default threshold applies when non-positive.
	if len(DetectSceneCuts(v, 3, 0)) == 0 {
		t.Error("default threshold produced no cuts")
	}
}

func TestComplexRunsPartition(t *testing.T) {
	v := edVideo()
	cats := ClassifyDefault(v)
	runs := ComplexRuns(cats)
	total := 0
	for i, r := range runs {
		total += r.Length
		if r.Length <= 0 {
			t.Fatal("empty run")
		}
		if i > 0 && runs[i-1].Complex == r.Complex {
			t.Fatal("adjacent runs share a class; not maximal")
		}
	}
	if total != v.NumChunks() {
		t.Fatalf("runs cover %d chunks, want %d", total, v.NumChunks())
	}
	if ComplexRuns(nil) != nil {
		t.Error("empty input should produce no runs")
	}
}

func TestComplexRunStats(t *testing.T) {
	v := edVideo()
	cats := ClassifyDefault(v)
	st := ComplexRunStats(v, cats, 3)
	if st.NumRuns == 0 {
		t.Fatal("no Q4 runs in a VBR video")
	}
	// Quartile classification: Q4 chunks are ~n/4.
	if st.TotalChunks < v.NumChunks()/5 || st.TotalChunks > v.NumChunks()/3 {
		t.Errorf("Q4 total %d of %d chunks", st.TotalChunks, v.NumChunks())
	}
	if st.MaxLength < st.MeanLength {
		t.Error("max run below mean")
	}
	// The worst burst must exceed MaxLength x the track's average chunk:
	// Q4 chunks are the big ones.
	avgChunk := v.AvgBitrateBps(3) * v.ChunkDurSec
	if st.BurstBits <= st.MaxLength*avgChunk {
		t.Errorf("burst %.0f bits not above %0.f (max-run x avg chunk)", st.BurstBits, st.MaxLength*avgChunk)
	}
}

func TestClassificationStability(t *testing.T) {
	v := edVideo()
	for a := 0; a < v.NumTracks(); a++ {
		s := ClassificationStability(v, 3, a, 4)
		if a == 3 && s != 1 {
			t.Errorf("self stability = %v", s)
		}
		if s < 0.85 {
			t.Errorf("stability(3,%d) = %.3f, want > 0.85 (Property 2)", a, s)
		}
	}
	empty := &video.Video{}
	_ = empty // stability of an empty video is undefined; guarded by caller
}
