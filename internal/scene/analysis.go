package scene

import (
	"math"

	"cava/internal/video"
)

// Deeper scene analysis built on the size-based classification: scene-cut
// detection, Q4 run-length statistics (the burst structure the proactive
// principle reacts to), and classification stability checks.

// DetectSceneCuts returns chunk indices where a new scene likely begins,
// inferred from jumps in the reference track's chunk sizes: a cut is a
// relative size change exceeding threshold (e.g. 0.35 = 35%) between
// consecutive chunks. Index 0 always starts a scene.
func DetectSceneCuts(v *video.Video, refLevel int, threshold float64) []int {
	if threshold <= 0 {
		threshold = 0.35
	}
	sizes := v.Tracks[refLevel].ChunkSizesBits
	cuts := []int{0}
	for i := 1; i < len(sizes); i++ {
		prev := sizes[i-1]
		if prev <= 0 {
			continue
		}
		if math.Abs(sizes[i]-prev)/prev > threshold {
			cuts = append(cuts, i)
		}
	}
	return cuts
}

// Run is a maximal stretch of consecutive chunks in the same complexity
// class (Q4 vs non-Q4).
type Run struct {
	// Start is the first chunk index of the run.
	Start int
	// Length is the run length in chunks.
	Length int
	// Complex reports whether the run is Q4.
	Complex bool
}

// ComplexRuns returns the Q4/non-Q4 run decomposition of a category
// sequence. The Q4 runs are exactly the "clusters of large chunks" the
// outer controller pre-charges the buffer for (§5.4).
func ComplexRuns(cats []Category) []Run {
	var runs []Run
	for i := 0; i < len(cats); {
		c := IsComplex(cats[i])
		j := i + 1
		for j < len(cats) && IsComplex(cats[j]) == c {
			j++
		}
		runs = append(runs, Run{Start: i, Length: j - i, Complex: c})
		i = j
	}
	return runs
}

// RunStats summarizes the Q4 run structure.
type RunStats struct {
	// NumRuns is the number of Q4 runs.
	NumRuns int
	// MeanLength and MaxLength are in chunks.
	MeanLength, MaxLength float64
	// TotalChunks is the number of Q4 chunks.
	TotalChunks int
	// BurstBits is the largest total size (bits) of any single Q4 run on
	// the given track — the worst-case burst the buffer must absorb.
	BurstBits float64
}

// ComplexRunStats computes Q4 burst statistics for a video on a track.
func ComplexRunStats(v *video.Video, cats []Category, level int) RunStats {
	var st RunStats
	var sum float64
	for _, r := range ComplexRuns(cats) {
		if !r.Complex {
			continue
		}
		st.NumRuns++
		st.TotalChunks += r.Length
		sum += float64(r.Length)
		if float64(r.Length) > st.MaxLength {
			st.MaxLength = float64(r.Length)
		}
		bits := 0.0
		for k := r.Start; k < r.Start+r.Length; k++ {
			bits += v.ChunkSize(level, k)
		}
		if bits > st.BurstBits {
			st.BurstBits = bits
		}
	}
	if st.NumRuns > 0 {
		st.MeanLength = sum / float64(st.NumRuns)
	}
	return st
}

// ClassificationStability measures how robust the reference-track
// classification is to using a different reference: the fraction of chunk
// positions whose Q4/non-Q4 label agrees between the two references. The
// paper's Property 2 (§3.1.1) predicts values near 1.
func ClassificationStability(v *video.Video, refA, refB, nClasses int) float64 {
	a := Classify(v, refA, nClasses)
	b := Classify(v, refB, nClasses)
	if len(a) == 0 {
		return 0
	}
	agree := 0
	for i := range a {
		if IsComplex(a[i]) == IsComplex(b[i]) {
			agree++
		}
	}
	return float64(agree) / float64(len(a))
}
