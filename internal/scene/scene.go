// Package scene provides scene-complexity tooling for VBR streaming: the
// chunk-size-quartile classifier the paper proposes (§3.1.1), synthetic
// SI/TI (spatial/temporal information, ITU-T P.910) derived from the latent
// complexity, and cross-track consistency checks.
//
// The classifier is the practical pathway the paper identifies: relative
// chunk size within a reference track is an accurate, manifest-available
// proxy for scene complexity, so the ABR logic can favor complex scenes
// without any content-level analysis.
package scene

import (
	"math"
	"math/rand"
	"sort"

	"cava/internal/video"
)

// Category is a scene-complexity class derived from chunk-size quantiles.
// With the default four classes, Q1 holds the smallest (simplest) chunks
// and Q4 the largest (most complex).
type Category int

// The four quartile categories.
const (
	Q1 Category = 1 + iota
	Q2
	Q3
	Q4
)

// DefaultNumClasses is the paper's quartile-based classification.
const DefaultNumClasses = 4

// DefaultReferenceTrack picks the middle track of a ladder, per §3.1.1.
func DefaultReferenceTrack(numTracks int) int { return numTracks / 2 }

// Classify assigns each chunk position a category 1..nClasses based on the
// size distribution of the reference track refLevel, using quantile
// boundaries. Chunks at the same playback position receive the same
// category regardless of track, which is sound because relative chunk sizes
// are strongly correlated across tracks (verified by CategoryCorrelation).
func Classify(v *video.Video, refLevel, nClasses int) []Category {
	sizes := v.Tracks[refLevel].ChunkSizesBits
	return ClassifySizes(sizes, nClasses)
}

// ClassifyDefault classifies with the middle reference track and four classes.
func ClassifyDefault(v *video.Video) []Category {
	return Classify(v, DefaultReferenceTrack(v.NumTracks()), DefaultNumClasses)
}

// ClassifySizes assigns quantile categories 1..nClasses to a raw size
// series. Ties at a boundary go to the lower class, matching how quartile
// membership is usually counted.
func ClassifySizes(sizes []float64, nClasses int) []Category {
	if nClasses < 2 {
		nClasses = 2
	}
	n := len(sizes)
	out := make([]Category, n)
	if n == 0 {
		return out
	}
	sorted := append([]float64(nil), sizes...)
	sort.Float64s(sorted)
	// Quantile boundaries: the k/nClasses-th order statistics.
	bounds := make([]float64, nClasses-1)
	for k := 1; k < nClasses; k++ {
		idx := k*n/nClasses - 1
		if idx < 0 {
			idx = 0
		}
		bounds[k-1] = sorted[idx]
	}
	for i, s := range sizes {
		c := Category(1)
		for _, b := range bounds {
			if s > b {
				c++
			}
		}
		out[i] = c
	}
	return out
}

// IsComplex reports whether a category denotes a complex scene under the
// paper's Q4 vs non-Q4 split.
func IsComplex(c Category) bool { return c == Q4 }

// CategoryCorrelation computes the Pearson correlation between the category
// sequences obtained independently from two tracks. The paper verifies
// these are all close to 1 (Property 2 in §3.1.1).
func CategoryCorrelation(v *video.Video, levelA, levelB, nClasses int) float64 {
	a := ClassifySizes(v.Tracks[levelA].ChunkSizesBits, nClasses)
	b := ClassifySizes(v.Tracks[levelB].ChunkSizesBits, nClasses)
	return pearsonCategories(a, b)
}

func pearsonCategories(a, b []Category) float64 {
	n := len(a)
	if n == 0 || len(b) != n {
		return 0
	}
	var ma, mb float64
	for i := 0; i < n; i++ {
		ma += float64(a[i])
		mb += float64(b[i])
	}
	ma /= float64(n)
	mb /= float64(n)
	var num, va, vb float64
	for i := 0; i < n; i++ {
		da, db := float64(a[i])-ma, float64(b[i])-mb
		num += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 1 // constant sequences: identical categorization
	}
	return num / math.Sqrt(va*vb)
}

// SITI holds the spatial and temporal information of one chunk.
type SITI struct {
	SI float64 // spatial detail, roughly 0..100
	TI float64 // temporal motion, roughly 0..60
}

// ComputeSITI derives per-chunk SI/TI from the video's latent complexity,
// standing in for ITU-T P.910 analysis of the raw footage. SI and TI grow
// monotonically with scene complexity with realistic scatter, so chunk-size
// quartiles separate in SI/TI space as in the paper's Fig. 2.
func ComputeSITI(v *video.Video) []SITI {
	rng := rand.New(rand.NewSource(sitiSeed(v)))
	out := make([]SITI, v.NumChunks())
	for i, c := range v.Complexity {
		// Shared per-scene measurement component plus independent scatter,
		// calibrated so the SI>25 ∧ TI>7 region captures most Q4 chunks but
		// only a small tail of Q1/Q2 chunks (Fig. 2).
		shared := rng.NormFloat64()
		si := 14 + 24*c + 6.5*(0.6*shared+0.8*rng.NormFloat64())
		ti := 2 + 11*c + 3.5*(0.6*shared+0.8*rng.NormFloat64())
		out[i] = SITI{SI: clamp(si, 0, 100), TI: clamp(ti, 0, 60)}
	}
	return out
}

func sitiSeed(v *video.Video) int64 {
	var s int64 = 0x5171
	for _, r := range v.ID() {
		s = s*131 + int64(r)
	}
	return s
}

// FractionAbove returns, per category, the fraction of that category's
// chunks whose SI and TI both exceed the given thresholds. The paper uses
// SI>25, TI>7 to show Q4 chunks dominate the high-complexity region.
func FractionAbove(cats []Category, siti []SITI, siThresh, tiThresh float64, nClasses int) map[Category]float64 {
	counts := make(map[Category]int)
	above := make(map[Category]int)
	for i, c := range cats {
		counts[c]++
		if siti[i].SI > siThresh && siti[i].TI > tiThresh {
			above[c]++
		}
	}
	out := make(map[Category]float64, nClasses)
	for c := Category(1); c <= Category(nClasses); c++ {
		if counts[c] > 0 {
			out[c] = float64(above[c]) / float64(counts[c])
		}
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
