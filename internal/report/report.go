// Package report exports sweep results to machine-readable CSV and JSON so
// the paper artifacts can be re-plotted with external tooling, and reads
// them back for offline analysis.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"cava/internal/metrics"
	"cava/internal/sim"
)

// Row is one session's metric record in flat, export-friendly form.
type Row struct {
	Scheme          string  `json:"scheme"`
	Video           string  `json:"video"`
	Trace           string  `json:"trace"`
	Q4Quality       float64 `json:"q4_quality"`
	Q13Quality      float64 `json:"q13_quality"`
	AvgQuality      float64 `json:"avg_quality"`
	LowQualityPct   float64 `json:"low_quality_pct"`
	RebufferSec     float64 `json:"rebuffer_sec"`
	QualityChange   float64 `json:"quality_change"`
	DataMB          float64 `json:"data_mb"`
	StartupDelaySec float64 `json:"startup_delay_sec"`
	Retries         int     `json:"retries"`
	Truncations     int     `json:"truncations"`
	Abandonments    int     `json:"abandonments"`
	SkippedChunks   int     `json:"skipped_chunks"`
}

// Flatten converts sweep results into rows sorted by (scheme, video, trace).
func Flatten(res *sim.Results) []Row {
	var rows []Row
	for key, summaries := range res.Cells {
		for _, s := range summaries {
			rows = append(rows, Row{
				Scheme:          key.Scheme,
				Video:           key.Video,
				Trace:           s.TraceID,
				Q4Quality:       s.Q4Quality,
				Q13Quality:      s.Q13Quality,
				AvgQuality:      s.AvgQuality,
				LowQualityPct:   s.LowQualityPct,
				RebufferSec:     s.RebufferSec,
				QualityChange:   s.QualityChange,
				DataMB:          s.DataMB,
				StartupDelaySec: s.StartupDelaySec,
				Retries:         s.Retries,
				Truncations:     s.Truncations,
				Abandonments:    s.Abandonments,
				SkippedChunks:   s.SkippedChunks,
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		if a.Video != b.Video {
			return a.Video < b.Video
		}
		return a.Trace < b.Trace
	})
	return rows
}

// csvHeader is the column order of WriteCSV.
var csvHeader = []string{
	"scheme", "video", "trace", "q4_quality", "q13_quality", "avg_quality",
	"low_quality_pct", "rebuffer_sec", "quality_change", "data_mb", "startup_delay_sec",
	"retries", "truncations", "abandonments", "skipped_chunks",
}

// WriteCSV writes rows with a header line.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	d := strconv.Itoa
	for _, r := range rows {
		rec := []string{
			r.Scheme, r.Video, r.Trace,
			f(r.Q4Quality), f(r.Q13Quality), f(r.AvgQuality),
			f(r.LowQualityPct), f(r.RebufferSec), f(r.QualityChange),
			f(r.DataMB), f(r.StartupDelaySec),
			d(r.Retries), d(r.Truncations), d(r.Abandonments), d(r.SkippedChunks),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses rows written by WriteCSV.
func ReadCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("report: empty CSV")
	}
	if len(records[0]) != len(csvHeader) {
		return nil, fmt.Errorf("report: header has %d columns, want %d", len(records[0]), len(csvHeader))
	}
	var rows []Row
	for li, rec := range records[1:] {
		pf := func(col int) (float64, error) { return strconv.ParseFloat(rec[col], 64) }
		var row Row
		row.Scheme, row.Video, row.Trace = rec[0], rec[1], rec[2]
		vals := make([]float64, 8)
		for k := 0; k < 8; k++ {
			v, err := pf(3 + k)
			if err != nil {
				return nil, fmt.Errorf("report: line %d column %d: %v", li+2, 4+k, err)
			}
			vals[k] = v
		}
		ints := make([]int, 4)
		for k := 0; k < 4; k++ {
			v, err := strconv.Atoi(rec[11+k])
			if err != nil {
				return nil, fmt.Errorf("report: line %d column %d: %v", li+2, 12+k, err)
			}
			ints[k] = v
		}
		row.Q4Quality, row.Q13Quality, row.AvgQuality = vals[0], vals[1], vals[2]
		row.LowQualityPct, row.RebufferSec, row.QualityChange = vals[3], vals[4], vals[5]
		row.DataMB, row.StartupDelaySec = vals[6], vals[7]
		row.Retries, row.Truncations, row.Abandonments, row.SkippedChunks = ints[0], ints[1], ints[2], ints[3]
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteJSON writes rows as a JSON array.
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rows)
}

// ReadJSON parses rows written by WriteJSON.
func ReadJSON(r io.Reader) ([]Row, error) {
	var rows []Row
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return rows, nil
}

// GroupMeans aggregates rows per scheme with a field selector, preserving
// scheme order of first appearance.
func GroupMeans(rows []Row, field func(Row) float64) ([]string, []float64) {
	var order []string
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range rows {
		if _, seen := sums[r.Scheme]; !seen {
			order = append(order, r.Scheme)
		}
		sums[r.Scheme] += field(r)
		counts[r.Scheme]++
	}
	means := make([]float64, len(order))
	for i, s := range order {
		means[i] = sums[s] / float64(counts[s])
	}
	return order, means
}

// Summaries reconstructs metric summaries from rows (for downstream code
// that speaks the metrics types).
func Summaries(rows []Row) []metrics.Summary {
	out := make([]metrics.Summary, len(rows))
	for i, r := range rows {
		out[i] = metrics.Summary{
			Scheme:          r.Scheme,
			VideoID:         r.Video,
			TraceID:         r.Trace,
			Q4Quality:       r.Q4Quality,
			Q13Quality:      r.Q13Quality,
			AvgQuality:      r.AvgQuality,
			LowQualityPct:   r.LowQualityPct,
			RebufferSec:     r.RebufferSec,
			QualityChange:   r.QualityChange,
			DataMB:          r.DataMB,
			StartupDelaySec: r.StartupDelaySec,
			Retries:         r.Retries,
			Truncations:     r.Truncations,
			Abandonments:    r.Abandonments,
			SkippedChunks:   r.SkippedChunks,
		}
	}
	return out
}
