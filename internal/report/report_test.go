package report

import (
	"bytes"
	"strings"
	"testing"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

func sweep(t *testing.T) *sim.Results {
	t.Helper()
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	res, err := sim.Run(sim.Request{
		Videos: []*video.Video{v},
		Traces: trace.GenLTESet(3),
		Schemes: []abr.Scheme{
			{Name: "CAVA", New: core.Factory()},
			{Name: "RBA", New: func(v *video.Video) abr.Algorithm { return abr.NewRBA(v, 4) }},
		},
		Config: player.DefaultConfig(),
		Metric: quality.VMAFPhone,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFlattenSorted(t *testing.T) {
	rows := Flatten(sweep(t))
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.Scheme > b.Scheme || (a.Scheme == b.Scheme && a.Trace > b.Trace) {
			t.Fatal("rows not sorted")
		}
	}
	for _, r := range rows {
		if r.DataMB <= 0 || r.AvgQuality <= 0 {
			t.Fatalf("row has empty metrics: %+v", r)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rows := Flatten(sweep(t))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("%d rows after round trip, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i].Scheme != rows[i].Scheme || got[i].Trace != rows[i].Trace {
			t.Fatal("identity columns drifted")
		}
		// 4-decimal CSV rounding.
		if d := got[i].Q4Quality - rows[i].Q4Quality; d > 1e-4 || d < -1e-4 {
			t.Fatal("metric drifted beyond rounding")
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("short header accepted")
	}
	bad := strings.Join(csvHeader, ",") + "\nx,y,z,notanumber,0,0,0,0,0,0,0\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad float accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rows := Flatten(sweep(t))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatal("row count changed")
	}
	if got[0] != rows[0] {
		t.Errorf("first row drifted: %+v vs %+v", got[0], rows[0])
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestGroupMeans(t *testing.T) {
	rows := []Row{
		{Scheme: "A", DataMB: 10},
		{Scheme: "B", DataMB: 30},
		{Scheme: "A", DataMB: 20},
	}
	order, means := GroupMeans(rows, func(r Row) float64 { return r.DataMB })
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Fatalf("order = %v", order)
	}
	if means[0] != 15 || means[1] != 30 {
		t.Fatalf("means = %v", means)
	}
}

func TestSummariesReconstruction(t *testing.T) {
	rows := Flatten(sweep(t))
	ss := Summaries(rows)
	if len(ss) != len(rows) {
		t.Fatal("length mismatch")
	}
	if ss[0].Scheme != rows[0].Scheme || ss[0].Q4Quality != rows[0].Q4Quality {
		t.Error("summary fields lost")
	}
}
