// Package bandwidth provides the application-level throughput predictors
// ABR logic uses to estimate the network (§6.1): the harmonic mean of the
// past five chunk downloads (robust to outliers, the paper's default for
// every scheme), EWMA and last-sample alternatives, and a noisy oracle that
// injects controlled prediction error for the §6.7 sensitivity study.
package bandwidth

import (
	"math"
	"math/rand"

	"cava/internal/trace"
)

// Predictor estimates the network bandwidth available to the next chunk
// download from application-level observations.
type Predictor interface {
	// ObserveDownload records a completed chunk download of `bits` bits
	// that took `seconds` seconds.
	ObserveDownload(bits, seconds float64)
	// Predict returns the predicted bandwidth in bits/sec for a download
	// starting at absolute time now. It returns 0 when no estimate is
	// available yet (before any download completes).
	Predict(now float64) float64
	// Reset clears all observation state.
	Reset()
}

// DefaultWindow is the harmonic-mean window used throughout the paper.
const DefaultWindow = 5

// HarmonicMean predicts with the harmonic mean of the last W chunk
// throughputs. The harmonic mean underweights short high-rate bursts, which
// makes it robust to measurement outliers.
// The window is a fixed ring: the append-and-reslice history it replaced
// allocated on every few observations, which the fleet engine's zero-alloc
// per-event contract (internal/fleet) cannot afford across 10⁵–10⁶
// concurrent sessions.
type HarmonicMean struct {
	window int
	ring   []float64
	head   int // index of the oldest observation
	count  int // observations held (≤ window)
}

// NewHarmonicMean returns a harmonic-mean predictor over the last window
// downloads; window defaults to DefaultWindow when non-positive.
func NewHarmonicMean(window int) *HarmonicMean {
	if window <= 0 {
		window = DefaultWindow
	}
	return &HarmonicMean{window: window, ring: make([]float64, window)}
}

// ObserveDownload implements Predictor.
func (h *HarmonicMean) ObserveDownload(bits, seconds float64) {
	if seconds <= 0 || bits <= 0 {
		return
	}
	if h.count < h.window {
		h.ring[(h.head+h.count)%h.window] = bits / seconds
		h.count++
		return
	}
	h.ring[h.head] = bits / seconds
	h.head = (h.head + 1) % h.window
}

// Predict implements Predictor. The inverse sum runs oldest to newest —
// the same order as the sliced history it replaced — so predictions are
// bit-identical to the previous implementation.
func (h *HarmonicMean) Predict(float64) float64 {
	if h.count == 0 {
		return 0
	}
	inv := 0.0
	for k := 0; k < h.count; k++ {
		inv += 1 / h.ring[(h.head+k)%h.window]
	}
	return float64(h.count) / inv
}

// Reset implements Predictor.
func (h *HarmonicMean) Reset() { h.head, h.count = 0, 0 }

// EWMA predicts with an exponentially weighted moving average of chunk
// throughputs.
type EWMA struct {
	alpha float64
	est   float64
	seen  bool
}

// NewEWMA returns an EWMA predictor with the given smoothing factor in
// (0,1]; higher alpha weighs recent samples more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &EWMA{alpha: alpha}
}

// ObserveDownload implements Predictor.
func (e *EWMA) ObserveDownload(bits, seconds float64) {
	if seconds <= 0 || bits <= 0 {
		return
	}
	tp := bits / seconds
	if !e.seen {
		e.est, e.seen = tp, true
		return
	}
	e.est = e.alpha*tp + (1-e.alpha)*e.est
}

// Predict implements Predictor.
func (e *EWMA) Predict(float64) float64 {
	if !e.seen {
		return 0
	}
	return e.est
}

// Reset implements Predictor.
func (e *EWMA) Reset() { e.est, e.seen = 0, false }

// Last predicts with the throughput of the most recent download only.
type Last struct {
	est  float64
	seen bool
}

// NewLast returns a last-sample predictor.
func NewLast() *Last { return &Last{} }

// ObserveDownload implements Predictor.
func (l *Last) ObserveDownload(bits, seconds float64) {
	if seconds <= 0 || bits <= 0 {
		return
	}
	l.est, l.seen = bits/seconds, true
}

// Predict implements Predictor.
func (l *Last) Predict(float64) float64 {
	if !l.seen {
		return 0
	}
	return l.est
}

// Reset implements Predictor.
func (l *Last) Reset() { l.est, l.seen = 0, false }

// NoisyOracle predicts the true bandwidth perturbed by a uniform relative
// error in ±Err, reproducing the §6.7 controlled prediction-error study:
// with Err = 0 it is a perfect predictor; with Err = 0.5 predictions are
// uniform in C(t)·(1 ± 50%). The "true" bandwidth is the mean over the next
// Horizon seconds of the trace — what an ideal predictor would report for
// an imminent chunk download — rather than the instantaneous sample, which
// on a per-second LTE trace is itself noise.
type NoisyOracle struct {
	tr  *trace.Trace
	err float64
	rng *rand.Rand
	// Horizon is the averaging window in seconds (default 8).
	Horizon float64
}

// NewNoisyOracle returns a noisy oracle over the given trace with relative
// error magnitude err in [0,1) and a deterministic seed.
func NewNoisyOracle(tr *trace.Trace, err float64, seed int64) *NoisyOracle {
	return &NoisyOracle{tr: tr, err: err, rng: rand.New(rand.NewSource(seed)), Horizon: 8}
}

// ObserveDownload implements Predictor; the oracle ignores observations.
func (o *NoisyOracle) ObserveDownload(bits, seconds float64) {}

// Predict implements Predictor.
func (o *NoisyOracle) Predict(now float64) float64 {
	h := o.Horizon
	if h <= 0 {
		h = 8
	}
	// Average the trace over the half-open window [now, now+h): one sample
	// per interval boundary strictly before now+h. The previous step count
	// (int(h/interval) + 1) reached one interval past the horizon whenever
	// h divided evenly — 9 samples for h=8 at 1 s intervals — silently
	// widening the documented window.
	steps := int(math.Ceil(h / o.tr.IntervalSec))
	if steps < 1 {
		steps = 1
	}
	sum, n := 0.0, 0
	for k := 0; k < steps; k++ {
		sum += o.tr.BandwidthAt(now + float64(k)*o.tr.IntervalSec)
		n++
	}
	c := sum / float64(n)
	if o.err <= 0 {
		return c
	}
	f := 1 + o.err*(2*o.rng.Float64()-1)
	return c * f
}

// Reset implements Predictor; the oracle keeps no observation state.
func (o *NoisyOracle) Reset() {}
