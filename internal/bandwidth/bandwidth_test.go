package bandwidth

import (
	"math"
	"testing"
	"testing/quick"

	"cava/internal/trace"
)

func TestHarmonicMeanExact(t *testing.T) {
	h := NewHarmonicMean(5)
	// Throughputs 1, 2 and 4 Mbps: harmonic mean = 3/(1+0.5+0.25) Mbps.
	h.ObserveDownload(1e6, 1)
	h.ObserveDownload(2e6, 1)
	h.ObserveDownload(4e6, 1)
	want := 3.0 / (1 + 0.5 + 0.25) * 1e6
	if got := h.Predict(0); math.Abs(got-want) > 1 {
		t.Errorf("harmonic mean = %v, want %v", got, want)
	}
}

func TestHarmonicMeanWindow(t *testing.T) {
	h := NewHarmonicMean(2)
	h.ObserveDownload(1e6, 1) // falls out of the window
	h.ObserveDownload(2e6, 1)
	h.ObserveDownload(2e6, 1)
	if got := h.Predict(0); math.Abs(got-2e6) > 1 {
		t.Errorf("windowed harmonic mean = %v, want 2e6", got)
	}
}

func TestHarmonicMeanAtMostArithmetic(t *testing.T) {
	f := func(samples []uint32) bool {
		h := NewHarmonicMean(0)
		sum, n := 0.0, 0
		for _, s := range samples {
			tp := float64(s%10000) + 1
			h.ObserveDownload(tp, 1)
			n++
			if n > DefaultWindow {
				continue
			}
		}
		if n == 0 {
			return h.Predict(0) == 0
		}
		// Recompute the arithmetic mean over the retained window.
		start := 0
		if n > DefaultWindow {
			start = n - DefaultWindow
		}
		cnt := 0
		for i, s := range samples {
			if i < start {
				continue
			}
			sum += float64(s%10000) + 1
			cnt++
		}
		return h.Predict(0) <= sum/float64(cnt)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPredictorsIgnoreInvalidObservations(t *testing.T) {
	preds := []Predictor{NewHarmonicMean(5), NewEWMA(0.3), NewLast()}
	for _, p := range preds {
		p.ObserveDownload(0, 1)
		p.ObserveDownload(1e6, 0)
		p.ObserveDownload(-1, -1)
		if got := p.Predict(0); got != 0 {
			t.Errorf("%T: prediction after invalid observations = %v, want 0", p, got)
		}
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	e.ObserveDownload(2e6, 1)
	if got := e.Predict(0); got != 2e6 {
		t.Errorf("first sample = %v, want 2e6", got)
	}
	e.ObserveDownload(4e6, 1)
	if got := e.Predict(0); math.Abs(got-3e6) > 1 {
		t.Errorf("EWMA = %v, want 3e6", got)
	}
}

func TestEWMABadAlphaCoerced(t *testing.T) {
	e := NewEWMA(-1)
	e.ObserveDownload(1e6, 1)
	if e.Predict(0) != 1e6 {
		t.Error("EWMA with coerced alpha broken")
	}
}

func TestLast(t *testing.T) {
	l := NewLast()
	if l.Predict(0) != 0 {
		t.Error("Last should predict 0 before observations")
	}
	l.ObserveDownload(3e6, 1)
	l.ObserveDownload(6e6, 2)
	if got := l.Predict(0); got != 3e6 {
		t.Errorf("Last = %v, want 3e6", got)
	}
}

func TestReset(t *testing.T) {
	preds := []Predictor{NewHarmonicMean(5), NewEWMA(0.3), NewLast()}
	for _, p := range preds {
		p.ObserveDownload(1e6, 1)
		p.Reset()
		if got := p.Predict(0); got != 0 {
			t.Errorf("%T: prediction after Reset = %v, want 0", p, got)
		}
	}
}

func TestNoisyOracleExactWhenErrZero(t *testing.T) {
	tr := trace.Constant("c", 2.5e6, 60, 1)
	o := NewNoisyOracle(tr, 0, 1)
	for _, tm := range []float64{0, 10, 59} {
		if got := o.Predict(tm); got != 2.5e6 {
			t.Errorf("Predict(%v) = %v, want 2.5e6", tm, got)
		}
	}
}

func TestNoisyOracleBounds(t *testing.T) {
	tr := trace.Constant("c", 2e6, 60, 1)
	o := NewNoisyOracle(tr, 0.5, 7)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 2000; i++ {
		p := o.Predict(5)
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
		if p < 1e6-1 || p > 3e6+1 {
			t.Fatalf("prediction %v outside C(1±0.5)", p)
		}
	}
	// The uniform distribution should fill most of the range.
	if lo > 1.2e6 || hi < 2.8e6 {
		t.Errorf("predictions poorly spread: [%v, %v]", lo, hi)
	}
}

func TestNoisyOracleDeterministicPerSeed(t *testing.T) {
	tr := trace.Constant("c", 2e6, 60, 1)
	a := NewNoisyOracle(tr, 0.25, 99)
	b := NewNoisyOracle(tr, 0.25, 99)
	for i := 0; i < 20; i++ {
		if a.Predict(1) != b.Predict(1) {
			t.Fatal("same-seed oracles diverge")
		}
	}
}

func TestNoisyOracleTracksTrace(t *testing.T) {
	tr := trace.Step("s", 1e6, 4e6, 10, 40, 1)
	o := NewNoisyOracle(tr, 0, 1)
	if o.Predict(0) != 4e6 {
		t.Error("oracle should see the high step at t=0")
	}
	if o.Predict(10) != 1e6 {
		t.Error("oracle should see the low step at t=10")
	}
}

// TestNoisyOracleHorizonWindow is the off-by-one regression test: the
// oracle averages the half-open window [now, now+h), hand-computed here on
// a trace whose samples are all distinct. With h = 8 and 1 s intervals the
// average covers exactly the 8 samples at now..now+7; the old step count
// (int(h/interval) + 1) reached the 9th sample at now+8.
func TestNoisyOracleHorizonWindow(t *testing.T) {
	tr := &trace.Trace{ID: "ramp", IntervalSec: 1,
		Samples: []float64{1e6, 2e6, 3e6, 4e6, 5e6, 6e6, 7e6, 8e6, 9e6, 10e6, 11e6, 12e6}}
	o := NewNoisyOracle(tr, 0, 1)
	// Mean of samples 0..7 — sample 8 (9e6) must NOT contribute.
	want := (1e6 + 2e6 + 3e6 + 4e6 + 5e6 + 6e6 + 7e6 + 8e6) / 8
	if got := o.Predict(0); got != want {
		t.Errorf("Predict(0) over [0,8) = %v, want %v", got, want)
	}
	// Shifted window: samples 2..9.
	want = (3e6 + 4e6 + 5e6 + 6e6 + 7e6 + 8e6 + 9e6 + 10e6) / 8
	if got := o.Predict(2); got != want {
		t.Errorf("Predict(2) over [2,10) = %v, want %v", got, want)
	}
	// A horizon that does not divide evenly still samples every interval
	// boundary strictly before now+h: h = 2.5 covers samples 0, 1 and 2.
	o.Horizon = 2.5
	want = (1e6 + 2e6 + 3e6) / 3
	if got := o.Predict(0); got != want {
		t.Errorf("Predict(0) over [0,2.5) = %v, want %v", got, want)
	}
	// A horizon shorter than one interval degenerates to the current sample.
	o.Horizon = 0.25
	if got := o.Predict(3); got != 4e6 {
		t.Errorf("Predict(3) over [3,3.25) = %v, want 4e6", got)
	}
}

// naiveHarmonicMean is the slice-based reference implementation the fixed
// ring replaced: append every throughput, keep the last W, harmonic-mean
// them oldest to newest.
type naiveHarmonicMean struct {
	window int
	hist   []float64
}

func (n *naiveHarmonicMean) ObserveDownload(bits, seconds float64) {
	if seconds <= 0 || bits <= 0 {
		return
	}
	n.hist = append(n.hist, bits/seconds)
	if len(n.hist) > n.window {
		n.hist = n.hist[len(n.hist)-n.window:]
	}
}

func (n *naiveHarmonicMean) Predict() float64 {
	if len(n.hist) == 0 {
		return 0
	}
	inv := 0.0
	for _, tp := range n.hist {
		inv += 1 / tp
	}
	return float64(len(n.hist)) / inv
}

func (n *naiveHarmonicMean) Reset() { n.hist = nil }

// TestHarmonicMeanRingMatchesNaive cross-checks the ring against the naive
// append-window reference over randomized seeded observation streams:
// partial windows, full windows with wraparound, invalid observations and
// Reset-then-refill sequences must all stay bit-identical.
func TestHarmonicMeanRingMatchesNaive(t *testing.T) {
	for _, window := range []int{1, 2, 5, 8} {
		// A fixed LCG drives the stream without math/rand, keeping the
		// sequence reproducible across Go releases.
		lcg := uint64(0x9e3779b97f4a7c15) + uint64(window)
		next := func() uint64 {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			return lcg >> 33
		}
		ring := NewHarmonicMean(window)
		naive := &naiveHarmonicMean{window: window}
		for i := 0; i < 500; i++ {
			switch next() % 10 {
			case 0: // invalid observations must be ignored identically
				ring.ObserveDownload(0, 1)
				naive.ObserveDownload(0, 1)
				ring.ObserveDownload(1e6, -2)
				naive.ObserveDownload(1e6, -2)
			case 1: // reset-then-refill must restart both cleanly
				ring.Reset()
				naive.Reset()
			default:
				bits := float64(next()%100000) + 1
				seconds := (float64(next()%1000) + 1) / 100
				ring.ObserveDownload(bits, seconds)
				naive.ObserveDownload(bits, seconds)
			}
			if got, want := ring.Predict(0), naive.Predict(); got != want {
				t.Fatalf("window %d, step %d: ring predicts %v, naive reference %v",
					window, i, got, want)
			}
		}
	}
}
