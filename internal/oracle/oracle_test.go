package oracle

import (
	"testing"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/trace"
	"cava/internal/video"
)

func testSetup() (*video.Video, *quality.Table) {
	v := video.YouTubeVideo(video.Title{Name: "ED", Genre: video.SciFi})
	return v, quality.NewTable(v, quality.VMAFPhone)
}

func TestOracleFeasibleOnAmpleLink(t *testing.T) {
	v, qt := testSetup()
	tr := trace.Constant("fast", 50e6, 1200, 1)
	// LambdaSwitch < 0 means pure quality maximization (see Config): with
	// no switch penalty and 10x the top track's bitrate, the oracle must
	// sit at the top track after startup.
	plan, err := Compute(v, tr, qt, Config{LambdaSwitch: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("50 Mbps link infeasible?")
	}
	// The bandwidth never binds, so every chunk must sit at its
	// per-chunk quality argmax. (That is usually the top track, but
	// complex chunks can cross over to 720p: at 1080p the same bits
	// spread over 2.25x the pixels — the per-title-encoding effect.)
	for i := 10; i < v.NumChunks(); i++ {
		got := qt.At(plan.Levels[i], i)
		for l := 0; l < v.NumTracks(); l++ {
			if qt.At(l, i) > got+1e-9 {
				t.Fatalf("chunk %d at level %d (%.2f) but level %d scores %.2f",
					i, plan.Levels[i], got, l, qt.At(l, i))
			}
		}
	}
}

func TestOracleZeroStallWhenFeasible(t *testing.T) {
	v, qt := testSetup()
	for i := 0; i < 4; i++ {
		tr := trace.GenLTE(i)
		plan, err := Compute(v, tr, qt, Config{TimeQuantum: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Feasible {
			continue
		}
		res, err := Replay(v, tr, plan, player.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// The planner's no-stall guarantee must survive the independent
		// player replay (small slack for the startup-phase definition).
		if res.TotalRebufferSec > 1.0 {
			t.Errorf("trace %d: oracle plan stalled %.2fs in replay", i, res.TotalRebufferSec)
		}
	}
}

func TestOracleBeatsOnlineSchemes(t *testing.T) {
	v, qt := testSetup()
	cfg := player.DefaultConfig()
	lambda := 1.0
	score := func(res *player.Result) float64 {
		total := 0.0
		prev := 0.0
		for i, c := range res.Chunks {
			q := qt.At(c.Level, c.Index)
			total += q
			if i > 0 {
				d := q - prev
				if d < 0 {
					d = -d
				}
				total -= lambda * d
			}
			prev = q
		}
		return total
	}
	for i := 0; i < 3; i++ {
		tr := trace.GenLTE(i)
		plan, err := Compute(v, tr, qt, Config{LambdaSwitch: lambda, TimeQuantum: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Feasible {
			continue
		}
		cava := mustSimulate(t, v, tr, core.New(v), cfg)
		// The oracle optimizes its objective with perfect knowledge; an
		// online scheme must not beat it by more than the time-quantization
		// slack.
		if sc, so := score(cava), plan.Objective; sc > so*1.02+10 {
			t.Errorf("trace %d: CAVA objective %.0f above oracle %.0f", i, sc, so)
		}
	}
}

func TestOracleInfeasibleFallsBack(t *testing.T) {
	v, qt := testSetup()
	tr := trace.Constant("starved", 5e4, 4000, 1) // below even track 0
	plan, err := Compute(v, tr, qt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Error("starved link reported feasible")
	}
	for _, l := range plan.Levels {
		if l != 0 {
			t.Fatal("fallback plan not all-lowest")
		}
	}
}

func TestOracleValidatesInputs(t *testing.T) {
	v, qt := testSetup()
	if _, err := Compute(v, &trace.Trace{IntervalSec: 0}, qt, Config{}); err == nil {
		t.Error("bad trace accepted")
	}
	bad := *v
	bad.Tracks = nil
	if _, err := Compute(&bad, trace.GenLTE(0), qt, Config{}); err == nil {
		t.Error("bad video accepted")
	}
}

func TestOracleQ4Headroom(t *testing.T) {
	// The oracle with quality knowledge should deliver Q4 quality at least
	// matching CAVA's on feasible traces (sanity of the headroom framing).
	v, qt := testSetup()
	cats := scene.ClassifyDefault(v)
	cfg := player.DefaultConfig()
	var oq4, cq4 float64
	n := 0
	for i := 0; i < 3; i++ {
		tr := trace.GenLTE(i)
		plan, err := Compute(v, tr, qt, Config{TimeQuantum: 0.5})
		if err != nil || !plan.Feasible {
			continue
		}
		ores, err := Replay(v, tr, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cres := mustSimulate(t, v, tr, core.New(v), cfg)
		oq4 += metrics.Summarize(ores, qt, cats).AvgQuality
		cq4 += metrics.Summarize(cres, qt, cats).AvgQuality
		n++
	}
	if n > 0 && oq4 < cq4*0.97 {
		t.Errorf("oracle avg quality %.1f below CAVA %.1f", oq4/float64(n), cq4/float64(n))
	}
}

// mustSimulate fails the test on a simulation error; oracle comparison
// fixtures are valid by construction.
func mustSimulate(tb testing.TB, v *video.Video, tr *trace.Trace, algo abr.Algorithm, cfg player.Config) *player.Result {
	tb.Helper()
	res, err := player.Simulate(v, tr, algo, cfg)
	if err != nil {
		tb.Fatalf("Simulate: %v", err)
	}
	return res
}
