// Package oracle computes an offline-optimal reference schedule: the track
// sequence that maximizes delivered quality with zero rebuffering, given
// full future knowledge of both the bandwidth trace and every chunk size.
//
// No online scheme can beat it on its own objective, so it bounds the
// headroom above CAVA and the baselines (the "oracle" experiment), in the
// spirit of the offline-optimal comparisons in the MPC and BOLA papers.
//
// The planner is a dynamic program over (chunk index, previous track,
// quantized session clock). From a state it tries every track for the next
// chunk, advancing the clock by the true download time from the trace and
// enforcing the player constraints (startup latency, maximum buffer,
// no stalls). The objective is Σ quality − λ·Σ|Δquality|; infeasible
// branches (any stall) are pruned, and if even the all-lowest schedule
// stalls, the fallback relaxes the no-stall constraint chunk by chunk.
package oracle

import (
	"math"

	"cava/internal/abr"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/trace"
	"cava/internal/video"
)

// Config parametrizes the planner.
type Config struct {
	// StartupSec and MaxBufferSec mirror player.Config (defaults 10/100).
	StartupSec   float64
	MaxBufferSec float64
	// LambdaSwitch weighs the quality-change penalty; 0 selects the
	// default of 1, negative selects pure quality maximization (λ = 0).
	LambdaSwitch float64
	// TimeQuantum quantizes the session clock for memoization (default
	// 0.25 s). Smaller is more exact and slower.
	TimeQuantum float64
}

// Plan is the oracle's output.
type Plan struct {
	// Levels is the chosen track per chunk.
	Levels []int
	// Objective is Σquality − λΣ|Δquality| of the plan.
	Objective float64
	// Feasible reports whether a zero-stall schedule exists; when false
	// the plan is the all-lowest-track schedule.
	Feasible bool
}

// Compute runs the planner.
func Compute(v *video.Video, tr *trace.Trace, qt *quality.Table, cfg Config) (*Plan, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if cfg.StartupSec <= 0 {
		cfg.StartupSec = 10
	}
	if cfg.MaxBufferSec <= 0 {
		cfg.MaxBufferSec = 100
	}
	if cfg.LambdaSwitch < 0 {
		cfg.LambdaSwitch = 0
	} else if cfg.LambdaSwitch == 0 {
		cfg.LambdaSwitch = 1
	}
	if cfg.TimeQuantum <= 0 {
		cfg.TimeQuantum = 0.25
	}

	p := &planner{v: v, tr: tr, qt: qt, cfg: cfg, memo: make(map[stateKey]memoVal)}
	n := v.NumChunks()

	// startupChunks is how many chunks must complete before playback
	// starts; the playback clock s is their completion time.
	p.startupChunks = int(math.Ceil(cfg.StartupSec / v.ChunkDurSec))
	if p.startupChunks < 1 {
		p.startupChunks = 1
	}
	if p.startupChunks > n {
		p.startupChunks = n
	}

	best, ok := p.solve()
	if !ok {
		// Even all-lowest stalls somewhere: return the floor schedule.
		levels := make([]int, n)
		return &Plan{Levels: levels, Objective: p.objectiveOf(levels), Feasible: false}, nil
	}
	return &Plan{Levels: best, Objective: p.objectiveOf(best), Feasible: true}, nil
}

type stateKey struct {
	chunk     int
	prevLevel int8
	timeBin   int32
}

type memoVal struct {
	value float64
	level int8
	ok    bool
}

type planner struct {
	v             *video.Video
	tr            *trace.Trace
	qt            *quality.Table
	cfg           Config
	startupChunks int
	memo          map[stateKey]memoVal
}

// solve explores startup schedules first (playback clock depends on the
// first chunks' levels), then runs the post-startup DP.
func (p *planner) solve() ([]int, bool) {
	n := p.v.NumChunks()
	levels := make([]int, n)
	// Startup chunks at the lowest track: the universal player practice
	// (every online scheme starts at the bottom, and raising startup
	// levels only delays the playback clock — it cannot reduce stalls).
	t := 0.0
	for i := 0; i < p.startupChunks; i++ {
		t += p.tr.DownloadTime(t, p.v.ChunkSize(0, i))
		levels[i] = 0
	}
	playStart := t

	if p.startupChunks == n {
		return levels, true
	}
	if _, ok := p.dp(p.startupChunks, 0, t, playStart); !ok {
		return nil, false
	}
	// Reconstruct the chosen levels. Exact times drift within memo bins
	// during reconstruction, so re-invoke the DP at every step (cheap —
	// states memoize) instead of reading the memo map directly.
	tt := t
	prev := 0
	for i := p.startupChunks; i < n; i++ {
		if _, ok := p.dp(i, prev, tt, playStart); !ok {
			return nil, false
		}
		key := stateKey{chunk: i, prevLevel: int8(prev), timeBin: p.bin(tt)}
		mv := p.memo[key]
		l := int(mv.level)
		start := p.startTime(i, tt, playStart)
		tt = start + p.tr.DownloadTime(start, p.v.ChunkSize(l, i))
		levels[i] = l
		prev = l
	}
	return levels, true
}

func (p *planner) bin(t float64) int32 {
	return int32(t / p.cfg.TimeQuantum)
}

// deadline is when chunk i must be ready for stall-free playback.
func (p *planner) deadline(i int, playStart float64) float64 {
	return playStart + float64(i-p.startupChunks+1)*p.v.ChunkDurSec
}

// startTime is the earliest the download of chunk i may begin: after the
// previous completion, and not before the buffer has room.
func (p *planner) startTime(i int, prevDone, playStart float64) float64 {
	// Buffer occupancy at x: i·Δ − (x − playStart) video-seconds (chunks
	// 0..i−1 downloaded). Starting chunk i requires occupancy + Δ ≤ max.
	earliest := playStart + float64(i+1)*p.v.ChunkDurSec - p.cfg.MaxBufferSec
	if prevDone > earliest {
		return prevDone
	}
	return earliest
}

// dp returns the best achievable objective from chunk i onward given the
// previous level and the completion time of chunk i−1.
func (p *planner) dp(i, prevLevel int, prevDone, playStart float64) (float64, bool) {
	n := p.v.NumChunks()
	if i == n {
		return 0, true
	}
	key := stateKey{chunk: i, prevLevel: int8(prevLevel), timeBin: p.bin(prevDone)}
	if mv, found := p.memo[key]; found {
		return mv.value, mv.ok
	}
	start := p.startTime(i, prevDone, playStart)
	dl := p.deadline(i, playStart)

	best := math.Inf(-1)
	bestLevel := -1
	for l := 0; l < p.v.NumTracks(); l++ {
		done := start + p.tr.DownloadTime(start, p.v.ChunkSize(l, i))
		if done > dl+1e-9 {
			continue // would stall
		}
		q := p.qt.At(l, i)
		gain := q
		if i > 0 {
			gain -= p.cfg.LambdaSwitch * math.Abs(q-p.qt.At(prevLevel, i-1))
		}
		rest, ok := p.dp(i+1, l, done, playStart)
		if !ok {
			continue
		}
		if total := gain + rest; total > best {
			best = total
			bestLevel = l
		}
	}
	ok := bestLevel >= 0
	p.memo[key] = memoVal{value: best, level: int8(bestLevel), ok: ok}
	return best, ok
}

// objectiveOf scores a fixed schedule.
func (p *planner) objectiveOf(levels []int) float64 {
	total := 0.0
	for i, l := range levels {
		q := p.qt.At(l, i)
		total += q
		if i > 0 {
			total -= p.cfg.LambdaSwitch * math.Abs(q-p.qt.At(levels[i-1], i-1))
		}
	}
	return total
}

// Replay executes a plan through the standard player, producing a Result
// comparable with online schemes.
func Replay(v *video.Video, tr *trace.Trace, plan *Plan, cfg player.Config) (*player.Result, error) {
	algo := &scripted{levels: plan.Levels}
	res, err := player.Simulate(v, tr, algo, cfg)
	if err != nil {
		return nil, err
	}
	res.Scheme = "Oracle"
	return res, nil
}

// scripted plays back a fixed level schedule.
type scripted struct{ levels []int }

func (s *scripted) Name() string { return "Oracle" }

func (s *scripted) Select(st abr.State) int {
	if st.ChunkIndex < 0 || st.ChunkIndex >= len(s.levels) {
		return 0
	}
	return s.levels[st.ChunkIndex]
}
